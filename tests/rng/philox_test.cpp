#include "rng/philox.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

namespace ksw::rng {
namespace {

using Counter = Philox4x32::Counter;
using Key = Philox4x32::Key;

// ---- Known-answer tests ----------------------------------------------
// Published Philox4x32-10 vectors (Random123 distribution, kat_vectors):
// any deviation means this is not Philox and every downstream stream
// changes silently.

TEST(Philox, KnownAnswerZeros) {
  const Counter out = Philox4x32::block({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerAllOnes) {
  const Counter out =
      Philox4x32::block({0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
                        {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, KnownAnswerPiDigits) {
  const Counter out =
      Philox4x32::block({0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
                        {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(out[0], 0xd16cfe09u);
  EXPECT_EQ(out[1], 0x94fdccebu);
  EXPECT_EQ(out[2], 0x5001e420u);
  EXPECT_EQ(out[3], 0x24126ea1u);
}

// ---- Stream splittability --------------------------------------------
// The property the whole design rests on: a draw is addressed by
// coordinate, so the value at (cycle, port, site, seq) cannot depend on
// what else was drawn, or in what order.

TEST(Philox, DrawsAreVisitOrderIndependent) {
  const Key key = philox_key(42);
  struct Coord {
    std::int64_t cycle;
    std::uint32_t port;
    Site site;
    std::uint32_t seq;
  };
  std::vector<Coord> coords;
  for (std::int64_t cycle : {0, 7, 1 << 20})
    for (std::uint32_t port : {0u, 3u, 255u})
      for (Site site : {Site::kInject, Site::kService})
        for (std::uint32_t seq : {0u, 1u}) coords.push_back({cycle, port, site, seq});

  std::vector<Counter> forward;
  for (const Coord& c : coords)
    forward.push_back(
        Philox4x32::block(philox_counter(c.cycle, c.port, c.site, c.seq), key));

  std::vector<Counter> backward(coords.size());
  for (std::size_t i = coords.size(); i-- > 0;) {
    const Coord& c = coords[i];
    backward[i] =
        Philox4x32::block(philox_counter(c.cycle, c.port, c.site, c.seq), key);
  }
  EXPECT_EQ(forward, backward);
}

TEST(Philox, CounterPackingSeparatesCoordinates) {
  // Distinct (cycle, port, site, seq) tuples must map to distinct
  // counters — including cycles past 2^32, whose high bits share word 3
  // with the site tag.
  std::set<Counter> seen;
  std::size_t total = 0;
  for (std::int64_t cycle :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{1} << 33,
        (std::int64_t{1} << 33) + 1})
    for (std::uint32_t port : {0u, 1u})
      for (Site site : {Site::kInject, Site::kService, Site::kFsInject,
                        Site::kFsService})
        for (std::uint32_t seq : {0u, 9u}) {
          seen.insert(philox_counter(cycle, port, site, seq));
          ++total;
        }
  EXPECT_EQ(seen.size(), total);
}

TEST(Philox, CounterPacksCycleHighBitsBesideSiteTag) {
  const std::int64_t cycle = (std::int64_t{5} << 32) + 123;
  const Counter c = philox_counter(cycle, 7, Site::kService, 2);
  EXPECT_EQ(c[0], 2u);
  EXPECT_EQ(c[1], 7u);
  EXPECT_EQ(c[2], 123u);
  EXPECT_EQ(c[3], 5u | (1u << 24));
}

TEST(Philox, KeyDerivationSeparatesSeeds) {
  const Key a = philox_key(1);
  const Key b = philox_key(2);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(philox_key(1) == a);  // deterministic
  // Seed 0 must not yield the all-zero key (SplitMix64 scrambles it).
  const Key zero = philox_key(0);
  EXPECT_FALSE(zero[0] == 0 && zero[1] == 0);
}

TEST(Philox, LaneSeqReadsLanesOfConsecutiveBlocks) {
  const Key key = philox_key(7);
  LaneSeq seq(key, 11, 3, Site::kService);
  const Counter b0 =
      Philox4x32::block(philox_counter(11, 3, Site::kService, 0), key);
  const Counter b1 =
      Philox4x32::block(philox_counter(11, 3, Site::kService, 1), key);
  for (int lane = 0; lane < 4; ++lane) EXPECT_EQ(seq.next_u32(), b0[lane]);
  for (int lane = 0; lane < 4; ++lane) EXPECT_EQ(seq.next_u32(), b1[lane]);
}

TEST(Philox, LaneSeqStreamsAreMutuallyIndependent) {
  // Interleaving reads from two sites produces exactly the same values as
  // reading each alone — nothing is "consumed" across streams.
  const Key key = philox_key(9);
  LaneSeq alone(key, 4, 2, Site::kFsService);
  std::vector<std::uint32_t> expected;
  for (int i = 0; i < 6; ++i) expected.push_back(alone.next_u32());

  LaneSeq a(key, 4, 2, Site::kFsService);
  LaneSeq other(key, 4, 2, Site::kFsInject);
  std::vector<std::uint32_t> interleaved;
  for (int i = 0; i < 6; ++i) {
    interleaved.push_back(a.next_u32());
    (void)other.next_u32();
  }
  EXPECT_EQ(interleaved, expected);
}

// ---- Draw helpers ----------------------------------------------------

TEST(Philox, BernoulliThresholdEndpoints) {
  EXPECT_EQ(bernoulli_threshold(0.0), 0u);
  EXPECT_EQ(bernoulli_threshold(1.0), std::uint64_t{1} << 32);
  // p = 1: every draw passes, including the maximum.
  EXPECT_LT(static_cast<std::uint64_t>(0xffffffffu), bernoulli_threshold(1.0));
  // p = 0.5 splits the 32-bit range exactly.
  EXPECT_EQ(bernoulli_threshold(0.5), std::uint64_t{1} << 31);
  EXPECT_LE(bernoulli_threshold(0.25), bernoulli_threshold(0.75));
}

TEST(Philox, UniformBelowStaysInRangeAndCoversIt) {
  for (const std::uint32_t n : {1u, 2u, 5u, 1024u}) {
    EXPECT_EQ(uniform_below(0, n), 0u);
    EXPECT_EQ(uniform_below(0xffffffffu, n), n - 1);
  }
  // Equal-width buckets: draw k*2^32/n lands in bucket k.
  EXPECT_EQ(uniform_below(0x40000000u, 4), 1u);
  EXPECT_EQ(uniform_below(0xC0000000u, 4), 3u);
}

TEST(Philox, UnitOpenNeverHitsTheEndpoints) {
  EXPECT_GT(unit_open(0), 0.0);
  EXPECT_LT(unit_open(0xffffffffu), 1.0);
  EXPECT_LT(unit_open(0), unit_open(0xffffffffu));
}

}  // namespace
}  // namespace ksw::rng
