#include "rng/xoshiro.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ksw::rng {
namespace {

TEST(SplitMix64, KnownAnswerSequence) {
  // Reference values for seed 1234567 from the public-domain SplitMix64
  // reference implementation.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(SplitMix64, ZeroSeedIsFine) {
  SplitMix64 sm(0);
  EXPECT_NE(sm.next(), 0ULL);
}

TEST(Xoshiro256, DeterministicForFixedSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 gen(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = gen.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 gen(11);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
      if (gen.bernoulli(p)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01) << "p=" << p;
  }
}

TEST(Xoshiro256, UniformIntIsUnbiased) {
  Xoshiro256 gen(13);
  const std::uint64_t n = 10;
  std::vector<int> counts(n, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[gen.uniform_int(n)];
  for (std::uint64_t v = 0; v < n; ++v)
    EXPECT_NEAR(static_cast<double>(counts[v]) / draws, 0.1, 0.01);
}

TEST(Xoshiro256, UniformIntEdgeCases) {
  Xoshiro256 gen(17);
  EXPECT_EQ(gen.uniform_int(0), 0u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(gen.uniform_int(1), 0u);
}

TEST(Xoshiro256, GeometricMoments) {
  Xoshiro256 gen(19);
  for (double p : {0.2, 0.5, 0.8}) {
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      const auto v = static_cast<double>(gen.geometric(p));
      ASSERT_GE(v, 1.0);
      sum += v;
      sum2 += v * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 1.0 / p, 0.03 / p) << "p=" << p;
    EXPECT_NEAR(var, (1.0 - p) / (p * p), 0.15 / (p * p)) << "p=" << p;
  }
}

TEST(Xoshiro256, GeometricCertainSuccess) {
  Xoshiro256 gen(23);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(gen.geometric(1.0), 1u);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 base(5);
  Xoshiro256 jumped = base;
  jumped.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(base());
  int overlap = 0;
  for (int i = 0; i < 1000; ++i)
    if (first.count(jumped())) ++overlap;
  EXPECT_EQ(overlap, 0);
}

TEST(Xoshiro256, SplitIsJumpComposition) {
  Xoshiro256 base(31);
  Xoshiro256 manual = base;
  manual.jump();
  manual.jump();
  Xoshiro256 split = base.split(2);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(manual(), split());
  // split() leaves the source untouched.
  Xoshiro256 fresh(31);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(base(), fresh());
}

TEST(Xoshiro256, LongJumpDiffersFromJump) {
  Xoshiro256 a(3), b(3);
  a.jump();
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace ksw::rng
