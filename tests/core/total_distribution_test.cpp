#include "core/total_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/total_delay.hpp"

namespace ksw::core {
namespace {

LaterStages reference_stages(double rho = 0.5) {
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = rho;
  return LaterStages(spec);
}

double pmf_mean(const std::vector<double>& pmf) {
  double acc = 0.0;
  for (std::size_t j = 0; j < pmf.size(); ++j)
    acc += static_cast<double>(j) * pmf[j];
  return acc;
}

double pmf_variance(const std::vector<double>& pmf) {
  const double mu = pmf_mean(pmf);
  double acc = 0.0;
  for (std::size_t j = 0; j < pmf.size(); ++j) {
    const double d = static_cast<double>(j) - mu;
    acc += d * d * pmf[j];
  }
  return acc;
}

TEST(ConvolvePower, ZeroFoldIsDelta) {
  const auto out = convolve_power({0.5, 0.5}, 0, 8);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(ConvolvePower, MatchesBinomial) {
  // Bernoulli(0.5)^4 = Binomial(4, 0.5).
  const auto out = convolve_power({0.5, 0.5}, 4, 8);
  EXPECT_NEAR(out[0], 1.0 / 16, 1e-14);
  EXPECT_NEAR(out[2], 6.0 / 16, 1e-14);
  EXPECT_NEAR(out[4], 1.0 / 16, 1e-14);
}

TEST(ConvolvePower, MeansAndVariancesAdd) {
  const std::vector<double> pmf = {0.2, 0.5, 0.2, 0.1};
  const auto out = convolve_power(pmf, 5, 64);
  EXPECT_NEAR(pmf_mean(out), 5.0 * pmf_mean(pmf), 1e-10);
  EXPECT_NEAR(pmf_variance(out), 5.0 * pmf_variance(pmf), 1e-9);
}

TEST(ConvolvePower, RejectsZeroLength) {
  EXPECT_THROW(convolve_power({1.0}, 2, 0), std::invalid_argument);
}

TEST(TotalDistribution, IidConvolutionMatchesIndependentMoments) {
  const LaterStages ls = reference_stages();
  const TotalDistribution dist(ls, 6);
  const auto pmf = dist.iid_convolution(512);
  double mass = 0.0;
  for (double x : pmf) mass += x;
  EXPECT_NEAR(mass, 1.0, 1e-8);
  // Mean = 6 w1; variance = 6 v1 (no stage drift, no covariance).
  EXPECT_NEAR(pmf_mean(pmf), 6.0 * ls.mean_first_stage(), 1e-6);
  EXPECT_NEAR(pmf_variance(pmf), 6.0 * ls.variance_first_stage(), 1e-4);
}

TEST(TotalDistribution, ScaledConvolutionHitsSectionIvMean) {
  const LaterStages ls = reference_stages();
  const TotalDistribution dist(ls, 8);
  const auto pmf = dist.scaled_convolution(512);
  const TotalDelay td(ls, 8);
  EXPECT_NEAR(pmf_mean(pmf), td.mean_total(), 1e-6);
}

TEST(TotalDistribution, ScaledConvolutionHandlesShrinkingStages) {
  // m = 4: interior stages wait LESS than the first stage, so the scaled
  // form must mix toward zero rather than shifting up.
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.125;
  spec.service = std::make_shared<DeterministicService>(4);
  const LaterStages ls(spec);
  const TotalDistribution dist(ls, 4);
  const auto pmf = dist.scaled_convolution(1024);
  const TotalDelay td(ls, 4);
  EXPECT_NEAR(pmf_mean(pmf), td.mean_total(), 1e-4);
  double mass = 0.0;
  for (double x : pmf) mass += x;
  EXPECT_NEAR(mass, 1.0, 1e-6);
}

TEST(TotalDistribution, ConvolutionCdfMonotone) {
  const TotalDistribution dist(reference_stages(), 4);
  double prev = -1.0;
  for (std::size_t w = 0; w < 20; ++w) {
    const double c = dist.convolution_cdf(w, 256);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(TotalDistribution, GammaMatchesTotalDelay) {
  const LaterStages ls = reference_stages();
  const TotalDistribution dist(ls, 7);
  const TotalDelay td(ls, 7);
  EXPECT_NEAR(dist.gamma().mean(), td.mean_total(), 1e-10);
  EXPECT_NEAR(dist.gamma().variance(), td.variance_total(), 1e-10);
}

TEST(TotalDistribution, RejectsZeroStages) {
  EXPECT_THROW(TotalDistribution(reference_stages(), 0),
               std::invalid_argument);
}

TEST(TotalDistribution, SingleStageConvolutionIsFirstStagePmf) {
  const LaterStages ls = reference_stages();
  const TotalDistribution dist(ls, 1);
  const auto pmf = dist.iid_convolution(64);
  const FirstStage first(ls.spec().first_stage_queue());
  const auto exact = first.distribution(64);
  for (std::size_t j = 0; j < 64; ++j)
    EXPECT_NEAR(pmf[j], exact[j], 1e-12) << "j=" << j;
}

}  // namespace
}  // namespace ksw::core
