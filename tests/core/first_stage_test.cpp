// Validation of Theorem 1: the generic transform machinery must agree with
// the paper's printed closed forms, with the series-inverted distribution,
// and with known limit cases — across wide parameter sweeps.
#include "core/first_stage.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/closed_forms.hpp"
#include "core/mg1.hpp"
#include "support/error.hpp"

namespace ksw::core {
namespace {

QueueSpec uniform_unit_spec(unsigned k, unsigned s, double p) {
  return {std::shared_ptr<ArrivalModel>(make_uniform_arrivals(k, s, p)),
          std::make_shared<DeterministicService>(1)};
}

// ---------------------------------------------------------------------------
// Sweep: uniform traffic, unit service (eqs. 6 and 7)
// ---------------------------------------------------------------------------

class UniformUnitSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, double>> {
};

bool unstable(unsigned k, unsigned s, double p) {
  return static_cast<double>(k) * p / static_cast<double>(s) >= 1.0;
}

TEST_P(UniformUnitSweep, GenericMatchesClosedForm) {
  const auto [k, s, p] = GetParam();
  if (unstable(k, s, p)) GTEST_SKIP() << "rho >= 1";
  const FirstStage fs(uniform_unit_spec(k, s, p));
  const WaitingMoments m = fs.moments();
  EXPECT_NEAR(m.mean, closed::eq6_mean(k, s, p), 1e-10);
  EXPECT_NEAR(m.variance, closed::eq7_variance(k, s, p), 1e-10);
}

TEST_P(UniformUnitSweep, DistributionReproducesMoments) {
  const auto [k, s, p] = GetParam();
  if (unstable(k, s, p)) GTEST_SKIP() << "rho >= 1";
  const FirstStage fs(uniform_unit_spec(k, s, p));
  const auto dist = fs.distribution(2048);
  double sum = 0.0, mean = 0.0, second = 0.0;
  for (std::size_t j = 0; j < dist.size(); ++j) {
    EXPECT_GE(dist[j], -1e-12) << "negative probability at " << j;
    sum += dist[j];
    mean += static_cast<double>(j) * dist[j];
    second += static_cast<double>(j) * static_cast<double>(j) * dist[j];
  }
  EXPECT_NEAR(sum, 1.0, 1e-8);
  const WaitingMoments m = fs.moments();
  // The j- and j^2-weighted sums amplify the O(N^2) floating-point
  // accumulation of the series inversion; compare relatively.
  EXPECT_NEAR(mean, m.mean, 1e-5 * (1.0 + m.mean));
  EXPECT_NEAR(second - mean * mean, m.variance, 5e-3 * (1.0 + m.variance));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UniformUnitSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)));

// ---------------------------------------------------------------------------
// Sweep: bulk arrivals (Section III-A-2)
// ---------------------------------------------------------------------------

class BulkSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, double, unsigned>> {
};

TEST_P(BulkSweep, GenericMatchesClosedForm) {
  const auto [k, p, b] = GetParam();
  if (p * static_cast<double>(b) >= 1.0) GTEST_SKIP() << "rho >= 1";
  QueueSpec spec{std::shared_ptr<ArrivalModel>(make_bulk_arrivals(k, k, p, b)),
                 std::make_shared<DeterministicService>(1)};
  const FirstStage fs(spec);
  const WaitingMoments m = fs.moments();
  EXPECT_NEAR(m.mean, closed::bulk_mean(k, k, p, b), 1e-10);
  EXPECT_NEAR(m.variance, closed::bulk_variance(k, k, p, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, BulkSweep,
                         ::testing::Combine(::testing::Values(2u, 4u),
                                            ::testing::Values(0.05, 0.1, 0.2),
                                            ::testing::Values(1u, 2u, 4u,
                                                              8u)));

TEST(Bulk, BEqualsOneReducesToUniform) {
  for (double p : {0.2, 0.6}) {
    EXPECT_NEAR(closed::bulk_mean(2, 2, p, 1), closed::eq6_mean(2, 2, p),
                1e-12);
    EXPECT_NEAR(closed::bulk_variance(2, 2, p, 1),
                closed::eq7_variance(2, 2, p), 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Sweep: nonuniform favorite-output traffic (Section III-A-3)
// ---------------------------------------------------------------------------

class NonuniformSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, double, double>> {};

TEST_P(NonuniformSweep, GenericMatchesClosedForm) {
  const auto [k, p, q] = GetParam();
  QueueSpec spec{
      std::shared_ptr<ArrivalModel>(make_nonuniform_arrivals(k, p, q)),
      std::make_shared<DeterministicService>(1)};
  const FirstStage fs(spec);
  const WaitingMoments m = fs.moments();
  EXPECT_NEAR(m.mean, closed::nonuniform_mean(k, p, q), 1e-10);
  EXPECT_NEAR(m.variance, closed::nonuniform_variance(k, p, q), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NonuniformSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(0.3, 0.5, 0.8),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.95)));

TEST(Nonuniform, FullyFavoredHasZeroWaiting) {
  // q = 1, b = 1: each queue sees one Bernoulli input -> no waiting.
  QueueSpec spec{
      std::shared_ptr<ArrivalModel>(make_nonuniform_arrivals(4, 0.7, 1.0)),
      std::make_shared<DeterministicService>(1)};
  const WaitingMoments m = FirstStage(spec).moments();
  EXPECT_NEAR(m.mean, 0.0, 1e-12);
  EXPECT_NEAR(m.variance, 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Sweep: constant service time m (Section III-D-1, eqs. 8 and 9)
// ---------------------------------------------------------------------------

class ConstantServiceSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, double, unsigned>> {
};

TEST_P(ConstantServiceSweep, GenericMatchesClosedForm) {
  const auto [k, rho, m] = GetParam();
  const double p = rho / static_cast<double>(m);
  QueueSpec spec{std::shared_ptr<ArrivalModel>(make_uniform_arrivals(k, k, p)),
                 std::make_shared<DeterministicService>(m)};
  const FirstStage fs(spec);
  const WaitingMoments wm = fs.moments();
  EXPECT_NEAR(wm.mean, closed::eq8_mean(k, k, p, m), 1e-9);
  EXPECT_NEAR(wm.variance, closed::eq9_variance(k, k, p, m), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConstantServiceSweep,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)));

TEST(ConstantService, PaperTableIIIAnchors) {
  // ANALYSIS row values implied by eq. (8) at rho = 0.5, k = 2.
  EXPECT_NEAR(closed::eq8_mean(2, 2, 0.25, 2), 0.75, 1e-12);
  EXPECT_NEAR(closed::eq8_mean(2, 2, 0.125, 4), 1.75, 1e-12);
  EXPECT_NEAR(closed::eq8_mean(2, 2, 0.0625, 8), 3.75, 1e-12);
}

// ---------------------------------------------------------------------------
// Multiple service sizes (Section III-D-2)
// ---------------------------------------------------------------------------

TEST(MultiSize, DegenerateMixtureMatchesConstant) {
  QueueSpec mixed{
      std::shared_ptr<ArrivalModel>(make_uniform_arrivals(2, 2, 0.1)),
      std::make_shared<MultiSizeService>(
          std::vector<MultiSizeService::Size>{{4, 1.0}})};
  QueueSpec constant{
      std::shared_ptr<ArrivalModel>(make_uniform_arrivals(2, 2, 0.1)),
      std::make_shared<DeterministicService>(4)};
  const WaitingMoments a = FirstStage(mixed).moments();
  const WaitingMoments b = FirstStage(constant).moments();
  EXPECT_NEAR(a.mean, b.mean, 1e-12);
  EXPECT_NEAR(a.variance, b.variance, 1e-12);
}

TEST(MultiSize, GenericMatchesEq2WithMixtureMoments) {
  // Table IV traffic: sizes 4 and 8.
  for (double g4 : {0.25, 0.5, 0.75}) {
    const std::vector<MultiSizeService::Size> sizes = {{4, g4},
                                                       {8, 1.0 - g4}};
    const double mbar = 4.0 * g4 + 8.0 * (1.0 - g4);
    const double p = 0.5 / mbar;  // rho = 0.5
    QueueSpec spec{
        std::shared_ptr<ArrivalModel>(make_uniform_arrivals(2, 2, p)),
        std::make_shared<MultiSizeService>(sizes)};
    const FirstStage fs(spec);
    const double lambda = p;
    const double r2 = lambda * lambda * 0.5;
    const double u2 = g4 * 12.0 + (1.0 - g4) * 56.0;
    EXPECT_NEAR(fs.moments().mean, closed::eq2_mean(lambda, mbar, r2, u2),
                1e-10);
  }
}

// ---------------------------------------------------------------------------
// Geometric service and the M/M/1 limit (Sections III-B, III-C)
// ---------------------------------------------------------------------------

TEST(GeometricServiceQueue, MatchesClosedForm) {
  for (double mu : {0.3, 0.5, 0.9}) {
    const double p = 0.4 * mu;  // rho = 0.4
    QueueSpec spec{
        std::shared_ptr<ArrivalModel>(make_uniform_arrivals(2, 2, p)),
        std::make_shared<GeometricService>(mu)};
    const WaitingMoments m = FirstStage(spec).moments();
    EXPECT_NEAR(m.mean, closed::geometric_mean(2, 2, p, mu), 1e-10);
    EXPECT_NEAR(m.variance, closed::geometric_variance(2, 2, p, mu), 1e-9);
  }
}

TEST(GeometricServiceQueue, MuOneMatchesUnitService) {
  const double p = 0.5;
  QueueSpec geo{std::shared_ptr<ArrivalModel>(make_uniform_arrivals(2, 2, p)),
                std::make_shared<GeometricService>(1.0)};
  const WaitingMoments m = FirstStage(geo).moments();
  EXPECT_NEAR(m.mean, closed::eq6_mean(2, 2, p), 1e-10);
  EXPECT_NEAR(m.variance, closed::eq7_variance(2, 2, p), 1e-10);
}

TEST(Mm1Limit, DiscreteQueueConvergesToMm1) {
  // Section III-C: scale to n cycles per time unit (mu -> mu0/n, p -> p0/n);
  // the discrete waiting time (in scaled cycles, i.e. divided by n)
  // converges to the M/M/1 waiting time.
  const double mu0 = 1.0;   // continuous service rate
  const double rho = 0.6;   // traffic intensity
  const auto ref = mg1::mm1_waiting(rho * mu0, mu0);
  double prev_err = 1e9;
  for (double n : {8.0, 32.0, 128.0}) {
    const double mu = mu0 / n;
    const double p = rho * mu;  // per-cycle arrival probability, k = s
    QueueSpec spec{
        std::shared_ptr<ArrivalModel>(make_uniform_arrivals(1, 1, p)),
        std::make_shared<GeometricService>(mu)};
    const WaitingMoments m = FirstStage(spec).moments();
    const double scaled_mean = m.mean / n;
    const double err = std::abs(scaled_mean - ref.mean);
    EXPECT_LT(err, prev_err) << "n=" << n;
    prev_err = err;
    if (n >= 128.0) {
      EXPECT_NEAR(scaled_mean, ref.mean, 0.02 * ref.mean);
      EXPECT_NEAR(m.variance / (n * n), ref.variance, 0.03 * ref.variance);
    }
  }
}

// ---------------------------------------------------------------------------
// Transform and edge cases
// ---------------------------------------------------------------------------

TEST(Transform, MatchesSeriesAtInteriorPoint) {
  const FirstStage fs(uniform_unit_spec(2, 2, 0.5));
  const auto dist = fs.distribution(4096);
  for (double z : {0.0, 0.25, 0.5, 0.75}) {
    double series_val = 0.0;
    for (std::size_t j = dist.size(); j-- > 0;)
      series_val = series_val * z + dist[j];
    EXPECT_NEAR(fs.transform_at(z), series_val, 1e-9) << "z=" << z;
  }
}

TEST(Transform, ProbabilityOfZeroWait) {
  // P(w=0) = t(0) = (1-rho)/lambda * (1 - R(0))/R(0) ... spot value via
  // both paths.
  const FirstStage fs(uniform_unit_spec(2, 2, 0.5));
  const auto dist = fs.distribution(8);
  EXPECT_NEAR(dist[0], fs.transform_at(0.0), 1e-12);
}

TEST(FirstStage, MeanIncreasesWithLoad) {
  double prev = -1.0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double mean = FirstStage(uniform_unit_spec(2, 2, p)).moments().mean;
    EXPECT_GT(mean, prev);
    prev = mean;
  }
}

TEST(FirstStage, SkewnessIsPositive) {
  // Waiting-time distributions here are right-skewed.
  const WaitingMoments m =
      FirstStage(uniform_unit_spec(2, 2, 0.5)).moments();
  EXPECT_GT(m.skewness(), 0.0);
}

TEST(FirstStage, DelayAddsService) {
  QueueSpec spec{
      std::shared_ptr<ArrivalModel>(make_uniform_arrivals(2, 2, 0.1)),
      std::make_shared<MultiSizeService>(
          std::vector<MultiSizeService::Size>{{2, 0.5}, {6, 0.5}})};
  const FirstStage fs(spec);
  EXPECT_NEAR(fs.mean_delay(), fs.moments().mean + 4.0, 1e-12);
  // Var(service) = E[U^2]-16 with E[U^2] = 0.5*4+0.5*36 = 20 -> 4.
  EXPECT_NEAR(fs.variance_delay(), fs.moments().variance + 4.0, 1e-12);
}

TEST(FirstStage, RejectsUnstableAndDegenerate) {
  // Saturated / overloaded queues are numeric errors (typed, so the CLI
  // maps them to the numeric exit code and can suggest a rho cap).
  try {
    FirstStage fs(uniform_unit_spec(2, 2, 1.0));  // rho = 1
    FAIL() << "expected ksw::Error";
  } catch (const ksw::Error& e) {
    EXPECT_EQ(e.kind(), ksw::ErrorKind::kNumeric);
    EXPECT_NE(std::string(e.what()).find("rho"), std::string::npos);
  }
  QueueSpec overloaded{
      std::shared_ptr<ArrivalModel>(make_uniform_arrivals(2, 2, 0.6)),
      std::make_shared<DeterministicService>(2)};  // rho = 1.2
  EXPECT_THROW(FirstStage{overloaded}, ksw::Error);
  QueueSpec null_model{nullptr, std::make_shared<DeterministicService>(1)};
  EXPECT_THROW(FirstStage{null_model}, std::invalid_argument);
}

TEST(FirstStage, RejectsLoadsInsideTheSaturationMargin) {
  // rho within 1e-6 of 1 is rejected up front with the suggested cap
  // rather than surfacing later as an ill-conditioned series division.
  try {
    FirstStage fs(uniform_unit_spec(1, 1, 1.0 - 1e-9));
    FAIL() << "expected ksw::Error";
  } catch (const ksw::Error& e) {
    EXPECT_EQ(e.kind(), ksw::ErrorKind::kNumeric);
    EXPECT_NE(std::string(e.what()).find("saturation"), std::string::npos);
  }
  // Comfortably below the margin still constructs.
  EXPECT_NO_THROW(FirstStage(uniform_unit_spec(1, 1, 0.999)));
}

TEST(UnfinishedWork, DistributionIsNormalized) {
  const FirstStage fs(uniform_unit_spec(2, 2, 0.5));
  const auto pmf = fs.unfinished_work_distribution(512);
  double sum = 0.0;
  for (double x : pmf) {
    EXPECT_GE(x, -1e-12);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(UnfinishedWork, ZeroProbabilityMatchesClosedForm) {
  // Psi(0) = (1 - rho) / C(0) with C(0) = R(U(0)) = P(no arrivals).
  const FirstStage fs(uniform_unit_spec(2, 2, 0.5));
  const auto pmf = fs.unfinished_work_distribution(8);
  EXPECT_NEAR(pmf[0], 0.5 / 0.5625, 1e-12);
}

TEST(UnfinishedWork, WaitDecomposition) {
  // w = s + w' with E[w'] = m R''(1) / (2 lambda) (same-cycle batch
  // predecessors), so E[s] = E[w] - m R''(1)/(2 lambda).
  for (double p : {0.3, 0.5, 0.8}) {
    const FirstStage fs(uniform_unit_spec(2, 2, p));
    const auto pmf = fs.unfinished_work_distribution(2048);
    double mean_s = 0.0;
    for (std::size_t j = 0; j < pmf.size(); ++j)
      mean_s += static_cast<double>(j) * pmf[j];
    const double lambda = p;
    const double r2 = lambda * lambda * 0.5;
    EXPECT_NEAR(mean_s, fs.moments().mean - r2 / (2.0 * lambda), 1e-6)
        << "p=" << p;
  }
}

TEST(UnfinishedWork, OverflowProbabilityDecreasesInCapacity) {
  const FirstStage fs(uniform_unit_spec(2, 2, 0.8));
  double prev = 1.0;
  for (std::size_t c : {0u, 2u, 4u, 8u, 16u}) {
    const double overflow = fs.overflow_probability(c);
    EXPECT_LT(overflow, prev);
    EXPECT_GE(overflow, 0.0);
    prev = overflow;
  }
  EXPECT_LT(fs.overflow_probability(64), 1e-3);
}

TEST(FirstStage, DistributionTailDecaysGeometrically) {
  const FirstStage fs(uniform_unit_spec(2, 2, 0.95));
  const auto dist = fs.distribution(128);
  // Far in the tail, successive ratios approach a constant < 1 (the
  // reciprocal of the dominant pole of t(z)).
  const double r1 = dist[60] / dist[59];
  const double r2 = dist[100] / dist[99];
  EXPECT_NEAR(r1, r2, 1e-6);
  EXPECT_LT(r1, 1.0);
  EXPECT_GT(r1, 0.0);
}

}  // namespace
}  // namespace ksw::core
