#include "core/mg1.hpp"

#include <gtest/gtest.h>

namespace ksw::core::mg1 {
namespace {

TEST(Mm1, KnownClosedForm) {
  // E(w) = rho / (mu - lambda); Var(w) = rho(2-rho)/(mu-lambda)^2.
  const double lambda = 0.5, mu = 1.0;
  const auto w = mm1_waiting(lambda, mu);
  EXPECT_NEAR(w.mean, 0.5 / 0.5, 1e-12);
  EXPECT_NEAR(w.variance, 0.5 * 1.5 / 0.25, 1e-12);
}

TEST(Mm1, HeavyTrafficBlowsUp) {
  const auto light = mm1_waiting(0.1, 1.0);
  const auto heavy = mm1_waiting(0.95, 1.0);
  EXPECT_GT(heavy.mean, 50.0 * light.mean);
}

TEST(Md1, KnownClosedForm) {
  // E(w) = rho s / (2(1-rho)).
  const double lambda = 0.5, s = 1.0;
  const auto w = md1_waiting(lambda, s);
  EXPECT_NEAR(w.mean, 0.5 / (2.0 * 0.5), 1e-12);
}

TEST(Md1, HalfTheMm1Mean) {
  // Deterministic service halves the PK mean vs exponential.
  const auto d = md1_waiting(0.6, 1.0);
  const auto m = mm1_waiting(0.6, 1.0);
  EXPECT_NEAR(d.mean, 0.5 * m.mean, 1e-12);
}

TEST(Mg1, MatchesSpecializations) {
  const double lambda = 0.4;
  const auto direct = mg1_waiting(lambda, 1.0, 2.0, 6.0);
  const auto viamm1 = mm1_waiting(lambda, 1.0);
  EXPECT_NEAR(direct.mean, viamm1.mean, 1e-12);
  EXPECT_NEAR(direct.variance, viamm1.variance, 1e-12);
}

TEST(Mg1, RejectsUnstable) {
  EXPECT_THROW(mg1_waiting(1.0, 1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1_waiting(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(md1_waiting(0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::core::mg1
