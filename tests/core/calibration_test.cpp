#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ksw::core {
namespace {

TEST(LimitEstimate, AveragesTail) {
  const std::vector<StageObservation> obs = {
      {1, 0.25, 0.25}, {2, 0.28, 0.30}, {3, 0.30, 0.34}, {4, 0.30, 0.34}};
  const auto lim = limit_estimate(obs, 2);
  EXPECT_NEAR(lim.mean, 0.30, 1e-12);
  EXPECT_NEAR(lim.variance, 0.34, 1e-12);
  EXPECT_THROW(limit_estimate({}), std::invalid_argument);
}

TEST(FitMeanCoeff, RecoversPaperValue) {
  // The paper's own fit: w1 = 0.25, w_inf ~ 0.3 at rho = 0.5, k = 2 gives
  // coefficient 4/5 in "1 + (4/5) rho/k".
  EXPECT_NEAR(fit_mean_coeff(0.25, 0.30, 0.5, 2), 0.8, 1e-12);
  EXPECT_THROW(fit_mean_coeff(0.0, 0.3, 0.5, 2), std::invalid_argument);
}

TEST(FitStageRate, RecoversSyntheticRate) {
  // Generate stage means from the eq. 12 model with a = 0.35 and check the
  // fit recovers it.
  const double w1 = 0.25, w_inf = 0.31, a = 0.35;
  std::vector<StageObservation> obs;
  for (unsigned i = 1; i <= 8; ++i) {
    const double wi =
        w1 + (w_inf - w1) * (1.0 - std::pow(a, static_cast<double>(i - 1)));
    obs.push_back({i, wi, 0.0});
  }
  EXPECT_NEAR(fit_stage_rate(obs, w1, w_inf), a, 1e-9);
}

TEST(FitStageRate, ToleratesNoisyTail) {
  const double w1 = 0.25, w_inf = 0.31, a = 0.4;
  std::vector<StageObservation> obs;
  for (unsigned i = 1; i <= 8; ++i) {
    double wi =
        w1 + (w_inf - w1) * (1.0 - std::pow(a, static_cast<double>(i - 1)));
    if (i >= 7) wi = w_inf + 0.001;  // noise past the limit
    obs.push_back({i, wi, 0.0});
  }
  EXPECT_NEAR(fit_stage_rate(obs, w1, w_inf), a, 0.05);
}

TEST(FitStageRate, RejectsDegenerateInput) {
  const std::vector<StageObservation> only_first = {{1, 0.25, 0.0}};
  EXPECT_THROW(fit_stage_rate(only_first, 0.25, 0.25),
               std::invalid_argument);
}

TEST(FitVarCoeffs, RecoversSyntheticCoefficients) {
  // v_inf/v1 = 1 + 1.2 rho/k + 0.7 rho^2/k.
  const unsigned k = 2;
  std::vector<VarPoint> pts;
  for (double rho : {0.2, 0.4, 0.6, 0.8}) {
    const double v1 = 0.1 + rho;  // arbitrary positive baseline
    const double ratio = 1.0 + 1.2 * rho / k + 0.7 * rho * rho / k;
    pts.push_back({rho, v1, ratio * v1});
  }
  const auto [lin, quad] = fit_var_coeffs(pts, k);
  EXPECT_NEAR(lin, 1.2, 1e-9);
  EXPECT_NEAR(quad, 0.7, 1e-9);
}

TEST(FitVarCoeffs, RejectsBadInput) {
  std::vector<VarPoint> one = {{0.5, 0.25, 0.3}};
  EXPECT_THROW(fit_var_coeffs(one, 2), std::invalid_argument);
  std::vector<VarPoint> collinear = {{0.0, 1.0, 1.0}, {0.0, 1.0, 1.0}};
  EXPECT_THROW(fit_var_coeffs(collinear, 2), std::invalid_argument);
}

TEST(FitLinearSlope, RecoversSlope) {
  std::vector<SlopePoint> pts;
  for (double q : {0.1, 0.3, 0.5, 0.9}) pts.push_back({q, 1.0 - 0.45 * q});
  EXPECT_NEAR(fit_linear_slope(pts), -0.45, 1e-12);
  std::vector<SlopePoint> zeros = {{0.0, 1.0}};
  EXPECT_THROW(fit_linear_slope(zeros), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::core
