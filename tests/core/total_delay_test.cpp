#include "core/total_delay.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ksw::core {
namespace {

LaterStages reference_stages() {
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  return LaterStages(spec);
}

TEST(TotalDelay, MeanIsSumOfStageMeans) {
  const LaterStages ls = reference_stages();
  const TotalDelay td(ls, 6);
  double manual = 0.0;
  for (unsigned i = 1; i <= 6; ++i) manual += ls.mean_at_stage(i);
  EXPECT_NEAR(td.mean_total(), manual, 1e-12);
}

TEST(TotalDelay, CovarianceModelMatchesPaperConstants) {
  // k = 2, rho = 0.5, m = 1: a = 0.12, b = 0.4 (Table VI discussion).
  const TotalDelay td(reference_stages(), 8);
  const double v4 = td.covariance(4, 4);
  EXPECT_NEAR(td.covariance(4, 5) / v4, 0.12, 1e-12);
  EXPECT_NEAR(td.covariance(4, 6) / v4, 0.12 * 0.4, 1e-12);
  EXPECT_NEAR(td.covariance(4, 7) / v4, 0.12 * 0.16, 1e-12);
  // Symmetric access.
  EXPECT_DOUBLE_EQ(td.covariance(5, 4), td.covariance(4, 5));
}

TEST(TotalDelay, CorrelationMatchesTableVI) {
  // Observed neighbor correlations in Table VI are ~0.118-0.124; the model
  // value sits in that band (correlation uses both stages' variances).
  const TotalDelay td(reference_stages(), 8);
  const double c45 = td.correlation(4, 5);
  EXPECT_GT(c45, 0.10);
  EXPECT_LT(c45, 0.13);
}

TEST(TotalDelay, VarianceWithCovarianceExceedsIndependent) {
  const TotalDelay td(reference_stages(), 12);
  EXPECT_GT(td.variance_total(true), td.variance_total(false));
}

TEST(TotalDelay, VarianceMatchesExplicitDoubleSum) {
  const TotalDelay td(reference_stages(), 7);
  double manual = 0.0;
  for (unsigned i = 1; i <= 7; ++i)
    for (unsigned j = 1; j <= 7; ++j) manual += td.covariance(i, j);
  EXPECT_NEAR(td.variance_total(true), manual, 1e-10);
}

TEST(TotalDelay, SingleStageReducesToFirstStage) {
  const LaterStages ls = reference_stages();
  const TotalDelay td(ls, 1);
  EXPECT_NEAR(td.mean_total(), ls.mean_first_stage(), 1e-12);
  EXPECT_NEAR(td.variance_total(), ls.variance_first_stage(), 1e-12);
}

TEST(TotalDelay, GammaApproximationMatchesMoments) {
  const TotalDelay td(reference_stages(), 9);
  const auto gamma = td.gamma_approximation();
  EXPECT_NEAR(gamma.mean(), td.mean_total(), 1e-10);
  EXPECT_NEAR(gamma.variance(), td.variance_total(), 1e-10);
}

TEST(TotalDelay, MeanGrowsLinearlyInDepth) {
  const LaterStages ls = reference_stages();
  const double w3 = TotalDelay(ls, 3).mean_total();
  const double w6 = TotalDelay(ls, 6).mean_total();
  const double w12 = TotalDelay(ls, 12).mean_total();
  // Once stages have converged, each extra stage adds ~w_inf.
  EXPECT_NEAR(w12 - w6, 6.0 * ls.mean_limit(), 0.01);
  EXPECT_LT(w6 - w3, w12 - w6 + 1e-12);
}

TEST(TotalDelay, TotalDelayAddsServiceTime) {
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.125;
  spec.service = std::make_shared<DeterministicService>(4);
  const LaterStages ls(spec);
  const TotalDelay td(ls, 6);
  // Cut-through: n + m - 1 = 9 cycles of service.
  EXPECT_NEAR(td.mean_total_delay(), td.mean_total() + 9.0, 1e-12);
}

TEST(TotalDelay, RejectsZeroStagesAndBadIndices) {
  const LaterStages ls = reference_stages();
  EXPECT_THROW(TotalDelay(ls, 0), std::invalid_argument);
  const TotalDelay td(ls, 4);
  EXPECT_THROW(td.covariance(0, 1), std::invalid_argument);
  EXPECT_THROW(td.covariance(1, 5), std::invalid_argument);
}

TEST(TotalDelay, MessageSizeFourAnchors) {
  // rho = 0.5, m = 4, k = 2 (Table X operating point): first stage exact
  // 1.75, later stages 1.2, so n = 3 -> 4.15.
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.125;
  spec.service = std::make_shared<DeterministicService>(4);
  const TotalDelay td(LaterStages(spec), 3);
  EXPECT_NEAR(td.mean_total(), 1.75 + 2.0 * 1.2, 1e-9);
}

}  // namespace
}  // namespace ksw::core
