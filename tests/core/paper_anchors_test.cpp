// Regression net: pin the analysis to numbers printed in the paper
// (legible table entries and worked values). These are golden values — if
// any of them moves, the reproduction has drifted.
#include <gtest/gtest.h>

#include <memory>

#include "core/closed_forms.hpp"
#include "core/first_stage.hpp"
#include "core/later_stages.hpp"
#include "core/total_delay.hpp"

namespace ksw::core {
namespace {

// --------------------------------------------------------------------------
// Section IV-A: "For p = 0.5, w1 = 0.25 [see (6)], and, from the
// simulations in Table I, w_inf seems to be about 0.3."
// --------------------------------------------------------------------------

TEST(PaperAnchors, SectionIvAFirstStage) {
  EXPECT_DOUBLE_EQ(closed::eq6_mean(2, 2, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(closed::eq7_variance(2, 2, 0.5), 0.25);
}

TEST(PaperAnchors, SectionIvALimit) {
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  const LaterStages ls(spec);
  EXPECT_DOUBLE_EQ(ls.mean_limit(), 0.3);
  EXPECT_DOUBLE_EQ(ls.variance_limit(), 0.34375);
}

// --------------------------------------------------------------------------
// Table III ESTIMATE row (rho = 0.5, k = 2):
//   m =  2:  w 0.600, v 1.167
//   m =  4:  w 1.200, v 4.667
//   m =  8:  w 2.400, v 18.67
//   m = 16:  w 4.800, v 74.67
// --------------------------------------------------------------------------

TEST(PaperAnchors, TableIiiEstimateRow) {
  const struct {
    unsigned m;
    double w, v;
  } rows[] = {{2, 0.600, 7.0 / 6.0},
              {4, 1.200, 14.0 / 3.0},
              {8, 2.400, 56.0 / 3.0},
              {16, 4.800, 224.0 / 3.0}};
  for (const auto& row : rows) {
    NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = 0.5 / static_cast<double>(row.m);
    spec.service = std::make_shared<DeterministicService>(row.m);
    const LaterStages ls(spec);
    EXPECT_NEAR(ls.mean_limit(), row.w, 1e-12) << "m=" << row.m;
    EXPECT_NEAR(ls.variance_limit(), row.v, 1e-12) << "m=" << row.m;
  }
}

// --------------------------------------------------------------------------
// Table V ESTIMATE row (rho = 0.5, k = 2, m = 1), q in {0, .25, .5, .75}:
//   0.3000/0.3438, 0.2695/0.3003, 0.2063/0.2227, 0.1148/0.1196
// Our q-slopes are re-fitted (the paper's are illegible), so match the
// paper's printed values within 1%.
// --------------------------------------------------------------------------

TEST(PaperAnchors, TableVEstimateRow) {
  const struct {
    double q, w, v;
  } rows[] = {{0.00, 0.3000, 0.3438},
              {0.25, 0.2695, 0.3003},
              {0.50, 0.2063, 0.2227},
              {0.75, 0.1148, 0.1196}};
  for (const auto& row : rows) {
    NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = 0.5;
    spec.q = row.q;
    const LaterStages ls(spec);
    EXPECT_NEAR(ls.mean_limit(), row.w, 0.02 * row.w + 1e-4)
        << "q=" << row.q;
    EXPECT_NEAR(ls.variance_limit(), row.v, 0.011 * row.v + 1e-4)
        << "q=" << row.q;
  }
}

// --------------------------------------------------------------------------
// Table VIII prediction column (k = 2, p = 0.05, m = 4; n = 12):
// the paper prints 3.429 / 12.642.
// --------------------------------------------------------------------------

TEST(PaperAnchors, TableViiiPredictionColumn) {
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.05;
  spec.service = std::make_shared<DeterministicService>(4);
  const TotalDelay td(LaterStages(spec), 12);
  EXPECT_NEAR(td.mean_total(), 3.429, 0.03);
  EXPECT_NEAR(td.variance_total(), 12.642, 0.15);
}

// --------------------------------------------------------------------------
// Section III-A-1 light-traffic check and III-A-3 boundary cases.
// --------------------------------------------------------------------------

TEST(PaperAnchors, NonuniformBoundaries) {
  // "Note that for q = 1, we get E(w) = 0, and for q = 0 we obtain the
  // same formula as in Section III-A-1."
  EXPECT_DOUBLE_EQ(closed::nonuniform_mean(2, 0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(closed::nonuniform_mean(2, 0.5, 0.0),
                   closed::eq6_mean(2, 2, 0.5));
}

// --------------------------------------------------------------------------
// Section V covariance constants at k = 2, rho = 0.5, m = 1:
// a = (1 - 0.2) * 0.3/2 = 0.12, b = 0.8/2 = 0.4 (Table VI discussion).
// --------------------------------------------------------------------------

TEST(PaperAnchors, CovarianceConstants) {
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  const TotalDelay td(LaterStages(spec), 8);
  const double v4 = td.covariance(4, 4);
  EXPECT_DOUBLE_EQ(td.covariance(4, 5) / v4, 0.12);
  EXPECT_DOUBLE_EQ(td.covariance(4, 6) / td.covariance(4, 5), 0.4);
}

// --------------------------------------------------------------------------
// Table I ANALYSIS row spans (eqs. 6/7 over the rho grid).
// --------------------------------------------------------------------------

TEST(PaperAnchors, TableIAnalysisRow) {
  EXPECT_NEAR(closed::eq6_mean(2, 2, 0.2), 0.0625, 1e-12);
  EXPECT_NEAR(closed::eq6_mean(2, 2, 0.8), 1.0, 1e-12);
  EXPECT_NEAR(closed::eq7_variance(2, 2, 0.8), 1.6, 1e-12);
}

}  // namespace
}  // namespace ksw::core
