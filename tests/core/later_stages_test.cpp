#include "core/later_stages.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/closed_forms.hpp"

namespace ksw::core {
namespace {

NetworkTrafficSpec unit_spec(unsigned k, double p) {
  NetworkTrafficSpec spec;
  spec.k = k;
  spec.p = p;
  return spec;
}

TEST(NetworkTrafficSpec, RhoComposition) {
  NetworkTrafficSpec spec;
  spec.p = 0.125;
  spec.bulk = 2;
  spec.service = std::make_shared<DeterministicService>(2);
  EXPECT_NEAR(spec.lambda(), 0.25, 1e-12);
  EXPECT_NEAR(spec.rho(), 0.5, 1e-12);
}

TEST(LaterStages, PaperEstimateAnchorsUnitService) {
  // k = 2, rho = 0.5, m = 1 (paper Tables I/V ESTIMATE row):
  // w1 = 0.25, w_inf = 0.30, v1 = 0.25, v_inf = 0.34375.
  const LaterStages ls(unit_spec(2, 0.5));
  EXPECT_NEAR(ls.mean_first_stage(), 0.25, 1e-12);
  EXPECT_NEAR(ls.mean_limit(), 0.30, 1e-12);
  EXPECT_NEAR(ls.variance_first_stage(), 0.25, 1e-12);
  EXPECT_NEAR(ls.variance_limit(), 0.34375, 1e-12);
}

TEST(LaterStages, RatioShrinksWithSwitchSize) {
  // Section IV-A: a ~ 0.4 at k=2, ~0.2 at k=4, ~0.1 at k=8.
  for (unsigned k : {2u, 4u, 8u}) {
    const LaterStages ls(unit_spec(k, 0.5));
    const double ratio = ls.mean_limit() / ls.mean_first_stage();
    EXPECT_NEAR(ratio, 1.0 + 0.4 / static_cast<double>(k), 1e-12);
  }
}

TEST(LaterStages, StageSequenceApproachesLimitGeometrically) {
  const LaterStages ls(unit_spec(2, 0.5));
  double prev = ls.mean_at_stage(1);
  for (unsigned i = 2; i <= 10; ++i) {
    const double cur = ls.mean_at_stage(i);
    EXPECT_GT(cur, prev);
    EXPECT_LE(cur, ls.mean_limit() + 1e-12);
    prev = cur;
  }
  // Residuals shrink by the stage rate a = 2/5 each stage.
  const double r3 = ls.mean_limit() - ls.mean_at_stage(3);
  const double r4 = ls.mean_limit() - ls.mean_at_stage(4);
  EXPECT_NEAR(r4 / r3, 0.4, 1e-9);
}

TEST(LaterStages, StageOneIsExact) {
  const LaterStages ls(unit_spec(2, 0.5));
  EXPECT_DOUBLE_EQ(ls.mean_at_stage(1), ls.mean_first_stage());
  EXPECT_DOUBLE_EQ(ls.variance_at_stage(1), ls.variance_first_stage());
  EXPECT_THROW(ls.mean_at_stage(0), std::invalid_argument);
}

TEST(LaterStages, PaperEstimateAnchorsMessageSize) {
  // Paper Table III ESTIMATE row (rho = 0.5, k = 2):
  // m = 2 -> w_inf = 0.600, v_inf = 1.1667
  // m = 4 -> 1.200 / 4.667;  m = 8 -> 2.400 / 18.67.
  for (unsigned m : {2u, 4u, 8u, 16u}) {
    NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = 0.5 / static_cast<double>(m);
    spec.service = std::make_shared<DeterministicService>(m);
    const LaterStages ls(spec);
    const double md = m;
    EXPECT_NEAR(ls.mean_limit(), 0.3 * md, 1e-9) << "m=" << m;
    EXPECT_NEAR(ls.variance_limit(), md * md * (7.0 / 6.0) * 0.25, 1e-9)
        << "m=" << m;
  }
}

TEST(LaterStages, MessageSizeLimitUsedForAllLaterStages) {
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.125;
  spec.service = std::make_shared<DeterministicService>(4);
  const LaterStages ls(spec);
  EXPECT_DOUBLE_EQ(ls.mean_at_stage(2), ls.mean_limit());
  EXPECT_DOUBLE_EQ(ls.mean_at_stage(7), ls.mean_limit());
  // First stage is the exact eq. (8) value, larger than the smoothed
  // interior stages.
  EXPECT_NEAR(ls.mean_at_stage(1), closed::eq8_mean(2, 2, 0.125, 4), 1e-12);
  EXPECT_GT(ls.mean_at_stage(1), ls.mean_limit());
}

TEST(LaterStages, MultiSizeUsesExactFirstStageRatio) {
  // Section IV-C: w_inf(multi) = (w1_exact / w1_mean-size) * w_inf(mbar).
  NetworkTrafficSpec spec;
  spec.k = 2;
  const std::vector<MultiSizeService::Size> sizes = {{4, 0.5}, {8, 0.5}};
  spec.service = std::make_shared<MultiSizeService>(sizes);
  spec.p = 0.5 / 6.0;  // rho = 0.5, mbar = 6
  const LaterStages ls(spec);

  // Reference: deterministic mean-size network at the same rho.
  NetworkTrafficSpec ref_spec;
  ref_spec.k = 2;
  ref_spec.p = 0.5 / 6.0;
  ref_spec.service = std::make_shared<DeterministicService>(6);
  const LaterStages ref(ref_spec);

  const double ratio = ls.mean_first_stage() / ref.mean_first_stage();
  EXPECT_GT(ratio, 1.0);  // size mixture waits longer than its mean size
  EXPECT_NEAR(ls.mean_limit(), ratio * ref.mean_limit(), 1e-9);
}

TEST(LaterStages, BulkLimitUsesTrainEquivalence) {
  // Downstream of stage 1, a bulk of b unit packets travels as a
  // back-to-back train, behaving like one message of size b: the limit is
  // the eq. 15 value at m = b, NOT an extrapolation of the (much larger)
  // bulk first-stage wait.
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.125;
  spec.bulk = 4;  // rho = 0.5
  const LaterStages ls(spec);
  const double r = 1.0 + 0.8 * 0.5 / 2.0;
  const double unit_mean = 0.5 * 0.5 / (2.0 * 0.5);
  EXPECT_NEAR(ls.mean_limit(), 4.0 * r * unit_mean, 1e-12);
  EXPECT_LT(ls.mean_limit(), ls.mean_first_stage());
  // Variance via the eq. 16 family at m_eff = 4.
  EXPECT_NEAR(ls.variance_limit(),
              16.0 * (1.0 + (2.0 / 3.0) * 0.25) * 0.25, 1e-9);
}

TEST(LaterStages, BulkCombinesWithMessageSize) {
  // Train size = bulk * message size.
  NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.0625;
  spec.bulk = 2;
  spec.service = std::make_shared<DeterministicService>(4);  // rho = 0.5
  const LaterStages ls(spec);
  const double r = 1.2;
  EXPECT_NEAR(ls.mean_limit(), 8.0 * r * 0.25, 1e-12);
}

TEST(LaterStages, NonuniformLimitAnchorsToExactFirstStage) {
  LaterStageOptions opts;
  for (double q : {0.0, 0.25, 0.5}) {
    NetworkTrafficSpec spec = unit_spec(2, 0.5);
    spec.q = q;
    const LaterStages ls(spec, opts);
    const double expected = (1.0 + opts.mean_coeff * 0.5 / 2.0) *
                            (1.0 + opts.nonuni_mean_slope * q) *
                            closed::nonuniform_mean(2, 0.5, q);
    EXPECT_NEAR(ls.mean_limit(), expected, 1e-10) << "q=" << q;
  }
}

TEST(LaterStages, OptionsAreRespected) {
  LaterStageOptions opts;
  opts.mean_coeff = 1.0;
  opts.stage_rate = 0.5;
  const LaterStages ls(unit_spec(2, 0.5), opts);
  EXPECT_NEAR(ls.mean_limit(), 0.25 * (1.0 + 0.25), 1e-12);
  const double r3 = ls.mean_limit() - ls.mean_at_stage(3);
  const double r4 = ls.mean_limit() - ls.mean_at_stage(4);
  EXPECT_NEAR(r4 / r3, 0.5, 1e-9);
}

TEST(LaterStages, RejectsDegenerateSwitch) {
  NetworkTrafficSpec spec = unit_spec(1, 0.5);
  EXPECT_THROW(LaterStages{spec}, std::invalid_argument);
}

TEST(LaterStages, LightTrafficLimitMatchesFirstStage) {
  // As rho -> 0, the interior correction vanishes.
  const LaterStages ls(unit_spec(2, 0.001));
  EXPECT_NEAR(ls.mean_limit() / ls.mean_first_stage(), 1.0, 1e-3);
}

}  // namespace
}  // namespace ksw::core
