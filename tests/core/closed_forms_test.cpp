// Internal-consistency checks among the paper's printed formulas and
// against hand-computed anchor values.
#include "core/closed_forms.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ksw::core::closed {
namespace {

TEST(Eq2, ReducesToEq4ForUnitService) {
  // m = 1, U''(1) = 0.
  for (double lambda : {0.2, 0.5, 0.8})
    for (double r2 : {0.05, 0.2, 0.5})
      EXPECT_NEAR(eq2_mean(lambda, 1.0, r2, 0.0), eq4_mean(lambda, r2),
                  1e-14);
}

TEST(Eq3, ReducesToEq5ForUnitService) {
  for (double lambda : {0.2, 0.5, 0.8})
    for (double r2 : {0.05, 0.2})
      for (double r3 : {0.0, 0.02, 0.1})
        EXPECT_NEAR(eq3_variance(lambda, 1.0, r2, r3, 0.0, 0.0),
                    eq5_variance(lambda, r2, r3), 1e-12);
}

TEST(Eq6Eq7, PaperAnchorValues) {
  // k = 2, p = 0.5: w1 = 0.25, v1 = 0.25 (used throughout Section IV).
  EXPECT_NEAR(eq6_mean(2, 2, 0.5), 0.25, 1e-12);
  EXPECT_NEAR(eq7_variance(2, 2, 0.5), 0.25, 1e-12);
  // Light traffic: w1 ~ (1-1/k) p / 2.
  EXPECT_NEAR(eq6_mean(2, 2, 0.01), 0.5 * 0.01 / (2.0 * 0.99), 1e-12);
}

TEST(Eq6, LargerSwitchesWaitLonger) {
  // At fixed rho, (1-1/k) grows with k.
  EXPECT_LT(eq6_mean(2, 2, 0.5), eq6_mean(4, 4, 0.5));
  EXPECT_LT(eq6_mean(4, 4, 0.5), eq6_mean(8, 8, 0.5));
}

TEST(Eq6, SingleInputNeverWaits) {
  EXPECT_NEAR(eq6_mean(1, 1, 0.5), 0.0, 1e-15);
  EXPECT_NEAR(eq7_variance(1, 1, 0.5), 0.0, 1e-15);
}

TEST(Bulk, MeanGrowsLinearlyInB) {
  // At fixed rho = b k p / s, E(w) ~ (b-1)/(2(1-rho)) + uniform part.
  const double rho = 0.5;
  for (unsigned b : {2u, 4u, 8u}) {
    const double p = rho / static_cast<double>(b);
    const double expected =
        (static_cast<double>(b) - 1.0 + 0.5 * rho) / (2.0 * (1.0 - rho));
    EXPECT_NEAR(bulk_mean(2, 2, p, b), expected, 1e-12);
  }
}

TEST(Bulk, R2R3MatchPaper) {
  const unsigned k = 2, s = 2, b = 4;
  const double p = 0.1;
  const double lambda = 4.0 * 0.1;
  EXPECT_NEAR(bulk_r2(k, s, p, b), lambda * (3.0 + 0.5 * lambda), 1e-12);
  EXPECT_NEAR(bulk_r3(k, s, p, b),
              lambda * (3.0 * 2.0 + 3.0 * lambda * 0.5 * 3.0 +
                        lambda * lambda * 0.5 * 0.0),
              1e-12);
}

TEST(Nonuniform, QZeroMatchesUniform) {
  for (unsigned k : {2u, 4u}) {
    EXPECT_NEAR(nonuniform_mean(k, 0.5, 0.0), eq6_mean(k, k, 0.5), 1e-12);
    EXPECT_NEAR(nonuniform_variance(k, 0.5, 0.0), eq7_variance(k, k, 0.5),
                1e-12);
  }
}

TEST(Nonuniform, QOneIsContentionFree) {
  // Paper III-A-3: "for q = 1, we get E(w) = 0".
  EXPECT_NEAR(nonuniform_mean(2, 0.5, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(nonuniform_mean(8, 0.9, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(nonuniform_variance(4, 0.5, 1.0), 0.0, 1e-12);
}

TEST(Nonuniform, MeanDecreasesInQ) {
  double prev = 1e9;
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double w = nonuniform_mean(2, 0.5, q);
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(Geometric, MuOneMatchesUnitService) {
  EXPECT_NEAR(geometric_mean(2, 2, 0.5, 1.0), eq6_mean(2, 2, 0.5), 1e-12);
  EXPECT_NEAR(geometric_variance(2, 2, 0.5, 1.0), eq7_variance(2, 2, 0.5),
              1e-12);
}

TEST(Geometric, LongerServiceWaitsLonger) {
  // Fixed rho = 0.5; decreasing mu means longer messages.
  double prev = 0.0;
  for (double mu : {1.0, 0.5, 0.25, 0.125}) {
    const double p = 0.5 * mu;
    const double w = geometric_mean(2, 2, p, mu);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(Eq8, MatchesEq6ForUnitService) {
  for (double p : {0.2, 0.5, 0.8})
    EXPECT_NEAR(eq8_mean(2, 2, p, 1), eq6_mean(2, 2, p), 1e-12);
}

TEST(Eq9, MatchesEq7ForUnitService) {
  for (double p : {0.2, 0.5, 0.8})
    EXPECT_NEAR(eq9_variance(2, 2, p, 1), eq7_variance(2, 2, p), 1e-12);
}

TEST(Eq8, WaitingGrowsLinearlyInMessageSize) {
  // Section VI: "for a fixed traffic intensity rho, the average waiting
  // time increases linearly in m".
  const double rho = 0.5;
  const double w4 = eq8_mean(2, 2, rho / 4.0, 4);
  const double w8 = eq8_mean(2, 2, rho / 8.0, 8);
  const double w16 = eq8_mean(2, 2, rho / 16.0, 16);
  // E(w) = rho (m - 1/k) / (2(1-rho)): ratios approach 2 from above.
  EXPECT_NEAR(w8 / w4, (8.0 - 0.5) / (4.0 - 0.5), 1e-12);
  EXPECT_GT(w8 / w4, 2.0);
  EXPECT_LT(w16 / w8, w8 / w4);
}

TEST(Eq9, VarianceGrowsQuadraticallyInMessageSize) {
  // Section VI: "the variance increases quadratically in m".
  const double rho = 0.5;
  const double v4 = eq9_variance(2, 2, rho / 4.0, 4);
  const double v8 = eq9_variance(2, 2, rho / 8.0, 8);
  const double v16 = eq9_variance(2, 2, rho / 16.0, 16);
  // Ratios approach 4 as m grows.
  EXPECT_NEAR(v8 / v4, 4.0, 0.7);
  EXPECT_NEAR(v16 / v8, 4.0, 0.35);
  EXPECT_LT(std::abs(v16 / v8 - 4.0), std::abs(v8 / v4 - 4.0));
}

TEST(Stability, RejectsOverload) {
  EXPECT_THROW(eq6_mean(2, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(eq8_mean(2, 2, 0.3, 4), std::invalid_argument);
  EXPECT_THROW(bulk_mean(2, 2, 0.3, 4), std::invalid_argument);
  EXPECT_THROW(eq2_mean(0.5, 2.0, 0.1, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::core::closed
