#include "core/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ksw::core {
namespace {

TEST(UniformArrivals, MomentsMatchPaperFormulas) {
  // Paper III-A-1: lambda = kp/s, R''(1) = lambda^2 (1-1/k),
  // R'''(1) = lambda^3 (1-1/k)(1-2/k).
  for (unsigned k : {2u, 4u, 8u}) {
    for (unsigned s : {2u, 4u, 8u}) {
      for (double p : {0.1, 0.5, 0.9}) {
        const auto model = make_uniform_arrivals(k, s, p);
        const auto t = model->moments();
        const double kd = k;
        const double lambda = kd * p / static_cast<double>(s);
        EXPECT_NEAR(t.d1, lambda, 1e-12);
        EXPECT_NEAR(t.d2, lambda * lambda * (1.0 - 1.0 / kd), 1e-12);
        EXPECT_NEAR(t.d3,
                    lambda * lambda * lambda * (1.0 - 1.0 / kd) *
                        (1.0 - 2.0 / kd),
                    1e-12);
      }
    }
  }
}

TEST(UniformArrivals, DistributionIsBinomial) {
  const auto model = make_uniform_arrivals(4, 2, 0.5);  // Binomial(4, 1/4)
  const auto d = model->distribution();
  EXPECT_EQ(d.support_size(), 5u);
  EXPECT_NEAR(d.pmf(0), std::pow(0.75, 4), 1e-12);
  EXPECT_NEAR(d.pmf(1), 4 * 0.25 * std::pow(0.75, 3), 1e-12);
  EXPECT_NEAR(d.pmf(4), std::pow(0.25, 4), 1e-12);
}

TEST(BulkArrivals, MomentsMatchPaperFormulas) {
  // Paper III-A-2: lambda = bkp/s, R''(1) = lambda(b-1 + (1-1/k) lambda).
  for (unsigned b : {1u, 2u, 4u, 8u}) {
    const unsigned k = 2, s = 2;
    const double p = 0.2;
    const auto model = make_bulk_arrivals(k, s, p, b);
    const auto t = model->moments();
    const double bd = b;
    const double lambda = bd * p;  // k = s
    EXPECT_NEAR(t.d1, lambda, 1e-12);
    EXPECT_NEAR(t.d2, lambda * (bd - 1.0 + 0.5 * lambda), 1e-12) << "b=" << b;
  }
}

TEST(BulkArrivals, SupportIsMultiplesOfB) {
  const auto model = make_bulk_arrivals(2, 2, 0.4, 3);
  const auto d = model->distribution();
  EXPECT_GT(d.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(d.pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(d.pmf(2), 0.0);
  EXPECT_GT(d.pmf(3), 0.0);
  EXPECT_GT(d.pmf(6), 0.0);
}

TEST(NonuniformArrivals, ReducesToUniformAtQZero) {
  const auto nonuni = make_nonuniform_arrivals(4, 0.6, 0.0);
  const auto uni = make_uniform_arrivals(4, 4, 0.6);
  const auto a = nonuni->moments();
  const auto b = uni->moments();
  EXPECT_NEAR(a.d1, b.d1, 1e-12);
  EXPECT_NEAR(a.d2, b.d2, 1e-12);
  EXPECT_NEAR(a.d3, b.d3, 1e-12);
}

TEST(NonuniformArrivals, LambdaIndependentOfQ) {
  for (double q : {0.0, 0.3, 0.7, 1.0}) {
    const auto model = make_nonuniform_arrivals(4, 0.5, q);
    EXPECT_NEAR(model->lambda(), 0.5, 1e-12) << "q=" << q;
  }
}

TEST(NonuniformArrivals, FullyFavoredHasNoContention) {
  // q = 1: each queue fed by exactly one input -> Bernoulli arrivals,
  // R''(1) = 0.
  const auto model = make_nonuniform_arrivals(4, 0.5, 1.0);
  EXPECT_NEAR(model->moments().d2, 0.0, 1e-12);
}

TEST(ArrivalModelEval, MatchesDistribution) {
  const auto model = make_bulk_arrivals(3, 2, 0.3, 2);
  const auto d = model->distribution();
  for (double z : {0.0, 0.3, 0.9, 1.0}) {
    double direct = 0.0;
    for (std::size_t j = 0; j < d.support_size(); ++j)
      direct += d.pmf(j) * std::pow(z, static_cast<double>(j));
    EXPECT_NEAR(model->eval(z), direct, 1e-12);
  }
  EXPECT_NEAR(model->eval(1.0), 1.0, 1e-12);
}

TEST(DeterministicService, Basics) {
  const DeterministicService svc(3);
  EXPECT_DOUBLE_EQ(svc.mean_service(), 3.0);
  EXPECT_DOUBLE_EQ(svc.moments().d2, 6.0);
  const auto s = svc.series(6);
  EXPECT_DOUBLE_EQ(s[3], 1.0);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_NEAR(svc.eval(0.5), 0.125, 1e-15);
  EXPECT_THROW(DeterministicService(0), std::invalid_argument);
}

TEST(MultiSizeService, MeanAndMoments) {
  const MultiSizeService svc({{4, 0.5}, {8, 0.5}});
  EXPECT_DOUBLE_EQ(svc.mean_service(), 6.0);
  // U''(1) = 0.5*4*3 + 0.5*8*7 = 6 + 28 = 34.
  EXPECT_DOUBLE_EQ(svc.moments().d2, 34.0);
  const auto s = svc.series(10);
  EXPECT_DOUBLE_EQ(s[4], 0.5);
  EXPECT_DOUBLE_EQ(s[8], 0.5);
}

TEST(MultiSizeService, ValidatesInput) {
  EXPECT_THROW(MultiSizeService({{4, 0.5}, {8, 0.6}}), std::invalid_argument);
  EXPECT_THROW(MultiSizeService({{0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(MultiSizeService({}), std::invalid_argument);
}

TEST(GeometricService, MomentsMatchClosedForm) {
  for (double mu : {0.25, 0.5, 1.0}) {
    const GeometricService svc(mu);
    EXPECT_NEAR(svc.mean_service(), 1.0 / mu, 1e-12);
    EXPECT_NEAR(svc.moments().d2, 2.0 * (1.0 - mu) / (mu * mu), 1e-12);
    EXPECT_NEAR(svc.moments().d3,
                6.0 * (1.0 - mu) * (1.0 - mu) / (mu * mu * mu), 1e-12);
  }
  EXPECT_THROW(GeometricService(0.0), std::invalid_argument);
  EXPECT_THROW(GeometricService(1.5), std::invalid_argument);
}

TEST(GeometricService, SeriesMatchesPmf) {
  const GeometricService svc(0.4);
  const auto s = svc.series(10);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  double mass = 0.4;
  for (std::size_t j = 1; j < 10; ++j) {
    EXPECT_NEAR(s[j], mass, 1e-14);
    mass *= 0.6;
  }
}

TEST(GeometricService, EvalMatchesClosedForm) {
  const GeometricService svc(0.3);
  for (double z : {0.0, 0.5, 0.99})
    EXPECT_NEAR(svc.eval(z), 0.3 * z / (1.0 - 0.7 * z), 1e-14);
}

TEST(GeometricService, MuOneIsUnitService) {
  const GeometricService svc(1.0);
  const DeterministicService unit(1);
  EXPECT_NEAR(svc.moments().d1, unit.moments().d1, 1e-12);
  EXPECT_NEAR(svc.moments().d2, unit.moments().d2, 1e-12);
}

TEST(CustomService, RejectsZeroServiceTime) {
  EXPECT_THROW(CustomService(pgf::DiscreteDistribution({0.5, 0.5})),
               std::invalid_argument);
  EXPECT_NO_THROW(CustomService(pgf::DiscreteDistribution({0.0, 0.5, 0.5})));
}

TEST(QueueSpec, RhoIsLambdaTimesM) {
  QueueSpec spec{
      std::shared_ptr<ArrivalModel>(make_uniform_arrivals(2, 2, 0.4)),
      std::make_shared<DeterministicService>(2)};
  EXPECT_NEAR(spec.lambda(), 0.4, 1e-12);
  EXPECT_NEAR(spec.mean_service(), 2.0, 1e-12);
  EXPECT_NEAR(spec.rho(), 0.8, 1e-12);
}

}  // namespace
}  // namespace ksw::core
