// Property tests: randomized traffic/service models (seeded, reproducible)
// must satisfy the structural invariants of the theory, and the two
// independent analysis paths (generic transform machinery vs. explicit
// closed forms) must agree everywhere.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/closed_forms.hpp"
#include "core/first_stage.hpp"
#include "rng/xoshiro.hpp"

namespace ksw::core {
namespace {

struct RandomQueue {
  QueueSpec spec;
  double lambda;
  double r2, r3;  // hand-computed arrival factorial moments
  double u2, u3;  // hand-computed service factorial moments
  double m;
};

// Build a random-but-stable queue: 1-6 inputs with random hit
// probabilities and batch sizes, and a random service distribution,
// rescaled so rho stays below 0.9.
RandomQueue make_random_queue(std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);

  const auto k = static_cast<unsigned>(1 + gen.uniform_int(6));
  std::vector<IndependentInputArrivals::Input> inputs;
  for (unsigned i = 0; i < k; ++i)
    inputs.push_back({0.02 + 0.3 * gen.uniform(),
                      static_cast<std::uint32_t>(1 + gen.uniform_int(3))});

  // Random multi-size service on 1-3 sizes.
  const auto n_sizes = static_cast<unsigned>(1 + gen.uniform_int(3));
  std::vector<MultiSizeService::Size> sizes;
  double total = 0.0;
  for (unsigned i = 0; i < n_sizes; ++i) {
    const double wgt = 0.1 + gen.uniform();
    sizes.push_back({static_cast<std::uint32_t>(1 + gen.uniform_int(4)),
                     wgt});
    total += wgt;
  }
  for (auto& sz : sizes) sz.probability /= total;
  // Exact re-normalization of the last entry.
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i)
    acc += sizes[i].probability;
  sizes.back().probability = 1.0 - acc;

  // Service moments by hand.
  double m = 0.0, u2 = 0.0, u3 = 0.0;
  for (const auto& sz : sizes) {
    const double md = sz.cycles;
    m += sz.probability * md;
    u2 += sz.probability * md * (md - 1.0);
    u3 += sz.probability * md * (md - 1.0) * (md - 2.0);
  }

  // Rescale input probabilities until rho = lambda*m < 0.9.
  auto lambda_of = [&] {
    double acc2 = 0.0;
    for (const auto& in : inputs)
      acc2 += in.probability * static_cast<double>(in.batch);
    return acc2;
  };
  while (lambda_of() * m >= 0.9)
    for (auto& in : inputs) in.probability *= 0.7;

  // Arrival moments by hand (Leibniz over independent factors).
  double f = 1.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  (void)f;
  // Build up product moments iteratively: maintain (F', F'', F''') of the
  // running product, all evaluated at 1 where every factor equals 1.
  for (const auto& in : inputs) {
    const double b = in.batch;
    const double g1 = in.probability * b;
    const double g2 = in.probability * b * (b - 1.0);
    const double g3 = in.probability * b * (b - 1.0) * (b - 2.0);
    const double nd1 = d1 + g1;
    const double nd2 = d2 + 2.0 * d1 * g1 + g2;
    const double nd3 = d3 + 3.0 * d2 * g1 + 3.0 * d1 * g2 + g3;
    d1 = nd1;
    d2 = nd2;
    d3 = nd3;
  }

  RandomQueue out{
      {std::make_shared<IndependentInputArrivals>(inputs),
       std::make_shared<MultiSizeService>(sizes)},
      d1,
      d2,
      d3,
      u2,
      u3,
      m};
  return out;
}

class RandomModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModelSweep, GenericMomentsMatchClosedForms) {
  const RandomQueue rq = make_random_queue(GetParam());
  const FirstStage fs(rq.spec);
  const WaitingMoments wm = fs.moments();
  EXPECT_NEAR(wm.mean,
              closed::eq2_mean(rq.lambda, rq.m, rq.r2, rq.u2), 1e-9);
  EXPECT_NEAR(wm.variance,
              closed::eq3_variance(rq.lambda, rq.m, rq.r2, rq.r3, rq.u2,
                                   rq.u3),
              1e-8);
}

TEST_P(RandomModelSweep, DistributionIsAProbabilityMass) {
  const RandomQueue rq = make_random_queue(GetParam());
  const FirstStage fs(rq.spec);
  const auto dist = fs.distribution(1024);
  double sum = 0.0, mean = 0.0;
  for (std::size_t j = 0; j < dist.size(); ++j) {
    EXPECT_GE(dist[j], -1e-10) << "seed=" << GetParam() << " j=" << j;
    sum += dist[j];
    mean += static_cast<double>(j) * dist[j];
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_NEAR(mean, fs.moments().mean, 1e-4 * (1.0 + fs.moments().mean));
}

TEST_P(RandomModelSweep, TransformIsAValidPgfOnUnitInterval) {
  const RandomQueue rq = make_random_queue(GetParam());
  const FirstStage fs(rq.spec);
  double prev = 0.0;
  for (double z : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    const double t = fs.transform_at(z);
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, 1.0 + 1e-12);
    EXPECT_GE(t, prev);  // PGFs are increasing on [0, 1)
    prev = t;
  }
}

TEST_P(RandomModelSweep, MomentsMatchPgfMachinery) {
  // The hand-computed moments in make_random_queue must agree with the
  // MomentTuple product algebra.
  const RandomQueue rq = make_random_queue(GetParam());
  const auto t = rq.spec.arrivals->moments();
  EXPECT_NEAR(t.d1, rq.lambda, 1e-12);
  EXPECT_NEAR(t.d2, rq.r2, 1e-12);
  EXPECT_NEAR(t.d3, rq.r3, 1e-12);
  const auto u = rq.spec.service->moments();
  EXPECT_NEAR(u.d1, rq.m, 1e-12);
  EXPECT_NEAR(u.d2, rq.u2, 1e-12);
}

TEST_P(RandomModelSweep, WaitingIncreasesWithExtraLoad) {
  const RandomQueue rq = make_random_queue(GetParam());
  const FirstStage base(rq.spec);

  // Superpose one extra independent Bernoulli(0.02) input (by convolving
  // the arrival pmf); waiting must not decrease.
  if ((rq.lambda + 0.02) * rq.m >= 0.98) GTEST_SKIP() << "would saturate";
  const auto extra = pgf::DiscreteDistribution({0.98, 0.02});
  const auto combined = pgf::DiscreteDistribution::convolve(
      rq.spec.arrivals->distribution(), extra);
  const QueueSpec heavier{std::make_shared<CustomArrivals>(combined),
                          rq.spec.service};
  const FirstStage more(heavier);
  EXPECT_GE(more.moments().mean, base.moments().mean - 1e-12);
  EXPECT_GE(more.moments().variance, base.moments().variance - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelSweep,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace ksw::core
