// Request telemetry behind `kswsim serve --access-log`: row format,
// one-row-per-request coverage (including malformed lines), trace_id
// generation and echo, and cache/shard attribution.
#include "serve/access_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "obs/span.hpp"
#include "serve/service.hpp"
#include "support/error.hpp"

namespace ksw::serve {
namespace {

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + std::to_string(::getpid()) + ".jsonl"))
      .string();
}

std::vector<io::Json> read_jsonl(const std::string& path) {
  std::ifstream file(path);
  std::vector<io::Json> rows;
  std::string line;
  while (std::getline(file, line)) rows.push_back(io::Json::parse(line));
  return rows;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
  return out;
}

/// Run the given JSONL request text through a telemetry-enabled service;
/// returns response lines and fills `rows` with the parsed access log.
std::vector<std::string> serve_with_log(const std::string& requests,
                                        std::vector<io::Json>* rows,
                                        obs::Tracer* tracer = nullptr) {
  const std::string path = temp_path("ksw_access_log_");
  ServeOptions opts;
  opts.threads = 2;
  opts.access_log = path;
  opts.tracer = tracer;
  Service service(opts);
  std::istringstream in(requests);
  std::ostringstream out;
  service.run(in, out, nullptr);
  *rows = read_jsonl(path);
  std::filesystem::remove(path);
  return lines_of(out.str());
}

// ---------------------------------------------------------------------------
// Row rendering (pure)
// ---------------------------------------------------------------------------

TEST(AccessEntry, RendersSuccessRow) {
  AccessEntry entry;
  entry.trace_id = "00000000deadbeef";
  entry.id = io::Json(std::int64_t{7});
  entry.kernel = "first_stage";
  entry.ok = true;
  entry.cached = true;
  entry.shard = 3;
  entry.queue_us = 12.5;
  entry.eval_us = 340.25;
  EXPECT_EQ(render_access_entry(entry),
            R"({"trace_id":"00000000deadbeef","id":7,)"
            R"("kernel":"first_stage","ok":true,"cached":true,"shard":3,)"
            R"("queue_us":12.500,"eval_us":340.250})");
}

TEST(AccessEntry, RendersErrorRowWithNullKernelAndDeadline) {
  AccessEntry entry;
  entry.trace_id = "0000000000000001";
  entry.error_kind = "usage";
  entry.deadline_ms = 50;
  EXPECT_EQ(render_access_entry(entry),
            R"({"trace_id":"0000000000000001","id":null,"kernel":null,)"
            R"("ok":false,"error_kind":"usage","cached":false,"shard":-1,)"
            R"("queue_us":0.000,"eval_us":0.000,"deadline_ms":50})");
}

TEST(AccessLog, ThrowsIoErrorOnUnwritablePath) {
  EXPECT_THROW(AccessLog("/nonexistent-dir/x/y.jsonl"), Error);
}

// ---------------------------------------------------------------------------
// End-to-end through the service
// ---------------------------------------------------------------------------

TEST(AccessLogE2E, OneRowPerRequestIncludingMalformed) {
  std::vector<io::Json> rows;
  const auto responses = serve_with_log(
      R"({"id":1,"kernel":"first_stage","params":{"p":0.5}})"
      "\n"
      "this is not json\n"
      R"({"id":3,"kernel":"nope"})"
      "\n",
      &rows);
  ASSERT_EQ(responses.size(), 3u);
  ASSERT_EQ(rows.size(), 3u);

  EXPECT_TRUE(rows[0].at("ok").as_bool());
  EXPECT_EQ(rows[0].at("kernel").as_string(), "first_stage");
  EXPECT_EQ(rows[0].at("id").as_int(), 1);

  // The unparseable line still gets a row — null id/kernel, usage kind.
  EXPECT_FALSE(rows[1].at("ok").as_bool());
  EXPECT_TRUE(rows[1].at("id").is_null());
  EXPECT_TRUE(rows[1].at("kernel").is_null());
  EXPECT_EQ(rows[1].at("error_kind").as_string(), "usage");

  EXPECT_FALSE(rows[2].at("ok").as_bool());
  EXPECT_EQ(rows[2].at("id").as_int(), 3);

  for (const auto& row : rows) {
    // Generated ids are 16-char hex; timing fields are non-negative.
    EXPECT_EQ(row.at("trace_id").as_string().size(), 16u);
    EXPECT_NE(obs::parse_hex_id(row.at("trace_id").as_string()), 0u);
    EXPECT_GE(row.at("queue_us").as_double(), 0.0);
    EXPECT_GE(row.at("eval_us").as_double(), 0.0);
  }
}

TEST(AccessLogE2E, ClientTraceIdIsEchoedInRowAndResponse) {
  std::vector<io::Json> rows;
  const auto responses = serve_with_log(
      R"({"id":1,"kernel":"first_stage","params":{"p":0.5},)"
      R"("trace_id":"00000000deadbeef"})"
      "\n",
      &rows);
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("trace_id").as_string(), "00000000deadbeef");
  EXPECT_NE(responses[0].find(R"("trace_id":"00000000deadbeef")"),
            std::string::npos);
}

TEST(AccessLogE2E, GeneratedTraceIdsAreDistinctAndEchoed) {
  std::vector<io::Json> rows;
  const auto responses = serve_with_log(
      R"({"id":1,"kernel":"first_stage","params":{"p":0.5}})"
      "\n"
      R"({"id":2,"kernel":"first_stage","params":{"p":0.6}})"
      "\n",
      &rows);
  ASSERT_EQ(rows.size(), 2u);
  const std::string a = rows[0].at("trace_id").as_string();
  const std::string b = rows[1].at("trace_id").as_string();
  EXPECT_NE(a, b);
  // The generated id is also echoed in the response envelope, so a
  // client can join its responses to the server-side log.
  EXPECT_NE(responses[0].find("\"trace_id\":\"" + a + "\""),
            std::string::npos);
  EXPECT_NE(responses[1].find("\"trace_id\":\"" + b + "\""),
            std::string::npos);
}

TEST(AccessLogE2E, RepeatedTupleIsMarkedCachedWithItsShard) {
  std::vector<io::Json> rows;
  serve_with_log(
      R"({"id":1,"kernel":"first_stage","params":{"p":0.5}})"
      "\n"
      R"({"id":2,"kernel":"first_stage","params":{"p":0.5}})"
      "\n",
      &rows);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0].at("cached").as_bool());
  EXPECT_TRUE(rows[1].at("cached").as_bool());
  // Identical tuples hash to the same shard, and a consulted shard is
  // always reported.
  EXPECT_GE(rows[0].at("shard").as_int(), 0);
  EXPECT_EQ(rows[0].at("shard").as_int(), rows[1].at("shard").as_int());
}

TEST(AccessLogE2E, SpansShareTheRowsTraceId) {
  if constexpr (!obs::kEnabled)
    GTEST_SKIP() << "observability compiled out";
  obs::Tracer tracer;
  std::vector<io::Json> rows;
  serve_with_log(
      R"({"id":1,"kernel":"first_stage","params":{"p":0.5},)"
      R"("trace_id":"00000000deadbeef"})"
      "\n",
      &rows, &tracer);
  ASSERT_EQ(rows.size(), 1u);
  bool found = false;
  for (const auto& rec : tracer.snapshot())
    if (rec.name == "serve.request") {
      EXPECT_EQ(rec.trace_id, 0xdeadbeefu);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(AccessLogE2E, ResponsesCarryNoTraceIdWhenTelemetryIsOff) {
  // The historic wire format is pinned: without --access-log or a
  // tracer, no trace_id is generated or echoed.
  ServeOptions opts;
  Service service(opts);
  std::istringstream in(
      R"({"id":1,"kernel":"first_stage","params":{"p":0.5}})"
      "\n");
  std::ostringstream out;
  service.run(in, out, nullptr);
  EXPECT_EQ(out.str().find("trace_id"), std::string::npos);
}

}  // namespace
}  // namespace ksw::serve
