// ksw.query/v1 wire model: strict parsing, canonicalization, rendering.
#include "serve/query.hpp"

#include <gtest/gtest.h>

#include "io/json.hpp"

namespace ksw::serve {
namespace {

TEST(QueryParse, MinimalRequestFillsDefaults) {
  const Request req = Request::parse(R"({"kernel":"first_stage"})");
  ASSERT_TRUE(req.valid()) << req.error_message;
  EXPECT_TRUE(req.id.is_null());
  EXPECT_EQ(req.query.kernel, Kernel::kFirstStage);
  EXPECT_EQ(req.query.k, 2u);
  EXPECT_EQ(req.query.s, 2u);
  EXPECT_DOUBLE_EQ(req.query.p, 0.5);
  EXPECT_EQ(req.query.bulk, 1u);
  EXPECT_DOUBLE_EQ(req.query.q, 0.0);
  EXPECT_EQ(req.query.service, "det:1");
  EXPECT_EQ(req.deadline_ms, 0);
}

TEST(QueryParse, SDefaultsToK) {
  const Request req =
      Request::parse(R"({"kernel":"first_stage","params":{"k":4}})");
  ASSERT_TRUE(req.valid());
  EXPECT_EQ(req.query.k, 4u);
  EXPECT_EQ(req.query.s, 4u);
}

TEST(QueryParse, SchemaFieldAcceptedWhenCorrect) {
  const Request req = Request::parse(
      R"({"schema":"ksw.query/v1","kernel":"later_stages"})");
  EXPECT_TRUE(req.valid());
}

TEST(QueryParse, WrongSchemaIsUsage) {
  const Request req =
      Request::parse(R"({"schema":"ksw.query/v2","kernel":"later_stages"})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, MalformedJsonIsUsage) {
  const Request req = Request::parse("{not json");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, MissingKernelIsUsage) {
  const Request req = Request::parse(R"({"id":1})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, UnknownKernelIsUsage) {
  const Request req = Request::parse(R"({"kernel":"warp_drive"})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, UnknownTopLevelFieldIsUsage) {
  const Request req =
      Request::parse(R"({"kernel":"first_stage","extra":true})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, UnknownParamIsUsage) {
  const Request req =
      Request::parse(R"({"kernel":"first_stage","params":{"kk":2}})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, ParamFromAnotherKernelIsUsage) {
  // "stages" belongs to total_delay, not later_stages.
  const Request req =
      Request::parse(R"({"kernel":"later_stages","params":{"stages":8}})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, OutOfDomainProbabilityIsUsage) {
  const Request req =
      Request::parse(R"({"kernel":"first_stage","params":{"p":1.5}})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, FavoriteOutputRequiresSquareSwitch) {
  const Request req = Request::parse(
      R"({"kernel":"first_stage","params":{"k":2,"s":4,"q":0.2}})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, BadServiceSpecIsUsage) {
  const Request req = Request::parse(
      R"({"kernel":"first_stage","params":{"service":"warp:1"}})");
  EXPECT_EQ(req.error_kind, wire::kUsage);
}

TEST(QueryParse, QuantilesMustLieInOpenUnitInterval) {
  EXPECT_EQ(Request::parse(
                R"({"kernel":"total_delay","params":{"quantiles":[1.0]}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(
                R"({"kernel":"total_delay","params":{"quantiles":[]}})")
                .error_kind,
            wire::kUsage);
  EXPECT_TRUE(Request::parse(
                  R"({"kernel":"total_delay","params":{"quantiles":[0.25]}})")
                  .valid());
}

TEST(QueryParse, ClosedFormRequiresKnownFamily) {
  EXPECT_EQ(Request::parse(R"({"kernel":"closed_form"})").error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(
                R"({"kernel":"closed_form","params":{"family":"weird"}})")
                .error_kind,
            wire::kUsage);
  EXPECT_TRUE(Request::parse(
                  R"({"kernel":"closed_form","params":{"family":"uniform"}})")
                  .valid());
}

TEST(QueryParse, ClosedFormFamilyKeySetsAreDisjoint) {
  // mu belongs to geometric only.
  EXPECT_EQ(Request::parse(
                R"({"kernel":"closed_form",)"
                R"("params":{"family":"uniform","mu":0.5}})")
                .error_kind,
            wire::kUsage);
}

TEST(QueryParse, IdMustBeScalar) {
  EXPECT_EQ(Request::parse(R"({"kernel":"first_stage","id":{"a":1}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(R"({"kernel":"first_stage","id":[1]})").error_kind,
            wire::kUsage);
  const Request req =
      Request::parse(R"({"kernel":"first_stage","id":"abc"})");
  ASSERT_TRUE(req.valid());
  EXPECT_EQ(req.id.as_string(), "abc");
}

TEST(QueryParse, DeadlineDefaultsAndOverrides) {
  EXPECT_EQ(Request::parse(R"({"kernel":"first_stage"})", 250).deadline_ms,
            250);
  EXPECT_EQ(
      Request::parse(R"({"kernel":"first_stage","deadline_ms":5})", 250)
          .deadline_ms,
      5);
  EXPECT_EQ(
      Request::parse(R"({"kernel":"first_stage","deadline_ms":-1})")
          .error_kind,
      wire::kUsage);
}

TEST(QueryParse, ExplicitZeroDeadlineKeepsServerDefault) {
  // "deadline_ms": 0 means "no per-request override", exactly like an
  // absent field — it must not grant an immortal request on a server
  // whose --deadline-ms default is finite.
  EXPECT_EQ(Request::parse(R"({"kernel":"first_stage","deadline_ms":0})", 250)
                .deadline_ms,
            250);
  EXPECT_EQ(Request::parse(R"({"kernel":"first_stage","deadline_ms":0})")
                .deadline_ms,
            0);
}

TEST(QueryParse, FiniteBufferDefaultsAndDomain) {
  const Request req = Request::parse(R"({"kernel":"finite_buffer"})");
  ASSERT_TRUE(req.valid()) << req.error_message;
  EXPECT_EQ(req.query.kernel, Kernel::kFiniteBuffer);
  EXPECT_EQ(req.query.stages, 3u);
  EXPECT_EQ(req.query.depth, 4u);
  EXPECT_EQ(req.query.flow, "vct");
  EXPECT_EQ(req.query.replicates, 1u);
  // Domain errors are usage, not internal.
  EXPECT_EQ(Request::parse(
                R"({"kernel":"finite_buffer","params":{"depth":0}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(
                R"({"kernel":"finite_buffer","params":{"depth":2000}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(
                R"({"kernel":"finite_buffer","params":{"flow":"wormhole"}})")
                .error_kind,
            wire::kUsage);
}

TEST(QueryParse, FiniteBufferEnforcesCostCaps) {
  // The serve loop runs simulations synchronously; parse rejects tuples
  // whose cost is unbounded instead of letting a request wedge a worker.
  EXPECT_EQ(Request::parse(
                R"({"kernel":"finite_buffer","params":{"cycles":300000}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(
                R"({"kernel":"finite_buffer","params":{"replicates":9}})")
                .error_kind,
            wire::kUsage);
  // k^stages caps the port count at 4096.
  EXPECT_EQ(Request::parse(
                R"({"kernel":"finite_buffer","params":{"k":4,"stages":7}})")
                .error_kind,
            wire::kUsage);
  EXPECT_TRUE(Request::parse(
                  R"({"kernel":"finite_buffer","params":{"k":4,"stages":6}})")
                  .valid());
}

TEST(QueryParse, CreditLatencyRequiresCreditFlow) {
  EXPECT_EQ(Request::parse(R"({"kernel":"finite_buffer",)"
                           R"("params":{"credit_latency":2}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(R"({"kernel":"finite_buffer",)"
                           R"("params":{"flow":"credit","credit_latency":0}})")
                .error_kind,
            wire::kUsage);
  const Request req = Request::parse(
      R"({"kernel":"finite_buffer",)"
      R"("params":{"flow":"credit","credit_latency":3}})");
  ASSERT_TRUE(req.valid()) << req.error_message;
  EXPECT_EQ(req.query.credit_latency, 3u);
}

TEST(QueryParse, BufferSweepDepthsMustAscend) {
  EXPECT_TRUE(Request::parse(R"({"kernel":"buffer_sweep",)"
                             R"("params":{"depths":[1,4,32]}})")
                  .valid());
  EXPECT_EQ(Request::parse(R"({"kernel":"buffer_sweep",)"
                           R"("params":{"depths":[]}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(R"({"kernel":"buffer_sweep",)"
                           R"("params":{"depths":[4,2]}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(R"({"kernel":"buffer_sweep",)"
                           R"("params":{"depths":[2,2]}})")
                .error_kind,
            wire::kUsage);
  // depth belongs to finite_buffer, depths to buffer_sweep.
  EXPECT_EQ(Request::parse(R"({"kernel":"buffer_sweep",)"
                           R"("params":{"depth":4}})")
                .error_kind,
            wire::kUsage);
  EXPECT_EQ(Request::parse(R"({"kernel":"finite_buffer",)"
                           R"("params":{"depths":[1,2]}})")
                .error_kind,
            wire::kUsage);
}

TEST(QueryCanonical, SimTupleSpellingInvariant) {
  const Request a = Request::parse(
      R"({"kernel":"finite_buffer","params":{"depth":8,"seed":2}})");
  const Request b = Request::parse(
      R"({"kernel":"finite_buffer",)"
      R"("params":{"seed":2,"depth":8,"flow":"vct","cycles":20000}})");
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(a.query.canonical(), b.query.canonical());
  // Seed is part of the result, so it must be part of the cache key.
  const Request c = Request::parse(
      R"({"kernel":"finite_buffer","params":{"depth":8,"seed":3}})");
  EXPECT_NE(a.query.canonical(), c.query.canonical());
}

TEST(QueryCanonical, SpellingInvariant) {
  const Request a =
      Request::parse(R"({"kernel":"first_stage","params":{"p":0.5}})");
  const Request b = Request::parse(
      R"({"schema":"ksw.query/v1","params":{"p":5e-1},"id":7,)"
      R"("kernel":"first_stage"})");
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(a.query.canonical(), b.query.canonical());
}

TEST(QueryCanonical, DistinguishesParameterValues) {
  const Request a =
      Request::parse(R"({"kernel":"first_stage","params":{"p":0.5}})");
  const Request b =
      Request::parse(R"({"kernel":"first_stage","params":{"p":0.6}})");
  EXPECT_NE(a.query.canonical(), b.query.canonical());
}

TEST(QueryCanonical, DistinguishesKernels) {
  const Request a = Request::parse(R"({"kernel":"later_stages"})");
  const Request b = Request::parse(R"({"kernel":"total_delay"})");
  EXPECT_NE(a.query.canonical(), b.query.canonical());
}

TEST(QueryCanonical, DeadlineAndIdAreNotPartOfTheKey) {
  const Request a = Request::parse(
      R"({"kernel":"first_stage","id":1,"deadline_ms":100})");
  const Request b = Request::parse(R"({"kernel":"first_stage","id":2})");
  EXPECT_EQ(a.query.canonical(), b.query.canonical());
}

TEST(Fnv1a, KnownVectors) {
  // Reference values for the 64-bit FNV-1a offset basis and "a".
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Render, OkEnvelopeSplicesResultBytesVerbatim) {
  const std::string line =
      render_ok(io::Json("x"), Kernel::kFirstStage, true, R"({"a":1})");
  EXPECT_EQ(line,
            R"({"id":"x","ok":true,"kernel":"first_stage",)"
            R"("cached":true,"result":{"a":1}})");
}

TEST(Render, ErrorEnvelopeEscapesMessage) {
  const std::string line =
      render_error(io::Json(), wire::kUsage, "bad \"value\"");
  EXPECT_EQ(line,
            R"({"id":null,"ok":false,"error":{"kind":"usage",)"
            R"("message":"bad \"value\""}})");
  // Every response line is itself valid JSON.
  EXPECT_NO_THROW(io::Json::parse(line));
}

}  // namespace
}  // namespace ksw::serve
