// End-to-end serve loops: batching, response ordering, cache behavior,
// deadlines, cancellation, and the fd/socket transports.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "par/cancel.hpp"

namespace ksw::serve {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
  return out;
}

/// The raw bytes of a response's `result` field (which render_ok splices
/// in verbatim — so equality here is byte-for-byte, not just semantic).
std::string result_bytes(const std::string& response_line) {
  const auto pos = response_line.find("\"result\":");
  if (pos == std::string::npos) return {};
  // The result object runs to the envelope's closing brace.
  return response_line.substr(pos + 9,
                              response_line.size() - pos - 9 - 1);
}

TEST(Service, FiftyRequestBatchAnswersInOrder) {
  ServeOptions opts;
  opts.threads = 4;
  opts.batch = 8;  // forces several batches
  Service service(opts);

  std::ostringstream in_text;
  for (int i = 0; i < 50; ++i) {
    if (i % 10 == 7) {
      in_text << "this is not json\n";
    } else if (i % 10 == 3) {
      in_text << R"({"kernel":"nope","id":)" << i << "}\n";
    } else {
      // Five distinct tuples, so most requests repeat an earlier one.
      in_text << R"({"kernel":"first_stage","id":)" << i
              << R"(,"params":{"p":0.)" << (i % 5 + 1) << "}}\n";
    }
  }
  std::istringstream in(in_text.str());
  std::ostringstream out;
  const ServeSummary summary = service.run(in, out, nullptr);
  EXPECT_EQ(summary.requests, 50u);
  EXPECT_EQ(summary.responses, 50u);
  EXPECT_FALSE(summary.interrupted);

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    const io::Json doc = io::Json::parse(lines[static_cast<std::size_t>(i)]);
    if (i % 10 == 7) {
      // Malformed lines carry no id but still answer in position.
      EXPECT_FALSE(doc.at("ok").as_bool());
      EXPECT_EQ(doc.at("error").at("kind").as_string(), "usage");
    } else {
      EXPECT_EQ(doc.at("id").as_int(), i) << "response out of order";
      EXPECT_EQ(doc.at("ok").as_bool(), i % 10 != 3);
    }
  }

  // Five distinct tuples served 40 ok responses: the cache absorbed the
  // repeats, and hits returned bit-identical result bytes.
  EXPECT_GE(service.cache().stats().hits, 30u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      if (i % 10 == 3 || i % 10 == 7 || j % 10 == 3 || j % 10 == 7) continue;
      if (i % 5 == j % 5) {
        EXPECT_EQ(result_bytes(lines[i]), result_bytes(lines[j]));
      }
    }
  }
}

TEST(Service, RepeatedTupleIsServedFromCache) {
  Service service(ServeOptions{});
  std::istringstream in(
      "{\"kernel\":\"total_delay\",\"id\":\"a\"}\n"
      "{\"kernel\":\"total_delay\",\"id\":\"b\"}\n");
  std::ostringstream out;
  service.run(in, out, nullptr);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_FALSE(io::Json::parse(lines[0]).at("cached").as_bool());
  EXPECT_TRUE(io::Json::parse(lines[1]).at("cached").as_bool());
  EXPECT_EQ(result_bytes(lines[0]), result_bytes(lines[1]));
  EXPECT_EQ(service.cache().stats().hits, 1u);
  EXPECT_EQ(service.cache().stats().misses, 1u);
}

TEST(Service, FiniteBufferKernelIsDeterministicAndCached) {
  // The simulation kernels are pure functions of the (seeded) tuple:
  // a repeated request must hit the cache, and the convergence story
  // must hold — a deep buffer's accept ratio is exactly 1.
  Service service(ServeOptions{});
  const std::string tuple =
      R"("params":{"stages":3,"depth":64,"p":0.5,)"
      R"("cycles":4000,"warmup":400}})";
  std::istringstream in("{\"kernel\":\"finite_buffer\",\"id\":1," + tuple +
                        "\n{\"kernel\":\"finite_buffer\",\"id\":2," + tuple +
                        "\n");
  std::ostringstream out;
  service.run(in, out, nullptr);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  const io::Json first = io::Json::parse(lines[0]);
  ASSERT_TRUE(first.at("ok").as_bool()) << lines[0];
  EXPECT_EQ(result_bytes(lines[0]), result_bytes(lines[1]));
  EXPECT_TRUE(io::Json::parse(lines[1]).at("cached").as_bool());
  const io::Json& result = first.at("result");
  EXPECT_EQ(result.at("depth").as_int(), 64);
  EXPECT_DOUBLE_EQ(result.at("accept_ratio").as_double(), 1.0);
  EXPECT_EQ(result.at("packets_dropped").as_int(), 0);
}

TEST(Service, BufferSweepReportsGridAndInfiniteBaseline) {
  Service service(ServeOptions{});
  std::istringstream in(
      R"({"kernel":"buffer_sweep","params":{"stages":3,"depths":[1,32],)"
      R"("p":0.7,"cycles":4000,"warmup":400}})"
      "\n");
  std::ostringstream out;
  service.run(in, out, nullptr);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  const io::Json doc = io::Json::parse(lines[0]);
  ASSERT_TRUE(doc.at("ok").as_bool()) << lines[0];
  const io::Json& result = doc.at("result");
  ASSERT_EQ(result.at("grid").size(), 2u);
  // Shallow buffers drop traffic; depth 32 at this load accepts all of it
  // and recovers the infinite-queue waiting time exactly.
  const io::Json& shallow = result.at("grid").at(0);
  const io::Json& deep = result.at("grid").at(1);
  EXPECT_LT(shallow.at("accept_ratio").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(deep.at("accept_ratio").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(deep.at("mean_wait_last").as_double(),
                   result.at("infinite").at("mean_wait_last").as_double());
}

TEST(Service, DisabledCacheStillAnswersDeterministically) {
  ServeOptions opts;
  opts.cache_mb = 0;
  Service service(opts);
  std::istringstream in(
      "{\"kernel\":\"later_stages\"}\n{\"kernel\":\"later_stages\"}\n");
  std::ostringstream out;
  service.run(in, out, nullptr);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_FALSE(io::Json::parse(lines[1]).at("cached").as_bool());
  EXPECT_EQ(result_bytes(lines[0]), result_bytes(lines[1]));
  EXPECT_EQ(service.cache().stats().hits, 0u);
}

TEST(Service, ExpiredDeadlineAnswersWithoutEvaluating) {
  Service service(ServeOptions{});
  Request req = Request::parse(R"({"kernel":"first_stage","id":9})");
  ASSERT_TRUE(req.valid());
  req.deadline_ms = 1;
  req.arrival = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(50);  // long past its deadline
  std::string out;
  service.serve_batch({req}, &out, nullptr);
  const io::Json doc = io::Json::parse(lines_of(out).at(0));
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").at("kind").as_string(), "deadline");
  EXPECT_EQ(doc.at("id").as_int(), 9);
  // The evaluation never ran, so nothing was cached or even looked up.
  EXPECT_EQ(service.cache().stats().hits + service.cache().stats().misses,
            0u);
}

TEST(Service, DefaultDeadlineFlowsIntoParsedRequests) {
  ServeOptions opts;
  opts.deadline_ms = 1234;
  Service service(opts);
  (void)service;  // deadline default is applied by run() via Request::parse
  const Request req = Request::parse(R"({"kernel":"first_stage"})", 1234);
  EXPECT_EQ(req.deadline_ms, 1234);
}

TEST(Service, CancelledTokenAnswersUnstartedRequestsAsInterrupted) {
  Service service(ServeOptions{});
  par::CancelToken cancel;
  cancel.request();
  std::vector<Request> batch;
  batch.push_back(Request::parse(R"({"kernel":"first_stage","id":1})"));
  std::string out;
  service.serve_batch(std::move(batch), &out, &cancel);
  const io::Json doc = io::Json::parse(lines_of(out).at(0));
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").at("kind").as_string(), "interrupted");
}

TEST(Service, RunReportsInterruptionWithoutConsumingInput) {
  Service service(ServeOptions{});
  par::CancelToken cancel;
  cancel.request();
  std::istringstream in("{\"kernel\":\"first_stage\"}\n");
  std::ostringstream out;
  const ServeSummary summary = service.run(in, out, &cancel);
  EXPECT_TRUE(summary.interrupted);
  EXPECT_EQ(summary.requests, 0u);
}

TEST(Service, EvaluationDomainFailureIsNumeric) {
  // rho = 1 at p=1 with det:2 service: the model rejects the operating
  // point — a numeric error, not a usage error (the request was valid).
  Service service(ServeOptions{});
  std::istringstream in(
      R"({"kernel":"later_stages","params":{"p":1.0,"service":"det:2"}})"
      "\n");
  std::ostringstream out;
  service.run(in, out, nullptr);
  const io::Json doc = io::Json::parse(lines_of(out.str()).at(0));
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").at("kind").as_string(), "numeric");
}

TEST(Service, ReportCarriesServeCountersAndCacheStats) {
  Service service(ServeOptions{});
  std::istringstream in(
      "{\"kernel\":\"first_stage\"}\n{\"kernel\":\"first_stage\"}\n");
  std::ostringstream out;
  service.run(in, out, nullptr);
  const io::Json report = service.report(/*include_wall=*/false);
  EXPECT_EQ(report.at("schema").as_string(), "ksw.obs.report/v1");
  EXPECT_EQ(report.at("command").as_string(), "serve");
  const io::Json& counters = report.at("metrics").at("counters");
  EXPECT_EQ(counters.at("serve.requests").as_int(), 2);
  EXPECT_EQ(counters.at("serve.responses.ok").as_int(), 2);
  EXPECT_EQ(counters.at("serve.cache.hits").as_int(), 1);
  EXPECT_EQ(report.at("cache").at("hits").as_int(), 1);
  EXPECT_GT(report.at("cache").at("bytes").as_int(), 0);
  EXPECT_DOUBLE_EQ(report.at("cache").at("hit_rate").as_double(), 0.5);
  EXPECT_GE(report.at("latency").at("p99_us").as_double(),
            report.at("latency").at("p50_us").as_double());
}

TEST(Service, RunFdServesAPipe) {
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  const std::string input =
      "{\"kernel\":\"first_stage\",\"id\":1}\n"
      "{\"kernel\":\"first_stage\",\"id\":2}\n";
  ASSERT_EQ(::write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::close(in_pipe[1]);

  Service service(ServeOptions{});
  const ServeSummary summary =
      service.run_fd(in_pipe[0], out_pipe[1], nullptr);
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  EXPECT_EQ(summary.responses, 2u);
  EXPECT_FALSE(summary.interrupted);

  std::string output;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(out_pipe[0], buf, sizeof buf)) > 0)
    output.append(buf, static_cast<std::size_t>(n));
  ::close(out_pipe[0]);
  const auto lines = lines_of(output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(io::Json::parse(lines[0]).at("id").as_int(), 1);
  EXPECT_EQ(io::Json::parse(lines[1]).at("id").as_int(), 2);
  EXPECT_TRUE(io::Json::parse(lines[1]).at("cached").as_bool());
}

TEST(Service, RunFdObservesCancellationWhileBlocked) {
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  Service service(ServeOptions{});
  par::CancelToken cancel;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.request();
  });
  // No input ever arrives: the reader must wake up via its poll tick and
  // notice the token instead of sleeping forever.
  const ServeSummary summary =
      service.run_fd(in_pipe[0], out_pipe[1], &cancel);
  canceller.join();
  EXPECT_TRUE(summary.interrupted);
  for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]})
    ::close(fd);
}

TEST(Service, RunListenServesASocketConnection) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ksw_serve_test_" + std::to_string(::getpid()) + ".sock"))
          .string();
  Service service(ServeOptions{});
  par::CancelToken cancel;
  ServeSummary summary;
  std::thread server(
      [&] { summary = service.run_listen(path, &cancel); });

  // Connect (retrying until the listener is up), send two requests, read
  // both responses, then ask the server to shut down.
  int fd = -1;
  for (int attempt = 0; attempt < 100; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      break;
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(fd, 0) << "could not connect to " << path;
  const std::string input =
      "{\"kernel\":\"closed_form\",\"id\":1,"
      "\"params\":{\"family\":\"uniform\"}}\n"
      "{\"kernel\":\"closed_form\",\"id\":2,"
      "\"params\":{\"family\":\"uniform\"}}\n";
  ASSERT_EQ(::write(fd, input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::shutdown(fd, SHUT_WR);
  std::string output;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0)
    output.append(buf, static_cast<std::size_t>(n));
  ::close(fd);

  cancel.request();
  server.join();
  EXPECT_EQ(summary.responses, 2u);
  EXPECT_TRUE(summary.interrupted);  // ended by the token, as designed
  const auto lines = lines_of(output);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(io::Json::parse(lines[1]).at("cached").as_bool());
  EXPECT_EQ(result_bytes(lines[0]), result_bytes(lines[1]));
  // The socket path is unlinked on exit.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Service, MultiThreadedRepeatedTuplesStayBitIdentical) {
  // Stress the cache through the full service path: many threads' worth
  // of parallel evaluations of a handful of tuples must all serialize to
  // the same bytes per tuple.
  ServeOptions opts;
  opts.threads = 8;
  opts.batch = 128;
  Service service(opts);
  std::ostringstream in_text;
  for (int i = 0; i < 256; ++i)
    in_text << R"({"kernel":"total_delay","id":)" << i
            << R"(,"params":{"stages":)" << (i % 4 + 2) << "}}\n";
  std::istringstream in(in_text.str());
  std::ostringstream out;
  service.run(in, out, nullptr);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 256u);
  std::vector<std::string> canonical(4);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t bucket = i % 4;
    const std::string bytes = result_bytes(lines[i]);
    ASSERT_FALSE(bytes.empty()) << lines[i];
    if (canonical[bucket].empty())
      canonical[bucket] = bytes;
    else
      EXPECT_EQ(bytes, canonical[bucket]) << "tuple " << bucket;
  }
  // Concurrent workers may miss the same tuple simultaneously inside the
  // first batch, but the second batch (every tuple already cached) hits
  // throughout — and duplicate inserts never changed the served bytes.
  EXPECT_GE(service.cache().stats().misses, 4u);
  EXPECT_GE(service.cache().stats().hits, 128u);
  EXPECT_EQ(service.cache().stats().entries, 4u);
}

}  // namespace
}  // namespace ksw::serve
