// EvalCache: LRU mechanics, byte accounting, and the bit-identical-bytes
// contract the serve layer builds on.
#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/kernels.hpp"
#include "serve/query.hpp"

namespace ksw::serve {
namespace {

TEST(EvalCache, MissThenHit) {
  EvalCache cache(1 << 20);
  const std::string key = "k";
  const std::uint64_t hash = fnv1a64(key);
  EXPECT_FALSE(cache.lookup(hash, key).has_value());
  cache.insert(hash, key, "value");
  const auto hit = cache.lookup(hash, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EvalCache, HitReturnsBitIdenticalBytesForEveryKernel) {
  // The core caching contract: for each kernel, the bytes a hit returns
  // are exactly the bytes the cold evaluation produced.
  const std::vector<std::string> lines = {
      R"({"kernel":"first_stage","params":{"distribution":8}})",
      R"({"kernel":"later_stages","params":{"stage":3}})",
      R"({"kernel":"closed_form","params":{"family":"uniform"}})",
      R"({"kernel":"total_delay","params":{"stages":6}})",
  };
  EvalCache cache(1 << 20);
  for (const auto& line : lines) {
    const Request req = Request::parse(line);
    ASSERT_TRUE(req.valid()) << line;
    const std::string key = req.query.canonical();
    const std::uint64_t hash = fnv1a64(key);
    const std::string cold = evaluate_bytes(req.query);
    cache.insert(hash, key, cold);
    const auto hit = cache.lookup(hash, key);
    ASSERT_TRUE(hit.has_value()) << line;
    EXPECT_EQ(*hit, cold) << line;
    // Recomputation is deterministic too, so a second cold evaluation
    // matches the cached bytes byte-for-byte.
    EXPECT_EQ(evaluate_bytes(req.query), cold) << line;
  }
}

TEST(EvalCache, EvictsLeastRecentlyUsedAtCapacity) {
  // One shard so the LRU order is globally observable. Each entry costs
  // key + value + 64 bytes of overhead.
  EvalCache cache(3 * 80, /*shards=*/1);
  const auto key = [](int i) { return "key-" + std::to_string(i); };
  for (int i = 0; i < 4; ++i)
    cache.insert(fnv1a64(key(i)), key(i), "v");
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  // The oldest entry fell out; the newest survives.
  EXPECT_FALSE(cache.lookup(fnv1a64(key(0)), key(0)).has_value());
  EXPECT_TRUE(cache.lookup(fnv1a64(key(3)), key(3)).has_value());
}

TEST(EvalCache, LookupRefreshesRecency) {
  EvalCache cache(2 * 80, /*shards=*/1);
  cache.insert(fnv1a64("a"), "a", "1");
  cache.insert(fnv1a64("b"), "b", "2");
  // Touch "a" so "b" becomes the eviction victim.
  ASSERT_TRUE(cache.lookup(fnv1a64("a"), "a").has_value());
  cache.insert(fnv1a64("c"), "c", "3");
  EXPECT_TRUE(cache.lookup(fnv1a64("a"), "a").has_value());
  EXPECT_FALSE(cache.lookup(fnv1a64("b"), "b").has_value());
}

TEST(EvalCache, ZeroCapacityDisablesCaching) {
  EvalCache cache(0);
  cache.insert(fnv1a64("a"), "a", "1");
  EXPECT_FALSE(cache.lookup(fnv1a64("a"), "a").has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.insertions, 0u);
}

TEST(EvalCache, RejectsEntriesLargerThanAShard) {
  EvalCache cache(128, /*shards=*/1);
  const std::string big(1024, 'x');
  cache.insert(fnv1a64("big"), "big", big);
  EXPECT_FALSE(cache.lookup(fnv1a64("big"), "big").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(EvalCache, DuplicateInsertKeepsTheFirstValue) {
  // Two workers can evaluate the same tuple concurrently; whichever
  // inserts second must not replace the bytes already being served.
  EvalCache cache(1 << 20);
  cache.insert(fnv1a64("k"), "k", "first");
  cache.insert(fnv1a64("k"), "k", "second");
  const auto hit = cache.lookup(fnv1a64("k"), "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "first");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(EvalCache, MultiThreadedLookupsStayDeterministic) {
  // Hammer a small key space from several threads. Every hit must return
  // exactly the value derived from its key — never a torn or foreign
  // entry — and the hit/miss tallies must add up.
  EvalCache cache(1 << 20);
  const auto value_of = [](int i) {
    return "value-" + std::to_string(i * 7);
  };
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr int kKeys = 17;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * (t + 1)) % kKeys;
        const std::string key = "key-" + std::to_string(k);
        const std::uint64_t hash = fnv1a64(key);
        const auto hit = cache.lookup(hash, key);
        if (hit.has_value()) {
          if (*hit != value_of(k)) ++failures[static_cast<std::size_t>(t)];
        } else {
          cache.insert(hash, key, value_of(k));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const int f : failures) EXPECT_EQ(f, 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(stats.entries, static_cast<std::uint64_t>(kKeys));
}

}  // namespace
}  // namespace ksw::serve
