#include "pgf/series.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "support/error.hpp"

namespace ksw::pgf {
namespace {

TEST(Series, ConstructionAndAccess) {
  Series s(4);
  EXPECT_EQ(s.length(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(s[i], 0.0);
  s[2] = 1.5;
  EXPECT_DOUBLE_EQ(s[2], 1.5);
  EXPECT_THROW(Series(0), std::invalid_argument);
  EXPECT_THROW(s[4], std::out_of_range);
}

TEST(Series, FromCoefficientsTruncatesAndPads) {
  const std::array<double, 3> c = {1.0, 2.0, 3.0};
  Series padded(c, 5);
  EXPECT_DOUBLE_EQ(padded[2], 3.0);
  EXPECT_DOUBLE_EQ(padded[4], 0.0);
  Series cut(c, 2);
  EXPECT_EQ(cut.length(), 2u);
  EXPECT_DOUBLE_EQ(cut[1], 2.0);
}

TEST(Series, AddSubScale) {
  const std::array<double, 3> a = {1.0, 2.0, 3.0};
  const std::array<double, 3> b = {4.0, 5.0, 6.0};
  Series sa(a, 3), sb(b, 3);
  const Series sum = sa + sb;
  EXPECT_DOUBLE_EQ(sum[0], 5.0);
  EXPECT_DOUBLE_EQ(sum[2], 9.0);
  const Series diff = sb - sa;
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  const Series scaled = 2.0 * sa;
  EXPECT_DOUBLE_EQ(scaled[2], 6.0);
}

TEST(Series, MulIsTruncatedConvolution) {
  // (1 + z)^2 = 1 + 2z + z^2.
  const std::array<double, 2> one_plus_z = {1.0, 1.0};
  Series s(one_plus_z, 3);
  const Series sq = Series::mul(s, s);
  EXPECT_DOUBLE_EQ(sq[0], 1.0);
  EXPECT_DOUBLE_EQ(sq[1], 2.0);
  EXPECT_DOUBLE_EQ(sq[2], 1.0);
}

TEST(Series, MulTruncatesHighTerms) {
  const std::array<double, 3> c = {0.0, 1.0, 1.0};  // z + z^2
  Series s(c, 3);
  const Series sq = Series::mul(s, s);  // z^2 + 2z^3 + z^4 -> keep z^2
  EXPECT_DOUBLE_EQ(sq[0], 0.0);
  EXPECT_DOUBLE_EQ(sq[1], 0.0);
  EXPECT_DOUBLE_EQ(sq[2], 1.0);
}

TEST(Series, DivideRoundTrips) {
  const std::array<double, 4> num = {1.0, 0.5, 0.25, 0.125};
  const std::array<double, 4> den = {2.0, -1.0, 0.5, 0.0};
  Series n(num, 8), d(den, 8);
  const Series q = Series::divide(n, d);
  const Series back = Series::mul(q, d);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(back[i], i < 4 ? num[i] : 0.0, 1e-12) << "i=" << i;
}

TEST(Series, DivideGeometric) {
  // 1/(1 - z) = 1 + z + z^2 + ...
  const std::array<double, 2> one = {1.0};
  const std::array<double, 2> den = {1.0, -1.0};
  const Series q = Series::divide(Series(one, 10), Series(den, 10));
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(q[i], 1.0, 1e-12);
}

TEST(Series, DivideRejectsZeroConstant) {
  Series n(4), d(4);
  n[0] = 1.0;
  EXPECT_THROW(Series::divide(n, d), ksw::Error);
}

TEST(Series, DivideRejectsNearZeroConstant) {
  // Regression: a denominator constant term within rounding noise of zero
  // used to divide through and amplify into garbage coefficients; it must
  // fail as loudly as an exact zero — and as a typed numeric error, so the
  // CLI can map it to the numeric exit code.
  Series n(4), d(4);
  n[0] = 1.0;
  d[0] = 1e-15;
  d[1] = 1.0;
  try {
    Series::divide(n, d);
    FAIL() << "expected ksw::Error";
  } catch (const ksw::Error& e) {
    EXPECT_EQ(e.kind(), ksw::ErrorKind::kNumeric);
  }
  d[0] = -1e-15;
  EXPECT_THROW(Series::divide(n, d), ksw::Error);
  // Just above the documented threshold is accepted.
  d[0] = 2.0 * Series::kDivideEpsilon;
  EXPECT_NO_THROW(Series::divide(n, d));
}

TEST(Series, ComposePolynomialMatchesDirectExpansion) {
  // outer(y) = 1 + y + y^2, inner = z + z^2:
  // result = 1 + (z+z^2) + (z+z^2)^2 = 1 + z + 2z^2 + 2z^3 + z^4.
  const std::array<double, 3> outer = {1.0, 1.0, 1.0};
  const std::array<double, 3> inner_c = {0.0, 1.0, 1.0};
  const Series inner(inner_c, 5);
  const Series r = Series::compose_polynomial(outer, inner);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 1.0, 1e-12);
  EXPECT_NEAR(r[2], 2.0, 1e-12);
  EXPECT_NEAR(r[3], 2.0, 1e-12);
  EXPECT_NEAR(r[4], 1.0, 1e-12);
}

TEST(Series, ComposeWithNonzeroInnerConstant) {
  // outer(y) = y^2, inner = 0.5 + z -> (0.5+z)^2 = 0.25 + z + z^2.
  const std::array<double, 3> outer = {0.0, 0.0, 1.0};
  const std::array<double, 2> inner_c = {0.5, 1.0};
  const Series r =
      Series::compose_polynomial(outer, Series(inner_c, 3));
  EXPECT_NEAR(r[0], 0.25, 1e-12);
  EXPECT_NEAR(r[1], 1.0, 1e-12);
  EXPECT_NEAR(r[2], 1.0, 1e-12);
}

TEST(Series, PowMatchesRepeatedMul) {
  const std::array<double, 2> c = {0.75, 0.25};
  const Series base(c, 6);
  Series direct = Series::constant(1.0, 6);
  for (int i = 0; i < 5; ++i) direct = Series::mul(direct, base);
  const Series fast = Series::pow(base, 5);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(fast[i], direct[i], 1e-14);
}

TEST(Series, PowZeroIsOne) {
  const Series base = Series::identity(4);
  const Series p0 = Series::pow(base, 0);
  EXPECT_DOUBLE_EQ(p0[0], 1.0);
  EXPECT_DOUBLE_EQ(p0[1], 0.0);
}

TEST(Series, EvalHorner) {
  const std::array<double, 3> c = {1.0, -2.0, 3.0};
  const Series s(c, 3);
  EXPECT_DOUBLE_EQ(s.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.eval(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.eval(2.0), 9.0);
}

TEST(Series, CoefficientSum) {
  const std::array<double, 3> c = {0.25, 0.5, 0.25};
  EXPECT_DOUBLE_EQ(Series(c, 3).coefficient_sum(), 1.0);
}

TEST(Series, LengthMismatchThrows) {
  Series a(3), b(4);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(Series::mul(a, b), std::invalid_argument);
  EXPECT_THROW(Series::divide(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::pgf
