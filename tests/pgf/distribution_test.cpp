#include "pgf/distribution.hpp"

#include <gtest/gtest.h>

namespace ksw::pgf {
namespace {

TEST(DiscreteDistribution, ValidatesNormalization) {
  EXPECT_THROW(DiscreteDistribution({0.5, 0.4}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.1, -0.1}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_NO_THROW(DiscreteDistribution({0.25, 0.75}));
}

TEST(DiscreteDistribution, TrimsTrailingZeros) {
  const DiscreteDistribution d({0.5, 0.5, 0.0, 0.0});
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_DOUBLE_EQ(d.pmf(3), 0.0);
}

TEST(DiscreteDistribution, PointMass) {
  const auto d = DiscreteDistribution::point_mass(5);
  EXPECT_DOUBLE_EQ(d.pmf(5), 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(DiscreteDistribution, MeanVariance) {
  // Uniform on {0,1,2,3}: mean 1.5, var 1.25.
  const DiscreteDistribution d({0.25, 0.25, 0.25, 0.25});
  EXPECT_DOUBLE_EQ(d.mean(), 1.5);
  EXPECT_DOUBLE_EQ(d.variance(), 1.25);
}

TEST(DiscreteDistribution, ConvolutionOfPointMasses) {
  const auto d = DiscreteDistribution::convolve(
      DiscreteDistribution::point_mass(2), DiscreteDistribution::point_mass(3));
  EXPECT_DOUBLE_EQ(d.pmf(5), 1.0);
}

TEST(DiscreteDistribution, ConvolutionBinomial) {
  // Bernoulli(1/2) convolved 4 times -> Binomial(4, 1/2).
  const DiscreteDistribution bern({0.5, 0.5});
  DiscreteDistribution acc = DiscreteDistribution::point_mass(0);
  for (int i = 0; i < 4; ++i) acc = DiscreteDistribution::convolve(acc, bern);
  EXPECT_NEAR(acc.pmf(0), 1.0 / 16, 1e-15);
  EXPECT_NEAR(acc.pmf(2), 6.0 / 16, 1e-15);
  EXPECT_NEAR(acc.pmf(4), 1.0 / 16, 1e-15);
  EXPECT_NEAR(acc.mean(), 2.0, 1e-15);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-15);
}

TEST(DiscreteDistribution, MomentsMatchDirect) {
  const DiscreteDistribution d({0.1, 0.2, 0.3, 0.4});
  const MomentTuple t = d.moments();
  EXPECT_NEAR(t.mean(), d.mean(), 1e-14);
  EXPECT_NEAR(t.variance(), d.variance(), 1e-14);
}

TEST(DiscreteDistribution, ToSeriesRoundTrip) {
  const DiscreteDistribution d({0.2, 0.5, 0.3});
  const Series s = d.to_series(5);
  EXPECT_DOUBLE_EQ(s[0], 0.2);
  EXPECT_DOUBLE_EQ(s[1], 0.5);
  EXPECT_DOUBLE_EQ(s[2], 0.3);
  EXPECT_DOUBLE_EQ(s[4], 0.0);
  EXPECT_NEAR(s.eval(1.0), 1.0, 1e-15);
}

}  // namespace
}  // namespace ksw::pgf
