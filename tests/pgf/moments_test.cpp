#include "pgf/moments.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace ksw::pgf {
namespace {

// Numerical derivative helper: k-th derivative of f at 1 via central
// differences on a wide stencil (used to cross-check the exact algebra).
template <typename F>
double numeric_derivative(F f, int order, double h = 1e-2) {
  // Five-point stencils around x = 1.
  const double x = 1.0;
  switch (order) {
    case 1:
      return (f(x - 2 * h) - 8 * f(x - h) + 8 * f(x + h) - f(x + 2 * h)) /
             (12 * h);
    case 2:
      return (-f(x - 2 * h) + 16 * f(x - h) - 30 * f(x) + 16 * f(x + h) -
              f(x + 2 * h)) /
             (12 * h * h);
    case 3:
      return (-f(x - 2 * h) + 2 * f(x - h) - 2 * f(x + h) + f(x + 2 * h)) /
             (2 * h * h * h) * -1.0;
    default:
      return 0.0;
  }
}

TEST(MomentTuple, MonomialDerivatives) {
  const MomentTuple t = MomentTuple::monomial(4);
  EXPECT_DOUBLE_EQ(t.value, 1.0);
  EXPECT_DOUBLE_EQ(t.d1, 4.0);
  EXPECT_DOUBLE_EQ(t.d2, 12.0);
  EXPECT_DOUBLE_EQ(t.d3, 24.0);
  EXPECT_DOUBLE_EQ(t.d4, 24.0);
}

TEST(MomentTuple, MonomialSmallOrders) {
  EXPECT_DOUBLE_EQ(MomentTuple::monomial(0).d1, 0.0);
  EXPECT_DOUBLE_EQ(MomentTuple::monomial(1).d1, 1.0);
  EXPECT_DOUBLE_EQ(MomentTuple::monomial(1).d2, 0.0);
  EXPECT_DOUBLE_EQ(MomentTuple::monomial(2).d2, 2.0);
  EXPECT_DOUBLE_EQ(MomentTuple::monomial(3).d3, 6.0);
}

TEST(MomentTuple, FromPmfBernoulliMixture) {
  // X in {0, 2} with P(2)=0.3: E[X]=0.6, E[X(X-1)]=0.3*2=0.6.
  const std::array<double, 3> pmf = {0.7, 0.0, 0.3};
  const MomentTuple t = MomentTuple::from_pmf(pmf);
  EXPECT_NEAR(t.value, 1.0, 1e-15);
  EXPECT_NEAR(t.d1, 0.6, 1e-15);
  EXPECT_NEAR(t.d2, 0.6, 1e-15);
  EXPECT_NEAR(t.mean(), 0.6, 1e-15);
  EXPECT_NEAR(t.variance(), 0.6 + 0.6 - 0.36, 1e-15);
}

TEST(MomentTuple, ProductMatchesConvolution) {
  // Product of PGFs = PGF of the sum of independent variables; factorial
  // moments must match those computed from the convolved pmf.
  const std::array<double, 2> pa = {0.4, 0.6};          // Bernoulli(0.6)
  const std::array<double, 3> pb = {0.5, 0.25, 0.25};   // values 0,1,2
  const MomentTuple prod =
      MomentTuple::product(MomentTuple::from_pmf(pa),
                           MomentTuple::from_pmf(pb));
  // Convolved pmf over 0..3.
  std::array<double, 4> conv{};
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j)
      conv[static_cast<std::size_t>(i + j)] += pa[static_cast<std::size_t>(i)] * pb[static_cast<std::size_t>(j)];
  const MomentTuple direct = MomentTuple::from_pmf(conv);
  EXPECT_NEAR(prod.d1, direct.d1, 1e-14);
  EXPECT_NEAR(prod.d2, direct.d2, 1e-14);
  EXPECT_NEAR(prod.d3, direct.d3, 1e-14);
  EXPECT_NEAR(prod.d4, direct.d4, 1e-14);
}

TEST(MomentTuple, PowerMatchesRepeatedProduct) {
  const std::array<double, 2> pmf = {0.75, 0.25};
  const MomentTuple f = MomentTuple::from_pmf(pmf);
  MomentTuple manual = MomentTuple::one();
  for (int i = 0; i < 6; ++i) manual = MomentTuple::product(manual, f);
  const MomentTuple fast = MomentTuple::power(f, 6);
  EXPECT_NEAR(fast.d1, manual.d1, 1e-14);
  EXPECT_NEAR(fast.d2, manual.d2, 1e-14);
  EXPECT_NEAR(fast.d3, manual.d3, 1e-13);
  EXPECT_NEAR(fast.d4, manual.d4, 1e-13);
}

TEST(MomentTuple, BinomialClosedForm) {
  // (1 - p + p z)^k: R'(1) = kp, R''(1) = k(k-1)p^2, etc. (paper III-A-1).
  const double p = 0.3;
  const unsigned k = 7;
  const std::array<double, 2> factor = {1.0 - p, p};
  const MomentTuple t = MomentTuple::power(MomentTuple::from_pmf(factor), k);
  const double kd = k;
  EXPECT_NEAR(t.d1, kd * p, 1e-14);
  EXPECT_NEAR(t.d2, kd * (kd - 1) * p * p, 1e-14);
  EXPECT_NEAR(t.d3, kd * (kd - 1) * (kd - 2) * p * p * p, 1e-14);
  EXPECT_NEAR(t.d4, kd * (kd - 1) * (kd - 2) * (kd - 3) * p * p * p * p,
              1e-14);
}

TEST(MomentTuple, ComposeMatchesNumericDerivatives) {
  // F(G(z)) with F(y) = (0.6 + 0.4 y)^3 and G(z) = 0.5 z + 0.5 z^3.
  const auto F = [](double y) { return std::pow(0.6 + 0.4 * y, 3); };
  const auto G = [](double z) { return 0.5 * z + 0.5 * z * z * z; };
  const auto FG = [&](double z) { return F(G(z)); };

  const std::array<double, 2> f_factor = {0.6, 0.4};
  const MomentTuple f = MomentTuple::power(MomentTuple::from_pmf(f_factor), 3);
  const std::array<double, 4> g_pmf = {0.0, 0.5, 0.0, 0.5};
  const MomentTuple g = MomentTuple::from_pmf(g_pmf);
  const MomentTuple c = MomentTuple::compose(f, g);

  EXPECT_NEAR(c.d1, numeric_derivative(FG, 1), 1e-7);
  EXPECT_NEAR(c.d2, numeric_derivative(FG, 2), 1e-5);
}

TEST(MomentTuple, ComposeWithIdentityIsNoop) {
  const std::array<double, 3> pmf = {0.2, 0.5, 0.3};
  const MomentTuple f = MomentTuple::from_pmf(pmf);
  const MomentTuple c = MomentTuple::compose(f, MomentTuple::identity_z());
  EXPECT_NEAR(c.d1, f.d1, 1e-15);
  EXPECT_NEAR(c.d2, f.d2, 1e-15);
  EXPECT_NEAR(c.d3, f.d3, 1e-15);
  EXPECT_NEAR(c.d4, f.d4, 1e-15);
}

TEST(MomentTuple, ComposeOfMonomials) {
  // (z^a)^b = z^{ab}.
  const MomentTuple c =
      MomentTuple::compose(MomentTuple::monomial(3), MomentTuple::monomial(2));
  const MomentTuple direct = MomentTuple::monomial(6);
  EXPECT_NEAR(c.d1, direct.d1, 1e-12);
  EXPECT_NEAR(c.d2, direct.d2, 1e-12);
  EXPECT_NEAR(c.d3, direct.d3, 1e-12);
  EXPECT_NEAR(c.d4, direct.d4, 1e-12);
}

TEST(MomentTuple, ComposeRequiresInnerPgf) {
  MomentTuple bad = MomentTuple::one();
  bad.value = 0.5;
  EXPECT_THROW(MomentTuple::compose(MomentTuple::monomial(2), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace ksw::pgf
