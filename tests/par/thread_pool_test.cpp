#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"
#include "par/cancel.hpp"
#include "support/error.hpp"

namespace ksw::par {
namespace {

TEST(ThreadPool, SpawnsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  ThreadPool def(0);
  EXPECT_GE(def.thread_count(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 10000,
               [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2L);
}

TEST(ParallelForChunks, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{7}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for_chunks(pool, n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelForChunks, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for_chunks(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelForChunks, SingleThreadRunsAscending) {
  // With one worker there is one chunk, so indices arrive in order — the
  // property replicate sharding leans on for reproducible chunk walks.
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  parallel_for_chunks(pool, 64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForChunks, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for_chunks(pool, 100,
                                   [](std::size_t i) {
                                     if (i == 61)
                                       throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  std::atomic<int> counter{0};
  parallel_for_chunks(pool, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> counter{0};
  parallel_for(pool, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelMap, CollectsInIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map<std::size_t>(
      pool, 256, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 256u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, AttachMetricsRecordsTaskTelemetry) {
  obs::Registry reg;
  ThreadPool pool(2);
  pool.attach_metrics(&reg);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i)
    pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(reg.counter("pool.tasks").value(), 20u);
    EXPECT_DOUBLE_EQ(reg.gauge("pool.workers").value(), 2.0);
    EXPECT_EQ(reg.timer("pool.task_run").calls(), 20u);
    EXPECT_EQ(reg.timer("pool.task_wait").calls(), 20u);
  } else {
    EXPECT_TRUE(reg.empty());
  }
  // Detach: later tasks leave the registry untouched.
  pool.attach_metrics(nullptr);
  pool.submit([] {});
  pool.wait_idle();
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(reg.counter("pool.tasks").value(), 20u);
  }
}

TEST(ParallelFor, AbortOnErrorSkipsPendingIndices) {
  // One worker drains indices strictly in order, so everything after the
  // throwing index must be skipped, not executed.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  EXPECT_THROW(parallel_for(pool, 1000,
                            [&](std::size_t i) {
                              executed.fetch_add(1);
                              if (i == 4) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  EXPECT_LT(executed.load(), 1000);
}

TEST(ParallelFor, CancelTokenThrowsTypedInterruptedError) {
  ThreadPool pool(2);
  CancelToken cancel;
  cancel.request();
  std::atomic<int> executed{0};
  try {
    parallel_for(pool, 100, [&](std::size_t) { executed.fetch_add(1); },
                 &cancel);
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInterrupted);
  }
  // Pre-cancelled token: no index ever runs.
  EXPECT_EQ(executed.load(), 0);
}

TEST(ParallelForChunks, CancelTokenThrowsTypedInterruptedError) {
  ThreadPool pool(2);
  CancelToken cancel;
  cancel.request();
  std::atomic<int> executed{0};
  try {
    parallel_for_chunks(pool, 100,
                        [&](std::size_t) { executed.fetch_add(1); }, &cancel);
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInterrupted);
  }
  EXPECT_EQ(executed.load(), 0);
}

TEST(ParallelForChunks, BodyExceptionWinsOverCancellation) {
  // When a body throws and cancellation is also requested, the body's
  // exception is the root cause and must be the one rethrown.
  ThreadPool pool(1);
  CancelToken cancel;
  try {
    parallel_for_chunks(pool, 10,
                        [&](std::size_t i) {
                          if (i == 2) {
                            cancel.request();
                            throw std::runtime_error("root-cause");
                          }
                        },
                        &cancel);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "root-cause");
  }
}

TEST(ParallelFor, ReusablePoolAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    parallel_for(pool, 50, [&](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 50);
  }
}

}  // namespace
}  // namespace ksw::par
