#include "stats/gamma_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ksw::stats {
namespace {

TEST(GammaDistribution, MomentMatching) {
  const auto g = GammaDistribution::from_moments(3.0, 1.5);
  EXPECT_NEAR(g.mean(), 3.0, 1e-12);
  EXPECT_NEAR(g.variance(), 1.5, 1e-12);
  EXPECT_NEAR(g.shape(), 6.0, 1e-12);
  EXPECT_NEAR(g.scale(), 0.5, 1e-12);
}

TEST(GammaDistribution, ExponentialSpecialCase) {
  // shape 1 = Exp(1/scale).
  const GammaDistribution g(1.0, 2.0);
  EXPECT_NEAR(g.pdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(g.pdf(2.0), 0.5 * std::exp(-1.0), 1e-12);
  EXPECT_NEAR(g.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(GammaDistribution, PdfIntegratesToCdf) {
  const GammaDistribution g(2.7, 1.3);
  // Trapezoidal integral of the pdf vs cdf.
  const double hi = 12.0;
  const int steps = 40000;
  double acc = 0.0;
  double prev = g.pdf(0.0);
  for (int i = 1; i <= steps; ++i) {
    const double x = hi * i / steps;
    const double cur = g.pdf(x);
    acc += 0.5 * (prev + cur) * (hi / steps);
    prev = cur;
  }
  EXPECT_NEAR(acc, g.cdf(hi), 1e-6);
}

TEST(GammaDistribution, QuantileInvertsCdf) {
  const GammaDistribution g(4.2, 0.8);
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999})
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-9) << "p=" << p;
}

TEST(GammaDistribution, MedianOfExponential) {
  const GammaDistribution g(1.0, 1.0);
  EXPECT_NEAR(g.quantile(0.5), std::log(2.0), 1e-9);
}

TEST(GammaDistribution, IntervalProbability) {
  const GammaDistribution g(3.0, 1.0);
  EXPECT_NEAR(g.interval_probability(1.0, 2.0), g.cdf(2.0) - g.cdf(1.0),
              1e-15);
  EXPECT_DOUBLE_EQ(g.interval_probability(2.0, 1.0), 0.0);
}

TEST(GammaDistribution, PdfAtZeroEdgeCases) {
  EXPECT_TRUE(std::isinf(GammaDistribution(0.5, 1.0).pdf(0.0)));
  EXPECT_DOUBLE_EQ(GammaDistribution(1.0, 4.0).pdf(0.0), 0.25);
  EXPECT_DOUBLE_EQ(GammaDistribution(2.0, 1.0).pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(GammaDistribution(2.0, 1.0).pdf(-1.0), 0.0);
}

TEST(GammaDistribution, RejectsBadParameters) {
  EXPECT_THROW(GammaDistribution(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GammaDistribution(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(GammaDistribution::from_moments(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(GammaDistribution(1.0, 1.0).quantile(0.0),
               std::invalid_argument);
}

TEST(GammaDistribution, LargeShapeApproachesNormal) {
  // For large shape, (X - mean)/sd is approximately standard normal:
  // cdf(mean) ~ 0.5.
  const auto g = GammaDistribution::from_moments(100.0, 1.0);
  EXPECT_NEAR(g.cdf(100.0), 0.5, 0.02);
  EXPECT_NEAR(g.cdf(100.0 + 1.96), 0.975, 0.01);
}

}  // namespace
}  // namespace ksw::stats
