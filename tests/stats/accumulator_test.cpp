#include "stats/accumulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace ksw::stats {
namespace {

TEST(Accumulator, EmptyStateIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.skewness(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
}

TEST(Accumulator, SingleObservation) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(Accumulator, KnownSmallSample) {
  // x = {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population variance 4.
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_NEAR(acc.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, SkewnessOfSymmetricSampleIsZero) {
  Accumulator acc;
  for (double x : {-2.0, -1.0, 0.0, 1.0, 2.0}) acc.add(x);
  EXPECT_NEAR(acc.skewness(), 0.0, 1e-12);
}

TEST(Accumulator, SkewnessOfKnownSample) {
  // Exponential-ish sample; compare against direct computation.
  std::vector<double> xs = {0.1, 0.2, 0.3, 0.5, 1.0, 2.0, 4.5, 9.0};
  Accumulator acc;
  double mu = 0.0;
  for (double x : xs) {
    acc.add(x);
    mu += x;
  }
  mu /= static_cast<double>(xs.size());
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    m2 += (x - mu) * (x - mu);
    m3 += (x - mu) * (x - mu) * (x - mu);
  }
  m2 /= static_cast<double>(xs.size());
  m3 /= static_cast<double>(xs.size());
  EXPECT_NEAR(acc.skewness(), m3 / std::pow(m2, 1.5), 1e-10);
}

TEST(Accumulator, MergeMatchesConcatenation) {
  std::mt19937 gen(42);
  std::uniform_real_distribution<double> dist(-5.0, 20.0);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(gen);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_NEAR(left.skewness(), whole.skewness(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, b;
  a.add(1.0);
  a.add(2.0);
  Accumulator a_copy = a;
  a.merge(b);  // empty right
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty left
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Accumulator, NumericallyStableAroundLargeMean) {
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  Accumulator acc;
  const double base = 1e9;
  for (double x : {base + 4.0, base + 7.0, base + 13.0, base + 16.0})
    acc.add(x);
  EXPECT_NEAR(acc.mean(), base + 10.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 22.5, 1e-6);
}

TEST(Accumulator, ResetClears) {
  Accumulator acc;
  acc.add(5.0);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(Accumulator, LongStreamMatchesClosedForm) {
  // Uniform integers 0..9: mean 4.5, variance 8.25.
  Accumulator acc;
  for (int rep = 0; rep < 1000; ++rep)
    for (int v = 0; v < 10; ++v) acc.add(static_cast<double>(v));
  EXPECT_NEAR(acc.mean(), 4.5, 1e-12);
  EXPECT_NEAR(acc.variance(), 8.25, 1e-9);
}

}  // namespace
}  // namespace ksw::stats
