#include "stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ksw::stats {
namespace {

TEST(LogGamma, IntegerFactorials) {
  // Gamma(n) = (n-1)!.
  double fact = 1.0;
  for (int n = 1; n <= 15; ++n) {
    EXPECT_NEAR(log_gamma(n), std::log(fact), 1e-11) << "n=" << n;
    fact *= n;
  }
}

TEST(LogGamma, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi); Gamma(3/2) = sqrt(pi)/2.
  const double sqrt_pi = std::sqrt(3.14159265358979323846);
  EXPECT_NEAR(std::exp(log_gamma(0.5)), sqrt_pi, 1e-12);
  EXPECT_NEAR(std::exp(log_gamma(1.5)), sqrt_pi / 2.0, 1e-12);
  EXPECT_NEAR(std::exp(log_gamma(2.5)), 3.0 * sqrt_pi / 4.0, 1e-12);
}

TEST(LogGamma, AgreesWithStdLgamma) {
  for (double x : {0.1, 0.37, 1.2, 3.7, 11.0, 42.5, 170.0})
    EXPECT_NEAR(log_gamma(x), std::lgamma(x), 1e-9 * (1.0 + std::lgamma(x)))
        << "x=" << x;
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), std::domain_error);
  EXPECT_THROW(log_gamma(-1.5), std::domain_error);
}

TEST(RegularizedGammaP, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
}

TEST(RegularizedGammaP, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0})
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
}

TEST(RegularizedGammaP, ErlangSpecialCase) {
  // P(2, x) = 1 - e^{-x}(1 + x).
  for (double x : {0.2, 1.0, 3.0, 8.0})
    EXPECT_NEAR(regularized_gamma_p(2.0, x),
                1.0 - std::exp(-x) * (1.0 + x), 1e-12);
}

TEST(RegularizedGammaP, ComplementsSumToOne) {
  for (double a : {0.3, 1.0, 2.7, 10.0, 50.0})
    for (double x : {0.01, 0.5, 2.0, 9.0, 60.0})
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
}

TEST(RegularizedGammaP, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double v = regularized_gamma_p(3.5, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(prev, 1.0, 1e-5);
}

TEST(ErrorFunction, KnownValues) {
  EXPECT_NEAR(error_function(0.0), 0.0, 1e-15);
  EXPECT_NEAR(error_function(1.0), 0.8427007929497149, 1e-10);
  EXPECT_NEAR(error_function(-1.0), -0.8427007929497149, 1e-10);
  EXPECT_NEAR(error_function(2.0), 0.9953222650189527, 1e-10);
}

TEST(RegularizedBeta, BoundaryAndSymmetry) {
  EXPECT_DOUBLE_EQ(regularized_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.1, 0.3, 0.5, 0.8})
    EXPECT_NEAR(regularized_beta(2.5, 1.5, x),
                1.0 - regularized_beta(1.5, 2.5, 1.0 - x), 1e-12);
}

TEST(RegularizedBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.05, 0.25, 0.5, 0.75, 0.99})
    EXPECT_NEAR(regularized_beta(1.0, 1.0, x), x, 1e-12);
}

TEST(RegularizedBeta, BinomialIdentity) {
  // I_x(a, 1) = x^a.
  for (double x : {0.2, 0.6, 0.9})
    EXPECT_NEAR(regularized_beta(3.0, 1.0, x), x * x * x, 1e-12);
}

}  // namespace
}  // namespace ksw::stats
