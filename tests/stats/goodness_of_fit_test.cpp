#include "stats/goodness_of_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/xoshiro.hpp"

namespace ksw::stats {
namespace {

// Histogram sampled from a discretized gamma itself: all distances small.
IntHistogram sample_from_gamma(const GammaDistribution& g, int n,
                               std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  IntHistogram h;
  for (int i = 0; i < n; ++i) {
    // Inverse-CDF sampling, rounded to nearest integer (the discretization
    // the goodness-of-fit statistics assume).
    double u = gen.uniform();
    if (u <= 0.0) u = 1e-12;
    if (u >= 1.0) u = 1.0 - 1e-12;
    h.add(static_cast<std::int64_t>(std::llround(g.quantile(u))));
  }
  return h;
}

TEST(DiscretizedPmf, SumsToApproximatelyOne) {
  const auto g = GammaDistribution::from_moments(5.0, 4.0);
  double sum = 0.0;
  for (std::int64_t w = 0; w < 100; ++w) sum += discretized_model_pmf(g, w);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(discretized_model_pmf(g, -1), 0.0);
}

TEST(DiscretizedPmf, ZeroCellIsLeftTail) {
  const auto g = GammaDistribution::from_moments(2.0, 2.0);
  EXPECT_DOUBLE_EQ(discretized_model_pmf(g, 0), g.cdf(0.5));
}

TEST(TotalVariation, MatchingSampleIsSmall) {
  const auto g = GammaDistribution::from_moments(6.0, 9.0);
  const auto h = sample_from_gamma(g, 200000, 1);
  EXPECT_LT(total_variation_distance(h, g), 0.02);
}

TEST(TotalVariation, MismatchedModelIsLarge) {
  const auto g = GammaDistribution::from_moments(6.0, 9.0);
  const auto wrong = GammaDistribution::from_moments(20.0, 4.0);
  const auto h = sample_from_gamma(g, 50000, 2);
  EXPECT_GT(total_variation_distance(h, wrong), 0.5);
}

TEST(TotalVariation, BoundedByOne) {
  const auto far = GammaDistribution::from_moments(1000.0, 10.0);
  IntHistogram h;
  h.add(0, 100);
  const double tv = total_variation_distance(h, far);
  EXPECT_GT(tv, 0.99);
  EXPECT_LE(tv, 1.0 + 1e-12);
}

TEST(BinnedTotalVariation, WidthOneMatchesUnbinned) {
  const auto g = GammaDistribution::from_moments(6.0, 9.0);
  const auto h = sample_from_gamma(g, 20000, 11);
  EXPECT_NEAR(binned_total_variation(h, g, 1),
              total_variation_distance(h, g), 1e-12);
}

TEST(BinnedTotalVariation, BinningForgivesLatticeData) {
  // Data only on even integers: per-integer TV is ~0.5, width-2 TV small.
  const auto g = GammaDistribution::from_moments(20.0, 25.0);
  rng::Xoshiro256 gen(12);
  IntHistogram h;
  for (int i = 0; i < 50000; ++i) {
    double u = gen.uniform();
    if (u <= 0.0) u = 1e-12;
    const auto v = static_cast<std::int64_t>(std::llround(g.quantile(u)));
    h.add(2 * ((v + 1) / 2));  // round to even lattice
  }
  EXPECT_GT(total_variation_distance(h, g), 0.3);
  EXPECT_LT(binned_total_variation(h, g, 2), 0.1);
}

TEST(BinnedTotalVariation, RejectsBadWidth) {
  const auto g = GammaDistribution::from_moments(2.0, 2.0);
  IntHistogram h;
  h.add(1);
  EXPECT_THROW(binned_total_variation(h, g, 0), std::invalid_argument);
}

TEST(KsStatistic, MatchingSampleIsSmall) {
  const auto g = GammaDistribution::from_moments(6.0, 9.0);
  const auto h = sample_from_gamma(g, 200000, 3);
  EXPECT_LT(ks_statistic(h, g), 0.01);
}

TEST(KsStatistic, DetectsShift) {
  const auto g = GammaDistribution::from_moments(6.0, 9.0);
  const auto shifted = GammaDistribution::from_moments(9.0, 9.0);
  const auto h = sample_from_gamma(g, 50000, 4);
  EXPECT_GT(ks_statistic(h, shifted), 0.2);
}

TEST(ChiSquare, MatchingSampleIsModest) {
  const auto g = GammaDistribution::from_moments(8.0, 16.0);
  const auto h = sample_from_gamma(g, 100000, 5);
  // Discretization bias inflates chi^2 slightly; matching should still be
  // orders of magnitude below a gross mismatch.
  const double good = chi_square_statistic(h, g);
  const auto wrong = GammaDistribution::from_moments(16.0, 4.0);
  const double bad = chi_square_statistic(h, wrong);
  EXPECT_LT(good * 100.0, bad);
}

}  // namespace
}  // namespace ksw::stats
