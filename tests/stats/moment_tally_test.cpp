#include "stats/moment_tally.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/accumulator.hpp"

namespace ksw::stats {
namespace {

TEST(MomentTally, EmptyMirrorsAccumulatorConventions) {
  const MomentTally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.variance(), 0.0);
  EXPECT_EQ(t.skewness(), 0.0);
  EXPECT_EQ(t.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(t.max(), -std::numeric_limits<double>::infinity());
}

TEST(MomentTally, MatchesAccumulatorOnSmallSample) {
  MomentTally t;
  Accumulator a;
  for (const std::int64_t x : {0, 3, 1, 7, 2, 2, 9, 0}) {
    t.add(x);
    a.add(static_cast<double>(x));
  }
  EXPECT_EQ(t.count(), a.count());
  EXPECT_DOUBLE_EQ(t.mean(), a.mean());
  EXPECT_NEAR(t.variance(), a.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(t.min(), a.min());
  EXPECT_DOUBLE_EQ(t.max(), a.max());
  EXPECT_DOUBLE_EQ(t.sum(), a.sum());
}

TEST(MomentTally, MergeIsExactlyOrderIndependent) {
  // The property replicate reduction relies on: integer sums are
  // associative and commutative, so any merge order yields identical bits.
  MomentTally a, b, c;
  for (int i = 0; i < 100; ++i) a.add(i % 13);
  for (int i = 0; i < 57; ++i) b.add((i * 7) % 29);
  for (int i = 0; i < 31; ++i) c.add(1000 + i);

  MomentTally abc = a;
  abc.merge(b);
  abc.merge(c);
  MomentTally cba = c;
  cba.merge(b);
  cba.merge(a);
  EXPECT_EQ(abc.count(), cba.count());
  EXPECT_EQ(abc.mean(), cba.mean());          // bit-equal, not approximate
  EXPECT_EQ(abc.variance(), cba.variance());
  EXPECT_EQ(abc.skewness(), cba.skewness());
  EXPECT_EQ(abc.min(), cba.min());
  EXPECT_EQ(abc.max(), cba.max());
}

TEST(MomentTally, SkewnessSignTracksAsymmetry) {
  MomentTally right;  // long right tail
  for (int i = 0; i < 99; ++i) right.add(0);
  right.add(100);
  EXPECT_GT(right.skewness(), 0.0);

  MomentTally sym;
  for (const std::int64_t x : {1, 2, 3, 3, 4, 5}) sym.add(x);
  EXPECT_NEAR(sym.skewness(), 0.0, 1e-12);
}

TEST(MomentTally, PowerSumsStayExactAtTheDocumentedBound) {
  // 2^20-valued observations: s3 per add is 2^60, so a few thousand adds
  // exceed 64 bits and exercise the 128-bit accumulators.
  MomentTally t;
  const std::int64_t big = 1 << 20;
  const int n = 4096;
  for (int i = 0; i < n; ++i) t.add(big);
  EXPECT_EQ(t.count(), static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(t.mean(), static_cast<double>(big));
  EXPECT_EQ(t.variance(), 0.0);  // identical values: exactly zero
  const auto raw = t.raw();
  EXPECT_TRUE(raw.s3 ==
              static_cast<__int128_t>(big) * big * big * n);
}

TEST(MomentTally, RawRoundTripsIncludingEmptySentinels) {
  MomentTally t;
  t.add(-5);
  t.add(17);
  const MomentTally back = MomentTally::from_raw(t.raw());
  EXPECT_EQ(back.count(), t.count());
  EXPECT_EQ(back.mean(), t.mean());
  EXPECT_EQ(back.variance(), t.variance());
  EXPECT_EQ(back.min(), -5.0);
  EXPECT_EQ(back.max(), 17.0);

  // Empty tallies round-trip to empty (min/max sentinels restored).
  const MomentTally empty = MomentTally::from_raw(MomentTally{}.raw());
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.min(), std::numeric_limits<double>::infinity());
  MomentTally merged = empty;
  merged.add(3);
  EXPECT_EQ(merged.min(), 3.0);
  EXPECT_EQ(merged.max(), 3.0);
}

TEST(MomentTally, ResetReturnsToEmpty) {
  MomentTally t;
  t.add(4);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.min(), std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace ksw::stats
