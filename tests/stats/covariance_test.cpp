#include "stats/covariance.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ksw::stats {
namespace {

TEST(CovarianceAccumulator, PerfectlyCorrelatedPairs) {
  CovarianceAccumulator acc;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i);
    acc.add(x, 2.0 * x + 1.0);
  }
  EXPECT_NEAR(acc.correlation(), 1.0, 1e-12);
  EXPECT_NEAR(acc.covariance(), 2.0 * acc.variance_x(), 1e-9);
}

TEST(CovarianceAccumulator, AntiCorrelatedPairs) {
  CovarianceAccumulator acc;
  for (int i = 0; i < 100; ++i)
    acc.add(static_cast<double>(i), -3.0 * static_cast<double>(i));
  EXPECT_NEAR(acc.correlation(), -1.0, 1e-12);
}

TEST(CovarianceAccumulator, IndependentStreamsNearZero) {
  std::mt19937 gen(7);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  CovarianceAccumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(dist(gen), dist(gen));
  EXPECT_NEAR(acc.correlation(), 0.0, 0.01);
}

TEST(CovarianceAccumulator, KnownSmallSample) {
  // x = {1,2,3}, y = {2,4,7}: cov = E[xy]-E[x]E[y] = 29/3 - 2*13/3 = 5/3...
  // direct: mean_x=2, mean_y=13/3; cov = ((1-2)(2-13/3)+(2-2)(4-13/3)
  //          +(3-2)(7-13/3))/3 = (7/3 + 0 + 8/3)/3 = 5/3.
  CovarianceAccumulator acc;
  acc.add(1, 2);
  acc.add(2, 4);
  acc.add(3, 7);
  EXPECT_NEAR(acc.covariance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.mean_x(), 2.0, 1e-12);
  EXPECT_NEAR(acc.mean_y(), 13.0 / 3.0, 1e-12);
}

TEST(CovarianceAccumulator, MergeMatchesConcatenation) {
  std::mt19937 gen(11);
  std::normal_distribution<double> dist(0.0, 2.0);
  CovarianceAccumulator whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = dist(gen);
    const double y = 0.5 * x + dist(gen);
    whole.add(x, y);
    (i % 3 == 0 ? a : b).add(x, y);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.covariance(), whole.covariance(), 1e-9);
  EXPECT_NEAR(a.correlation(), whole.correlation(), 1e-9);
}

TEST(CovarianceMatrix, DiagonalIsVariance) {
  CovarianceMatrix m(3);
  std::mt19937 gen(3);
  std::uniform_real_distribution<double> dist(0.0, 4.0);
  CovarianceAccumulator check01;
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(gen), b = dist(gen), c = a + b;
    m.add({a, b, c});
    check01.add(a, b);
  }
  EXPECT_NEAR(m.covariance(0, 1), check01.covariance(), 1e-9);
  EXPECT_NEAR(m.correlation(0, 0), 1.0, 1e-12);
  // c = a + b: cov(a,c) = var(a) + cov(a,b).
  EXPECT_NEAR(m.covariance(0, 2), m.covariance(0, 0) + m.covariance(0, 1),
              1e-9);
}

TEST(CovarianceMatrix, SymmetricAccess) {
  CovarianceMatrix m(4);
  std::mt19937 gen(5);
  std::normal_distribution<double> dist;
  for (int i = 0; i < 300; ++i)
    m.add({dist(gen), dist(gen), dist(gen), dist(gen)});
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(m.covariance(i, j), m.covariance(j, i));
}

TEST(CovarianceMatrix, MergeMatchesConcatenation) {
  CovarianceMatrix whole(2), a(2), b(2);
  std::mt19937 gen(13);
  std::normal_distribution<double> dist;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> v = {dist(gen), dist(gen)};
    whole.add(v);
    (i < 100 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.covariance(0, 1), whole.covariance(0, 1), 1e-9);
  EXPECT_NEAR(a.mean(0), whole.mean(0), 1e-10);
}

TEST(CovarianceMatrix, RejectsDimensionMismatch) {
  CovarianceMatrix m(3);
  EXPECT_THROW(m.add({1.0, 2.0}), std::invalid_argument);
  CovarianceMatrix other(2);
  EXPECT_THROW(m.merge(other), std::invalid_argument);
  EXPECT_THROW(CovarianceMatrix(0), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::stats
