#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ksw::stats {
namespace {

TEST(IntHistogram, EmptyState) {
  IntHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_value(), -1);
  EXPECT_DOUBLE_EQ(h.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), -1);
}

TEST(IntHistogram, BasicTally) {
  IntHistogram h;
  h.add(0);
  h.add(0);
  h.add(3);
  h.add(5, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.count(4), 0u);
  EXPECT_EQ(h.max_value(), 5);
  EXPECT_DOUBLE_EQ(h.pmf(0), 0.4);
  EXPECT_DOUBLE_EQ(h.cdf(3), 0.6);
  EXPECT_DOUBLE_EQ(h.cdf(5), 1.0);
}

TEST(IntHistogram, MeanVarianceMatchDirect) {
  IntHistogram h;
  // Values: 1,1,2,4 -> mean 2, var = (1+1+0+4)/4 = 1.5.
  h.add(1, 2);
  h.add(2);
  h.add(4);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.variance(), 1.5);
}

TEST(IntHistogram, Quantiles) {
  IntHistogram h;
  for (int v = 0; v < 10; ++v) h.add(v, 10);  // uniform over 0..9
  EXPECT_EQ(h.quantile(0.05), 0);
  EXPECT_EQ(h.quantile(0.5), 4);
  EXPECT_EQ(h.quantile(0.95), 9);
  EXPECT_EQ(h.quantile(1.0), 9);
}

TEST(IntHistogram, QuantileSkipsEmptyValues) {
  IntHistogram h;
  h.add(0, 50);
  h.add(10, 50);
  EXPECT_EQ(h.quantile(0.6), 10);
}

TEST(IntHistogram, RejectsNegativeAndBadArgs) {
  IntHistogram h;
  EXPECT_THROW(h.add(-1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(h.binned_pmf(0), std::invalid_argument);
}

TEST(IntHistogram, MergeAddsCounts) {
  IntHistogram a, b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(2), 2u);
  EXPECT_EQ(a.count(7), 1u);
  EXPECT_EQ(a.max_value(), 7);
}

TEST(IntHistogram, BinnedPmfSumsToOne) {
  IntHistogram h;
  for (int v = 0; v < 23; ++v) h.add(v, static_cast<std::uint64_t>(v + 1));
  const auto bins = h.binned_pmf(5);
  EXPECT_EQ(bins.size(), 5u);  // ceil(23/5)
  double sum = 0.0;
  for (double x : bins) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // First bin holds values 0..4 with counts 1..5 out of total 276.
  EXPECT_NEAR(bins[0], 15.0 / 276.0, 1e-12);
}

TEST(IntHistogram, CdfIsMonotone) {
  IntHistogram h;
  h.add(2, 3);
  h.add(6, 4);
  h.add(9, 1);
  double prev = -1.0;
  for (std::int64_t v = 0; v <= h.max_value(); ++v) {
    EXPECT_GE(h.cdf(v), prev);
    prev = h.cdf(v);
  }
  EXPECT_DOUBLE_EQ(h.cdf(h.max_value()), 1.0);
}

}  // namespace
}  // namespace ksw::stats
