#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace ksw::stats {
namespace {

TEST(StudentT, KnownCriticalValues) {
  // Standard t-table entries, two-sided 95%.
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(2, 0.95), 4.303, 1e-3);
  EXPECT_NEAR(student_t_critical(5, 0.95), 2.571, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.042, 1e-3);
  // 99% level.
  EXPECT_NEAR(student_t_critical(10, 0.99), 3.169, 1e-3);
}

TEST(StudentT, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_critical(100000, 0.95), 1.960, 1e-2);
}

TEST(StudentT, RejectsBadArgs) {
  EXPECT_THROW(student_t_critical(0, 0.95), std::invalid_argument);
  EXPECT_THROW(student_t_critical(5, 1.0), std::invalid_argument);
}

TEST(ReplicateInterval, KnownSample) {
  // Means {1, 2, 3}: grand mean 2, s^2 = 1, se = 1/sqrt(3).
  const std::vector<double> means = {1.0, 2.0, 3.0};
  const auto ci = replicate_interval(means, 0.95);
  EXPECT_NEAR(ci.point, 2.0, 1e-12);
  EXPECT_NEAR(ci.half_width, 4.303 / std::sqrt(3.0), 1e-2);
  EXPECT_TRUE(ci.contains(2.0));
  EXPECT_EQ(ci.samples, 3u);
}

TEST(ReplicateInterval, RequiresTwoReplicates) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(replicate_interval(one), std::invalid_argument);
}

TEST(ReplicateInterval, CoversTrueMeanMostOfTheTime) {
  std::mt19937 gen(99);
  std::normal_distribution<double> dist(10.0, 2.0);
  int covered = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> means;
    for (int r = 0; r < 8; ++r) {
      double s = 0.0;
      for (int i = 0; i < 16; ++i) s += dist(gen);
      means.push_back(s / 16.0);
    }
    if (replicate_interval(means, 0.95).contains(10.0)) ++covered;
  }
  // Nominal coverage 95%; allow generous slack for Monte Carlo noise.
  EXPECT_GT(covered, trials * 0.88);
}

TEST(BatchMeans, MatchesReplicateOnIidData) {
  std::mt19937 gen(7);
  std::normal_distribution<double> dist(5.0, 1.0);
  std::vector<double> stream;
  for (int i = 0; i < 6400; ++i) stream.push_back(dist(gen));
  const auto ci = batch_means(stream, 32, 0.95);
  EXPECT_NEAR(ci.point, 5.0, 0.1);
  EXPECT_LT(ci.half_width, 0.1);
  EXPECT_TRUE(ci.contains(5.0));
}

TEST(BatchMeans, WiderForCorrelatedData) {
  // AR(1) stream with strong positive correlation: batch-means interval
  // must be wider than the naive iid one on the same data.
  std::mt19937 gen(21);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> stream;
  double x = 0.0;
  for (int i = 0; i < 12800; ++i) {
    x = 0.95 * x + noise(gen);
    stream.push_back(x);
  }
  const auto coarse = batch_means(stream, 16);
  // Pseudo-iid interval: every point its own "batch".
  const auto naive = batch_means(stream, 3200);
  EXPECT_GT(coarse.half_width, naive.half_width);
}

TEST(BatchMeans, RejectsDegenerateInput) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_THROW(batch_means(tiny, 1), std::invalid_argument);
  EXPECT_THROW(batch_means(std::vector<double>{}, 4), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::stats
