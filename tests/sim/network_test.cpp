#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/closed_forms.hpp"

namespace ksw::sim {
namespace {

NetworkConfig small_config() {
  NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 6;
  cfg.p = 0.5;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 30'000;
  cfg.seed = 11;
  return cfg;
}

TEST(NetworkSim, DeterministicForFixedSeed) {
  NetworkConfig cfg = small_config();
  cfg.measure_cycles = 5'000;
  const auto a = run_network(cfg);
  const auto b = run_network(cfg);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  for (unsigned s = 0; s < cfg.stages; ++s)
    EXPECT_DOUBLE_EQ(a.stage_wait[s].mean(), b.stage_wait[s].mean());
}

TEST(NetworkSim, ConservesPackets) {
  NetworkConfig cfg = small_config();
  const auto r = run_network(cfg);
  // Everything injected after warmup either leaves or is still in flight;
  // in-flight population is bounded by a few packets per queue.
  EXPECT_GT(r.packets_delivered, 0u);
  EXPECT_EQ(r.packets_dropped, 0u);
  const std::uint64_t ports = 1u << cfg.stages;
  const std::uint64_t in_flight_bound = 50ull * ports * cfg.stages;
  EXPECT_LE(r.packets_delivered, r.packets_injected);
  EXPECT_LT(r.packets_injected - r.packets_delivered, in_flight_bound);
}

TEST(NetworkSim, FirstStageMatchesTheoremOne) {
  NetworkConfig cfg = small_config();
  cfg.measure_cycles = 50'000;
  const auto r = run_network(cfg);
  EXPECT_NEAR(r.stage_wait[0].mean(), 0.25, 0.01);
  EXPECT_NEAR(r.stage_wait[0].variance(), 0.25, 0.02);
}

TEST(NetworkSim, LaterStagesConvergeToPaperLimit) {
  NetworkConfig cfg = small_config();
  cfg.stages = 8;
  cfg.measure_cycles = 60'000;
  const auto r = run_network(cfg);
  // Paper Table I/V: stage means rise from 0.25 toward ~0.30.
  EXPECT_GT(r.stage_wait[3].mean(), r.stage_wait[0].mean());
  EXPECT_NEAR(r.stage_wait[7].mean(), 0.30, 0.01);
  EXPECT_NEAR(r.stage_wait[7].variance(), 0.343, 0.02);
}

TEST(NetworkSim, ZeroLoadProducesNothing) {
  NetworkConfig cfg = small_config();
  cfg.p = 0.0;
  cfg.measure_cycles = 500;
  const auto r = run_network(cfg);
  EXPECT_EQ(r.packets_injected, 0u);
  EXPECT_EQ(r.stage_wait[0].count(), 0u);
}

TEST(NetworkSim, FullyFavoredTrafficNeverQueues) {
  // q = 1: every packet follows dst == src, so each queue serves exactly
  // one flow of rate p < 1 and waiting is zero at every stage.
  NetworkConfig cfg = small_config();
  cfg.q = 1.0;
  cfg.measure_cycles = 10'000;
  const auto r = run_network(cfg);
  for (unsigned s = 0; s < cfg.stages; ++s) {
    EXPECT_DOUBLE_EQ(r.stage_wait[s].mean(), 0.0) << "stage " << s;
    EXPECT_DOUBLE_EQ(r.stage_wait[s].max(), 0.0) << "stage " << s;
  }
}

TEST(NetworkSim, NonuniformFirstStageMatchesClosedForm) {
  NetworkConfig cfg = small_config();
  cfg.q = 0.5;
  cfg.measure_cycles = 60'000;
  const auto r = run_network(cfg);
  EXPECT_NEAR(r.stage_wait[0].mean(),
              core::closed::nonuniform_mean(2, 0.5, 0.5), 0.01);
}

TEST(NetworkSim, MessageSizeFirstStageMatchesEq8) {
  NetworkConfig cfg = small_config();
  cfg.p = 0.125;
  cfg.service = ServiceSpec::deterministic(4);
  cfg.measure_cycles = 80'000;
  const auto r = run_network(cfg);
  EXPECT_NEAR(r.stage_wait[0].mean(), 1.75, 0.05);
  // Interior stages smooth out (paper Table III: ~1.2 at rho = 0.5).
  EXPECT_NEAR(r.stage_wait[4].mean(), 1.2, 0.06);
}

TEST(NetworkSim, TotalCheckpointsAccumulateStageWaits) {
  NetworkConfig cfg = small_config();
  cfg.stages = 6;
  cfg.total_checkpoints = {3, 6};
  cfg.measure_cycles = 40'000;
  const auto r = run_network(cfg);
  ASSERT_EQ(r.total_wait.size(), 2u);
  const double w3 = r.total_wait[0].mean();
  const double w6 = r.total_wait[1].mean();
  double stage_sum3 = 0.0, stage_sum6 = 0.0;
  for (unsigned s = 0; s < 3; ++s) stage_sum3 += r.stage_wait[s].mean();
  for (unsigned s = 0; s < 6; ++s) stage_sum6 += r.stage_wait[s].mean();
  EXPECT_NEAR(w3, stage_sum3, 0.02);
  EXPECT_NEAR(w6, stage_sum6, 0.03);
  EXPECT_GT(w6, w3);
}

TEST(NetworkSim, CorrelationsDecayGeometrically) {
  NetworkConfig cfg = small_config();
  cfg.stages = 8;
  cfg.track_correlations = true;
  cfg.measure_cycles = 60'000;
  const auto r = run_network(cfg);
  ASSERT_TRUE(r.stage_covariance.has_value());
  const auto& cov = *r.stage_covariance;
  // Paper Table VI: neighbors ~0.12, next ~0.045, then ~0.019.
  EXPECT_NEAR(cov.correlation(3, 4), 0.12, 0.02);
  EXPECT_NEAR(cov.correlation(3, 5), 0.045, 0.015);
  EXPECT_LT(cov.correlation(3, 6), cov.correlation(3, 5));
}

TEST(NetworkSim, LittlesLawPerStage) {
  NetworkConfig cfg = small_config();
  cfg.measure_cycles = 50'000;
  const auto r = run_network(cfg);
  for (unsigned s = 0; s < cfg.stages; ++s)
    EXPECT_NEAR(r.stage_depth[s].mean(), 0.5 * r.stage_wait[s].mean(), 0.01)
        << "stage " << s;
}

TEST(NetworkSim, FiniteBuffersDropAtEntryUnderOverload) {
  NetworkConfig cfg = small_config();
  cfg.stages = 4;
  cfg.p = 0.9;
  cfg.buffer_capacity = 1;
  cfg.measure_cycles = 10'000;
  const auto r = run_network(cfg);
  EXPECT_GT(r.packets_dropped, 0u);
  // Waits are bounded by the tiny buffers plus blocking stalls.
  EXPECT_LT(r.stage_wait[0].mean(), 10.0);
}

TEST(NetworkSim, LargeBuffersBehaveLikeInfinite) {
  NetworkConfig inf_cfg = small_config();
  inf_cfg.measure_cycles = 30'000;
  NetworkConfig fin_cfg = inf_cfg;
  fin_cfg.buffer_capacity = 4096;
  const auto a = run_network(inf_cfg);
  const auto b = run_network(fin_cfg);
  EXPECT_EQ(b.packets_dropped, 0u);
  EXPECT_NEAR(a.stage_wait[3].mean(), b.stage_wait[3].mean(), 1e-9);
}

TEST(NetworkSim, StageHistogramsMatchAccumulators) {
  NetworkConfig cfg = small_config();
  cfg.track_stage_histograms = true;
  cfg.measure_cycles = 20'000;
  const auto r = run_network(cfg);
  ASSERT_EQ(r.stage_hist.size(), cfg.stages);
  for (unsigned s = 0; s < cfg.stages; ++s) {
    EXPECT_EQ(r.stage_hist[s].total(), r.stage_wait[s].count());
    EXPECT_NEAR(r.stage_hist[s].mean(), r.stage_wait[s].mean(), 1e-9);
    EXPECT_NEAR(r.stage_hist[s].variance(), r.stage_wait[s].variance(),
                1e-9);
  }
}

TEST(NetworkSim, PerStageDistributionsStabilize) {
  // Paper Section V: "The distribution of waiting times seems to be about
  // the same for all stages" — compare deep stages pairwise by TV.
  NetworkConfig cfg = small_config();
  cfg.stages = 8;
  cfg.track_stage_histograms = true;
  cfg.measure_cycles = 60'000;
  const auto r = run_network(cfg);
  const auto& a = r.stage_hist[6];
  const auto& b = r.stage_hist[7];
  double tv = 0.0;
  const std::int64_t top = std::max(a.max_value(), b.max_value());
  for (std::int64_t w = 0; w <= top; ++w) tv += std::abs(a.pmf(w) - b.pmf(w));
  EXPECT_LT(0.5 * tv, 0.01);
}

TEST(NetworkSim, HotspotSaturatesTheHotPath) {
  // 10% hot-spot traffic at p = 0.5 focuses 0.5 * (0.1 * 16 + 0.9) packets
  // per cycle on the final hot queue -- saturated, so its backlog grows
  // while cold queues stay calm (tree saturation).
  NetworkConfig cfg = small_config();
  cfg.stages = 4;
  cfg.p = 0.5;
  cfg.hotspot = 0.1;
  cfg.measure_cycles = 20'000;
  const auto r = run_network(cfg);
  // Mean wait at the last stage is dominated by the single hot queue and
  // far exceeds the uniform-traffic value (~0.3).
  EXPECT_GT(r.stage_wait[3].mean(), 2.0);
  // First stage barely notices (hot rate per first-stage queue is tiny).
  EXPECT_LT(r.stage_wait[0].mean(), 0.5);
}

TEST(NetworkSim, HotspotZeroMatchesUniform) {
  NetworkConfig base = small_config();
  base.measure_cycles = 5'000;
  NetworkConfig hot = base;
  hot.hotspot = 0.0;
  const auto a = run_network(base);
  const auto b = run_network(hot);
  EXPECT_DOUBLE_EQ(a.stage_wait[2].mean(), b.stage_wait[2].mean());
}

TEST(NetworkSim, HotspotValidated) {
  NetworkConfig cfg = small_config();
  cfg.hotspot = 1.5;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
}

TEST(NetworkSim, ValidatesConfig) {
  NetworkConfig cfg;
  cfg.k = 1;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
  cfg = NetworkConfig{};
  cfg.stages = 0;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
  cfg = NetworkConfig{};
  cfg.stages = 20;
  cfg.track_correlations = true;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
  cfg = NetworkConfig{};
  cfg.total_checkpoints = {9};
  cfg.stages = 8;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
  cfg = NetworkConfig{};
  cfg.k = 4;
  cfg.stages = 15;  // 4^15 ports: too large
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
}

TEST(NetworkSim, CorrelationLimitMessageTracksConstant) {
  // Regression: the error text used to hardcode "16 stages"; it must stay
  // in sync with kMaxTrackedStages.
  NetworkConfig cfg;
  cfg.stages = kMaxTrackedStages + 1;
  cfg.track_correlations = true;
  try {
    (void)run_network(cfg);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(std::to_string(kMaxTrackedStages)),
              std::string::npos)
        << e.what();
  }
}

TEST(NetworkSim, RejectsHotspotTargetOutsideNetwork) {
  // Regression: an out-of-range target used to be silently wrapped with
  // `% ports`, redirecting the hot spot to an unrelated output.
  NetworkConfig cfg = small_config();
  cfg.hotspot = 0.1;
  cfg.hotspot_target = 1u << cfg.stages;  // == ports: one past the end
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
  cfg.hotspot_target = (1u << cfg.stages) - 1;  // last valid output
  cfg.measure_cycles = 500;
  const auto r = run_network(cfg);
  EXPECT_GT(r.packets_delivered, 0u);
  // The range check runs even at hotspot rate 0 — a latent bad target
  // fails at construction, not when someone later turns the rate up.
  cfg.hotspot = 0.0;
  cfg.hotspot_target = 1u << cfg.stages;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
}

TEST(NetworkSim, MergeRejectsStageHistShapeMismatch) {
  // Regression: merge used to skip mismatched stage_hist vectors silently,
  // losing one replicate's histograms without any signal.
  NetworkConfig cfg = small_config();
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 500;
  cfg.track_stage_histograms = true;
  NetworkResults with_hist = run_network(cfg);
  cfg.track_stage_histograms = false;
  const NetworkResults without_hist = run_network(cfg);
  EXPECT_THROW(with_hist.merge(without_hist), std::invalid_argument);

  NetworkConfig other = cfg;
  other.stages = cfg.stages - 1;
  NetworkResults shallower = run_network(other);
  EXPECT_THROW(shallower.merge(without_hist), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::sim
