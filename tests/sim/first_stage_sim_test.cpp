#include "sim/first_stage_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/closed_forms.hpp"
#include "core/first_stage.hpp"

namespace ksw::sim {
namespace {

FirstStageConfig base_config() {
  FirstStageConfig cfg;
  cfg.warmup_cycles = 5'000;
  cfg.measure_cycles = 300'000;
  cfg.seed = 7;
  return cfg;
}

TEST(FirstStageSim, DeterministicForFixedSeed) {
  FirstStageConfig cfg = base_config();
  cfg.measure_cycles = 20'000;
  const auto a = run_first_stage(cfg);
  const auto b = run_first_stage(cfg);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.waiting.mean(), b.waiting.mean());
  EXPECT_DOUBLE_EQ(a.waiting.variance(), b.waiting.variance());
}

TEST(FirstStageSim, ZeroLoadMeansNoMessages) {
  FirstStageConfig cfg = base_config();
  cfg.p = 0.0;
  cfg.measure_cycles = 1'000;
  const auto r = run_first_stage(cfg);
  EXPECT_EQ(r.messages, 0u);
}

TEST(FirstStageSim, ThroughputMatchesOfferedLoad) {
  FirstStageConfig cfg = base_config();
  cfg.measure_cycles = 200'000;
  const auto r = run_first_stage(cfg);
  // k inputs at rate p spread over s queues; messages recorded =
  // lambda * s * cycles in steady state.
  const double rate = static_cast<double>(r.messages) /
                      (static_cast<double>(cfg.measure_cycles) * cfg.s);
  EXPECT_NEAR(rate, 0.5, 0.01);
}

TEST(FirstStageSim, MatchesTheoremOneUniformUnit) {
  FirstStageConfig cfg = base_config();
  const auto r = run_first_stage(cfg);
  EXPECT_NEAR(r.waiting.mean(), 0.25, 0.01);
  EXPECT_NEAR(r.waiting.variance(), 0.25, 0.015);
}

TEST(FirstStageSim, MatchesTheoremOneAsymmetricSwitch) {
  // k = 4 inputs, s = 2 outputs, p = 0.3: lambda = 0.6.
  FirstStageConfig cfg = base_config();
  cfg.k = 4;
  cfg.s = 2;
  cfg.p = 0.3;
  const auto r = run_first_stage(cfg);
  EXPECT_NEAR(r.waiting.mean(), core::closed::eq6_mean(4, 2, 0.3), 0.02);
  EXPECT_NEAR(r.waiting.variance(), core::closed::eq7_variance(4, 2, 0.3),
              0.05);
}

TEST(FirstStageSim, MatchesTheoremOneBulk) {
  FirstStageConfig cfg = base_config();
  cfg.p = 0.125;
  cfg.bulk = 4;  // lambda = 0.5
  const auto r = run_first_stage(cfg);
  EXPECT_NEAR(r.waiting.mean(), core::closed::bulk_mean(2, 2, 0.125, 4),
              0.05);
  EXPECT_NEAR(r.waiting.variance(),
              core::closed::bulk_variance(2, 2, 0.125, 4), 0.3);
}

TEST(FirstStageSim, MatchesTheoremOneNonuniform) {
  FirstStageConfig cfg = base_config();
  cfg.k = 4;
  cfg.s = 4;
  cfg.p = 0.6;
  cfg.q = 0.5;
  const auto r = run_first_stage(cfg);
  EXPECT_NEAR(r.waiting.mean(), core::closed::nonuniform_mean(4, 0.6, 0.5),
              0.02);
  EXPECT_NEAR(r.waiting.variance(),
              core::closed::nonuniform_variance(4, 0.6, 0.5), 0.05);
}

TEST(FirstStageSim, MatchesTheoremOneConstantService) {
  FirstStageConfig cfg = base_config();
  cfg.p = 0.125;
  cfg.service = ServiceSpec::deterministic(4);  // rho = 0.5
  const auto r = run_first_stage(cfg);
  EXPECT_NEAR(r.waiting.mean(), 1.75, 0.06);
  EXPECT_NEAR(r.waiting.variance(), 7.5, 0.6);
}

TEST(FirstStageSim, MatchesTheoremOneGeometricService) {
  FirstStageConfig cfg = base_config();
  cfg.p = 0.25;
  cfg.service = ServiceSpec::geometric(0.5);  // rho = 0.5
  const auto r = run_first_stage(cfg);
  EXPECT_NEAR(r.waiting.mean(), core::closed::geometric_mean(2, 2, 0.25, 0.5),
              0.05);
  EXPECT_NEAR(r.waiting.variance(),
              core::closed::geometric_variance(2, 2, 0.25, 0.5), 0.4);
}

TEST(FirstStageSim, MatchesTheoremOneMultiSize) {
  FirstStageConfig cfg = base_config();
  cfg.p = 0.5 / 6.0;  // rho = 0.5 with mean size 6
  cfg.service = ServiceSpec::multi_size({{4, 0.5}, {8, 0.5}});
  const auto r = run_first_stage(cfg);
  core::QueueSpec spec{
      std::shared_ptr<core::ArrivalModel>(
          core::make_uniform_arrivals(2, 2, cfg.p)),
      std::make_shared<core::MultiSizeService>(
          std::vector<core::MultiSizeService::Size>{{4, 0.5}, {8, 0.5}})};
  const auto exact = core::FirstStage(spec).moments();
  EXPECT_NEAR(r.waiting.mean(), exact.mean, 0.08);
  EXPECT_NEAR(r.waiting.variance(), exact.variance, 1.0);
}

TEST(FirstStageSim, HistogramMatchesInvertedTransform) {
  FirstStageConfig cfg = base_config();
  cfg.measure_cycles = 500'000;
  const auto r = run_first_stage(cfg);
  core::QueueSpec spec{
      std::shared_ptr<core::ArrivalModel>(
          core::make_uniform_arrivals(2, 2, 0.5)),
      std::make_shared<core::DeterministicService>(1)};
  const auto dist = core::FirstStage(spec).distribution(32);
  // Total-variation distance between empirical and exact pmf.
  double tv = 0.0;
  for (std::int64_t w = 0; w < 32; ++w)
    tv += std::abs(r.histogram.pmf(w) - dist[static_cast<std::size_t>(w)]);
  EXPECT_LT(0.5 * tv, 0.005);
}

TEST(FirstStageSim, LittlesLawHolds) {
  // E[queue length] = lambda_per_queue * E[w].
  FirstStageConfig cfg = base_config();
  cfg.measure_cycles = 200'000;
  const auto r = run_first_stage(cfg);
  const double lambda_per_queue = 0.5;  // k p / s
  EXPECT_NEAR(r.queue_depth.mean(), lambda_per_queue * r.waiting.mean(),
              0.01);
}

TEST(FirstStageSim, RejectsBadConfig) {
  FirstStageConfig cfg;
  cfg.p = 1.5;
  EXPECT_THROW(run_first_stage(cfg), std::invalid_argument);
  cfg = FirstStageConfig{};
  cfg.bulk = 0;
  EXPECT_THROW(run_first_stage(cfg), std::invalid_argument);
  cfg = FirstStageConfig{};
  cfg.k = 0;
  EXPECT_THROW(run_first_stage(cfg), std::invalid_argument);
}

TEST(FirstStageSim, HotspotTargetValidatedEvenWhenInactive) {
  // The regression this guards: an out-of-range target used to slip
  // through when hotspot == 0 and only exploded (or silently aliased)
  // once a caller turned the rate up. The check runs on every path.
  FirstStageConfig cfg = base_config();
  cfg.hotspot_target = cfg.s;  // first invalid output
  EXPECT_THROW(run_first_stage(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.hotspot = 0.5;
  cfg.hotspot_target = 99;
  EXPECT_THROW(run_first_stage(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.hotspot = -0.1;
  EXPECT_THROW(run_first_stage(cfg), std::invalid_argument);
  cfg = base_config();
  cfg.hotspot = 1.5;
  EXPECT_THROW(run_first_stage(cfg), std::invalid_argument);
}

TEST(FirstStageSim, InactiveHotspotPreservesRngStream) {
  // hotspot == 0 must draw nothing from the generator: results are
  // bit-identical to a config that never mentions the hot spot.
  FirstStageConfig plain = base_config();
  plain.measure_cycles = 20'000;
  FirstStageConfig with_target = plain;
  with_target.hotspot_target = 1;  // valid, but inert at rate 0
  const auto a = run_first_stage(plain);
  const auto b = run_first_stage(with_target);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.waiting.mean(), b.waiting.mean());
  EXPECT_EQ(a.waiting.variance(), b.waiting.variance());
}

TEST(FirstStageSim, SaturatedHotspotMatchesSingleQueueTheory) {
  // hotspot = 1 funnels every batch from k inputs into one queue, which
  // is exactly the k-input single-output switch of Theorem 1.
  FirstStageConfig cfg = base_config();
  cfg.k = 4;
  cfg.s = 4;
  cfg.p = 0.2;  // target queue sees lambda = 0.8
  cfg.hotspot = 1.0;
  cfg.hotspot_target = 2;
  const auto r = run_first_stage(cfg);
  const double want = core::closed::eq6_mean(4, 1, 0.2);
  EXPECT_NEAR(r.waiting.mean(), want, 0.05 * want);
}

}  // namespace
}  // namespace ksw::sim
