// Unit tests for the flat arena-backed queue pool and the active-set
// scheduler backing the network hot path.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

#include "rng/xoshiro.hpp"
#include "sim/active_set.hpp"
#include "sim/queue_pool.hpp"

namespace ksw::sim {
namespace {

TEST(QueuePool, FifoPerQueue) {
  QueuePool<int> pool(3);
  pool.push(1, 10);
  pool.push(1, 11);
  pool.push(1, 12);
  EXPECT_TRUE(pool.empty(0));
  EXPECT_EQ(pool.size(1), 3u);
  EXPECT_EQ(pool.front(1), 10);
  pool.pop(1);
  EXPECT_EQ(pool.front(1), 11);
  pool.pop(1);
  pool.push(1, 13);
  EXPECT_EQ(pool.front(1), 12);
  pool.pop(1);
  EXPECT_EQ(pool.front(1), 13);
  pool.pop(1);
  EXPECT_TRUE(pool.empty(1));
}

TEST(QueuePool, GrowthPreservesOrderAcrossWrap) {
  // Push/pop interleaving forces the ring head away from slot 0, then a
  // burst forces capacity doubling while the ring is wrapped.
  QueuePool<std::uint64_t> pool(1, 4);
  for (std::uint64_t i = 0; i < 3; ++i) pool.push(0, i);
  pool.pop(0);
  pool.pop(0);  // head is now mid-ring
  for (std::uint64_t i = 3; i < 40; ++i) pool.push(0, i);
  EXPECT_EQ(pool.size(0), 38u);
  for (std::uint64_t want = 2; want < 40; ++want) {
    EXPECT_EQ(pool.front(0), want);
    pool.pop(0);
  }
  EXPECT_TRUE(pool.empty(0));
}

TEST(QueuePool, ManyQueuesInterleavedMatchDeque) {
  // Randomized differential test against std::deque on 17 queues.
  constexpr std::size_t kQueues = 17;
  QueuePool<std::uint32_t> pool(kQueues);
  std::vector<std::deque<std::uint32_t>> ref(kQueues);
  rng::Xoshiro256 gen(7);
  for (std::uint32_t step = 0; step < 20'000; ++step) {
    const auto q = static_cast<std::size_t>(gen.uniform_int(kQueues));
    if (gen.uniform() < 0.55 || ref[q].empty()) {
      pool.push(q, step);
      ref[q].push_back(step);
    } else {
      ASSERT_EQ(pool.front(q), ref[q].front());
      pool.pop(q);
      ref[q].pop_front();
    }
  }
  for (std::size_t q = 0; q < kQueues; ++q) {
    ASSERT_EQ(pool.size(q), ref[q].size());
    for (std::size_t i = 0; i < ref[q].size(); ++i)
      EXPECT_EQ(pool.at(q, i), ref[q][i]);
  }
}

TEST(QueuePool, AtIndexesFromHead) {
  QueuePool<int> pool(2, 4);
  for (int i = 0; i < 6; ++i) pool.push(0, i);
  pool.pop(0);
  ASSERT_EQ(pool.size(0), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(pool.at(0, i), static_cast<int>(i) + 1);
}

TEST(QueuePool, FixedModeWrapsWithinCapacity) {
  // Fixed pools never reallocate; the ring must still wrap cleanly when
  // the head circles the full capacity many times.
  QueuePool<int> pool(2, 4, /*fixed=*/true);
  int next = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) pool.push(1, next + i);
    ASSERT_EQ(pool.size(1), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(pool.front(1), next + i);
      pool.pop(1);
    }
    next += 4;
  }
  EXPECT_TRUE(pool.empty(1));
  EXPECT_EQ(pool.capacity(1), 4u);
}

TEST(QueuePool, FixedModePushBeyondCapacityThrows) {
  // An overflow in fixed mode is a flow-control bug, not a resize: the
  // pool must fail loudly instead of silently doubling.
  QueuePool<int> pool(1, 4, /*fixed=*/true);
  for (int i = 0; i < 4; ++i) pool.push(0, i);
  EXPECT_THROW(pool.push(0, 99), std::logic_error);
  // The ring is unchanged after the rejected push.
  EXPECT_EQ(pool.size(0), 4u);
  EXPECT_EQ(pool.front(0), 0);
}

std::vector<std::uint32_t> candidates(ActiveSet& set) {
  std::vector<std::uint32_t> out;
  set.for_each_candidate([&](std::uint32_t a) { out.push_back(a); });
  return out;
}

TEST(ActiveSet, YieldsOccupiedInAscendingOrder) {
  // Ascending order is load-bearing: the stats accumulators are
  // order-sensitive, so the scan must visit ports exactly like the full
  // sweep the seed engine used.
  ActiveSet set(130);  // spans three 64-bit words
  for (std::uint32_t a : {129u, 0u, 64u, 63u, 5u, 128u}) set.mark_occupied(a);
  EXPECT_EQ(candidates(set),
            (std::vector<std::uint32_t>{0, 5, 63, 64, 128, 129}));
}

TEST(ActiveSet, BusyPortsAreSkippedUntilExpiry) {
  ActiveSet set(8);
  set.mark_occupied(2);
  set.mark_occupied(5);
  set.mark_busy(2, /*clear_at=*/10);
  set.expire(9);
  EXPECT_EQ(candidates(set), (std::vector<std::uint32_t>{5}));
  set.expire(10);
  EXPECT_EQ(candidates(set), (std::vector<std::uint32_t>{2, 5}));
}

TEST(ActiveSet, ClearOccupiedRemovesCandidate) {
  ActiveSet set(8);
  set.mark_occupied(1);
  set.mark_occupied(6);
  set.clear_occupied(6);
  EXPECT_EQ(candidates(set), (std::vector<std::uint32_t>{1}));
}

}  // namespace
}  // namespace ksw::sim
