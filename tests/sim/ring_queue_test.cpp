#include "sim/ring_queue.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <string>

namespace ksw::sim {
namespace {

TEST(RingQueue, StartsEmpty) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(RingQueue, FifoOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, GrowsAcrossWrapAround) {
  RingQueue<int> q;
  // Interleave pushes and pops so head wraps before growth.
  for (int i = 0; i < 3; ++i) q.push(i);
  q.pop();
  q.pop();
  for (int i = 3; i < 20; ++i) q.push(i);  // forces growth mid-ring
  for (int i = 2; i < 20; ++i) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.front(), i);
    q.pop();
  }
}

TEST(RingQueue, MatchesDequeUnderRandomWorkload) {
  RingQueue<int> q;
  std::deque<int> ref;
  std::mt19937 gen(5);
  int next = 0;
  for (int step = 0; step < 100000; ++step) {
    if (ref.empty() || gen() % 3 != 0) {
      q.push(next);
      ref.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(q.front(), ref.front());
      q.pop();
      ref.pop_front();
    }
    ASSERT_EQ(q.size(), ref.size());
  }
}

TEST(RingQueue, ClearResets) {
  RingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(42);
  EXPECT_EQ(q.front(), 42);
}

TEST(RingQueue, HoldsNonTrivialTypes) {
  RingQueue<std::string> q;
  q.push("alpha");
  q.push("beta");
  EXPECT_EQ(q.front(), "alpha");
  q.pop();
  EXPECT_EQ(q.front(), "beta");
}

}  // namespace
}  // namespace ksw::sim
