#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "sim/network.hpp"

namespace ksw::sim {
namespace {

// Follow a packet's full route through the address arithmetic.
std::uint32_t route(const Topology& topo, std::uint32_t src,
                    std::uint32_t dst) {
  std::uint32_t q = topo.entry_queue(src, dst);
  for (unsigned s = 0; s + 1 < topo.stages(); ++s)
    q = topo.next_queue(s, q, dst);
  return topo.exit_port(q);
}

class TopologyRouting
    : public ::testing::TestWithParam<std::tuple<TopologyKind, unsigned>> {};

TEST_P(TopologyRouting, EveryPairIsRoutedToItsDestination) {
  const auto [kind, k] = GetParam();
  const unsigned stages = k == 2 ? 4 : 3;
  const Topology topo(kind, k, stages);
  for (std::uint32_t src = 0; src < topo.ports(); ++src)
    for (std::uint32_t dst = 0; dst < topo.ports(); ++dst)
      ASSERT_EQ(route(topo, src, dst), dst) << "src=" << src
                                            << " dst=" << dst;
}

TEST_P(TopologyRouting, BanyanFanInProperty) {
  // Exactly k distinct stage-s queues feed any stage-(s+1) queue.
  const auto [kind, k] = GetParam();
  const Topology topo(kind, k, 3);
  for (unsigned s = 0; s + 1 < topo.stages(); ++s) {
    std::map<std::uint32_t, std::set<std::uint32_t>> feeders;
    for (std::uint32_t q = 0; q < topo.ports(); ++q)
      for (std::uint32_t dst = 0; dst < topo.ports(); ++dst)
        feeders[topo.next_queue(s, q, dst)].insert(q);
    for (const auto& [queue, sources] : feeders)
      EXPECT_EQ(sources.size(), k) << "stage " << s << " queue " << queue;
  }
}

TEST_P(TopologyRouting, FirstStageLoadIsUniformForUniformTraffic) {
  // Every stage-0 queue is the entry queue of exactly ports() (src, dst)
  // pairs under all-to-all traffic.
  const auto [kind, k] = GetParam();
  const Topology topo(kind, k, 3);
  std::map<std::uint32_t, unsigned> load;
  for (std::uint32_t src = 0; src < topo.ports(); ++src)
    for (std::uint32_t dst = 0; dst < topo.ports(); ++dst)
      ++load[topo.entry_queue(src, dst)];
  for (std::uint32_t q = 0; q < topo.ports(); ++q)
    EXPECT_EQ(load[q], topo.ports()) << "queue " << q;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TopologyRouting,
    ::testing::Combine(::testing::Values(TopologyKind::kButterfly,
                                         TopologyKind::kOmega),
                       ::testing::Values(2u, 3u, 4u)));

TEST(Topology, ShuffleRotatesDigits) {
  const Topology topo(TopologyKind::kOmega, 2, 4);
  // 0b0110 -> 0b1100 (left rotation).
  EXPECT_EQ(topo.shuffle(0b0110), 0b1100u);
  EXPECT_EQ(topo.shuffle(0b1000), 0b0001u);
  // Shuffle is a permutation: applying it n times is the identity.
  for (std::uint32_t x = 0; x < topo.ports(); ++x) {
    std::uint32_t y = x;
    for (unsigned i = 0; i < topo.stages(); ++i) y = topo.shuffle(y);
    EXPECT_EQ(y, x);
  }
}

TEST(Topology, Validation) {
  EXPECT_THROW(Topology(TopologyKind::kOmega, 1, 4), std::invalid_argument);
  EXPECT_THROW(Topology(TopologyKind::kOmega, 2, 0), std::invalid_argument);
  EXPECT_THROW(Topology(TopologyKind::kOmega, 4, 15), std::invalid_argument);
  EXPECT_EQ(Topology(TopologyKind::kButterfly, 2, 4).describe(),
            "butterfly(k=2, stages=4)");
}

TEST(Topology, OmegaNetworkMatchesButterflyStatistics) {
  // Isomorphic wirings: identical per-stage waiting statistics under
  // uniform traffic (up to Monte-Carlo noise with different addressing).
  NetworkConfig butterfly;
  butterfly.stages = 6;
  butterfly.warmup_cycles = 2'000;
  butterfly.measure_cycles = 40'000;
  NetworkConfig omega = butterfly;
  omega.topology = TopologyKind::kOmega;
  const auto a = run_network(butterfly);
  const auto b = run_network(omega);
  for (unsigned s = 0; s < butterfly.stages; ++s) {
    EXPECT_NEAR(a.stage_wait[s].mean(), b.stage_wait[s].mean(), 0.01)
        << "stage " << s;
    EXPECT_NEAR(a.stage_wait[s].variance(), b.stage_wait[s].variance(),
                0.02)
        << "stage " << s;
  }
}

TEST(Topology, OmegaFavoriteTrafficIsAlsoConflictFree) {
  // q = 1 (dst == src) must be waiting-free in the Omega wiring too.
  NetworkConfig cfg;
  cfg.topology = TopologyKind::kOmega;
  cfg.stages = 5;
  cfg.q = 1.0;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 5'000;
  const auto r = run_network(cfg);
  for (unsigned s = 0; s < cfg.stages; ++s)
    EXPECT_DOUBLE_EQ(r.stage_wait[s].max(), 0.0) << "stage " << s;
}

}  // namespace
}  // namespace ksw::sim
