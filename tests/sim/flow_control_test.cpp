// Flow-control semantics for finite-buffer networks: scheme parsing and
// validation, the equivalences that pin each scheme to an oracle
// (store-and-forward == cut-through under unit service; a deep buffer at
// low load == the infinite-queue engine, bit for bit), and the credit
// scheme's exhaustion/replenish behavior.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/network.hpp"

namespace ksw::sim {
namespace {

/// Moment-level bit-identity between two runs (the engine-equivalence
/// suite covers the full telemetry comparison; here we compare *different
/// configs* expected to simulate the same trajectory).
void expect_same_results(const NetworkResults& a, const NetworkResults& b) {
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  ASSERT_EQ(a.stage_wait.size(), b.stage_wait.size());
  for (std::size_t s = 0; s < a.stage_wait.size(); ++s) {
    SCOPED_TRACE("stage " + std::to_string(s));
    EXPECT_EQ(a.stage_wait[s].count(), b.stage_wait[s].count());
    EXPECT_EQ(a.stage_wait[s].mean(), b.stage_wait[s].mean());
    EXPECT_EQ(a.stage_wait[s].variance(), b.stage_wait[s].variance());
    EXPECT_EQ(a.stage_depth[s].mean(), b.stage_depth[s].mean());
  }
}

NetworkConfig base_config() {
  NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 4;
  cfg.p = 0.6;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 2'000;
  cfg.seed = 4242;
  return cfg;
}

TEST(FlowControl, NamesRoundTrip) {
  EXPECT_STREQ(to_string(FlowControl::kCutThrough), "vct");
  EXPECT_STREQ(to_string(FlowControl::kStoreAndForward), "saf");
  EXPECT_STREQ(to_string(FlowControl::kCredit), "credit");
  EXPECT_EQ(parse_flow_control("vct"), FlowControl::kCutThrough);
  EXPECT_EQ(parse_flow_control("saf"), FlowControl::kStoreAndForward);
  EXPECT_EQ(parse_flow_control("credit"), FlowControl::kCredit);
  EXPECT_THROW(parse_flow_control("wormhole"), std::invalid_argument);
  EXPECT_THROW(parse_flow_control(""), std::invalid_argument);
}

TEST(FlowControl, NonDefaultSchemeRequiresFiniteBuffers) {
  NetworkConfig cfg = base_config();
  cfg.flow = FlowControl::kStoreAndForward;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
  cfg.flow = FlowControl::kCredit;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
  cfg.buffer_capacity = 4;
  cfg.credit_latency = 0;
  EXPECT_THROW(run_network(cfg), std::invalid_argument);
}

TEST(FlowControl, StoreAndForwardMatchesCutThroughUnderUnitService) {
  // With det:1 service the downstream arrival stamp t + m == t + 1, so
  // SAF and VCT must simulate the identical trajectory.
  NetworkConfig vct = base_config();
  vct.buffer_capacity = 2;
  vct.p = 0.9;  // high load: admission actually rejects transfers
  NetworkConfig saf = vct;
  saf.flow = FlowControl::kStoreAndForward;
  expect_same_results(run_network(vct), run_network(saf));
}

TEST(FlowControl, StoreAndForwardDelaysMultiCycleService) {
  // With det:2 service SAF stamps downstream arrivals one cycle later
  // than VCT, so downstream service starts strictly later and fewer
  // packets complete in a fixed horizon at saturation.
  NetworkConfig vct = base_config();
  vct.buffer_capacity = 4;
  vct.p = 0.45;
  vct.service = ServiceSpec::deterministic(2);
  NetworkConfig saf = vct;
  saf.flow = FlowControl::kStoreAndForward;
  const NetworkResults rv = run_network(vct);
  const NetworkResults rs = run_network(saf);
  // Same injections (same RNG draws), different downstream timing.
  EXPECT_EQ(rv.packets_injected + rv.packets_dropped,
            rs.packets_injected + rs.packets_dropped);
  EXPECT_NE(rv.stage_wait.back().mean(), rs.stage_wait.back().mean());
}

TEST(FlowControl, DeepBufferMatchesInfiniteQueues) {
  // Occupancy checks consume no RNG, so a finite run whose buffers are
  // never full is the infinite-queue run, bit for bit — the oracle
  // property the reproduction book's deepest-depth gate relies on.
  NetworkConfig inf = base_config();
  inf.p = 0.5;
  NetworkConfig finite = inf;
  finite.buffer_capacity = 512;
  const NetworkResults a = run_network(inf);
  const NetworkResults b = run_network(finite);
  expect_same_results(a, b);
  EXPECT_EQ(b.packets_dropped, 0u);
}

TEST(FlowControl, AmpleCreditsAreInert) {
  // Credits bound occupancy only when they run out; with deep buffers the
  // credit scheme must reproduce the cut-through trajectory exactly.
  NetworkConfig vct = base_config();
  vct.p = 0.5;
  vct.buffer_capacity = 512;
  NetworkConfig credit = vct;
  credit.flow = FlowControl::kCredit;
  credit.credit_latency = 2;
  expect_same_results(run_network(vct), run_network(credit));
}

TEST(FlowControl, CreditExhaustionBlocksEarlierThanCutThrough) {
  // At equal (small) depth, credit flow control is strictly more
  // conservative than VCT: a consumed credit stays invisible for
  // credit_latency cycles after the downstream service starts, while
  // VCT sees the freed slot at the next attempt. Fewer packets make it
  // through the interior in a fixed horizon.
  NetworkConfig vct = base_config();
  vct.p = 0.9;
  vct.buffer_capacity = 1;
  NetworkConfig credit = vct;
  credit.flow = FlowControl::kCredit;
  credit.credit_latency = 4;
  const NetworkResults rv = run_network(vct);
  const NetworkResults rc = run_network(credit);
  EXPECT_LT(rc.packets_delivered, rv.packets_delivered);
}

TEST(FlowControl, CreditsReplenish) {
  // Replenishment sanity: despite exhaustion under pressure, credits
  // return and traffic keeps flowing — throughput is a substantial
  // fraction of offered load, not a trickle ending in deadlock.
  NetworkConfig cfg = base_config();
  cfg.p = 0.9;
  cfg.buffer_capacity = 1;
  cfg.flow = FlowControl::kCredit;
  cfg.credit_latency = 4;
  cfg.measure_cycles = 4'000;
  const NetworkResults r = run_network(cfg);
  EXPECT_GT(r.packets_delivered, 0u);
  // Every injected (non-dropped) measured packet eventually delivers or
  // is still in flight inside a 4-stage pipeline at horizon end.
  EXPECT_GE(r.packets_injected, r.packets_delivered);
  EXPECT_LE(r.packets_injected - r.packets_delivered,
            static_cast<std::uint64_t>(cfg.stages) * 16u * 2u +
                r.packets_injected / 10);
}

TEST(FlowControl, BlockedCyclesAreCountedPerStage) {
  // Head-of-line blocking shows up in the per-stage obs counters; under
  // kCredit the dedicated credit_stalls counter mirrors the blocked
  // tally (every denial is a missing credit).
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  NetworkConfig cfg = base_config();
  cfg.p = 0.9;
  cfg.buffer_capacity = 1;
  cfg.flow = FlowControl::kCredit;
  cfg.credit_latency = 4;
  cfg.obs.enabled = true;
  cfg.obs.stride = 16;
  const NetworkResults r = run_network(cfg);
  const auto& counters = r.metrics.counters();
  std::uint64_t blocked = 0;
  std::uint64_t stalls = 0;
  for (const auto& [name, counter] : counters) {
    if (name.find(".blocked") != std::string::npos)
      blocked += counter->value();
    if (name.find(".credit_stalls") != std::string::npos)
      stalls += counter->value();
  }
  EXPECT_GT(blocked, 0u);
  EXPECT_EQ(stalls, blocked);
}

TEST(FlowControl, CreditStallCounterAbsentOutsideCreditMode) {
  // The credit_stalls counter is only registered under kCredit, so every
  // pre-existing obs report stays byte-identical.
  NetworkConfig cfg = base_config();
  cfg.p = 0.9;
  cfg.buffer_capacity = 1;
  cfg.obs.enabled = true;
  cfg.obs.stride = 16;
  const NetworkResults r = run_network(cfg);
  for (const auto& [name, counter] : r.metrics.counters())
    EXPECT_EQ(name.find("credit_stalls"), std::string::npos) << name;
}

}  // namespace
}  // namespace ksw::sim
