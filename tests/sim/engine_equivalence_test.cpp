// The production engine (flat SoA queue pool + active-set scheduler) must
// be bit-identical to the seed engine kept as run_network_reference — not
// just statistically close. Both engines share the same RNG draw sequence
// and the same accumulator add order, so every derived quantity (Welford
// moments, histograms, covariances, telemetry) matches exactly for a fixed
// seed. Any divergence here means the hot-path rewrite changed semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/report.hpp"
#include "sim/network.hpp"
#include "simd/simd.hpp"

namespace ksw::sim {
namespace {

std::string stable_report(const NetworkResults& r) {
  obs::ReportOptions opts;
  opts.include_wall = false;  // wall-clock timers are the only legit diff
  return obs::registry_to_json(r.metrics, opts).to_string(2) + "\n" +
         obs::trace_to_json(r.convergence).to_string(2) + "\n";
}

void expect_bit_identical(const NetworkConfig& cfg) {
  const NetworkResults fast = run_network(cfg);
  const NetworkResults ref = run_network_reference(cfg);

  EXPECT_EQ(fast.packets_injected, ref.packets_injected);
  EXPECT_EQ(fast.packets_delivered, ref.packets_delivered);
  EXPECT_EQ(fast.packets_dropped, ref.packets_dropped);

  ASSERT_EQ(fast.stage_wait.size(), ref.stage_wait.size());
  for (std::size_t s = 0; s < fast.stage_wait.size(); ++s) {
    SCOPED_TRACE("stage " + std::to_string(s));
    EXPECT_EQ(fast.stage_wait[s].count(), ref.stage_wait[s].count());
    // Bit-identity, not tolerance: Welford updates happened in the same
    // order, so the doubles agree exactly.
    EXPECT_EQ(fast.stage_wait[s].mean(), ref.stage_wait[s].mean());
    EXPECT_EQ(fast.stage_wait[s].variance(), ref.stage_wait[s].variance());
    EXPECT_EQ(fast.stage_wait[s].skewness(), ref.stage_wait[s].skewness());
    EXPECT_EQ(fast.stage_wait[s].min(), ref.stage_wait[s].min());
    EXPECT_EQ(fast.stage_wait[s].max(), ref.stage_wait[s].max());
    EXPECT_EQ(fast.stage_depth[s].count(), ref.stage_depth[s].count());
    EXPECT_EQ(fast.stage_depth[s].mean(), ref.stage_depth[s].mean());
    EXPECT_EQ(fast.stage_depth[s].variance(),
              ref.stage_depth[s].variance());
  }

  ASSERT_EQ(fast.stage_hist.size(), ref.stage_hist.size());
  for (std::size_t s = 0; s < fast.stage_hist.size(); ++s) {
    SCOPED_TRACE("stage_hist " + std::to_string(s));
    EXPECT_EQ(fast.stage_hist[s].total(), ref.stage_hist[s].total());
    EXPECT_EQ(fast.stage_hist[s].max_value(), ref.stage_hist[s].max_value());
    for (std::int64_t v = 0; v <= ref.stage_hist[s].max_value(); ++v)
      EXPECT_EQ(fast.stage_hist[s].count(v), ref.stage_hist[s].count(v));
  }

  ASSERT_EQ(fast.total_wait.size(), ref.total_wait.size());
  for (std::size_t c = 0; c < fast.total_wait.size(); ++c) {
    SCOPED_TRACE("checkpoint " + std::to_string(c));
    EXPECT_EQ(fast.total_wait[c].total(), ref.total_wait[c].total());
    EXPECT_EQ(fast.total_wait[c].max_value(), ref.total_wait[c].max_value());
    for (std::int64_t v = 0; v <= ref.total_wait[c].max_value(); ++v)
      EXPECT_EQ(fast.total_wait[c].count(v), ref.total_wait[c].count(v));
  }

  ASSERT_EQ(fast.stage_covariance.has_value(),
            ref.stage_covariance.has_value());
  if (ref.stage_covariance) {
    const auto& f = *fast.stage_covariance;
    const auto& r = *ref.stage_covariance;
    ASSERT_EQ(f.dims(), r.dims());
    EXPECT_EQ(f.count(), r.count());
    for (std::size_t i = 0; i < r.dims(); ++i) {
      EXPECT_EQ(f.mean(i), r.mean(i));
      for (std::size_t j = i; j < r.dims(); ++j)
        EXPECT_EQ(f.covariance(i, j), r.covariance(i, j));
    }
  }

  // Telemetry and convergence trace, serialized without wall-clock noise.
  EXPECT_EQ(stable_report(fast), stable_report(ref));
}

NetworkConfig base_config() {
  NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 4;
  cfg.p = 0.6;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 2'000;
  cfg.seed = 1234;
  cfg.track_stage_histograms = true;
  cfg.total_checkpoints = {2, 4};
  cfg.obs.enabled = true;
  cfg.obs.stride = 16;
  cfg.obs.trace_points = 6;
  return cfg;
}

TEST(EngineEquivalence, UniformTraffic) { expect_bit_identical(base_config()); }

TEST(EngineEquivalence, UniformOmega) {
  NetworkConfig cfg = base_config();
  cfg.topology = TopologyKind::kOmega;
  cfg.seed = 77;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, NonPowerOfTwoSwitchDegree) {
  // k = 3 exercises the div/mod routing path instead of the shift/mask
  // fast path.
  NetworkConfig cfg = base_config();
  cfg.k = 3;
  cfg.stages = 3;
  cfg.total_checkpoints = {1, 3};
  cfg.seed = 5;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, HotspotTraffic) {
  NetworkConfig cfg = base_config();
  cfg.hotspot = 0.08;
  cfg.hotspot_target = 13;  // valid: < 2^4 ports
  cfg.q = 0.1;
  cfg.seed = 42;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, BulkArrivalsMultiCycleService) {
  // bulk > 1 plus a multi-size service distribution keeps queues deep and
  // services long, exercising the busy-expiry heap and ring growth.
  NetworkConfig cfg = base_config();
  cfg.bulk = 3;
  cfg.p = 0.15;
  cfg.service = ServiceSpec::multi_size({{2, 0.7}, {5, 0.3}});
  cfg.measure_cycles = 1'500;
  cfg.seed = 9;
  cfg.track_correlations = true;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, FiniteBuffersWithDrops) {
  // Small buffers at high load: injections get dropped and interior
  // transfers block, so the blocked/drop bookkeeping must match too.
  NetworkConfig cfg = base_config();
  cfg.buffer_capacity = 2;
  cfg.p = 0.9;
  cfg.service = ServiceSpec::deterministic(2);
  cfg.seed = 3;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, StoreAndForwardFlowControl) {
  // SAF stamps downstream arrivals at t + m, a different eligibility path
  // than cut-through; multi-cycle service makes the difference live.
  NetworkConfig cfg = base_config();
  cfg.buffer_capacity = 3;
  cfg.p = 0.45;
  cfg.service = ServiceSpec::deterministic(2);
  cfg.flow = FlowControl::kStoreAndForward;
  cfg.seed = 11;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, CreditFlowControl) {
  // Shallow buffers under pressure: credits exhaust, the latency ring
  // carries in-flight returns, and credit_stalls telemetry is live.
  NetworkConfig cfg = base_config();
  cfg.buffer_capacity = 1;
  cfg.p = 0.85;
  cfg.flow = FlowControl::kCredit;
  cfg.credit_latency = 3;
  cfg.seed = 17;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, CorrelationTracking) {
  NetworkConfig cfg = base_config();
  cfg.track_correlations = true;
  cfg.p = 0.75;
  cfg.seed = 21;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, GeometricServiceNoObs) {
  // Telemetry off: the sample_busy-gated path must not perturb results.
  NetworkConfig cfg;
  cfg.k = 4;
  cfg.stages = 3;
  cfg.p = 0.2;
  cfg.service = ServiceSpec::geometric(0.6);
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1'500;
  cfg.seed = 64;
  cfg.total_checkpoints = {1, 3};
  expect_bit_identical(cfg);
}

// ---- Fast-engine coverage --------------------------------------------
// Philox + unit service + infinite queues + no telemetry dispatches to the
// branch-specialized engine inside run_network (16-byte packets, two-pass
// service walk). base_config() turns obs on and so never reaches it; the
// configs below do, and run_network_reference remains the oracle.

/// A config that qualifies for the fast engine: unit service, infinite
/// queues, telemetry off.
NetworkConfig fast_config() {
  NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 4;
  cfg.p = 0.6;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 2'000;
  cfg.seed = 1234;
  cfg.total_checkpoints = {2, 4};
  return cfg;
}

TEST(EngineEquivalence, FastEngineUniformTraffic) {
  expect_bit_identical(fast_config());
}

TEST(EngineEquivalence, FastEngineMixedTrafficWideSwitch) {
  NetworkConfig cfg = fast_config();
  cfg.k = 4;
  cfg.stages = 3;
  cfg.p = 0.8;
  cfg.q = 0.1;
  cfg.hotspot = 0.05;
  cfg.hotspot_target = 60;  // valid: < 4^3 ports
  cfg.total_checkpoints = {1, 3};
  cfg.seed = 99;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, FastEngineBulkArrivals) {
  NetworkConfig cfg = fast_config();
  cfg.bulk = 2;
  cfg.p = 0.35;
  cfg.seed = 31;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, FastEngineForcedScalarMatchesWidestSimd) {
  // The dispatch level must never change a single bit: run the identical
  // config once per level and compare through the reference oracle. This
  // is the in-process version of the CI forced-scalar (KSW_SIMD=off) job.
  const NetworkConfig cfg = fast_config();
  NetworkResults scalar, widest;
  {
    simd::ScopedForceLevel force(simd::Level::kScalar);
    scalar = run_network(cfg);
    expect_bit_identical(cfg);
  }
  {
    simd::ScopedForceLevel force(simd::Level::kAvx2);  // clamps if absent
    widest = run_network(cfg);
  }
  EXPECT_EQ(scalar.packets_delivered, widest.packets_delivered);
  ASSERT_EQ(scalar.stage_wait.size(), widest.stage_wait.size());
  for (std::size_t s = 0; s < scalar.stage_wait.size(); ++s) {
    EXPECT_EQ(scalar.stage_wait[s].count(), widest.stage_wait[s].count());
    EXPECT_EQ(scalar.stage_wait[s].mean(), widest.stage_wait[s].mean());
    EXPECT_EQ(scalar.stage_wait[s].variance(),
              widest.stage_wait[s].variance());
  }
}

TEST(EngineEquivalence, XoshiroStreamStillSupported) {
  // The historic sequential RNG is kept for baseline comparison; both
  // engines must agree on it (and it must not reach the fast engine,
  // whose injection batching assumes counter addressing).
  NetworkConfig cfg = base_config();
  cfg.rng = RngKind::kXoshiro;
  cfg.seed = 2024;
  expect_bit_identical(cfg);
}

TEST(EngineEquivalence, XoshiroNoObsUnitService) {
  NetworkConfig cfg = fast_config();
  cfg.rng = RngKind::kXoshiro;
  cfg.seed = 7;
  expect_bit_identical(cfg);
}

}  // namespace
}  // namespace ksw::sim
