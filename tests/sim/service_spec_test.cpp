#include "sim/service_spec.hpp"

#include <gtest/gtest.h>

#include "rng/xoshiro.hpp"
#include "stats/accumulator.hpp"

namespace ksw::sim {
namespace {

TEST(ServiceSpec, DeterministicSamplesConstant) {
  const auto spec = ServiceSpec::deterministic(4);
  rng::Xoshiro256 gen(1);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(spec.sample(gen), 4u);
  EXPECT_DOUBLE_EQ(spec.mean(), 4.0);
  EXPECT_FALSE(spec.is_unit());
  EXPECT_TRUE(ServiceSpec::deterministic(1).is_unit());
  EXPECT_THROW(ServiceSpec::deterministic(0), std::invalid_argument);
}

TEST(ServiceSpec, MultiSizeFrequenciesMatch) {
  const auto spec = ServiceSpec::multi_size({{4, 0.25}, {8, 0.75}});
  EXPECT_DOUBLE_EQ(spec.mean(), 7.0);
  rng::Xoshiro256 gen(2);
  int fours = 0, eights = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = spec.sample(gen);
    if (v == 4)
      ++fours;
    else if (v == 8)
      ++eights;
    else
      FAIL() << "unexpected size " << v;
  }
  EXPECT_NEAR(static_cast<double>(fours) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(eights) / n, 0.75, 0.01);
}

TEST(ServiceSpec, MultiSizeValidates) {
  EXPECT_THROW(ServiceSpec::multi_size({{4, 0.5}, {8, 0.6}}),
               std::invalid_argument);
}

TEST(ServiceSpec, GeometricMomentsMatch) {
  const auto spec = ServiceSpec::geometric(0.25);
  EXPECT_DOUBLE_EQ(spec.mean(), 4.0);
  rng::Xoshiro256 gen(3);
  stats::Accumulator acc;
  for (int i = 0; i < 200000; ++i)
    acc.add(static_cast<double>(spec.sample(gen)));
  EXPECT_NEAR(acc.mean(), 4.0, 0.05);
  EXPECT_NEAR(acc.variance(), 0.75 / (0.25 * 0.25), 0.4);
  EXPECT_THROW(ServiceSpec::geometric(0.0), std::invalid_argument);
}

TEST(ServiceSpec, ToModelRoundTripsMoments) {
  const auto det = ServiceSpec::deterministic(3).to_model();
  EXPECT_DOUBLE_EQ(det->mean_service(), 3.0);
  const auto multi =
      ServiceSpec::multi_size({{2, 0.5}, {6, 0.5}}).to_model();
  EXPECT_DOUBLE_EQ(multi->mean_service(), 4.0);
  const auto geo = ServiceSpec::geometric(0.5).to_model();
  EXPECT_DOUBLE_EQ(geo->mean_service(), 2.0);
}

}  // namespace
}  // namespace ksw::sim
