#include "sim/replicate.hpp"

#include <gtest/gtest.h>

namespace ksw::sim {
namespace {

NetworkConfig tiny_network() {
  NetworkConfig cfg;
  cfg.stages = 4;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 4'000;
  cfg.seed = 3;
  return cfg;
}

TEST(ReplicateSeed, DistinctPerReplicate) {
  const auto s0 = replicate_seed(42, 0);
  const auto s1 = replicate_seed(42, 1);
  const auto s2 = replicate_seed(43, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, s2);
  // Deterministic.
  EXPECT_EQ(replicate_seed(42, 0), s0);
}

TEST(ReplicateNetwork, IdenticalAcrossThreadCounts) {
  const NetworkConfig cfg = tiny_network();
  par::ThreadPool one(1);
  par::ThreadPool many(8);
  const auto a = replicate_network(cfg, 6, one);
  const auto b = replicate_network(cfg, 6, many);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  for (unsigned s = 0; s < cfg.stages; ++s) {
    EXPECT_DOUBLE_EQ(a.stage_wait[s].mean(), b.stage_wait[s].mean());
    EXPECT_DOUBLE_EQ(a.stage_wait[s].variance(), b.stage_wait[s].variance());
  }
}

TEST(ReplicateNetwork, MergesAllReplicates) {
  const NetworkConfig cfg = tiny_network();
  par::ThreadPool pool(4);
  const auto single = run_network(cfg);
  const auto merged = replicate_network(cfg, 4, pool);
  // Four replicates carry roughly four times the packets of one run.
  EXPECT_GT(merged.packets_injected, 3 * single.packets_injected);
  EXPECT_GT(merged.stage_wait[0].count(), 3 * single.stage_wait[0].count());
}

TEST(ReplicateNetwork, TightensEstimate) {
  NetworkConfig cfg = tiny_network();
  cfg.measure_cycles = 2'000;
  par::ThreadPool pool(4);
  const auto merged = replicate_network(cfg, 8, pool);
  EXPECT_NEAR(merged.stage_wait[0].mean(), 0.25, 0.01);
}

TEST(ReplicateFirstStage, IdenticalAcrossThreadCounts) {
  FirstStageConfig cfg;
  cfg.measure_cycles = 5'000;
  cfg.warmup_cycles = 500;
  par::ThreadPool one(1);
  par::ThreadPool many(6);
  const auto a = replicate_first_stage(cfg, 5, one);
  const auto b = replicate_first_stage(cfg, 5, many);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.waiting.mean(), b.waiting.mean());
}

TEST(ReplicateNetworkMeans, ProducesPerReplicateMeans) {
  const NetworkConfig cfg = tiny_network();
  par::ThreadPool pool(4);
  const auto means = replicate_network_means(cfg, 6, pool, 0);
  ASSERT_EQ(means.size(), 6u);
  for (double m : means) {
    EXPECT_GT(m, 0.1);
    EXPECT_LT(m, 0.4);
  }
  // Replicates differ (independent streams).
  EXPECT_NE(means[0], means[1]);
}

TEST(Replicate, RejectsZeroReplicates) {
  par::ThreadPool pool(2);
  EXPECT_THROW(replicate_network(tiny_network(), 0, pool),
               std::invalid_argument);
  FirstStageConfig fcfg;
  EXPECT_THROW(replicate_first_stage(fcfg, 0, pool), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::sim
