// Shard routing: the fleet invariant is "same canonical cache key ->
// same worker", which is what makes per-shard caches as effective as one
// shared cache and fleet responses bit-identical to single-process serve.
#include "fleet/routing.hpp"

#include <gtest/gtest.h>

#include "serve/query.hpp"

namespace ksw::fleet {
namespace {

serve::Query parse_query(const std::string& line) {
  const serve::Request req = serve::Request::parse(line);
  EXPECT_TRUE(req.valid()) << req.error_message;
  return req.query;
}

TEST(ShardHash, EquivalentRequestsHashIdentically) {
  // Key order, whitespace, explicit defaults, and request-envelope
  // fields (id, deadline) must not affect the shard: the hash is over
  // the canonical query, not the raw line.
  const auto a = parse_query(
      R"({"kernel":"first_stage","params":{"k":2,"s":2,"p":0.5}})");
  const auto b = parse_query(
      R"({"id":42,"params":{"p":0.5,"s":2,"k":2},"kernel":"first_stage"})");
  const auto c = parse_query(
      R"({"kernel":"first_stage","deadline_ms":500,)"
      R"("params":{"k":2,"s":2,"p":0.5,"bulk":1,"q":0}})");
  EXPECT_EQ(shard_hash(a), shard_hash(b));
  EXPECT_EQ(shard_hash(a), shard_hash(c));
}

TEST(ShardHash, DifferentQueriesHashDifferently) {
  const auto a = parse_query(
      R"({"kernel":"first_stage","params":{"k":2,"s":2,"p":0.5}})");
  const auto b = parse_query(
      R"({"kernel":"first_stage","params":{"k":2,"s":2,"p":0.25}})");
  const auto c = parse_query(
      R"({"kernel":"later_stages","params":{"k":2,"p":0.5}})");
  EXPECT_NE(shard_hash(a), shard_hash(b));
  EXPECT_NE(shard_hash(a), shard_hash(c));
}

TEST(Route, IsDeterministicAndInRange) {
  for (std::uint64_t h : {0ull, 1ull, 12345ull, ~0ull}) {
    for (std::size_t n : {1u, 2u, 7u, 8u}) {
      const std::size_t w = route(h, n);
      EXPECT_LT(w, n);
      EXPECT_EQ(w, route(h, n));  // stable
    }
  }
}

TEST(RouteAlive, PrefersPrimaryThenScansUpward) {
  const std::vector<bool> all{true, true, true, true};
  for (std::uint64_t h = 0; h < 16; ++h)
    EXPECT_EQ(route_alive(h, all), route(h, 4));

  // Primary dead: the next live index (wrapping) takes the shard.
  std::vector<bool> alive{true, false, true, true};
  EXPECT_EQ(route_alive(1, alive), 2);  // 1 is dead -> 2
  alive = {false, false, false, true};
  EXPECT_EQ(route_alive(0, alive), 3);
  EXPECT_EQ(route_alive(3, alive), 3);
}

TEST(RouteAlive, AllDeadReturnsSize) {
  const std::vector<bool> none{false, false, false};
  EXPECT_EQ(route_alive(7, none), 3u);
}

}  // namespace
}  // namespace ksw::fleet
