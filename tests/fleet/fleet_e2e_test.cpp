// End-to-end fleet tests: spawn the real `kswsim fleet` binary (path
// baked in via KSW_KSWSIM_BIN), speak ksw.query/v1 over TCP, and pin the
// contracts docs/OPERATIONS.md promises operators:
//   - fleet responses are byte-identical to single-process serve,
//   - a killed worker is restarted and the fleet keeps answering,
//   - a full queue sheds in-band with error.kind "overload",
//   - responses come back in per-connection request order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "par/cancel.hpp"
#include "serve/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Drives one `kswsim fleet` child process: spawns it with stderr on a
/// pipe, parses the startup banner for the bound port and worker pids,
/// and SIGTERMs it on teardown.
class FleetProc {
 public:
  void start(const std::vector<std::string>& extra_args) {
    int errpipe[2];
    ASSERT_EQ(::pipe(errpipe), 0);
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::close(errpipe[0]);
      ::dup2(errpipe[1], STDERR_FILENO);
      ::close(errpipe[1]);
      std::vector<std::string> args{KSW_KSWSIM_BIN, "fleet",
                                    "--tcp=127.0.0.1:0"};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(KSW_KSWSIM_BIN, argv.data());
      ::_exit(127);
    }
    ::close(errpipe[1]);
    err_fd_ = errpipe[0];
    const int flags = ::fcntl(err_fd_, F_GETFL, 0);
    ::fcntl(err_fd_, F_SETFL, flags | O_NONBLOCK);
    ASSERT_TRUE(wait_for_banner("fleet: listening on 127.0.0.1:"))
        << "fleet did not come up; stderr so far:\n"
        << err_buf_;
    const auto pos = err_buf_.rfind("fleet: listening on 127.0.0.1:");
    port_ = std::stoi(err_buf_.substr(pos + 30));
    parse_worker_pids();
  }

  ~FleetProc() { stop(); }

  /// SIGTERM the fleet and reap it; returns the exit code (or -signal).
  int stop() {
    if (pid_ <= 0) return last_status_;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    if (err_fd_ >= 0) {
      drain_stderr();
      ::close(err_fd_);
      err_fd_ = -1;
    }
    last_status_ = WIFEXITED(status)   ? WEXITSTATUS(status)
                   : WIFSIGNALED(status) ? -WTERMSIG(status)
                                         : -1;
    return last_status_;
  }

  /// Blocking TCP connect to the fleet's front door.
  int connect_client() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0)
        << std::strerror(errno);
    return fd;
  }

  /// Wait (bounded) until `needle` appears in the accumulated stderr.
  bool wait_for_banner(const std::string& needle,
                       std::chrono::milliseconds budget =
                           std::chrono::milliseconds(20000)) {
    const auto deadline = Clock::now() + budget;
    while (Clock::now() < deadline) {
      drain_stderr();
      if (err_buf_.find(needle) != std::string::npos) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  void drain_stderr() {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::read(err_fd_, chunk, sizeof chunk);
      if (n <= 0) return;
      err_buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void parse_worker_pids() {
    worker_pids_.clear();
    std::istringstream in(err_buf_);
    std::string line;
    while (std::getline(in, line)) {
      // "fleet: worker I pid P socket ..." — keep the *latest* pid per
      // index so restarts update the table.
      int index = 0;
      pid_t pid = 0;
      if (std::sscanf(line.c_str(), "fleet: worker %d pid %d", &index,
                      &pid) == 2) {
        if (static_cast<std::size_t>(index) >= worker_pids_.size())
          worker_pids_.resize(static_cast<std::size_t>(index) + 1, 0);
        worker_pids_[static_cast<std::size_t>(index)] = pid;
      }
    }
  }

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const std::vector<pid_t>& worker_pids() const {
    return worker_pids_;
  }
  [[nodiscard]] const std::string& stderr_text() const { return err_buf_; }

 private:
  pid_t pid_ = -1;
  int err_fd_ = -1;
  int port_ = 0;
  int last_status_ = -1;
  std::string err_buf_;
  std::vector<pid_t> worker_pids_;
};

void send_all(int fd, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    ASSERT_GT(n, 0) << std::strerror(errno);
    done += static_cast<std::size_t>(n);
  }
}

/// Read exactly `count` newline-terminated lines (bounded wait).
std::vector<std::string> read_lines(int fd, std::size_t count,
                                    std::chrono::milliseconds budget =
                                        std::chrono::milliseconds(30000)) {
  std::vector<std::string> lines;
  std::string buf;
  const auto deadline = Clock::now() + budget;
  while (lines.size() < count && Clock::now() < deadline) {
    struct pollfd pfd {
      fd, POLLIN, 0
    };
    if (::poll(&pfd, 1, 100) <= 0) continue;
    char chunk[65536];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      lines.push_back(buf.substr(0, nl));
      buf.erase(0, nl + 1);
    }
  }
  return lines;
}

std::vector<std::string> request_corpus() {
  return {
      R"({"id":0,"kernel":"first_stage","params":{"k":2,"s":2,"p":0.5}})",
      R"({"id":1,"kernel":"first_stage","params":{"k":4,"s":1,"p":0.9}})",
      R"({"id":2,"kernel":"closed_form","params":{"k":2,"p":0.5,"family":"uniform"}})",
      R"({"id":3,"kernel":"later_stages","params":{"k":2,"p":0.5,"stage":6}})",
      R"({"id":4,"kernel":"total_delay","params":{"k":2,"p":0.5,"stages":4}})",
      R"({"id":5,"kernel":"first_stage","params":{"k":2,"s":2,"p":0.5}})",
      R"({"id":6,"kernel":"nope"})",
      R"(this is not json)",
      R"({"id":8,"kernel":"first_stage","params":{"k":2,"s":2,"p":1.5}})",
      R"({"id":9,"kernel":"closed_form","params":{"k":2,"p":0.5,"family":"uniform"}})",
  };
}

TEST(FleetE2E, ByteIdenticalToSingleProcessServe) {
  const auto corpus = request_corpus();

  // Reference: the exact same lines through an in-process single serve.
  std::string joined;
  for (const auto& line : corpus) joined += line + "\n";
  std::istringstream in(joined);
  std::ostringstream ref_out;
  ksw::serve::Service service(ksw::serve::ServeOptions{});
  service.run(in, ref_out, nullptr);
  std::vector<std::string> expected;
  {
    std::istringstream ref(ref_out.str());
    std::string line;
    while (std::getline(ref, line)) expected.push_back(line);
  }
  ASSERT_EQ(expected.size(), corpus.size());

  FleetProc fleet;
  fleet.start({"--workers=3"});
  const int fd = fleet.connect_client();
  send_all(fd, joined);
  const auto got = read_lines(fd, corpus.size());
  ::close(fd);
  ASSERT_EQ(got.size(), corpus.size()) << fleet.stderr_text();
  for (std::size_t i = 0; i < corpus.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "request " << i << ": " << corpus[i];
  EXPECT_EQ(fleet.stop(), 130);  // SIGTERM drains and exits interrupted
}

TEST(FleetE2E, ConcurrentClientsEachGetOrderedResponses) {
  FleetProc fleet;
  fleet.start({"--workers=2"});

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, &fleet, &failures] {
      const int fd = fleet.connect_client();
      std::string batch;
      for (int i = 0; i < kPerClient; ++i) {
        const int id = c * 1000 + i;
        batch += R"({"id":)" + std::to_string(id) +
                 R"(,"kernel":"first_stage","params":{"k":2,"s":2,"p":0.)" +
                 std::to_string(10 + (id % 80)) + "}}\n";
      }
      send_all(fd, batch);
      const auto lines = read_lines(fd, static_cast<std::size_t>(kPerClient));
      ::close(fd);
      if (lines.size() != static_cast<std::size_t>(kPerClient)) {
        failures[c] = "client got " + std::to_string(lines.size()) +
                      " of " + std::to_string(kPerClient) + " responses";
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const std::string want = R"("id":)" + std::to_string(c * 1000 + i);
        if (lines[static_cast<std::size_t>(i)].find(want) ==
            std::string::npos) {
          failures[c] = "response " + std::to_string(i) +
                        " out of order: " + lines[static_cast<std::size_t>(i)];
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
}

TEST(FleetE2E, KilledWorkerRestartsAndFleetKeepsAnswering) {
  FleetProc fleet;
  fleet.start({"--workers=2"});
  ASSERT_EQ(fleet.worker_pids().size(), 2u);

  const int fd = fleet.connect_client();
  // Warm both shards so we know the fleet answers before the kill.
  std::string batch;
  for (int i = 0; i < 8; ++i)
    batch += R"({"id":)" + std::to_string(i) +
             R"(,"kernel":"first_stage","params":{"k":2,"s":2,"p":0.)" +
             std::to_string(11 + i) + "}}\n";
  send_all(fd, batch);
  ASSERT_EQ(read_lines(fd, 8).size(), 8u);

  const pid_t victim = fleet.worker_pids()[0];
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  ASSERT_TRUE(fleet.wait_for_banner("fleet: worker 0 exited; restarting"))
      << fleet.stderr_text();

  // The fleet must keep answering the same corpus correctly. A request
  // can race the restart and answer kind "internal" (retryable); retry
  // once and require clean answers.
  for (int attempt = 0; attempt < 2; ++attempt) {
    send_all(fd, batch);
    const auto lines = read_lines(fd, 8);
    ASSERT_EQ(lines.size(), 8u) << fleet.stderr_text();
    bool all_ok = true;
    for (const auto& line : lines) {
      EXPECT_TRUE(line.find(R"("ok":true)") != std::string::npos ||
                  line.find(R"("kind":"internal")") != std::string::npos)
          << line;
      if (line.find(R"("ok":true)") == std::string::npos) all_ok = false;
    }
    if (all_ok) break;
    ASSERT_LT(attempt, 1) << "fleet still failing after restart";
  }
  ::close(fd);

  fleet.drain_stderr();
  fleet.parse_worker_pids();
  EXPECT_NE(fleet.worker_pids()[0], victim);  // a fresh pid took shard 0
  EXPECT_EQ(fleet.stop(), 130);
}

TEST(FleetE2E, FullQueueShedsWithOverloadKind) {
  FleetProc fleet;
  fleet.start({"--workers=1", "--queue-depth=1"});

  const int fd = fleet.connect_client();
  // One TCP burst of many distinct requests: the supervisor ingests the
  // whole burst before it can drain worker responses, so with depth 1
  // nearly all of them must shed. Every request still gets exactly one
  // in-order response — shed-not-collapse, the brownout contract.
  constexpr int kBurst = 200;
  std::string batch;
  for (int i = 0; i < kBurst; ++i)
    batch += R"({"id":)" + std::to_string(i) +
             R"(,"kernel":"later_stages","params":{"k":2,"p":0.)" +
             std::to_string(100 + i) + R"(,"stage":8}})" + "\n";
  send_all(fd, batch);
  const auto lines = read_lines(fd, static_cast<std::size_t>(kBurst));
  ::close(fd);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBurst))
      << fleet.stderr_text();

  int overload = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto& line = lines[static_cast<std::size_t>(i)];
    // In-order delivery even under shedding.
    EXPECT_NE(line.find(R"("id":)" + std::to_string(i)), std::string::npos)
        << line;
    if (line.find(R"("kind":"overload")") != std::string::npos) overload++;
  }
  EXPECT_GT(overload, 0) << "queue depth 1 never shed a 200-request burst";
  EXPECT_LT(overload, kBurst) << "every request shed; none served";
  EXPECT_EQ(fleet.stop(), 130);
}

}  // namespace
