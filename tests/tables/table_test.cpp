#include "tables/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ksw::tables {
namespace {

TEST(FormatNumber, FixedPrecision) {
  EXPECT_EQ(format_number(0.25, 4), "0.2500");
  EXPECT_EQ(format_number(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(format_number(-1.5, 1), "-1.5");
}

TEST(Table, RendersHeadersAndRows) {
  Table t("Demo table", {"row", "a", "b"});
  t.begin_row("first").add_number(0.25).add_number(1.5, 2);
  t.begin_row("second").add_cell("x").add_blank();
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo table"), std::string::npos);
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_NE(out.find("0.2500"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("| row"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t("T", {"label", "value"});
  t.begin_row("x").add_number(1.0);
  t.begin_row("longer-label").add_number(22.5);
  std::ostringstream os;
  t.print(os);
  // All data lines share the same width.
  std::istringstream is(os.str());
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] != '|') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_GT(width, 0u);
}

TEST(Table, ShortRowsPadWithEmptyCells) {
  Table t("T", {"label", "a", "b"});
  t.begin_row("only-label");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-label"), std::string::npos);
}

TEST(Table, CellWithoutRowStartsOne) {
  Table t("T", {"a"});
  t.add_cell("standalone");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("standalone"), std::string::npos);
}

}  // namespace
}  // namespace ksw::tables
