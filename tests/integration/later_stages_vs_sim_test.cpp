// Integration: Section IV's later-stage estimates against the multistage
// network simulator, over the paper's parameter grids.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/later_stages.hpp"
#include "sim/network.hpp"

namespace ksw {
namespace {

sim::NetworkConfig network_for(const core::NetworkTrafficSpec& spec,
                               unsigned stages, std::int64_t cycles) {
  sim::NetworkConfig cfg;
  cfg.k = spec.k;
  cfg.stages = stages;
  cfg.p = spec.p;
  cfg.bulk = spec.bulk;
  cfg.q = spec.q;
  cfg.warmup_cycles = cycles / 10;
  cfg.measure_cycles = cycles;
  cfg.seed = 17;
  return cfg;
}

class RhoSweep : public ::testing::TestWithParam<double> {};

TEST_P(RhoSweep, DeepStageMatchesLimitEstimate) {
  const double rho = GetParam();
  core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = rho;
  const core::LaterStages ls(spec);
  const auto r = sim::run_network(network_for(spec, 8, 60'000));
  const double sim_limit = 0.5 * (r.stage_wait[6].mean() +
                                  r.stage_wait[7].mean());
  // Paper: approximation "slightly low for p small and slightly high for
  // p large"; a 6% relative + small absolute band covers its error.
  EXPECT_NEAR(ls.mean_limit(), sim_limit, 0.06 * sim_limit + 0.01)
      << "rho=" << rho;
  const double sim_var = 0.5 * (r.stage_wait[6].variance() +
                                r.stage_wait[7].variance());
  EXPECT_NEAR(ls.variance_limit(), sim_var, 0.10 * sim_var + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Grid, RhoSweep,
                         ::testing::Values(0.2, 0.4, 0.5, 0.6, 0.8));

class SwitchSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SwitchSweep, DeepStageMatchesLimitEstimate) {
  const unsigned k = GetParam();
  core::NetworkTrafficSpec spec;
  spec.k = k;
  spec.p = 0.5;
  const core::LaterStages ls(spec);
  const unsigned stages = k == 2 ? 8 : (k == 4 ? 5 : 4);
  const auto r = sim::run_network(network_for(spec, stages, 40'000));
  const double sim_limit = r.stage_wait[stages - 1].mean();
  EXPECT_NEAR(ls.mean_limit(), sim_limit, 0.05 * sim_limit + 0.01)
      << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Grid, SwitchSweep, ::testing::Values(2u, 4u, 8u));

class MessageSizeSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MessageSizeSweep, InteriorStagesMatchEq15Eq16) {
  const unsigned m = GetParam();
  core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5 / static_cast<double>(m);
  spec.service = std::make_shared<core::DeterministicService>(m);
  const core::LaterStages ls(spec);

  sim::NetworkConfig cfg = network_for(spec, 8, 60'000);
  cfg.service = sim::ServiceSpec::deterministic(m);
  const auto r = sim::run_network(cfg);
  const double sim_limit = 0.5 * (r.stage_wait[6].mean() +
                                  r.stage_wait[7].mean());
  // Paper Table III: eq. 15 runs ~25% low at m = 2 and converges for
  // larger m; mirror that asymmetric band.
  const double rel = m == 2 ? 0.30 : 0.10;
  EXPECT_NEAR(ls.mean_limit(), sim_limit, rel * sim_limit) << "m=" << m;
  const double sim_var = 0.5 * (r.stage_wait[6].variance() +
                                r.stage_wait[7].variance());
  EXPECT_NEAR(ls.variance_limit(), sim_var, rel * sim_var) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Grid, MessageSizeSweep,
                         ::testing::Values(2u, 4u, 8u));

TEST(BulkIntegration, TrainApproximationTracksSimulation) {
  // No paper formula exists for bulk traffic past the first stage; our
  // train-equivalence heuristic (limit = eq. 15 at m = b) runs 15-25%
  // high, comparable to eq. 15's own error at small m.
  for (unsigned b : {2u, 4u}) {
    core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = 0.5 / static_cast<double>(b);
    spec.bulk = b;
    const core::LaterStages ls(spec);
    const auto r = sim::run_network(network_for(spec, 8, 50'000));
    EXPECT_NEAR(r.stage_wait[0].mean(), ls.mean_first_stage(),
                0.04 * ls.mean_first_stage());
    const double deep = 0.5 * (r.stage_wait[6].mean() +
                               r.stage_wait[7].mean());
    EXPECT_GT(ls.mean_limit(), deep * 0.95) << "b=" << b;
    EXPECT_LT(ls.mean_limit(), deep * 1.35) << "b=" << b;
  }
}

TEST(MultiSizeIntegration, TableIVOperatingPoint) {
  // m1 = 4, m2 = 8, equal probability, rho = 0.5, k = 2.
  core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5 / 6.0;
  spec.service = std::make_shared<core::MultiSizeService>(
      std::vector<core::MultiSizeService::Size>{{4, 0.5}, {8, 0.5}});
  const core::LaterStages ls(spec);

  sim::NetworkConfig cfg = network_for(spec, 8, 80'000);
  cfg.service = sim::ServiceSpec::multi_size({{4, 0.5}, {8, 0.5}});
  const auto r = sim::run_network(cfg);
  EXPECT_NEAR(r.stage_wait[0].mean(), ls.mean_first_stage(),
              0.05 * ls.mean_first_stage());
  const double sim_limit = 0.5 * (r.stage_wait[6].mean() +
                                  r.stage_wait[7].mean());
  EXPECT_NEAR(ls.mean_limit(), sim_limit, 0.15 * sim_limit);
}

TEST(NonuniformIntegration, TableVShape) {
  // Waiting decreases in q at every stage; the limit estimate tracks the
  // deep-stage simulation within ~12%.
  double prev_first = 1e9, prev_deep = 1e9;
  for (double q : {0.0, 0.3, 0.6}) {
    core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = 0.5;
    spec.q = q;
    const core::LaterStages ls(spec);
    const auto r = sim::run_network(network_for(spec, 8, 60'000));
    const double first = r.stage_wait[0].mean();
    const double deep = 0.5 * (r.stage_wait[6].mean() +
                               r.stage_wait[7].mean());
    EXPECT_LT(first, prev_first) << "q=" << q;
    EXPECT_LT(deep, prev_deep) << "q=" << q;
    prev_first = first;
    prev_deep = deep;
    EXPECT_NEAR(ls.mean_first_stage(), first, 0.03 * first + 0.005);
    EXPECT_NEAR(ls.mean_limit(), deep, 0.12 * deep + 0.01) << "q=" << q;
  }
}

}  // namespace
}  // namespace ksw
