// Integration: the paper's central distributional claim (Section V,
// Figs. 3-8) — the total waiting time over n stages is well approximated
// by a gamma distribution with the estimated mean and variance, including
// at the tails.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/total_delay.hpp"
#include "sim/network.hpp"
#include "stats/goodness_of_fit.hpp"

namespace ksw {
namespace {

struct FigureRun {
  sim::NetworkResults results;
  core::LaterStages stages;

  FigureRun(double rho, unsigned m, std::int64_t cycles)
      : results{}, stages(make_spec(rho, m)) {
    // 10 stages keeps single-core test time manageable; the fig3_8 bench
    // runs the paper's full 12-stage configuration.
    sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = 10;
    cfg.p = rho / static_cast<double>(m);
    cfg.service = sim::ServiceSpec::deterministic(m);
    cfg.total_checkpoints = {3, 6, 8, 10};
    cfg.warmup_cycles = cycles / 10;
    cfg.measure_cycles = cycles;
    cfg.seed = 29;
    results = sim::run_network(cfg);
  }

  static core::NetworkTrafficSpec make_spec(double rho, unsigned m) {
    core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = rho / static_cast<double>(m);
    spec.service = std::make_shared<core::DeterministicService>(m);
    return spec;
  }
};

class GammaFitSweep
    : public ::testing::TestWithParam<std::tuple<double, unsigned>> {};

TEST_P(GammaFitSweep, TotalWaitingIsNearlyGamma) {
  const auto [rho, m] = GetParam();
  const FigureRun run(rho, m, 40'000);
  const unsigned depths[] = {3, 6, 8, 10};
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned n = depths[i];
    const core::TotalDelay td(run.stages, n);
    const auto gamma = td.gamma_approximation();
    // Multi-packet totals cluster on a near-lattice of the message size,
    // so compare binned masses (what the paper's figures plot): bin width
    // m. "Incredibly good match": total variation under 10%.
    const double tv = stats::binned_total_variation(
        run.results.total_wait[i], gamma, m);
    EXPECT_LT(tv, 0.10) << "rho=" << rho << " m=" << m << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(FigureGrid, GammaFitSweep,
                         ::testing::Values(std::make_tuple(0.2, 1u),
                                           std::make_tuple(0.5, 1u),
                                           std::make_tuple(0.8, 1u),
                                           std::make_tuple(0.2, 4u),
                                           std::make_tuple(0.5, 4u)));

TEST(GammaFit, TailProbabilityMatches) {
  // Fig. 5 regime: rho = 0.5, m = 1, deep network. Compare P(W > q95)
  // where q95 comes from the gamma model: the empirical tail should be ~5%.
  const FigureRun run(0.5, 1, 40'000);
  const core::TotalDelay td(run.stages, 10);
  const auto gamma = td.gamma_approximation();
  const double q95 = gamma.quantile(0.95);
  const auto& hist = run.results.total_wait[3];
  const double tail =
      1.0 - hist.cdf(static_cast<std::int64_t>(std::floor(q95 + 0.5)));
  EXPECT_NEAR(tail, 0.05, 0.02);
}

TEST(GammaFit, FitDegradesGracefullyForFewStages) {
  // Even n = 3 (where a normal approximation would fail at the tails) is
  // well fit by the gamma, as the paper emphasizes.
  const FigureRun run(0.5, 1, 40'000);
  const core::TotalDelay td(run.stages, 3);
  const auto gamma = td.gamma_approximation();
  EXPECT_LT(stats::total_variation_distance(run.results.total_wait[0], gamma),
            0.07);
}

TEST(GammaFit, WrongMomentsFitWorse) {
  const FigureRun run(0.5, 1, 20'000);
  const core::TotalDelay td(run.stages, 10);
  const auto good = td.gamma_approximation();
  const auto bad = stats::GammaDistribution::from_moments(
      2.0 * td.mean_total(), td.variance_total());
  const auto& hist = run.results.total_wait[3];
  EXPECT_LT(stats::total_variation_distance(hist, good),
            0.5 * stats::total_variation_distance(hist, bad));
}

}  // namespace
}  // namespace ksw
