// Integration: Section V total-waiting-time predictions (mean, variance
// with the geometric covariance model) against the network simulator —
// the content of the paper's Tables VII-XII.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/total_delay.hpp"
#include "sim/network.hpp"

namespace ksw {
namespace {

struct TotalsRun {
  std::vector<double> sim_mean;  // indexed by checkpoint {3,6,9,12}
  std::vector<double> sim_var;
  std::vector<double> pred_mean;
  std::vector<double> pred_var;
};

TotalsRun run_totals(double rho, unsigned m, std::int64_t cycles) {
  core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = rho / static_cast<double>(m);
  spec.service = std::make_shared<core::DeterministicService>(m);
  const core::LaterStages ls(spec);

  // 10 stages (1024 ports) keeps single-core test time manageable; the
  // bench harnesses exercise the paper's full 12-stage configuration.
  sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 10;
  cfg.p = spec.p;
  cfg.service = sim::ServiceSpec::deterministic(m);
  cfg.total_checkpoints = {3, 6, 8, 10};
  cfg.warmup_cycles = cycles / 10;
  cfg.measure_cycles = cycles;
  cfg.seed = 23;
  const auto r = sim::run_network(cfg);

  TotalsRun out;
  const unsigned depths[] = {3, 6, 8, 10};
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned n = depths[i];
    out.sim_mean.push_back(r.total_wait[i].mean());
    out.sim_var.push_back(r.total_wait[i].variance());
    const core::TotalDelay td(ls, n);
    out.pred_mean.push_back(td.mean_total());
    out.pred_var.push_back(td.variance_total());
  }
  return out;
}

class TotalsSweep
    : public ::testing::TestWithParam<std::tuple<double, unsigned>> {};

TEST_P(TotalsSweep, PredictionsTrackSimulation) {
  const auto [rho, m] = GetParam();
  const auto run = run_totals(rho, m, 30'000);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(run.pred_mean[i], run.sim_mean[i],
                0.05 * run.sim_mean[i] + 0.02)
        << "rho=" << rho << " m=" << m << " checkpoint=" << i;
    // Eq. 16 was calibrated by the authors at rho = 0.5 and drifts away
    // from it (their own Table VIII prediction is ~10% high); allow the
    // paper's error band for m >= 2 and a tighter one for m = 1.
    const double var_band = m == 1 ? 0.12 : 0.25;
    EXPECT_NEAR(run.pred_var[i], run.sim_var[i],
                var_band * run.sim_var[i] + 0.05)
        << "rho=" << rho << " m=" << m << " checkpoint=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, TotalsSweep,
                         ::testing::Values(std::make_tuple(0.2, 1u),
                                           std::make_tuple(0.2, 4u),
                                           std::make_tuple(0.5, 1u),
                                           std::make_tuple(0.5, 4u),
                                           std::make_tuple(0.8, 1u)));

TEST(Totals, CovarianceCorrectionImprovesVariance) {
  // The with-covariance estimate must be closer to simulation than the
  // independence assumption at rho = 0.5, m = 1 (the regime of Table IX).
  core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  const core::LaterStages ls(spec);
  const core::TotalDelay td(ls, 10);

  sim::NetworkConfig cfg;
  cfg.stages = 10;
  cfg.p = 0.5;
  cfg.total_checkpoints = {10};
  cfg.warmup_cycles = 3'000;
  cfg.measure_cycles = 30'000;
  const auto r = sim::run_network(cfg);
  const double sim_var = r.total_wait[0].variance();
  const double err_with = std::abs(td.variance_total(true) - sim_var);
  const double err_without = std::abs(td.variance_total(false) - sim_var);
  EXPECT_LT(err_with, err_without);
}

TEST(Totals, MeanTotalForHeavyTrafficTableXI) {
  // Table XI regime (rho = 0.8, m = 1, deep network): simulation within
  // ~6% of prediction.
  const auto run = run_totals(0.8, 1, 80'000);
  EXPECT_NEAR(run.pred_mean[3], run.sim_mean[3], 0.06 * run.sim_mean[3]);
  EXPECT_GT(run.sim_mean[3], 8.0);
}

}  // namespace
}  // namespace ksw
