// Integration: the exact Theorem-1 analysis against the cycle-accurate
// single-switch simulator across the paper's traffic classes, with
// confidence intervals from parallel replicates.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "core/first_stage.hpp"
#include "sim/replicate.hpp"
#include "stats/confidence.hpp"

namespace ksw {
namespace {

struct Scenario {
  const char* name;
  sim::FirstStageConfig cfg;
  core::QueueSpec spec;
};

Scenario uniform_scenario(unsigned k, unsigned s, double p) {
  sim::FirstStageConfig cfg;
  cfg.k = k;
  cfg.s = s;
  cfg.p = p;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 60'000;
  return {"uniform",
          cfg,
          {std::shared_ptr<core::ArrivalModel>(
               core::make_uniform_arrivals(k, s, p)),
           std::make_shared<core::DeterministicService>(1)}};
}

class FirstStageIntegration
    : public ::testing::TestWithParam<std::tuple<unsigned, double>> {};

TEST_P(FirstStageIntegration, SimulationConfirmsTheoremOne) {
  const auto [k, p] = GetParam();
  const Scenario sc = uniform_scenario(k, k, p);
  par::ThreadPool pool;
  const auto result = sim::replicate_first_stage(sc.cfg, 8, pool);
  const core::WaitingMoments exact = core::FirstStage(sc.spec).moments();

  // Monte-Carlo tolerance scales with the heavy-traffic factor.
  const double tol = 0.02 * (1.0 + exact.mean);
  EXPECT_NEAR(result.waiting.mean(), exact.mean, tol);
  EXPECT_NEAR(result.waiting.variance(), exact.variance,
              0.05 * (1.0 + exact.variance));
}

INSTANTIATE_TEST_SUITE_P(Grid, FirstStageIntegration,
                         ::testing::Combine(::testing::Values(2u, 4u, 8u),
                                            ::testing::Values(0.2, 0.5,
                                                              0.8)));

TEST(FirstStageIntegration, ConfidenceIntervalCoversExactMean) {
  const Scenario sc = uniform_scenario(2, 2, 0.5);
  par::ThreadPool pool;
  std::vector<double> means;
  for (unsigned r = 0; r < 10; ++r) {
    sim::FirstStageConfig cfg = sc.cfg;
    cfg.seed = sim::replicate_seed(99, r);
    means.push_back(sim::run_first_stage(cfg).waiting.mean());
  }
  const auto ci = stats::replicate_interval(means, 0.99);
  EXPECT_TRUE(ci.contains(0.25))
      << "CI [" << ci.lower() << ", " << ci.upper() << "]";
}

TEST(FirstStageIntegration, BulkDistributionMatchesInvertedTransform) {
  sim::FirstStageConfig cfg;
  cfg.p = 0.15;
  cfg.bulk = 3;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 300'000;
  const auto result = sim::run_first_stage(cfg);

  core::QueueSpec spec{
      std::shared_ptr<core::ArrivalModel>(
          core::make_bulk_arrivals(2, 2, 0.15, 3)),
      std::make_shared<core::DeterministicService>(1)};
  const auto dist = core::FirstStage(spec).distribution(64);
  double tv = 0.0;
  for (std::int64_t w = 0; w < 64; ++w)
    tv += std::abs(result.histogram.pmf(w) -
                   dist[static_cast<std::size_t>(w)]);
  EXPECT_LT(0.5 * tv, 0.01);
}

TEST(FirstStageIntegration, GeometricServiceDistributionMatches) {
  sim::FirstStageConfig cfg;
  cfg.p = 0.25;
  cfg.service = sim::ServiceSpec::geometric(0.5);
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 300'000;
  const auto result = sim::run_first_stage(cfg);

  core::QueueSpec spec{
      std::shared_ptr<core::ArrivalModel>(
          core::make_uniform_arrivals(2, 2, 0.25)),
      std::make_shared<core::GeometricService>(0.5)};
  const auto dist = core::FirstStage(spec).distribution(128);
  double tv = 0.0;
  for (std::int64_t w = 0; w < 128; ++w)
    tv += std::abs(result.histogram.pmf(w) -
                   dist[static_cast<std::size_t>(w)]);
  EXPECT_LT(0.5 * tv, 0.01);
}

}  // namespace
}  // namespace ksw
