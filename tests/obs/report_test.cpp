#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

#ifndef KSW_OBS_TEST_DATA_DIR
#error "KSW_OBS_TEST_DATA_DIR must point at tests/obs"
#endif

namespace ksw::obs {
namespace {

// A small registry with one metric of every kind and known values.
Registry demo_registry() {
  Registry reg;
  reg.counter("demo.count").inc(3);
  reg.gauge("demo.peak").record_max(4.5);
  Histogram& h = reg.histogram("demo.occupancy", 0.0, 1.0, 4);
  h.record(0.0);
  h.record(1.5);
  h.record(9.0);   // overflow
  h.record(-1.0);  // underflow
  reg.timer("demo.phase").add(std::chrono::nanoseconds(1'500'000));
  return reg;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Report, GoldenJson) {
  ReportOptions opts;
  opts.include_wall = false;
  const std::string actual =
      registry_to_json(demo_registry(), opts).to_string(2) + "\n";
  const std::string golden =
      read_file(std::string(KSW_OBS_TEST_DATA_DIR) + "/golden_report.json");
  EXPECT_EQ(actual, golden);
}

TEST(Report, EmptyRegistryStillHasAllSections) {
  const Registry reg;
  const std::string json = registry_to_json(reg).to_string(0);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
}

TEST(Report, WallFieldsAreOptIn) {
  const Registry reg = demo_registry();
  ReportOptions opts;
  opts.include_wall = false;
  const std::string without = registry_to_json(reg, opts).to_string(0);
  EXPECT_EQ(without.find("wall_s"), std::string::npos);
  opts.include_wall = true;
  const std::string with = registry_to_json(reg, opts).to_string(0);
  EXPECT_NE(with.find("wall_s"), std::string::npos);
  EXPECT_NE(with.find("0.0015"), std::string::npos);  // 1.5 ms
}

TEST(Report, CsvRowsCoverEveryMetricField) {
  ReportOptions opts;
  opts.include_wall = false;
  std::ostringstream out;
  registry_to_csv(demo_registry(), opts).write(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("name,kind,field,value"), std::string::npos);
  EXPECT_NE(csv.find("demo.count,counter,value,3"), std::string::npos);
  EXPECT_NE(csv.find("demo.peak,gauge,value,4.5"), std::string::npos);
  EXPECT_NE(csv.find("demo.occupancy,histogram,underflow,1"),
            std::string::npos);
  EXPECT_NE(csv.find("demo.occupancy,histogram,mean,2.375"),
            std::string::npos);
  EXPECT_NE(csv.find("demo.phase,timer,calls,1"), std::string::npos);
  EXPECT_EQ(csv.find("wall_s"), std::string::npos);
}

TEST(Report, TraceJsonCarriesPredictions) {
  ConvergenceTrace trace;
  trace.cycles = {100, 200};
  trace.wait_sum = {{10.0, 20.0}, {30.0, 60.0}};
  trace.wait_count = {{100, 100}, {200, 200}};
  const io::Json json = trace_to_json(trace, {0.25, 0.28}, 0.3);
  const std::string s = json.to_string(0);
  EXPECT_NE(s.find("\"points\""), std::string::npos);
  EXPECT_NE(s.find("\"predicted_stage_mean\""), std::string::npos);
  EXPECT_NE(s.find("\"predicted_limit\""), std::string::npos);
  EXPECT_NE(s.find("0.3"), std::string::npos);
  // Cumulative means: 30/200 = 0.15 at stage 0, 60/200 = 0.3 at stage 1.
  EXPECT_NE(s.find("0.15"), std::string::npos);
}

TEST(Report, TraceJsonWithoutPredictionsOmitsThem) {
  ConvergenceTrace trace;
  trace.cycles = {50};
  trace.wait_sum = {{5.0}};
  trace.wait_count = {{10}};
  const std::string s = trace_to_json(trace).to_string(0);
  EXPECT_EQ(s.find("predicted_stage_mean"), std::string::npos);
  EXPECT_EQ(s.find("predicted_limit"), std::string::npos);
}

}  // namespace
}  // namespace ksw::obs
