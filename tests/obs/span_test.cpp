#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_export.hpp"
#include "support/error.hpp"

namespace ksw::obs {
namespace {

// Span emission is a no-op when the layer is compiled out
// (KSW_OBS_ENABLED=OFF); tests that need emitted records skip there.
// Pure helpers (ids, render/parse/summarize) stay live either way.
#define KSW_REQUIRE_OBS()                                          \
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out"

std::vector<SpanRecord> by_name(const Tracer& tracer,
                                const std::string& name) {
  std::vector<SpanRecord> out;
  for (const auto& rec : tracer.snapshot())
    if (rec.name == name) out.push_back(rec);
  return out;
}

// ---------------------------------------------------------------------------
// Ids
// ---------------------------------------------------------------------------

TEST(Ids, HexRoundTrip) {
  EXPECT_EQ(hex_id(0), "0000000000000000");
  EXPECT_EQ(hex_id(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(parse_hex_id("00000000deadbeef"), 0xdeadbeefu);
  EXPECT_EQ(parse_hex_id("ff"), 0xffu);
  for (const std::uint64_t id : {1ull, 42ull, 0xffffffffffffffffull})
    EXPECT_EQ(parse_hex_id(hex_id(id)), id);
}

TEST(Ids, ParseRejectsMalformed) {
  EXPECT_EQ(parse_hex_id(""), 0u);
  EXPECT_EQ(parse_hex_id("xyz"), 0u);
  EXPECT_EQ(parse_hex_id("00000000deadbeef0"), 0u);  // 17 chars
  EXPECT_EQ(parse_hex_id("dead beef"), 0u);
}

TEST(Ids, FnvIsStableAndSpreads) {
  // Pinned value: trace ids derived from manifest fingerprints must not
  // drift across builds, or resumed-run traces stop stitching.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a64("a/sec#0"), fnv1a64("a/sec#1"));
}

// ---------------------------------------------------------------------------
// Span lifecycle
// ---------------------------------------------------------------------------

TEST(Span, InertWhenDefaultConstructedOrNullTracer) {
  Span inert;
  EXPECT_FALSE(inert.active());
  inert.label("k", "v");  // must not crash
  inert.end();

  Span null_tracer(nullptr, "x");
  EXPECT_FALSE(null_tracer.active());
}

TEST(Span, RecordsNameLabelsAndPositiveIds) {
  KSW_REQUIRE_OBS();
  Tracer tracer;
  {
    Span s = tracer.span("work");
    s.label("kind", "test");
    s.label("n", "3");
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_GT(spans[0].span_id, 0u);
  EXPECT_EQ(spans[0].trace_id, spans[0].span_id);  // fresh root trace
  EXPECT_EQ(spans[0].parent_id, 0u);
  ASSERT_EQ(spans[0].labels.size(), 2u);
  EXPECT_EQ(spans[0].labels[0].first, "kind");
  EXPECT_EQ(spans[0].labels[1].second, "3");
}

TEST(Span, EndIsIdempotent) {
  KSW_REQUIRE_OBS();
  Tracer tracer;
  Span s = tracer.span("once");
  s.end();
  s.end();
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Span, NestingLinksParentAndInheritsTrace) {
  KSW_REQUIRE_OBS();
  Tracer tracer;
  {
    Span outer = tracer.span("outer", /*trace_id=*/0x1234);
    {
      Span mid = tracer.span("mid");
      Span inner = tracer.span("inner");
      inner.end();
      mid.end();
    }
  }
  const auto outer = by_name(tracer, "outer");
  const auto mid = by_name(tracer, "mid");
  const auto inner = by_name(tracer, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(mid.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].trace_id, 0x1234u);
  EXPECT_EQ(outer[0].parent_id, 0u);
  EXPECT_EQ(mid[0].parent_id, outer[0].span_id);
  EXPECT_EQ(mid[0].trace_id, 0x1234u);  // inherited down the stack
  EXPECT_EQ(inner[0].parent_id, mid[0].span_id);
  EXPECT_EQ(inner[0].trace_id, 0x1234u);
}

TEST(Span, SiblingsShareAParentButNotEachOther) {
  KSW_REQUIRE_OBS();
  Tracer tracer;
  {
    Span parent = tracer.span("parent");
    { Span a = tracer.span("a"); }
    { Span b = tracer.span("b"); }
  }
  const auto parent = by_name(tracer, "parent");
  const auto a = by_name(tracer, "a");
  const auto b = by_name(tracer, "b");
  ASSERT_EQ(parent.size(), 1u);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].parent_id, parent[0].span_id);
  EXPECT_EQ(b[0].parent_id, parent[0].span_id);
  EXPECT_NE(a[0].span_id, b[0].span_id);
}

TEST(Span, DifferentThreadsDoNotInheritEachOthersParents) {
  KSW_REQUIRE_OBS();
  Tracer tracer;
  Span outer = tracer.span("outer");
  std::thread([&tracer] { Span other = tracer.span("other-thread"); })
      .join();
  outer.end();
  const auto other = by_name(tracer, "other-thread");
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0].parent_id, 0u);  // root on its own thread
}

TEST(Span, MoveTransfersOwnershipWithoutDoubleEmit) {
  KSW_REQUIRE_OBS();
  Tracer tracer;
  {
    Span a = tracer.span("moved");
    Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(tracer.size(), 1u);
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

TEST(Tracer, OverflowDropsNewestAndCounts) {
  KSW_REQUIRE_OBS();
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span s = tracer.span("s" + std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Drop-newest: the first four spans survived.
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].name,
              "s" + std::to_string(i));
}

TEST(Tracer, ConcurrentEmitLosesNothingBelowCapacity) {
  KSW_REQUIRE_OBS();
  Tracer tracer(/*capacity=*/4096);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Span s = tracer.span("t" + std::to_string(t));
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(tracer.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// ksw.trace/v1 serialization
// ---------------------------------------------------------------------------

SpanRecord make_record(std::string name, std::uint64_t span_id,
                       std::uint64_t start_ns) {
  SpanRecord rec;
  rec.name = std::move(name);
  rec.trace_id = 0xabc;
  rec.span_id = span_id;
  rec.start_ns = start_ns;
  rec.dur_ns = 10;
  return rec;
}

TEST(TraceExport, RenderIsAPureFunctionOfTheRecordSet) {
  // Same records, different emit order — identical bytes. This is the
  // "merge determinism" contract: thread interleaving must not leak
  // into the serialized stream.
  std::vector<SpanRecord> forward = {make_record("a", 1, 100),
                                     make_record("b", 2, 50),
                                     make_record("c", 3, 50)};
  std::vector<SpanRecord> reversed(forward.rbegin(), forward.rend());
  EXPECT_EQ(render_trace_jsonl(forward, 0),
            render_trace_jsonl(reversed, 0));
}

TEST(TraceExport, RoundTripsThroughJsonl) {
  // Hand-built records keep this live under KSW_OBS_ENABLED=OFF: the
  // serializers are pure functions, independent of span emission.
  SpanRecord outer = make_record("outer", 11, 100);
  outer.trace_id = 7;
  outer.labels.emplace_back("key", "va\"lue");  // exercises escaping
  SpanRecord inner = make_record("inner", 12, 150);
  inner.trace_id = 7;
  inner.parent_id = outer.span_id;
  const std::string text = render_trace_jsonl({outer, inner}, 0);
  std::uint64_t dropped = 99;
  const auto parsed = parse_trace_jsonl(text, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(parsed.size(), 2u);
  // Canonical order sorts by start_ns: outer opened first.
  EXPECT_EQ(parsed[0].name, "outer");
  EXPECT_EQ(parsed[0].trace_id, 7u);
  ASSERT_EQ(parsed[0].labels.size(), 1u);
  EXPECT_EQ(parsed[0].labels[0].second, "va\"lue");
  EXPECT_EQ(parsed[1].name, "inner");
  EXPECT_EQ(parsed[1].parent_id, parsed[0].span_id);
  // Round-trip is byte-stable.
  EXPECT_EQ(render_trace_jsonl(parsed, dropped), text);
}

TEST(TraceExport, ParseRejectsMalformedStreams) {
  EXPECT_THROW(parse_trace_jsonl("not json\n"), Error);
  EXPECT_THROW(parse_trace_jsonl("{\"schema\":\"other/v1\"}\n"), Error);
  const std::string missing_span =
      "{\"schema\":\"ksw.trace/v1\",\"spans\":1,\"dropped\":0}\n"
      "{\"name\":\"x\"}\n";
  EXPECT_THROW(parse_trace_jsonl(missing_span), Error);
}

TEST(TraceExport, ChromeExportEmitsCompleteEvents) {
  const std::string chrome =
      render_chrome_trace({make_record("painted", 21, 100)});
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\": \"painted\""), std::string::npos);
}

TEST(TraceExport, SummarizeComputesCountsAndQuantiles) {
  std::vector<SpanRecord> spans;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    SpanRecord rec = make_record("req", i, i);
    rec.dur_ns = i * 1000;  // 1..100 us
    spans.push_back(std::move(rec));
  }
  spans.push_back(make_record("other", 200, 1));
  const auto rows = summarize_spans(spans);
  ASSERT_EQ(rows.size(), 2u);  // name-ordered
  EXPECT_EQ(rows[0].name, "other");
  EXPECT_EQ(rows[1].name, "req");
  EXPECT_EQ(rows[1].count, 100u);
  EXPECT_NEAR(rows[1].p50_us, 50.0, 1.0);
  EXPECT_NEAR(rows[1].p99_us, 99.0, 1.0);
  EXPECT_NEAR(rows[1].max_us, 100.0, 1e-9);
  EXPECT_NEAR(rows[1].total_ms, 5.05, 0.01);
}

}  // namespace
}  // namespace ksw::obs
