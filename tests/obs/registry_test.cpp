#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "par/thread_pool.hpp"
#include "sim/replicate.hpp"

namespace ksw::obs {
namespace {

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

TEST(Counter, IncrementsAndMerges) {
  Counter a;
  a.inc();
  a.inc(41);
  EXPECT_EQ(a.value(), 42u);
  Counter b;
  b.inc(8);
  a.merge(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(Gauge, RecordMaxKeepsHighWaterMark) {
  Gauge g;
  g.record_max(3.0);
  g.record_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);
  Gauge other;
  other.record_max(2.5);
  g.merge(other);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(HistogramMetric, BucketEdges) {
  // Three buckets of width 2 starting at 1: [1,3), [3,5), [5,7).
  Histogram h(1.0, 2.0, 3);
  h.record(0.999);  // underflow
  h.record(1.0);    // exactly on the lower edge -> bucket 0
  h.record(2.999);  // just under the first boundary -> bucket 0
  h.record(3.0);    // exactly on a boundary -> upper bucket
  h.record(6.999);  // last bucket
  h.record(7.0);    // exactly past the end -> overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.lower_edge(0), 1.0);
  EXPECT_DOUBLE_EQ(h.lower_edge(3), 7.0);
}

TEST(HistogramMetric, WeightedRecordAndMean) {
  Histogram h(0.0, 1.0, 4);
  h.record(2.0, 3);
  EXPECT_EQ(h.bucket(2), 3u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(HistogramMetric, QuantileInterpolatesWithinBuckets) {
  // Four buckets of width 10 on [0, 40); 10 samples spread uniformly
  // inside bucket 1 mean the rank fraction interpolates linearly.
  Histogram h(0.0, 10.0, 4);
  h.record(15.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(HistogramMetric, QuantileSpansBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.record(0.5, 1);  // bucket 0
  h.record(1.5, 1);  // bucket 1
  h.record(2.5, 2);  // bucket 2
  // Half the mass lies at or below the end of bucket 1.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(HistogramMetric, QuantileEdgeCases) {
  Histogram h(10.0, 5.0, 2);
  // Empty histogram: every quantile clamps to the lower bound. The old
  // behavior returned a literal 0.0, which lies outside [10, 20].
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  h.record(5.0);   // underflow
  h.record(99.0);  // overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 10.0);  // underflow reports the bound
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);   // overflow reports the top edge
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(HistogramMetric, QuantileStaysWithinRange) {
  // With any sample mix, q = 0 and q = 1 never extrapolate past the
  // bucket edges and never produce NaN.
  Histogram h(10.0, 5.0, 2);
  h.record(12.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 15.0);
  h.record(17.0, 3);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 20.0);
  }
}

TEST(HistogramMetric, MergeRequiresSameLayout) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.record(1.0);
  b.record(1.0);
  b.record(9.0);
  a.merge(b);
  EXPECT_EQ(a.bucket(1), 2u);
  EXPECT_EQ(a.overflow(), 1u);
  Histogram c(0.0, 2.0, 4);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(TimerMetric, ScopedTimerNesting) {
  Timer outer;
  Timer inner;
  {
    ScopedTimer o(outer);
    {
      ScopedTimer i(inner);
      // Busy-wait long enough to be visible on any clock.
      const auto start = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() - start <
             std::chrono::microseconds(200)) {
      }
    }
  }
  EXPECT_EQ(outer.calls(), 1u);
  EXPECT_EQ(inner.calls(), 1u);
  EXPECT_GT(inner.nanos(), 0u);
  // The outer scope strictly contains the inner scope.
  EXPECT_GE(outer.nanos(), inner.nanos());
}

TEST(TimerMetric, NullScopedTimerIsNoop) {
  { ScopedTimer t(nullptr); }  // must not crash
  Timer timer;
  { ScopedTimer t(&timer); }
  EXPECT_EQ(timer.calls(), 1u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsStableHandles) {
  Registry reg;
  Counter& c = reg.counter("a");
  c.inc();
  EXPECT_EQ(reg.counter("a").value(), 1u);
  EXPECT_EQ(&reg.counter("a"), &c);
}

TEST(Registry, HistogramLayoutConflictThrows) {
  Registry reg;
  reg.histogram("h", 0.0, 1.0, 8);
  EXPECT_NO_THROW(reg.histogram("h", 0.0, 1.0, 8));
  EXPECT_THROW(reg.histogram("h", 0.0, 2.0, 8), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", 0.0, 1.0, 4), std::invalid_argument);
}

TEST(Registry, MergeCombinesAndAdoptsMetrics) {
  Registry a;
  a.counter("events").inc(2);
  a.gauge("peak").record_max(1.0);
  a.histogram("occ", 0.0, 1.0, 4).record(1.0);

  Registry b;
  b.counter("events").inc(3);
  b.counter("only_b").inc(7);
  b.gauge("peak").record_max(5.0);
  b.histogram("occ", 0.0, 1.0, 4).record(1.0);
  b.timer("phase").add(std::chrono::nanoseconds(10));

  a.merge(b);
  EXPECT_EQ(a.counter("events").value(), 5u);
  EXPECT_EQ(a.counter("only_b").value(), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("peak").value(), 5.0);
  EXPECT_EQ(a.histogram("occ", 0.0, 1.0, 4).bucket(1), 2u);
  EXPECT_EQ(a.timer("phase").calls(), 1u);
}

TEST(Registry, CopyIsDeep) {
  Registry a;
  a.counter("n").inc(4);
  Registry b = a;
  b.counter("n").inc();
  EXPECT_EQ(a.counter("n").value(), 4u);
  EXPECT_EQ(b.counter("n").value(), 5u);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: same seed => bit-identical report, any threads
// ---------------------------------------------------------------------------

std::string stable_report(const sim::NetworkResults& r) {
  ReportOptions opts;
  opts.include_wall = false;
  return registry_to_json(r.metrics, opts).to_string(2) + "\n" +
         trace_to_json(r.convergence).to_string(2) + "\n";
}

TEST(ObsDeterminism, ReportBitIdenticalAcross1_2_8Threads) {
  sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 3;
  cfg.p = 0.5;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 2000;
  cfg.seed = 99;
  cfg.obs.enabled = true;
  cfg.obs.stride = 16;
  cfg.obs.trace_points = 8;

  std::vector<std::string> reports;
  for (unsigned threads : {1u, 2u, 8u}) {
    par::ThreadPool pool(threads);
    const sim::NetworkResults r = sim::replicate_network(cfg, 4, pool);
    reports.push_back(stable_report(r));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
  if constexpr (kEnabled) {
    EXPECT_NE(reports[0].find("sim.stage01.occupancy"), std::string::npos);
    EXPECT_NE(reports[0].find("sim.phase.warmup"), std::string::npos);
    EXPECT_NE(reports[0].find("sim.phase.merge"), std::string::npos);
  }
}

TEST(ObsDeterminism, MergedTraceEqualsPointwiseSums) {
  sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 2;
  cfg.p = 0.4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 800;
  cfg.obs.enabled = true;
  cfg.obs.trace_points = 4;

  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";

  cfg.seed = sim::replicate_seed(5, 0);
  const sim::NetworkResults a = sim::run_network(cfg);
  cfg.seed = sim::replicate_seed(5, 1);
  const sim::NetworkResults b = sim::run_network(cfg);

  ConvergenceTrace sum = a.convergence;
  sum.merge(b.convergence);

  par::ThreadPool pool(2);
  cfg.seed = 5;
  const sim::NetworkResults merged = sim::replicate_network(cfg, 2, pool);
  ASSERT_EQ(merged.convergence.points(), sum.points());
  for (std::size_t p = 0; p < sum.points(); ++p)
    for (std::size_t s = 0; s < cfg.stages; ++s) {
      EXPECT_DOUBLE_EQ(merged.convergence.wait_sum[p][s], sum.wait_sum[p][s]);
      EXPECT_EQ(merged.convergence.wait_count[p][s], sum.wait_count[p][s]);
    }
}

TEST(ConvergenceTraceTest, MergeShapeMismatchThrows) {
  ConvergenceTrace a;
  a.cycles = {10, 20};
  a.wait_sum = {{1.0}, {2.0}};
  a.wait_count = {{1}, {2}};
  ConvergenceTrace b;
  b.cycles = {10};
  b.wait_sum = {{1.0}};
  b.wait_count = {{1}};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  ConvergenceTrace empty;
  EXPECT_NO_THROW(a.merge(empty));
  EXPECT_DOUBLE_EQ(a.mean(1, 0), 1.0);
}

}  // namespace
}  // namespace ksw::obs
