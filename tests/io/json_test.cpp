#include "io/json.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ksw::io {
namespace {

TEST(JsonEscape, ControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nfeed"), "line\\nfeed");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json().to_string(), "null");
  EXPECT_EQ(Json(true).to_string(), "true");
  EXPECT_EQ(Json(false).to_string(), "false");
  EXPECT_EQ(Json(42).to_string(), "42");
  EXPECT_EQ(Json(2.5).to_string(), "2.5");
  EXPECT_EQ(Json("text").to_string(), "\"text\"");
}

TEST(Json, IntegersRenderWithoutDecimalPoint) {
  EXPECT_EQ(Json(std::int64_t{1000000}).to_string(), "1000000");
  EXPECT_EQ(Json(-3.0).to_string(), "-3");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).to_string(),
            "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).to_string(),
            "null");
}

TEST(Json, ArraysAndObjects) {
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json());
  EXPECT_EQ(arr.to_string(), "[1,\"two\",null]");
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr.is_array());

  Json obj = Json::object();
  obj.set("a", 1).set("b", true);
  EXPECT_EQ(obj.to_string(), "{\"a\":1,\"b\":true}");
  EXPECT_TRUE(obj.is_object());
}

TEST(Json, SetOverwritesExistingKeyInPlace) {
  Json obj = Json::object();
  obj.set("x", 1).set("y", 2).set("x", 3);
  EXPECT_EQ(obj.to_string(), "{\"x\":3,\"y\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, NullPromotesOnMutation) {
  Json j;
  j.push_back(1);
  EXPECT_TRUE(j.is_array());
  Json k;
  k.set("key", "v");
  EXPECT_TRUE(k.is_object());
}

TEST(Json, MutatingWrongTypeThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", 1), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(1), std::logic_error);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().to_string(), "[]");
  EXPECT_EQ(Json::object().to_string(), "{}");
  EXPECT_EQ(Json::array().to_string(2), "[]");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("a", 1);
  Json nested = Json::array();
  nested.push_back(2);
  obj.set("b", std::move(nested));
  EXPECT_EQ(obj.to_string(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, NestedStructure) {
  Json doc = Json::object();
  Json rows = Json::array();
  for (int i = 0; i < 3; ++i) {
    Json row = Json::object();
    row.set("i", i);
    rows.push_back(std::move(row));
  }
  doc.set("rows", std::move(rows));
  EXPECT_EQ(doc.to_string(),
            "{\"rows\":[{\"i\":0},{\"i\":1},{\"i\":2}]}");
}

}  // namespace
}  // namespace ksw::io
