#include "io/json.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ksw::io {
namespace {

TEST(JsonEscape, ControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nfeed"), "line\\nfeed");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json().to_string(), "null");
  EXPECT_EQ(Json(true).to_string(), "true");
  EXPECT_EQ(Json(false).to_string(), "false");
  EXPECT_EQ(Json(42).to_string(), "42");
  EXPECT_EQ(Json(2.5).to_string(), "2.5");
  EXPECT_EQ(Json("text").to_string(), "\"text\"");
}

TEST(Json, IntegersRenderWithoutDecimalPoint) {
  EXPECT_EQ(Json(std::int64_t{1000000}).to_string(), "1000000");
  EXPECT_EQ(Json(-3.0).to_string(), "-3");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).to_string(),
            "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).to_string(),
            "null");
}

TEST(Json, ArraysAndObjects) {
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json());
  EXPECT_EQ(arr.to_string(), "[1,\"two\",null]");
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr.is_array());

  Json obj = Json::object();
  obj.set("a", 1).set("b", true);
  EXPECT_EQ(obj.to_string(), "{\"a\":1,\"b\":true}");
  EXPECT_TRUE(obj.is_object());
}

TEST(Json, SetOverwritesExistingKeyInPlace) {
  Json obj = Json::object();
  obj.set("x", 1).set("y", 2).set("x", 3);
  EXPECT_EQ(obj.to_string(), "{\"x\":3,\"y\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, NullPromotesOnMutation) {
  Json j;
  j.push_back(1);
  EXPECT_TRUE(j.is_array());
  Json k;
  k.set("key", "v");
  EXPECT_TRUE(k.is_object());
}

TEST(Json, MutatingWrongTypeThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", 1), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(1), std::logic_error);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().to_string(), "[]");
  EXPECT_EQ(Json::object().to_string(), "{}");
  EXPECT_EQ(Json::array().to_string(2), "[]");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("a", 1);
  Json nested = Json::array();
  nested.push_back(2);
  obj.set("b", std::move(nested));
  EXPECT_EQ(obj.to_string(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, NestedStructure) {
  Json doc = Json::object();
  Json rows = Json::array();
  for (int i = 0; i < 3; ++i) {
    Json row = Json::object();
    row.set("i", i);
    rows.push_back(std::move(row));
  }
  doc.set("rows", std::move(rows));
  EXPECT_EQ(doc.to_string(),
            "{\"rows\":[{\"i\":0},{\"i\":1},{\"i\":2}]}");
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e1").as_double(), -25.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, RoundTripsItsOwnOutput) {
  Json doc = Json::object();
  doc.set("name", "sweep").set("n", 3).set("p", 0.125).set("on", true);
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json());
  doc.set("items", std::move(arr));
  const Json back = Json::parse(doc.to_string(2));
  EXPECT_EQ(back.to_string(), doc.to_string());
}

TEST(JsonParse, ObjectAccessors) {
  const Json doc = Json::parse(R"({"a": 1, "b": {"c": [10, 20]}})");
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("z"));
  EXPECT_EQ(doc.at("a").as_int(), 1);
  EXPECT_EQ(doc.at("b").at("c").at(1).as_int(), 20);
  EXPECT_TRUE(doc.get("missing").is_null());
  EXPECT_EQ(doc.keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(doc.at("z"), std::invalid_argument);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\n")").as_string(), "a\"b\\c\n");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(JsonParse, TypeMismatchesThrow) {
  EXPECT_THROW(Json::parse("42").as_string(), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"x\"").as_double(), std::invalid_argument);
  EXPECT_THROW(Json::parse("2.5").as_int(), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1]").at("k"), std::invalid_argument);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\":1} extra"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{'a':1}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("nul"), std::invalid_argument);
  EXPECT_THROW(Json::parse("01"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1."), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"bad\\x\""), std::invalid_argument);
}

TEST(JsonParse, RejectsDuplicateObjectKeys) {
  EXPECT_THROW(Json::parse(R"({"a": 1, "a": 2})"), std::invalid_argument);
}

}  // namespace
}  // namespace ksw::io
