#include "io/csv.hpp"

#include <gtest/gtest.h>

namespace ksw::io {
namespace {

TEST(CsvEscape, PlainFieldsUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, BasicDocument) {
  CsvWriter csv({"name", "value"});
  csv.begin_row().add("pi").add(3.25);
  csv.begin_row().add("count").add(std::int64_t{42});
  EXPECT_EQ(csv.to_string(), "name,value\npi,3.25\ncount,42\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(CsvWriter, PadsShortRows) {
  CsvWriter csv({"a", "b", "c"});
  csv.begin_row().add("only");
  EXPECT_EQ(csv.to_string(), "a,b,c\nonly,,\n");
}

TEST(CsvWriter, RejectsWideRowsAndEmptyHeader) {
  CsvWriter csv({"a"});
  csv.begin_row().add("x");
  EXPECT_THROW(csv.add("y"), std::invalid_argument);
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(CsvWriter, ImplicitFirstRow) {
  CsvWriter csv({"a"});
  csv.add("auto");
  EXPECT_EQ(csv.to_string(), "a\nauto\n");
}

TEST(CsvWriter, QuotedHeadersAndCells) {
  CsvWriter csv({"name, full", "v"});
  csv.begin_row().add("x,y").add(std::uint64_t{7});
  EXPECT_EQ(csv.to_string(), "\"name, full\",v\n\"x,y\",7\n");
}

}  // namespace
}  // namespace ksw::io
