#include "io/atomic.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/injection.hpp"
#include "support/error.hpp"

namespace ksw::io {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class AtomicWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    dir_ = fs::temp_directory_path() /
           ("ksw-atomic-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fault::disarm_all();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(AtomicWriteTest, WritesContentAndCreatesParents) {
  const fs::path target = dir_ / "a" / "b" / "out.txt";
  atomic_write_file(target.string(), "hello\n");
  EXPECT_EQ(slurp(target), "hello\n");
}

TEST_F(AtomicWriteTest, OverwritesExistingFile) {
  const fs::path target = dir_ / "out.txt";
  atomic_write_file(target.string(), "first");
  atomic_write_file(target.string(), "second");
  EXPECT_EQ(slurp(target), "second");
}

TEST_F(AtomicWriteTest, LeavesNoTempFileBehind) {
  const fs::path target = dir_ / "out.txt";
  atomic_write_file(target.string(), "payload");
  unsigned files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(AtomicWriteTest, InjectedOpenFailureIsTypedIoError) {
  const fs::path target = dir_ / "out.txt";
  fault::arm("io.open");
  try {
    atomic_write_file(target.string(), "payload");
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
  // No target and no temp litter after the failure.
  EXPECT_FALSE(fs::exists(target));
}

TEST_F(AtomicWriteTest, InjectedWriteFailureLeavesOldContentIntact) {
  const fs::path target = dir_ / "out.txt";
  atomic_write_file(target.string(), "old");
  fault::arm("io.write");
  EXPECT_THROW(atomic_write_file(target.string(), "new"), Error);
  // The failed write must not have truncated or replaced the target.
  EXPECT_EQ(slurp(target), "old");
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST_F(AtomicWriteTest, UnwritableParentIsTypedIoError) {
  try {
    atomic_write_file("/proc/ksw-definitely-not-writable/out.txt", "x");
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

}  // namespace
}  // namespace ksw::io
