#include "sweep/manifest.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "io/json.hpp"
#include "support/error.hpp"

namespace ksw::sweep {
namespace {

// Minimal valid manifest with one section; `extra` is spliced into the
// section object and `settings` into the top level, so each test mutates
// exactly the clause under scrutiny.
std::string doc(const std::string& section_body,
                const std::string& top_extra = "") {
  return std::string("{\"schema\":\"ksw.sweep/v1\",\"name\":\"t\","
                     "\"title\":\"T\"") +
         top_extra + ",\"sections\":[" + section_body + "]}";
}

std::string section(const std::string& extra = "") {
  return std::string("{\"id\":\"sec\",\"title\":\"S\","
                     "\"kind\":\"first_stage\","
                     "\"grid\":{\"axes\":{\"p\":[0.25,0.5]}}") +
         extra + "}";
}

Manifest parse(const std::string& text) {
  return parse_manifest(io::Json::parse(text));
}

TEST(Manifest, ParsesMinimalDocument) {
  const Manifest m = parse(doc(section()));
  EXPECT_EQ(m.name, "t");
  ASSERT_EQ(m.sections.size(), 1u);
  EXPECT_EQ(m.sections[0].id, "sec");
  EXPECT_EQ(m.sections[0].kind, SectionKind::kFirstStage);
  ASSERT_EQ(m.sections[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(m.sections[0].points[0].p, 0.25);
  EXPECT_DOUBLE_EQ(m.sections[0].points[1].p, 0.5);
}

TEST(Manifest, CartesianAxesLaterAxesVaryFastest) {
  const Manifest m = parse(doc(
      R"({"id":"g","title":"G","kind":"first_stage",
          "grid":{"axes":{"k":[2,4],"p":[0.2,0.8]}}})"));
  const auto& pts = m.sections[0].points;
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].k, 2u);
  EXPECT_DOUBLE_EQ(pts[0].p, 0.2);
  EXPECT_DOUBLE_EQ(pts[1].p, 0.8);
  EXPECT_EQ(pts[2].k, 4u);
  EXPECT_DOUBLE_EQ(pts[2].p, 0.2);
}

TEST(Manifest, ExplicitPointsAppendAfterAxes) {
  const Manifest m = parse(doc(
      R"({"id":"g","title":"G","kind":"first_stage",
          "grid":{"axes":{"p":[0.2]},"points":[{"k":4,"p":0.5}]}})"));
  const auto& pts = m.sections[0].points;
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1].k, 4u);
}

TEST(Manifest, SettingsMergeDefaultsThenSection) {
  const Manifest m = parse(doc(
      section(R"(,"replicates":6,"mean_rel_tol":0.2)"),
      R"(,"defaults":{"replicates":3,"measure_cycles":5000,"seed":9})"));
  EXPECT_EQ(m.defaults.replicates, 3u);
  EXPECT_EQ(m.sections[0].budget.replicates, 6u);
  EXPECT_EQ(m.sections[0].budget.measure_cycles, 5000);
  EXPECT_EQ(m.sections[0].budget.seed, 9u);
  EXPECT_DOUBLE_EQ(m.sections[0].tol.mean_rel, 0.2);
}

TEST(Manifest, WarmupDefaultsToTenthOfMeasure) {
  RunBudget b;
  b.measure_cycles = 5000;
  EXPECT_EQ(b.effective_warmup(), 500);
  b.warmup_cycles = 123;
  EXPECT_EQ(b.effective_warmup(), 123);
}

TEST(Manifest, PointLabelListsOnlyNonDefaults) {
  Point pt;
  pt.k = 4;
  pt.p = 0.25;
  EXPECT_EQ(pt.label(), "k=4 p=0.25");
  pt.bulk = 2;
  pt.service = "geo:0.5";
  EXPECT_EQ(pt.label(), "k=4 p=0.25 b=2 geo:0.5");
}

TEST(Manifest, RejectsWrongSchema) {
  EXPECT_THROW(parse("{\"schema\":\"ksw.sweep/v2\",\"name\":\"t\","
                     "\"title\":\"T\",\"sections\":[" + section() + "]}"),
               ksw::Error);
}

TEST(Manifest, RejectsUnknownKeysEverywhere) {
  EXPECT_THROW(parse(doc(section(), R"(,"tpyo":1)")),
               ksw::Error);
  EXPECT_THROW(parse(doc(section(R"(,"tpyo":1)"))), ksw::Error);
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"axes":{"p":[0.2]},"tpyo":1}})")),
               ksw::Error);
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"points":[{"p":0.2,"tpyo":1}]}})")),
               ksw::Error);
}

TEST(Manifest, RejectsBadGrids) {
  // Empty grid: no axes, no points.
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{}})")),
               ksw::Error);
  // Axis with an empty value list produces no points.
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"axes":{"p":[]}}})")),
               ksw::Error);
  // Out-of-range parameter values.
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"points":[{"p":1.5}]}})")),
               ksw::Error);
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"points":[{"q":1.0}]}})")),
               ksw::Error);
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"points":[{"k":0}]}})")),
               ksw::Error);
  // Malformed service specs are validated eagerly at parse time.
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"points":[{"service":"det:0"}]}})")),
               ksw::Error);
}

TEST(Manifest, RejectsDuplicatePoints) {
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"points":[{"p":0.5},{"p":0.5}]}})")),
               ksw::Error);
  // A point duplicated between the axes expansion and the explicit list.
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"axes":{"p":[0.5]},"points":[{"p":0.5}]}})")),
               ksw::Error);
}

TEST(Manifest, RejectsDuplicateSectionIds) {
  EXPECT_THROW(parse(doc(section() + "," + section())),
               ksw::Error);
}

TEST(Manifest, RejectsBadSectionIds) {
  EXPECT_THROW(parse(doc(
                   R"({"id":"Bad_Id","title":"G","kind":"first_stage",
                       "grid":{"axes":{"p":[0.2]}}})")),
               ksw::Error);
}

TEST(Manifest, RejectsBadCheckpoints) {
  const char* base =
      R"({"id":"g","title":"G","kind":"total_delay","stages":6,
          "checkpoints":%s,"grid":{"axes":{"p":[0.2]}}})";
  const auto with = [&](const char* cps) {
    std::string s = base;
    s.replace(s.find("%s"), 2, cps);
    return doc(s);
  };
  EXPECT_THROW(parse(with("[3,3]")), ksw::Error);
  EXPECT_THROW(parse(with("[6,3]")), ksw::Error);
  EXPECT_THROW(parse(with("[3,9]")), ksw::Error);
  EXPECT_NO_THROW(parse(with("[3,6]")));
}

TEST(Manifest, TotalDelayDefaultsCheckpointToFinalStage) {
  const Manifest m = parse(doc(
      R"({"id":"g","title":"G","kind":"total_delay","stages":5,
          "grid":{"axes":{"p":[0.2]}}})"));
  ASSERT_EQ(m.sections[0].checkpoints.size(), 1u);
  EXPECT_EQ(m.sections[0].checkpoints[0], 5u);
}

TEST(Manifest, NetworkSectionsRequireSquareSwitches) {
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"stage_convergence",
                       "grid":{"points":[{"k":4,"s":2}]}})")),
               ksw::Error);
}

TEST(Manifest, RejectsTinyReplicateCounts) {
  EXPECT_THROW(parse(doc(section(R"(,"replicates":1)"))),
               ksw::Error);
}

TEST(Manifest, KindNamesRoundTrip) {
  EXPECT_STREQ(to_string(SectionKind::kFirstStage), "first_stage");
  EXPECT_STREQ(to_string(SectionKind::kStageConvergence),
               "stage_convergence");
  EXPECT_STREQ(to_string(SectionKind::kTotalDelay), "total_delay");
  EXPECT_STREQ(to_string(SectionKind::kFiniteBuffer), "finite_buffer");
}

TEST(Manifest, FiniteBufferSectionParses) {
  const Manifest m = parse(doc(
      R"({"id":"fb","title":"F","kind":"finite_buffer","stages":3,
          "depths":[1,4,32],"flow":"credit","credit_latency":3,
          "grid":{"points":[{"p":0.7}]}})"));
  const Section& s = m.sections[0];
  EXPECT_EQ(s.kind, SectionKind::kFiniteBuffer);
  EXPECT_EQ(s.depths, (std::vector<unsigned>{1, 4, 32}));
  EXPECT_EQ(s.flow, "credit");
  EXPECT_EQ(s.credit_latency, 3u);
}

TEST(Manifest, FiniteBufferRequiresAscendingDepths) {
  const char* base =
      R"({"id":"fb","title":"F","kind":"finite_buffer","stages":3,
          "depths":%s,"grid":{"points":[{"p":0.7}]}})";
  const auto with = [&](const char* depths) {
    std::string s = base;
    s.replace(s.find("%s"), 2, depths);
    return doc(s);
  };
  EXPECT_THROW(parse(with("[]")), ksw::Error);
  EXPECT_THROW(parse(with("[4,2]")), ksw::Error);
  EXPECT_THROW(parse(with("[2,2]")), ksw::Error);
  EXPECT_THROW(parse(with("[0,2]")), ksw::Error);
  EXPECT_NO_THROW(parse(with("[2,4]")));
  // depths is mandatory for the kind...
  EXPECT_THROW(parse(doc(
                   R"({"id":"fb","title":"F","kind":"finite_buffer",
                       "stages":3,"grid":{"points":[{"p":0.7}]}})")),
               ksw::Error);
  // ...and meaningless anywhere else.
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"stage_convergence",
                       "stages":3,"depths":[2,4],
                       "grid":{"points":[{"p":0.7}]}})")),
               ksw::Error);
}

TEST(Manifest, FiniteBufferFlowVocabulary) {
  EXPECT_THROW(parse(doc(
                   R"({"id":"fb","title":"F","kind":"finite_buffer",
                       "stages":3,"depths":[2],"flow":"wormhole",
                       "grid":{"points":[{"p":0.7}]}})")),
               ksw::Error);
  // credit_latency only makes sense under credit flow control.
  EXPECT_THROW(parse(doc(
                   R"({"id":"fb","title":"F","kind":"finite_buffer",
                       "stages":3,"depths":[2],"flow":"vct",
                       "credit_latency":2,
                       "grid":{"points":[{"p":0.7}]}})")),
               ksw::Error);
  EXPECT_THROW(parse(doc(
                   R"({"id":"fb","title":"F","kind":"finite_buffer",
                       "stages":3,"depths":[2],"flow":"credit",
                       "credit_latency":0,
                       "grid":{"points":[{"p":0.7}]}})")),
               ksw::Error);
}

TEST(Manifest, HotspotPointsOnlyInFiniteBufferSections) {
  EXPECT_NO_THROW(parse(doc(
      R"({"id":"fb","title":"F","kind":"finite_buffer","stages":3,
          "depths":[2],
          "grid":{"points":[{"p":0.5,"hotspot":0.01,"hotspot_target":0}]}})")));
  // Active hot spots have no analytic column in the other section kinds.
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"stage_convergence",
                       "stages":3,
                       "grid":{"points":[{"p":0.5,"hotspot":0.01}]}})")),
               ksw::Error);
  EXPECT_THROW(parse(doc(
                   R"({"id":"g","title":"G","kind":"first_stage",
                       "grid":{"points":[{"p":0.5,"hotspot_target":1}]}})")),
               ksw::Error);
  // The target must name a real port (< k^stages) even when inactive.
  EXPECT_THROW(parse(doc(
                   R"({"id":"fb","title":"F","kind":"finite_buffer",
                       "stages":3,"depths":[2],
                       "grid":{"points":[{"p":0.5,"hotspot":0.01,
                                          "hotspot_target":8}]}})")),
               ksw::Error);
  EXPECT_THROW(parse(doc(
                   R"({"id":"fb","title":"F","kind":"finite_buffer",
                       "stages":3,"depths":[2],
                       "grid":{"points":[{"p":0.5,"hotspot":1.0}]}})")),
               ksw::Error);
}

TEST(Manifest, HotspotPointLabel) {
  const Manifest m = parse(doc(
      R"({"id":"fb","title":"F","kind":"finite_buffer","stages":3,
          "depths":[2],
          "grid":{"points":[{"p":0.5,"hotspot":0.01,"hotspot_target":3}]}})"));
  EXPECT_NE(m.sections[0].points[0].label().find("hot=0.01@3"),
            std::string::npos)
      << m.sections[0].points[0].label();
}

TEST(Manifest, LoadManifestReportsMissingFile) {
  EXPECT_THROW(load_manifest("/nonexistent/path.json"),
               ksw::Error);
}

}  // namespace
}  // namespace ksw::sweep
