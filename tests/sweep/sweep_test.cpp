#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>

#include "io/json.hpp"
#include "par/thread_pool.hpp"
#include "sim/first_stage_sim.hpp"
#include "sweep/checkpoint.hpp"
#include "sweep/emit.hpp"
#include "sweep/manifest.hpp"
#include "sweep/runner.hpp"

namespace ksw::sweep {
namespace {

// A deliberately small manifest covering all three section kinds, sized so
// the whole suite stays fast while still exercising every code path the
// paper manifest uses.
Manifest tiny_manifest() {
  const char* text = R"({
    "schema": "ksw.sweep/v1",
    "name": "tiny",
    "title": "Tiny test book",
    "output_dir": "out",
    "index_path": "out/INDEX.md",
    "defaults": {
      "replicates": 3,
      "measure_cycles": 4000,
      "warmup_cycles": 500,
      "seed": 11,
      "mean_rel_tol": 0.2,
      "var_rel_tol": 0.5,
      "abs_tol": 0.1
    },
    "sections": [
      { "id": "first", "title": "First stage", "kind": "first_stage",
        "grid": { "axes": { "p": [0.5] } } },
      { "id": "stages", "title": "Stages", "kind": "stage_convergence",
        "stages": 3, "measure_cycles": 3000,
        "grid": { "points": [{ "p": 0.5 }] } },
      { "id": "totals", "title": "Totals", "kind": "total_delay",
        "stages": 3, "checkpoints": [2, 3], "measure_cycles": 3000,
        "grid": { "points": [{ "p": 0.5 }] } },
      { "id": "buffers", "title": "Buffers", "kind": "finite_buffer",
        "stages": 3, "depths": [1, 8], "measure_cycles": 3000,
        "grid": { "points": [{ "p": 0.5 }] } }
    ]
  })";
  return parse_manifest(io::Json::parse(text));
}

std::string book_bytes(const Manifest& m, unsigned threads) {
  par::ThreadPool pool(threads);
  const SweepResult result = run_sweep(m, pool);
  std::string all;
  for (const Artifact& a : render_book(m, result)) {
    all += a.path;
    all += '\0';
    all += a.content;
    all += '\0';
  }
  return all;
}

TEST(Runner, FirstStageAgreesWithTheorem1) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  const SectionResult r = run_section(m.sections[0], pool);
  ASSERT_EQ(r.points.size(), 1u);
  const PointResult& pt = r.points[0];
  ASSERT_EQ(pt.cells.size(), 2u);
  // k=2, p=0.5, unit service: E[w] = Var[w] = 1/4 (eqs. 6-7).
  EXPECT_DOUBLE_EQ(pt.cells[0].analytic, 0.25);
  EXPECT_DOUBLE_EQ(pt.cells[1].analytic, 0.25);
  EXPECT_NEAR(pt.cells[0].simulated, 0.25, 0.05);
  EXPECT_GT(pt.cells[0].ci_half, 0.0);
  EXPECT_TRUE(pt.pass());
  EXPECT_GT(pt.samples, 0u);
}

TEST(Runner, StageConvergenceEmitsOneGatePerStagePlusLimit) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  const SectionResult r = run_section(m.sections[1], pool);
  ASSERT_EQ(r.points.size(), 1u);
  const auto& cells = r.points[0].cells;
  ASSERT_EQ(cells.size(), 4u);  // stages 1..3 + ungated eq. 11 limit
  EXPECT_EQ(cells[0].metric, "stage 1 E[w]");
  EXPECT_TRUE(cells[0].gated);
  EXPECT_FALSE(cells[3].gated);
  EXPECT_EQ(r.cells_gated(), 3u);
}

TEST(Runner, TotalDelayEmitsCheckpointCells) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  const SectionResult r = run_section(m.sections[2], pool);
  ASSERT_EQ(r.points.size(), 1u);
  const auto& cells = r.points[0].cells;
  ASSERT_EQ(cells.size(), 6u);  // 2 checkpoints x (mean, var, p95)
  EXPECT_EQ(cells[0].metric, "n=2 E[total]");
  EXPECT_EQ(cells[1].metric, "n=2 Var[total]");
  EXPECT_FALSE(cells[2].gated);  // p95 is informational
  EXPECT_FALSE(cells[1].mean_like);
}

TEST(Runner, FiniteBufferGatesOnlyTheDeepestDepth) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  const SectionResult r = run_section(m.sections[3], pool);
  ASSERT_EQ(r.points.size(), 1u);
  const auto& cells = r.points[0].cells;
  // eq. 12 oracle pin + (accept, E[w last]) per depth.
  ASSERT_EQ(cells.size(), 5u);
  EXPECT_EQ(cells[0].metric, "infinite E[w last] (eq. 12)");
  EXPECT_TRUE(cells[0].gated);
  EXPECT_EQ(cells[1].metric, "depth=1 accept");
  EXPECT_FALSE(cells[1].gated);  // shallow depths are informational
  EXPECT_FALSE(cells[2].gated);
  EXPECT_EQ(cells[3].metric, "depth=8 accept");
  EXPECT_TRUE(cells[3].gated);
  EXPECT_TRUE(cells[4].gated);
  // Depth 1 at rho = 0.5 visibly rejects traffic; depth 8 accepts all of
  // it and reproduces the infinite-queue oracle.
  EXPECT_LT(cells[1].simulated, 1.0);
  EXPECT_DOUBLE_EQ(cells[3].analytic, 1.0);
  EXPECT_TRUE(r.points[0].pass());
}

TEST(Runner, GateWidensWithConfidenceInterval) {
  Tolerance tol;
  tol.mean_rel = 0.0;
  tol.var_rel = 0.0;
  tol.abs = 0.0;
  Cell cell;
  cell.analytic = 1.0;
  cell.simulated = 1.05;
  cell.ci_half = 0.1;
  cell.judge(tol);
  EXPECT_TRUE(cell.pass);
  cell.ci_half = 0.01;
  cell.judge(tol);
  EXPECT_FALSE(cell.pass);
  EXPECT_NEAR(cell.rel_error, 0.05, 1e-12);
}

TEST(Emit, SectionPageShowsGateVerdicts) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  SweepResult result;
  result.sections.push_back(run_section(m.sections[0], pool));
  const std::string md = section_markdown(result.sections[0], m);
  EXPECT_NE(md.find("# First stage"), std::string::npos);
  EXPECT_NE(md.find("| E[w] |"), std::string::npos);
  EXPECT_NE(md.find("±"), std::string::npos);
  EXPECT_NE(md.find("Gates:"), std::string::npos);
  const std::string csv = section_csv(result.sections[0]).to_string();
  EXPECT_NE(csv.find("section,point,metric,analytic,simulated"),
            std::string::npos);
}

TEST(Emit, IndexLinksEverySection) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  const SweepResult result = run_sweep(m, pool);
  const std::string idx = index_markdown(m, result);
  EXPECT_NE(idx.find("first.md"), std::string::npos);
  EXPECT_NE(idx.find("stages.csv"), std::string::npos);
  EXPECT_NE(idx.find("manifests/tiny.json"), std::string::npos);
  const auto book = render_book(m, result);
  ASSERT_EQ(book.size(), 9u);  // 4 x (md + csv) + index
  EXPECT_EQ(book.back().path, "out/INDEX.md");
}

TEST(Emit, BookIsByteIdenticalAcrossThreadCounts) {
  const Manifest m = tiny_manifest();
  const std::string one = book_bytes(m, 1);
  const std::string two = book_bytes(m, 2);
  const std::string eight = book_bytes(m, 8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Emit, NoWallClockLeaksIntoArtifacts) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  const SweepResult result = run_sweep(m, pool);
  for (const Artifact& a : render_book(m, result)) {
    EXPECT_EQ(a.content.find("wall"), std::string::npos) << a.path;
    EXPECT_EQ(a.content.find("date"), std::string::npos) << a.path;
  }
}

TEST(Runner, ProgressStreamReportsSections) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  std::ostringstream progress;
  const SweepResult result = run_sweep(m, pool, &progress);
  EXPECT_TRUE(result.pass());
  EXPECT_NE(progress.str().find("[1/4] first"), std::string::npos);
  EXPECT_NE(progress.str().find("[4/4] buffers"), std::string::npos);
}

std::string temp_journal(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Runner, JournaledRunMatchesPlainRunAndPrunesShards) {
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);
  const SweepResult plain = run_sweep(m, pool, RunOptions{});

  const std::string path = temp_journal("ksw-shard-clean.jsonl");
  Journal::remove_file(path);
  Journal journal(path, "fp");
  RunOptions options;
  options.journal = &journal;
  const SweepResult journaled = run_sweep(m, pool, options);
  Journal::remove_file(path);

  // Recording shards must not perturb a single number, and every shard is
  // pruned once its point completes.
  EXPECT_EQ(journal.shard_count(), 0u);
  ASSERT_EQ(journaled.sections.size(), plain.sections.size());
  for (std::size_t s = 0; s < plain.sections.size(); ++s) {
    ASSERT_EQ(journaled.sections[s].points.size(),
              plain.sections[s].points.size());
    for (std::size_t p = 0; p < plain.sections[s].points.size(); ++p) {
      const PointResult& a = plain.sections[s].points[p];
      const PointResult& b = journaled.sections[s].points[p];
      ASSERT_EQ(a.cells.size(), b.cells.size());
      EXPECT_EQ(a.samples, b.samples);
      for (std::size_t c = 0; c < a.cells.size(); ++c) {
        EXPECT_EQ(a.cells[c].simulated, b.cells[c].simulated);
        EXPECT_EQ(a.cells[c].ci_half, b.cells[c].ci_half);
      }
    }
  }
}

TEST(Runner, ResumeReplaysRecordedReplicateShards) {
  // Prove shards are consumed, not just recorded: poison one replicate of
  // the first-stage point with an absurd waiting time and watch it land in
  // the merged estimate. (Real shards hold exactly what the replicate
  // simulated, so reuse is bit-identical; the poison only makes the reuse
  // observable.)
  const Manifest m = tiny_manifest();
  par::ThreadPool pool(2);

  const std::string path = temp_journal("ksw-shard-poison.jsonl");
  Journal::remove_file(path);
  Journal journal(path, "fp");
  sim::FirstStageResults fake;
  for (int i = 0; i < 1000; ++i) {
    fake.waiting.add(42);
    fake.histogram.add(42);
  }
  fake.queue_depth.add(0);
  fake.messages = 1000;
  journal.record_shard(Journal::ShardKey{"first", 0, "fs", 0}, fake);

  RunOptions options;
  options.journal = &journal;
  const SweepResult resumed = run_sweep(m, pool, options);
  Journal::remove_file(path);

  // Two honest replicates (E[w] ~ 0.25) merged with 1000 samples of 42:
  // the mean is dragged far above anything the real system produces.
  const double mean = resumed.sections[0].points[0].cells[0].simulated;
  EXPECT_GT(mean, 1.0);
}

}  // namespace
}  // namespace ksw::sweep
