#include "sweep/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "support/error.hpp"

namespace ksw::sweep {
namespace {

namespace fs = std::filesystem;

PointResult sample_result() {
  PointResult r;
  r.point.k = 4;
  r.point.p = 0.3;
  r.point.service = "geo:0.25";
  r.label = r.point.label();
  r.samples = 123456789ull;
  Cell cell;
  cell.metric = "E[w]";
  // Deliberately irrational values: the journal must round-trip the exact
  // bit patterns, not a 12-digit decimal rendering.
  cell.analytic = std::sqrt(2.0) / 3.0;
  cell.simulated = M_PI / 7.0;
  cell.ci_half = 1.0 / 3.0;
  cell.rel_error = 0.123456789012345678;
  cell.mean_like = true;
  cell.gated = true;
  cell.pass = false;
  r.cells.push_back(cell);
  cell.metric = "Var[w]";
  cell.mean_like = false;
  cell.pass = true;
  r.cells.push_back(cell);
  return r;
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("ksw-journal-" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()) +
              ".jsonl"))
                .string();
    Journal::remove_file(path_);
  }
  void TearDown() override { Journal::remove_file(path_); }
  std::string path_;
};

TEST(ManifestFingerprint, StableAndSensitive) {
  const std::string text = "{\"schema\":\"ksw.sweep/v1\"}";
  EXPECT_EQ(manifest_fingerprint(text), manifest_fingerprint(text));
  EXPECT_NE(manifest_fingerprint(text), manifest_fingerprint(text + " "));
  EXPECT_FALSE(manifest_fingerprint(text).empty());
}

TEST_F(JournalTest, RoundTripsPointResultsBitExactly) {
  const PointResult original = sample_result();
  {
    Journal journal(path_, "fp");
    journal.record("uniform", 2, original);
  }
  Journal reloaded = Journal::load_or_create(path_, "fp");
  ASSERT_EQ(reloaded.size(), 1u);
  const PointResult* read = reloaded.find("uniform", 2);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->label, original.label);
  EXPECT_EQ(read->samples, original.samples);
  EXPECT_EQ(read->point, original.point);
  ASSERT_EQ(read->cells.size(), original.cells.size());
  for (std::size_t i = 0; i < original.cells.size(); ++i) {
    // Bit-exact, not approximately equal: resumed books must be
    // byte-identical to uninterrupted ones.
    EXPECT_EQ(read->cells[i].metric, original.cells[i].metric);
    EXPECT_EQ(read->cells[i].analytic, original.cells[i].analytic);
    EXPECT_EQ(read->cells[i].simulated, original.cells[i].simulated);
    EXPECT_EQ(read->cells[i].ci_half, original.cells[i].ci_half);
    EXPECT_EQ(read->cells[i].rel_error, original.cells[i].rel_error);
    EXPECT_EQ(read->cells[i].mean_like, original.cells[i].mean_like);
    EXPECT_EQ(read->cells[i].gated, original.cells[i].gated);
    EXPECT_EQ(read->cells[i].pass, original.cells[i].pass);
  }
}

TEST_F(JournalTest, KeysBySectionAndIndex) {
  Journal journal(path_, "fp");
  journal.record("a", 0, sample_result());
  journal.record("b", 0, sample_result());
  journal.record("a", 1, sample_result());
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_TRUE(journal.has("a", 0));
  EXPECT_TRUE(journal.has("b", 0));
  EXPECT_TRUE(journal.has("a", 1));
  EXPECT_FALSE(journal.has("b", 1));
  EXPECT_FALSE(journal.has("c", 0));
}

TEST_F(JournalTest, MissingFileStartsEmpty) {
  const Journal journal = Journal::load_or_create(path_, "fp");
  EXPECT_EQ(journal.size(), 0u);
  // Nothing recorded: no file is created either.
  EXPECT_FALSE(fs::exists(path_));
}

TEST_F(JournalTest, FingerprintMismatchIsUsageError) {
  {
    Journal journal(path_, "old-fingerprint");
    journal.record("uniform", 0, sample_result());
  }
  try {
    Journal::load_or_create(path_, "new-fingerprint");
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUsage);
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST_F(JournalTest, CorruptJournalIsIoError) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "{\"schema\":\"ksw.checkpoint/v1\",\"fingerprint\":\"fp\"}\n";
    out << "this is not json\n";
  }
  try {
    Journal::load_or_create(path_, "fp");
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

TEST_F(JournalTest, FileOnDiskIsAlwaysACompleteSnapshot) {
  Journal journal(path_, "fp");
  journal.record("a", 0, sample_result());
  // Reload after every record: the on-disk state must parse and contain
  // everything recorded so far (atomic whole-file rewrite).
  EXPECT_EQ(Journal::load_or_create(path_, "fp").size(), 1u);
  journal.record("a", 1, sample_result());
  EXPECT_EQ(Journal::load_or_create(path_, "fp").size(), 2u);
}

TEST_F(JournalTest, RemoveFileIsIdempotent) {
  {
    Journal journal(path_, "fp");
    journal.record("a", 0, sample_result());
  }
  EXPECT_TRUE(fs::exists(path_));
  Journal::remove_file(path_);
  EXPECT_FALSE(fs::exists(path_));
  Journal::remove_file(path_);  // second remove: no error
}

}  // namespace
}  // namespace ksw::sweep
