#include "sweep/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/first_stage_sim.hpp"
#include "sim/network.hpp"
#include "stats/moment_tally.hpp"
#include "support/error.hpp"

namespace ksw::sweep {
namespace {

namespace fs = std::filesystem;

PointResult sample_result() {
  PointResult r;
  r.point.k = 4;
  r.point.p = 0.3;
  r.point.service = "geo:0.25";
  r.label = r.point.label();
  r.samples = 123456789ull;
  Cell cell;
  cell.metric = "E[w]";
  // Deliberately irrational values: the journal must round-trip the exact
  // bit patterns, not a 12-digit decimal rendering.
  cell.analytic = std::sqrt(2.0) / 3.0;
  cell.simulated = M_PI / 7.0;
  cell.ci_half = 1.0 / 3.0;
  cell.rel_error = 0.123456789012345678;
  cell.mean_like = true;
  cell.gated = true;
  cell.pass = false;
  r.cells.push_back(cell);
  cell.metric = "Var[w]";
  cell.mean_like = false;
  cell.pass = true;
  r.cells.push_back(cell);
  return r;
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("ksw-journal-" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()) +
              ".jsonl"))
                .string();
    Journal::remove_file(path_);
  }
  void TearDown() override { Journal::remove_file(path_); }
  std::string path_;
};

TEST(ManifestFingerprint, StableAndSensitive) {
  const std::string text = "{\"schema\":\"ksw.sweep/v1\"}";
  EXPECT_EQ(manifest_fingerprint(text), manifest_fingerprint(text));
  EXPECT_NE(manifest_fingerprint(text), manifest_fingerprint(text + " "));
  EXPECT_FALSE(manifest_fingerprint(text).empty());
}

TEST_F(JournalTest, RoundTripsPointResultsBitExactly) {
  const PointResult original = sample_result();
  {
    Journal journal(path_, "fp");
    journal.record("uniform", 2, original);
  }
  Journal reloaded = Journal::load_or_create(path_, "fp");
  ASSERT_EQ(reloaded.size(), 1u);
  const PointResult* read = reloaded.find("uniform", 2);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->label, original.label);
  EXPECT_EQ(read->samples, original.samples);
  EXPECT_EQ(read->point, original.point);
  ASSERT_EQ(read->cells.size(), original.cells.size());
  for (std::size_t i = 0; i < original.cells.size(); ++i) {
    // Bit-exact, not approximately equal: resumed books must be
    // byte-identical to uninterrupted ones.
    EXPECT_EQ(read->cells[i].metric, original.cells[i].metric);
    EXPECT_EQ(read->cells[i].analytic, original.cells[i].analytic);
    EXPECT_EQ(read->cells[i].simulated, original.cells[i].simulated);
    EXPECT_EQ(read->cells[i].ci_half, original.cells[i].ci_half);
    EXPECT_EQ(read->cells[i].rel_error, original.cells[i].rel_error);
    EXPECT_EQ(read->cells[i].mean_like, original.cells[i].mean_like);
    EXPECT_EQ(read->cells[i].gated, original.cells[i].gated);
    EXPECT_EQ(read->cells[i].pass, original.cells[i].pass);
  }
}

TEST_F(JournalTest, KeysBySectionAndIndex) {
  Journal journal(path_, "fp");
  journal.record("a", 0, sample_result());
  journal.record("b", 0, sample_result());
  journal.record("a", 1, sample_result());
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_TRUE(journal.has("a", 0));
  EXPECT_TRUE(journal.has("b", 0));
  EXPECT_TRUE(journal.has("a", 1));
  EXPECT_FALSE(journal.has("b", 1));
  EXPECT_FALSE(journal.has("c", 0));
}

TEST_F(JournalTest, MissingFileStartsEmpty) {
  const Journal journal = Journal::load_or_create(path_, "fp");
  EXPECT_EQ(journal.size(), 0u);
  // Nothing recorded: no file is created either.
  EXPECT_FALSE(fs::exists(path_));
}

TEST_F(JournalTest, FingerprintMismatchIsUsageError) {
  {
    Journal journal(path_, "old-fingerprint");
    journal.record("uniform", 0, sample_result());
  }
  try {
    Journal::load_or_create(path_, "new-fingerprint");
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUsage);
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST_F(JournalTest, CorruptJournalIsIoError) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "{\"schema\":\"ksw.checkpoint/v1\",\"fingerprint\":\"fp\"}\n";
    out << "this is not json\n";
  }
  try {
    Journal::load_or_create(path_, "fp");
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

TEST_F(JournalTest, FileOnDiskIsAlwaysACompleteSnapshot) {
  Journal journal(path_, "fp");
  journal.record("a", 0, sample_result());
  // Reload after every record: the on-disk state must parse and contain
  // everything recorded so far (atomic whole-file rewrite).
  EXPECT_EQ(Journal::load_or_create(path_, "fp").size(), 1u);
  journal.record("a", 1, sample_result());
  EXPECT_EQ(Journal::load_or_create(path_, "fp").size(), 2u);
}

// ---- Replicate shards ------------------------------------------------

/// Tally whose power sums exceed 64 bits: 1500 observations of 2^20 - 1
/// push s3 past 1.5e21, so the decimal 128-bit round-trip is exercised,
/// and one negative value exercises the signed paths.
stats::MomentTally big_tally() {
  stats::MomentTally t;
  for (int i = 0; i < 1500; ++i) t.add((1 << 20) - 1);
  t.add(-3);
  return t;
}

void expect_same_raw(const stats::MomentTally& a, const stats::MomentTally& b) {
  const auto ra = a.raw();
  const auto rb = b.raw();
  EXPECT_EQ(ra.n, rb.n);
  EXPECT_EQ(ra.s1, rb.s1);
  EXPECT_TRUE(ra.s2 == rb.s2);
  EXPECT_TRUE(ra.s3 == rb.s3);
  EXPECT_EQ(ra.min, rb.min);
  EXPECT_EQ(ra.max, rb.max);
}

sim::NetworkResults sample_network_shard() {
  sim::NetworkResults r;
  r.stage_wait.push_back(big_tally());
  r.stage_wait.emplace_back();
  r.stage_wait.back().add(7);
  r.stage_depth.resize(2);
  r.stage_depth[0].add(0);
  r.stage_depth[1].add(5);
  stats::IntHistogram h;
  h.add(0, 100);
  h.add(17, 3);  // sparse: values 1..16 never observed
  r.total_wait.push_back(h);
  r.packets_injected = 123456;
  r.packets_delivered = 123400;
  r.packets_dropped = 56;
  return r;
}

TEST_F(JournalTest, NetworkShardRoundTripsExactly) {
  const sim::NetworkResults original = sample_network_shard();
  const Journal::ShardKey key{"totals", 3, "net", 2};
  {
    Journal journal(path_, "fp");
    journal.record_shard(key, original);
  }
  const Journal reloaded = Journal::load_or_create(path_, "fp");
  EXPECT_EQ(reloaded.shard_count(), 1u);
  const auto read = reloaded.find_network_shard(key);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->stage_wait.size(), 2u);
  expect_same_raw(read->stage_wait[0], original.stage_wait[0]);
  expect_same_raw(read->stage_wait[1], original.stage_wait[1]);
  ASSERT_EQ(read->stage_depth.size(), 2u);
  expect_same_raw(read->stage_depth[1], original.stage_depth[1]);
  ASSERT_EQ(read->total_wait.size(), 1u);
  EXPECT_EQ(read->total_wait[0].total(), original.total_wait[0].total());
  EXPECT_EQ(read->total_wait[0].count(0), 100u);
  EXPECT_EQ(read->total_wait[0].count(1), 0u);
  EXPECT_EQ(read->total_wait[0].count(17), 3u);
  EXPECT_EQ(read->packets_injected, original.packets_injected);
  EXPECT_EQ(read->packets_delivered, original.packets_delivered);
  EXPECT_EQ(read->packets_dropped, original.packets_dropped);
}

TEST_F(JournalTest, FirstStageShardRoundTripsExactly) {
  sim::FirstStageResults original;
  original.waiting = big_tally();
  original.histogram.add(4, 9);
  original.queue_depth.add(1);
  original.messages = 777;
  const Journal::ShardKey key{"uniform", 0, "fs", 1};
  {
    Journal journal(path_, "fp");
    journal.record_shard(key, original);
  }
  const Journal reloaded = Journal::load_or_create(path_, "fp");
  const auto read = reloaded.find_first_stage_shard(key);
  ASSERT_TRUE(read.has_value());
  expect_same_raw(read->waiting, original.waiting);
  expect_same_raw(read->queue_depth, original.queue_depth);
  EXPECT_EQ(read->histogram.count(4), 9u);
  EXPECT_EQ(read->messages, 777u);
}

TEST_F(JournalTest, ShardKeysDistinguishRunAndReplicate) {
  Journal journal(path_, "fp");
  const sim::NetworkResults shard = sample_network_shard();
  journal.record_shard(Journal::ShardKey{"a", 0, "oracle", 0}, shard);
  journal.record_shard(Journal::ShardKey{"a", 0, "depth=4", 0}, shard);
  journal.record_shard(Journal::ShardKey{"a", 0, "oracle", 1}, shard);
  EXPECT_EQ(journal.shard_count(), 3u);
  EXPECT_TRUE(
      journal.find_network_shard({"a", 0, "oracle", 0}).has_value());
  EXPECT_TRUE(
      journal.find_network_shard({"a", 0, "depth=4", 0}).has_value());
  EXPECT_FALSE(
      journal.find_network_shard({"a", 0, "depth=4", 1}).has_value());
  EXPECT_FALSE(
      journal.find_network_shard({"a", 1, "oracle", 0}).has_value());
  EXPECT_FALSE(journal.find_network_shard({"b", 0, "oracle", 0}).has_value());
}

TEST_F(JournalTest, RecordingAPointPrunesItsShards) {
  Journal journal(path_, "fp");
  const sim::NetworkResults shard = sample_network_shard();
  journal.record_shard(Journal::ShardKey{"a", 0, "net", 0}, shard);
  journal.record_shard(Journal::ShardKey{"a", 0, "net", 1}, shard);
  journal.record_shard(Journal::ShardKey{"a", 1, "net", 0}, shard);
  ASSERT_EQ(journal.shard_count(), 3u);
  journal.record("a", 0, sample_result());
  // The completed point's shards are gone; the neighbouring point's stay.
  EXPECT_EQ(journal.shard_count(), 1u);
  EXPECT_TRUE(journal.find_network_shard({"a", 1, "net", 0}).has_value());
  // Prune persists: a reload sees the same state.
  const Journal reloaded = Journal::load_or_create(path_, "fp");
  EXPECT_EQ(reloaded.shard_count(), 1u);
  EXPECT_TRUE(reloaded.has("a", 0));
}

TEST_F(JournalTest, NonShardableResultsAreSkipped) {
  sim::NetworkResults r = sample_network_shard();
  r.stage_hist.emplace_back();  // per-stage histograms: not serialized
  EXPECT_FALSE(Journal::shardable(r));
  Journal journal(path_, "fp");
  journal.record_shard(Journal::ShardKey{"a", 0, "net", 0}, r);
  EXPECT_EQ(journal.shard_count(), 0u);
  EXPECT_FALSE(journal.find_network_shard({"a", 0, "net", 0}).has_value());
}

TEST_F(JournalTest, LoadsV1JournalsWithoutShards) {
  {
    Journal journal(path_, "fp");
    journal.record("uniform", 2, sample_result());
  }
  // Rewrite the header as v1: exactly what an interrupted pre-shard run
  // left behind. It must load (points intact, zero shards).
  std::stringstream buffer;
  buffer << std::ifstream(path_).rdbuf();
  std::string text = buffer.str();
  const auto pos = text.find("ksw.checkpoint/v2");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 17, "ksw.checkpoint/v1");
  std::ofstream(path_, std::ios::binary) << text;
  const Journal reloaded = Journal::load_or_create(path_, "fp");
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.shard_count(), 0u);
  EXPECT_TRUE(reloaded.has("uniform", 2));
}

TEST_F(JournalTest, RemoveFileIsIdempotent) {
  {
    Journal journal(path_, "fp");
    journal.record("a", 0, sample_result());
  }
  EXPECT_TRUE(fs::exists(path_));
  Journal::remove_file(path_);
  EXPECT_FALSE(fs::exists(path_));
  Journal::remove_file(path_);  // second remove: no error
}

}  // namespace
}  // namespace ksw::sweep
