#include "simd/inject.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rng/philox.hpp"
#include "simd/simd.hpp"

namespace ksw::simd {
namespace {

InjectParams params_for(double p, double hotspot, double q,
                        std::uint32_t ports) {
  InjectParams prm;
  prm.key = rng::philox_key(1234);
  prm.thr_arrival = rng::bernoulli_threshold(p);
  prm.thr_hotspot = rng::bernoulli_threshold(hotspot);
  prm.thr_favorite = rng::bernoulli_threshold(q);
  prm.hotspot_target = ports / 2;
  prm.ports = ports;
  return prm;
}

std::vector<std::uint32_t> oracle(const InjectParams& prm, std::int64_t cycle,
                                  std::uint32_t first_port,
                                  std::uint32_t count) {
  std::vector<std::uint32_t> out(count);
  for (std::uint32_t i = 0; i < count; ++i)
    out[i] = inject_one(prm, cycle, first_port + i);
  return out;
}

TEST(Inject, ScalarBatchMatchesPerPortOracle) {
  const InjectParams prm = params_for(0.7, 0.05, 0.1, 64);
  for (const std::int64_t cycle :
       {std::int64_t{0}, std::int64_t{999}, std::int64_t{1} << 40}) {
    std::vector<std::uint32_t> got(64);
    detail::inject_batch_scalar(prm, cycle, 0, 64, got.data());
    EXPECT_EQ(got, oracle(prm, cycle, 0, 64)) << "cycle " << cycle;
  }
}

TEST(Inject, DispatchedBatchMatchesOracleAtEveryCountAndOffset) {
  // Remainder handling: every count from 0 to beyond two vector widths,
  // at an offset that misaligns the port base.
  const InjectParams prm = params_for(0.8, 0.0, 0.0, 256);
  for (std::uint32_t count = 0; count <= 20; ++count) {
    for (const std::uint32_t first : {0u, 3u}) {
      std::vector<std::uint32_t> got(count + 1, 0xdeadbeefu);
      inject_batch(prm, 17, first, count, got.data());
      const auto want = oracle(prm, 17, first, count);
      for (std::uint32_t i = 0; i < count; ++i)
        EXPECT_EQ(got[i], want[i]) << "count " << count << " i " << i;
      // One past the end is never written.
      EXPECT_EQ(got[count], 0xdeadbeefu);
    }
  }
}

TEST(Inject, Avx2MatchesScalarBitForBit) {
#if defined(__x86_64__) || defined(__i386__)
  if (!cpu_supports(Level::kAvx2)) GTEST_SKIP() << "no AVX2 on this CPU";
  // All traffic classes on at once, ports not a multiple of the lane
  // width, and a cycle past 2^32 so the packed high bits participate.
  const InjectParams prm = params_for(0.9, 0.02, 0.3, 27);
  for (const std::int64_t cycle :
       {std::int64_t{0}, std::int64_t{12345}, (std::int64_t{1} << 33) + 5}) {
    std::vector<std::uint32_t> scalar(27), avx2(27);
    detail::inject_batch_scalar(prm, cycle, 0, 27, scalar.data());
    detail::inject_batch_avx2(prm, cycle, 0, 27, avx2.data());
    EXPECT_EQ(scalar, avx2) << "cycle " << cycle;
  }
#else
  GTEST_SKIP() << "non-x86 build";
#endif
}

TEST(Inject, ForcedScalarAndForcedAvx2AgreeThroughDispatch) {
  const InjectParams prm = params_for(0.6, 0.1, 0.2, 32);
  std::vector<std::uint32_t> scalar(32), widest(32);
  {
    ScopedForceLevel force(Level::kScalar);
    EXPECT_EQ(active_level(), Level::kScalar);
    inject_batch(prm, 5, 0, 32, scalar.data());
  }
  {
    ScopedForceLevel force(Level::kAvx2);  // clamps to scalar if unsupported
    inject_batch(prm, 5, 0, 32, widest.data());
  }
  EXPECT_EQ(scalar, widest);
}

TEST(Inject, LevelNamesAreCanonical) {
  EXPECT_EQ(std::string(to_string(Level::kScalar)), "scalar");
  EXPECT_EQ(std::string(to_string(Level::kAvx2)), "avx2");
}

TEST(Inject, ScopedForceLevelRestoresPreviousSelection) {
  const Level before = active_level();
  {
    ScopedForceLevel force(Level::kScalar);
    EXPECT_EQ(active_level(), Level::kScalar);
  }
  EXPECT_EQ(active_level(), before);
}

TEST(Inject, ZeroArrivalProbabilityInjectsNothing) {
  const InjectParams prm = params_for(0.0, 0.0, 0.0, 16);
  std::vector<std::uint32_t> got(16);
  inject_batch(prm, 3, 0, 16, got.data());
  for (const std::uint32_t dst : got) EXPECT_EQ(dst, kNoArrival);
}

TEST(Inject, CertainArrivalAlwaysInjectsInRange) {
  const InjectParams prm = params_for(1.0, 0.0, 0.0, 16);
  std::vector<std::uint32_t> got(16);
  inject_batch(prm, 3, 0, 16, got.data());
  for (const std::uint32_t dst : got) EXPECT_LT(dst, 16u);
}

}  // namespace
}  // namespace ksw::simd
