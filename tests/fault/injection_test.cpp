#include "fault/injection.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "fault/plan.hpp"
#include "io/json.hpp"
#include "support/error.hpp"

namespace ksw::fault {
namespace {

/// Every test leaves the global registry clean, so ordering cannot leak
/// armed sites between cases.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultTest, InertByDefault) {
  EXPECT_FALSE(any_armed());
  EXPECT_FALSE(should_fire("replicate.throw"));
  EXPECT_NO_THROW(maybe_fail("replicate.throw"));
  EXPECT_NO_THROW(maybe_delay("point.slow"));
}

TEST_F(FaultTest, KnownSitesAreDocumented) {
  const auto& sites = known_sites();
  EXPECT_EQ(sites.size(), 6u);
  for (const char* site : {"replicate.throw", "replicate.slow", "point.slow",
                           "io.open", "io.write", "series.near-singular"})
    EXPECT_TRUE(is_known_site(site)) << site;
  EXPECT_FALSE(is_known_site("nope"));
}

TEST_F(FaultTest, ArmRejectsUnknownSite) {
  try {
    arm("definitely.not.a.site");
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUsage);
  }
}

TEST_F(FaultTest, FiresExactlyOnceOnConfiguredVisit) {
  SiteSpec spec;
  spec.fire_at = 3;
  arm("replicate.throw", spec);
  EXPECT_TRUE(any_armed());
  EXPECT_FALSE(should_fire("replicate.throw"));  // visit 1
  EXPECT_FALSE(should_fire("replicate.throw"));  // visit 2
  EXPECT_TRUE(should_fire("replicate.throw"));   // visit 3 fires
  EXPECT_FALSE(should_fire("replicate.throw"));  // never again
  EXPECT_FALSE(any_armed());
}

TEST_F(FaultTest, MaybeFailThrowsInjectedFault) {
  arm("replicate.throw");
  EXPECT_THROW(maybe_fail("replicate.throw"), InjectedFault);
  // Fired once; subsequent visits are clean.
  EXPECT_NO_THROW(maybe_fail("replicate.throw"));
}

TEST_F(FaultTest, InjectedFaultIsNotATypedError) {
  // The site models an unclassified crash, so it must NOT be caught by
  // `catch (const ksw::Error&)` taxonomy handlers.
  arm("replicate.throw");
  try {
    maybe_fail("replicate.throw");
    FAIL() << "expected InjectedFault";
  } catch (const Error&) {
    FAIL() << "InjectedFault must not derive from ksw::Error";
  } catch (const InjectedFault&) {
    SUCCEED();
  }
}

TEST_F(FaultTest, MaybeDelaySleepsForArmedDuration) {
  SiteSpec spec;
  spec.delay_ms = 30;
  arm("point.slow", spec);
  const auto start = std::chrono::steady_clock::now();
  maybe_delay("point.slow");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 25);  // allow scheduler slop below the nominal 30 ms
}

TEST_F(FaultTest, SpecGrammarParsesCountAndDelay) {
  arm_from_spec("replicate.throw@2,point.slow:40");
  EXPECT_TRUE(any_armed());
  EXPECT_FALSE(should_fire("replicate.throw"));  // fire_at=2
  EXPECT_TRUE(should_fire("replicate.throw"));
  EXPECT_TRUE(should_fire("point.slow"));
}

TEST_F(FaultTest, SpecGrammarRejectsGarbage) {
  EXPECT_THROW(arm_from_spec("replicate.throw@"), Error);
  EXPECT_THROW(arm_from_spec("replicate.throw@zero"), Error);
  EXPECT_THROW(arm_from_spec("replicate.throw@0"), Error);
  EXPECT_THROW(arm_from_spec("unknown.site"), Error);
  EXPECT_FALSE(any_armed());
}

TEST_F(FaultTest, PlanArmsSitesStrictly) {
  const io::Json doc = io::Json::parse(R"({
    "schema": "ksw.faults/v1",
    "sites": {
      "replicate.throw": { "fire_at": 2 },
      "point.slow": { "delay_ms": 10 }
    }
  })");
  arm_from_plan(doc);
  EXPECT_TRUE(any_armed());
  EXPECT_FALSE(should_fire("replicate.throw"));
  EXPECT_TRUE(should_fire("replicate.throw"));
}

TEST_F(FaultTest, PlanRejectsSchemaViolations) {
  EXPECT_THROW(arm_from_plan(io::Json::parse(
                   R"({"schema":"ksw.faults/v2","sites":{}})")),
               Error);
  EXPECT_THROW(arm_from_plan(io::Json::parse(
                   R"({"schema":"ksw.faults/v1","sites":{},"x":1})")),
               Error);
  EXPECT_THROW(
      arm_from_plan(io::Json::parse(
          R"({"schema":"ksw.faults/v1","sites":{"nope":{}}})")),
      Error);
  EXPECT_THROW(
      arm_from_plan(io::Json::parse(
          R"({"schema":"ksw.faults/v1",
              "sites":{"point.slow":{"typo_ms":1}}})")),
      Error);
}

TEST_F(FaultTest, LoadPlanReportsMissingFileAsIo) {
  try {
    load_plan("/no/such/plan.json");
    FAIL() << "expected ksw::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

}  // namespace
}  // namespace ksw::fault
