// End-to-end resilience matrix: every fault-injection site driven to its
// documented exit code through the real CLI entry point, plus degraded-
// point reporting, cooperative cancellation, and checkpoint/resume
// byte-identity. (The out-of-process SIGINT variant lives in
// scripts/check_resume.sh; here cancellation is requested through the
// token the signal handler flips.)
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injection.hpp"
#include "kswsim/cli.hpp"
#include "par/cancel.hpp"
#include "support/error.hpp"

namespace ksw::cli {
namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult invoke(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Tiny two-section manifest rooted in a per-test temp directory.
/// Tolerances are wide open: these tests exercise the execution layer,
/// not the physics, so the clean-run exit code must be 0.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    par::global_cancel_token().reset();
    dir_ = fs::temp_directory_path() /
           ("ksw-resilience-" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    manifest_path_ = (dir_ / "manifest.json").string();
    out_dir_ = (dir_ / "book").string();
    index_path_ = (dir_ / "INDEX.md").string();
    std::ofstream manifest(manifest_path_, std::ios::binary);
    manifest
        << R"({"schema":"ksw.sweep/v1","name":"resil","title":"Resilience",)"
        << R"("output_dir":")" << out_dir_ << R"(","index_path":")"
        << index_path_ << R"(",)"
        << R"("defaults":{"replicates":2,"measure_cycles":400,)"
        << R"("warmup_cycles":50,"seed":7,"mean_rel_tol":10,)"
        << R"("var_rel_tol":10,"abs_tol":10},)"
        << R"("sections":[)"
        << R"({"id":"alpha","title":"A","kind":"first_stage",)"
        << R"("grid":{"axes":{"p":[0.3,0.5]}}},)"
        << R"({"id":"beta","title":"B","kind":"first_stage",)"
        << R"("grid":{"points":[{"k":2,"p":0.4}]}}]})";
  }
  void TearDown() override {
    fault::disarm_all();
    par::global_cancel_token().reset();
    fs::remove_all(dir_);
  }

  CliResult reproduce(std::vector<std::string> extra = {}) {
    std::vector<std::string> args = {"reproduce",
                                     "--manifest=" + manifest_path_,
                                     "--threads=2"};
    for (auto& a : extra) args.push_back(std::move(a));
    return invoke(std::move(args));
  }

  [[nodiscard]] fs::path journal_path() const {
    return fs::path(out_dir_) / ".checkpoint.jsonl";
  }

  /// All book artifact bytes, keyed by filename.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> book()
      const {
    std::vector<std::pair<std::string, std::string>> files;
    files.emplace_back("INDEX.md", slurp(index_path_));
    for (const char* name :
         {"alpha.md", "alpha.csv", "beta.md", "beta.csv"})
      files.emplace_back(name, slurp(fs::path(out_dir_) / name));
    return files;
  }

  fs::path dir_;
  std::string manifest_path_;
  std::string out_dir_;
  std::string index_path_;
};

TEST_F(ResilienceTest, CleanRunPassesAndRemovesJournal) {
  const auto r = reproduce();
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_FALSE(fs::exists(journal_path()))
      << "journal must be deleted after a fully clean run";
  for (const auto& [name, content] : book())
    EXPECT_FALSE(content.empty()) << name;
}

TEST_F(ResilienceTest, ThrowingReplicateDegradesPointAndExits7) {
  fault::arm("replicate.throw");
  const auto r = reproduce();
  EXPECT_EQ(r.code, 7) << r.err;
  EXPECT_NE(r.out.find("degraded"), std::string::npos) << r.out;
  const std::string alpha = slurp(fs::path(out_dir_) / "alpha.md");
  EXPECT_NE(alpha.find("DEGRADED"), std::string::npos);
  EXPECT_NE(alpha.find("injected fault"), std::string::npos);
  // The journal survives a degraded run so --resume can retry.
  EXPECT_TRUE(fs::exists(journal_path()));
}

TEST_F(ResilienceTest, ResumeAfterDegradedRunYieldsByteIdenticalBook) {
  // Reference: uninterrupted clean run.
  ASSERT_EQ(reproduce().code, 0);
  const auto reference = book();
  fs::remove_all(out_dir_);
  fs::remove(index_path_);

  // Faulted run: one replicate throws, its point degrades, exit 7.
  fault::arm("replicate.throw");
  ASSERT_EQ(reproduce().code, 7);
  ASSERT_TRUE(fs::exists(journal_path()));
  const std::string degraded_index = slurp(index_path_);
  EXPECT_NE(degraded_index.find("DEGRADED"), std::string::npos);

  // Resume with the fault gone: only the degraded point is recomputed,
  // journaled points replay bit-exactly, and the final book must be
  // byte-identical to the uninterrupted run.
  fault::disarm_all();
  const auto resumed = reproduce({"--resume"});
  EXPECT_EQ(resumed.code, 0) << resumed.err;
  EXPECT_NE(resumed.err.find("resuming"), std::string::npos) << resumed.err;
  const auto after = book();
  ASSERT_EQ(after.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(after[i].first, reference[i].first);
    EXPECT_EQ(after[i].second, reference[i].second)
        << after[i].first << " differs between clean and resumed runs";
  }
  EXPECT_FALSE(fs::exists(journal_path()));
}

TEST_F(ResilienceTest, CancellationExitsInterrupted) {
  par::global_cancel_token().request();
  const auto r = reproduce();
  EXPECT_EQ(r.code, 130);
  EXPECT_NE(r.err.find("interrupted"), std::string::npos) << r.err;
}

TEST_F(ResilienceTest, SoftPointDeadlineDegradesSlowPoint) {
  fault::SiteSpec spec;
  spec.delay_ms = 80;
  fault::arm("point.slow", spec);
  const auto r = reproduce({"--point-timeout=10"});
  EXPECT_EQ(r.code, 7) << r.err;
  const std::string alpha = slurp(fs::path(out_dir_) / "alpha.md");
  EXPECT_NE(alpha.find("deadline"), std::string::npos) << alpha;
  // Without a deadline the same delay is harmless.
  fault::arm("point.slow", spec);
  EXPECT_EQ(reproduce().code, 0);
}

TEST_F(ResilienceTest, InjectedIoFailureExits5WithoutTruncatedArtifacts) {
  // First write of the run (the journal record) fails: typed I/O error.
  fault::arm("io.open");
  const auto r = reproduce();
  EXPECT_EQ(r.code, 5) << r.err;
  EXPECT_NE(r.err.find("io"), std::string::npos) << r.err;
  // Atomic writes: a failed run leaves no partial book page behind.
  for (const char* name : {"alpha.md", "alpha.csv", "beta.md", "beta.csv"})
    EXPECT_FALSE(fs::exists(fs::path(out_dir_) / name)) << name;
}

TEST_F(ResilienceTest, FaultPlanFileArmsSites) {
  const fs::path plan = dir_ / "plan.json";
  {
    std::ofstream out(plan, std::ios::binary);
    out << R"({"schema":"ksw.faults/v1",)"
        << R"("sites":{"replicate.throw":{"fire_at":1}}})";
  }
  const auto r = reproduce({"--fault-plan=" + plan.string()});
  EXPECT_EQ(r.code, 7) << r.err;
  // A malformed plan is a usage error.
  const fs::path bad = dir_ / "bad.json";
  {
    std::ofstream out(bad, std::ios::binary);
    out << R"({"schema":"ksw.faults/v9","sites":{}})";
  }
  fault::disarm_all();
  EXPECT_EQ(reproduce({"--fault-plan=" + bad.string()}).code, 2);
  // A missing plan file is an I/O error.
  EXPECT_EQ(reproduce({"--fault-plan=/no/such/plan.json"}).code, 5);
}

TEST_F(ResilienceTest, NearSingularSeriesExitsNumeric) {
  fault::arm("series.near-singular");
  const auto r = invoke({"analyze", "--k=2", "--p=0.5"});
  EXPECT_EQ(r.code, 6);
  EXPECT_NE(r.err.find("numeric"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("series.near-singular"), std::string::npos) << r.err;
}

TEST_F(ResilienceTest, ResumeFlagValidation) {
  EXPECT_EQ(reproduce({"--resume", "--check"}).code, 2);
  EXPECT_EQ(reproduce({"--resume", "--section=alpha"}).code, 2);
  EXPECT_EQ(reproduce({"--point-timeout=-5"}).code, 2);
}

TEST_F(ResilienceTest, ResumeRejectsStaleJournalAfterManifestEdit) {
  fault::arm("replicate.throw");
  ASSERT_EQ(reproduce().code, 7);
  ASSERT_TRUE(fs::exists(journal_path()));
  fault::disarm_all();
  // Any manifest edit (here: trailing whitespace) shifts the fingerprint.
  {
    std::ofstream manifest(manifest_path_,
                           std::ios::binary | std::ios::app);
    manifest << "\n";
  }
  const auto r = reproduce({"--resume"});
  EXPECT_EQ(r.code, 2) << r.err;
  EXPECT_NE(r.err.find("fingerprint"), std::string::npos) << r.err;
}

}  // namespace
}  // namespace ksw::cli
