#include "kswsim/cli.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace ksw::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult invoke(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

// ---------------------------------------------------------------------------
// ArgMap
// ---------------------------------------------------------------------------

TEST(ArgMap, ParsesKeyValuesFlagsAndPositionals) {
  const auto args =
      ArgMap::parse({"--k=4", "--verbose", "input.txt", "--p=0.25"});
  EXPECT_EQ(args.get_unsigned("k", 0), 4u);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.25);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(ArgMap, FallbacksForMissingKeys) {
  const auto args = ArgMap::parse({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_int("missing", -7), -7);
  EXPECT_FALSE(args.get_flag("missing"));
}

TEST(ArgMap, RejectsMalformedInput) {
  EXPECT_THROW(ArgMap::parse({"--=x"}), ksw::Error);
  const auto args = ArgMap::parse({"--k=abc", "--f=maybe"});
  EXPECT_THROW(args.get_unsigned("k", 1), ksw::Error);
  EXPECT_THROW(args.get_flag("f"), ksw::Error);
}

TEST(ArgMap, TracksUnusedOptions) {
  const auto args = ArgMap::parse({"--used=1", "--stray=2"});
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "stray");
}

TEST(ArgMap, OutOfRangeUnsigned) {
  const auto args = ArgMap::parse({"--n=-3"});
  EXPECT_THROW(args.get_unsigned("n", 0), ksw::Error);
}

// ---------------------------------------------------------------------------
// Service-spec parsing
// ---------------------------------------------------------------------------

TEST(ServiceParse, Deterministic) {
  EXPECT_DOUBLE_EQ(parse_service("det:4").mean(), 4.0);
  EXPECT_TRUE(parse_service("det:1").is_unit());
}

TEST(ServiceParse, Geometric) {
  EXPECT_DOUBLE_EQ(parse_service("geo:0.25").mean(), 4.0);
}

TEST(ServiceParse, MultiSize) {
  EXPECT_DOUBLE_EQ(parse_service("multi:4@0.5,8@0.5").mean(), 6.0);
}

TEST(ServiceParse, RejectsBadSpecs) {
  EXPECT_THROW(parse_service("det"), std::invalid_argument);
  EXPECT_THROW(parse_service("det:0"), std::invalid_argument);
  EXPECT_THROW(parse_service("unknown:3"), std::invalid_argument);
  EXPECT_THROW(parse_service("multi:4@0.5,8"), std::invalid_argument);
  EXPECT_THROW(parse_service("multi:4@0.5,8@0.6"), std::invalid_argument);
  EXPECT_THROW(parse_service("geo:2.0"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Command dispatch and end-to-end behavior
// ---------------------------------------------------------------------------

TEST(Run, NoArgsPrintsUsageWithError) {
  const auto r = invoke({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage: kswsim"), std::string::npos);
}

TEST(Run, HelpExitsZero) {
  EXPECT_EQ(invoke({"--help"}).code, 0);
  EXPECT_EQ(invoke({"analyze", "--help"}).code, 0);
}

TEST(Run, UnknownCommandFails) {
  const auto r = invoke({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Run, UnknownOptionFails) {
  const auto r = invoke({"analyze", "--bogus=1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(Analyze, TableOutputContainsPaperValues) {
  const auto r = invoke({"analyze", "--k=2", "--p=0.5"});
  EXPECT_EQ(r.code, 0);
  // eqs. 6 and 7 at this operating point: both 0.25.
  EXPECT_NE(r.out.find("0.250000"), std::string::npos);
  EXPECT_NE(r.out.find("E[wait]"), std::string::npos);
}

TEST(Analyze, JsonOutputIsWellFormedAndAccurate) {
  const auto r = invoke({"analyze", "--k=2", "--p=0.5", "--format=json"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"mean_wait\": 0.25"), std::string::npos);
  EXPECT_NE(r.out.find("\"rho\": 0.5"), std::string::npos);
}

TEST(Analyze, DistributionOption) {
  const auto r = invoke(
      {"analyze", "--k=2", "--p=0.5", "--distribution=4", "--format=csv"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("P(w=0)"), std::string::npos);
  EXPECT_NE(r.out.find("P(w=3)"), std::string::npos);
}

TEST(Analyze, UnstableLoadReportsError) {
  const auto r = invoke({"analyze", "--k=2", "--p=1.0"});
  EXPECT_EQ(r.code, 6);  // numeric error (saturated queue)
  EXPECT_NE(r.err.find("rho"), std::string::npos);
}

TEST(Analyze, NonuniformRequiresSquareSwitch) {
  const auto r = invoke({"analyze", "--k=4", "--s=2", "--q=0.5"});
  EXPECT_EQ(r.code, 2);  // usage error
  EXPECT_NE(r.err.find("k == s"), std::string::npos);
}

TEST(Network, TableListsAllStagesAndTotals) {
  const auto r = invoke({"network", "--stages=5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("E[total wait]"), std::string::npos);
  EXPECT_NE(r.out.find("p99 wait"), std::string::npos);
}

TEST(Network, CsvHasOneRowPerStagePlusTotal) {
  const auto r = invoke({"network", "--stages=4", "--format=csv"});
  EXPECT_EQ(r.code, 0);
  int lines = 0;
  for (char c : r.out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1 + 4 + 1);  // header + stages + total
}

TEST(Network, CustomQuantiles) {
  const auto r = invoke({"network", "--stages=3", "--quantiles=0.5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("p50 wait"), std::string::npos);
  const auto bad = invoke({"network", "--quantiles=1.5"});
  EXPECT_EQ(bad.code, 2);  // usage error
}

TEST(Network, FractionalQuantileLabels) {
  const auto r = invoke({"network", "--stages=3", "--quantiles=0.999"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("p99.9 wait"), std::string::npos);
  EXPECT_EQ(r.out.find("p100"), std::string::npos);
}

TEST(Simulate, SmallRunProducesStats) {
  const auto r = invoke({"simulate", "--stages=3", "--cycles=2000",
                         "--checkpoints=3", "--format=json"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"per_stage\""), std::string::npos);
  EXPECT_NE(r.out.find("\"totals\""), std::string::npos);
  EXPECT_NE(r.out.find("\"packets_delivered\""), std::string::npos);
}

TEST(Simulate, ReplicatesAreDeterministic) {
  const std::vector<std::string> args = {"simulate",     "--stages=3",
                                         "--cycles=1000", "--replicates=3",
                                         "--threads=2",   "--format=csv"};
  const auto a = invoke(args);
  const auto b = invoke(args);
  EXPECT_EQ(a.code, 0);
  EXPECT_EQ(a.out, b.out);
}

TEST(Simulate, RejectsDuplicateCheckpoints) {
  const auto r = invoke({"simulate", "--stages=3", "--cycles=1000",
                         "--checkpoints=3,3"});
  EXPECT_EQ(r.code, 2);  // usage error
  EXPECT_NE(r.err.find("strictly increasing"), std::string::npos);
}

TEST(Simulate, RejectsUnsortedCheckpoints) {
  const auto r = invoke({"simulate", "--stages=3", "--cycles=1000",
                         "--checkpoints=6,3"});
  EXPECT_EQ(r.code, 2);  // usage error
  EXPECT_NE(r.err.find("strictly increasing"), std::string::npos);
}

TEST(Simulate, MetricsReportOnStdout) {
  if constexpr (!obs::kEnabled)
    GTEST_SKIP() << "observability compiled out";
  const auto r = invoke({"simulate", "--stages=3", "--cycles=1500",
                         "--format=csv", "--metrics-out=-"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"schema\": \"ksw.obs.report/v1\""),
            std::string::npos);
  EXPECT_NE(r.out.find("sim.stage01.occupancy"), std::string::npos);
  EXPECT_NE(r.out.find("sim.stage01.dropped"), std::string::npos);
  EXPECT_NE(r.out.find("\"convergence\""), std::string::npos);
  EXPECT_NE(r.out.find("\"predicted_stage_mean\""), std::string::npos);
  EXPECT_NE(r.out.find("sim.phase.warmup"), std::string::npos);
  // Deterministic by default: no wall-clock fields, no pool section.
  EXPECT_EQ(r.out.find("wall_s"), std::string::npos);
  EXPECT_EQ(r.out.find("\"pool\""), std::string::npos);
}

TEST(Simulate, MetricsReportIdenticalAcrossThreadCounts) {
  const auto run = [](const char* threads) {
    return invoke({"simulate", "--stages=3", "--cycles=1500",
                   "--replicates=3", std::string("--threads=") + threads,
                   "--seed=7", "--format=csv", "--metrics-out=-"});
  };
  const auto a = run("1");
  const auto b = run("8");
  EXPECT_EQ(a.code, 0);
  EXPECT_EQ(b.code, 0);
  EXPECT_EQ(a.out, b.out);
}

TEST(Simulate, ObsWallOptsIntoPoolTelemetry) {
  if constexpr (!obs::kEnabled)
    GTEST_SKIP() << "observability compiled out";
  const auto r = invoke({"simulate", "--stages=3", "--cycles=1000",
                         "--replicates=2", "--threads=2", "--format=csv",
                         "--metrics-out=-", "--obs-wall"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("wall_s"), std::string::npos);
  EXPECT_NE(r.out.find("\"pool\""), std::string::npos);
  EXPECT_NE(r.out.find("pool.tasks"), std::string::npos);
}

TEST(Simulate, HotspotSkewsLastStage) {
  const auto r = invoke({"simulate", "--stages=3", "--cycles=4000",
                         "--p=0.3", "--hotspot=0.3", "--format=csv"});
  EXPECT_EQ(r.code, 0);
}

TEST(Simulate, RejectsOutOfRangeHotspotTarget) {
  // 3 stages of 2x2 switches expose ports 0..7; the check fires eagerly
  // at argument parsing even when --hotspot is 0.
  const auto r = invoke({"simulate", "--stages=3", "--cycles=1000",
                         "--hotspot-target=8"});
  EXPECT_EQ(r.code, 2);  // usage error
  EXPECT_NE(r.err.find("hotspot-target"), std::string::npos);
}

TEST(Simulate, FlowControlOptions) {
  const auto saf = invoke({"simulate", "--stages=3", "--cycles=1500",
                           "--buffer-capacity=2", "--flow=saf",
                           "--format=csv"});
  EXPECT_EQ(saf.code, 0);
  const auto credit = invoke({"simulate", "--stages=3", "--cycles=1500",
                              "--buffer-capacity=2", "--flow=credit",
                              "--credit-latency=3", "--format=csv"});
  EXPECT_EQ(credit.code, 0);
  const auto bad = invoke({"simulate", "--flow=wormhole"});
  EXPECT_EQ(bad.code, 2);  // usage error
  EXPECT_NE(bad.err.find("vct|saf|credit"), std::string::npos);
  // Backpressure schemes need a finite buffer to press against.
  const auto infinite = invoke({"simulate", "--stages=3", "--flow=credit"});
  EXPECT_EQ(infinite.code, 2);
  EXPECT_NE(infinite.err.find("buffer-capacity"), std::string::npos);
  const auto zero = invoke({"simulate", "--stages=3", "--buffer-capacity=2",
                            "--flow=credit", "--credit-latency=0"});
  EXPECT_EQ(zero.code, 2);
}

TEST(Simulate, OmegaTopologySelectable) {
  const auto r = invoke({"simulate", "--stages=3", "--cycles=2000",
                         "--topology=omega", "--format=csv"});
  EXPECT_EQ(r.code, 0);
  const auto bad = invoke({"simulate", "--topology=mesh"});
  EXPECT_EQ(bad.code, 2);  // usage error
  EXPECT_NE(bad.err.find("butterfly|omega"), std::string::npos);
}

// Guard against README/usage drift: every option the simulate parser
// accepts must be mentioned in the help text (and thus in README's table,
// which mirrors it).
TEST(Usage, MentionsEverySimulateOption) {
  const auto r = invoke({"simulate", "--help"});
  ASSERT_EQ(r.code, 0);
  const char* options[] = {
      "--k=",         "--stages=",   "--p=",        "--bulk=",
      "--q=",         "--hotspot=",  "--hotspot-target=",
      "--topology=",  "--service=",  "--cycles=",   "--warmup=",
      "--seed=",      "--replicates=", "--threads=",
      "--buffer-capacity=", "--flow=", "--credit-latency=",
      "--rng=",       "--simd=",
      "--correlations", "--checkpoints=",
      "--metrics-out=", "--obs-stride=", "--obs-trace=", "--obs-wall",
      "--format="};
  for (const char* opt : options)
    EXPECT_NE(r.out.find(opt), std::string::npos)
        << "usage text omits " << opt;
}

// Same guard for the resilience options of reproduce.
TEST(Usage, MentionsEveryReproduceResilienceOption) {
  const auto r = invoke({"reproduce", "--help"});
  ASSERT_EQ(r.code, 0);
  const char* options[] = {"--resume", "--checkpoint=", "--point-timeout=",
                           "--fault-plan=", "--section=", "--check"};
  for (const char* opt : options)
    EXPECT_NE(r.out.find(opt), std::string::npos)
        << "usage text omits " << opt;
  // The exit-code contract is part of the help text.
  EXPECT_NE(r.out.find("exit codes"), std::string::npos);
  EXPECT_NE(r.out.find("130"), std::string::npos);
  EXPECT_NE(r.out.find("KSW_FAULTS"), std::string::npos);
}

// And for the serve command (docs/SERVING.md carries the full spec).
TEST(Usage, MentionsEveryServeOption) {
  const auto r = invoke({"serve", "--bad-flag=1", "--help"});
  ASSERT_EQ(r.code, 0);  // --help wins before flag validation
  const char* options[] = {"--listen=", "--threads=", "--batch=",
                           "--cache-mb=", "--deadline-ms=",
                           "--metrics-out="};
  for (const char* opt : options)
    EXPECT_NE(r.out.find(opt), std::string::npos)
        << "usage text omits " << opt;
  EXPECT_NE(r.out.find("serve"), std::string::npos);
  EXPECT_NE(r.out.find("docs/SERVING.md"), std::string::npos);
  EXPECT_NE(r.out.find("error.kind"), std::string::npos);
}

TEST(Serve, UnknownOptionFailsBeforeReadingInput) {
  // Flag validation happens before the first read, so a typo exits 2
  // immediately instead of blocking on stdin.
  const auto r = invoke({"serve", "--bogus=1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option --bogus"), std::string::npos);
}

TEST(Serve, RejectsOutOfDomainFlags) {
  EXPECT_EQ(invoke({"serve", "--batch=0"}).code, 2);
  EXPECT_EQ(invoke({"serve", "--deadline-ms=-5"}).code, 2);
  EXPECT_EQ(invoke({"serve", "--threads=-1"}).code, 2);
}

TEST(Serve, RejectsMetricsToStdoutInStdinMode) {
  // stdout is the JSONL response channel in stdin mode; an interleaved
  // metrics report would corrupt the protocol stream. Validation runs
  // before the first read, so this fails fast instead of blocking.
  const auto r = invoke({"serve", "--metrics-out=-"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--metrics-out=-"), std::string::npos);
}

TEST(Serve, MetricsIntervalRequiresAMetricsFile) {
  EXPECT_EQ(invoke({"serve", "--metrics-interval-ms=50"}).code, 2);
}

// ---------------------------------------------------------------------------
// trace (docs/OBSERVABILITY.md "Tracing")
// ---------------------------------------------------------------------------

TEST(Trace, RequiresActionInputAndKnownFlags) {
  EXPECT_EQ(invoke({"trace"}).code, 2);
  EXPECT_EQ(invoke({"trace", "frobnicate"}).code, 2);
  EXPECT_EQ(invoke({"trace", "summarize"}).code, 2);          // no --in
  EXPECT_EQ(invoke({"trace", "export", "--in=x"}).code, 2);   // no --chrome
  EXPECT_EQ(invoke({"trace", "summarize", "--in=x", "--bogus=1"}).code, 2);
  // A well-formed invocation over a missing file is an I/O error.
  EXPECT_EQ(invoke({"trace", "summarize", "--in=/no/such/file"}).code, 5);
}

TEST(Trace, SummarizesAndExportsAStream) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ksw_cli_trace_" + std::to_string(::getpid()) + ".jsonl"))
          .string();
  {
    std::ofstream file(path);
    file << R"({"schema":"ksw.trace/v1","spans":2,"dropped":1})" << "\n"
         << R"({"name":"serve.request","trace":"00000000000000aa",)"
         << R"("span":"0000000000000001","parent":null,"start_ns":10,)"
         << R"("dur_ns":5000,"tid":0,"labels":{"kernel":"first_stage"}})"
         << "\n"
         << R"({"name":"serve.request","trace":"00000000000000ab",)"
         << R"("span":"0000000000000002","parent":null,"start_ns":20,)"
         << R"("dur_ns":15000,"tid":1,"labels":{}})"
         << "\n";
  }

  const auto summary = invoke({"trace", "summarize", "--in=" + path});
  EXPECT_EQ(summary.code, 0);
  EXPECT_NE(summary.out.find("serve.request"), std::string::npos);
  EXPECT_NE(summary.out.find("p99_us"), std::string::npos);
  EXPECT_NE(summary.out.find("dropped"), std::string::npos);

  const auto chrome =
      invoke({"trace", "export", "--chrome", "--in=" + path});
  EXPECT_EQ(chrome.code, 0);
  EXPECT_NE(chrome.out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.out.find("\"ph\": \"X\""), std::string::npos);

  std::filesystem::remove(path);
}

TEST(Reproduce, ListPrintsSectionsWithoutRunning) {
  const auto r = invoke({"reproduce",
                         "--manifest=" KSW_MANIFEST_DIR "/paper.json",
                         "--list"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("uniform"), std::string::npos);
  EXPECT_NE(r.out.find("total-delay"), std::string::npos);
  EXPECT_NE(r.out.find("first_stage"), std::string::npos);
}

TEST(Reproduce, PaperManifestParsesAndSmokeSectionRuns) {
  // Bare "--manifest PATH" (space-separated) must work too; ISSUE.md's
  // acceptance command uses that spelling.
  const auto r = invoke({"reproduce", "--manifest",
                         KSW_MANIFEST_DIR "/smoke.json", "--list"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("uniform-smoke"), std::string::npos);
}

TEST(Reproduce, MissingManifestFails) {
  const auto r = invoke({"reproduce", "--manifest=/no/such.json"});
  EXPECT_EQ(r.code, 5);  // I/O error
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Reproduce, ManifestArgumentIsRequired) {
  const auto r = invoke({"reproduce"});
  EXPECT_EQ(r.code, 2);  // usage error
  EXPECT_NE(r.err.find("manifest"), std::string::npos);
}

TEST(Reproduce, UnknownSectionIdFails) {
  const auto r = invoke({"reproduce",
                         "--manifest=" KSW_MANIFEST_DIR "/smoke.json",
                         "--section=nope", "--list"});
  EXPECT_EQ(r.code, 2);  // usage error
  EXPECT_NE(r.err.find("nope"), std::string::npos);
}

TEST(Calibrate, RecoversPaperConstantsApproximately) {
  const auto r =
      invoke({"calibrate", "--cycles=40000", "--format=json"});
  EXPECT_EQ(r.code, 0);
  // mean_coeff should be near 0.8.
  const auto pos = r.out.find("\"mean_coeff\": 0.");
  ASSERT_NE(pos, std::string::npos);
  const double v = std::stod(r.out.substr(pos + 14));
  EXPECT_NEAR(v, 0.8, 0.15);
}

}  // namespace
}  // namespace ksw::cli
