#!/usr/bin/env bash
# Guard the observability layer's hot-path cost, in both places it can
# hurt:
#
#   sim    perf_simulator with telemetry off vs on (default sampling
#          stride) — enabled-mode cycles/sec must stay >= 90% of baseline.
#   serve  perf_serve with request telemetry (--access-log + span tracer)
#          off vs on — cached-path queries/sec must stay >= 90% of
#          baseline, so the per-request access log and spans never cost
#          more than the 10% budget.
#
#   scripts/check_obs_overhead.sh [build-dir] [repeats] [sim|serve|all]
#
# Each mode runs `repeats` times (default 3) and the best rate is
# compared, so scheduler noise biases both sides the same way.
set -euo pipefail

build_dir="${1:-build}"
repeats="${2:-3}"
section="${3:-all}"

best_of() {
  # best_of CMD... — max of `repeats` runs of CMD (CMD prints one number).
  local best=0 v
  for _ in $(seq "$repeats"); do
    v=$("$@")
    if awk -v a="$v" -v b="$best" 'BEGIN { exit !(a > b) }'; then
      best="$v"
    fi
  done
  echo "$best"
}

gate_ratio() {
  # gate_ratio LABEL OFF ON — fail when ON/OFF < 0.90.
  local label="$1" off="$2" on="$3" ratio
  ratio=$(awk -v on="$on" -v off="$off" 'BEGIN { printf "%.4f", on / off }')
  echo "$label overhead check: off=$off, on=$on, ratio=$ratio"
  if awk -v r="$ratio" 'BEGIN { exit !(r < 0.90) }'; then
    echo "FAIL: $label telemetry-enabled throughput below 90% of baseline" >&2
    exit 1
  fi
}

if [ "$section" = "sim" ] || [ "$section" = "all" ]; then
  sim_bin="$build_dir/bench/perf_simulator"
  if [ ! -x "$sim_bin" ]; then
    echo "check_obs_overhead: $sim_bin not found (build the bench targets first)" >&2
    exit 2
  fi
  # cycles_per_sec from the first BENCH_perf.json line (the legacy k=2,
  # stages=8 probe; later lines are the rho sweep).
  sim_probe() {
    "$sim_bin" --perf-only "--obs=$1" |
      sed -n 's/^BENCH_perf\.json .*"cycles_per_sec":\([0-9.eE+-]*\).*/\1/p' |
      head -n 1
  }
  gate_ratio "sim" "$(best_of sim_probe off)" "$(best_of sim_probe on)"
fi

if [ "$section" = "serve" ] || [ "$section" = "all" ]; then
  serve_bin="$build_dir/bench/perf_serve"
  if [ ! -x "$serve_bin" ]; then
    echo "check_obs_overhead: $serve_bin not found (build the bench targets first)" >&2
    exit 2
  fi
  work="$(mktemp -d)"
  trap 'rm -rf "$work"' EXIT
  # qps_cached is the hot path: memoized lookups are where a per-request
  # log row + span could dominate the request's own cost.
  serve_probe() {
    "$serve_bin" --quick --no-gate "$@" |
      sed -n 's/^BENCH_serve\.json .*"qps_cached":\([0-9.eE+-]*\).*/\1/p' |
      head -n 1
  }
  off=$(best_of serve_probe)
  on=$(best_of serve_probe "--access-log=$work/access.jsonl")
  gate_ratio "serve" "$off" "$on"
fi

echo "OK: enabled-mode overhead within the 10% budget"
