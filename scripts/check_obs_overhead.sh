#!/usr/bin/env bash
# Guard the observability layer's hot-path cost: run the perf_simulator
# throughput probe with telemetry off and on (default sampling stride) and
# fail if the enabled-mode throughput drops more than 10%.
#
#   scripts/check_obs_overhead.sh [build-dir] [repeats]
#
# Each mode runs `repeats` times (default 3) and the best cycles/sec is
# compared, so scheduler noise biases both sides the same way.
set -euo pipefail

build_dir="${1:-build}"
repeats="${2:-3}"
bin="$build_dir/bench/perf_simulator"

if [ ! -x "$bin" ]; then
  echo "check_obs_overhead: $bin not found (build the bench targets first)" >&2
  exit 2
fi

# Extract cycles_per_sec from the first BENCH_perf.json line (the legacy
# k=2, stages=8 probe; later lines are the rho sweep) of one probe run.
probe() {
  "$bin" --perf-only "--obs=$1" |
    sed -n 's/^BENCH_perf\.json .*"cycles_per_sec":\([0-9.eE+-]*\).*/\1/p' |
    head -n 1
}

best() {
  local mode="$1" best=0 v
  for _ in $(seq "$repeats"); do
    v=$(probe "$mode")
    if awk -v a="$v" -v b="$best" 'BEGIN { exit !(a > b) }'; then
      best="$v"
    fi
  done
  echo "$best"
}

off=$(best off)
on=$(best on)

ratio=$(awk -v on="$on" -v off="$off" 'BEGIN { printf "%.4f", on / off }')
echo "obs overhead check: off=$off cycles/s, on=$on cycles/s, ratio=$ratio"

if awk -v r="$ratio" 'BEGIN { exit !(r < 0.90) }'; then
  echo "FAIL: telemetry-enabled throughput is below 90% of baseline" >&2
  exit 1
fi
echo "OK: enabled-mode overhead within the 10% budget"
