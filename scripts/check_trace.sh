#!/usr/bin/env bash
# Out-of-process smoke test for the tracing/telemetry layer
# (docs/OBSERVABILITY.md "Tracing", docs/SERVING.md "Request telemetry"):
#
#   - `kswsim serve --access-log` writes one JSONL row per request with a
#     16-char hex trace_id; a client-supplied trace_id is echoed in both
#     the response envelope and the log row; repeated tuples are marked
#     cached.
#   - `kswsim serve --trace-out` writes a ksw.trace/v1 stream that
#     `kswsim trace summarize` can read back.
#   - `--metrics-out=-` in stdin mode is rejected with a usage error
#     (exit 2), and --metrics-interval-ms rewrites the snapshot while the
#     service is still running.
#   - `kswsim reproduce --trace-out` emits reproduce.section /
#     reproduce.point spans, and `kswsim trace export --chrome` turns
#     them into trace-event JSON with a non-empty traceEvents array.
#
#   scripts/check_trace.sh [build-dir]
#
# Assumes the build dir already contains a compiled `kswsim`.
set -euo pipefail

build_dir="${1:-build}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
kswsim="$src_dir/$build_dir/apps/kswsim"
[ -x "$kswsim" ] || {
  echo "check_trace: $kswsim not built (run cmake --build $build_dir)" >&2
  exit 1
}

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== --metrics-out=- is rejected in stdin mode"
got=0
"$kswsim" serve --metrics-out=- </dev/null >/dev/null 2>"$work/reject.log" \
  || got=$?
[ "$got" -eq 2 ] || {
  echo "check_trace: --metrics-out=-: expected exit 2, got $got" >&2
  exit 1
}
grep -q "metrics-out" "$work/reject.log" || {
  echo "check_trace: rejection did not name the offending flag" >&2
  exit 1
}

echo "== serve writes an access log and a trace stream"
# 9 valid requests over 3 distinct tuples (so two thirds hit the cache),
# one with a client-supplied trace_id, plus one malformed line.
for i in $(seq 0 8); do
  if [ "$i" -eq 4 ]; then
    echo "{\"kernel\":\"first_stage\",\"id\":$i,\"params\":{\"p\":0.$((i % 3 + 1))},\"trace_id\":\"00000000deadbeef\"}"
  else
    echo "{\"kernel\":\"first_stage\",\"id\":$i,\"params\":{\"p\":0.$((i % 3 + 1))}}"
  fi
done > "$work/requests.jsonl"
echo 'this is not json' >> "$work/requests.jsonl"

"$kswsim" serve --access-log="$work/access.jsonl" \
  --trace-out="$work/trace.jsonl" \
  < "$work/requests.jsonl" > "$work/responses.jsonl" 2>"$work/serve.log"

rows=$(wc -l < "$work/access.jsonl")
[ "$rows" -eq 10 ] || {
  echo "check_trace: expected 10 access-log rows, got $rows" >&2
  cat "$work/access.jsonl" >&2
  exit 1
}

echo "== client-supplied trace_id is echoed end to end"
grep -q '"trace_id":"00000000deadbeef"' "$work/responses.jsonl" || {
  echo "check_trace: response did not echo the client trace_id" >&2
  exit 1
}
grep -q '"trace_id":"00000000deadbeef"' "$work/access.jsonl" || {
  echo "check_trace: access log did not record the client trace_id" >&2
  exit 1
}

echo "== access rows carry cache and outcome fields"
grep -q '"cached":true' "$work/access.jsonl" || {
  echo "check_trace: no request was recorded as a cache hit" >&2
  exit 1
}
grep -q '"error_kind":"usage"' "$work/access.jsonl" || {
  echo "check_trace: the malformed line has no usage row" >&2
  exit 1
}

if command -v python3 >/dev/null 2>&1; then
  echo "== access log and trace stream are valid JSONL"
  python3 - "$work/access.jsonl" "$work/trace.jsonl" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as fh:
        for n, line in enumerate(fh, 1):
            doc = json.loads(line)
            assert isinstance(doc, dict), f"{path}:{n}: not an object"
with open(sys.argv[1]) as fh:
    for n, line in enumerate(fh, 1):
        row = json.loads(line)
        tid = row["trace_id"]
        assert len(tid) == 16 and int(tid, 16) >= 0, f"row {n}: bad trace_id"
        assert row["queue_us"] >= 0 and row["eval_us"] >= 0, f"row {n}: bad timing"
print("jsonl ok")
EOF
fi

echo "== trace summarize reads the stream back"
"$kswsim" trace summarize --in="$work/trace.jsonl" > "$work/summary.txt"
grep -q "serve.request" "$work/summary.txt" || {
  echo "check_trace: summarize does not show serve.request spans" >&2
  cat "$work/summary.txt" >&2
  exit 1
}
grep -q "p99_us" "$work/summary.txt" || {
  echo "check_trace: summarize table is missing the quantile columns" >&2
  exit 1
}

echo "== --metrics-interval-ms snapshots a live service"
mkfifo "$work/stdin.fifo"
"$kswsim" serve --metrics-out="$work/live.json" --metrics-interval-ms=25 \
  < "$work/stdin.fifo" > "$work/live.jsonl" 2>"$work/live.log" &
pid=$!
exec 3> "$work/stdin.fifo"
printf '{"kernel":"first_stage","id":"live","params":{"p":0.5}}\n' >&3
# Give the ticker a few periods, then check the snapshot exists while the
# service is still up (shutdown has not written it yet).
for _ in $(seq 50); do
  [ -s "$work/live.json" ] && break
  sleep 0.1
done
kill -0 "$pid" 2>/dev/null || {
  echo "check_trace: service exited before the live snapshot was checked" >&2
  cat "$work/live.log" >&2
  exit 1
}
[ -s "$work/live.json" ] || {
  echo "check_trace: no live metrics snapshot after ~5s of ticking" >&2
  exit 1
}
exec 3>&-
wait "$pid" || {
  echo "check_trace: serve exited non-zero after fifo close" >&2
  cat "$work/live.log" >&2
  exit 1
}

echo "== reproduce emits a stitchable trace; export --chrome loads"
"$kswsim" reproduce --manifest="$src_dir/manifests/smoke.json" \
  --out-dir="$work/book" --index="$work/book/INDEX.md" \
  --trace-out="$work/repro.jsonl" >/dev/null 2>&1
grep -q '"name":"reproduce.point"' "$work/repro.jsonl" || {
  echo "check_trace: reproduce trace has no per-point spans" >&2
  exit 1
}
"$kswsim" trace export --chrome --in="$work/repro.jsonl" \
  --out="$work/chrome.json" 2>/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$work/chrome.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "traceEvents is empty"
assert all(e["ph"] == "X" for e in events), "non-complete event in export"
assert any(e["name"] == "reproduce.point" for e in events)
print(f"chrome export ok ({len(events)} events)")
EOF
else
  grep -q '"traceEvents"' "$work/chrome.json" || {
    echo "check_trace: chrome export is missing traceEvents" >&2
    exit 1
  }
fi

echo "check_trace: OK"
