#!/usr/bin/env bash
# Verify that every relative Markdown link in README.md and docs/ points at
# a file that exists. External (scheme://) and intra-page (#anchor) links
# are skipped; a "path#Lnn" anchor is checked against the path part.
#
# Usage: scripts/check_links.sh   (from the repository root)
set -u

fail=0
files=$(find docs -name '*.md' 2>/dev/null; ls README.md 2>/dev/null)

for file in $files; do
  dir=$(dirname "$file")
  # Extract (target) parts of [text](target) links, one per line.
  targets=$(grep -o '](\([^)]*\))' "$file" | sed 's/^](//; s/)$//')
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      *://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN: $file -> $target"
      fail=1
    fi
  done <<EOF
$targets
EOF
done

# Every top-level docs page must be reachable from the docs index, so a
# new guide cannot be added without surfacing it.
if [ -f docs/README.md ]; then
  for page in docs/*.md; do
    base=$(basename "$page")
    [ "$base" = "README.md" ] && continue
    if ! grep -q "($base)" docs/README.md; then
      echo "UNLINKED: $page is not linked from docs/README.md"
      fail=1
    fi
  done
fi

if [ "$fail" -ne 0 ]; then
  echo "link check failed"
  exit 1
fi
echo "all relative links resolve"
