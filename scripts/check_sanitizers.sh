#!/usr/bin/env bash
# Build the whole tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and run the test suite under it. Any heap error or UB diagnostic aborts
# the offending test (-fno-sanitize-recover=all), so a clean ctest run
# means the suite executed sanitizer-clean.
#
#   scripts/check_sanitizers.sh [build-dir] [ctest-regex]
#
# Benchmarks and examples are skipped: they add minutes of build time and
# exercise the same library code the tests already cover.
set -euo pipefail

build_dir="${1:-build-asan}"
filter="${2:-}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$build_dir" -S "$src_dir" \
  -DKSW_SANITIZE=ON \
  -DKSW_BUILD_BENCH=OFF \
  -DKSW_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"

ctest_args=(--test-dir "$build_dir" --output-on-failure -j "$(nproc)")
if [ -n "$filter" ]; then
  ctest_args+=(-R "$filter")
fi

# halt_on_error is the default for ASan; detect_leaks stays on so arena
# bookkeeping mistakes in QueuePool would surface as leak reports.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  ctest "${ctest_args[@]}"

echo "check_sanitizers: OK"
