#!/usr/bin/env bash
# Out-of-process resilience check: a reproduction run killed mid-flight
# with SIGINT must exit 130, leave a checkpoint journal and no truncated
# artifacts, and a follow-up `--resume` run must produce a book that is
# byte-identical to an uninterrupted run. Also sweeps the fault-injection
# matrix end to end, asserting each site maps to its documented exit code.
#
#   scripts/check_resume.sh [build-dir]
#
# Assumes the build dir already contains a compiled `kswsim` (the default
# CMake configuration, with fault injection enabled).
set -euo pipefail

build_dir="${1:-build}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
kswsim="$src_dir/$build_dir/apps/kswsim"
[ -x "$kswsim" ] || {
  echo "check_resume: $kswsim not built (run cmake --build $build_dir)" >&2
  exit 1
}

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Small but multi-point manifest so an interrupted run has work left over.
# Tolerances are wide open: this script tests the execution layer, not the
# physics, so the clean run must gate-pass deterministically.
cat > "$work/manifest.json" <<EOF
{
  "schema": "ksw.sweep/v1",
  "name": "resume-check",
  "title": "Kill/resume smoke",
  "output_dir": "$work/book",
  "index_path": "$work/book/INDEX.md",
  "defaults": {
    "replicates": 2,
    "measure_cycles": 2000,
    "warmup_cycles": 200,
    "seed": 7,
    "mean_rel_tol": 10,
    "var_rel_tol": 10,
    "abs_tol": 10
  },
  "sections": [
    {
      "id": "alpha",
      "title": "A",
      "kind": "first_stage",
      "grid": { "axes": { "p": [0.2, 0.4, 0.6] } }
    },
    {
      "id": "beta",
      "title": "B",
      "kind": "first_stage",
      "grid": { "points": [{ "k": 2, "p": 0.5 }] }
    }
  ]
}
EOF

expect_exit() { # expect_exit <wanted> <label> <cmd...>
  local wanted="$1" label="$2" got=0
  shift 2
  "$@" >/dev/null 2>&1 || got=$?
  if [ "$got" -ne "$wanted" ]; then
    echo "check_resume: $label: expected exit $wanted, got $got" >&2
    exit 1
  fi
}

echo "== clean reference run"
"$kswsim" reproduce --manifest="$work/manifest.json" --threads=2 >/dev/null
cp -r "$work/book" "$work/reference"
rm -rf "$work/book"

echo "== interrupted run (SIGINT mid-flight)"
# point.slow stretches the first grid point by 2 s, guaranteeing the run
# is still in flight when the signal lands 0.3 s in.
KSW_FAULTS=point.slow:2000 \
  "$kswsim" reproduce --manifest="$work/manifest.json" --threads=2 \
  >/dev/null 2>"$work/interrupt.log" &
pid=$!
sleep 0.3
kill -INT "$pid"
got=0
wait "$pid" || got=$?
if [ "$got" -ne 130 ]; then
  echo "check_resume: interrupted run: expected exit 130, got $got" >&2
  cat "$work/interrupt.log" >&2
  exit 1
fi
grep -q "interrupted" "$work/interrupt.log" || {
  echo "check_resume: interrupted run did not report interruption" >&2
  exit 1
}
# No partial artifacts: the book pages are written after the sweep.
for f in alpha.md alpha.csv beta.md beta.csv INDEX.md; do
  if [ -e "$work/book/$f" ]; then
    echo "check_resume: interrupted run left partial artifact $f" >&2
    exit 1
  fi
done

echo "== resumed run"
"$kswsim" reproduce --manifest="$work/manifest.json" --threads=2 --resume \
  >/dev/null
diff -r "$work/reference" "$work/book" || {
  echo "check_resume: resumed book differs from uninterrupted run" >&2
  exit 1
}
if [ -e "$work/book/.checkpoint.jsonl" ]; then
  echo "check_resume: journal not removed after clean resume" >&2
  exit 1
fi

echo "== mid-replicate kill leaves shards; resume replays them"
rm -rf "$work/book"
# replicate.slow stalls the first replicate visited for 3 s. Its sibling
# replicate finishes in milliseconds and lands in the journal as a shard,
# so the SIGINT interrupts the run mid-replicate — the resumed run must
# replay the shard, recompute only the killed replicate (counter-based
# streams make the recomputation exact), and still emit an identical book.
KSW_FAULTS=replicate.slow:3000 \
  "$kswsim" reproduce --manifest="$work/manifest.json" --threads=2 \
  >/dev/null 2>"$work/midrep.log" &
pid=$!
sleep 0.5
kill -INT "$pid"
got=0
wait "$pid" || got=$?
if [ "$got" -ne 130 ]; then
  echo "check_resume: mid-replicate kill: expected exit 130, got $got" >&2
  cat "$work/midrep.log" >&2
  exit 1
fi
grep -q '"shard"' "$work/book/.checkpoint.jsonl" || {
  echo "check_resume: no replicate shards in journal after mid-replicate kill" >&2
  exit 1
}
"$kswsim" reproduce --manifest="$work/manifest.json" --threads=2 --resume \
  >/dev/null
diff -r "$work/reference" "$work/book" || {
  echo "check_resume: book resumed from replicate shards differs" >&2
  exit 1
}
if [ -e "$work/book/.checkpoint.jsonl" ]; then
  echo "check_resume: journal not removed after shard resume" >&2
  exit 1
fi

echo "== fault matrix (documented exit codes)"
rm -rf "$work/book"
expect_exit 7 "replicate.throw -> degraded" \
  env KSW_FAULTS=replicate.throw \
  "$kswsim" reproduce --manifest="$work/manifest.json" --threads=2
rm -rf "$work/book"
expect_exit 5 "io.open -> io error" \
  env KSW_FAULTS=io.open \
  "$kswsim" reproduce --manifest="$work/manifest.json" --threads=2
expect_exit 6 "series.near-singular -> numeric error" \
  env KSW_FAULTS=series.near-singular \
  "$kswsim" analyze --k=2 --p=0.5
expect_exit 2 "unknown fault site -> usage error" \
  env KSW_FAULTS=not.a.site \
  "$kswsim" analyze --k=2 --p=0.5
rm -rf "$work/book"
expect_exit 7 "point.slow + --point-timeout -> degraded" \
  env KSW_FAULTS=point.slow:100 \
  "$kswsim" reproduce --manifest="$work/manifest.json" --threads=2 \
  --point-timeout=10

echo "check_resume: OK"
