#!/usr/bin/env bash
# Render docs/CLI.md from the built binary's actual --help output, so the
# committed reference can never drift from the code. CI runs this with
# --check; regenerate after changing the usage text with:
#
#   scripts/gen_cli_docs.sh [build-dir]          # rewrite docs/CLI.md
#   scripts/gen_cli_docs.sh --check [build-dir]  # diff only (exit 1 on drift)
set -euo pipefail

check=0
if [ "${1:-}" = "--check" ]; then
  check=1
  shift
fi
build_dir="${1:-build}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
kswsim="$src_dir/$build_dir/apps/kswsim"
out="$src_dir/docs/CLI.md"
[ -x "$kswsim" ] || {
  echo "gen_cli_docs: $kswsim not built (run cmake --build $build_dir)" >&2
  exit 1
}

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
{
  echo '# kswsim command-line reference'
  echo
  echo '> Generated from `kswsim --help` by `scripts/gen_cli_docs.sh`.'
  echo '> Do not edit by hand: CI re-renders this page from the built'
  echo '> binary and fails on any difference.'
  echo
  echo '```text'
  "$kswsim" --help
  echo '```'
  echo
  echo 'Per-command details live in the topic guides indexed in'
  echo '[docs/README.md](README.md) — in particular'
  echo '[SERVING.md](SERVING.md) for the `serve` wire protocol and'
  echo '[ROBUSTNESS.md](ROBUSTNESS.md) for the exit-code taxonomy.'
} > "$tmp"

if [ "$check" -eq 1 ]; then
  if ! diff -u "$out" "$tmp"; then
    echo "gen_cli_docs: docs/CLI.md is stale; regenerate with scripts/gen_cli_docs.sh" >&2
    exit 1
  fi
  echo "gen_cli_docs: docs/CLI.md is current"
else
  mv "$tmp" "$out"
  trap - EXIT
  echo "gen_cli_docs: wrote $out"
fi
