#!/usr/bin/env bash
# Out-of-process smoke test for `kswsim serve`: a 50-request JSONL batch
# must produce one response per request in order, repeated tuples must
# return bit-identical result bytes with the cache-hit counter advancing,
# bad lines must answer in-band (exit code stays 0), and SIGTERM during a
# blocked read must exit 130 promptly with the metrics snapshot flushed.
#
#   scripts/check_serve.sh [build-dir]
#
# Assumes the build dir already contains a compiled `kswsim`.
set -euo pipefail

build_dir="${1:-build}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
kswsim="$src_dir/$build_dir/apps/kswsim"
[ -x "$kswsim" ] || {
  echo "check_serve: $kswsim not built (run cmake --build $build_dir)" >&2
  exit 1
}

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== flag validation fails fast"
got=0
"$kswsim" serve --bogus=1 </dev/null >/dev/null 2>&1 || got=$?
[ "$got" -eq 2 ] || {
  echo "check_serve: unknown flag: expected exit 2, got $got" >&2
  exit 1
}

echo "== 50-request batch over stdin"
# 45 valid requests cycling over 5 distinct tuples plus 5 invalid lines.
# --batch=25 splits the stream into two dispatches, so the second half is
# guaranteed to hit the cache regardless of worker count.
for i in $(seq 0 49); do
  case $((i % 10)) in
    7) echo 'this is not json' ;;
    3) echo "{\"kernel\":\"warp_drive\",\"id\":$i}" ;;
    *) echo "{\"kernel\":\"first_stage\",\"id\":$i,\"params\":{\"p\":0.$((i % 5 + 1))}}" ;;
  esac
done > "$work/requests.jsonl"

"$kswsim" serve --batch=25 --metrics-out="$work/metrics.json" \
  < "$work/requests.jsonl" > "$work/responses.jsonl" 2>"$work/serve.log"

lines=$(wc -l < "$work/responses.jsonl")
[ "$lines" -eq 50 ] || {
  echo "check_serve: expected 50 response lines, got $lines" >&2
  exit 1
}
ok=$(grep -c '"ok":true' "$work/responses.jsonl")
bad=$(grep -c '"ok":false' "$work/responses.jsonl")
[ "$ok" -eq 40 ] && [ "$bad" -eq 10 ] || {
  echo "check_serve: expected 40 ok / 10 error responses, got $ok/$bad" >&2
  exit 1
}
grep -q '"kind":"usage"' "$work/responses.jsonl" || {
  echo "check_serve: invalid lines did not answer with error.kind usage" >&2
  exit 1
}

echo "== repeated tuples are bit-identical"
# Requests 0 and 10 share a tuple (p=0.1); their result bytes must match.
r0=$(grep '"id":0,' "$work/responses.jsonl" | sed 's/.*"result"://')
r10=$(grep '"id":10,' "$work/responses.jsonl" | sed 's/.*"result"://')
[ -n "$r0" ] && [ "$r0" = "$r10" ] || {
  echo "check_serve: repeated tuple returned different result bytes" >&2
  echo "  id 0:  $r0" >&2
  echo "  id 10: $r10" >&2
  exit 1
}

echo "== cache hit counter advanced"
hits=$(grep -o '"serve.cache.hits": *[0-9]*' "$work/metrics.json" \
  | grep -o '[0-9]*$')
[ -n "$hits" ] && [ "$hits" -gt 0 ] || {
  echo "check_serve: expected serve.cache.hits > 0, got '${hits:-missing}'" >&2
  cat "$work/metrics.json" >&2
  exit 1
}

echo "== SIGTERM during a blocked read exits 130 with metrics flushed"
rm -f "$work/metrics.json"
mkfifo "$work/stdin.fifo"
"$kswsim" serve --metrics-out="$work/metrics.json" \
  < "$work/stdin.fifo" > "$work/term.jsonl" 2>"$work/term.log" &
pid=$!
# Hold the write end open so the server stays blocked in its poll loop.
exec 3> "$work/stdin.fifo"
printf '{"kernel":"later_stages","id":"pre-term"}\n' >&3
sleep 0.5
kill -TERM "$pid"
got=0
wait "$pid" || got=$?
exec 3>&-
[ "$got" -eq 130 ] || {
  echo "check_serve: SIGTERM: expected exit 130, got $got" >&2
  cat "$work/term.log" >&2
  exit 1
}
grep -q '"id":"pre-term"' "$work/term.jsonl" || {
  echo "check_serve: request before SIGTERM was not answered" >&2
  exit 1
}
grep -q "interrupted" "$work/term.log" || {
  echo "check_serve: SIGTERM exit did not report interruption" >&2
  exit 1
}
[ -s "$work/metrics.json" ] || {
  echo "check_serve: metrics snapshot missing after SIGTERM" >&2
  exit 1
}

echo "check_serve: OK"
