#!/usr/bin/env bash
# Out-of-process smoke test for `kswsim fleet`: the supervisor must come
# up with its workers, serve multiple concurrent TCP clients in per-
# connection request order, advance the cache on repeated tuples (same
# canonical key -> same worker -> same shard cache), reject unknown flags
# with exit 2, and drain cleanly to exit 130 on SIGTERM.
#
#   scripts/check_fleet.sh [build-dir]
#
# Assumes the build dir already contains a compiled `kswsim`.
set -euo pipefail

build_dir="${1:-build}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
kswsim="$src_dir/$build_dir/apps/kswsim"
[ -x "$kswsim" ] || {
  echo "check_fleet: $kswsim not built (run cmake --build $build_dir)" >&2
  exit 1
}

work="$(mktemp -d)"
fleet_pid=""
cleanup() {
  [ -n "$fleet_pid" ] && kill -KILL "$fleet_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== flag validation fails fast"
got=0
"$kswsim" fleet --bogus=1 >/dev/null 2>&1 || got=$?
[ "$got" -eq 2 ] || {
  echo "check_fleet: unknown flag: expected exit 2, got $got" >&2
  exit 1
}
got=0
"$kswsim" fleet --tcp=not-a-port >/dev/null 2>&1 || got=$?
[ "$got" -eq 2 ] || {
  echo "check_fleet: bad --tcp: expected exit 2, got $got" >&2
  exit 1
}

echo "== fleet starts with 2 workers on an ephemeral port"
"$kswsim" fleet --workers=2 --tcp=127.0.0.1:0 \
  --metrics-out="$work/metrics.json" --socket-dir="$work/socks" \
  2>"$work/fleet.log" &
fleet_pid=$!

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^fleet: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$work/fleet.log" | head -n 1)
  [ -n "$port" ] && break
  kill -0 "$fleet_pid" 2>/dev/null || {
    echo "check_fleet: fleet exited during startup" >&2
    cat "$work/fleet.log" >&2
    exit 1
  }
  sleep 0.1
done
[ -n "$port" ] || {
  echo "check_fleet: fleet never announced its port" >&2
  cat "$work/fleet.log" >&2
  exit 1
}
workers=$(grep -c '^fleet: worker [0-9]* pid ' "$work/fleet.log")
[ "$workers" -eq 2 ] || {
  echo "check_fleet: expected 2 worker banner lines, got $workers" >&2
  exit 1
}

echo "== two concurrent TCP clients, 20 requests each, in order"
client() {
  local tag="$1"
  local out="$2"
  exec 9<>"/dev/tcp/127.0.0.1/$port"
  for i in $(seq 0 19); do
    # Repeat 5 tuples per client so most requests are cache hits.
    printf '{"kernel":"first_stage","id":"%s-%d","params":{"p":0.%d}}\n' \
      "$tag" "$i" $((i % 5 + 1)) >&9
  done
  head -n 20 <&9 > "$out"
  exec 9<&- 9>&-
}
client a "$work/a.jsonl" &
a_pid=$!
client b "$work/b.jsonl" &
b_pid=$!
wait "$a_pid" "$b_pid"

for tag in a b; do
  lines=$(wc -l < "$work/$tag.jsonl")
  [ "$lines" -eq 20 ] || {
    echo "check_fleet: client $tag got $lines of 20 responses" >&2
    exit 1
  }
  for i in $(seq 0 19); do
    sed -n "$((i + 1))p" "$work/$tag.jsonl" | grep -q "\"id\":\"$tag-$i\"" || {
      echo "check_fleet: client $tag response $i out of order" >&2
      exit 1
    }
  done
  ok=$(grep -c '"ok":true' "$work/$tag.jsonl")
  [ "$ok" -eq 20 ] || {
    echo "check_fleet: client $tag expected 20 ok responses, got $ok" >&2
    exit 1
  }
done

echo "== repeated tuples are served from the shard cache"
hits=$(grep -c '"cached":true' "$work/a.jsonl" "$work/b.jsonl" | \
  awk -F: '{s+=$2} END {print s}')
[ "$hits" -gt 0 ] || {
  echo "check_fleet: no cached responses across 40 repeated-tuple requests" >&2
  exit 1
}

echo "== SIGTERM drains cleanly to exit 130 with metrics flushed"
kill -TERM "$fleet_pid"
got=0
wait "$fleet_pid" || got=$?
fleet_pid=""
[ "$got" -eq 130 ] || {
  echo "check_fleet: SIGTERM: expected exit 130, got $got" >&2
  cat "$work/fleet.log" >&2
  exit 1
}
grep -q "fleet: all workers stopped" "$work/fleet.log" || {
  echo "check_fleet: workers were not reaped on shutdown" >&2
  cat "$work/fleet.log" >&2
  exit 1
}
[ -s "$work/metrics.json" ] || {
  echo "check_fleet: metrics snapshot missing after SIGTERM" >&2
  exit 1
}
grep -q '"fleet.requests"' "$work/metrics.json" || {
  echo "check_fleet: metrics snapshot is missing fleet counters" >&2
  cat "$work/metrics.json" >&2
  exit 1
}
remaining=$(find "$work/socks" -name '*.sock' 2>/dev/null | wc -l)
[ "$remaining" -eq 0 ] || {
  echo "check_fleet: $remaining worker sockets left behind" >&2
  exit 1
}

echo "check_fleet: OK"
