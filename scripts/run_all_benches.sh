#!/usr/bin/env bash
# Regenerate every paper table/figure and the extension studies.
#
#   scripts/run_all_benches.sh [build-dir] [extra bench args...]
#
# Pass --quick after the build dir for a 10x shorter smoke run, e.g.
#   scripts/run_all_benches.sh build --quick
set -euo pipefail

build_dir="${1:-build}"
shift || true

benches=(
  table01_rho_sweep
  table02_switch_size
  table03_message_size
  table04_multisize
  table05_nonuniform
  table06_correlations
  table07_12_totals
  fig3_8_distributions
  ext_bulk_arrivals
  ext_geometric_mm1
  ext_finite_buffers
  ext_calibration
  ext_convolution
  ext_hotspot
  perf_simulator
)

for b in "${benches[@]}"; do
  echo "===== bench/$b ====="
  if [ "$b" = perf_simulator ]; then
    "$build_dir/bench/$b"
  else
    "$build_dir/bench/$b" "$@"
  fi
  echo
done

echo "===== scripts/check_obs_overhead.sh ====="
"$(dirname "$0")/check_obs_overhead.sh" "$build_dir"
