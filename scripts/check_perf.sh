#!/usr/bin/env bash
# Simulator throughput regression gate.
#
#   scripts/check_perf.sh [--update] [build-dir]
#
# Runs the perf_simulator throughput probes, appends the fresh
# BENCH_perf.json lines to <build-dir>/BENCH_perf.runs.jsonl (a local
# run history, not committed), and fails when any probe's packets/sec
# drops more than 20% below the checked-in baseline (BENCH_perf.json at
# the repo root). The comparison itself runs inside perf_simulator
# (--baseline/--gate), so the binary prints the same report with or
# without CI.
#
#   --update   rewrite the repo-root baseline from this machine's run
#              (do this deliberately, on the machine the numbers are
#              for; see docs/PERFORMANCE.md "Updating a baseline").
set -euo pipefail

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  shift
fi
build_dir="${1:-build}"
src_dir="$(cd "$(dirname "$0")/.." && pwd)"
bin="$src_dir/$build_dir/bench/perf_simulator"
baseline="$src_dir/BENCH_perf.json"
[ -x "$bin" ] || {
  echo "check_perf: $bin not built (build the bench targets first)" >&2
  exit 2
}

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

if [ "$update" -eq 1 ]; then
  (cd "$src_dir" && "$bin" --perf-only "--baseline=$baseline") | tee "$out"
  sed -n 's/^BENCH_perf\.json //p' "$out" > "$baseline"
  echo "check_perf: wrote $(wc -l < "$baseline" | tr -d ' ') probe lines to $baseline"
  exit 0
fi

status=0
(cd "$src_dir" && "$bin" --perf-only "--baseline=$baseline" --gate) \
  | tee "$out" || status=$?
# Keep a local history of every gated run for trend spelunking.
sed -n 's/^BENCH_perf\.json /BENCH_perf.json /p' "$out" \
  >> "$src_dir/$build_dir/BENCH_perf.runs.jsonl"
if [ "$status" -ne 0 ]; then
  echo "check_perf: FAILED (exit $status) — see probe report above" >&2
  exit "$status"
fi
echo "check_perf: OK"
