# Empty dependencies file for kswsim.
# This may be replaced when dependencies are built.
