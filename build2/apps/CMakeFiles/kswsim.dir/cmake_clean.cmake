file(REMOVE_RECURSE
  "CMakeFiles/kswsim.dir/kswsim/main.cpp.o"
  "CMakeFiles/kswsim.dir/kswsim/main.cpp.o.d"
  "kswsim"
  "kswsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kswsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
