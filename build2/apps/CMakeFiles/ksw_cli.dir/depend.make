# Empty dependencies file for ksw_cli.
# This may be replaced when dependencies are built.
