file(REMOVE_RECURSE
  "libksw_cli.a"
)
