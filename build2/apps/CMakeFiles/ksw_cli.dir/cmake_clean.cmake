file(REMOVE_RECURSE
  "CMakeFiles/ksw_cli.dir/kswsim/args.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/args.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_analyze.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_analyze.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_calibrate.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_calibrate.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_fleet.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_fleet.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_network.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_network.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_reproduce.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_reproduce.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_serve.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_serve.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_simulate.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_simulate.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_trace.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/cmd_trace.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/run.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/run.cpp.o.d"
  "CMakeFiles/ksw_cli.dir/kswsim/service_parse.cpp.o"
  "CMakeFiles/ksw_cli.dir/kswsim/service_parse.cpp.o.d"
  "libksw_cli.a"
  "libksw_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
