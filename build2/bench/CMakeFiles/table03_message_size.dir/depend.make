# Empty dependencies file for table03_message_size.
# This may be replaced when dependencies are built.
