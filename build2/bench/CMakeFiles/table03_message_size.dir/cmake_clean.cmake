file(REMOVE_RECURSE
  "CMakeFiles/table03_message_size.dir/table03_message_size.cpp.o"
  "CMakeFiles/table03_message_size.dir/table03_message_size.cpp.o.d"
  "table03_message_size"
  "table03_message_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
