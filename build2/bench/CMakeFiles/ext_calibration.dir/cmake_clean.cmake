file(REMOVE_RECURSE
  "CMakeFiles/ext_calibration.dir/ext_calibration.cpp.o"
  "CMakeFiles/ext_calibration.dir/ext_calibration.cpp.o.d"
  "ext_calibration"
  "ext_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
