# Empty dependencies file for ext_calibration.
# This may be replaced when dependencies are built.
