file(REMOVE_RECURSE
  "CMakeFiles/table02_switch_size.dir/table02_switch_size.cpp.o"
  "CMakeFiles/table02_switch_size.dir/table02_switch_size.cpp.o.d"
  "table02_switch_size"
  "table02_switch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_switch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
