# Empty dependencies file for table02_switch_size.
# This may be replaced when dependencies are built.
