# Empty dependencies file for table05_nonuniform.
# This may be replaced when dependencies are built.
