file(REMOVE_RECURSE
  "CMakeFiles/table05_nonuniform.dir/table05_nonuniform.cpp.o"
  "CMakeFiles/table05_nonuniform.dir/table05_nonuniform.cpp.o.d"
  "table05_nonuniform"
  "table05_nonuniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_nonuniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
