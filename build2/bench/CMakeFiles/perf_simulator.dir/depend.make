# Empty dependencies file for perf_simulator.
# This may be replaced when dependencies are built.
