file(REMOVE_RECURSE
  "CMakeFiles/perf_simulator.dir/perf_simulator.cpp.o"
  "CMakeFiles/perf_simulator.dir/perf_simulator.cpp.o.d"
  "perf_simulator"
  "perf_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
