# Empty compiler generated dependencies file for ext_hotspot.
# This may be replaced when dependencies are built.
