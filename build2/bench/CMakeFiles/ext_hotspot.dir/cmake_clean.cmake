file(REMOVE_RECURSE
  "CMakeFiles/ext_hotspot.dir/ext_hotspot.cpp.o"
  "CMakeFiles/ext_hotspot.dir/ext_hotspot.cpp.o.d"
  "ext_hotspot"
  "ext_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
