# Empty compiler generated dependencies file for table06_correlations.
# This may be replaced when dependencies are built.
