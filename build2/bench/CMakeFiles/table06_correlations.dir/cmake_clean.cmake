file(REMOVE_RECURSE
  "CMakeFiles/table06_correlations.dir/table06_correlations.cpp.o"
  "CMakeFiles/table06_correlations.dir/table06_correlations.cpp.o.d"
  "table06_correlations"
  "table06_correlations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
