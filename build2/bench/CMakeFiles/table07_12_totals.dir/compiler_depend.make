# Empty compiler generated dependencies file for table07_12_totals.
# This may be replaced when dependencies are built.
