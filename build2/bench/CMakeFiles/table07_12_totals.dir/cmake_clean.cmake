file(REMOVE_RECURSE
  "CMakeFiles/table07_12_totals.dir/table07_12_totals.cpp.o"
  "CMakeFiles/table07_12_totals.dir/table07_12_totals.cpp.o.d"
  "table07_12_totals"
  "table07_12_totals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_12_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
