# Empty dependencies file for fig3_8_distributions.
# This may be replaced when dependencies are built.
