file(REMOVE_RECURSE
  "CMakeFiles/perf_serve_fleet.dir/perf_serve_fleet.cpp.o"
  "CMakeFiles/perf_serve_fleet.dir/perf_serve_fleet.cpp.o.d"
  "perf_serve_fleet"
  "perf_serve_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_serve_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
