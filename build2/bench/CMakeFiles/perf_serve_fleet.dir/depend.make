# Empty dependencies file for perf_serve_fleet.
# This may be replaced when dependencies are built.
