# Empty compiler generated dependencies file for table04_multisize.
# This may be replaced when dependencies are built.
