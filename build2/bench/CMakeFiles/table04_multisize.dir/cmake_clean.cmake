file(REMOVE_RECURSE
  "CMakeFiles/table04_multisize.dir/table04_multisize.cpp.o"
  "CMakeFiles/table04_multisize.dir/table04_multisize.cpp.o.d"
  "table04_multisize"
  "table04_multisize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_multisize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
