file(REMOVE_RECURSE
  "CMakeFiles/table01_rho_sweep.dir/table01_rho_sweep.cpp.o"
  "CMakeFiles/table01_rho_sweep.dir/table01_rho_sweep.cpp.o.d"
  "table01_rho_sweep"
  "table01_rho_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_rho_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
