# Empty compiler generated dependencies file for table01_rho_sweep.
# This may be replaced when dependencies are built.
