# Empty compiler generated dependencies file for ext_bulk_arrivals.
# This may be replaced when dependencies are built.
