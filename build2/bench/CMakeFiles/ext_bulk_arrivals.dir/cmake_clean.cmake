file(REMOVE_RECURSE
  "CMakeFiles/ext_bulk_arrivals.dir/ext_bulk_arrivals.cpp.o"
  "CMakeFiles/ext_bulk_arrivals.dir/ext_bulk_arrivals.cpp.o.d"
  "ext_bulk_arrivals"
  "ext_bulk_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bulk_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
