file(REMOVE_RECURSE
  "CMakeFiles/ext_geometric_mm1.dir/ext_geometric_mm1.cpp.o"
  "CMakeFiles/ext_geometric_mm1.dir/ext_geometric_mm1.cpp.o.d"
  "ext_geometric_mm1"
  "ext_geometric_mm1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_geometric_mm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
