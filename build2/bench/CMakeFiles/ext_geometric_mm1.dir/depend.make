# Empty dependencies file for ext_geometric_mm1.
# This may be replaced when dependencies are built.
