file(REMOVE_RECURSE
  "CMakeFiles/ext_finite_buffers.dir/ext_finite_buffers.cpp.o"
  "CMakeFiles/ext_finite_buffers.dir/ext_finite_buffers.cpp.o.d"
  "ext_finite_buffers"
  "ext_finite_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_finite_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
