# Empty compiler generated dependencies file for ext_finite_buffers.
# This may be replaced when dependencies are built.
