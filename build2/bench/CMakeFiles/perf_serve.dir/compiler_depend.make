# Empty compiler generated dependencies file for perf_serve.
# This may be replaced when dependencies are built.
