file(REMOVE_RECURSE
  "CMakeFiles/perf_serve.dir/perf_serve.cpp.o"
  "CMakeFiles/perf_serve.dir/perf_serve.cpp.o.d"
  "perf_serve"
  "perf_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
