# Empty dependencies file for ext_convolution.
# This may be replaced when dependencies are built.
