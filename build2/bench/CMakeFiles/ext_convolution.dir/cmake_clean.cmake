file(REMOVE_RECURSE
  "CMakeFiles/ext_convolution.dir/ext_convolution.cpp.o"
  "CMakeFiles/ext_convolution.dir/ext_convolution.cpp.o.d"
  "ext_convolution"
  "ext_convolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
