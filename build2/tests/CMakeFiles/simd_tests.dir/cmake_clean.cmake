file(REMOVE_RECURSE
  "CMakeFiles/simd_tests.dir/simd/inject_test.cpp.o"
  "CMakeFiles/simd_tests.dir/simd/inject_test.cpp.o.d"
  "simd_tests"
  "simd_tests.pdb"
  "simd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
