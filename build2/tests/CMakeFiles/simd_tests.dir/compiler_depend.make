# Empty compiler generated dependencies file for simd_tests.
# This may be replaced when dependencies are built.
