
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/atomic_test.cpp" "tests/CMakeFiles/io_tests.dir/io/atomic_test.cpp.o" "gcc" "tests/CMakeFiles/io_tests.dir/io/atomic_test.cpp.o.d"
  "/root/repo/tests/io/csv_test.cpp" "tests/CMakeFiles/io_tests.dir/io/csv_test.cpp.o" "gcc" "tests/CMakeFiles/io_tests.dir/io/csv_test.cpp.o.d"
  "/root/repo/tests/io/json_test.cpp" "tests/CMakeFiles/io_tests.dir/io/json_test.cpp.o" "gcc" "tests/CMakeFiles/io_tests.dir/io/json_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/sweep/CMakeFiles/ksw_sweep.dir/DependInfo.cmake"
  "/root/repo/build2/src/fleet/CMakeFiles/ksw_fleet.dir/DependInfo.cmake"
  "/root/repo/build2/src/serve/CMakeFiles/ksw_serve.dir/DependInfo.cmake"
  "/root/repo/build2/src/sim/CMakeFiles/ksw_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/simd/CMakeFiles/ksw_simd.dir/DependInfo.cmake"
  "/root/repo/build2/src/rng/CMakeFiles/ksw_rng.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/ksw_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/ksw_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/pgf/CMakeFiles/ksw_pgf.dir/DependInfo.cmake"
  "/root/repo/build2/src/par/CMakeFiles/ksw_par.dir/DependInfo.cmake"
  "/root/repo/build2/src/tables/CMakeFiles/ksw_tables.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/ksw_obs.dir/DependInfo.cmake"
  "/root/repo/build2/src/io/CMakeFiles/ksw_io.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/ksw_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/ksw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
