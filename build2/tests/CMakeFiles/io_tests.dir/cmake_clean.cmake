file(REMOVE_RECURSE
  "CMakeFiles/io_tests.dir/io/atomic_test.cpp.o"
  "CMakeFiles/io_tests.dir/io/atomic_test.cpp.o.d"
  "CMakeFiles/io_tests.dir/io/csv_test.cpp.o"
  "CMakeFiles/io_tests.dir/io/csv_test.cpp.o.d"
  "CMakeFiles/io_tests.dir/io/json_test.cpp.o"
  "CMakeFiles/io_tests.dir/io/json_test.cpp.o.d"
  "io_tests"
  "io_tests.pdb"
  "io_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
