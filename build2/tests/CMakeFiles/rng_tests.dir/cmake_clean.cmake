file(REMOVE_RECURSE
  "CMakeFiles/rng_tests.dir/rng/philox_test.cpp.o"
  "CMakeFiles/rng_tests.dir/rng/philox_test.cpp.o.d"
  "CMakeFiles/rng_tests.dir/rng/xoshiro_test.cpp.o"
  "CMakeFiles/rng_tests.dir/rng/xoshiro_test.cpp.o.d"
  "rng_tests"
  "rng_tests.pdb"
  "rng_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
