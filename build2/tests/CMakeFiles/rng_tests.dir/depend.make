# Empty dependencies file for rng_tests.
# This may be replaced when dependencies are built.
