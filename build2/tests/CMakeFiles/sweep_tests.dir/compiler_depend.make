# Empty compiler generated dependencies file for sweep_tests.
# This may be replaced when dependencies are built.
