file(REMOVE_RECURSE
  "CMakeFiles/sweep_tests.dir/sweep/checkpoint_test.cpp.o"
  "CMakeFiles/sweep_tests.dir/sweep/checkpoint_test.cpp.o.d"
  "CMakeFiles/sweep_tests.dir/sweep/manifest_test.cpp.o"
  "CMakeFiles/sweep_tests.dir/sweep/manifest_test.cpp.o.d"
  "CMakeFiles/sweep_tests.dir/sweep/sweep_test.cpp.o"
  "CMakeFiles/sweep_tests.dir/sweep/sweep_test.cpp.o.d"
  "sweep_tests"
  "sweep_tests.pdb"
  "sweep_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
