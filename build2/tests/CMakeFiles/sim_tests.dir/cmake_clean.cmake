file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/engine_equivalence_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/engine_equivalence_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/first_stage_sim_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/first_stage_sim_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/flow_control_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/flow_control_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/network_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/network_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/queue_pool_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/queue_pool_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/replicate_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/replicate_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/ring_queue_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/ring_queue_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/service_spec_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/service_spec_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/topology_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/topology_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
