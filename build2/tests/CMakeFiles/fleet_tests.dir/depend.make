# Empty dependencies file for fleet_tests.
# This may be replaced when dependencies are built.
