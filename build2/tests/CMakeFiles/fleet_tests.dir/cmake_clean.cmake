file(REMOVE_RECURSE
  "CMakeFiles/fleet_tests.dir/fleet/fleet_e2e_test.cpp.o"
  "CMakeFiles/fleet_tests.dir/fleet/fleet_e2e_test.cpp.o.d"
  "CMakeFiles/fleet_tests.dir/fleet/routing_test.cpp.o"
  "CMakeFiles/fleet_tests.dir/fleet/routing_test.cpp.o.d"
  "fleet_tests"
  "fleet_tests.pdb"
  "fleet_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
