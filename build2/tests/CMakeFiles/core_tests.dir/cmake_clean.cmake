file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/calibration_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/calibration_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/closed_forms_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/closed_forms_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/first_stage_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/first_stage_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/later_stages_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/later_stages_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/mg1_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/mg1_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/models_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/models_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/paper_anchors_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/paper_anchors_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/property_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/property_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/total_delay_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/total_delay_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/total_distribution_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/total_distribution_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
