file(REMOVE_RECURSE
  "CMakeFiles/obs_tests.dir/obs/registry_test.cpp.o"
  "CMakeFiles/obs_tests.dir/obs/registry_test.cpp.o.d"
  "CMakeFiles/obs_tests.dir/obs/report_test.cpp.o"
  "CMakeFiles/obs_tests.dir/obs/report_test.cpp.o.d"
  "CMakeFiles/obs_tests.dir/obs/span_test.cpp.o"
  "CMakeFiles/obs_tests.dir/obs/span_test.cpp.o.d"
  "obs_tests"
  "obs_tests.pdb"
  "obs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
