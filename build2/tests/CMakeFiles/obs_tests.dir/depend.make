# Empty dependencies file for obs_tests.
# This may be replaced when dependencies are built.
