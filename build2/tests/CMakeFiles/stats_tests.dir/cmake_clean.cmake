file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/accumulator_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/accumulator_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/confidence_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/covariance_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/covariance_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/gamma_distribution_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/gamma_distribution_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/goodness_of_fit_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/goodness_of_fit_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/moment_tally_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/moment_tally_test.cpp.o.d"
  "CMakeFiles/stats_tests.dir/stats/special_functions_test.cpp.o"
  "CMakeFiles/stats_tests.dir/stats/special_functions_test.cpp.o.d"
  "stats_tests"
  "stats_tests.pdb"
  "stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
