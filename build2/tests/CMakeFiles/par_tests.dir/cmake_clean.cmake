file(REMOVE_RECURSE
  "CMakeFiles/par_tests.dir/par/thread_pool_test.cpp.o"
  "CMakeFiles/par_tests.dir/par/thread_pool_test.cpp.o.d"
  "par_tests"
  "par_tests.pdb"
  "par_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/par_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
