# Empty dependencies file for par_tests.
# This may be replaced when dependencies are built.
