# Empty dependencies file for pgf_tests.
# This may be replaced when dependencies are built.
