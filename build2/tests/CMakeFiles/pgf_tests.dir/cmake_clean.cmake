file(REMOVE_RECURSE
  "CMakeFiles/pgf_tests.dir/pgf/distribution_test.cpp.o"
  "CMakeFiles/pgf_tests.dir/pgf/distribution_test.cpp.o.d"
  "CMakeFiles/pgf_tests.dir/pgf/moments_test.cpp.o"
  "CMakeFiles/pgf_tests.dir/pgf/moments_test.cpp.o.d"
  "CMakeFiles/pgf_tests.dir/pgf/series_test.cpp.o"
  "CMakeFiles/pgf_tests.dir/pgf/series_test.cpp.o.d"
  "pgf_tests"
  "pgf_tests.pdb"
  "pgf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
