# Empty dependencies file for tables_tests.
# This may be replaced when dependencies are built.
