file(REMOVE_RECURSE
  "CMakeFiles/tables_tests.dir/tables/table_test.cpp.o"
  "CMakeFiles/tables_tests.dir/tables/table_test.cpp.o.d"
  "tables_tests"
  "tables_tests.pdb"
  "tables_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
