# Empty dependencies file for serve_tests.
# This may be replaced when dependencies are built.
