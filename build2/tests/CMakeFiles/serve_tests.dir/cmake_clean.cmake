file(REMOVE_RECURSE
  "CMakeFiles/serve_tests.dir/serve/access_log_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/access_log_test.cpp.o.d"
  "CMakeFiles/serve_tests.dir/serve/cache_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/cache_test.cpp.o.d"
  "CMakeFiles/serve_tests.dir/serve/query_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/query_test.cpp.o.d"
  "CMakeFiles/serve_tests.dir/serve/service_test.cpp.o"
  "CMakeFiles/serve_tests.dir/serve/service_test.cpp.o.d"
  "serve_tests"
  "serve_tests.pdb"
  "serve_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
