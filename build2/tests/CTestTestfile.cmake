# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/fault_tests[1]_include.cmake")
include("/root/repo/build2/tests/stats_tests[1]_include.cmake")
include("/root/repo/build2/tests/rng_tests[1]_include.cmake")
include("/root/repo/build2/tests/simd_tests[1]_include.cmake")
include("/root/repo/build2/tests/pgf_tests[1]_include.cmake")
include("/root/repo/build2/tests/core_tests[1]_include.cmake")
include("/root/repo/build2/tests/par_tests[1]_include.cmake")
include("/root/repo/build2/tests/obs_tests[1]_include.cmake")
include("/root/repo/build2/tests/sim_tests[1]_include.cmake")
include("/root/repo/build2/tests/tables_tests[1]_include.cmake")
include("/root/repo/build2/tests/io_tests[1]_include.cmake")
include("/root/repo/build2/tests/sweep_tests[1]_include.cmake")
include("/root/repo/build2/tests/serve_tests[1]_include.cmake")
include("/root/repo/build2/tests/fleet_tests[1]_include.cmake")
include("/root/repo/build2/tests/cli_tests[1]_include.cmake")
include("/root/repo/build2/tests/integration_tests[1]_include.cmake")
