# Empty dependencies file for ksw_fault.
# This may be replaced when dependencies are built.
