file(REMOVE_RECURSE
  "CMakeFiles/ksw_fault.dir/injection.cpp.o"
  "CMakeFiles/ksw_fault.dir/injection.cpp.o.d"
  "CMakeFiles/ksw_fault.dir/plan.cpp.o"
  "CMakeFiles/ksw_fault.dir/plan.cpp.o.d"
  "libksw_fault.a"
  "libksw_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
