file(REMOVE_RECURSE
  "libksw_fault.a"
)
