# Empty dependencies file for ksw_sweep.
# This may be replaced when dependencies are built.
