file(REMOVE_RECURSE
  "libksw_sweep.a"
)
