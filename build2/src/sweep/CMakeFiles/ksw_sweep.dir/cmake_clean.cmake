file(REMOVE_RECURSE
  "CMakeFiles/ksw_sweep.dir/checkpoint.cpp.o"
  "CMakeFiles/ksw_sweep.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ksw_sweep.dir/emit.cpp.o"
  "CMakeFiles/ksw_sweep.dir/emit.cpp.o.d"
  "CMakeFiles/ksw_sweep.dir/manifest.cpp.o"
  "CMakeFiles/ksw_sweep.dir/manifest.cpp.o.d"
  "CMakeFiles/ksw_sweep.dir/runner.cpp.o"
  "CMakeFiles/ksw_sweep.dir/runner.cpp.o.d"
  "libksw_sweep.a"
  "libksw_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
