
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/metrics.cpp" "src/obs/CMakeFiles/ksw_obs.dir/metrics.cpp.o" "gcc" "src/obs/CMakeFiles/ksw_obs.dir/metrics.cpp.o.d"
  "/root/repo/src/obs/registry.cpp" "src/obs/CMakeFiles/ksw_obs.dir/registry.cpp.o" "gcc" "src/obs/CMakeFiles/ksw_obs.dir/registry.cpp.o.d"
  "/root/repo/src/obs/report.cpp" "src/obs/CMakeFiles/ksw_obs.dir/report.cpp.o" "gcc" "src/obs/CMakeFiles/ksw_obs.dir/report.cpp.o.d"
  "/root/repo/src/obs/span.cpp" "src/obs/CMakeFiles/ksw_obs.dir/span.cpp.o" "gcc" "src/obs/CMakeFiles/ksw_obs.dir/span.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/obs/CMakeFiles/ksw_obs.dir/trace.cpp.o" "gcc" "src/obs/CMakeFiles/ksw_obs.dir/trace.cpp.o.d"
  "/root/repo/src/obs/trace_export.cpp" "src/obs/CMakeFiles/ksw_obs.dir/trace_export.cpp.o" "gcc" "src/obs/CMakeFiles/ksw_obs.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/io/CMakeFiles/ksw_io.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/ksw_support.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/ksw_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
