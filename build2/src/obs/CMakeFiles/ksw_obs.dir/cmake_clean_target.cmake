file(REMOVE_RECURSE
  "libksw_obs.a"
)
