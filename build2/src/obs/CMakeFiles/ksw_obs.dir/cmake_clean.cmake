file(REMOVE_RECURSE
  "CMakeFiles/ksw_obs.dir/metrics.cpp.o"
  "CMakeFiles/ksw_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/ksw_obs.dir/registry.cpp.o"
  "CMakeFiles/ksw_obs.dir/registry.cpp.o.d"
  "CMakeFiles/ksw_obs.dir/report.cpp.o"
  "CMakeFiles/ksw_obs.dir/report.cpp.o.d"
  "CMakeFiles/ksw_obs.dir/span.cpp.o"
  "CMakeFiles/ksw_obs.dir/span.cpp.o.d"
  "CMakeFiles/ksw_obs.dir/trace.cpp.o"
  "CMakeFiles/ksw_obs.dir/trace.cpp.o.d"
  "CMakeFiles/ksw_obs.dir/trace_export.cpp.o"
  "CMakeFiles/ksw_obs.dir/trace_export.cpp.o.d"
  "libksw_obs.a"
  "libksw_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
