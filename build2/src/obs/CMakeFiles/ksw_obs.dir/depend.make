# Empty dependencies file for ksw_obs.
# This may be replaced when dependencies are built.
