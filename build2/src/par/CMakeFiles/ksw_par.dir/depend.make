# Empty dependencies file for ksw_par.
# This may be replaced when dependencies are built.
