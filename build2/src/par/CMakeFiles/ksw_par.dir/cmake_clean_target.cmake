file(REMOVE_RECURSE
  "libksw_par.a"
)
