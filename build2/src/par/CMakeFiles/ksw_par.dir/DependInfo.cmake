
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/par/cancel.cpp" "src/par/CMakeFiles/ksw_par.dir/cancel.cpp.o" "gcc" "src/par/CMakeFiles/ksw_par.dir/cancel.cpp.o.d"
  "/root/repo/src/par/thread_pool.cpp" "src/par/CMakeFiles/ksw_par.dir/thread_pool.cpp.o" "gcc" "src/par/CMakeFiles/ksw_par.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/obs/CMakeFiles/ksw_obs.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/ksw_support.dir/DependInfo.cmake"
  "/root/repo/build2/src/io/CMakeFiles/ksw_io.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/ksw_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
