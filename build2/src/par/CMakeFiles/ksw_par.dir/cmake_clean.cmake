file(REMOVE_RECURSE
  "CMakeFiles/ksw_par.dir/cancel.cpp.o"
  "CMakeFiles/ksw_par.dir/cancel.cpp.o.d"
  "CMakeFiles/ksw_par.dir/thread_pool.cpp.o"
  "CMakeFiles/ksw_par.dir/thread_pool.cpp.o.d"
  "libksw_par.a"
  "libksw_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
