# Empty dependencies file for ksw_simd.
# This may be replaced when dependencies are built.
