
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simd/inject.cpp" "src/simd/CMakeFiles/ksw_simd.dir/inject.cpp.o" "gcc" "src/simd/CMakeFiles/ksw_simd.dir/inject.cpp.o.d"
  "/root/repo/src/simd/inject_avx2.cpp" "src/simd/CMakeFiles/ksw_simd.dir/inject_avx2.cpp.o" "gcc" "src/simd/CMakeFiles/ksw_simd.dir/inject_avx2.cpp.o.d"
  "/root/repo/src/simd/simd.cpp" "src/simd/CMakeFiles/ksw_simd.dir/simd.cpp.o" "gcc" "src/simd/CMakeFiles/ksw_simd.dir/simd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/rng/CMakeFiles/ksw_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
