file(REMOVE_RECURSE
  "libksw_simd.a"
)
