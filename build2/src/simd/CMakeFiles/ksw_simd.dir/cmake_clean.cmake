file(REMOVE_RECURSE
  "CMakeFiles/ksw_simd.dir/inject.cpp.o"
  "CMakeFiles/ksw_simd.dir/inject.cpp.o.d"
  "CMakeFiles/ksw_simd.dir/inject_avx2.cpp.o"
  "CMakeFiles/ksw_simd.dir/inject_avx2.cpp.o.d"
  "CMakeFiles/ksw_simd.dir/simd.cpp.o"
  "CMakeFiles/ksw_simd.dir/simd.cpp.o.d"
  "libksw_simd.a"
  "libksw_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
