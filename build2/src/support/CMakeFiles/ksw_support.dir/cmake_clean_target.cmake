file(REMOVE_RECURSE
  "libksw_support.a"
)
