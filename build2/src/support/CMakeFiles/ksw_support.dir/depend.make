# Empty dependencies file for ksw_support.
# This may be replaced when dependencies are built.
