file(REMOVE_RECURSE
  "CMakeFiles/ksw_support.dir/error.cpp.o"
  "CMakeFiles/ksw_support.dir/error.cpp.o.d"
  "libksw_support.a"
  "libksw_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
