
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/first_stage_sim.cpp" "src/sim/CMakeFiles/ksw_sim.dir/first_stage_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ksw_sim.dir/first_stage_sim.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/ksw_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/ksw_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/network_detail.cpp" "src/sim/CMakeFiles/ksw_sim.dir/network_detail.cpp.o" "gcc" "src/sim/CMakeFiles/ksw_sim.dir/network_detail.cpp.o.d"
  "/root/repo/src/sim/network_reference.cpp" "src/sim/CMakeFiles/ksw_sim.dir/network_reference.cpp.o" "gcc" "src/sim/CMakeFiles/ksw_sim.dir/network_reference.cpp.o.d"
  "/root/repo/src/sim/replicate.cpp" "src/sim/CMakeFiles/ksw_sim.dir/replicate.cpp.o" "gcc" "src/sim/CMakeFiles/ksw_sim.dir/replicate.cpp.o.d"
  "/root/repo/src/sim/service_spec.cpp" "src/sim/CMakeFiles/ksw_sim.dir/service_spec.cpp.o" "gcc" "src/sim/CMakeFiles/ksw_sim.dir/service_spec.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/ksw_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/ksw_sim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/ksw_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/ksw_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/rng/CMakeFiles/ksw_rng.dir/DependInfo.cmake"
  "/root/repo/build2/src/simd/CMakeFiles/ksw_simd.dir/DependInfo.cmake"
  "/root/repo/build2/src/par/CMakeFiles/ksw_par.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/ksw_obs.dir/DependInfo.cmake"
  "/root/repo/build2/src/pgf/CMakeFiles/ksw_pgf.dir/DependInfo.cmake"
  "/root/repo/build2/src/io/CMakeFiles/ksw_io.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/ksw_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/ksw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
