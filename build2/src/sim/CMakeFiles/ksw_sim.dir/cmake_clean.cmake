file(REMOVE_RECURSE
  "CMakeFiles/ksw_sim.dir/first_stage_sim.cpp.o"
  "CMakeFiles/ksw_sim.dir/first_stage_sim.cpp.o.d"
  "CMakeFiles/ksw_sim.dir/network.cpp.o"
  "CMakeFiles/ksw_sim.dir/network.cpp.o.d"
  "CMakeFiles/ksw_sim.dir/network_detail.cpp.o"
  "CMakeFiles/ksw_sim.dir/network_detail.cpp.o.d"
  "CMakeFiles/ksw_sim.dir/network_reference.cpp.o"
  "CMakeFiles/ksw_sim.dir/network_reference.cpp.o.d"
  "CMakeFiles/ksw_sim.dir/replicate.cpp.o"
  "CMakeFiles/ksw_sim.dir/replicate.cpp.o.d"
  "CMakeFiles/ksw_sim.dir/service_spec.cpp.o"
  "CMakeFiles/ksw_sim.dir/service_spec.cpp.o.d"
  "CMakeFiles/ksw_sim.dir/topology.cpp.o"
  "CMakeFiles/ksw_sim.dir/topology.cpp.o.d"
  "libksw_sim.a"
  "libksw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
