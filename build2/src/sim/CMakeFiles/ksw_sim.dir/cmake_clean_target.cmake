file(REMOVE_RECURSE
  "libksw_sim.a"
)
