# Empty dependencies file for ksw_sim.
# This may be replaced when dependencies are built.
