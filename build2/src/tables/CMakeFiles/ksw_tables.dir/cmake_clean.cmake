file(REMOVE_RECURSE
  "CMakeFiles/ksw_tables.dir/table.cpp.o"
  "CMakeFiles/ksw_tables.dir/table.cpp.o.d"
  "libksw_tables.a"
  "libksw_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
