file(REMOVE_RECURSE
  "libksw_tables.a"
)
