# Empty dependencies file for ksw_tables.
# This may be replaced when dependencies are built.
