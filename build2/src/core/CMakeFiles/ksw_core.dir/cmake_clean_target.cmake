file(REMOVE_RECURSE
  "libksw_core.a"
)
