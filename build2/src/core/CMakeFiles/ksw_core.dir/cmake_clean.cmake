file(REMOVE_RECURSE
  "CMakeFiles/ksw_core.dir/calibration.cpp.o"
  "CMakeFiles/ksw_core.dir/calibration.cpp.o.d"
  "CMakeFiles/ksw_core.dir/closed_forms.cpp.o"
  "CMakeFiles/ksw_core.dir/closed_forms.cpp.o.d"
  "CMakeFiles/ksw_core.dir/first_stage.cpp.o"
  "CMakeFiles/ksw_core.dir/first_stage.cpp.o.d"
  "CMakeFiles/ksw_core.dir/later_stages.cpp.o"
  "CMakeFiles/ksw_core.dir/later_stages.cpp.o.d"
  "CMakeFiles/ksw_core.dir/mg1.cpp.o"
  "CMakeFiles/ksw_core.dir/mg1.cpp.o.d"
  "CMakeFiles/ksw_core.dir/models.cpp.o"
  "CMakeFiles/ksw_core.dir/models.cpp.o.d"
  "CMakeFiles/ksw_core.dir/total_delay.cpp.o"
  "CMakeFiles/ksw_core.dir/total_delay.cpp.o.d"
  "CMakeFiles/ksw_core.dir/total_distribution.cpp.o"
  "CMakeFiles/ksw_core.dir/total_distribution.cpp.o.d"
  "libksw_core.a"
  "libksw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
