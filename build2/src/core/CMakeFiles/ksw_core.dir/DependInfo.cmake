
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/ksw_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/ksw_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/closed_forms.cpp" "src/core/CMakeFiles/ksw_core.dir/closed_forms.cpp.o" "gcc" "src/core/CMakeFiles/ksw_core.dir/closed_forms.cpp.o.d"
  "/root/repo/src/core/first_stage.cpp" "src/core/CMakeFiles/ksw_core.dir/first_stage.cpp.o" "gcc" "src/core/CMakeFiles/ksw_core.dir/first_stage.cpp.o.d"
  "/root/repo/src/core/later_stages.cpp" "src/core/CMakeFiles/ksw_core.dir/later_stages.cpp.o" "gcc" "src/core/CMakeFiles/ksw_core.dir/later_stages.cpp.o.d"
  "/root/repo/src/core/mg1.cpp" "src/core/CMakeFiles/ksw_core.dir/mg1.cpp.o" "gcc" "src/core/CMakeFiles/ksw_core.dir/mg1.cpp.o.d"
  "/root/repo/src/core/models.cpp" "src/core/CMakeFiles/ksw_core.dir/models.cpp.o" "gcc" "src/core/CMakeFiles/ksw_core.dir/models.cpp.o.d"
  "/root/repo/src/core/total_delay.cpp" "src/core/CMakeFiles/ksw_core.dir/total_delay.cpp.o" "gcc" "src/core/CMakeFiles/ksw_core.dir/total_delay.cpp.o.d"
  "/root/repo/src/core/total_distribution.cpp" "src/core/CMakeFiles/ksw_core.dir/total_distribution.cpp.o" "gcc" "src/core/CMakeFiles/ksw_core.dir/total_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/pgf/CMakeFiles/ksw_pgf.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/ksw_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/ksw_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/io/CMakeFiles/ksw_io.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/ksw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
