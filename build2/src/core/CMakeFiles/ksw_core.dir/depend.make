# Empty dependencies file for ksw_core.
# This may be replaced when dependencies are built.
