# Empty dependencies file for ksw_stats.
# This may be replaced when dependencies are built.
