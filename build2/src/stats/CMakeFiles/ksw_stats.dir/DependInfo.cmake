
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/accumulator.cpp" "src/stats/CMakeFiles/ksw_stats.dir/accumulator.cpp.o" "gcc" "src/stats/CMakeFiles/ksw_stats.dir/accumulator.cpp.o.d"
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/ksw_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/ksw_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/covariance.cpp" "src/stats/CMakeFiles/ksw_stats.dir/covariance.cpp.o" "gcc" "src/stats/CMakeFiles/ksw_stats.dir/covariance.cpp.o.d"
  "/root/repo/src/stats/gamma_distribution.cpp" "src/stats/CMakeFiles/ksw_stats.dir/gamma_distribution.cpp.o" "gcc" "src/stats/CMakeFiles/ksw_stats.dir/gamma_distribution.cpp.o.d"
  "/root/repo/src/stats/goodness_of_fit.cpp" "src/stats/CMakeFiles/ksw_stats.dir/goodness_of_fit.cpp.o" "gcc" "src/stats/CMakeFiles/ksw_stats.dir/goodness_of_fit.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/ksw_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/ksw_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/moment_tally.cpp" "src/stats/CMakeFiles/ksw_stats.dir/moment_tally.cpp.o" "gcc" "src/stats/CMakeFiles/ksw_stats.dir/moment_tally.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/ksw_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/ksw_stats.dir/special_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
