file(REMOVE_RECURSE
  "libksw_stats.a"
)
