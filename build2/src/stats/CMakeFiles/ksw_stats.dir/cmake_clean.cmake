file(REMOVE_RECURSE
  "CMakeFiles/ksw_stats.dir/accumulator.cpp.o"
  "CMakeFiles/ksw_stats.dir/accumulator.cpp.o.d"
  "CMakeFiles/ksw_stats.dir/confidence.cpp.o"
  "CMakeFiles/ksw_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/ksw_stats.dir/covariance.cpp.o"
  "CMakeFiles/ksw_stats.dir/covariance.cpp.o.d"
  "CMakeFiles/ksw_stats.dir/gamma_distribution.cpp.o"
  "CMakeFiles/ksw_stats.dir/gamma_distribution.cpp.o.d"
  "CMakeFiles/ksw_stats.dir/goodness_of_fit.cpp.o"
  "CMakeFiles/ksw_stats.dir/goodness_of_fit.cpp.o.d"
  "CMakeFiles/ksw_stats.dir/histogram.cpp.o"
  "CMakeFiles/ksw_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/ksw_stats.dir/moment_tally.cpp.o"
  "CMakeFiles/ksw_stats.dir/moment_tally.cpp.o.d"
  "CMakeFiles/ksw_stats.dir/special_functions.cpp.o"
  "CMakeFiles/ksw_stats.dir/special_functions.cpp.o.d"
  "libksw_stats.a"
  "libksw_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
