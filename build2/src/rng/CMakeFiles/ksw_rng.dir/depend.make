# Empty dependencies file for ksw_rng.
# This may be replaced when dependencies are built.
