file(REMOVE_RECURSE
  "libksw_rng.a"
)
