file(REMOVE_RECURSE
  "CMakeFiles/ksw_rng.dir/philox.cpp.o"
  "CMakeFiles/ksw_rng.dir/philox.cpp.o.d"
  "CMakeFiles/ksw_rng.dir/xoshiro.cpp.o"
  "CMakeFiles/ksw_rng.dir/xoshiro.cpp.o.d"
  "libksw_rng.a"
  "libksw_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
