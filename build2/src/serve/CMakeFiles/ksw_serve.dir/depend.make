# Empty dependencies file for ksw_serve.
# This may be replaced when dependencies are built.
