file(REMOVE_RECURSE
  "CMakeFiles/ksw_serve.dir/access_log.cpp.o"
  "CMakeFiles/ksw_serve.dir/access_log.cpp.o.d"
  "CMakeFiles/ksw_serve.dir/cache.cpp.o"
  "CMakeFiles/ksw_serve.dir/cache.cpp.o.d"
  "CMakeFiles/ksw_serve.dir/kernels.cpp.o"
  "CMakeFiles/ksw_serve.dir/kernels.cpp.o.d"
  "CMakeFiles/ksw_serve.dir/query.cpp.o"
  "CMakeFiles/ksw_serve.dir/query.cpp.o.d"
  "CMakeFiles/ksw_serve.dir/service.cpp.o"
  "CMakeFiles/ksw_serve.dir/service.cpp.o.d"
  "libksw_serve.a"
  "libksw_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
