file(REMOVE_RECURSE
  "libksw_serve.a"
)
