file(REMOVE_RECURSE
  "CMakeFiles/ksw_pgf.dir/distribution.cpp.o"
  "CMakeFiles/ksw_pgf.dir/distribution.cpp.o.d"
  "CMakeFiles/ksw_pgf.dir/moments.cpp.o"
  "CMakeFiles/ksw_pgf.dir/moments.cpp.o.d"
  "CMakeFiles/ksw_pgf.dir/series.cpp.o"
  "CMakeFiles/ksw_pgf.dir/series.cpp.o.d"
  "libksw_pgf.a"
  "libksw_pgf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_pgf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
