file(REMOVE_RECURSE
  "libksw_pgf.a"
)
