# Empty dependencies file for ksw_pgf.
# This may be replaced when dependencies are built.
