file(REMOVE_RECURSE
  "CMakeFiles/ksw_io.dir/atomic.cpp.o"
  "CMakeFiles/ksw_io.dir/atomic.cpp.o.d"
  "CMakeFiles/ksw_io.dir/csv.cpp.o"
  "CMakeFiles/ksw_io.dir/csv.cpp.o.d"
  "CMakeFiles/ksw_io.dir/json.cpp.o"
  "CMakeFiles/ksw_io.dir/json.cpp.o.d"
  "libksw_io.a"
  "libksw_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
