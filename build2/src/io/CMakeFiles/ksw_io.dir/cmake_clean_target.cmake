file(REMOVE_RECURSE
  "libksw_io.a"
)
