# Empty dependencies file for ksw_io.
# This may be replaced when dependencies are built.
