
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/atomic.cpp" "src/io/CMakeFiles/ksw_io.dir/atomic.cpp.o" "gcc" "src/io/CMakeFiles/ksw_io.dir/atomic.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/ksw_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/ksw_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/json.cpp" "src/io/CMakeFiles/ksw_io.dir/json.cpp.o" "gcc" "src/io/CMakeFiles/ksw_io.dir/json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/support/CMakeFiles/ksw_support.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/ksw_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
