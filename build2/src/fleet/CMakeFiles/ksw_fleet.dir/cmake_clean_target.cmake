file(REMOVE_RECURSE
  "libksw_fleet.a"
)
