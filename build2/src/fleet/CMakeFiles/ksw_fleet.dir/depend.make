# Empty dependencies file for ksw_fleet.
# This may be replaced when dependencies are built.
