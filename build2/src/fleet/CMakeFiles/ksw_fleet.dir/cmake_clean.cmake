file(REMOVE_RECURSE
  "CMakeFiles/ksw_fleet.dir/routing.cpp.o"
  "CMakeFiles/ksw_fleet.dir/routing.cpp.o.d"
  "CMakeFiles/ksw_fleet.dir/supervisor.cpp.o"
  "CMakeFiles/ksw_fleet.dir/supervisor.cpp.o.d"
  "CMakeFiles/ksw_fleet.dir/worker.cpp.o"
  "CMakeFiles/ksw_fleet.dir/worker.cpp.o.d"
  "libksw_fleet.a"
  "libksw_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksw_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
