// RP3-style private-memory traffic study (paper Section III-A-3 and IV-D).
//
// In the IBM RP3, each processor's memory module sits behind the network
// at "its own" output, so a tunable fraction q of requests go to a favored
// destination. This example sweeps q and shows how locality cuts both the
// mean and the variance of network waiting — validated against the
// cycle-accurate simulator.
#include <cmath>
#include <iostream>
#include <memory>

#include "core/later_stages.hpp"
#include "core/total_delay.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace {

constexpr unsigned kStages = 6;  // 64-PE machine with 2x2 switches
constexpr double kLoad = 0.5;

void run() {
  ksw::tables::Table table(
      "Private-memory locality sweep (64 PEs, 2x2 switches, load 0.5)",
      {"q", "E[total wait] est", "E[total wait] sim", "sd est", "sd sim",
       "p99 est"});

  for (double q : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    ksw::core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = kLoad;
    spec.q = q;
    const ksw::core::LaterStages ls(spec);
    const ksw::core::TotalDelay td(ls, kStages);
    const auto gamma = td.gamma_approximation();

    ksw::sim::NetworkConfig cfg;
    cfg.k = 2;
    cfg.stages = kStages;
    cfg.p = kLoad;
    cfg.q = q;
    cfg.total_checkpoints = {kStages};
    cfg.warmup_cycles = 2'000;
    cfg.measure_cycles = 30'000;
    const auto r = ksw::sim::run_network(cfg);

    table.begin_row(ksw::tables::format_number(q, 1))
        .add_number(td.mean_total(), 3)
        .add_number(r.total_wait[0].mean(), 3)
        .add_number(std::sqrt(td.variance_total()), 3)
        .add_number(std::sqrt(r.total_wait[0].variance()), 3)
        .add_number(gamma.quantile(0.99), 2);
  }
  table.print(std::cout);
  std::cout << "\nLocality (higher q) removes contention: at q=0.8 the "
               "network is nearly\nconflict-free, and the tail (p99) "
               "shrinks even faster than the mean --\nexactly why RP3 "
               "paired each processor with a local memory module.\n";
}

}  // namespace

int main() {
  run();
  return 0;
}
