// Message-size trade-off (paper Section VI): "while using larger messages
// may save the overhead of duplicating the same routing information over
// several packets, it may dramatically increase delays in all but very
// lightly loaded networks."
//
// We model a fixed-size data transfer of 16 flits plus a per-message
// routing header of 1 flit, split into messages of m flits each. Larger m
// means fewer headers (lower traffic intensity) but waiting grows linearly
// and variance quadratically in m.
#include <cmath>
#include <iostream>
#include <memory>

#include "core/later_stages.hpp"
#include "core/total_delay.hpp"
#include "tables/table.hpp"

namespace {

constexpr unsigned kStages = 10;   // 1024-PE machine, 2x2 switches
constexpr double kDataFlits = 16;  // payload per transfer
constexpr double kHeader = 1;      // routing header per message

void run(double payload_load) {
  ksw::tables::Table table(
      "Transfer of 16 data flits, header 1 flit/message, payload load " +
          ksw::tables::format_number(payload_load, 2) +
          " (1024 PEs, 2x2 switches)",
      {"m (flits)", "msgs", "rho", "E[wait/msg]", "sd[wait/msg]",
       "E[transfer latency]"});

  for (unsigned m : {2u, 4u, 8u, 16u}) {
    const double payload = static_cast<double>(m) - kHeader;
    const double messages = kDataFlits / payload;  // messages per transfer
    // Message injection rate chosen so the *payload* throughput per port
    // is `payload_load` flits/cycle; the per-message header inflates the
    // traffic intensity rho = p*m = load * m/(m-1), hurting small m.
    const double p = payload_load / payload;
    const double rho = p * static_cast<double>(m);
    if (rho >= 0.95) {
      table.begin_row(std::to_string(m))
          .add_cell(ksw::tables::format_number(messages, 2))
          .add_number(rho, 3)
          .add_cell("saturated")
          .add_blank()
          .add_blank();
      continue;
    }

    ksw::core::NetworkTrafficSpec spec;
    spec.k = 2;
    spec.p = p;
    spec.service = std::make_shared<ksw::core::DeterministicService>(m);
    const ksw::core::LaterStages ls(spec);
    const ksw::core::TotalDelay td(ls, kStages);

    // A transfer completes when its last message arrives. The port drains
    // one m-flit message per m cycles, so the last message leaves the
    // source ~(messages-1)*m cycles after the first, then queues through
    // the network like any other message.
    const double serialization = (messages - 1.0) * static_cast<double>(m);
    const double latency = serialization + td.mean_total_delay();
    table.begin_row(std::to_string(m))
        .add_cell(ksw::tables::format_number(messages, 2))
        .add_number(rho, 3)
        .add_number(td.mean_total(), 2)
        .add_number(std::sqrt(td.variance_total()), 2)
        .add_number(latency, 2);
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Section VI's warning quantified: at fixed traffic "
               "intensity, per-message\nwaiting grows linearly in m and its "
               "variance quadratically -- but tiny\nmessages duplicate the "
               "routing header and inflate rho. The sweet spot\nmoves toward "
               "small m as load rises.\n\n";
  for (double load : {0.1, 0.3, 0.45}) run(load);
  return 0;
}
