// Design-space exploration for an Ultracomputer-style shared-memory
// machine — the use case that motivated the paper (its formulas "have been
// heavily used in designing both the NYU Ultracomputer and RP3").
//
// For machine sizes 64..4096 PEs we compare 2x2, 4x4, and 8x8 switches at
// several loads, reporting expected memory-access waiting time, its
// standard deviation, and the 99th percentile from the gamma
// approximation. The variance matters because "the speed of the slowest
// processor dictates the system speed" (Section I).
#include <cmath>
#include <iostream>
#include <memory>

#include "core/later_stages.hpp"
#include "core/total_delay.hpp"
#include "tables/table.hpp"

namespace {

void explore(unsigned pes, double load) {
  ksw::tables::Table table(
      "Network to memory for " + std::to_string(pes) + " PEs at load " +
          ksw::tables::format_number(load, 2) +
          " (unit-size messages, one-way trip)",
      {"switch", "stages", "E[wait]", "sd[wait]", "p99 wait",
       "E[delay]"});
  for (unsigned k : {2u, 4u, 8u}) {
    // Number of stages to span all PEs: ceil(log_k(pes)).
    unsigned stages = 0;
    unsigned long long span = 1;
    while (span < pes) {
      span *= k;
      ++stages;
    }
    if (span != pes) continue;  // only exact powers make a delta network

    ksw::core::NetworkTrafficSpec spec;
    spec.k = k;
    spec.p = load;
    const ksw::core::LaterStages ls(spec);
    const ksw::core::TotalDelay td(ls, stages);
    const auto gamma = td.gamma_approximation();
    table.begin_row(std::to_string(k) + "x" + std::to_string(k))
        .add_cell(std::to_string(stages))
        .add_number(td.mean_total(), 3)
        .add_number(std::sqrt(td.variance_total()), 3)
        .add_number(gamma.quantile(0.99), 2)
        .add_number(td.mean_total_delay(), 2);
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Ultracomputer-style design study: larger switches mean "
               "fewer stages\nbut more contention per stage; the crossover "
               "depends on load.\n\n";
  for (unsigned pes : {64u, 512u, 4096u})
    for (double load : {0.25, 0.5, 0.75}) explore(pes, load);
  return 0;
}
