// Quickstart: analyze one output queue of a buffered banyan network and
// validate the answer with the bundled cycle-accurate simulator.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "core/first_stage.hpp"
#include "core/later_stages.hpp"
#include "core/total_delay.hpp"
#include "sim/network.hpp"

int main() {
  using namespace ksw;

  // A 2x2-switch network at 50% load with single-cycle messages.
  core::QueueSpec queue{
      std::shared_ptr<core::ArrivalModel>(
          core::make_uniform_arrivals(/*k=*/2, /*s=*/2, /*p=*/0.5)),
      std::make_shared<core::DeterministicService>(1)};

  // --- Exact first-stage analysis (Theorem 1) ----------------------------
  const core::FirstStage first(queue);
  const auto moments = first.moments();
  std::cout << "First stage (exact):\n"
            << "  E[wait]   = " << moments.mean << " cycles\n"
            << "  Var[wait] = " << moments.variance << "\n"
            << "  skewness  = " << moments.skewness() << "\n";

  // Full waiting-time distribution by transform inversion.
  const auto dist = first.distribution(8);
  std::cout << "  P(wait = 0..4): ";
  for (int w = 0; w < 5; ++w) std::cout << dist[static_cast<std::size_t>(w)] << ' ';
  std::cout << "\n\n";

  // --- Whole-network estimate (Sections IV-V) ----------------------------
  core::NetworkTrafficSpec spec;
  spec.k = 2;
  spec.p = 0.5;
  const core::LaterStages stages(spec);
  const core::TotalDelay total(stages, /*n_stages=*/10);
  const auto gamma = total.gamma_approximation();
  std::cout << "10-stage network (estimates):\n"
            << "  E[total wait]   = " << total.mean_total() << " cycles\n"
            << "  Var[total wait] = " << total.variance_total() << "\n"
            << "  P95 total wait  = " << gamma.quantile(0.95) << " cycles\n"
            << "  E[total delay]  = " << total.mean_total_delay()
            << " cycles (waiting + service)\n\n";

  // --- Confirm with the simulator ----------------------------------------
  sim::NetworkConfig cfg;
  cfg.k = 2;
  cfg.stages = 10;
  cfg.p = 0.5;
  cfg.total_checkpoints = {10};
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 20'000;
  const auto sim_result = sim::run_network(cfg);
  std::cout << "10-stage network (simulated):\n"
            << "  E[total wait]   = " << sim_result.total_wait[0].mean()
            << " cycles\n"
            << "  Var[total wait] = " << sim_result.total_wait[0].variance()
            << "\n"
            << "  P95 total wait  = " << sim_result.total_wait[0].quantile(0.95)
            << " cycles\n";
  return 0;
}
