#include <exception>
#include <ostream>

#include "fault/injection.hpp"
#include "kswsim/cli.hpp"
#include "support/error.hpp"

namespace ksw::cli {

namespace {

constexpr const char* kUsage = R"(kswsim - waiting times in clocked multistage interconnection networks
(Kruskal-Snir-Weiss, ICPP 1986 / IEEE ToC 1988)

usage: kswsim <command> [options]

commands:
  analyze    exact first-stage waiting-time analysis (Theorem 1)
             --k=2 --s=2 --p=0.5 --bulk=1 --q=0 --service=det:1
             --distribution=N
  network    whole-network estimates (Sections IV-V)
             --k=2 --p=0.5 --stages=10 --bulk=1 --q=0 --service=det:1
             --quantiles=0.5,0.9,0.99
  simulate   cycle-accurate banyan network simulation
             --k=2 --stages=8 --p=0.5 --bulk=1 --q=0 --hotspot=0
             --hotspot-target=0  (must be a valid output port)
             --topology=butterfly|omega --service=det:1 --cycles=50000
             --warmup=auto --seed=1 --replicates=1 --threads=0
             --buffer-capacity=0 --flow=vct|saf|credit --credit-latency=2
             --rng=philox|xoshiro  (counter-based default; xoshiro keeps
             the historic sequential streams; see docs/DESIGN.md §8)
             --simd=auto|off  (off forces the scalar oracle kernels;
             KSW_SIMD=off|scalar|avx2|auto is the env equivalent)
             --correlations --checkpoints=3,6,9,12
             --metrics-out=FILE|- --obs-stride=64 --obs-trace=24
             --obs-wall  (structured run report; see docs/OBSERVABILITY.md)
  calibrate  re-fit the Section IV interpolation constants
             --k=2 --rho=0.5 --stages=8 --cycles=100000 --seed=1
  reproduce  regenerate the paper-reproduction book from a sweep manifest
             --manifest=manifests/paper.json --out-dir=docs/reproduction
             --index=docs/REPRODUCTION.md --threads=0
             --section=ID[,ID...] --list --check
             --resume --checkpoint=FILE --point-timeout=MS
             --fault-plan=FILE --trace-out=FILE
             (--check diffs committed pages against a fresh run; --resume
              continues an interrupted run from its checkpoint journal;
              see docs/REPRODUCTION.md and docs/ROBUSTNESS.md)
  serve      long-lived analytic query service (ksw.query/v1 JSONL)
             --listen=SOCKET --threads=0 --batch=64 --cache-mb=64
             --deadline-ms=0 --metrics-out=FILE|-
             --metrics-interval-ms=0 --access-log=FILE --trace-out=FILE
             (reads JSONL requests from stdin or a Unix socket, streams
              one response per request; per-request failures answer
              in-band via error.kind, not an exit code; repeated tuples
              are served bit-identically from a memoized evaluation
              cache; --access-log appends one JSONL row per request with
              trace_id, cache hit/miss, and queue/eval timing; see
              docs/SERVING.md)
  fleet      sharded serve fleet: one TCP front end over N serve workers
             --workers=4 --tcp=HOST:PORT|PORT --socket-dir=DIR
             --queue-depth=128 --deadline-ms=0 --threads=0 --batch=64
             --cache-mb=64 --metrics-out=FILE|- --metrics-interval-ms=0
             --access-log=FILE --trace-out=FILE --worker-binary=PATH
             (accepts concurrent TCP clients, routes each request to a
              worker by its canonical cache key so responses stay
              bit-identical to single-process serve; bounded per-worker
              queues shed excess load in-band with error.kind
              "overload"; dead workers restart automatically; `kswsim
              serve --fleet=N` is an alias; see docs/OPERATIONS.md)
  trace      summarize / export ksw.trace/v1 span streams
             trace summarize --in=FILE --format=table|json|csv
             trace export --chrome --in=FILE --out=FILE|-
             (streams come from serve/reproduce --trace-out; --chrome
              emits Chrome trace-event JSON that loads in Perfetto; see
              docs/OBSERVABILITY.md)

common options:
  --format=table|json|csv   output format (default: table)
  --help                    this message

service specs: det:M (constant M cycles), geo:MU (geometric, mean 1/MU),
               multi:M1@P1,M2@P2,... (mixture of constant sizes)

exit codes: 0 ok, 1 internal error, 2 usage, 3 gate failure, 4 book
            drift, 5 I/O error, 6 numeric error, 7 degraded run,
            8 fleet supervision failure, 130 interrupted (see
            docs/ROBUSTNESS.md). `serve` and `fleet` map per-request
            failures to in-band error.kind responses; their exit codes
            reflect only startup/transport/shutdown state (see
            docs/SERVING.md)

environment: KSW_FAULTS=site[@N][:MS],... arms deterministic fault-
             injection sites (testing; see docs/ROBUSTNESS.md)
)";

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  try {
    fault::arm_from_env();
    if (args.empty() || args[0] == "--help" || args[0] == "help") {
      out << kUsage;
      return args.empty() ? 2 : 0;
    }
    const std::string command = args[0];
    const ArgMap parsed =
        ArgMap::parse({args.begin() + 1, args.end()});
    if (parsed.has("help")) {
      out << kUsage;
      return 0;
    }
    if (command == "analyze") return cmd_analyze(parsed, out, err);
    if (command == "network") return cmd_network(parsed, out, err);
    if (command == "simulate") return cmd_simulate(parsed, out, err);
    if (command == "calibrate") return cmd_calibrate(parsed, out, err);
    if (command == "reproduce") return cmd_reproduce(parsed, out, err);
    if (command == "serve") return cmd_serve(parsed, out, err);
    if (command == "fleet") return cmd_fleet(parsed, out, err);
    if (command == "trace") return cmd_trace(parsed, out, err);
    err << "kswsim: unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const Error& e) {
    // Typed errors carry their exit code: 2 usage, 5 io, 6 numeric,
    // 130 interrupted (gate/drift are returned, not thrown).
    err << "kswsim: " << to_string(e.kind()) << ": " << e.what() << "\n";
    return e.exit_code();
  } catch (const std::exception& e) {
    err << "kswsim: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ksw::cli
