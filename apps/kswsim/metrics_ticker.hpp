// Periodic metrics snapshotter shared by `kswsim serve` and
// `kswsim fleet`: rewrites `path` atomically every `interval_ms` until
// stopped, so an operator (or a supervisor watching its workers) can
// follow counters and latency quantiles live instead of waiting for
// shutdown. Write failures disable the ticker with one stderr note —
// monitoring must never take the service down.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <ostream>
#include <string>
#include <thread>
#include <utility>

#include "io/atomic.hpp"

namespace ksw::cli {

class MetricsTicker {
 public:
  /// `render` produces the full snapshot body (called on the ticker
  /// thread, so it must be safe against the serving loop — both
  /// Service::report and Supervisor::report are).
  MetricsTicker(std::function<std::string()> render, std::string path,
                std::int64_t interval_ms, std::ostream& err,
                std::string who)
      : render_(std::move(render)), path_(std::move(path)) {
    thread_ = std::thread([this, interval_ms, &err, who = std::move(who)] {
      const auto interval = std::chrono::milliseconds(interval_ms);
      auto next = std::chrono::steady_clock::now() + interval;
      while (!done_.load(std::memory_order_relaxed)) {
        // Short sleeps so shutdown is observed promptly even with a
        // long interval.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (std::chrono::steady_clock::now() < next) continue;
        next += interval;
        try {
          io::atomic_write_file(path_, render_());
        } catch (const std::exception& e) {
          err << who << ": metrics snapshot failed, disabling ticker: "
              << e.what() << "\n";
          return;
        }
      }
    });
  }

  MetricsTicker(const MetricsTicker&) = delete;
  MetricsTicker& operator=(const MetricsTicker&) = delete;

  ~MetricsTicker() {
    done_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::function<std::string()> render_;
  std::string path_;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

}  // namespace ksw::cli
