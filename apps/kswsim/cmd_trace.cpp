// kswsim trace — post-process ksw.trace/v1 span streams.
//
//   kswsim trace summarize --in=FILE [--format=table|json|csv]
//   kswsim trace export --chrome --in=FILE [--out=FILE|-]
//
// `summarize` prints a per-span-name latency table (count, total,
// p50/p99/max microseconds, exact nearest-rank quantiles). `export
// --chrome` converts the stream to Chrome trace-event JSON, which loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing. Input
// streams come from `kswsim serve --trace-out`, `kswsim reproduce
// --trace-out`, or any writer of the documented schema
// (docs/OBSERVABILITY.md "Tracing").
#include <fstream>
#include <ostream>
#include <sstream>

#include "io/atomic.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "obs/trace_export.hpp"
#include "support/error.hpp"
#include "tables/table.hpp"

namespace ksw::cli {

namespace {

std::string read_trace_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw io_error("trace: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int summarize(const std::string& in_path, Format format, std::ostream& out) {
  std::uint64_t dropped = 0;
  const std::vector<obs::SpanRecord> spans =
      obs::parse_trace_jsonl(read_trace_file(in_path), &dropped);
  const std::vector<obs::TraceSummaryRow> rows = obs::summarize_spans(spans);

  switch (format) {
    case Format::kTable: {
      tables::Table table("Span summary (" + in_path + ")",
                          {"span", "count", "total_ms", "p50_us", "p99_us",
                           "max_us"});
      for (const auto& row : rows)
        table.begin_row(row.name)
            .add_cell(std::to_string(row.count))
            .add_number(row.total_ms, 3)
            .add_number(row.p50_us, 1)
            .add_number(row.p99_us, 1)
            .add_number(row.max_us, 1);
      table.print(out);
      out << spans.size() << " spans";
      if (dropped > 0) out << " (+" << dropped << " dropped at the sink)";
      out << "\n";
      break;
    }
    case Format::kJson: {
      io::Json doc = io::Json::object();
      doc.set("schema", "ksw.trace.summary/v1");
      doc.set("spans", static_cast<std::uint64_t>(spans.size()));
      doc.set("dropped", dropped);
      io::Json names = io::Json::array();
      for (const auto& row : rows) {
        io::Json item = io::Json::object();
        item.set("name", row.name);
        item.set("count", row.count);
        item.set("total_ms", row.total_ms);
        item.set("p50_us", row.p50_us);
        item.set("p99_us", row.p99_us);
        item.set("max_us", row.max_us);
        names.push_back(std::move(item));
      }
      doc.set("summary", std::move(names));
      doc.write(out, 2);
      out << "\n";
      break;
    }
    case Format::kCsv: {
      io::CsvWriter csv(
          {"name", "count", "total_ms", "p50_us", "p99_us", "max_us"});
      for (const auto& row : rows)
        csv.begin_row()
            .add(row.name)
            .add(row.count)
            .add(row.total_ms)
            .add(row.p50_us)
            .add(row.p99_us)
            .add(row.max_us);
      csv.write(out);
      break;
    }
  }
  return 0;
}

int export_chrome(const std::string& in_path, const std::string& out_path,
                  std::ostream& out, std::ostream& err) {
  const std::vector<obs::SpanRecord> spans =
      obs::parse_trace_jsonl(read_trace_file(in_path));
  const std::string chrome = obs::render_chrome_trace(spans);
  if (out_path == "-") {
    out << chrome;
  } else {
    io::atomic_write_file(out_path, chrome);
    err << "trace: wrote " << spans.size() << " events to " << out_path
        << "\n";
  }
  return 0;
}

}  // namespace

int cmd_trace(const ArgMap& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty())
    throw usage_error(
        "trace: expected an action: summarize | export (see kswsim --help)");
  const std::string action = args.positional().front();
  const std::string in_path = args.get("in", "");

  if (action == "summarize") {
    const Format format = parse_format(args);
    if (in_path.empty())
      throw usage_error("trace summarize: --in=FILE required");
    const auto unknown = args.unused();
    if (!unknown.empty())
      throw usage_error("trace: unknown option --" + unknown.front());
    return summarize(in_path, format, out);
  }
  if (action == "export") {
    const bool chrome = args.get_flag("chrome");
    const std::string out_path = args.get("out", "-");
    if (!chrome)
      throw usage_error(
          "trace export: --chrome required (the only export format so far)");
    if (in_path.empty())
      throw usage_error("trace export: --in=FILE required");
    const auto unknown = args.unused();
    if (!unknown.empty())
      throw usage_error("trace: unknown option --" + unknown.front());
    return export_chrome(in_path, out_path, out, err);
  }
  throw usage_error("trace: unknown action \"" + action +
                    "\" (expected summarize | export)");
}

}  // namespace ksw::cli
