// kswsim network — whole-network waiting-time estimates (Sections IV-V).
//
//   kswsim network --k=2 --p=0.5 --stages=10 [--bulk=B] [--q=Q]
//                  [--service=det:1] [--quantiles=0.5,0.95,0.99]
//                  [--format=table|json|csv]
#include <memory>
#include <ostream>
#include <sstream>

#include "core/total_delay.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "support/error.hpp"
#include "tables/table.hpp"

namespace ksw::cli {

namespace {

std::vector<double> parse_quantiles(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t pos = 0;
    const double v = std::stod(item, &pos);
    if (pos != item.size() || v <= 0.0 || v >= 1.0)
      throw usage_error("--quantiles: bad value " + item);
    out.push_back(v);
  }
  return out;
}

}  // namespace

int cmd_network(const ArgMap& args, std::ostream& out, std::ostream& err) {
  const Format format = parse_format(args);
  const unsigned stages_n = args.get_unsigned("stages", 10);
  const auto quantiles =
      parse_quantiles(args.get("quantiles", "0.5,0.9,0.99"));

  core::NetworkTrafficSpec spec;
  spec.k = args.get_unsigned("k", 2);
  spec.p = args.get_double("p", 0.5);
  spec.bulk = args.get_unsigned("bulk", 1);
  spec.q = args.get_double("q", 0.0);
  spec.service = parse_service(args.get("service", "det:1")).to_model();

  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "network: unknown option --" << unknown.front() << "\n";
    return 2;
  }

  const core::LaterStages ls(spec);
  const core::TotalDelay td(ls, stages_n);
  const auto gamma = td.gamma_approximation();

  switch (format) {
    case Format::kTable: {
      tables::Table per_stage("Per-stage waiting-time estimates",
                              {"stage", "E[wait]", "Var[wait]"});
      for (unsigned i = 1; i <= stages_n; ++i)
        per_stage.begin_row(std::to_string(i))
            .add_number(ls.mean_at_stage(i), 5)
            .add_number(ls.variance_at_stage(i), 5);
      per_stage.begin_row("limit")
          .add_number(ls.mean_limit(), 5)
          .add_number(ls.variance_limit(), 5);
      per_stage.print(out);

      tables::Table totals("\nTotal waiting time over " +
                               std::to_string(stages_n) + " stages",
                           {"quantity", "value"});
      totals.begin_row("E[total wait]").add_number(td.mean_total(), 5);
      totals.begin_row("Var[total wait]").add_number(td.variance_total(), 5);
      totals.begin_row("Var (independent)")
          .add_number(td.variance_total(false), 5);
      totals.begin_row("E[total delay]")
          .add_number(td.mean_total_delay(), 5);
      for (double p : quantiles) {
        const double pct = 100.0 * p;
        const bool whole = pct == static_cast<double>(static_cast<int>(pct));
        totals
            .begin_row("p" + tables::format_number(pct, whole ? 0 : 1) +
                       " wait")
            .add_number(gamma.quantile(p), 5);
      }
      totals.print(out);
      break;
    }
    case Format::kJson: {
      io::Json doc = io::Json::object();
      doc.set("stages", static_cast<std::int64_t>(stages_n));
      doc.set("rho", spec.rho());
      io::Json per_stage = io::Json::array();
      for (unsigned i = 1; i <= stages_n; ++i) {
        io::Json row = io::Json::object();
        row.set("stage", static_cast<std::int64_t>(i));
        row.set("mean", ls.mean_at_stage(i));
        row.set("variance", ls.variance_at_stage(i));
        per_stage.push_back(std::move(row));
      }
      doc.set("per_stage", std::move(per_stage));
      doc.set("mean_total", td.mean_total());
      doc.set("var_total", td.variance_total());
      doc.set("mean_total_delay", td.mean_total_delay());
      io::Json qs = io::Json::object();
      for (double p : quantiles)
        qs.set(tables::format_number(p, 3), gamma.quantile(p));
      doc.set("quantiles", std::move(qs));
      doc.write(out, 2);
      out << '\n';
      break;
    }
    case Format::kCsv: {
      io::CsvWriter csv({"stage", "mean", "variance"});
      for (unsigned i = 1; i <= stages_n; ++i)
        csv.begin_row()
            .add(static_cast<std::int64_t>(i))
            .add(ls.mean_at_stage(i))
            .add(ls.variance_at_stage(i));
      csv.begin_row().add("total").add(td.mean_total()).add(
          td.variance_total());
      csv.write(out);
      break;
    }
  }
  return 0;
}

}  // namespace ksw::cli
