// kswsim command-line interface.
//
// Subcommands:
//   analyze    exact first-stage analysis (Theorem 1)
//   network    whole-network estimates (Sections IV-V)
//   simulate   cycle-accurate network simulation
//   calibrate  re-fit the Section IV interpolation constants
//   reproduce  regenerate the paper-reproduction book from a manifest
//   serve      long-lived analytic query service (ksw.query/v1 JSONL)
//   fleet      sharded serve fleet: TCP front end over N serve workers
//   trace      summarize / export ksw.trace/v1 span streams
//
// All commands accept --format=table|json|csv. Command logic is exposed as
// functions over streams so the test suite can drive it directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/service_spec.hpp"

namespace ksw::cli {

/// Parsed command-line options: --key=value pairs, bare --flag booleans,
/// and positional arguments. Unknown-option detection is the caller's job
/// via `unused()`.
class ArgMap {
 public:
  /// Parse; throws std::invalid_argument on malformed input ("--=x").
  static ArgMap parse(const std::vector<std::string>& args);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] unsigned get_unsigned(const std::string& key,
                                      unsigned fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Keys that were provided but never read — for unknown-option errors.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

/// Output format shared by all commands.
enum class Format { kTable, kJson, kCsv };

/// Parse --format (default table); throws on unknown value.
[[nodiscard]] Format parse_format(const ArgMap& args);

/// Parse a service-spec string: "det:M", "geo:MU", or
/// "multi:M1@P1,M2@P2,...". Throws std::invalid_argument on syntax errors.
[[nodiscard]] sim::ServiceSpec parse_service(const std::string& text);

// Subcommands: return a process exit code.
int cmd_analyze(const ArgMap& args, std::ostream& out, std::ostream& err);
int cmd_network(const ArgMap& args, std::ostream& out, std::ostream& err);
int cmd_simulate(const ArgMap& args, std::ostream& out, std::ostream& err);
int cmd_calibrate(const ArgMap& args, std::ostream& out, std::ostream& err);
int cmd_reproduce(const ArgMap& args, std::ostream& out, std::ostream& err);
int cmd_serve(const ArgMap& args, std::ostream& out, std::ostream& err);
int cmd_fleet(const ArgMap& args, std::ostream& out, std::ostream& err);
int cmd_trace(const ArgMap& args, std::ostream& out, std::ostream& err);

/// Top-level dispatch (args excludes argv[0]).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace ksw::cli
