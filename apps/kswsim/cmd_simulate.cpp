// kswsim simulate — cycle-accurate banyan network simulation.
//
//   kswsim simulate --k=2 --stages=8 --p=0.5 [--bulk=B] [--q=Q]
//                   [--hotspot=H] [--service=det:1] [--cycles=N]
//                   [--warmup=N] [--seed=N] [--replicates=R] [--threads=T]
//                   [--buffer-capacity=C] [--correlations]
//                   [--checkpoints=3,6,9,12] [--format=table|json|csv]
#include <ostream>
#include <sstream>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "sim/replicate.hpp"
#include "tables/table.hpp"

namespace ksw::cli {

namespace {

std::vector<unsigned> parse_checkpoints(const std::string& text) {
  std::vector<unsigned> out;
  if (text.empty()) return out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t pos = 0;
    const long v = std::stol(item, &pos);
    if (pos != item.size() || v <= 0)
      throw std::invalid_argument("--checkpoints: bad value " + item);
    out.push_back(static_cast<unsigned>(v));
  }
  return out;
}

}  // namespace

int cmd_simulate(const ArgMap& args, std::ostream& out, std::ostream& err) {
  const Format format = parse_format(args);

  sim::NetworkConfig cfg;
  cfg.k = args.get_unsigned("k", 2);
  cfg.stages = args.get_unsigned("stages", 8);
  cfg.p = args.get_double("p", 0.5);
  cfg.bulk = args.get_unsigned("bulk", 1);
  cfg.q = args.get_double("q", 0.0);
  cfg.hotspot = args.get_double("hotspot", 0.0);
  cfg.hotspot_target = args.get_unsigned("hotspot-target", 0);
  const std::string topology = args.get("topology", "butterfly");
  if (topology == "omega")
    cfg.topology = sim::TopologyKind::kOmega;
  else if (topology != "butterfly")
    throw std::invalid_argument("--topology: expected butterfly|omega");
  cfg.service = parse_service(args.get("service", "det:1"));
  cfg.measure_cycles = args.get_int("cycles", 50'000);
  cfg.warmup_cycles = args.get_int("warmup", cfg.measure_cycles / 10);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.buffer_capacity = args.get_unsigned("buffer-capacity", 0);
  cfg.track_correlations = args.get_flag("correlations");
  cfg.total_checkpoints = parse_checkpoints(args.get("checkpoints", ""));
  const unsigned replicates = args.get_unsigned("replicates", 1);
  const unsigned threads = args.get_unsigned("threads", 0);

  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "simulate: unknown option --" << unknown.front() << "\n";
    return 2;
  }

  sim::NetworkResults r;
  if (replicates > 1) {
    par::ThreadPool pool(threads);
    r = sim::replicate_network(cfg, replicates, pool);
  } else {
    r = sim::run_network(cfg);
  }

  switch (format) {
    case Format::kTable: {
      tables::Table table("Simulated per-stage waiting times",
                          {"stage", "E[wait]", "Var[wait]", "E[queue]"});
      for (unsigned s = 0; s < cfg.stages; ++s)
        table.begin_row(std::to_string(s + 1))
            .add_number(r.stage_wait[s].mean(), 5)
            .add_number(r.stage_wait[s].variance(), 5)
            .add_number(r.stage_depth[s].mean(), 5);
      table.print(out);
      if (!cfg.total_checkpoints.empty()) {
        tables::Table totals("\nTotal waiting over first c stages",
                             {"stages", "mean", "variance", "p95"});
        for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i)
          totals.begin_row(std::to_string(cfg.total_checkpoints[i]))
              .add_number(r.total_wait[i].mean(), 5)
              .add_number(r.total_wait[i].variance(), 5)
              .add_number(static_cast<double>(r.total_wait[i].quantile(0.95)),
                          1);
        totals.print(out);
      }
      if (cfg.track_correlations && r.stage_covariance) {
        tables::Table corr("\nNeighbor-stage correlations",
                           {"stages", "correlation"});
        for (unsigned s = 0; s + 1 < cfg.stages; ++s)
          corr.begin_row(std::to_string(s + 1) + "-" + std::to_string(s + 2))
              .add_number(r.stage_covariance->correlation(s, s + 1), 5);
        corr.print(out);
      }
      out << "packets: injected=" << r.packets_injected
          << " delivered=" << r.packets_delivered
          << " dropped=" << r.packets_dropped << "\n";
      break;
    }
    case Format::kJson: {
      io::Json doc = io::Json::object();
      io::Json per_stage = io::Json::array();
      for (unsigned s = 0; s < cfg.stages; ++s) {
        io::Json row = io::Json::object();
        row.set("stage", static_cast<std::int64_t>(s + 1));
        row.set("mean", r.stage_wait[s].mean());
        row.set("variance", r.stage_wait[s].variance());
        row.set("mean_queue", r.stage_depth[s].mean());
        per_stage.push_back(std::move(row));
      }
      doc.set("per_stage", std::move(per_stage));
      if (!cfg.total_checkpoints.empty()) {
        io::Json totals = io::Json::array();
        for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i) {
          io::Json row = io::Json::object();
          row.set("stages",
                  static_cast<std::int64_t>(cfg.total_checkpoints[i]));
          row.set("mean", r.total_wait[i].mean());
          row.set("variance", r.total_wait[i].variance());
          totals.push_back(std::move(row));
        }
        doc.set("totals", std::move(totals));
      }
      doc.set("packets_injected",
              static_cast<std::uint64_t>(r.packets_injected));
      doc.set("packets_delivered",
              static_cast<std::uint64_t>(r.packets_delivered));
      doc.set("packets_dropped",
              static_cast<std::uint64_t>(r.packets_dropped));
      doc.write(out, 2);
      out << '\n';
      break;
    }
    case Format::kCsv: {
      io::CsvWriter csv({"stage", "mean", "variance", "mean_queue"});
      for (unsigned s = 0; s < cfg.stages; ++s)
        csv.begin_row()
            .add(static_cast<std::int64_t>(s + 1))
            .add(r.stage_wait[s].mean())
            .add(r.stage_wait[s].variance())
            .add(r.stage_depth[s].mean());
      csv.write(out);
      break;
    }
  }
  return 0;
}

}  // namespace ksw::cli
