// kswsim simulate — cycle-accurate banyan network simulation.
//
//   kswsim simulate --k=2 --stages=8 --p=0.5 [--bulk=B] [--q=Q]
//                   [--hotspot=H] [--hotspot-target=PORT]
//                   [--service=det:1] [--cycles=N]
//                   [--warmup=N] [--seed=N] [--replicates=R] [--threads=T]
//                   [--buffer-capacity=C] [--flow=vct|saf|credit]
//                   [--credit-latency=N] [--correlations]
//                   [--rng=philox|xoshiro] [--simd=auto|off]
//                   [--checkpoints=3,6,9,12] [--format=table|json|csv]
//                   [--metrics-out=FILE] [--obs-stride=N] [--obs-trace=N]
//                   [--obs-wall]
//
// --metrics-out writes a structured run report (JSON, or flat CSV when
// FILE ends in .csv; "-" streams to stdout): per-stage occupancy
// histograms, drop/block counters, phase timers, and a warmup-convergence
// trace against the paper's eq. 12 prediction. The report is bit-identical
// for a fixed seed regardless of --threads; --obs-wall adds wall-clock
// phase durations and thread-pool telemetry, which are not.
#include <optional>
#include <ostream>
#include <sstream>

#include "core/later_stages.hpp"
#include "fault/plan.hpp"
#include "io/atomic.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "obs/report.hpp"
#include "sim/replicate.hpp"
#include "simd/simd.hpp"
#include "support/error.hpp"
#include "tables/table.hpp"

namespace ksw::cli {

namespace {

std::vector<unsigned> parse_checkpoints(const std::string& text) {
  std::vector<unsigned> out;
  if (text.empty()) return out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t pos = 0;
    const long v = std::stol(item, &pos);
    if (pos != item.size() || v <= 0)
      throw usage_error("--checkpoints: bad value " + item);
    if (!out.empty() && static_cast<unsigned>(v) <= out.back())
      throw usage_error(
          "--checkpoints: values must be strictly increasing (got " + item +
          " after " + std::to_string(out.back()) + ")");
    out.push_back(static_cast<unsigned>(v));
  }
  return out;
}

/// Eq. 12 per-stage mean-wait predictions (and the eq. 11 limit) for the
/// convergence trace. Empty when the analytic model rejects the operating
/// point (e.g. rho >= 1, where no steady state exists).
std::vector<double> eq12_predictions(const sim::NetworkConfig& cfg,
                                     std::optional<double>* limit) {
  try {
    core::NetworkTrafficSpec spec;
    spec.k = cfg.k;
    spec.p = cfg.p;
    spec.bulk = cfg.bulk;
    spec.q = cfg.q;
    spec.service = cfg.service.to_model();
    const core::LaterStages ls(spec);
    std::vector<double> pred;
    pred.reserve(cfg.stages);
    for (unsigned i = 1; i <= cfg.stages; ++i)
      pred.push_back(ls.mean_at_stage(i));
    *limit = ls.mean_limit();
    return pred;
  } catch (const std::exception&) {
    limit->reset();
    return {};
  }
}

/// Assemble the full structured run report.
io::Json build_run_report(const sim::NetworkConfig& cfg,
                          const sim::NetworkResults& r, unsigned replicates,
                          const obs::Registry& pool_metrics,
                          const obs::ReportOptions& opts) {
  io::Json doc = io::Json::object();
  doc.set("schema", "ksw.obs.report/v1");
  doc.set("command", "simulate");

  io::Json config = io::Json::object();
  config.set("k", static_cast<std::int64_t>(cfg.k));
  config.set("stages", static_cast<std::int64_t>(cfg.stages));
  config.set("p", cfg.p);
  config.set("bulk", static_cast<std::int64_t>(cfg.bulk));
  config.set("q", cfg.q);
  config.set("hotspot", cfg.hotspot);
  config.set("hotspot_target", static_cast<std::int64_t>(cfg.hotspot_target));
  config.set("service_mean", cfg.service.mean());
  config.set("rho", cfg.rho());
  config.set("buffer_capacity", static_cast<std::int64_t>(cfg.buffer_capacity));
  config.set("flow", sim::to_string(cfg.flow));
  config.set("credit_latency", static_cast<std::int64_t>(cfg.credit_latency));
  config.set("warmup_cycles", static_cast<std::int64_t>(cfg.warmup_cycles));
  config.set("measure_cycles", static_cast<std::int64_t>(cfg.measure_cycles));
  config.set("seed", static_cast<std::uint64_t>(cfg.seed));
  config.set("rng", sim::to_string(cfg.rng));
  config.set("simd", simd::to_string(simd::active_level()));
  config.set("replicates", static_cast<std::int64_t>(replicates));
  config.set("obs_stride", static_cast<std::int64_t>(cfg.obs.stride));
  config.set("trace_points", static_cast<std::int64_t>(cfg.obs.trace_points));
  doc.set("config", std::move(config));

  doc.set("metrics", obs::registry_to_json(r.metrics, opts));

  std::optional<double> limit;
  const std::vector<double> predicted = eq12_predictions(cfg, &limit);
  doc.set("convergence", obs::trace_to_json(r.convergence, predicted, limit));

  // Thread-pool telemetry is runtime profile, not simulation state: its
  // shape depends on --threads, so it rides with the wall-clock fields.
  if (opts.include_wall && !pool_metrics.empty()) {
    io::Json pool = obs::registry_to_json(pool_metrics, opts);
    const auto& timers = pool_metrics.timers();
    const auto run_it = timers.find("pool.task_run");
    const auto elapsed_it = timers.find("pool.elapsed");
    const auto& gauges = pool_metrics.gauges();
    const auto workers_it = gauges.find("pool.workers");
    if (run_it != timers.end() && elapsed_it != timers.end() &&
        workers_it != gauges.end() && elapsed_it->second->seconds() > 0.0 &&
        workers_it->second->value() > 0.0)
      pool.set("worker_utilization",
               run_it->second->seconds() / (elapsed_it->second->seconds() *
                                            workers_it->second->value()));
    doc.set("pool", std::move(pool));
  }
  return doc;
}

/// Write the report to `path` ("-" = the command's stdout stream; a .csv
/// suffix selects the flat CSV registry dump instead of the JSON report).
/// File output goes through io::atomic_write_file, so a crash mid-write
/// never leaves a truncated report.
void write_metrics_report(const std::string& path, const io::Json& report,
                          const sim::NetworkResults& r,
                          const obs::ReportOptions& opts, std::ostream& out) {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ostringstream body;
  if (csv) {
    obs::registry_to_csv(r.metrics, opts).write(body);
  } else {
    report.write(body, 2);
    body << '\n';
  }
  if (path == "-")
    out << body.str();
  else
    io::atomic_write_file(path, body.str());
}

}  // namespace

int cmd_simulate(const ArgMap& args, std::ostream& out, std::ostream& err) {
  const Format format = parse_format(args);

  sim::NetworkConfig cfg;
  cfg.k = args.get_unsigned("k", 2);
  cfg.stages = args.get_unsigned("stages", 8);
  cfg.p = args.get_double("p", 0.5);
  cfg.bulk = args.get_unsigned("bulk", 1);
  cfg.q = args.get_double("q", 0.0);
  cfg.hotspot = args.get_double("hotspot", 0.0);
  cfg.hotspot_target = args.get_unsigned("hotspot-target", 0);
  const std::string topology = args.get("topology", "butterfly");
  if (topology == "omega")
    cfg.topology = sim::TopologyKind::kOmega;
  else if (topology != "butterfly")
    throw usage_error("--topology: expected butterfly|omega");
  cfg.service = parse_service(args.get("service", "det:1"));
  cfg.measure_cycles = args.get_int("cycles", 50'000);
  cfg.warmup_cycles = args.get_int("warmup", cfg.measure_cycles / 10);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.buffer_capacity = args.get_unsigned("buffer-capacity", 0);
  const std::string flow = args.get("flow", "vct");
  try {
    cfg.flow = sim::parse_flow_control(flow);
  } catch (const std::invalid_argument&) {
    throw usage_error("--flow: expected vct|saf|credit, got \"" + flow +
                      "\"");
  }
  cfg.credit_latency = args.get_unsigned("credit-latency", 2);
  const std::string rng = args.get("rng", "philox");
  try {
    cfg.rng = sim::parse_rng_kind(rng);
  } catch (const std::invalid_argument&) {
    throw usage_error("--rng: expected philox|xoshiro, got \"" + rng + "\"");
  }
  const std::string simd = args.get("simd", "auto");
  if (simd == "off")
    simd::force_level(simd::Level::kScalar);
  else if (simd != "auto")
    throw usage_error("--simd: expected auto|off, got \"" + simd + "\"");
  if (cfg.flow != sim::FlowControl::kCutThrough && cfg.buffer_capacity == 0)
    throw usage_error("--flow=" + flow +
                      " requires a finite --buffer-capacity");
  if (cfg.flow == sim::FlowControl::kCredit && cfg.credit_latency == 0)
    throw usage_error("--credit-latency must be >= 1");
  // Fail the out-of-range hotspot target eagerly as a usage error (exit 2)
  // instead of surfacing the engine's invalid_argument later.
  {
    std::uint64_t ports = 1;
    for (unsigned i = 0; i < cfg.stages && ports <= 0xffffffffull; ++i)
      ports *= cfg.k;
    if (cfg.hotspot_target >= ports)
      throw usage_error("--hotspot-target: must name a port < k^stages (" +
                        std::to_string(ports) + ")");
  }
  cfg.track_correlations = args.get_flag("correlations");
  cfg.total_checkpoints = parse_checkpoints(args.get("checkpoints", ""));
  const unsigned replicates = args.get_unsigned("replicates", 1);
  const unsigned threads = args.get_unsigned("threads", 0);

  const std::string metrics_out = args.get("metrics-out", "");
  cfg.obs.enabled = obs::kEnabled && !metrics_out.empty();
  cfg.obs.stride = args.get_unsigned("obs-stride", 64);
  cfg.obs.trace_points = args.get_unsigned("obs-trace", 24);
  obs::ReportOptions report_opts;
  report_opts.include_wall = args.get_flag("obs-wall");
  const std::string fault_plan = args.get("fault-plan", "");

  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "simulate: unknown option --" << unknown.front() << "\n";
    return 2;
  }
  if (!fault_plan.empty()) fault::load_plan(fault_plan);

  obs::Registry pool_metrics;
  sim::NetworkResults r;
  if (replicates > 1) {
    par::ThreadPool pool(threads);
    if (cfg.obs.enabled) pool.attach_metrics(&pool_metrics);
    obs::ScopedTimer elapsed(
        cfg.obs.enabled ? &pool_metrics.timer("pool.elapsed") : nullptr);
    r = sim::replicate_network(cfg, replicates, pool);
  } else {
    r = sim::run_network(cfg);
  }

  if (!metrics_out.empty()) {
    const io::Json report =
        build_run_report(cfg, r, replicates, pool_metrics, report_opts);
    write_metrics_report(metrics_out, report, r, report_opts, out);
  }

  switch (format) {
    case Format::kTable: {
      tables::Table table("Simulated per-stage waiting times",
                          {"stage", "E[wait]", "Var[wait]", "E[queue]"});
      for (unsigned s = 0; s < cfg.stages; ++s)
        table.begin_row(std::to_string(s + 1))
            .add_number(r.stage_wait[s].mean(), 5)
            .add_number(r.stage_wait[s].variance(), 5)
            .add_number(r.stage_depth[s].mean(), 5);
      table.print(out);
      if (!cfg.total_checkpoints.empty()) {
        tables::Table totals("\nTotal waiting over first c stages",
                             {"stages", "mean", "variance", "p95"});
        for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i)
          totals.begin_row(std::to_string(cfg.total_checkpoints[i]))
              .add_number(r.total_wait[i].mean(), 5)
              .add_number(r.total_wait[i].variance(), 5)
              .add_number(static_cast<double>(r.total_wait[i].quantile(0.95)),
                          1);
        totals.print(out);
      }
      if (cfg.track_correlations && r.stage_covariance) {
        tables::Table corr("\nNeighbor-stage correlations",
                           {"stages", "correlation"});
        for (unsigned s = 0; s + 1 < cfg.stages; ++s)
          corr.begin_row(std::to_string(s + 1) + "-" + std::to_string(s + 2))
              .add_number(r.stage_covariance->correlation(s, s + 1), 5);
        corr.print(out);
      }
      out << "packets: injected=" << r.packets_injected
          << " delivered=" << r.packets_delivered
          << " dropped=" << r.packets_dropped << "\n";
      break;
    }
    case Format::kJson: {
      io::Json doc = io::Json::object();
      io::Json per_stage = io::Json::array();
      for (unsigned s = 0; s < cfg.stages; ++s) {
        io::Json row = io::Json::object();
        row.set("stage", static_cast<std::int64_t>(s + 1));
        row.set("mean", r.stage_wait[s].mean());
        row.set("variance", r.stage_wait[s].variance());
        row.set("mean_queue", r.stage_depth[s].mean());
        per_stage.push_back(std::move(row));
      }
      doc.set("per_stage", std::move(per_stage));
      if (!cfg.total_checkpoints.empty()) {
        io::Json totals = io::Json::array();
        for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i) {
          io::Json row = io::Json::object();
          row.set("stages",
                  static_cast<std::int64_t>(cfg.total_checkpoints[i]));
          row.set("mean", r.total_wait[i].mean());
          row.set("variance", r.total_wait[i].variance());
          totals.push_back(std::move(row));
        }
        doc.set("totals", std::move(totals));
      }
      doc.set("packets_injected",
              static_cast<std::uint64_t>(r.packets_injected));
      doc.set("packets_delivered",
              static_cast<std::uint64_t>(r.packets_delivered));
      doc.set("packets_dropped",
              static_cast<std::uint64_t>(r.packets_dropped));
      doc.write(out, 2);
      out << '\n';
      break;
    }
    case Format::kCsv: {
      io::CsvWriter csv({"stage", "mean", "variance", "mean_queue"});
      for (unsigned s = 0; s < cfg.stages; ++s)
        csv.begin_row()
            .add(static_cast<std::int64_t>(s + 1))
            .add(r.stage_wait[s].mean())
            .add(r.stage_wait[s].variance())
            .add(r.stage_depth[s].mean());
      csv.write(out);
      break;
    }
  }
  return 0;
}

}  // namespace ksw::cli
