// kswsim reproduce — regenerate the paper-reproduction book from a
// declarative sweep manifest.
//
//   kswsim reproduce --manifest=manifests/paper.json
//                    [--out-dir=DIR] [--index=FILE] [--threads=T]
//                    [--section=ID[,ID...]] [--list] [--check]
//                    [--resume] [--checkpoint=FILE] [--point-timeout=MS]
//                    [--fault-plan=FILE]
//
// Default mode runs every section (analytic model vs replicated
// simulation at each grid point), writes <out-dir>/<id>.md + .csv per
// section and the index (atomically: temp + fsync + rename), prints a
// gate summary, and exits 3 if any agreement gate failed. --check
// regenerates in memory and compares against the committed files instead
// of writing: exit 4 on drift. Output is bit-identical for a fixed
// manifest at any --threads.
//
// Resilience (see docs/ROBUSTNESS.md): full write-mode runs journal each
// completed grid point to a checkpoint file; after a kill (SIGINT/SIGTERM
// exit 130) `--resume` replays journaled points bit-exactly and computes
// only the rest, producing a book byte-identical to an uninterrupted run.
// A point that fails or exceeds --point-timeout is marked degraded and
// the sweep continues (exit 7). --fault-plan arms deterministic fault
// sites for testing.
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "fault/plan.hpp"
#include "io/atomic.hpp"
#include "kswsim/cli.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "par/cancel.hpp"
#include "par/thread_pool.hpp"
#include "support/error.hpp"
#include "sweep/checkpoint.hpp"
#include "sweep/emit.hpp"
#include "sweep/manifest.hpp"
#include "sweep/runner.hpp"
#include "tables/table.hpp"

namespace ksw::cli {

namespace {

/// Accept --manifest=PATH, "--manifest PATH" (flag + positional), or a
/// bare positional path.
std::string manifest_path(const ArgMap& args) {
  const std::string value = args.get("manifest", "");
  if (!value.empty() && value != "true") return value;
  if (!args.positional().empty()) return args.positional().front();
  throw usage_error(
      "reproduce: --manifest=PATH required (e.g. manifests/paper.json)");
}

std::vector<std::string> split_ids(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Read a whole file; empty optional-style flag via `found`.
std::string read_file(const std::string& path, bool* found) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *found = false;
    return {};
  }
  *found = true;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int cmd_reproduce(const ArgMap& args, std::ostream& out, std::ostream& err) {
  const std::string path = manifest_path(args);
  const std::string out_dir = args.get("out-dir", "");
  const std::string index = args.get("index", "");
  const unsigned threads = args.get_unsigned("threads", 0);
  const bool list_only = args.get_flag("list");
  const bool check = args.get_flag("check");
  const bool resume = args.get_flag("resume");
  const std::int64_t point_timeout = args.get_int("point-timeout", 0);
  const std::string fault_plan = args.get("fault-plan", "");
  const std::string trace_out = args.get("trace-out", "");
  std::string checkpoint_path = args.get("checkpoint", "");
  const std::vector<std::string> only = split_ids(args.get("section", ""));

  const auto unknown = args.unused();
  if (!unknown.empty())
    throw usage_error("reproduce: unknown option --" + unknown.front());
  if (point_timeout < 0)
    throw usage_error("reproduce: --point-timeout must be >= 0 ms");
  if (resume && check)
    throw usage_error(
        "reproduce: --resume and --check are mutually exclusive (a check "
        "run writes nothing, so there is nothing to resume)");
  if (resume && !only.empty())
    throw usage_error(
        "reproduce: --resume requires a full run (drop --section; the "
        "journal indexes the manifest's complete grid)");

  if (!fault_plan.empty()) fault::load_plan(fault_plan);

  bool manifest_found = false;
  const std::string manifest_text = read_file(path, &manifest_found);
  if (!manifest_found)
    throw io_error("reproduce: cannot open manifest " + path);
  sweep::Manifest manifest = sweep::load_manifest(path);
  if (!out_dir.empty()) manifest.output_dir = out_dir;
  if (!index.empty()) manifest.index_path = index;

  if (!only.empty()) {
    std::vector<sweep::Section> kept;
    for (const auto& id : only) {
      bool found = false;
      for (const auto& section : manifest.sections)
        if (section.id == id) {
          kept.push_back(section);
          found = true;
        }
      if (!found)
        throw usage_error("reproduce: no section with id \"" + id + "\" in " +
                          path);
    }
    manifest.sections = std::move(kept);
  }

  if (list_only) {
    tables::Table table("Sections of " + manifest.name,
                        {"id", "kind", "points", "replicates", "cycles"});
    for (const auto& section : manifest.sections)
      table.begin_row(section.id)
          .add_cell(sweep::to_string(section.kind))
          .add_cell(std::to_string(section.points.size()))
          .add_cell(std::to_string(section.budget.replicates))
          .add_cell(std::to_string(section.budget.measure_cycles));
    table.print(out);
    return 0;
  }

  // The journal lives next to the generated pages unless relocated; only
  // full write-mode runs maintain one (a --section subset or a --check run
  // would index a different grid / writes nothing).
  const bool full_run = only.empty();
  const bool journaling = full_run && !check;
  if (checkpoint_path.empty())
    checkpoint_path =
        (std::filesystem::path(manifest.output_dir) / ".checkpoint.jsonl")
            .generic_string();
  std::optional<sweep::Journal> journal;
  if (journaling) {
    const std::string fingerprint =
        sweep::manifest_fingerprint(manifest_text);
    if (resume) {
      journal = sweep::Journal::load_or_create(checkpoint_path, fingerprint);
      if (journal->size() > 0)
        err << "reproduce: resuming from " << checkpoint_path << " ("
            << journal->size() << " points already done)\n";
    } else {
      journal.emplace(checkpoint_path, fingerprint);
    }
  }

  par::ThreadPool pool(threads);
  sweep::RunOptions options;
  options.cancel = &par::global_cancel_token();
  options.journal = journal ? &*journal : nullptr;
  options.point_timeout_ms = point_timeout;
  options.progress = &err;

  // Per-grid-point spans keyed to the manifest fingerprint: a run and
  // its --resume continuation emit the same trace ids for the same
  // points, so their ksw.trace/v1 streams stitch in a trace viewer.
  obs::Tracer tracer;
  if (!trace_out.empty()) {
    options.tracer = &tracer;
    options.trace_key = sweep::manifest_fingerprint(manifest_text);
  }
  const auto write_trace = [&] {
    if (!trace_out.empty())
      io::atomic_write_file(
          trace_out,
          obs::render_trace_jsonl(tracer.snapshot(), tracer.dropped()));
  };

  sweep::SweepResult result;
  try {
    result = sweep::run_sweep(manifest, pool, options);
  } catch (const Error& e) {
    if (e.kind() != ErrorKind::kInterrupted) throw;
    // The partial trace is flushed too, so the resumed run's stream can
    // be stitched onto this one.
    write_trace();
    err << "kswsim: interrupted: " << e.what() << "\n";
    if (journal && journal->size() > 0)
      err << "reproduce: " << journal->size() << " completed points saved in "
          << checkpoint_path << "; rerun with --resume to continue\n";
    return e.exit_code();
  }
  write_trace();

  // The index enumerates every section, so it is only meaningful (and only
  // checked/written) for a full run.
  const auto artifacts = sweep::render_book(manifest, result, full_run);

  unsigned drifted = 0;
  if (check) {
    for (const auto& artifact : artifacts) {
      bool found = false;
      const std::string committed = read_file(artifact.path, &found);
      if (!found) {
        err << "reproduce: missing " << artifact.path << "\n";
        ++drifted;
      } else if (committed != artifact.content) {
        err << "reproduce: drift in " << artifact.path
            << " (regenerate with kswsim reproduce --manifest=" << path
            << ")\n";
        ++drifted;
      }
    }
  } else {
    sweep::write_artifacts(artifacts);
  }

  const unsigned degraded = result.points_degraded();
  tables::Table summary("Reproduction summary (" + manifest.name + ")",
                        {"section", "points", "gates", "failed", "degraded"});
  for (const auto& sr : result.sections)
    summary.begin_row(sr.section.id)
        .add_cell(std::to_string(sr.points.size()))
        .add_cell(std::to_string(sr.cells_gated()))
        .add_cell(std::to_string(sr.cells_failed()))
        .add_cell(std::to_string(sr.points_degraded()));
  summary.print(out);
  out << (check ? "checked " : "wrote ") << artifacts.size() << " artifacts"
      << (full_run ? "" : " (partial run: index skipped)") << "; "
      << result.cells_gated() - result.cells_failed() << "/"
      << result.cells_gated() << " gates passed";
  if (check && drifted > 0) out << "; " << drifted << " files drifted";
  if (degraded > 0) out << "; " << degraded << " points degraded";
  out << "\n";

  if (journaling) {
    if (degraded > 0) {
      err << "reproduce: degraded points were not checkpointed; rerun with "
             "--resume to retry only them\n";
    } else {
      // Fully clean full run: the journal has served its purpose.
      sweep::Journal::remove_file(checkpoint_path);
    }
  }

  if (result.cells_failed() > 0) return exit_code(ErrorKind::kGate);
  if (drifted > 0) return exit_code(ErrorKind::kDrift);
  if (degraded > 0) return kExitDegraded;
  return 0;
}

}  // namespace ksw::cli
