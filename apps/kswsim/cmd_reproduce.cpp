// kswsim reproduce — regenerate the paper-reproduction book from a
// declarative sweep manifest.
//
//   kswsim reproduce --manifest=manifests/paper.json
//                    [--out-dir=DIR] [--index=FILE] [--threads=T]
//                    [--section=ID[,ID...]] [--list] [--check]
//
// Default mode runs every section (analytic model vs replicated
// simulation at each grid point), writes <out-dir>/<id>.md + .csv per
// section and the index, prints a gate summary, and exits 3 if any
// agreement gate failed. --check regenerates in memory and compares
// against the committed files instead of writing: exit 4 on drift.
// Output is bit-identical for a fixed manifest at any --threads.
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "kswsim/cli.hpp"
#include "par/thread_pool.hpp"
#include "sweep/emit.hpp"
#include "sweep/manifest.hpp"
#include "sweep/runner.hpp"
#include "tables/table.hpp"

namespace ksw::cli {

namespace {

/// Accept --manifest=PATH, "--manifest PATH" (flag + positional), or a
/// bare positional path.
std::string manifest_path(const ArgMap& args) {
  const std::string value = args.get("manifest", "");
  if (!value.empty() && value != "true") return value;
  if (!args.positional().empty()) return args.positional().front();
  throw std::invalid_argument(
      "reproduce: --manifest=PATH required (e.g. manifests/paper.json)");
}

std::vector<std::string> split_ids(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Read a whole file; empty optional-style flag via `found`.
std::string read_file(const std::string& path, bool* found) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *found = false;
    return {};
  }
  *found = true;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int cmd_reproduce(const ArgMap& args, std::ostream& out, std::ostream& err) {
  const std::string path = manifest_path(args);
  const std::string out_dir = args.get("out-dir", "");
  const std::string index = args.get("index", "");
  const unsigned threads = args.get_unsigned("threads", 0);
  const bool list_only = args.get_flag("list");
  const bool check = args.get_flag("check");
  const std::vector<std::string> only = split_ids(args.get("section", ""));

  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "reproduce: unknown option --" << unknown.front() << "\n";
    return 2;
  }

  sweep::Manifest manifest = sweep::load_manifest(path);
  if (!out_dir.empty()) manifest.output_dir = out_dir;
  if (!index.empty()) manifest.index_path = index;

  if (!only.empty()) {
    std::vector<sweep::Section> kept;
    for (const auto& id : only) {
      bool found = false;
      for (const auto& section : manifest.sections)
        if (section.id == id) {
          kept.push_back(section);
          found = true;
        }
      if (!found)
        throw std::invalid_argument("reproduce: no section with id \"" + id +
                                    "\" in " + path);
    }
    manifest.sections = std::move(kept);
  }

  if (list_only) {
    tables::Table table("Sections of " + manifest.name,
                        {"id", "kind", "points", "replicates", "cycles"});
    for (const auto& section : manifest.sections)
      table.begin_row(section.id)
          .add_cell(sweep::to_string(section.kind))
          .add_cell(std::to_string(section.points.size()))
          .add_cell(std::to_string(section.budget.replicates))
          .add_cell(std::to_string(section.budget.measure_cycles));
    table.print(out);
    return 0;
  }

  par::ThreadPool pool(threads);
  const sweep::SweepResult result = sweep::run_sweep(manifest, pool, &err);
  // The index enumerates every section, so it is only meaningful (and only
  // checked/written) for a full run.
  const bool full_run = only.empty();
  const auto artifacts = sweep::render_book(manifest, result, full_run);

  unsigned drifted = 0;
  if (check) {
    for (const auto& artifact : artifacts) {
      bool found = false;
      const std::string committed = read_file(artifact.path, &found);
      if (!found) {
        err << "reproduce: missing " << artifact.path << "\n";
        ++drifted;
      } else if (committed != artifact.content) {
        err << "reproduce: drift in " << artifact.path
            << " (regenerate with kswsim reproduce --manifest=" << path
            << ")\n";
        ++drifted;
      }
    }
  } else {
    for (const auto& artifact : artifacts) {
      const auto parent =
          std::filesystem::path(artifact.path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent);
      std::ofstream file(artifact.path, std::ios::binary);
      if (!file)
        throw std::invalid_argument("reproduce: cannot write " +
                                    artifact.path);
      file << artifact.content;
    }
  }

  tables::Table summary("Reproduction summary (" + manifest.name + ")",
                        {"section", "points", "gates", "failed"});
  for (const auto& sr : result.sections)
    summary.begin_row(sr.section.id)
        .add_cell(std::to_string(sr.points.size()))
        .add_cell(std::to_string(sr.cells_gated()))
        .add_cell(std::to_string(sr.cells_failed()));
  summary.print(out);
  out << (check ? "checked " : "wrote ") << artifacts.size() << " artifacts"
      << (full_run ? "" : " (partial run: index skipped)") << "; "
      << result.cells_gated() - result.cells_failed() << "/"
      << result.cells_gated() << " gates passed";
  if (check && drifted > 0) out << "; " << drifted << " files drifted";
  out << "\n";

  if (result.cells_failed() > 0) return 3;
  if (drifted > 0) return 4;
  return 0;
}

}  // namespace ksw::cli
