// kswsim serve — long-lived analytic query service (ksw.query/v1).
//
//   kswsim serve [--listen=SOCKET] [--threads=T] [--batch=N]
//                [--cache-mb=MB] [--deadline-ms=MS] [--metrics-out=FILE|-]
//                [--metrics-interval-ms=MS] [--access-log=FILE]
//                [--trace-out=FILE]
//
// Reads JSONL requests from stdin (or accepts connections on a Unix
// socket with --listen) and streams one JSONL response per request, in
// request order. Requests that fail — unparseable line, unknown kernel,
// bad parameters, missed deadline — answer in-band with error.kind
// instead of terminating the process; only startup usage errors and
// transport failures use the usual exit codes. See docs/SERVING.md.
//
// Observability (docs/OBSERVABILITY.md, docs/SERVING.md):
//   --metrics-out writes a structured snapshot (ksw.obs.report/v1) on
//     shutdown — including the interrupted path, before exit 130. In
//     stdin mode `-` is rejected with a usage error: stdout is the JSONL
//     response channel and a metrics report interleaved into it would
//     corrupt the protocol stream.
//   --metrics-interval-ms additionally rewrites that snapshot atomically
//     every MS milliseconds while serving, for live fleet monitoring.
//   --access-log appends one JSONL row per request: trace_id, kernel,
//     cache hit/miss + shard, queue-wait vs eval-wall split, outcome.
//   --trace-out records serve.batch/serve.request spans and writes a
//     ksw.trace/v1 stream on shutdown (see `kswsim trace`).
#include <iostream>
#include <optional>
#include <ostream>
#include <sstream>
#include <unistd.h>

#include "io/atomic.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "kswsim/metrics_ticker.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "par/cancel.hpp"
#include "serve/service.hpp"
#include "support/error.hpp"

namespace ksw::cli {

namespace {

/// Non-negative integer flag, rejected with a usage error otherwise.
std::int64_t get_count(const ArgMap& args, const std::string& key,
                       std::int64_t fallback) {
  const std::int64_t v = args.get_int(key, fallback);
  if (v < 0)
    throw usage_error("--" + key + ": must be non-negative (got " +
                      std::to_string(v) + ")");
  return v;
}

void write_report(const std::string& path, const io::Json& report,
                  std::ostream& out) {
  std::ostringstream body;
  report.write(body, 2);
  body << '\n';
  if (path == "-")
    out << body.str();
  else
    io::atomic_write_file(path, body.str());
}

}  // namespace

int cmd_serve(const ArgMap& args, std::ostream& out, std::ostream& err) {
  // `serve --fleet=N` is sugar for `fleet --workers=N` (docs/SERVING.md
  // "Fleet protocol addendum"): one entry point, two process models.
  if (args.has("fleet")) return cmd_fleet(args, out, err);

  serve::ServeOptions opts;
  opts.threads = static_cast<std::size_t>(get_count(args, "threads", 0));
  opts.batch = static_cast<std::size_t>(get_count(args, "batch", 64));
  opts.cache_mb = static_cast<std::uint64_t>(get_count(args, "cache-mb", 64));
  opts.deadline_ms = get_count(args, "deadline-ms", 0);
  if (opts.batch == 0) throw usage_error("--batch: must be at least 1");
  const std::string listen = args.get("listen", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::int64_t metrics_interval =
      get_count(args, "metrics-interval-ms", 0);
  opts.access_log = args.get("access-log", "");
  const std::string trace_out = args.get("trace-out", "");

  // Flags are validated before the first read, so a typo fails fast with
  // exit 2 instead of blocking on stdin.
  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "serve: unknown option --" << unknown.front() << "\n";
    return 2;
  }
  if (metrics_out == "-" && listen.empty())
    throw usage_error(
        "--metrics-out=-: stdout is the JSONL response channel in stdin "
        "mode; write the snapshot to a file (or use --listen)");
  if (metrics_interval > 0 && (metrics_out.empty() || metrics_out == "-"))
    throw usage_error(
        "--metrics-interval-ms: requires --metrics-out=FILE to write the "
        "periodic snapshots to");

  // The tracer outlives the service; spans are exported once on the way
  // out (any path, including interrupted).
  obs::Tracer tracer;
  if (!trace_out.empty()) opts.tracer = &tracer;

  serve::Service service(opts);
  const par::CancelToken* cancel = &par::global_cancel_token();
  serve::ServeSummary summary;
  {
    std::optional<MetricsTicker> ticker;
    if (metrics_interval > 0)
      ticker.emplace(
          [&service] { return service.report().to_string(2) + "\n"; },
          metrics_out, metrics_interval, err, "serve");
    if (!listen.empty()) {
      err << "serve: listening on " << listen << "\n";
      summary = service.run_listen(listen, cancel);
    } else if (&out == &std::cout) {
      // Real CLI invocation: poll-based reader on the raw descriptors, so
      // a SIGTERM during a blocked read is observed within ~200 ms.
      summary = service.run_fd(STDIN_FILENO, STDOUT_FILENO, cancel);
    } else {
      // In-process harness (tests): plain stream loop.
      summary = service.run(std::cin, out, cancel);
    }
  }

  // Snapshots are written on every path — including interrupted — so an
  // operator who SIGTERMs the service still gets its final counters and
  // the trace of everything served so far.
  if (!metrics_out.empty())
    write_report(metrics_out, service.report(), out);
  if (!trace_out.empty())
    io::atomic_write_file(
        trace_out,
        obs::render_trace_jsonl(tracer.snapshot(), tracer.dropped()));

  if (summary.interrupted)
    throw interrupted_error("serve: shutdown requested (" +
                            std::to_string(summary.responses) + " of " +
                            std::to_string(summary.requests) +
                            " responses flushed)");
  err << "serve: " << summary.responses << " responses ("
      << summary.requests << " requests)\n";
  return 0;
}

}  // namespace ksw::cli
