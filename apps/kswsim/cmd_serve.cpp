// kswsim serve — long-lived analytic query service (ksw.query/v1).
//
//   kswsim serve [--listen=SOCKET] [--threads=T] [--batch=N]
//                [--cache-mb=MB] [--deadline-ms=MS] [--metrics-out=FILE|-]
//
// Reads JSONL requests from stdin (or accepts connections on a Unix
// socket with --listen) and streams one JSONL response per request, in
// request order. Requests that fail — unparseable line, unknown kernel,
// bad parameters, missed deadline — answer in-band with error.kind
// instead of terminating the process; only startup usage errors and
// transport failures use the usual exit codes. See docs/SERVING.md.
//
// --metrics-out writes a structured snapshot (schema ksw.obs.report/v1)
// on shutdown: request/response/cache counters, queue depth, and
// p50/p99 service time. It is written on the interrupted path too,
// before the process exits 130.
#include <iostream>
#include <ostream>
#include <sstream>
#include <unistd.h>

#include "io/atomic.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "par/cancel.hpp"
#include "serve/service.hpp"
#include "support/error.hpp"

namespace ksw::cli {

namespace {

/// Non-negative integer flag, rejected with a usage error otherwise.
std::int64_t get_count(const ArgMap& args, const std::string& key,
                       std::int64_t fallback) {
  const std::int64_t v = args.get_int(key, fallback);
  if (v < 0)
    throw usage_error("--" + key + ": must be non-negative (got " +
                      std::to_string(v) + ")");
  return v;
}

void write_report(const std::string& path, const io::Json& report,
                  std::ostream& out) {
  std::ostringstream body;
  report.write(body, 2);
  body << '\n';
  if (path == "-")
    out << body.str();
  else
    io::atomic_write_file(path, body.str());
}

}  // namespace

int cmd_serve(const ArgMap& args, std::ostream& out, std::ostream& err) {
  serve::ServeOptions opts;
  opts.threads = static_cast<std::size_t>(get_count(args, "threads", 0));
  opts.batch = static_cast<std::size_t>(get_count(args, "batch", 64));
  opts.cache_mb = static_cast<std::uint64_t>(get_count(args, "cache-mb", 64));
  opts.deadline_ms = get_count(args, "deadline-ms", 0);
  if (opts.batch == 0) throw usage_error("--batch: must be at least 1");
  const std::string listen = args.get("listen", "");
  const std::string metrics_out = args.get("metrics-out", "");

  // Flags are validated before the first read, so a typo fails fast with
  // exit 2 instead of blocking on stdin.
  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "serve: unknown option --" << unknown.front() << "\n";
    return 2;
  }

  serve::Service service(opts);
  const par::CancelToken* cancel = &par::global_cancel_token();
  serve::ServeSummary summary;
  if (!listen.empty()) {
    err << "serve: listening on " << listen << "\n";
    summary = service.run_listen(listen, cancel);
  } else if (&out == &std::cout) {
    // Real CLI invocation: poll-based reader on the raw descriptors, so a
    // SIGTERM during a blocked read is observed within ~200 ms.
    summary = service.run_fd(STDIN_FILENO, STDOUT_FILENO, cancel);
  } else {
    // In-process harness (tests): plain stream loop.
    summary = service.run(std::cin, out, cancel);
  }

  // The snapshot is written on every path — including interrupted — so an
  // operator who SIGTERMs the service still gets its final counters.
  if (!metrics_out.empty())
    write_report(metrics_out, service.report(), out);

  if (summary.interrupted)
    throw interrupted_error("serve: shutdown requested (" +
                            std::to_string(summary.responses) + " of " +
                            std::to_string(summary.requests) +
                            " responses flushed)");
  err << "serve: " << summary.responses << " responses ("
      << summary.requests << " requests)\n";
  return 0;
}

}  // namespace ksw::cli
