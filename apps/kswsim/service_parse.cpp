#include <stdexcept>

#include "kswsim/cli.hpp"

namespace ksw::cli {

namespace {

unsigned parse_size(const std::string& text, const char* what) {
  std::size_t pos = 0;
  const long v = std::stol(text, &pos);
  if (pos != text.size() || v <= 0)
    throw std::invalid_argument(std::string(what) +
                                ": bad service size: " + text);
  return static_cast<unsigned>(v);
}

}  // namespace

sim::ServiceSpec parse_service(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos)
    throw std::invalid_argument(
        "service spec must be det:M, geo:MU, or multi:M1@P1,... ; got " +
        text);
  const std::string kind = text.substr(0, colon);
  const std::string body = text.substr(colon + 1);

  if (kind == "det") return sim::ServiceSpec::deterministic(parse_size(body, "det"));

  if (kind == "geo") {
    std::size_t pos = 0;
    const double mu = std::stod(body, &pos);
    if (pos != body.size())
      throw std::invalid_argument("geo: bad mu: " + body);
    return sim::ServiceSpec::geometric(mu);
  }

  if (kind == "multi") {
    std::vector<core::MultiSizeService::Size> sizes;
    std::size_t start = 0;
    while (start <= body.size()) {
      const auto comma = body.find(',', start);
      const std::string item =
          body.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      const auto at = item.find('@');
      if (at == std::string::npos)
        throw std::invalid_argument("multi: expected M@P, got " + item);
      std::size_t pos = 0;
      const double prob = std::stod(item.substr(at + 1), &pos);
      if (pos != item.size() - at - 1)
        throw std::invalid_argument("multi: bad probability in " + item);
      sizes.push_back({parse_size(item.substr(0, at), "multi"), prob});
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return sim::ServiceSpec::multi_size(std::move(sizes));
  }

  throw std::invalid_argument("unknown service kind: " + kind);
}

}  // namespace ksw::cli
