#include "kswsim/cli.hpp"

namespace ksw::cli {

// The spec grammar lives in sim::ServiceSpec::parse so the sweep-manifest
// reader shares it; this wrapper keeps the historical CLI entry point.
sim::ServiceSpec parse_service(const std::string& text) {
  return sim::ServiceSpec::parse(text);
}

}  // namespace ksw::cli
