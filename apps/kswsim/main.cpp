#include <iostream>
#include <string>
#include <vector>

#include "kswsim/cli.hpp"
#include "par/cancel.hpp"

int main(int argc, char** argv) {
  // SIGINT/SIGTERM request cooperative cancellation: long-running commands
  // flush their checkpoint journal and partial report, then exit 130
  // (128 + SIGINT). A second signal falls back to immediate termination.
  ksw::par::install_signal_handlers();
  std::vector<std::string> args(argv + 1, argv + argc);
  return ksw::cli::run(args, std::cout, std::cerr);
}
