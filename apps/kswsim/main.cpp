#include <iostream>
#include <string>
#include <vector>

#include "kswsim/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ksw::cli::run(args, std::cout, std::cerr);
}
