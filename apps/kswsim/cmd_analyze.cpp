// kswsim analyze — exact first-stage analysis (Theorem 1).
//
//   kswsim analyze --k=2 --s=2 --p=0.5 [--bulk=B] [--q=Q]
//                  [--service=det:1] [--distribution=N]
//                  [--format=table|json|csv]
#include <memory>
#include <ostream>

#include "core/first_stage.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "support/error.hpp"
#include "tables/table.hpp"

namespace ksw::cli {

namespace {

core::QueueSpec build_queue(const ArgMap& args) {
  const unsigned k = args.get_unsigned("k", 2);
  const unsigned s = args.get_unsigned("s", k);
  const double p = args.get_double("p", 0.5);
  const unsigned bulk = args.get_unsigned("bulk", 1);
  const double q = args.get_double("q", 0.0);
  const sim::ServiceSpec service =
      parse_service(args.get("service", "det:1"));

  std::shared_ptr<const core::ArrivalModel> arrivals;
  if (q > 0.0) {
    if (k != s)
      throw usage_error(
          "analyze: favorite-output traffic (--q) requires k == s");
    arrivals = core::make_nonuniform_arrivals(k, p, q, bulk);
  } else {
    arrivals = core::make_bulk_arrivals(k, s, p, bulk);
  }
  return core::QueueSpec{std::move(arrivals), service.to_model()};
}

}  // namespace

int cmd_analyze(const ArgMap& args, std::ostream& out, std::ostream& err) {
  const Format format = parse_format(args);
  const auto dist_len =
      static_cast<std::size_t>(args.get_int("distribution", 0));

  const core::QueueSpec queue = build_queue(args);
  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "analyze: unknown option --" << unknown.front() << "\n";
    return 2;
  }

  const core::FirstStage first(queue);
  const auto m = first.moments();

  switch (format) {
    case Format::kTable: {
      tables::Table table("First-stage waiting time (Theorem 1)",
                          {"quantity", "value"});
      table.begin_row("lambda").add_number(first.lambda(), 6);
      table.begin_row("mean service").add_number(first.mean_service(), 6);
      table.begin_row("rho").add_number(first.rho(), 6);
      table.begin_row("E[wait]").add_number(m.mean, 6);
      table.begin_row("Var[wait]").add_number(m.variance, 6);
      table.begin_row("skewness").add_number(m.skewness(), 6);
      table.begin_row("E[delay]").add_number(first.mean_delay(), 6);
      table.begin_row("Var[delay]").add_number(first.variance_delay(), 6);
      table.print(out);
      if (dist_len > 0) {
        tables::Table dist_table("P(wait = j)", {"j", "probability"});
        const auto dist = first.distribution(dist_len);
        for (std::size_t j = 0; j < dist.size(); ++j)
          dist_table.begin_row(std::to_string(j)).add_number(dist[j], 8);
        dist_table.print(out);
      }
      break;
    }
    case Format::kJson: {
      io::Json doc = io::Json::object();
      doc.set("lambda", first.lambda());
      doc.set("mean_service", first.mean_service());
      doc.set("rho", first.rho());
      doc.set("mean_wait", m.mean);
      doc.set("var_wait", m.variance);
      doc.set("skewness", m.skewness());
      doc.set("mean_delay", first.mean_delay());
      doc.set("var_delay", first.variance_delay());
      if (dist_len > 0) {
        io::Json arr = io::Json::array();
        for (double pj : first.distribution(dist_len)) arr.push_back(pj);
        doc.set("distribution", std::move(arr));
      }
      doc.write(out, 2);
      out << '\n';
      break;
    }
    case Format::kCsv: {
      io::CsvWriter csv({"quantity", "value"});
      csv.begin_row().add("lambda").add(first.lambda());
      csv.begin_row().add("mean_service").add(first.mean_service());
      csv.begin_row().add("rho").add(first.rho());
      csv.begin_row().add("mean_wait").add(m.mean);
      csv.begin_row().add("var_wait").add(m.variance);
      csv.begin_row().add("skewness").add(m.skewness());
      if (dist_len > 0) {
        const auto dist = first.distribution(dist_len);
        for (std::size_t j = 0; j < dist.size(); ++j)
          csv.begin_row().add("P(w=" + std::to_string(j) + ")").add(dist[j]);
      }
      csv.write(out);
      break;
    }
  }
  return 0;
}

}  // namespace ksw::cli
