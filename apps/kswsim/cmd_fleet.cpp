// kswsim fleet — sharded ksw.query/v1 serve fleet behind one TCP port.
//
//   kswsim fleet [--workers=N] [--tcp=HOST:PORT|PORT] [--socket-dir=DIR]
//                [--queue-depth=D] [--deadline-ms=MS]
//                [--threads=T] [--batch=B] [--cache-mb=MB]
//                [--metrics-out=FILE|-] [--metrics-interval-ms=MS]
//                [--access-log=FILE] [--trace-out=FILE]
//                [--worker-binary=PATH]
//
// One supervisor process accepts any number of concurrent TCP clients,
// spawns N `kswsim serve --listen=<unix socket>` worker processes, and
// routes each request to a worker by the FNV-1a hash of its canonical
// cache key — so a repeated query always lands on the same worker's warm
// cache and fleet responses are bit-identical to single-process serve.
// `kswsim serve --fleet=N` is an alias. The per-worker queue is bounded
// (--queue-depth); excess load is shed in-band with error.kind
// "overload". Dead workers are restarted; a crash-looping worker takes
// the fleet down with exit 8. See docs/OPERATIONS.md for the operator's
// handbook and docs/SERVING.md for the protocol addendum.
//
// --threads/--batch/--cache-mb/--deadline-ms are forwarded to every
// worker unchanged, so per-worker tuning is the same as single-process
// tuning. --access-log and --trace-out observe the *supervisor* hop
// (routing, queueing, relay); workers keep their own telemetry flags.
#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <optional>
#include <ostream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "fleet/supervisor.hpp"
#include "io/atomic.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "kswsim/metrics_ticker.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "par/cancel.hpp"
#include "support/error.hpp"

namespace ksw::cli {

namespace {

std::int64_t get_count_fleet(const ArgMap& args, const std::string& key,
                             std::int64_t fallback) {
  const std::int64_t v = args.get_int(key, fallback);
  if (v < 0)
    throw usage_error("--" + key + ": must be non-negative (got " +
                      std::to_string(v) + ")");
  return v;
}

/// Parse --tcp=HOST:PORT or --tcp=PORT (host defaults to 127.0.0.1;
/// port 0 asks the kernel for an ephemeral port, announced on stderr).
void parse_tcp(const std::string& text, std::string* host, int* port) {
  std::string port_text = text;
  const auto colon = text.rfind(':');
  if (colon != std::string::npos) {
    *host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
    if (host->empty())
      throw usage_error("--tcp: empty host in '" + text + "'");
  }
  try {
    std::size_t used = 0;
    const int p = std::stoi(port_text, &used);
    if (used != port_text.size() || p < 0 || p > 65535)
      throw std::invalid_argument(port_text);
    *port = p;
  } catch (const std::exception&) {
    throw usage_error("--tcp: bad port '" + port_text + "' in '" + text +
                      "' (want HOST:PORT or PORT)");
  }
}

void write_fleet_report(const std::string& path, const io::Json& report,
                        std::ostream& out) {
  const std::string body = report.to_string(2) + "\n";
  if (path == "-")
    out << body;
  else
    io::atomic_write_file(path, body);
}

}  // namespace

int cmd_fleet(const ArgMap& args, std::ostream& out, std::ostream& err) {
  fleet::FleetOptions opts;
  // `serve --fleet=N` spells the worker count via --fleet; `fleet`
  // proper uses --workers. --workers wins when both are given.
  const std::int64_t fleet_alias = get_count_fleet(args, "fleet", 4);
  opts.workers =
      static_cast<std::size_t>(get_count_fleet(args, "workers", fleet_alias));
  if (opts.workers == 0)
    throw usage_error("--workers: must be at least 1");
  parse_tcp(args.get("tcp", "127.0.0.1:0"), &opts.host, &opts.port);
  opts.queue_depth =
      static_cast<std::size_t>(get_count_fleet(args, "queue-depth", 128));
  if (opts.queue_depth == 0)
    throw usage_error("--queue-depth: must be at least 1");
  opts.deadline_ms = get_count_fleet(args, "deadline-ms", 0);
  opts.socket_dir = args.get("socket-dir", "");
  opts.worker_binary = args.get("worker-binary", "");
  opts.access_log = args.get("access-log", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::int64_t metrics_interval =
      get_count_fleet(args, "metrics-interval-ms", 0);
  const std::string trace_out = args.get("trace-out", "");

  // Worker pass-through: same names, same defaults as `kswsim serve`.
  const std::int64_t threads = get_count_fleet(args, "threads", 0);
  const std::int64_t batch = get_count_fleet(args, "batch", 64);
  const std::int64_t cache_mb = get_count_fleet(args, "cache-mb", 64);
  if (batch == 0) throw usage_error("--batch: must be at least 1");
  opts.worker_args = {"--threads=" + std::to_string(threads),
                      "--batch=" + std::to_string(batch),
                      "--cache-mb=" + std::to_string(cache_mb)};
  if (opts.deadline_ms > 0)
    opts.worker_args.push_back("--deadline-ms=" +
                               std::to_string(opts.deadline_ms));

  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "fleet: unknown option --" << unknown.front() << "\n";
    return 2;
  }
  if (metrics_interval > 0 && (metrics_out.empty() || metrics_out == "-"))
    throw usage_error(
        "--metrics-interval-ms: requires --metrics-out=FILE to write the "
        "periodic snapshots to");

  // Default socket dir: a fresh per-process directory under TMPDIR, so
  // two fleets on one host never collide. An explicit --socket-dir is
  // the operator's responsibility (docs/OPERATIONS.md "Socket layout").
  bool made_socket_dir = false;
  if (opts.socket_dir.empty()) {
    const char* tmp = ::getenv("TMPDIR");
    std::string pattern = std::string(tmp != nullptr ? tmp : "/tmp") +
                          "/kswsim-fleet-XXXXXX";
    std::vector<char> buf(pattern.begin(), pattern.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr)
      throw io_error(std::string("fleet: mkdtemp failed: ") +
                     std::strerror(errno));
    opts.socket_dir = buf.data();
    made_socket_dir = true;
  }

  obs::Tracer tracer;
  if (!trace_out.empty()) opts.tracer = &tracer;
  const std::string socket_dir = opts.socket_dir;

  fleet::FleetSummary summary;
  io::Json final_report;
  {
    fleet::Supervisor supervisor(std::move(opts));
    supervisor.start(err);
    const par::CancelToken* cancel = &par::global_cancel_token();
    {
      std::optional<MetricsTicker> ticker;
      if (metrics_interval > 0)
        ticker.emplace(
            [&supervisor] {
              return supervisor.report().to_string(2) + "\n";
            },
            metrics_out, metrics_interval, err, "fleet");
      summary = supervisor.run(cancel, err);
    }
    final_report = supervisor.report();
  }
  if (made_socket_dir) ::rmdir(socket_dir.c_str());

  // Snapshots are written on every path — including interrupted — so an
  // operator who SIGTERMs the fleet still gets its final counters.
  if (!metrics_out.empty()) write_fleet_report(metrics_out, final_report, out);
  if (!trace_out.empty())
    io::atomic_write_file(
        trace_out,
        obs::render_trace_jsonl(tracer.snapshot(), tracer.dropped()));

  if (summary.interrupted)
    throw interrupted_error("fleet: shutdown requested (" +
                            std::to_string(summary.responses) + " of " +
                            std::to_string(summary.requests) +
                            " responses flushed)");
  err << "fleet: " << summary.responses << " responses ("
      << summary.requests << " requests, " << summary.connections
      << " connections)\n";
  return 0;
}

}  // namespace ksw::cli
