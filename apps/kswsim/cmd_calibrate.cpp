// kswsim calibrate — re-fit the Section IV interpolation constants from
// fresh simulations (the paper's own methodology).
//
//   kswsim calibrate [--k=2] [--rho=0.5] [--stages=8] [--cycles=N]
//                    [--seed=N] [--format=table|json|csv]
#include <ostream>

#include "core/calibration.hpp"
#include "core/later_stages.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "kswsim/cli.hpp"
#include "sim/network.hpp"
#include "tables/table.hpp"

namespace ksw::cli {

int cmd_calibrate(const ArgMap& args, std::ostream& out, std::ostream& err) {
  const Format format = parse_format(args);
  const unsigned k = args.get_unsigned("k", 2);
  const double rho = args.get_double("rho", 0.5);
  const unsigned stages_n = args.get_unsigned("stages", 8);
  const auto cycles = args.get_int("cycles", 100'000);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const auto unknown = args.unused();
  if (!unknown.empty()) {
    err << "calibrate: unknown option --" << unknown.front() << "\n";
    return 2;
  }

  sim::NetworkConfig cfg;
  cfg.k = k;
  cfg.stages = stages_n;
  cfg.p = rho;
  cfg.seed = seed;
  cfg.warmup_cycles = cycles / 10;
  cfg.measure_cycles = cycles;
  const auto r = sim::run_network(cfg);

  std::vector<core::StageObservation> obs;
  for (unsigned s = 0; s < stages_n; ++s)
    obs.push_back(
        {s + 1, r.stage_wait[s].mean(), r.stage_wait[s].variance()});
  const auto limit = core::limit_estimate(obs, 2);

  core::NetworkTrafficSpec spec;
  spec.k = k;
  spec.p = rho;
  const core::LaterStages ls(spec);

  const double mean_coeff =
      core::fit_mean_coeff(ls.mean_first_stage(), limit.mean, rho, k);
  const double stage_rate =
      core::fit_stage_rate(obs, ls.mean_first_stage(), limit.mean);
  const double var_ratio = limit.variance / ls.variance_first_stage();

  switch (format) {
    case Format::kTable: {
      tables::Table table("Calibration at k=" + std::to_string(k) +
                              ", rho=" + tables::format_number(rho, 2),
                          {"constant", "fitted", "paper"});
      table.begin_row("mean_coeff (eq 11)")
          .add_number(mean_coeff, 4)
          .add_cell("0.8");
      table.begin_row("stage rate a (eq 12)")
          .add_number(stage_rate, 4)
          .add_cell("0.4");
      table.begin_row("v_inf/v1 (eq 13)")
          .add_number(var_ratio, 4)
          .add_cell(tables::format_number(
              1.0 + rho / k + rho * rho / k, 4));
      table.print(out);
      break;
    }
    case Format::kJson: {
      io::Json doc = io::Json::object();
      doc.set("k", static_cast<std::int64_t>(k));
      doc.set("rho", rho);
      doc.set("mean_coeff", mean_coeff);
      doc.set("stage_rate", stage_rate);
      doc.set("var_ratio", var_ratio);
      doc.set("w1", ls.mean_first_stage());
      doc.set("w_limit_sim", limit.mean);
      doc.write(out, 2);
      out << '\n';
      break;
    }
    case Format::kCsv: {
      io::CsvWriter csv({"constant", "fitted"});
      csv.begin_row().add("mean_coeff").add(mean_coeff);
      csv.begin_row().add("stage_rate").add(stage_rate);
      csv.begin_row().add("var_ratio").add(var_ratio);
      csv.write(out);
      break;
    }
  }
  return 0;
}

}  // namespace ksw::cli
