#include <stdexcept>

#include "kswsim/cli.hpp"
#include "support/error.hpp"

namespace ksw::cli {

ArgMap ArgMap::parse(const std::vector<std::string>& args) {
  ArgMap out;
  for (const auto& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        const std::string key = arg.substr(2);
        if (key.empty())
          throw usage_error("malformed option: " + arg);
        out.values_[key] = "true";
      } else {
        const std::string key = arg.substr(2, eq - 2);
        if (key.empty())
          throw usage_error("malformed option: " + arg);
        out.values_[key] = arg.substr(eq + 1);
      }
    } else {
      out.positional_.push_back(arg);
    }
  }
  return out;
}

bool ArgMap::has(const std::string& key) const {
  const bool present = values_.count(key) != 0;
  if (present) read_[key] = true;
  return present;
}

std::string ArgMap::get(const std::string& key,
                        const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  read_[key] = true;
  return it->second;
}

double ArgMap::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  read_[key] = true;
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    throw usage_error("--" + key + ": not a number: " + it->second);
  }
  if (pos != it->second.size())
    throw usage_error("--" + key + ": not a number: " +
                                it->second);
  return v;
}

std::int64_t ArgMap::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  read_[key] = true;
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(it->second, &pos);
  } catch (const std::exception&) {
    throw usage_error("--" + key + ": not an integer: " + it->second);
  }
  if (pos != it->second.size())
    throw usage_error("--" + key + ": not an integer: " +
                                it->second);
  return v;
}

unsigned ArgMap::get_unsigned(const std::string& key,
                              unsigned fallback) const {
  const std::int64_t v = get_int(key, static_cast<std::int64_t>(fallback));
  if (v < 0 || v > 0xffffffffll)
    throw usage_error("--" + key + ": out of range");
  return static_cast<unsigned>(v);
}

bool ArgMap::get_flag(const std::string& key) const {
  const std::string v = get(key, "false");
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw usage_error("--" + key + ": not a boolean: " + v);
}

std::vector<std::string> ArgMap::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_)
    if (read_.count(key) == 0) out.push_back(key);
  return out;
}

Format parse_format(const ArgMap& args) {
  const std::string fmt = args.get("format", "table");
  if (fmt == "table") return Format::kTable;
  if (fmt == "json") return Format::kJson;
  if (fmt == "csv") return Format::kCsv;
  throw usage_error("--format: expected table|json|csv, got " +
                              fmt);
}

}  // namespace ksw::cli
