// The paper's printed closed-form results (Sections II-III), implemented
// verbatim as explicit formulas.
//
// These deliberately do NOT reuse the generic transform machinery in
// first_stage.cpp — they are an independent implementation path, and the
// test suite asserts both paths agree to ~1e-9 across wide parameter
// sweeps. Equation numbers follow the paper.
#pragma once

#include <cstdint>

namespace ksw::core::closed {

// --------------------------------------------------------------------------
// General arrival/service moments (Section II)
// --------------------------------------------------------------------------

/// Eq. (2): E(w) = (m R''(1) + lambda^2 U''(1)) / (2 lambda (1 - m lambda)).
[[nodiscard]] double eq2_mean(double lambda, double m, double r2, double u2);

/// Eq. (3): Var(w) for general R and U. The printed equation is partially
/// illegible in the source scan; this is the same quantity re-derived from
/// Theorem 1 (expansion of t(z) at z = 1) and written as an explicit
/// formula in lambda, m, R''(1), R'''(1), U''(1), U'''(1). It reduces
/// exactly to the legible special cases (5), (7), and (9).
[[nodiscard]] double eq3_variance(double lambda, double m, double r2,
                                  double r3, double u2, double u3);

// --------------------------------------------------------------------------
// Service time one (Section III-A)
// --------------------------------------------------------------------------

/// Eq. (4): E(w) = R''(1) / (2 lambda (1 - lambda)), unit service.
[[nodiscard]] double eq4_mean(double lambda, double r2);

/// Eq. (5): Var(w) = (2(3R''+2R''') lambda(1-lambda) - 3(1-2 lambda) R''^2)
///                   / (12 lambda^2 (1-lambda)^2), unit service.
[[nodiscard]] double eq5_variance(double lambda, double r2, double r3);

/// Eq. (6): uniform traffic, single arrivals, unit service;
/// lambda = k p / s. E(w) = (1 - 1/k) lambda / (2 (1 - lambda)).
[[nodiscard]] double eq6_mean(unsigned k, unsigned s, double p);

/// Eq. (7): Var(w) = (1-1/k) lambda (6 - 5 lambda (1+1/k)
///                    + 2 lambda^2 (1+1/k)) / (12 (1-lambda)^2).
[[nodiscard]] double eq7_variance(unsigned k, unsigned s, double p);

// --------------------------------------------------------------------------
// Bulk arrivals (Section III-A-2): constant batches of b unit messages
// --------------------------------------------------------------------------

/// R''(1) = lambda (b - 1 + (1 - 1/k) lambda), lambda = b k p / s.
[[nodiscard]] double bulk_r2(unsigned k, unsigned s, double p, unsigned b);

/// R'''(1) = lambda ((b-1)(b-2) + 3 lambda (1-1/k)(b-1)
///           + lambda^2 (1-1/k)(1-2/k)).
[[nodiscard]] double bulk_r3(unsigned k, unsigned s, double p, unsigned b);

/// E(w) = (b - 1 + (1 - 1/k) lambda) / (2 (1 - lambda)).
[[nodiscard]] double bulk_mean(unsigned k, unsigned s, double p, unsigned b);

/// Var(w) via eq. (5) with the bulk moments.
[[nodiscard]] double bulk_variance(unsigned k, unsigned s, double p,
                                   unsigned b);

// --------------------------------------------------------------------------
// Nonuniform "favorite output" traffic (Section III-A-3), k = s
// --------------------------------------------------------------------------

/// E(w) with favorite-output probability q and batch size b.
[[nodiscard]] double nonuniform_mean(unsigned k, double p, double q,
                                     unsigned b = 1);

/// Var(w) for b = 1 (the case the paper prints).
[[nodiscard]] double nonuniform_variance(unsigned k, double p, double q);

// --------------------------------------------------------------------------
// Geometric service (Section III-B), uniform single arrivals
// --------------------------------------------------------------------------

[[nodiscard]] double geometric_mean(unsigned k, unsigned s, double p,
                                    double mu);
[[nodiscard]] double geometric_variance(unsigned k, unsigned s, double p,
                                        double mu);

// --------------------------------------------------------------------------
// Constant service time m (Section III-D-1), uniform single arrivals
// --------------------------------------------------------------------------

/// Eq. (8): E(w) = m lambda (m - 1/k) / (2 (1 - m lambda)).
[[nodiscard]] double eq8_mean(unsigned k, unsigned s, double p,
                              std::uint32_t m);

/// Eq. (9): Var(w), via eq. (3) with deterministic service moments.
[[nodiscard]] double eq9_variance(unsigned k, unsigned s, double p,
                                  std::uint32_t m);

}  // namespace ksw::core::closed
