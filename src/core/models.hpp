// Traffic and service models for a first-stage output queue (paper
// Sections II-III).
//
// An ArrivalModel describes R(z), the PGF of the number of messages joining
// one output queue per cycle. A ServiceModel describes U(z), the PGF of one
// message's service time in cycles. Every model exposes both its exact
// factorial moments (for the closed-form results) and its expansion as a
// power series / pmf (for full-distribution inversion).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pgf/distribution.hpp"
#include "pgf/moments.hpp"
#include "pgf/series.hpp"

namespace ksw::core {

/// PGF of per-cycle message arrivals at one output queue.
class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;

  /// Exact factorial moments R'(1)..R''''(1).
  [[nodiscard]] virtual pgf::MomentTuple moments() const = 0;

  /// Exact pmf of the per-cycle arrival count (finite support).
  [[nodiscard]] virtual pgf::DiscreteDistribution distribution() const = 0;

  /// Average arrivals per cycle, lambda = R'(1).
  [[nodiscard]] double lambda() const { return moments().d1; }

  /// R(z) at a real point (default: polynomial evaluation of the pmf).
  [[nodiscard]] virtual double eval(double z) const;

  [[nodiscard]] virtual std::string describe() const = 0;
};

/// PGF of one message's service time (in cycles, values >= 1).
class ServiceModel {
 public:
  virtual ~ServiceModel() = default;

  /// Exact factorial moments U'(1)..U''''(1).
  [[nodiscard]] virtual pgf::MomentTuple moments() const = 0;

  /// Service-time PGF as a truncated power series of the given length.
  /// (Geometric service has infinite support, hence a series rather than a
  /// pmf.)
  [[nodiscard]] virtual pgf::Series series(std::size_t length) const = 0;

  /// Average service time m = U'(1).
  [[nodiscard]] double mean_service() const { return moments().d1; }

  /// U(z) at a real point in [-1, 1].
  [[nodiscard]] virtual double eval(double z) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

// ---------------------------------------------------------------------------
// Arrival models
// ---------------------------------------------------------------------------

/// Fully general independent-input model: input i delivers, with probability
/// p_i, a batch of b_i messages to this queue in any cycle, independently of
/// the other inputs. R(z) = prod_i (1 - p_i + p_i z^{b_i}).
///
/// Every first-stage traffic pattern in the paper is an instance:
/// uniform, bulk, and favorite-output nonuniform traffic.
class IndependentInputArrivals final : public ArrivalModel {
 public:
  struct Input {
    double probability = 0.0;  ///< chance this input feeds the queue
    std::uint32_t batch = 1;   ///< messages delivered when it does
  };

  explicit IndependentInputArrivals(std::vector<Input> inputs);

  [[nodiscard]] pgf::MomentTuple moments() const override;
  [[nodiscard]] pgf::DiscreteDistribution distribution() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<Input> inputs_;
};

/// Uniform traffic, single arrivals (Section III-A-1): k inputs each carry a
/// message with probability p per cycle, destined uniformly over s outputs.
/// R(z) = (1 - p/s + p z / s)^k.
[[nodiscard]] std::unique_ptr<ArrivalModel> make_uniform_arrivals(
    unsigned k, unsigned s, double p);

/// Bulk arrivals (Section III-A-2): as uniform, but each arrival is a batch
/// of b unit messages. R(z) = (1 - p/s + p z^b / s)^k.
[[nodiscard]] std::unique_ptr<ArrivalModel> make_bulk_arrivals(unsigned k,
                                                               unsigned s,
                                                               double p,
                                                               unsigned b);

/// Nonuniform "favorite output" traffic (Section III-A-3); requires k == s.
/// The queue's favored input sends here with probability q + (1-q)/k; each
/// of the other k-1 inputs with probability (1-q)/k; arrivals in batches of
/// b.
[[nodiscard]] std::unique_ptr<ArrivalModel> make_nonuniform_arrivals(
    unsigned k, double p, double q, unsigned b = 1);

/// Arbitrary per-cycle arrival-count distribution.
class CustomArrivals final : public ArrivalModel {
 public:
  explicit CustomArrivals(pgf::DiscreteDistribution counts);

  [[nodiscard]] pgf::MomentTuple moments() const override;
  [[nodiscard]] pgf::DiscreteDistribution distribution() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  pgf::DiscreteDistribution counts_;
};

// ---------------------------------------------------------------------------
// Service models
// ---------------------------------------------------------------------------

/// Constant service time m (Sections III-A-1 when m=1, III-D-1 generally).
class DeterministicService final : public ServiceModel {
 public:
  explicit DeterministicService(std::uint32_t m);

  [[nodiscard]] pgf::MomentTuple moments() const override;
  [[nodiscard]] pgf::Series series(std::size_t length) const override;
  [[nodiscard]] double eval(double z) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::uint32_t service_time() const noexcept { return m_; }

 private:
  std::uint32_t m_;
};

/// Mixture of constant service times (Section III-D-2):
/// U(z) = sum_i g_i z^{m_i}.
class MultiSizeService final : public ServiceModel {
 public:
  struct Size {
    std::uint32_t cycles = 1;
    double probability = 0.0;
  };

  explicit MultiSizeService(std::vector<Size> sizes);

  [[nodiscard]] pgf::MomentTuple moments() const override;
  [[nodiscard]] pgf::Series series(std::size_t length) const override;
  [[nodiscard]] double eval(double z) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const std::vector<Size>& sizes() const noexcept {
    return sizes_;
  }

 private:
  std::vector<Size> sizes_;
};

/// Geometric service times (Section III-B): g_j = mu (1-mu)^{j-1}, j >= 1.
/// U(z) = mu z / (1 - (1-mu) z), mean service 1/mu.
class GeometricService final : public ServiceModel {
 public:
  explicit GeometricService(double mu);

  [[nodiscard]] pgf::MomentTuple moments() const override;
  [[nodiscard]] pgf::Series series(std::size_t length) const override;
  [[nodiscard]] double eval(double z) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] double mu() const noexcept { return mu_; }

 private:
  double mu_;
};

/// Arbitrary discrete service-time distribution with finite support.
/// P(service = 0) must be zero.
class CustomService final : public ServiceModel {
 public:
  explicit CustomService(pgf::DiscreteDistribution times);

  [[nodiscard]] pgf::MomentTuple moments() const override;
  [[nodiscard]] pgf::Series series(std::size_t length) const override;
  [[nodiscard]] double eval(double z) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  pgf::DiscreteDistribution times_;
};

// ---------------------------------------------------------------------------
// Queue specification
// ---------------------------------------------------------------------------

/// A first-stage output queue: arrivals plus service. The traffic intensity
/// rho = lambda * m must be < 1 for a steady state to exist.
struct QueueSpec {
  std::shared_ptr<const ArrivalModel> arrivals;
  std::shared_ptr<const ServiceModel> service;

  [[nodiscard]] double lambda() const { return arrivals->lambda(); }
  [[nodiscard]] double mean_service() const {
    return service->mean_service();
  }
  [[nodiscard]] double rho() const { return lambda() * mean_service(); }
};

}  // namespace ksw::core
