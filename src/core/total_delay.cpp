#include "core/total_delay.hpp"

#include <cmath>
#include <stdexcept>

namespace ksw::core {

TotalDelay::TotalDelay(LaterStages stages, unsigned n_stages)
    : stages_(std::move(stages)), n_(n_stages) {
  if (n_ == 0) throw std::invalid_argument("TotalDelay: n_stages == 0");
}

double TotalDelay::mean_total() const {
  double acc = 0.0;
  for (unsigned i = 1; i <= n_; ++i) acc += stages_.mean_at_stage(i);
  return acc;
}

std::pair<double, double> TotalDelay::covariance_decay() const {
  // The paper writes the decay constants in terms of "mp", i.e. the traffic
  // intensity rho = m * p (per-input probability times message size).
  const double rho = stages_.spec().rho();
  const double kd = static_cast<double>(stages_.spec().k);
  const double damp = 1.0 - 2.0 * rho / 5.0;
  const double a = damp * 3.0 * rho / (5.0 * kd);
  const double b = damp / kd;
  return {a, b};
}

double TotalDelay::covariance(unsigned i, unsigned j) const {
  if (i == 0 || j == 0 || i > n_ || j > n_)
    throw std::invalid_argument("TotalDelay::covariance: stage out of range");
  if (i > j) std::swap(i, j);
  const double vi = stages_.variance_at_stage(i);
  if (i == j) return vi;
  const auto [a, b] = covariance_decay();
  return a * std::pow(b, static_cast<double>(j - i - 1)) * vi;
}

double TotalDelay::correlation(unsigned i, unsigned j) const {
  const double denom = std::sqrt(covariance(i, i) * covariance(j, j));
  return denom > 0.0 ? covariance(i, j) / denom : 0.0;
}

double TotalDelay::variance_total(bool with_covariance) const {
  const auto [a, b] = covariance_decay();
  double acc = 0.0;
  for (unsigned i = 1; i <= n_; ++i) {
    const double vi = stages_.variance_at_stage(i);
    double factor = 1.0;
    if (with_covariance && i < n_) {
      // 1 + 2a(1 + b + ... + b^{n-i-1}) = 1 + 2a(1-b^{n-i})/(1-b).
      const double geo =
          (1.0 - std::pow(b, static_cast<double>(n_ - i))) / (1.0 - b);
      factor += 2.0 * a * geo;
    }
    acc += vi * factor;
  }
  return acc;
}

stats::GammaDistribution TotalDelay::gamma_approximation() const {
  return stats::GammaDistribution::from_moments(mean_total(),
                                                variance_total());
}

double TotalDelay::mean_total_delay() const {
  // Cut-through forwarding: total service through the network is
  // n + m - 1 cycles for constant message size m (Section V, end); for
  // random sizes we use the mean size.
  return mean_total() + static_cast<double>(n_) +
         stages_.spec().mean_service() - 1.0;
}

}  // namespace ksw::core
