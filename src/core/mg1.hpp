// Continuous-time M/G/1 reference formulas (Pollaczek-Khinchine), used for
// the paper's limit arguments: Section III-C shows the discrete queue with
// geometric service converges to M/M/1 as the clock is refined, and
// Section IV-B compares interior stages against M/D/1 in light traffic.
#pragma once

namespace ksw::core::mg1 {

/// Waiting-time statistics of an M/G/1 queue with arrival rate lambda and
/// the given service moments (rho = lambda * mean_service < 1).
struct Waiting {
  double mean = 0.0;
  double variance = 0.0;
};

/// General Pollaczek-Khinchine: E(w) = lambda E[S^2] / (2(1-rho));
/// E(w^2) = 2 E(w)^2 + lambda E[S^3] / (3(1-rho)).
[[nodiscard]] Waiting mg1_waiting(double lambda, double s1, double s2,
                                  double s3);

/// M/M/1 with service rate mu.
[[nodiscard]] Waiting mm1_waiting(double lambda, double mu);

/// M/D/1 with constant service time s.
[[nodiscard]] Waiting md1_waiting(double lambda, double s);

}  // namespace ksw::core::mg1
