#include "core/models.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ksw::core {

namespace {

// Moment tuple of a single Bernoulli-batch factor (1 - p + p z^b).
pgf::MomentTuple bernoulli_batch_moments(double p, std::uint32_t b) {
  const pgf::MomentTuple zb = pgf::MomentTuple::monomial(b);
  pgf::MomentTuple t;
  t.value = 1.0;
  t.d1 = p * zb.d1;
  t.d2 = p * zb.d2;
  t.d3 = p * zb.d3;
  t.d4 = p * zb.d4;
  return t;
}

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string(what) +
                                ": probability outside [0,1]");
}

}  // namespace

// ---------------------------------------------------------------------------
// IndependentInputArrivals
// ---------------------------------------------------------------------------

IndependentInputArrivals::IndependentInputArrivals(std::vector<Input> inputs)
    : inputs_(std::move(inputs)) {
  if (inputs_.empty())
    throw std::invalid_argument("IndependentInputArrivals: no inputs");
  for (const auto& in : inputs_) {
    check_probability(in.probability, "IndependentInputArrivals");
    if (in.batch == 0)
      throw std::invalid_argument("IndependentInputArrivals: batch == 0");
  }
}

pgf::MomentTuple IndependentInputArrivals::moments() const {
  pgf::MomentTuple acc = pgf::MomentTuple::one();
  for (const auto& in : inputs_)
    acc = pgf::MomentTuple::product(
        acc, bernoulli_batch_moments(in.probability, in.batch));
  return acc;
}

pgf::DiscreteDistribution IndependentInputArrivals::distribution() const {
  pgf::DiscreteDistribution acc = pgf::DiscreteDistribution::point_mass(0);
  for (const auto& in : inputs_) {
    std::vector<double> factor(in.batch + 1, 0.0);
    factor[0] = 1.0 - in.probability;
    factor[in.batch] += in.probability;
    acc = pgf::DiscreteDistribution::convolve(
        acc, pgf::DiscreteDistribution(std::move(factor)));
  }
  return acc;
}

double ArrivalModel::eval(double z) const {
  // Keep the distribution alive for the duration of the span over its pmf.
  const pgf::DiscreteDistribution dist = distribution();
  const auto pmf = dist.pmf();
  double acc = 0.0;
  for (std::size_t i = pmf.size(); i-- > 0;) acc = acc * z + pmf[i];
  return acc;
}

std::string IndependentInputArrivals::describe() const {
  std::ostringstream os;
  os << "independent-inputs(" << inputs_.size() << " inputs)";
  return os.str();
}

// ---------------------------------------------------------------------------
// Factory helpers
// ---------------------------------------------------------------------------

std::unique_ptr<ArrivalModel> make_uniform_arrivals(unsigned k, unsigned s,
                                                    double p) {
  return make_bulk_arrivals(k, s, p, 1);
}

std::unique_ptr<ArrivalModel> make_bulk_arrivals(unsigned k, unsigned s,
                                                 double p, unsigned b) {
  if (k == 0 || s == 0)
    throw std::invalid_argument("make_bulk_arrivals: k and s must be >= 1");
  check_probability(p, "make_bulk_arrivals");
  std::vector<IndependentInputArrivals::Input> inputs(
      k, {p / static_cast<double>(s), b});
  return std::make_unique<IndependentInputArrivals>(std::move(inputs));
}

std::unique_ptr<ArrivalModel> make_nonuniform_arrivals(unsigned k, double p,
                                                       double q, unsigned b) {
  if (k == 0)
    throw std::invalid_argument("make_nonuniform_arrivals: k must be >= 1");
  check_probability(p, "make_nonuniform_arrivals");
  check_probability(q, "make_nonuniform_arrivals(q)");
  const double kd = static_cast<double>(k);
  // The favored input reaches this queue with probability q + (1-q)/k;
  // each other input with probability (1-q)/k (Section III-A-3).
  const double favored = p * (q + (1.0 - q) / kd);
  const double normal = p * (1.0 - q) / kd;
  std::vector<IndependentInputArrivals::Input> inputs;
  inputs.reserve(k);
  inputs.push_back({favored, b});
  for (unsigned i = 1; i < k; ++i) inputs.push_back({normal, b});
  return std::make_unique<IndependentInputArrivals>(std::move(inputs));
}

// ---------------------------------------------------------------------------
// CustomArrivals
// ---------------------------------------------------------------------------

CustomArrivals::CustomArrivals(pgf::DiscreteDistribution counts)
    : counts_(std::move(counts)) {}

pgf::MomentTuple CustomArrivals::moments() const { return counts_.moments(); }

pgf::DiscreteDistribution CustomArrivals::distribution() const {
  return counts_;
}

std::string CustomArrivals::describe() const { return "custom-arrivals"; }

// ---------------------------------------------------------------------------
// DeterministicService
// ---------------------------------------------------------------------------

DeterministicService::DeterministicService(std::uint32_t m) : m_(m) {
  if (m == 0)
    throw std::invalid_argument("DeterministicService: m must be >= 1");
}

pgf::MomentTuple DeterministicService::moments() const {
  return pgf::MomentTuple::monomial(m_);
}

pgf::Series DeterministicService::series(std::size_t length) const {
  pgf::Series s(length);
  if (m_ < length) s[m_] = 1.0;
  return s;
}

double DeterministicService::eval(double z) const {
  return std::pow(z, static_cast<double>(m_));
}

std::string DeterministicService::describe() const {
  return "deterministic(m=" + std::to_string(m_) + ")";
}

// ---------------------------------------------------------------------------
// MultiSizeService
// ---------------------------------------------------------------------------

MultiSizeService::MultiSizeService(std::vector<Size> sizes)
    : sizes_(std::move(sizes)) {
  if (sizes_.empty())
    throw std::invalid_argument("MultiSizeService: no sizes");
  double total = 0.0;
  for (const auto& sz : sizes_) {
    if (sz.cycles == 0)
      throw std::invalid_argument("MultiSizeService: zero service time");
    check_probability(sz.probability, "MultiSizeService");
    total += sz.probability;
  }
  if (std::abs(total - 1.0) > 1e-9)
    throw std::invalid_argument(
        "MultiSizeService: probabilities do not sum to 1");
}

pgf::MomentTuple MultiSizeService::moments() const {
  pgf::MomentTuple t{0, 0, 0, 0, 0};
  for (const auto& sz : sizes_) {
    const pgf::MomentTuple mono = pgf::MomentTuple::monomial(sz.cycles);
    t.value += sz.probability;
    t.d1 += sz.probability * mono.d1;
    t.d2 += sz.probability * mono.d2;
    t.d3 += sz.probability * mono.d3;
    t.d4 += sz.probability * mono.d4;
  }
  return t;
}

pgf::Series MultiSizeService::series(std::size_t length) const {
  pgf::Series s(length);
  for (const auto& sz : sizes_)
    if (sz.cycles < length) s[sz.cycles] += sz.probability;
  return s;
}

double MultiSizeService::eval(double z) const {
  double acc = 0.0;
  for (const auto& sz : sizes_)
    acc += sz.probability * std::pow(z, static_cast<double>(sz.cycles));
  return acc;
}

std::string MultiSizeService::describe() const {
  std::ostringstream os;
  os << "multi-size(";
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    if (i) os << ", ";
    os << "m=" << sizes_[i].cycles << "@" << sizes_[i].probability;
  }
  os << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// GeometricService
// ---------------------------------------------------------------------------

GeometricService::GeometricService(double mu) : mu_(mu) {
  if (!(mu > 0.0) || mu > 1.0)
    throw std::invalid_argument("GeometricService: mu must be in (0,1]");
}

pgf::MomentTuple GeometricService::moments() const {
  // U(z) = mu z / (1 - (1-mu) z):
  //   U^(n)(1) = n! (1-mu)^{n-1} / mu^n for n >= 1.
  const double r = 1.0 - mu_;
  pgf::MomentTuple t;
  t.value = 1.0;
  t.d1 = 1.0 / mu_;
  t.d2 = 2.0 * r / (mu_ * mu_);
  t.d3 = 6.0 * r * r / (mu_ * mu_ * mu_);
  t.d4 = 24.0 * r * r * r / (mu_ * mu_ * mu_ * mu_);
  return t;
}

pgf::Series GeometricService::series(std::size_t length) const {
  pgf::Series s(length);
  double mass = mu_;
  for (std::size_t j = 1; j < length; ++j) {
    s[j] = mass;
    mass *= (1.0 - mu_);
  }
  return s;
}

double GeometricService::eval(double z) const {
  return mu_ * z / (1.0 - (1.0 - mu_) * z);
}

std::string GeometricService::describe() const {
  return "geometric(mu=" + std::to_string(mu_) + ")";
}

// ---------------------------------------------------------------------------
// CustomService
// ---------------------------------------------------------------------------

CustomService::CustomService(pgf::DiscreteDistribution times)
    : times_(std::move(times)) {
  if (times_.pmf(0) != 0.0)
    throw std::invalid_argument(
        "CustomService: service time 0 has positive probability");
}

pgf::MomentTuple CustomService::moments() const { return times_.moments(); }

pgf::Series CustomService::series(std::size_t length) const {
  return times_.to_series(length);
}

double CustomService::eval(double z) const {
  const auto pmf = times_.pmf();
  double acc = 0.0;
  for (std::size_t i = pmf.size(); i-- > 0;) acc = acc * z + pmf[i];
  return acc;
}

std::string CustomService::describe() const { return "custom-service"; }

}  // namespace ksw::core
