#include "core/closed_forms.hpp"

#include <stdexcept>
#include <string>

namespace ksw::core::closed {

namespace {

void require_stable(double rho, const char* what) {
  if (!(rho > 0.0 && rho < 1.0))
    throw std::invalid_argument(std::string(what) +
                                ": traffic intensity outside (0,1)");
}

double uniform_lambda(unsigned k, unsigned s, double p) {
  return static_cast<double>(k) * p / static_cast<double>(s);
}

}  // namespace

double eq2_mean(double lambda, double m, double r2, double u2) {
  require_stable(lambda * m, "eq2_mean");
  return (m * r2 + lambda * lambda * u2) /
         (2.0 * lambda * (1.0 - m * lambda));
}

double eq3_variance(double lambda, double m, double r2, double r3, double u2,
                    double u3) {
  const double rho = lambda * m;
  require_stable(rho, "eq3_variance");
  // Taylor coefficients of C(z) = R(U(z)) and U(z) at z = 1:
  //   C(1+e) = 1 + rho e + c2 e^2 + c3 e^3, U(1+e) = 1 + m e + v2 e^2 + ...
  const double c2 = (r2 * m * m + lambda * u2) / 2.0;
  const double c3 = (r3 * m * m * m + 3.0 * r2 * m * u2 + lambda * u3) / 6.0;
  const double v2 = u2 / 2.0;
  const double v3 = u3 / 6.0;
  const double d = 1.0 - rho;

  // t(1+e) = (1 + alpha e + beta e^2)(1 + gamma e + delta e^2) + O(e^3),
  // from Theorem 1 with one factor of e cancelled in each ratio.
  const double alpha = c2 / d;
  const double beta = c3 / d + c2 * c2 / (d * d);
  const double gamma = c2 / rho - v2 / m;
  const double delta = c3 / rho - v3 / m - (v2 / m) * gamma;

  const double mean = alpha + gamma;                       // t'(1)
  const double fact2 = 2.0 * (beta + alpha * gamma + delta);  // t''(1)
  return fact2 + mean - mean * mean;
}

double eq4_mean(double lambda, double r2) {
  require_stable(lambda, "eq4_mean");
  return r2 / (2.0 * lambda * (1.0 - lambda));
}

double eq5_variance(double lambda, double r2, double r3) {
  require_stable(lambda, "eq5_variance");
  const double num = 2.0 * (3.0 * r2 + 2.0 * r3) * lambda * (1.0 - lambda) -
                     3.0 * (1.0 - 2.0 * lambda) * r2 * r2;
  return num / (12.0 * lambda * lambda * (1.0 - lambda) * (1.0 - lambda));
}

double eq6_mean(unsigned k, unsigned s, double p) {
  const double lambda = uniform_lambda(k, s, p);
  require_stable(lambda, "eq6_mean");
  const double kd = static_cast<double>(k);
  return (1.0 - 1.0 / kd) * lambda / (2.0 * (1.0 - lambda));
}

double eq7_variance(unsigned k, unsigned s, double p) {
  const double lambda = uniform_lambda(k, s, p);
  require_stable(lambda, "eq7_variance");
  const double ik = 1.0 / static_cast<double>(k);
  const double num =
      (1.0 - ik) * lambda *
      (6.0 - 5.0 * lambda * (1.0 + ik) + 2.0 * lambda * lambda * (1.0 + ik));
  return num / (12.0 * (1.0 - lambda) * (1.0 - lambda));
}

double bulk_r2(unsigned k, unsigned s, double p, unsigned b) {
  const double bd = static_cast<double>(b);
  const double lambda = bd * uniform_lambda(k, s, p);
  const double ik = 1.0 / static_cast<double>(k);
  return lambda * (bd - 1.0 + (1.0 - ik) * lambda);
}

double bulk_r3(unsigned k, unsigned s, double p, unsigned b) {
  const double bd = static_cast<double>(b);
  const double lambda = bd * uniform_lambda(k, s, p);
  const double ik = 1.0 / static_cast<double>(k);
  return lambda * ((bd - 1.0) * (bd - 2.0) +
                   3.0 * lambda * (1.0 - ik) * (bd - 1.0) +
                   lambda * lambda * (1.0 - ik) * (1.0 - 2.0 * ik));
}

double bulk_mean(unsigned k, unsigned s, double p, unsigned b) {
  const double bd = static_cast<double>(b);
  const double lambda = bd * uniform_lambda(k, s, p);
  require_stable(lambda, "bulk_mean");
  const double ik = 1.0 / static_cast<double>(k);
  return (bd - 1.0 + (1.0 - ik) * lambda) / (2.0 * (1.0 - lambda));
}

double bulk_variance(unsigned k, unsigned s, double p, unsigned b) {
  const double lambda = static_cast<double>(b) * uniform_lambda(k, s, p);
  require_stable(lambda, "bulk_variance");
  return eq5_variance(lambda, bulk_r2(k, s, p, b), bulk_r3(k, s, p, b));
}

namespace {

// Factorial moments of the favorite-output arrival process (III-A-3):
// one input with hit probability pf = p(q + (1-q)/k), k-1 inputs with
// pn = p(1-q)/k, batches of b. Hand-expanded Leibniz products, independent
// of the pgf::MomentTuple machinery.
struct NonuniformMoments {
  double lambda, r2, r3;
};

NonuniformMoments nonuniform_moments(unsigned k, double p, double q,
                                     unsigned b) {
  const double kd = static_cast<double>(k);
  const double bd = static_cast<double>(b);
  const double pf = p * (q + (1.0 - q) / kd);
  const double pn = p * (1.0 - q) / kd;

  // Factor moments for (1 - pi + pi z^b): f' = pi b, f'' = pi b(b-1), ...
  const auto f1 = [bd](double pi) { return pi * bd; };
  const auto f2 = [bd](double pi) { return pi * bd * (bd - 1.0); };
  const auto f3 = [bd](double pi) {
    return pi * bd * (bd - 1.0) * (bd - 2.0);
  };

  // Normal part N = (1 - pn + pn z^b)^{k-1}.
  const double n1 = (kd - 1.0) * f1(pn);
  const double n2 = (kd - 1.0) * f2(pn) + (kd - 1.0) * (kd - 2.0) *
                                              f1(pn) * f1(pn);
  const double n3 = (kd - 1.0) * f3(pn) +
                    3.0 * (kd - 1.0) * (kd - 2.0) * f1(pn) * f2(pn) +
                    (kd - 1.0) * (kd - 2.0) * (kd - 3.0) * f1(pn) * f1(pn) *
                        f1(pn);

  // Full R = F * N, both equal to 1 at z = 1.
  NonuniformMoments m;
  m.lambda = f1(pf) + n1;
  m.r2 = f2(pf) + 2.0 * f1(pf) * n1 + n2;
  m.r3 = f3(pf) + 3.0 * f2(pf) * n1 + 3.0 * f1(pf) * n2 + n3;
  return m;
}

}  // namespace

double nonuniform_mean(unsigned k, double p, double q, unsigned b) {
  const NonuniformMoments m = nonuniform_moments(k, p, q, b);
  require_stable(m.lambda, "nonuniform_mean");
  return eq4_mean(m.lambda, m.r2);
}

double nonuniform_variance(unsigned k, double p, double q) {
  const NonuniformMoments m = nonuniform_moments(k, p, q, 1);
  require_stable(m.lambda, "nonuniform_variance");
  return eq5_variance(m.lambda, m.r2, m.r3);
}

namespace {

// R moments for uniform single arrivals: R(z) = (1 - p/s + p z/s)^k.
void uniform_r_moments(unsigned k, unsigned s, double p, double& lambda,
                       double& r2, double& r3) {
  const double kd = static_cast<double>(k);
  lambda = uniform_lambda(k, s, p);
  r2 = lambda * lambda * (1.0 - 1.0 / kd);
  r3 = lambda * lambda * lambda * (1.0 - 1.0 / kd) * (1.0 - 2.0 / kd);
}

}  // namespace

double geometric_mean(unsigned k, unsigned s, double p, double mu) {
  double lambda, r2, r3;
  uniform_r_moments(k, s, p, lambda, r2, r3);
  (void)r3;
  const double m = 1.0 / mu;
  const double u2 = 2.0 * (1.0 - mu) / (mu * mu);
  return eq2_mean(lambda, m, r2, u2);
}

double geometric_variance(unsigned k, unsigned s, double p, double mu) {
  double lambda, r2, r3;
  uniform_r_moments(k, s, p, lambda, r2, r3);
  const double m = 1.0 / mu;
  const double u2 = 2.0 * (1.0 - mu) / (mu * mu);
  const double u3 = 6.0 * (1.0 - mu) * (1.0 - mu) / (mu * mu * mu);
  return eq3_variance(lambda, m, r2, r3, u2, u3);
}

double eq8_mean(unsigned k, unsigned s, double p, std::uint32_t m) {
  const double lambda = uniform_lambda(k, s, p);
  const double md = static_cast<double>(m);
  require_stable(md * lambda, "eq8_mean");
  const double ik = 1.0 / static_cast<double>(k);
  return md * lambda * (md - ik) / (2.0 * (1.0 - md * lambda));
}

double eq9_variance(unsigned k, unsigned s, double p, std::uint32_t m) {
  double lambda, r2, r3;
  uniform_r_moments(k, s, p, lambda, r2, r3);
  const double md = static_cast<double>(m);
  require_stable(md * lambda, "eq9_variance");
  const double u2 = md * (md - 1.0);
  const double u3 = md * (md - 1.0) * (md - 2.0);
  return eq3_variance(lambda, md, r2, r3, u2, u3);
}

}  // namespace ksw::core::closed
