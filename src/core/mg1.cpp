#include "core/mg1.hpp"

#include <stdexcept>

namespace ksw::core::mg1 {

Waiting mg1_waiting(double lambda, double s1, double s2, double s3) {
  const double rho = lambda * s1;
  if (!(rho > 0.0 && rho < 1.0))
    throw std::invalid_argument("mg1_waiting: rho outside (0,1)");
  Waiting w;
  w.mean = lambda * s2 / (2.0 * (1.0 - rho));
  const double second = 2.0 * w.mean * w.mean +
                        lambda * s3 / (3.0 * (1.0 - rho));
  w.variance = second - w.mean * w.mean;
  return w;
}

Waiting mm1_waiting(double lambda, double mu) {
  if (!(mu > 0.0)) throw std::invalid_argument("mm1_waiting: mu <= 0");
  const double s1 = 1.0 / mu;
  return mg1_waiting(lambda, s1, 2.0 * s1 * s1, 6.0 * s1 * s1 * s1);
}

Waiting md1_waiting(double lambda, double s) {
  if (!(s > 0.0)) throw std::invalid_argument("md1_waiting: s <= 0");
  return mg1_waiting(lambda, s, s * s, s * s * s);
}

}  // namespace ksw::core::mg1
