// Distribution-level estimates of the TOTAL waiting time, complementing
// the moment-level gamma approximation of total_delay.hpp.
//
// The paper's Section V observes that per-stage waiting times are "nearly
// the same and nearly independent" for light-to-moderate loads. Taking
// that literally gives a second estimator of the total distribution: the
// n-fold convolution of the exact first-stage pmf (Theorem 1 inversion).
// Ignoring the positive inter-stage correlation, the convolution slightly
// understates the variance, whereas the gamma approximation bakes the
// covariance correction into its matched moments — the ext_convolution
// bench quantifies the trade-off against simulation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/first_stage.hpp"
#include "core/later_stages.hpp"
#include "stats/gamma_distribution.hpp"

namespace ksw::core {

/// n-fold convolution of a (sub-)probability vector, truncated to `length`
/// coefficients. Exponentiation by squaring: O(log n) convolutions of
/// O(length^2) each.
[[nodiscard]] std::vector<double> convolve_power(
    const std::vector<double>& pmf, unsigned n, std::size_t length);

/// Total-waiting-time distribution estimators for an n-stage network.
class TotalDistribution {
 public:
  TotalDistribution(LaterStages stages, unsigned n_stages);

  /// IID-convolution estimate: exact first-stage pmf convolved n times
  /// (assumes stages identically distributed and independent).
  [[nodiscard]] std::vector<double> iid_convolution(std::size_t length) const;

  /// Scaled-convolution estimate: the first-stage pmf whose mean has been
  /// inflated to the stage average predicted by Section IV, convolved n
  /// times. Captures the interior-stage drift the plain IID form misses.
  /// The inflation mixes the pmf toward a one-cycle shift (keeping support
  /// on the integers).
  [[nodiscard]] std::vector<double> scaled_convolution(
      std::size_t length) const;

  /// Gamma approximation (Section V), for convenience/parity.
  [[nodiscard]] stats::GammaDistribution gamma() const;

  /// P(W <= w) under the IID convolution estimate.
  [[nodiscard]] double convolution_cdf(std::size_t w,
                                       std::size_t length = 4096) const;

 private:
  LaterStages stages_;
  unsigned n_;
};

}  // namespace ksw::core
