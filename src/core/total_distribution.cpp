#include "core/total_distribution.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/total_delay.hpp"

namespace ksw::core {

namespace {

std::vector<double> convolve_truncated(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       std::size_t length) {
  std::vector<double> out(length, 0.0);
  const std::size_t na = std::min(a.size(), length);
  for (std::size_t i = 0; i < na; ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    const std::size_t nb = std::min(b.size(), length - i);
    for (std::size_t j = 0; j < nb; ++j) out[i + j] += ai * b[j];
  }
  return out;
}

// Mix `pmf` toward its one-step up-shift (weight alpha in [0,1)), raising
// the mean by exactly alpha while keeping integer support.
std::vector<double> shift_mix_up(const std::vector<double>& pmf,
                                 double alpha) {
  std::vector<double> out(pmf.size() + 1, 0.0);
  for (std::size_t j = 0; j < pmf.size(); ++j) {
    out[j] += (1.0 - alpha) * pmf[j];
    out[j + 1] += alpha * pmf[j];
  }
  return out;
}

// Mix `pmf` toward a point mass at zero (weight beta), scaling the mean by
// (1 - beta).
std::vector<double> zero_mix(const std::vector<double>& pmf, double beta) {
  std::vector<double> out = pmf;
  for (double& x : out) x *= (1.0 - beta);
  out[0] += beta;
  return out;
}

}  // namespace

std::vector<double> convolve_power(const std::vector<double>& pmf,
                                   unsigned n, std::size_t length) {
  if (length == 0)
    throw std::invalid_argument("convolve_power: length == 0");
  std::vector<double> result(length, 0.0);
  result[0] = 1.0;  // delta at 0 == identity of convolution
  std::vector<double> base(pmf.begin(),
                           pmf.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(pmf.size(), length)));
  base.resize(length, 0.0);
  while (n > 0) {
    if (n & 1u) result = convolve_truncated(result, base, length);
    n >>= 1u;
    if (n > 0) base = convolve_truncated(base, base, length);
  }
  return result;
}

TotalDistribution::TotalDistribution(LaterStages stages, unsigned n_stages)
    : stages_(std::move(stages)), n_(n_stages) {
  if (n_ == 0)
    throw std::invalid_argument("TotalDistribution: n_stages == 0");
}

std::vector<double> TotalDistribution::iid_convolution(
    std::size_t length) const {
  const FirstStage first(stages_.spec().first_stage_queue());
  return convolve_power(first.distribution(length), n_, length);
}

std::vector<double> TotalDistribution::scaled_convolution(
    std::size_t length) const {
  const FirstStage first(stages_.spec().first_stage_queue());
  const std::vector<double> base = first.distribution(length);
  const double w1 = stages_.mean_first_stage();

  std::vector<double> acc(length, 0.0);
  acc[0] = 1.0;
  for (unsigned i = 1; i <= n_; ++i) {
    const double target = stages_.mean_at_stage(i);
    std::vector<double> stage_pmf;
    if (target >= w1) {
      const double alpha = std::min(target - w1, 1.0 - 1e-12);
      stage_pmf = shift_mix_up(base, alpha);
    } else if (w1 > 0.0) {
      const double beta = std::clamp(1.0 - target / w1, 0.0, 1.0);
      stage_pmf = zero_mix(base, beta);
    } else {
      stage_pmf = base;
    }
    acc = convolve_truncated(acc, stage_pmf, length);
  }
  return acc;
}

stats::GammaDistribution TotalDistribution::gamma() const {
  return TotalDelay(stages_, n_).gamma_approximation();
}

double TotalDistribution::convolution_cdf(std::size_t w,
                                          std::size_t length) const {
  const auto pmf = iid_convolution(std::max(length, w + 1));
  double acc = 0.0;
  for (std::size_t j = 0; j <= w && j < pmf.size(); ++j) acc += pmf[j];
  return acc;
}

}  // namespace ksw::core
