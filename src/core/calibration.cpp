#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ksw::core {

StageObservation limit_estimate(std::span<const StageObservation> stages,
                                unsigned tail) {
  if (stages.empty())
    throw std::invalid_argument("limit_estimate: no observations");
  const std::size_t use = std::min<std::size_t>(tail, stages.size());
  StageObservation out;
  out.stage = stages.back().stage;
  for (std::size_t i = stages.size() - use; i < stages.size(); ++i) {
    out.mean += stages[i].mean;
    out.variance += stages[i].variance;
  }
  out.mean /= static_cast<double>(use);
  out.variance /= static_cast<double>(use);
  return out;
}

double fit_mean_coeff(double w1, double w_inf, double rho, unsigned k) {
  if (!(w1 > 0.0) || !(rho > 0.0))
    throw std::invalid_argument("fit_mean_coeff: w1 and rho must be > 0");
  return (w_inf / w1 - 1.0) * static_cast<double>(k) / rho;
}

double fit_stage_rate(std::span<const StageObservation> stages, double w1,
                      double w_inf) {
  // Model: w_i = w1 + (w_inf - w1)(1 - a^{i-1})
  //   =>  a^{i-1} = (w_inf - w_i) / (w_inf - w1).
  // Log-linear least squares through the origin on (i-1, log fraction).
  const double span_w = w_inf - w1;
  if (std::abs(span_w) < 1e-15)
    throw std::invalid_argument("fit_stage_rate: w_inf == w1");
  double sxx = 0.0, sxy = 0.0;
  std::size_t used = 0;
  for (const auto& obs : stages) {
    if (obs.stage < 2) continue;
    const double frac = (w_inf - obs.mean) / span_w;
    if (!(frac > 1e-12) || frac >= 1.0) continue;  // noise outside model
    const double x = static_cast<double>(obs.stage - 1);
    const double y = std::log(frac);
    sxx += x * x;
    sxy += x * y;
    ++used;
  }
  if (used == 0)
    throw std::invalid_argument("fit_stage_rate: no usable observations");
  return std::exp(sxy / sxx);
}

std::pair<double, double> fit_var_coeffs(std::span<const VarPoint> points,
                                         unsigned k) {
  if (points.size() < 2)
    throw std::invalid_argument("fit_var_coeffs: need >= 2 points");
  // Least squares for y = c1 x1 + c2 x2 with x1 = rho/k, x2 = rho^2/k.
  const double kd = static_cast<double>(k);
  double a11 = 0, a12 = 0, a22 = 0, b1 = 0, b2 = 0;
  for (const auto& pt : points) {
    if (!(pt.v1 > 0.0))
      throw std::invalid_argument("fit_var_coeffs: v1 must be > 0");
    const double x1 = pt.rho / kd;
    const double x2 = pt.rho * pt.rho / kd;
    const double y = pt.v_inf / pt.v1 - 1.0;
    a11 += x1 * x1;
    a12 += x1 * x2;
    a22 += x2 * x2;
    b1 += x1 * y;
    b2 += x2 * y;
  }
  const double det = a11 * a22 - a12 * a12;
  if (std::abs(det) < 1e-15)
    throw std::invalid_argument("fit_var_coeffs: singular system");
  return {(b1 * a22 - b2 * a12) / det, (a11 * b2 - a12 * b1) / det};
}

double fit_linear_slope(std::span<const SlopePoint> points) {
  double sxx = 0.0, sxy = 0.0;
  for (const auto& pt : points) {
    sxx += pt.x * pt.x;
    sxy += pt.x * (pt.ratio - 1.0);
  }
  if (!(sxx > 0.0))
    throw std::invalid_argument("fit_linear_slope: no nonzero x");
  return sxy / sxx;
}

}  // namespace ksw::core
