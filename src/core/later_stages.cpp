#include "core/later_stages.hpp"

#include <cmath>
#include <stdexcept>

#include "core/closed_forms.hpp"

namespace ksw::core {

namespace {

std::shared_ptr<const ServiceModel> default_service(
    std::shared_ptr<const ServiceModel> svc) {
  if (svc) return svc;
  return std::make_shared<DeterministicService>(1);
}

std::shared_ptr<const ArrivalModel> make_arrivals(
    const NetworkTrafficSpec& spec) {
  if (spec.q > 0.0)
    return std::shared_ptr<const ArrivalModel>(
        make_nonuniform_arrivals(spec.k, spec.p, spec.q, spec.bulk));
  return std::shared_ptr<const ArrivalModel>(
      make_bulk_arrivals(spec.k, spec.k, spec.p, spec.bulk));
}

// Exact first-stage mean/variance for uniform single arrivals with a
// *real-valued* constant service time mbar — the reference point of the
// Section IV-C mean-size method. Uses eqs. (2)/(3) with U = z^mbar.
double det_reference_mean(unsigned k, double lambda, double mbar) {
  const double kd = static_cast<double>(k);
  const double r2 = lambda * lambda * (1.0 - 1.0 / kd);
  const double u2 = mbar * (mbar - 1.0);
  return closed::eq2_mean(lambda, mbar, r2, u2);
}

double det_reference_variance(unsigned k, double lambda, double mbar) {
  const double kd = static_cast<double>(k);
  const double r2 = lambda * lambda * (1.0 - 1.0 / kd);
  const double r3 =
      lambda * lambda * lambda * (1.0 - 1.0 / kd) * (1.0 - 2.0 / kd);
  const double u2 = mbar * (mbar - 1.0);
  const double u3 = mbar * (mbar - 1.0) * (mbar - 2.0);
  return closed::eq3_variance(lambda, mbar, r2, r3, u2, u3);
}

}  // namespace

double NetworkTrafficSpec::lambda() const {
  return p * static_cast<double>(bulk);
}

double NetworkTrafficSpec::mean_service() const {
  return service ? service->mean_service() : 1.0;
}

double NetworkTrafficSpec::rho() const { return lambda() * mean_service(); }

QueueSpec NetworkTrafficSpec::first_stage_queue() const {
  NetworkTrafficSpec copy = *this;
  copy.service = default_service(copy.service);
  return QueueSpec{make_arrivals(copy), copy.service};
}

LaterStages::LaterStages(NetworkTrafficSpec spec, LaterStageOptions opts)
    : spec_(std::move(spec)), opts_(opts) {
  spec_.service = default_service(spec_.service);
  if (spec_.k < 2)
    throw std::invalid_argument("LaterStages: switch degree k must be >= 2");
  const FirstStage first(spec_.first_stage_queue());
  const WaitingMoments w = first.moments();
  rho_ = spec_.rho();
  m_ = spec_.mean_service();
  w1_ = w.mean;
  v1_ = w.variance;
}

bool LaterStages::unit_uniform() const noexcept {
  const auto* det =
      dynamic_cast<const DeterministicService*>(spec_.service.get());
  return det != nullptr && det->service_time() == 1 && spec_.bulk == 1 &&
         spec_.q == 0.0;
}

double LaterStages::unit_mean(double rho) const {
  const double kd = static_cast<double>(spec_.k);
  return (1.0 - 1.0 / kd) * rho / (2.0 * (1.0 - rho));
}

double LaterStages::unit_variance(double rho) const {
  const double ik = 1.0 / static_cast<double>(spec_.k);
  return (1.0 - ik) * rho *
         (6.0 - 5.0 * rho * (1.0 + ik) + 2.0 * rho * rho * (1.0 + ik)) /
         (12.0 * (1.0 - rho) * (1.0 - rho));
}

double LaterStages::mean_limit() const {
  const double kd = static_cast<double>(spec_.k);
  const double r = 1.0 + opts_.mean_coeff * rho_ / kd;  // eq. 11 ratio

  const auto* det =
      dynamic_cast<const DeterministicService*>(spec_.service.get());
  const bool unit_service = det != nullptr && det->service_time() == 1;

  // Limit for uniform traffic with this service shape and batch size.
  double limit;
  if (unit_service && spec_.bulk == 1) {
    // eq. 11: anchored to the exact uniform first stage, which for unit
    // service is exactly unit_mean(rho) (eq. 6).
    limit = r * unit_mean(rho_);
  } else {
    // eq. 15, generalized. Interior stages see each first-stage batch as a
    // back-to-back train occupying m_eff = bulk * mean-service consecutive
    // cycles, i.e. a unit-service queue on an m_eff-times longer cycle.
    const double m_eff = m_ * static_cast<double>(spec_.bulk);
    limit = m_eff * r * unit_mean(rho_);
    if (det == nullptr) {
      // Section IV-C: correct by the exactly known first-stage ratio of
      // the size mixture to its mean-size equivalent (at batch size 1).
      const double lambda1 = spec_.p;
      NetworkTrafficSpec mix = spec_;
      mix.q = 0.0;
      mix.bulk = 1;
      const double w1_mix =
          FirstStage(mix.first_stage_queue()).moments().mean;
      limit *= w1_mix / det_reference_mean(spec_.k, lambda1, m_);
    }
  }

  // Section IV-D: nonuniform traffic scales by the exact first-stage ratio
  // and the fitted linear-in-q factor.
  if (spec_.q != 0.0) {
    NetworkTrafficSpec uniform = spec_;
    uniform.q = 0.0;
    const double w1_q0 =
        FirstStage(uniform.first_stage_queue()).moments().mean;
    limit *= (w1_ / w1_q0) * (1.0 + opts_.nonuni_mean_slope * spec_.q);
  }
  return limit;
}

double LaterStages::variance_limit() const {
  const double kd = static_cast<double>(spec_.k);

  const auto* det =
      dynamic_cast<const DeterministicService*>(spec_.service.get());
  const bool unit_service = det != nullptr && det->service_time() == 1;

  double limit;
  if (unit_service && spec_.bulk == 1) {
    // eq. 13, anchored to the exact uniform first stage (eq. 7).
    limit = (1.0 + opts_.var_lin * rho_ / kd +
             opts_.var_quad * rho_ * rho_ / kd) *
            unit_variance(rho_);
  } else {
    // eq. 16, generalized through the effective train size.
    const double m_eff = m_ * static_cast<double>(spec_.bulk);
    limit = m_eff * m_eff * (opts_.var_m_base + opts_.var_m_slope * rho_) *
            unit_variance(rho_);
    if (det == nullptr) {
      const double lambda1 = spec_.p;
      NetworkTrafficSpec mix = spec_;
      mix.q = 0.0;
      mix.bulk = 1;
      const double v1_mix =
          FirstStage(mix.first_stage_queue()).moments().variance;
      limit *= v1_mix / det_reference_variance(spec_.k, lambda1, m_);
    }
  }

  if (spec_.q != 0.0) {
    NetworkTrafficSpec uniform = spec_;
    uniform.q = 0.0;
    const double v1_q0 =
        FirstStage(uniform.first_stage_queue()).moments().variance;
    limit *= (v1_ / v1_q0) * (1.0 + opts_.nonuni_var_slope * spec_.q);
  }
  return limit;
}

double LaterStages::mean_at_stage(unsigned i) const {
  if (i == 0) throw std::invalid_argument("mean_at_stage: stages are 1-based");
  if (i == 1) return w1_;
  if (unit_uniform()) {
    // eq. 12.
    const double kd = static_cast<double>(spec_.k);
    const double approach =
        1.0 - std::pow(opts_.stage_rate, static_cast<double>(i - 1));
    return w1_ * (1.0 + opts_.mean_coeff * (rho_ / kd) * approach);
  }
  return mean_limit();
}

double LaterStages::variance_at_stage(unsigned i) const {
  if (i == 0)
    throw std::invalid_argument("variance_at_stage: stages are 1-based");
  if (i == 1) return v1_;
  if (unit_uniform()) {
    // eq. 14.
    const double kd = static_cast<double>(spec_.k);
    const double approach =
        1.0 - std::pow(opts_.stage_rate, static_cast<double>(i - 1));
    return v1_ * (1.0 + (opts_.var_lin * rho_ / kd +
                         opts_.var_quad * rho_ * rho_ / kd) *
                            approach);
  }
  return variance_limit();
}

}  // namespace ksw::core
