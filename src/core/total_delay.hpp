// Total waiting time through an n-stage network (paper Section V).
//
// The total waiting time is the sum of per-stage waiting times. Its mean is
// the sum of the per-stage means. Its variance is the sum of per-stage
// variances plus twice the inter-stage covariances, which the paper models
// as decaying geometrically with stage distance:
//
//   sigma_{i,i+1} = a v_i,  sigma_{i,i+j} = a b^{j-1} v_i   (j >= 1)
//   a = (1 - 2 m rho / 5) 3 m rho / (5k),  b = (1 - 2 m rho / 5)/k.
//
// Finally, the full distribution of the total waiting time is approximated
// by the gamma distribution with the estimated mean and variance — the
// paper's Figs. 3-8 show this matches simulation "incredibly" well,
// including the tails.
#pragma once

#include "core/later_stages.hpp"
#include "stats/gamma_distribution.hpp"

namespace ksw::core {

/// Section V estimates for the total waiting time over n stages.
class TotalDelay {
 public:
  TotalDelay(LaterStages stages, unsigned n_stages);

  [[nodiscard]] unsigned n_stages() const noexcept { return n_; }
  [[nodiscard]] const LaterStages& stages() const noexcept { return stages_; }

  /// Sum of per-stage mean waiting times.
  [[nodiscard]] double mean_total() const;

  /// Total variance. With `with_covariance` (the default), includes the
  /// geometric covariance correction above; without it, assumes stages are
  /// independent (the paper's first approximation).
  [[nodiscard]] double variance_total(bool with_covariance = true) const;

  /// Model covariance sigma_{ij} between the waiting times at stages i and
  /// j (1-based). sigma_{ii} is the stage variance.
  [[nodiscard]] double covariance(unsigned i, unsigned j) const;

  /// Model correlation between stages i and j.
  [[nodiscard]] double correlation(unsigned i, unsigned j) const;

  /// Gamma approximation to the distribution of the total waiting time.
  [[nodiscard]] stats::GammaDistribution gamma_approximation() const;

  /// Mean/variance of the total *delay* (waiting + service). With constant
  /// per-stage service and cut-through forwarding the added service is
  /// n + m - 1 cycles with zero variance (Section V, end).
  [[nodiscard]] double mean_total_delay() const;

 private:
  /// Decay parameters (a, b) of the covariance model.
  [[nodiscard]] std::pair<double, double> covariance_decay() const;

  LaterStages stages_;
  unsigned n_;
};

}  // namespace ksw::core
