// Exact first-stage waiting-time analysis (paper Section II, Theorem 1).
//
// For arrival PGF R(z) and service PGF U(z), the steady-state waiting time w
// of a message at a first-stage output queue has z-transform
//
//   t(z) = (1 - m*lambda)/lambda
//          * (1 - z)/(R(U(z)) - z)
//          * (1 - R(U(z)))/(1 - U(z)).
//
// FirstStage evaluates this transform three ways:
//   * moments()       — exact E(w), Var(w), and the third factorial moment,
//                       obtained by expanding t around z = 1 with exact
//                       series algebra (the paper needed Macsyma overnight
//                       for the same derivatives);
//   * distribution()  — the exact probabilities P(w = j) by power-series
//                       inversion of t around z = 0;
//   * transform_at()  — t(z) at a real point, for spot checks.
#pragma once

#include <cstddef>
#include <vector>

#include "core/models.hpp"
#include "pgf/series.hpp"

namespace ksw::core {

/// Exact waiting-time moments at the first stage.
struct WaitingMoments {
  double mean = 0.0;        ///< E(w), eq. (2)
  double variance = 0.0;    ///< Var(w), eq. (3)
  double factorial2 = 0.0;  ///< E[w(w-1)] = t''(1)
  double factorial3 = 0.0;  ///< E[w(w-1)(w-2)] = t'''(1)

  [[nodiscard]] double second_moment() const noexcept {
    return factorial2 + mean;
  }
  /// Standardized skewness of w.
  [[nodiscard]] double skewness() const noexcept;
};

/// Analyzer for one first-stage output queue. Requires rho < 1.
class FirstStage {
 public:
  explicit FirstStage(QueueSpec spec);

  [[nodiscard]] const QueueSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double lambda() const noexcept { return lambda_; }
  [[nodiscard]] double mean_service() const noexcept { return m_; }
  [[nodiscard]] double rho() const noexcept { return lambda_ * m_; }

  /// Exact moments via series expansion of t(z) at z = 1.
  [[nodiscard]] WaitingMoments moments() const;

  /// Exact P(w = j) for j = 0..length-1 via series inversion at z = 0.
  /// The omitted tail mass is 1 - sum of returned values.
  [[nodiscard]] std::vector<double> distribution(std::size_t length) const;

  /// Exact distribution of the unfinished work s at the end of a cycle
  /// (Theorem 1's intermediate transform Psi(z) = (1-rho)(1-z)/(C(z)-z)).
  /// Unfinished work bounds buffer occupancy, so P(s > c) estimates the
  /// overflow probability of a buffer holding c cycles of backlog
  /// (Section VI future work).
  [[nodiscard]] std::vector<double> unfinished_work_distribution(
      std::size_t length) const;

  /// P(unfinished work > c) from the above, with the truncation tail
  /// counted as overflow (a conservative bound).
  [[nodiscard]] double overflow_probability(std::size_t c,
                                            std::size_t length = 4096) const;

  /// t(z) at a real z in [0, 1). Evaluated from closed form, not series.
  [[nodiscard]] double transform_at(double z) const;

  /// Waiting-time moments of the *delay* (waiting + own service):
  /// mean_delay = E(w) + m, var_delay = Var(w) + Var(service), since
  /// arrivals are independent of queue length (Section III preamble).
  [[nodiscard]] double mean_delay() const;
  [[nodiscard]] double variance_delay() const;

 private:
  QueueSpec spec_;
  double lambda_;
  double m_;
};

}  // namespace ksw::core
