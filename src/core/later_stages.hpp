// Later-stage waiting-time approximations (paper Section IV).
//
// The inputs to an interior stage are outputs of earlier queues, so they are
// not independent across cycles and no exact analysis is known. The paper's
// approach, reproduced here:
//
//   * The stage-i statistics converge geometrically (rate a = 2/5) to a
//     spatial steady state (w_inf, v_inf).
//   * The limit is a low-order polynomial in rho — calibrated once against
//     simulation — times an exact first-stage quantity:
//       w_inf = (1 + (4/5) rho/k) w1                              (eq. 11)
//       w_i   = (1 + (4/5)(rho/k)(1 - a^{i-1})) w1                (eq. 12)
//       v_inf = (1 + rho/k + rho^2/k) v1                          (eq. 13)
//       v_i   = (1 + (rho/k + rho^2/k)(1 - a^{i-1})) v1           (eq. 14)
//   * Messages of constant size m >= 2 leave earlier queues spaced by m
//     cycles, so interior stages behave like unit-service queues on a
//     cycle m times longer:
//       w_inf(m) = m (1 + (4/5) rho/k) (1-1/k) rho / (2(1-rho))   (eq. 15)
//       v_inf(m) = m^2 (1 + c rho/k) v1_unit(rho)                 (eq. 16)
//   * Multiple sizes: the mean-size formula, corrected by the exactly
//     known first-stage ratio (Section IV-C).
//   * Nonuniform traffic: a linear function of q times the exact
//     first-stage value (Section IV-D).
//
// Every constant is exposed in LaterStageOptions; defaults reproduce the
// paper's ESTIMATE rows (see DESIGN.md section 2 for the constants whose
// printed values are illegible in the source scan and were reconstructed).
#pragma once

#include <memory>

#include "core/first_stage.hpp"
#include "core/models.hpp"

namespace ksw::core {

/// Uniform-or-favorite traffic through an n-stage network of k x k switches.
struct NetworkTrafficSpec {
  unsigned k = 2;       ///< switch degree (k inputs, k outputs)
  double p = 0.5;       ///< per-input batch-arrival probability per cycle
  unsigned bulk = 1;    ///< messages per first-stage batch
  double q = 0.0;       ///< favorite-destination probability (0 = uniform)
  std::shared_ptr<const ServiceModel> service;  ///< defaults to unit service

  /// Arrival rate per first-stage queue: lambda = p * bulk (independent of
  /// q by symmetry).
  [[nodiscard]] double lambda() const;
  /// Traffic intensity rho = lambda * mean service time; must be < 1.
  [[nodiscard]] double rho() const;
  [[nodiscard]] double mean_service() const;
  /// The first-stage queue model implied by this spec.
  [[nodiscard]] QueueSpec first_stage_queue() const;
};

/// Interpolation constants of Section IV. Defaults are the paper's values
/// (reconstructed where the scan is illegible; see DESIGN.md).
struct LaterStageOptions {
  double mean_coeff = 0.8;        ///< eq. 11: w_inf/w1 = 1 + mean_coeff*rho/k
  double stage_rate = 0.4;        ///< a in eqs. 12/14 (geometric approach)
  double var_lin = 1.0;   ///< eq. 13: coefficient of rho/k
  double var_quad = 1.0;  ///< eq. 13: coefficient of rho^2/k
  /// eq. 16: v_inf(m>=2) = m^2 (var_m_base + var_m_slope*rho) v1_unit(rho).
  /// The paper derives 2/3 as the exact light-traffic M/D/1 ratio
  /// (interior arrivals are thinned by (1-1/k) and smoothed) but states
  /// "7/10 works better ... for small and moderate message sizes"; with
  /// base 7/10 the slope 14/15 keeps the factor at 7/6 for rho = 0.5,
  /// reproducing both the Table III ESTIMATE row and the printed Table
  /// VIII prediction column (12.64 at rho = 0.2, m = 4, n = 12).
  double var_m_base = 0.7;
  double var_m_slope = 14.0 / 15.0;
  /// Section IV-D: w_inf(q) = (1 + mean_coeff*rho/k)(1 + nonuni_mean_slope*q)
  /// * w1_exact(q). Calibrated against this repo's simulator at rho = 0.5,
  /// k = 2 (the paper's own fitting procedure; its printed coefficients are
  /// illegible). Re-fit with bench/ext_calibration for other regimes.
  double nonuni_mean_slope = -0.15;
  double nonuni_var_slope = -0.27;  ///< same shape for the variance
};

/// Approximate waiting-time statistics at each stage of the network.
class LaterStages {
 public:
  explicit LaterStages(NetworkTrafficSpec spec, LaterStageOptions opts = {});

  [[nodiscard]] const NetworkTrafficSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] const LaterStageOptions& options() const noexcept {
    return opts_;
  }

  /// Exact first-stage statistics (Theorem 1).
  [[nodiscard]] double mean_first_stage() const { return w1_; }
  [[nodiscard]] double variance_first_stage() const { return v1_; }

  /// Limiting (spatial steady state) statistics, eqs. 11/13/15/16.
  [[nodiscard]] double mean_limit() const;
  [[nodiscard]] double variance_limit() const;

  /// Statistics at stage i (1-based). Stage 1 is exact; unit-service
  /// uniform traffic interpolates geometrically (eqs. 12/14); all other
  /// traffic uses the limit for every stage after the first, as the paper
  /// recommends for m >= 2.
  [[nodiscard]] double mean_at_stage(unsigned i) const;
  [[nodiscard]] double variance_at_stage(unsigned i) const;

 private:
  [[nodiscard]] bool unit_uniform() const noexcept;
  [[nodiscard]] double unit_mean(double rho) const;      // eq. 6 at rho
  [[nodiscard]] double unit_variance(double rho) const;  // eq. 7 at rho

  NetworkTrafficSpec spec_;
  LaterStageOptions opts_;
  double rho_;
  double m_;   // mean service
  double w1_;  // exact first-stage mean
  double v1_;  // exact first-stage variance
};

}  // namespace ksw::core
