#include "core/first_stage.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "support/error.hpp"

namespace ksw::core {

namespace {

// Length of the Taylor expansions around z = 1 (epsilon-series). Four terms
// (eps^0..eps^3) give t'(1), t''(1), t'''(1).
constexpr std::size_t kEpsTerms = 4;

// Below this distance from saturation the epsilon-series denominators
// (leading coefficient rho - 1) are numerically meaningless: Theorem 1's
// moments blow up as 1/(1-rho)^k and the power-series division amplifies
// round-off by the same factor. Well above pgf::kDivideEpsilon so the
// failure is reported as "too close to saturation" with a suggested cap
// instead of surfacing later as an opaque ill-conditioned division.
constexpr double kSaturationMargin = 1e-6;

pgf::Series eps_series(std::array<double, kEpsTerms> coeffs) {
  pgf::Series s(kEpsTerms);
  for (std::size_t i = 0; i < kEpsTerms; ++i) s[i] = coeffs[i];
  return s;
}

}  // namespace

double WaitingMoments::skewness() const noexcept {
  const double second = factorial2 + mean;
  const double third = factorial3 + 3.0 * factorial2 + mean;
  const double mu3 =
      third - 3.0 * mean * second + 2.0 * mean * mean * mean;
  const double sigma = std::sqrt(variance);
  return sigma > 0.0 ? mu3 / (sigma * sigma * sigma) : 0.0;
}

FirstStage::FirstStage(QueueSpec spec) : spec_(std::move(spec)) {
  if (!spec_.arrivals || !spec_.service)
    throw std::invalid_argument("FirstStage: null model");
  lambda_ = spec_.arrivals->lambda();
  m_ = spec_.service->mean_service();
  if (!(lambda_ > 0.0))
    throw std::invalid_argument("FirstStage: arrival rate must be positive");
  const double rho = lambda_ * m_;
  if (!(rho < 1.0 - kSaturationMargin)) {
    const double cap = 1.0 - kSaturationMargin;
    std::ostringstream msg;
    msg << "FirstStage: traffic intensity rho = lambda*m = " << rho
        << (rho < 1.0 ? " is too close to saturation (heavy-traffic limit)"
                      : " is at or beyond saturation; the queue is unstable")
        << "; reduce the offered load so rho <= " << cap;
    throw numeric_error(msg.str());
  }
}

WaitingMoments FirstStage::moments() const {
  const pgf::MomentTuple R = spec_.arrivals->moments();
  const pgf::MomentTuple U = spec_.service->moments();
  // C(z) = R(U(z)); factorial derivatives at 1 via Faa di Bruno.
  const pgf::MomentTuple C = pgf::MomentTuple::compose(R, U);

  // Taylor coefficients at z = 1 + eps:
  //   C(1+eps) = 1 + c1 eps + c2 eps^2 + c3 eps^3 + c4 eps^4, c_i = C^(i)(1)/i!
  const double c1 = C.d1, c2 = C.d2 / 2.0, c3 = C.d3 / 6.0, c4 = C.d4 / 24.0;
  const double u1 = U.d1, u2 = U.d2 / 2.0, u3 = U.d3 / 6.0, u4 = U.d4 / 24.0;

  // t(z) = (1-rho)/lambda * A(z) * B(z), with (after cancelling one factor
  // of eps from numerator and denominator of each ratio):
  //   A = (1-z)/(C(z)-z)      ->  -1 / (c1-1 + c2 eps + c3 eps^2 + c4 eps^3)
  //   B = (1-C(z))/(1-U(z))   ->  (c1 + c2 eps + ...)/(u1 + u2 eps + ...)
  const pgf::Series a =
      pgf::Series::divide(eps_series({-1.0, 0.0, 0.0, 0.0}),
                          eps_series({c1 - 1.0, c2, c3, c4}));
  const pgf::Series b = pgf::Series::divide(eps_series({c1, c2, c3, c4}),
                                            eps_series({u1, u2, u3, u4}));
  pgf::Series t = pgf::Series::mul(a, b);
  t *= (1.0 - lambda_ * m_) / lambda_;

  // t(1+eps) = 1 + t'(1) eps + t''(1)/2 eps^2 + t'''(1)/6 eps^3.
  WaitingMoments out;
  out.mean = t[1];
  out.factorial2 = 2.0 * t[2];
  out.factorial3 = 6.0 * t[3];
  out.variance = out.factorial2 + out.mean - out.mean * out.mean;
  return out;
}

std::vector<double> FirstStage::distribution(std::size_t length) const {
  if (length == 0)
    throw std::invalid_argument("FirstStage::distribution: length == 0");
  const pgf::Series u = spec_.service->series(length);
  const pgf::DiscreteDistribution r_pmf = spec_.arrivals->distribution();
  const pgf::Series c = pgf::Series::compose_polynomial(r_pmf.pmf(), u);

  // Every factor of t(z) vanishes at z = 1; dividing the raw factors
  // leaves a non-decaying round-off mode in the tail. Deflate the z = 1
  // root analytically first:
  //   (1-C)/(1-z) = Chat, (1-U)/(1-z) = Uhat  (survival-sum series),
  //   (C-z)/(z-1) = D                          (synthetic division),
  // giving the well-conditioned form
  //   t(z) = -(1-rho)/lambda * Chat / (D * Uhat).
  pgf::Series chat(length);
  pgf::Series uhat(length);
  {
    double csum = 0.0, usum = 0.0;
    for (std::size_t j = 0; j < length; ++j) {
      csum += c[j];
      usum += u[j];
      chat[j] = 1.0 - csum;  // sum_{i>j} c_i
      uhat[j] = 1.0 - usum;
    }
  }
  pgf::Series d(length);
  {
    // C - z = (z - 1) D  =>  d_0 = -e_0, d_j = d_{j-1} - e_j.
    double prev = -c[0];
    d[0] = prev;
    for (std::size_t j = 1; j < length; ++j) {
      const double e = c[j] - (j == 1 ? 1.0 : 0.0);
      prev -= e;
      d[j] = prev;
    }
  }
  pgf::Series t =
      pgf::Series::divide(chat, pgf::Series::mul(d, uhat));
  t *= -(1.0 - lambda_ * m_) / lambda_;
  return t.coefficients();
}

std::vector<double> FirstStage::unfinished_work_distribution(
    std::size_t length) const {
  if (length == 0)
    throw std::invalid_argument(
        "FirstStage::unfinished_work_distribution: length == 0");
  const pgf::Series u = spec_.service->series(length);
  const pgf::DiscreteDistribution r_pmf = spec_.arrivals->distribution();
  const pgf::Series c = pgf::Series::compose_polynomial(r_pmf.pmf(), u);

  // Psi(z) = (1-rho)(1-z)/(C(z)-z) = -(1-rho)/D with (C-z) = (z-1)D,
  // the same deflation as distribution().
  pgf::Series d(length);
  double prev = -c[0];
  d[0] = prev;
  for (std::size_t j = 1; j < length; ++j) {
    const double e = c[j] - (j == 1 ? 1.0 : 0.0);
    prev -= e;
    d[j] = prev;
  }
  pgf::Series psi = pgf::Series::divide(
      pgf::Series::constant(-(1.0 - lambda_ * m_), length), d);
  return psi.coefficients();
}

double FirstStage::overflow_probability(std::size_t c,
                                        std::size_t length) const {
  if (length <= c) length = c + 1;
  const auto pmf = unfinished_work_distribution(length);
  double below = 0.0;
  for (std::size_t j = 0; j <= c; ++j) below += pmf[j];
  return std::max(0.0, 1.0 - below);
}

double FirstStage::transform_at(double z) const {
  if (!(z >= 0.0) || !(z < 1.0))
    throw std::invalid_argument("FirstStage::transform_at: z outside [0,1)");
  const double uz = spec_.service->eval(z);
  const double cz = spec_.arrivals->eval(uz);
  const double rho = lambda_ * m_;
  return (1.0 - rho) / lambda_ * (1.0 - z) / (cz - z) * (1.0 - cz) /
         (1.0 - uz);
}

double FirstStage::mean_delay() const { return moments().mean + m_; }

double FirstStage::variance_delay() const {
  const pgf::MomentTuple U = spec_.service->moments();
  return moments().variance + U.variance();
}

}  // namespace ksw::core
