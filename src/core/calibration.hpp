// Re-derivation of the Section-IV interpolation constants from simulation
// output — the paper's own methodology ("We use simulations to estimate
// r(1/2), and then simply linearly interpolate").
//
// Each fit consumes per-stage statistics measured by the simulator and
// returns the constant(s) of the corresponding formula, so users can
// recalibrate LaterStageOptions for switch sizes or loads outside the
// paper's grid, or tighten the fit with longer simulations.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace ksw::core {

/// Measured waiting statistics at one network stage (1-based).
struct StageObservation {
  unsigned stage = 1;
  double mean = 0.0;
  double variance = 0.0;
};

/// Estimate the limiting statistics w_inf / v_inf from the deepest stages
/// of a simulation (average of the last `tail` stages).
[[nodiscard]] StageObservation limit_estimate(
    std::span<const StageObservation> stages, unsigned tail = 2);

/// Fit `mean_coeff` of eq. 11 from one (rho, k) operating point:
/// w_inf/w1 = 1 + mean_coeff * rho / k.
[[nodiscard]] double fit_mean_coeff(double w1, double w_inf, double rho,
                                    unsigned k);

/// Fit the geometric approach rate `a` of eq. 12 by log-linear regression
/// of 1 - (w_i - w1-anchored ratio)/Delta over stages 2..end.
[[nodiscard]] double fit_stage_rate(std::span<const StageObservation> stages,
                                    double w1, double w_inf);

/// Fit (var_lin, var_quad) of eq. 13 by least squares over operating
/// points: v_inf/v1 - 1 = var_lin * rho/k + var_quad * rho^2/k.
struct VarPoint {
  double rho = 0.0;
  double v1 = 0.0;
  double v_inf = 0.0;
};
[[nodiscard]] std::pair<double, double> fit_var_coeffs(
    std::span<const VarPoint> points, unsigned k);

/// Fit the slope of a "1 + slope * x" correction by least squares through
/// the origin-shifted points (x_i, ratio_i - 1). Used for the Section IV-D
/// linear-in-q factors.
struct SlopePoint {
  double x = 0.0;
  double ratio = 1.0;
};
[[nodiscard]] double fit_linear_slope(std::span<const SlopePoint> points);

}  // namespace ksw::core
