// Worker-process management for the serve fleet.
//
// A fleet worker is a plain `kswsim serve --listen=<socket>` process:
// the supervisor fork+execs the same binary it was started from (or an
// explicit --worker-binary), waits for the worker's Unix socket to
// accept, and keeps exactly one connection per worker open. Reusing the
// whole single-process serve path is what makes the fleet's bit-identity
// guarantee structural rather than aspirational: a worker cannot answer
// differently from `kswsim serve` because it *is* `kswsim serve`.
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

namespace ksw::fleet {

/// Absolute path of the currently running executable (/proc/self/exe).
/// Throws ksw::Error(kFleet) when it cannot be resolved.
[[nodiscard]] std::string self_exe_path();

/// Fork+exec `binary` with `args` (argv[1..]; argv[0] is `binary`).
/// The child's stdin is redirected to /dev/null; stdout and stderr are
/// inherited so worker diagnostics surface in the supervisor's stderr.
/// Returns the child pid; throws ksw::Error(kFleet) on fork failure.
[[nodiscard]] pid_t spawn_process(const std::string& binary,
                                  const std::vector<std::string>& args);

/// Connect to a Unix stream socket, retrying until the path accepts or
/// `timeout_ms` elapses (covers the spawn -> bind race on a fresh
/// worker). The returned descriptor is non-blocking and close-on-exec.
/// Throws ksw::Error(kFleet) on timeout or connect failure.
[[nodiscard]] int connect_unix_retry(const std::string& socket_path,
                                     int timeout_ms);

}  // namespace ksw::fleet
