#include "fleet/routing.hpp"

namespace ksw::fleet {

std::uint64_t shard_hash(const serve::Query& query) {
  return serve::fnv1a64(query.canonical());
}

std::size_t route(std::uint64_t hash, std::size_t workers) noexcept {
  return static_cast<std::size_t>(hash % workers);
}

std::size_t route_alive(std::uint64_t hash,
                        const std::vector<bool>& alive) noexcept {
  const std::size_t n = alive.size();
  if (n == 0) return 0;
  const std::size_t primary = route(hash, n);
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t i = (primary + probe) % n;
    if (alive[i]) return i;
  }
  return n;
}

}  // namespace ksw::fleet
