#include "fleet/worker.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/error.hpp"

namespace ksw::fleet {

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0)
    throw ksw::fleet_error(std::string("cannot resolve /proc/self/exe: ") +
                           std::strerror(errno));
  buf[n] = '\0';
  return std::string(buf);
}

pid_t spawn_process(const std::string& binary,
                    const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0)
    throw ksw::fleet_error(std::string("fork failed: ") +
                           std::strerror(errno));
  if (pid == 0) {
    // Child. The supervisor's sockets are close-on-exec; detach stdin so
    // a worker never competes with the supervisor for the terminal. A
    // worker must also not inherit the supervisor's pending SIGINT/
    // SIGTERM disposition decisions — exec resets handlers anyway.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      if (devnull != STDIN_FILENO) ::close(devnull);
    }
    ::execv(binary.c_str(), argv.data());
    // exec failed; there is no exception machinery worth running here.
    const char msg[] = "fleet worker: exec failed\n";
    [[maybe_unused]] const ssize_t ignored =
        ::write(STDERR_FILENO, msg, sizeof msg - 1);
    ::_exit(127);
  }
  return pid;
}

int connect_unix_retry(const std::string& socket_path, int timeout_ms) {
  if (socket_path.size() >= sizeof(sockaddr_un::sun_path))
    throw ksw::fleet_error("worker socket path too long: " + socket_path);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    const int fd =
        ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
      throw ksw::fleet_error(std::string("socket failed: ") +
                             std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline)
      throw ksw::fleet_error("worker did not accept on " + socket_path +
                             " within " + std::to_string(timeout_ms) + " ms");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace ksw::fleet
