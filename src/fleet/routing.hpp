// Shard routing for the serve fleet: canonical cache key -> worker.
//
// The supervisor routes every valid ksw.query/v1 request by the FNV-1a
// hash of its *canonical* request string — the same identity the
// evaluation cache uses (serve/query.hpp). Two requests that share a
// cache entry therefore always land on the same worker, so each shard's
// LRU stays hot and a repeated tuple is a cache hit no matter which TCP
// connection it arrived on. Because every kernel is a pure function of
// the canonical tuple, re-routing around a dead worker changes *where*
// a request is evaluated but never *what* bytes come back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/query.hpp"

namespace ksw::fleet {

/// The shard hash of a valid request: FNV-1a over Query::canonical().
/// Pure — identical across processes, runs, and architectures.
[[nodiscard]] std::uint64_t shard_hash(const serve::Query& query);

/// Primary worker for a hash: `hash % workers`. `workers` must be >= 1.
[[nodiscard]] std::size_t route(std::uint64_t hash,
                                std::size_t workers) noexcept;

/// Route honoring liveness: the primary worker when alive, else the
/// first alive worker scanning upward from it (wrap-around) — a
/// deterministic interim assignment while the primary restarts. Returns
/// `workers` (an invalid index) when no worker is alive.
[[nodiscard]] std::size_t route_alive(std::uint64_t hash,
                                      const std::vector<bool>& alive) noexcept;

}  // namespace ksw::fleet
