// The serve-fleet supervisor behind `kswsim fleet`.
//
// One supervisor process owns a TCP listener (the fleet's front door)
// and N `kswsim serve --listen=<unix socket>` worker processes. Every
// ksw.query/v1 request line read from a TCP client is parsed once,
// routed to a worker by the FNV-1a hash of its canonical cache key
// (fleet/routing.hpp), and relayed verbatim; the worker's response line
// is relayed back verbatim, so fleet responses are bit-identical to
// single-process `kswsim serve` responses by construction. Responses to
// one client are flushed strictly in that client's request order (a
// per-client reorder buffer re-sequences across workers), matching the
// single-process ordering contract.
//
// Admission control (docs/OPERATIONS.md "Overload and brownout"):
// each worker has a bounded queue of forwarded-but-unanswered requests
// (--queue-depth). When the target worker's queue is full the request
// is *shed* with the in-band error kind "overload" instead of being
// queued without bound — under sustained overload the fleet degrades to
// a bounded-latency subset of the offered load (brownout) rather than
// collapsing into unbounded queueing, which is exactly what the
// heavy-tail multi-server results in PAPERS.md warn about. Requests held
// while no worker is live are additionally shed when their deadline
// expires before dispatch.
//
// Worker supervision: a worker that exits (crash, OOM kill) has its
// in-flight requests answered in-band (kind "internal"), is restarted
// immediately, and its shard of the key space is re-routed to the next
// live worker in the interim. A worker that crash-loops (repeated exits
// within a second of spawn) escalates to ksw::Error(kFleet), exit 8.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

#include "io/json.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "par/cancel.hpp"
#include "serve/access_log.hpp"
#include "serve/query.hpp"

namespace ksw::fleet {

struct FleetOptions {
  std::size_t workers = 4;        ///< worker processes (>= 1)
  std::string host = "127.0.0.1";  ///< TCP bind address
  int port = 0;                   ///< TCP port; 0 = ephemeral (printed)
  std::string socket_dir;         ///< directory for worker Unix sockets
  std::size_t queue_depth = 128;  ///< per-worker forwarded-unanswered cap
  std::int64_t deadline_ms = 0;   ///< default request deadline (0 = none)
  std::string worker_binary;      ///< kswsim path; "" = /proc/self/exe
  /// Extra argv appended to `serve --listen=<socket>` for every worker
  /// (--threads/--batch/--cache-mb/--deadline-ms pass-through).
  std::vector<std::string> worker_args;
  std::string access_log;         ///< supervisor-hop JSONL log ("" = off)
  obs::Tracer* tracer = nullptr;  ///< fleet.request spans (not owned)
  int connect_timeout_ms = 10'000;  ///< spawn -> socket-accept budget
  int restart_limit = 5;          ///< consecutive early deaths tolerated
  std::size_t max_line_bytes = 1 << 20;  ///< per-connection line cap
};

/// What a supervisor run did; `interrupted` maps to exit 130.
struct FleetSummary {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  bool interrupted = false;
};

class Supervisor {
 public:
  explicit Supervisor(FleetOptions opts);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Bind the TCP listener, then spawn and connect every worker.
  /// Logs "fleet: listening on HOST:PORT" and one "fleet: worker I pid P"
  /// line per worker to `err` (machine-parsed by tests and the bench).
  /// Throws ksw::Error(kFleet) when a worker cannot be started.
  void start(std::ostream& err);

  /// Bound TCP port (valid after start(); resolves port 0 requests).
  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] const std::vector<pid_t>& worker_pids() const noexcept {
    return pids_;
  }

  /// Accept/route/relay until cancelled. On cancellation: drain worker
  /// responses (bounded), answer undrained requests in-band with
  /// "interrupted", SIGTERM the workers, reap them, and return with
  /// `interrupted = true`.
  FleetSummary run(const par::CancelToken* cancel, std::ostream& err);

  /// Structured snapshot (schema ksw.obs.report/v1, command "fleet"):
  /// fleet.* counters, request-latency quantiles, per-worker state.
  /// Thread-safe against a concurrent run() so a metrics ticker can
  /// snapshot a live supervisor.
  [[nodiscard]] io::Json report(bool include_wall = true) const;

  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

 private:
  struct Pending;
  struct WorkerState;
  struct ClientState;

  void start_worker(std::size_t index, std::ostream& err);
  void try_connect_worker(std::size_t index, std::ostream& err);
  void on_worker_dead(std::size_t index, std::ostream& err);
  void reap_children(std::ostream& err);
  void accept_clients();
  void read_client(std::size_t slot);
  void handle_request(std::size_t slot, std::string line);
  void forward(std::size_t worker, std::string line, Pending pending);
  void drain_hold_queue();
  void read_worker(std::size_t index, std::ostream& err);
  void complete(Pending& pending, std::string response_line, int worker);
  void flush_client(ClientState& client);
  void write_client(std::size_t slot);
  void close_client(std::size_t slot);
  void shutdown_workers(std::ostream& err);
  [[nodiscard]] std::string generate_trace_id();

  FleetOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<pid_t> pids_;  ///< current pid per worker index
  std::vector<std::unique_ptr<ClientState>> clients_;
  /// Requests parked while no worker is live (bounded by queue_depth).
  struct Held;
  std::deque<Held> hold_;
  FleetSummary summary_;
  bool draining_ = false;
  std::ostream* err_sink_ = nullptr;  ///< run()'s err, for deep callees

  obs::Registry registry_;
  std::unique_ptr<serve::AccessLog> access_log_;
  std::uint64_t trace_base_ = 0;
  std::uint64_t trace_seq_ = 0;

  obs::Counter* requests_ = nullptr;
  obs::Counter* ok_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* forwarded_ = nullptr;
  obs::Counter* rerouted_ = nullptr;
  obs::Counter* shed_overload_ = nullptr;
  obs::Counter* shed_deadline_ = nullptr;
  obs::Counter* invalid_ = nullptr;
  obs::Counter* worker_exits_ = nullptr;
  obs::Counter* restarts_ = nullptr;
  obs::Counter* accepted_ = nullptr;
  obs::Gauge* inflight_ = nullptr;
  obs::Histogram* request_us_ = nullptr;
  /// Serializes histogram recording (loop thread) against report()
  /// (metrics-ticker thread) — same convention as serve::Service.
  mutable std::mutex hist_mu_;
};

}  // namespace ksw::fleet
