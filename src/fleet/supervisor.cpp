#include "fleet/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/routing.hpp"
#include "fleet/worker.hpp"
#include "obs/report.hpp"
#include "support/error.hpp"

namespace ksw::fleet {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll granularity: cancellation, reaping, and reconnect attempts are
/// all observed within this many milliseconds even when idle.
constexpr int kPollMs = 50;
/// How long a worker must survive after spawn for its next exit to be
/// treated as fresh rather than part of a crash loop.
constexpr auto kEarlyDeathWindow = std::chrono::milliseconds(1000);
/// Budget for draining in-flight worker responses after SIGTERM.
constexpr auto kDrainBudget = std::chrono::milliseconds(2000);
/// Budget for workers to exit after SIGTERM before SIGKILL.
constexpr auto kReapBudget = std::chrono::milliseconds(2000);

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Extract `"key":"value"` from a rendered response line (cheap substring
/// scan — the supervisor never re-parses worker responses, it relays
/// them verbatim; this is only for the access log).
std::string extract_string_field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

enum class IoResult { kOk, kClosed };

/// Drain as much of `buf` into fd as the socket accepts right now.
/// kClosed on EPIPE/ECONNRESET; throws kIo on unexpected failures.
IoResult write_some(int fd, std::string* buf) {
  std::size_t done = 0;
  while (done < buf->size()) {
    const ssize_t n = ::write(fd, buf->data() + done, buf->size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EPIPE || errno == ECONNRESET) return IoResult::kClosed;
      throw ksw::io_error(std::string("fleet: write failed: ") +
                          std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  buf->erase(0, done);
  return IoResult::kOk;
}

}  // namespace

struct Supervisor::Pending {
  std::size_t client_slot = 0;
  std::uint64_t client_gen = 0;
  std::uint64_t seq = 0;
  Clock::time_point arrival{};
  std::string trace_id;
  std::string kernel;  ///< empty = request never parsed to a kernel
  io::Json id;
  std::int64_t deadline_ms = 0;
  double queue_us = 0.0;  ///< arrival -> forward (set when forwarded)
  Clock::time_point forwarded_at{};
  obs::Span span;
};

struct Supervisor::Held {
  std::string line;
  Pending pending;
  std::uint64_t hash = 0;
};

struct Supervisor::WorkerState {
  pid_t pid = -1;
  int fd = -1;
  std::string socket_path;
  std::string rbuf;
  std::string wbuf;
  std::deque<Pending> pending;  ///< forwarded, awaiting response (FIFO)
  bool alive = false;           ///< connected and believed healthy
  bool connecting = false;      ///< spawned, socket not accepted yet
  Clock::time_point spawned_at{};
  Clock::time_point connect_deadline{};
  int early_deaths = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t restarts = 0;
};

struct Supervisor::ClientState {
  int fd = -1;
  std::uint64_t gen = 0;  ///< bumped on close; stale completions no-op
  std::string rbuf;
  std::string wbuf;
  std::uint64_t next_seq = 0;
  std::uint64_t flush_seq = 0;
  std::uint64_t outstanding = 0;
  /// Responses completed out of request order, keyed by seq. Flushing
  /// advances flush_seq over a contiguous prefix — per-client responses
  /// leave in request order no matter which workers answered first.
  std::map<std::uint64_t, std::string> done;
  bool read_open = false;  ///< reading half still open (half-close aware)
  bool in_use = false;
};

Supervisor::Supervisor(FleetOptions opts) : opts_(std::move(opts)) {
  if (opts_.workers == 0)
    throw ksw::usage_error("fleet: --workers must be at least 1");
  if (opts_.queue_depth == 0)
    throw ksw::usage_error("fleet: --queue-depth must be at least 1");
  if (!opts_.access_log.empty())
    access_log_ = std::make_unique<serve::AccessLog>(opts_.access_log);
  trace_base_ = obs::fnv1a64(
      std::to_string(
          std::chrono::system_clock::now().time_since_epoch().count()) +
      "/fleet/" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  requests_ = &registry_.counter("fleet.requests");
  ok_ = &registry_.counter("fleet.responses.ok");
  errors_ = &registry_.counter("fleet.responses.error");
  forwarded_ = &registry_.counter("fleet.forwarded");
  rerouted_ = &registry_.counter("fleet.rerouted");
  shed_overload_ = &registry_.counter("fleet.shed.overload");
  shed_deadline_ = &registry_.counter("fleet.shed.deadline");
  invalid_ = &registry_.counter("fleet.invalid");
  worker_exits_ = &registry_.counter("fleet.worker.exits");
  restarts_ = &registry_.counter("fleet.worker.restarts");
  accepted_ = &registry_.counter("fleet.connections");
  inflight_ = &registry_.gauge("fleet.inflight_peak");
  // 100 us resolution out to 40 ms; slower round trips land in the
  // overflow tally and quantiles clamp to the upper edge.
  request_us_ = &registry_.histogram("fleet.request_us", 0.0, 100.0, 400);
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i)
    workers_.push_back(std::make_unique<WorkerState>());
  pids_.assign(opts_.workers, -1);
}

Supervisor::~Supervisor() {
  for (auto& w : workers_) {
    if (w->fd >= 0) ::close(w->fd);
    if (w->pid > 0) {
      ::kill(w->pid, SIGKILL);
      ::waitpid(w->pid, nullptr, 0);
    }
    if (!w->socket_path.empty()) ::unlink(w->socket_path.c_str());
  }
  for (auto& c : clients_)
    if (c->fd >= 0) ::close(c->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::string Supervisor::generate_trace_id() {
  std::uint64_t x = trace_base_ + 0x9e3779b97f4a7c15ull * (++trace_seq_);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  if (x == 0) x = 1;
  return obs::hex_id(x);
}

void Supervisor::start_worker(std::size_t index, std::ostream& err) {
  WorkerState& w = *workers_[index];
  w.socket_path =
      opts_.socket_dir + "/worker-" + std::to_string(index) + ".sock";
  ::unlink(w.socket_path.c_str());  // stale socket from a previous life
  std::vector<std::string> args{"serve", "--listen=" + w.socket_path};
  args.insert(args.end(), opts_.worker_args.begin(), opts_.worker_args.end());
  const std::string binary =
      opts_.worker_binary.empty() ? self_exe_path() : opts_.worker_binary;
  w.pid = spawn_process(binary, args);
  w.spawned_at = Clock::now();
  w.connect_deadline =
      w.spawned_at + std::chrono::milliseconds(opts_.connect_timeout_ms);
  w.connecting = true;
  w.alive = false;
  pids_[index] = w.pid;
  err << "fleet: worker " << index << " pid " << w.pid << " socket "
      << w.socket_path << "\n";
}

void Supervisor::try_connect_worker(std::size_t index, std::ostream& err) {
  WorkerState& w = *workers_[index];
  if (!w.connecting) return;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, w.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw ksw::io_error(std::string("fleet: socket failed: ") +
                        std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
      0) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    w.fd = fd;
    w.alive = true;
    w.connecting = false;
    err << "fleet: worker " << index << " connected\n";
    drain_hold_queue();
    return;
  }
  ::close(fd);
  if (Clock::now() >= w.connect_deadline)
    throw ksw::fleet_error("worker " + std::to_string(index) +
                           " did not accept on " + w.socket_path +
                           " within " +
                           std::to_string(opts_.connect_timeout_ms) + " ms");
}

void Supervisor::start(std::ostream& err) {
  // A worker or client that disappears mid-write must never kill the
  // supervisor.
  std::signal(SIGPIPE, SIG_IGN);
  if (opts_.socket_dir.empty())
    throw ksw::usage_error("fleet: socket_dir must be set");
  ::mkdir(opts_.socket_dir.c_str(), 0700);  // EEXIST is fine

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK,
                        0);
  if (listen_fd_ < 0)
    throw ksw::io_error(std::string("fleet: socket failed: ") +
                        std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1)
    throw ksw::usage_error("fleet: --tcp: bad host address: " + opts_.host);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0)
    throw ksw::io_error("fleet: cannot bind " + opts_.host + ":" +
                        std::to_string(opts_.port) + ": " +
                        std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  for (std::size_t i = 0; i < opts_.workers; ++i) start_worker(i, err);
  // Initial bring-up is synchronous: the fleet does not announce its
  // port until every worker accepts, so a client that connects right
  // after the banner always finds a full fleet.
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    WorkerState& w = *workers_[i];
    w.fd = connect_unix_retry(w.socket_path, opts_.connect_timeout_ms);
    w.alive = true;
    w.connecting = false;
  }
  err << "fleet: " << opts_.workers << " workers ready\n";
  err << "fleet: listening on " << opts_.host << ":" << port_ << "\n";
}

void Supervisor::reap_children(std::ostream& err) {
  while (true) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) return;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i]->pid == pid) {
        workers_[i]->pid = -1;  // already reaped
        pids_[i] = -1;
        on_worker_dead(i, err);
        break;
      }
    }
  }
}

void Supervisor::on_worker_dead(std::size_t index, std::ostream& err) {
  WorkerState& w = *workers_[index];
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  const bool was_up = w.alive || w.connecting;
  w.alive = false;
  w.connecting = false;
  if (!was_up) return;  // already handled (fd error + reap can both fire)
  worker_exits_->inc();

  // Requests the worker took with it answer in-band: nothing was flushed
  // for them, and every kernel is a pure function, so the client can
  // simply retry (likely against the restarted worker's warm shard).
  for (auto& p : w.pending) {
    complete(p,
             serve::render_error(p.id, serve::wire::kInternal,
                                 "fleet worker " + std::to_string(index) +
                                     " exited during evaluation; retry",
                                 p.trace_id),
             static_cast<int>(index));
  }
  w.pending.clear();
  w.wbuf.clear();
  w.rbuf.clear();

  if (draining_) return;  // shutting down anyway; no restart

  const bool early = Clock::now() - w.spawned_at < kEarlyDeathWindow;
  w.early_deaths = early ? w.early_deaths + 1 : 0;
  if (w.early_deaths > opts_.restart_limit)
    throw ksw::fleet_error("worker " + std::to_string(index) +
                           " is crash-looping (" +
                           std::to_string(w.early_deaths) +
                           " consecutive early exits); giving up");
  if (w.pid > 0) {
    // Death detected via the socket before SIGCHLD: reap synchronously so
    // the pid table stays truthful.
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
    w.pid = -1;
    pids_[index] = -1;
  }
  err << "fleet: worker " << index << " exited; restarting\n";
  restarts_->inc();
  w.restarts++;
  start_worker(index, err);
}

void Supervisor::accept_clients() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient failure; poll again
    accepted_->inc();
    summary_.connections++;
    std::size_t slot = clients_.size();
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (!clients_[i]->in_use) {
        slot = i;
        break;
      }
    }
    if (slot == clients_.size())
      clients_.push_back(std::make_unique<ClientState>());
    ClientState& c = *clients_[slot];
    c.fd = fd;
    c.in_use = true;
    c.read_open = true;
    c.rbuf.clear();
    c.wbuf.clear();
    c.done.clear();
    c.next_seq = 0;
    c.flush_seq = 0;
    c.outstanding = 0;
  }
}

void Supervisor::close_client(std::size_t slot) {
  ClientState& c = *clients_[slot];
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  c.gen++;  // completions still in flight for this client are dropped
  c.in_use = false;
  c.read_open = false;
  c.rbuf.clear();
  c.wbuf.clear();
  c.done.clear();
  c.outstanding = 0;
}

void Supervisor::read_client(std::size_t slot) {
  ClientState& c = *clients_[slot];
  char chunk[65536];
  while (c.read_open) {
    const ssize_t n = ::read(c.fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_client(slot);  // reset mid-stream: drop the connection
      return;
    }
    if (n == 0) {
      // Half-close: the client is done sending but still owed responses.
      c.read_open = false;
      break;
    }
    c.rbuf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = c.rbuf.find('\n')) != std::string::npos) {
      std::string line = c.rbuf.substr(0, nl);
      c.rbuf.erase(0, nl + 1);
      if (!line.empty()) handle_request(slot, std::move(line));
      if (!clients_[slot]->in_use || clients_[slot]->gen != c.gen) return;
    }
    if (c.rbuf.size() > opts_.max_line_bytes) {
      close_client(slot);  // unbounded line: protocol abuse
      return;
    }
  }
  if (!c.read_open && c.outstanding == 0 && c.wbuf.empty()) close_client(slot);
}

void Supervisor::handle_request(std::size_t slot, std::string line) {
  ClientState& c = *clients_[slot];
  requests_->inc();
  summary_.requests++;
  Pending p;
  p.client_slot = slot;
  p.client_gen = c.gen;
  p.seq = c.next_seq++;
  c.outstanding++;
  p.arrival = Clock::now();

  serve::Request req = serve::Request::parse(line, opts_.deadline_ms);
  p.deadline_ms = req.deadline_ms;
  p.id = req.id;
  const bool observing = access_log_ != nullptr || opts_.tracer != nullptr;
  if (observing && req.trace_id.empty()) {
    req.trace_id = generate_trace_id();
    if (req.valid()) {
      // Inject the generated id into the forwarded line so the worker
      // echoes it — exactly the envelope single-process serve emits with
      // telemetry on. The object is non-empty (it has "kernel"), so a
      // trailing comma is always correct.
      const auto brace = line.find('{');
      line.insert(brace + 1, "\"trace_id\":\"" + req.trace_id + "\",");
    }
  }
  p.trace_id = req.trace_id;

  if (!req.valid()) {
    invalid_->inc();
    complete(p,
             serve::render_error(req.id, req.error_kind, req.error_message,
                                 req.trace_id),
             -1);
    return;
  }
  p.kernel = serve::kernel_name(req.query.kernel);

  const std::uint64_t hash = shard_hash(req.query);
  std::vector<bool> alive(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i)
    alive[i] = workers_[i]->alive;
  const std::size_t target = route_alive(hash, alive);
  if (target == workers_.size()) {
    // No live worker right now (mass restart in progress): park the
    // request, bounded by the same queue-depth budget.
    if (hold_.size() >= opts_.queue_depth) {
      shed_overload_->inc();
      complete(p,
               serve::render_error(
                   p.id, serve::wire::kOverload,
                   "fleet hold queue full (depth " +
                       std::to_string(opts_.queue_depth) +
                       ") while workers restart; retry",
                   p.trace_id),
               -1);
      return;
    }
    hold_.push_back(Held{std::move(line), std::move(p), hash});
    return;
  }
  WorkerState& w = *workers_[target];
  if (w.pending.size() >= opts_.queue_depth) {
    shed_overload_->inc();
    complete(p,
             serve::render_error(
                 p.id, serve::wire::kOverload,
                 "worker queue full (depth " +
                     std::to_string(opts_.queue_depth) +
                     "); request shed, retry with backoff",
                 p.trace_id),
             static_cast<int>(target));
    return;
  }
  if (target != route(hash, workers_.size())) rerouted_->inc();
  forward(target, std::move(line), std::move(p));
}

void Supervisor::forward(std::size_t worker, std::string line,
                         Pending pending) {
  WorkerState& w = *workers_[worker];
  pending.queue_us = micros_since(pending.arrival);
  pending.forwarded_at = Clock::now();
  if (opts_.tracer != nullptr) {
    const std::uint64_t tid = obs::parse_hex_id(pending.trace_id) != 0
                                  ? obs::parse_hex_id(pending.trace_id)
                                  : obs::fnv1a64(pending.trace_id);
    pending.span = obs::Span(opts_.tracer, "fleet.request", tid);
    pending.span.label("kernel", pending.kernel);
    pending.span.label("worker", std::to_string(worker));
  }
  w.wbuf += line;
  w.wbuf += '\n';
  w.forwarded++;
  forwarded_->inc();
  w.pending.push_back(std::move(pending));
  std::size_t inflight = 0;
  for (const auto& ws : workers_) inflight += ws->pending.size();
  inflight_->record_max(static_cast<double>(inflight));
  // Opportunistic write; the poll loop finishes whatever does not fit.
  if (write_some(w.fd, &w.wbuf) == IoResult::kClosed) {
    std::ostream* err = err_sink_;
    on_worker_dead(worker, err != nullptr ? *err : std::cerr);
  }
}

void Supervisor::drain_hold_queue() {
  while (!hold_.empty()) {
    Held held = std::move(hold_.front());
    hold_.pop_front();
    Pending& p = held.pending;
    if (p.deadline_ms > 0 &&
        Clock::now() > p.arrival + std::chrono::milliseconds(p.deadline_ms)) {
      shed_deadline_->inc();
      complete(p,
               serve::render_error(p.id, serve::wire::kDeadline,
                                   "deadline of " +
                                       std::to_string(p.deadline_ms) +
                                       " ms expired while held by the fleet "
                                       "supervisor",
                                   p.trace_id),
               -1);
      continue;
    }
    std::vector<bool> alive(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i)
      alive[i] = workers_[i]->alive;
    const std::size_t target = route_alive(held.hash, alive);
    if (target == workers_.size()) {
      hold_.push_front(std::move(held));  // still nobody; keep waiting
      return;
    }
    WorkerState& w = *workers_[target];
    if (w.pending.size() >= opts_.queue_depth) {
      shed_overload_->inc();
      complete(p,
               serve::render_error(p.id, serve::wire::kOverload,
                                   "worker queue full (depth " +
                                       std::to_string(opts_.queue_depth) +
                                       "); request shed, retry with backoff",
                                   p.trace_id),
               static_cast<int>(target));
      continue;
    }
    if (target != route(held.hash, workers_.size())) rerouted_->inc();
    forward(target, std::move(held.line), std::move(p));
  }
}

void Supervisor::read_worker(std::size_t index, std::ostream& err) {
  WorkerState& w = *workers_[index];
  char chunk[65536];
  while (w.alive) {
    const ssize_t n = ::read(w.fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      on_worker_dead(index, err);
      return;
    }
    if (n == 0) {
      on_worker_dead(index, err);
      return;
    }
    w.rbuf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = w.rbuf.find('\n')) != std::string::npos) {
      std::string line = w.rbuf.substr(0, nl);
      w.rbuf.erase(0, nl + 1);
      if (line.empty()) continue;
      if (w.pending.empty()) {
        // A response with no matching request would desequence every
        // client; treat as a worker protocol fault.
        err << "fleet: worker " << index
            << " sent an unsolicited response; restarting\n";
        on_worker_dead(index, err);
        return;
      }
      Pending p = std::move(w.pending.front());
      w.pending.pop_front();
      complete(p, std::move(line), static_cast<int>(index));
    }
  }
}

void Supervisor::complete(Pending& pending, std::string response_line,
                          int worker) {
  const double total_us = micros_since(pending.arrival);
  {
    const std::lock_guard<std::mutex> lock(hist_mu_);
    request_us_->record(total_us);
  }
  const bool ok = response_line.find("\"ok\":true") != std::string::npos;
  (ok ? ok_ : errors_)->inc();
  summary_.responses++;

  if (pending.span.active()) {
    pending.span.label("ok", ok ? "true" : "false");
    pending.span.end();
  }
  if (access_log_ != nullptr) {
    serve::AccessEntry entry;
    entry.trace_id = pending.trace_id;
    entry.id = pending.id;
    entry.kernel = pending.kernel;
    entry.ok = ok;
    if (!ok) entry.error_kind = extract_string_field(response_line, "kind");
    entry.cached =
        response_line.find("\"cached\":true") != std::string::npos;
    entry.shard = worker;  ///< worker index on the supervisor hop
    entry.queue_us = pending.queue_us;
    entry.eval_us = worker >= 0 && pending.forwarded_at != Clock::time_point{}
                        ? micros_since(pending.forwarded_at)
                        : 0.0;
    entry.deadline_ms = pending.deadline_ms;
    access_log_->write({entry});
  }

  if (pending.client_slot >= clients_.size()) return;
  ClientState& c = *clients_[pending.client_slot];
  if (!c.in_use || c.gen != pending.client_gen) return;  // client went away
  c.done.emplace(pending.seq, std::move(response_line));
  flush_client(c);
  write_client(pending.client_slot);
}

void Supervisor::flush_client(ClientState& client) {
  auto it = client.done.begin();
  while (it != client.done.end() && it->first == client.flush_seq) {
    client.wbuf += it->second;
    client.wbuf += '\n';
    it = client.done.erase(it);
    client.flush_seq++;
    client.outstanding--;
  }
}

void Supervisor::write_client(std::size_t slot) {
  ClientState& c = *clients_[slot];
  if (c.fd < 0 || c.wbuf.empty()) {
    if (c.in_use && !c.read_open && c.outstanding == 0 && c.wbuf.empty())
      close_client(slot);
    return;
  }
  if (write_some(c.fd, &c.wbuf) == IoResult::kClosed) {
    close_client(slot);
    return;
  }
  if (!c.read_open && c.outstanding == 0 && c.wbuf.empty())
    close_client(slot);
}

FleetSummary Supervisor::run(const par::CancelToken* cancel,
                             std::ostream& err) {
  err_sink_ = &err;
  Clock::time_point drain_deadline{};
  while (true) {
    if (!draining_ && cancel != nullptr && cancel->requested()) {
      draining_ = true;
      summary_.interrupted = true;
      drain_deadline = Clock::now() + kDrainBudget;
      err << "fleet: shutdown requested; draining workers\n";
    }
    if (draining_) {
      bool busy = false;
      for (const auto& w : workers_)
        if (!w->pending.empty()) busy = true;
      for (const auto& c : clients_)
        if (c->in_use && !c->wbuf.empty()) busy = true;
      if (!busy || Clock::now() >= drain_deadline) break;
    }

    reap_children(err);
    for (std::size_t i = 0; i < workers_.size(); ++i)
      if (workers_[i]->connecting) try_connect_worker(i, err);

    // Assemble the poll set: listener, clients, workers.
    std::vector<struct pollfd> pfds;
    std::vector<std::pair<char, std::size_t>> tags;
    if (!draining_) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      tags.emplace_back('L', 0);
    }
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      ClientState& c = *clients_[i];
      if (!c.in_use || c.fd < 0) continue;
      short events = 0;
      if (c.read_open && !draining_) events |= POLLIN;
      if (!c.wbuf.empty()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({c.fd, events, 0});
      tags.emplace_back('C', i);
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerState& w = *workers_[i];
      if (!w.alive || w.fd < 0) continue;
      short events = POLLIN;
      if (!w.wbuf.empty()) events |= POLLOUT;
      pfds.push_back({w.fd, events, 0});
      tags.emplace_back('W', i);
    }

    const int ready =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ksw::io_error(std::string("fleet: poll failed: ") +
                          std::strerror(errno));
    }
    if (ready == 0) continue;

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const short re = pfds[i].revents;
      if (re == 0) continue;
      const auto [kind, index] = tags[i];
      if (kind == 'L') {
        accept_clients();
      } else if (kind == 'C') {
        ClientState& c = *clients_[index];
        const std::uint64_t gen = c.gen;
        if ((re & POLLOUT) != 0) write_client(index);
        if (!c.in_use || c.gen != gen) continue;
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 && c.read_open)
          read_client(index);
      } else {
        WorkerState& w = *workers_[index];
        if ((re & POLLOUT) != 0 && w.alive && !w.wbuf.empty()) {
          if (write_some(w.fd, &w.wbuf) == IoResult::kClosed) {
            on_worker_dead(index, err);
            continue;
          }
        }
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 && w.alive)
          read_worker(index, err);
      }
    }
  }

  // Drain epilogue: whatever the workers did not answer inside the
  // budget is answered here, in-band, before the connections close.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& w = *workers_[i];
    for (auto& p : w.pending)
      complete(p,
               serve::render_error(p.id, serve::wire::kInterrupted,
                                   "fleet is shutting down", p.trace_id),
               static_cast<int>(i));
    w.pending.clear();
  }
  for (auto& held : hold_)
    complete(held.pending,
             serve::render_error(held.pending.id, serve::wire::kInterrupted,
                                 "fleet is shutting down",
                                 held.pending.trace_id),
             -1);
  hold_.clear();
  // Give clients a short, bounded chance to take their final bytes.
  const auto flush_deadline = Clock::now() + std::chrono::milliseconds(500);
  while (Clock::now() < flush_deadline) {
    bool dirty = false;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i]->in_use && !clients_[i]->wbuf.empty()) {
        write_client(i);
        if (clients_[i]->in_use && !clients_[i]->wbuf.empty()) dirty = true;
      }
    }
    if (!dirty) break;
    struct pollfd dummy {};
    ::poll(&dummy, 0, 10);
  }
  for (std::size_t i = 0; i < clients_.size(); ++i)
    if (clients_[i]->in_use) close_client(i);

  shutdown_workers(err);
  err_sink_ = nullptr;
  return summary_;
}

void Supervisor::shutdown_workers(std::ostream& err) {
  for (auto& w : workers_) {
    if (w->fd >= 0) {
      ::close(w->fd);
      w->fd = -1;
    }
    w->alive = false;
    if (w->pid > 0) ::kill(w->pid, SIGTERM);
  }
  const auto deadline = Clock::now() + kReapBudget;
  while (Clock::now() < deadline) {
    bool left = false;
    for (auto& w : workers_) {
      if (w->pid <= 0) continue;
      const pid_t r = ::waitpid(w->pid, nullptr, WNOHANG);
      if (r == w->pid || (r < 0 && errno == ECHILD))
        w->pid = -1;
      else
        left = true;
    }
    if (!left) break;
    struct pollfd dummy {};
    ::poll(&dummy, 0, 20);
  }
  for (auto& w : workers_) {
    if (w->pid > 0) {
      err << "fleet: worker pid " << w->pid
          << " ignored SIGTERM; killing\n";
      ::kill(w->pid, SIGKILL);
      ::waitpid(w->pid, nullptr, 0);
      w->pid = -1;
    }
    if (!w->socket_path.empty()) ::unlink(w->socket_path.c_str());
  }
  std::fill(pids_.begin(), pids_.end(), -1);
  err << "fleet: all workers stopped\n";
}

io::Json Supervisor::report(bool include_wall) const {
  io::Json doc = io::Json::object();
  doc.set("schema", "ksw.obs.report/v1");
  doc.set("command", "fleet");

  io::Json config = io::Json::object();
  config.set("workers", static_cast<std::int64_t>(opts_.workers));
  config.set("host", opts_.host);
  config.set("port", static_cast<std::int64_t>(port_));
  config.set("queue_depth", static_cast<std::int64_t>(opts_.queue_depth));
  config.set("deadline_ms", opts_.deadline_ms);
  config.set("access_log", !opts_.access_log.empty());
  doc.set("config", std::move(config));

  {
    const std::lock_guard<std::mutex> lock(hist_mu_);
    doc.set("metrics",
            obs::registry_to_json(registry_, {.include_wall = include_wall}));
    io::Json latency = io::Json::object();
    latency.set("p50_us", request_us_->quantile(0.5));
    latency.set("p99_us", request_us_->quantile(0.99));
    latency.set("p999_us", request_us_->quantile(0.999));
    latency.set("mean_us", request_us_->mean());
    doc.set("latency", std::move(latency));
  }
  return doc;
}

}  // namespace ksw::fleet
