// Deterministic fault injection for resilience testing.
//
// Production code is instrumented with *named injection sites* — fixed
// points where a failure can be forced: a replicate task throwing, a file
// open/write failing, an artificially slow grid point, a near-singular
// series division. Sites are inert (a single relaxed atomic load) until
// *armed* via the KSW_FAULTS environment variable, a --fault-plan JSON
// file (fault/plan.hpp), or fault::arm() in tests. Each armed site fires
// exactly once, on its configured visit, so every degradation path is
// exercisable deterministically.
//
// The whole framework compiles out when KSW_FAULTS_ENABLED is defined to
// 0 (CMake option KSW_FAULTS_ENABLED): call sites test fault::kEnabled,
// which lets the compiler delete the checks, and arming becomes a hard
// error so a forgotten KSW_FAULTS cannot silently do nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

#ifndef KSW_FAULTS_ENABLED
#define KSW_FAULTS_ENABLED 1
#endif

namespace ksw::fault {

inline constexpr bool kEnabled = KSW_FAULTS_ENABLED != 0;

/// Thrown by sites that simulate an unclassified crash (replicate.throw).
/// Deliberately NOT a ksw::Error: it models a bug-like failure, so it
/// exercises the unclassified-exception handling paths.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& message)
      : std::runtime_error(message) {}
};

/// When an armed site fires and what it does then.
struct SiteSpec {
  unsigned fire_at = 1;        ///< fire on the Nth visit (1-based)
  std::int64_t delay_ms = 0;   ///< sleep duration for delay sites
};

/// The registered site names, in documentation order:
///   replicate.throw      a sweep replicate task throws
///   replicate.slow       one sweep replicate stalls for delay_ms (kill/
///                        resume tests interrupt it mid-simulation)
///   point.slow           a grid point stalls for delay_ms
///   io.open              io::atomic_write_file fails to open the temp file
///   io.write             io::atomic_write_file fails mid-write
///   series.near-singular pgf::Series::divide hits an ill-conditioned
///                        denominator
[[nodiscard]] const std::vector<std::string>& known_sites();
[[nodiscard]] bool is_known_site(const std::string& site);

/// Arm one site. Throws ksw::Error(kUsage) for unknown sites or when the
/// framework is compiled out.
void arm(const std::string& site, SiteSpec spec = {});

/// Arm from a compact spec string: comma-separated `site[@N][:MS]`
/// entries (`@N` = fire on the Nth visit, `:MS` = delay in milliseconds
/// for delay sites), e.g. "replicate.throw@3,point.slow:250".
void arm_from_spec(const std::string& spec);

/// Arm from the KSW_FAULTS environment variable (same grammar as
/// arm_from_spec). No-op when unset or empty.
void arm_from_env();

/// Disarm every site and reset visit counters (tests).
void disarm_all();

/// True when at least one site is armed and has not fired yet.
[[nodiscard]] bool any_armed();

/// Record a visit to `site`; true exactly when the armed spec says this
/// visit fires. Near-zero cost while nothing is armed.
[[nodiscard]] bool should_fire(const char* site);

/// should_fire + throw InjectedFault (for crash-simulation sites).
void maybe_fail(const char* site);

/// should_fire + sleep for the armed delay (for slow-site simulation).
void maybe_delay(const char* site);

}  // namespace ksw::fault
