#include "fault/injection.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace ksw::fault {

namespace {

struct ArmedSite {
  SiteSpec spec;
  unsigned visits = 0;
  bool fired = false;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, ArmedSite> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Fast-path guard: number of armed-but-unfired sites. Injection checks in
// hot paths (Series::divide, replicate bodies) reduce to one relaxed load
// while nothing is armed.
std::atomic<int> g_live_sites{0};

[[noreturn]] void fail_spec(const std::string& what) {
  throw usage_error("fault spec: " + what);
}

unsigned parse_count(const std::string& text, const std::string& what) {
  std::size_t pos = 0;
  unsigned long v = 0;
  try {
    v = std::stoul(text, &pos);
  } catch (const std::exception&) {
    fail_spec(what + ": not a number: \"" + text + "\"");
  }
  if (pos != text.size() || v == 0 || v > 1'000'000)
    fail_spec(what + ": expected 1..1000000, got \"" + text + "\"");
  return static_cast<unsigned>(v);
}

}  // namespace

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "replicate.throw", "replicate.slow", "point.slow", "io.open",
      "io.write", "series.near-singular"};
  return sites;
}

bool is_known_site(const std::string& site) {
  for (const std::string& s : known_sites())
    if (s == site) return true;
  return false;
}

void arm(const std::string& site, SiteSpec spec) {
  if constexpr (!kEnabled) {
    throw usage_error("fault injection compiled out (KSW_FAULTS_ENABLED=0); "
                      "cannot arm site \"" + site + "\"");
  }
  if (!is_known_site(site)) {
    std::string all;
    for (const std::string& s : known_sites())
      all += (all.empty() ? "" : ", ") + s;
    throw usage_error("unknown fault site \"" + site + "\" (known: " + all +
                      ")");
  }
  if (spec.fire_at == 0) fail_spec("fire_at must be >= 1");
  if (spec.delay_ms < 0) fail_spec("delay_ms must be >= 0");
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  const auto it = reg.sites.find(site);
  if (it != reg.sites.end()) {
    if (!it->second.fired) g_live_sites.fetch_sub(1, std::memory_order_relaxed);
    reg.sites.erase(it);
  }
  reg.sites.emplace(site, ArmedSite{spec});
  g_live_sites.fetch_add(1, std::memory_order_relaxed);
}

void arm_from_spec(const std::string& spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    SiteSpec site_spec;
    const std::size_t colon = entry.find(':');
    if (colon != std::string::npos) {
      site_spec.delay_ms = static_cast<std::int64_t>(
          parse_count(entry.substr(colon + 1), "delay"));
      entry = entry.substr(0, colon);
    }
    const std::size_t at = entry.find('@');
    if (at != std::string::npos) {
      site_spec.fire_at = parse_count(entry.substr(at + 1), "fire_at");
      entry = entry.substr(0, at);
    }
    arm(entry, site_spec);
  }
}

void arm_from_env() {
  const char* env = std::getenv("KSW_FAULTS");
  if (env == nullptr || *env == '\0') return;
  arm_from_spec(env);
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  reg.sites.clear();
  g_live_sites.store(0, std::memory_order_relaxed);
}

bool any_armed() {
  return g_live_sites.load(std::memory_order_relaxed) > 0;
}

bool should_fire(const char* site) {
  if constexpr (!kEnabled) {
    (void)site;
    return false;
  }
  if (g_live_sites.load(std::memory_order_relaxed) == 0) return false;
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end() || it->second.fired) return false;
  ++it->second.visits;
  if (it->second.visits != it->second.spec.fire_at) return false;
  it->second.fired = true;
  g_live_sites.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void maybe_fail(const char* site) {
  if (should_fire(site))
    throw InjectedFault("injected fault at site " + std::string(site));
}

void maybe_delay(const char* site) {
  if constexpr (!kEnabled) {
    (void)site;
    return;
  }
  std::int64_t delay_ms = 0;
  {
    if (g_live_sites.load(std::memory_order_relaxed) == 0) return;
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end() || it->second.fired) return;
    ++it->second.visits;
    if (it->second.visits != it->second.spec.fire_at) return;
    it->second.fired = true;
    g_live_sites.fetch_sub(1, std::memory_order_relaxed);
    delay_ms = it->second.spec.delay_ms;
  }
  if (delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

}  // namespace ksw::fault
