#include "fault/plan.hpp"

#include <fstream>
#include <sstream>

#include "fault/injection.hpp"
#include "support/error.hpp"

namespace ksw::fault {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw usage_error("fault plan: " + what);
}

}  // namespace

void arm_from_plan(const io::Json& doc) {
  if (!doc.is_object()) fail("document must be a JSON object");
  for (const auto& key : doc.keys())
    if (key != "schema" && key != "sites")
      fail("unknown key \"" + key + "\"");
  if (!doc.contains("schema") ||
      doc.at("schema").as_string() != "ksw.faults/v1")
    fail("missing or unsupported \"schema\" (want ksw.faults/v1)");
  if (!doc.contains("sites")) fail("missing \"sites\"");
  const io::Json& sites = doc.at("sites");
  if (!sites.is_object() || sites.size() == 0)
    fail("\"sites\" must be a non-empty object");

  for (const auto& site : sites.keys()) {
    const io::Json& entry = sites.at(site);
    if (!entry.is_object()) fail("site \"" + site + "\" must be an object");
    SiteSpec spec;
    for (const auto& key : entry.keys()) {
      if (key == "fire_at") {
        const std::int64_t v = entry.at(key).as_int();
        if (v < 1) fail("site \"" + site + "\": fire_at must be >= 1");
        spec.fire_at = static_cast<unsigned>(v);
      } else if (key == "delay_ms") {
        const std::int64_t v = entry.at(key).as_int();
        if (v < 0) fail("site \"" + site + "\": delay_ms must be >= 0");
        spec.delay_ms = v;
      } else {
        fail("site \"" + site + "\": unknown key \"" + key + "\"");
      }
    }
    arm(site, spec);
  }
}

void load_plan(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw io_error("fault plan: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  io::Json doc;
  try {
    doc = io::Json::parse(buffer.str());
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
  }
  arm_from_plan(doc);
}

}  // namespace ksw::fault
