// JSON fault-plan loader: the file format behind `kswsim ... --fault-plan`.
//
// A plan names the sites to arm and when they fire:
//
//   {
//     "schema": "ksw.faults/v1",
//     "sites": {
//       "replicate.throw": { "fire_at": 3 },
//       "point.slow": { "delay_ms": 250 }
//     }
//   }
//
// Parsing is strict (unknown keys and sites are hard errors) and arming
// goes through fault::arm, so a plan fails loudly when the framework is
// compiled out.
#pragma once

#include <string>

#include "io/json.hpp"

namespace ksw::fault {

/// Arm every site of an already-parsed plan document.
/// Throws ksw::Error(kUsage) on schema violations.
void arm_from_plan(const io::Json& doc);

/// Read + parse + arm a plan file. Throws ksw::Error(kIo) when the file
/// cannot be read, kUsage on malformed plans.
void load_plan(const std::string& path);

}  // namespace ksw::fault
