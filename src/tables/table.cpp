#include "tables/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ksw::tables {

std::string format_number(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

Table& Table::begin_row(std::string label) {
  rows_.emplace_back();
  rows_.back().push_back(std::move(label));
  return *this;
}

Table& Table::add_cell(std::string text) {
  if (rows_.empty()) rows_.emplace_back();  // cell becomes the row label
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::add_number(double value, int precision) {
  return add_cell(format_number(value, precision));
}

Table& Table::add_blank() { return add_cell(""); }

void Table::print(std::ostream& os) const {
  const std::size_t cols = headers_.size();
  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < std::min(cols, row.size()); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < cols; ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };

  os << title_ << '\n';
  rule();
  os << '|';
  for (std::size_t c = 0; c < cols; ++c) {
    os << ' ' << std::setw(static_cast<int>(width[c]))
       << (c == 0 ? std::left : std::right) << headers_[c] << " |";
    os << std::right;
  }
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << std::setw(static_cast<int>(width[c]))
         << (c == 0 ? std::left : std::right) << cell << " |";
      os << std::right;
    }
    os << '\n';
  }
  rule();
}

}  // namespace ksw::tables
