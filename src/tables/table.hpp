// ASCII table builder used by the bench harnesses to print paper-style
// tables (SIMULATION / ANALYSIS / ESTIMATE rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ksw::tables {

/// A simple right-aligned ASCII table with a title and column headers.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Start a new row labelled `label`; fill it with add_cell / add_number.
  Table& begin_row(std::string label);
  Table& add_cell(std::string text);
  /// Formats with the given precision (fixed notation).
  Table& add_number(double value, int precision = 4);
  /// Shorthand for an empty cell.
  Table& add_blank();

  /// Render to a stream with box-drawing rules.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared by benches).
[[nodiscard]] std::string format_number(double value, int precision = 4);

}  // namespace ksw::tables
