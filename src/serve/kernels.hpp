// Kernel evaluation for the query service: a canonical Query in, a JSON
// result object out.
//
// Every kernel is a pure function of the parameter tuple — no randomness,
// no wall clock — which is what makes the evaluation cache sound: the
// serialized result bytes are the content the canonical request addresses.
// Failures propagate as exceptions and are classified by the service into
// in-band error kinds (ksw::Error(kNumeric) -> "numeric",
// std::invalid_argument -> "usage", anything else -> "internal").
#pragma once

#include "io/json.hpp"
#include "serve/query.hpp"

namespace ksw::serve {

/// Evaluate one query against the analytic core. Throws on model
/// rejection (saturated load, ill-conditioned series, bad spec).
[[nodiscard]] io::Json evaluate(const Query& query);

/// evaluate() serialized to the compact bytes the cache stores and the
/// response envelope splices in verbatim.
[[nodiscard]] std::string evaluate_bytes(const Query& query);

}  // namespace ksw::serve
