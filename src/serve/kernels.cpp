#include "serve/kernels.hpp"

#include <memory>
#include <utility>

#include "core/closed_forms.hpp"
#include "core/first_stage.hpp"
#include "core/total_delay.hpp"
#include "sim/network.hpp"
#include "sim/replicate.hpp"
#include "sim/service_spec.hpp"
#include "support/error.hpp"
#include "tables/table.hpp"

namespace ksw::serve {

namespace {

core::QueueSpec first_stage_queue(const Query& q) {
  const sim::ServiceSpec service = sim::ServiceSpec::parse(q.service);
  std::shared_ptr<const core::ArrivalModel> arrivals;
  if (q.q > 0.0) {
    // k == s was enforced at parse time.
    arrivals = core::make_nonuniform_arrivals(q.k, q.p, q.q, q.bulk);
  } else {
    arrivals = core::make_bulk_arrivals(q.k, q.s, q.p, q.bulk);
  }
  return core::QueueSpec{std::move(arrivals), service.to_model()};
}

core::NetworkTrafficSpec traffic_spec(const Query& q) {
  core::NetworkTrafficSpec spec;
  spec.k = q.k;
  spec.p = q.p;
  spec.bulk = q.bulk;
  spec.q = q.q;
  spec.service = sim::ServiceSpec::parse(q.service).to_model();
  return spec;
}

io::Json eval_first_stage(const Query& q) {
  const core::FirstStage first(first_stage_queue(q));
  const auto m = first.moments();
  io::Json result = io::Json::object();
  result.set("lambda", first.lambda());
  result.set("mean_service", first.mean_service());
  result.set("rho", first.rho());
  result.set("mean_wait", m.mean);
  result.set("var_wait", m.variance);
  result.set("factorial2", m.factorial2);
  result.set("factorial3", m.factorial3);
  result.set("skewness", m.skewness());
  result.set("mean_delay", first.mean_delay());
  result.set("var_delay", first.variance_delay());
  if (q.distribution > 0) {
    io::Json arr = io::Json::array();
    for (double pj : first.distribution(q.distribution)) arr.push_back(pj);
    result.set("distribution", std::move(arr));
  }
  return result;
}

io::Json eval_later_stages(const Query& q) {
  const core::LaterStages ls(traffic_spec(q));
  io::Json result = io::Json::object();
  result.set("rho", ls.spec().rho());
  result.set("w1", ls.mean_first_stage());
  result.set("v1", ls.variance_first_stage());
  result.set("mean_limit", ls.mean_limit());
  result.set("variance_limit", ls.variance_limit());
  if (q.stage > 0) {
    result.set("stage", static_cast<std::int64_t>(q.stage));
    result.set("mean_stage", ls.mean_at_stage(q.stage));
    result.set("variance_stage", ls.variance_at_stage(q.stage));
  }
  return result;
}

io::Json eval_closed_form(const Query& q) {
  namespace closed = core::closed;
  io::Json result = io::Json::object();
  result.set("family", q.family);
  if (q.family == "uniform") {
    result.set("mean", closed::eq6_mean(q.k, q.s, q.p));
    result.set("variance", closed::eq7_variance(q.k, q.s, q.p));
  } else if (q.family == "bulk") {
    result.set("mean", closed::bulk_mean(q.k, q.s, q.p, q.b));
    result.set("variance", closed::bulk_variance(q.k, q.s, q.p, q.b));
  } else if (q.family == "nonuniform") {
    result.set("mean", closed::nonuniform_mean(q.k, q.p, q.q, q.b));
    // The paper prints the favorite-output variance for b = 1 only.
    if (q.b == 1)
      result.set("variance", closed::nonuniform_variance(q.k, q.p, q.q));
  } else if (q.family == "geometric") {
    result.set("mean", closed::geometric_mean(q.k, q.s, q.p, q.mu));
    result.set("variance", closed::geometric_variance(q.k, q.s, q.p, q.mu));
  } else {  // deterministic (family vocabulary was enforced at parse time)
    result.set("mean", closed::eq8_mean(q.k, q.s, q.p, q.m));
    result.set("variance", closed::eq9_variance(q.k, q.s, q.p, q.m));
  }
  return result;
}

io::Json eval_total_delay(const Query& q) {
  const core::LaterStages ls(traffic_spec(q));
  const core::TotalDelay td(ls, q.stages);
  const auto gamma = td.gamma_approximation();
  io::Json result = io::Json::object();
  result.set("stages", static_cast<std::int64_t>(q.stages));
  result.set("rho", ls.spec().rho());
  result.set("mean_total", td.mean_total());
  result.set("var_total", td.variance_total());
  result.set("var_independent", td.variance_total(false));
  result.set("mean_total_delay", td.mean_total_delay());
  io::Json g = io::Json::object();
  g.set("shape", gamma.shape());
  g.set("scale", gamma.scale());
  result.set("gamma", std::move(g));
  io::Json qs = io::Json::object();
  for (double prob : q.quantiles)
    qs.set(tables::format_number(prob, 3), gamma.quantile(prob));
  result.set("quantiles", std::move(qs));
  return result;
}

/// NetworkConfig for one simulation kernel run. depth == 0 is the
/// infinite-queue baseline (buffer_sweep's convergence reference); the
/// flow scheme only applies to finite depths.
sim::NetworkConfig sim_config(const Query& q, unsigned depth) {
  sim::NetworkConfig cfg;
  cfg.k = q.k;
  cfg.stages = q.stages;
  cfg.p = q.p;
  cfg.bulk = q.bulk;
  cfg.q = q.q;
  cfg.service = sim::ServiceSpec::parse(q.service);
  cfg.warmup_cycles = q.warmup;
  cfg.measure_cycles = q.cycles;
  cfg.buffer_capacity = depth;
  if (depth > 0) {
    cfg.flow = sim::parse_flow_control(q.flow);
    if (cfg.flow == sim::FlowControl::kCredit)
      cfg.credit_latency = q.credit_latency;
  }
  return cfg;
}

/// One depth point: replicate sequentially (the service evaluates one
/// request at a time) with the canonical per-replicate seeds, merged in
/// index order — the same bytes replicate_network would produce.
///
/// Every emitted field derives from NetworkResults' packet counters and
/// stage accumulators, never from the obs registry, so responses are
/// identical whether or not the binary was built with KSW_OBS_ENABLED.
io::Json sim_point(const Query& q, unsigned depth) {
  sim::NetworkConfig cfg = sim_config(q, depth);
  sim::NetworkResults merged;
  for (unsigned i = 0; i < q.replicates; ++i) {
    cfg.seed = sim::replicate_seed(q.seed, i);
    sim::NetworkResults one = sim::run_network(cfg);
    if (i == 0)
      merged = std::move(one);
    else
      merged.merge(one);
  }

  double ports = 1.0;
  for (unsigned i = 0; i < q.stages; ++i) ports *= q.k;
  const double offered = static_cast<double>(merged.packets_injected +
                                             merged.packets_dropped);
  const double accept_ratio =
      offered > 0.0
          ? static_cast<double>(merged.packets_injected) / offered
          : 1.0;
  const double measured_slots =
      ports * static_cast<double>(q.cycles) *
      static_cast<double>(q.replicates);

  io::Json result = io::Json::object();
  result.set("depth", static_cast<std::int64_t>(depth));
  result.set("packets_injected",
             static_cast<std::int64_t>(merged.packets_injected));
  result.set("packets_delivered",
             static_cast<std::int64_t>(merged.packets_delivered));
  result.set("packets_dropped",
             static_cast<std::int64_t>(merged.packets_dropped));
  result.set("accept_ratio", accept_ratio);
  result.set("drop_rate", 1.0 - accept_ratio);
  result.set("throughput",
             static_cast<double>(merged.packets_delivered) / measured_slots);
  result.set("mean_wait_first", merged.stage_wait.front().mean());
  result.set("mean_wait_last", merged.stage_wait.back().mean());
  double total = 0.0;
  for (const auto& acc : merged.stage_wait) total += acc.mean();
  result.set("mean_wait_total", total);
  return result;
}

/// The simulated tuple echoed once per response, so a result is
/// self-describing without the request line.
io::Json sim_tuple(const Query& q) {
  io::Json tuple = io::Json::object();
  tuple.set("k", static_cast<std::int64_t>(q.k));
  tuple.set("stages", static_cast<std::int64_t>(q.stages));
  double ports = 1.0;
  for (unsigned i = 0; i < q.stages; ++i) ports *= q.k;
  tuple.set("ports", ports);
  tuple.set("rho", sim_config(q, 0).rho());
  tuple.set("flow", q.flow);
  if (q.flow == "credit")
    tuple.set("credit_latency", static_cast<std::int64_t>(q.credit_latency));
  tuple.set("cycles", static_cast<std::int64_t>(q.cycles));
  tuple.set("warmup", static_cast<std::int64_t>(q.warmup));
  tuple.set("replicates", static_cast<std::int64_t>(q.replicates));
  tuple.set("seed", static_cast<std::int64_t>(q.seed));
  return tuple;
}

io::Json eval_finite_buffer(const Query& q) {
  io::Json result = sim_tuple(q);
  const io::Json point = sim_point(q, q.depth);
  for (const auto& key : point.keys()) result.set(key, point.at(key));
  return result;
}

io::Json eval_buffer_sweep(const Query& q) {
  io::Json result = sim_tuple(q);
  io::Json grid = io::Json::array();
  for (const unsigned depth : q.depths) grid.push_back(sim_point(q, depth));
  result.set("grid", std::move(grid));
  // Infinite-queue baseline: what the depth grid should converge to.
  io::Json inf = sim_point(q, 0);
  io::Json baseline = io::Json::object();
  baseline.set("mean_wait_first", inf.at("mean_wait_first"));
  baseline.set("mean_wait_last", inf.at("mean_wait_last"));
  baseline.set("mean_wait_total", inf.at("mean_wait_total"));
  baseline.set("throughput", inf.at("throughput"));
  result.set("infinite", std::move(baseline));
  return result;
}

}  // namespace

io::Json evaluate(const Query& query) {
  switch (query.kernel) {
    case Kernel::kFirstStage:
      return eval_first_stage(query);
    case Kernel::kLaterStages:
      return eval_later_stages(query);
    case Kernel::kClosedForm:
      return eval_closed_form(query);
    case Kernel::kTotalDelay:
      return eval_total_delay(query);
    case Kernel::kFiniteBuffer:
      return eval_finite_buffer(query);
    case Kernel::kBufferSweep:
      return eval_buffer_sweep(query);
  }
  throw ksw::usage_error("kernel: unknown");
}

std::string evaluate_bytes(const Query& query) {
  return evaluate(query).to_string();
}

}  // namespace ksw::serve
