// The long-lived analytic query service behind `kswsim serve`.
//
// The service reads ksw.query/v1 JSONL requests (stdin, an arbitrary
// stream, or a Unix socket), batches them, dispatches each batch across
// the par thread pool, and streams one JSONL response per request *in
// request order* — so correlation works with or without ids. Every
// kernel evaluation goes through the content-addressed EvalCache, so a
// repeated tuple returns bit-identical bytes without recomputation.
//
// Failure model (docs/ROBUSTNESS.md): a bad or rejected request never
// terminates the process — it answers in-band with error.kind. Only
// transport failures (kIo) and startup usage errors escape as
// ksw::Error. Cooperative cancellation (SIGINT/SIGTERM via the global
// CancelToken) stops reading, answers every already-read request
// (unstarted ones with error.kind "interrupted"), flushes, and returns
// with interrupted = true so the CLI can exit 130 after writing the
// metrics snapshot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include <memory>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "par/cancel.hpp"
#include "par/thread_pool.hpp"
#include "serve/access_log.hpp"
#include "serve/cache.hpp"
#include "serve/query.hpp"

namespace ksw::serve {

struct ServeOptions {
  std::size_t threads = 0;       ///< worker threads (0 = hardware)
  std::size_t batch = 64;        ///< max requests dispatched per batch
  std::uint64_t cache_mb = 64;   ///< evaluation-cache capacity (0 = off)
  std::int64_t deadline_ms = 0;  ///< default per-request deadline (0 = none)
  /// Request-level observability (docs/SERVING.md "Request telemetry"):
  /// a JSONL access-log path ("" = off) and an optional span sink (not
  /// owned). Either one turns on trace_id generation for requests that
  /// do not carry their own.
  std::string access_log;
  obs::Tracer* tracer = nullptr;
};

/// What a serve loop did; the CLI turns `interrupted` into exit 130
/// after flushing the metrics snapshot.
struct ServeSummary {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  bool interrupted = false;
};

class Service {
 public:
  explicit Service(ServeOptions opts);

  /// Serve one batch: parse errors, deadline misses, cache hits, and
  /// fresh evaluations all become response lines appended to `out`
  /// (newline-terminated, in input order).
  void serve_batch(std::vector<Request> batch, std::string* out,
                   const par::CancelToken* cancel);

  /// Stream loop: getline/batch/respond until EOF. Blocking reads are
  /// not cancellation points (used by tests and regular-file input);
  /// cancellation is observed between lines.
  ServeSummary run(std::istream& in, std::ostream& out,
                   const par::CancelToken* cancel = nullptr);

  /// File-descriptor loop with a poll-based line reader, so a blocked
  /// read observes cancellation within ~200 ms (stdin under a pipe, or
  /// one accepted socket connection). Responses are written to out_fd;
  /// EPIPE on a socket peer aborts just that connection.
  ServeSummary run_fd(int in_fd, int out_fd, const par::CancelToken* cancel);

  /// Unix-socket accept loop at `socket_path` (stale paths are
  /// unlinked, the socket is unlinked again on exit). Connections are
  /// served sequentially, each as a JSONL stream; the loop ends only on
  /// cancellation.
  ServeSummary run_listen(const std::string& socket_path,
                          const par::CancelToken* cancel);

  /// Structured snapshot: serve counters/timers, cache stats,
  /// p50/p99/p999 service time. Schema "ksw.obs.report/v1", command
  /// "serve". Thread-safe against a concurrent serving loop, so a
  /// metrics thread (--metrics-interval-ms) can snapshot a live
  /// service.
  [[nodiscard]] io::Json report(bool include_wall = true) const;

  [[nodiscard]] const EvalCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }

 private:
  /// Fresh trace id for a request that arrived without one (only called
  /// when request observability is on). Nondeterministic by design.
  [[nodiscard]] std::string generate_trace_id();

  ServeOptions opts_;
  obs::Registry registry_;
  EvalCache cache_;
  par::ThreadPool pool_;
  std::unique_ptr<AccessLog> access_log_;
  std::uint64_t trace_base_ = 0;           ///< per-process id entropy
  std::atomic<std::uint64_t> trace_seq_{0};

  obs::Counter* requests_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* ok_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* service_us_ = nullptr;
  obs::Histogram* queue_us_ = nullptr;
  obs::Timer* batch_wall_ = nullptr;
  /// Histograms are single-writer by design; this lock serializes the
  /// post-batch record loop against report() so a metrics thread can
  /// snapshot a live service without a data race.
  mutable std::mutex hist_mu_;
};

}  // namespace ksw::serve
