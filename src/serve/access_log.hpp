// Request-level access log for `kswsim serve` (--access-log=FILE): one
// JSONL row per request, written after its batch completes, in response
// order. Fields (docs/SERVING.md "Access log"):
//
//   {"trace_id":"<hex16>","id":...,"kernel":"first_stage"|null,
//    "ok":true,"cached":true,"shard":3,
//    "queue_us":12.500,"eval_us":340.250}
//
// plus "error_kind" on failed requests and "deadline_ms" when the
// request carried a deadline. queue_us is the wait between the request
// being read off the wire and its evaluation starting (dispatch/queue
// time); eval_us is the evaluation wall time — the same split the paper
// makes between waiting and service.
//
// The log is inherently wall-clock (opt-in, nondeterministic); response
// bytes are unaffected by whether it is enabled.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace ksw::serve {

/// One request's access-log row.
struct AccessEntry {
  std::string trace_id;    ///< hex16 (generated) or client-supplied
  io::Json id;             ///< client request id, null when absent
  std::string kernel;      ///< empty = request never parsed to a kernel
  bool ok = false;
  std::string error_kind;  ///< one of wire::*, empty on success
  bool cached = false;     ///< served from the evaluation cache
  int shard = -1;          ///< cache shard consulted, -1 = none
  double queue_us = 0.0;   ///< read-to-dispatch wait
  double eval_us = 0.0;    ///< evaluation wall time
  std::int64_t deadline_ms = 0;  ///< effective deadline, 0 = none
};

/// Render one row (no trailing newline). Pure, so tests can pin the
/// format without a filesystem.
[[nodiscard]] std::string render_access_entry(const AccessEntry& entry);

/// Append-only JSONL sink. write() is serialized internally so the
/// socket loop and a metrics thread can share a Service.
class AccessLog {
 public:
  /// Opens (truncates) `path`; throws ksw::Error(kIo) on failure.
  explicit AccessLog(const std::string& path);

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Append one row per entry and flush.
  void write(const std::vector<AccessEntry>& entries);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mu_;
};

}  // namespace ksw::serve
