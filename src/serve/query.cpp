#include "serve/query.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "sim/service_spec.hpp"
#include "support/error.hpp"

namespace ksw::serve {

namespace {

/// Hexfloat rendering: exact, locale-free, and canonical for a given bit
/// pattern — the property the cache key needs.
std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

[[noreturn]] void bad_request(const std::string& what) {
  throw ksw::usage_error(what);
}

unsigned read_unsigned(const io::Json& params, const std::string& key,
                       unsigned fallback, unsigned min_value = 0) {
  if (!params.contains(key)) return fallback;
  std::int64_t v = 0;
  try {
    v = params.at(key).as_int();
  } catch (const std::invalid_argument&) {
    bad_request("params." + key + ": expected an integer");
  }
  if (v < static_cast<std::int64_t>(min_value) || v > 0xffffffffll)
    bad_request("params." + key + ": out of range");
  return static_cast<unsigned>(v);
}

double read_double(const io::Json& params, const std::string& key,
                   double fallback) {
  if (!params.contains(key)) return fallback;
  try {
    return params.at(key).as_double();
  } catch (const std::invalid_argument&) {
    bad_request("params." + key + ": expected a number");
  }
}

std::string read_string(const io::Json& params, const std::string& key,
                        const std::string& fallback) {
  if (!params.contains(key)) return fallback;
  try {
    return params.at(key).as_string();
  } catch (const std::invalid_argument&) {
    bad_request("params." + key + ": expected a string");
  }
}

void check_probability(double v, const std::string& key) {
  if (!(v >= 0.0 && v <= 1.0))
    bad_request("params." + key + ": expected a probability in [0, 1]");
}

/// Reject any params key outside the kernel's vocabulary, so a typo'd
/// tuple never silently evaluates the defaults.
void check_keys(const io::Json& params,
                const std::set<std::string>& allowed) {
  for (const auto& key : params.keys())
    if (allowed.count(key) == 0)
      bad_request("params." + key + ": unknown parameter");
}

Kernel parse_kernel(const std::string& name) {
  if (name == "first_stage") return Kernel::kFirstStage;
  if (name == "later_stages") return Kernel::kLaterStages;
  if (name == "closed_form") return Kernel::kClosedForm;
  if (name == "total_delay") return Kernel::kTotalDelay;
  if (name == "finite_buffer") return Kernel::kFiniteBuffer;
  if (name == "buffer_sweep") return Kernel::kBufferSweep;
  bad_request("kernel: expected first_stage|later_stages|closed_form|"
              "total_delay|finite_buffer|buffer_sweep, got \"" + name +
              "\"");
}

/// Shared validation of the finite_buffer/buffer_sweep simulation tuple
/// (everything except depth/depths). Simulation kernels are the only
/// ones whose cost scales with the tuple, so hard caps live here.
void parse_sim_tuple(Query& query, const io::Json& params) {
  query.stages = read_unsigned(params, "stages", 3, 1);
  if (query.k < 2) bad_request("params.k: simulation kernels need k >= 2");
  // ports = k^stages, capped at 4096 (overflow-safe: stop early).
  std::uint64_t ports = 1;
  for (unsigned i = 0; i < query.stages; ++i) {
    ports *= query.k;
    if (ports > 4096)
      bad_request("params.stages: k^stages must stay <= 4096 ports");
  }
  query.flow = read_string(params, "flow", "vct");
  if (query.flow != "vct" && query.flow != "saf" && query.flow != "credit")
    bad_request("params.flow: expected vct|saf|credit");
  if (query.flow == "credit") {
    query.credit_latency = read_unsigned(params, "credit_latency", 2, 1);
    if (query.credit_latency > 1024)
      bad_request("params.credit_latency: at most 1024 cycles");
  } else if (params.contains("credit_latency")) {
    bad_request("params.credit_latency: only meaningful with flow=credit");
  }
  query.cycles = read_unsigned(params, "cycles", 20'000, 1);
  if (query.cycles > 200'000)
    bad_request("params.cycles: at most 200000 measured cycles");
  query.warmup = read_unsigned(params, "warmup", 2'000);
  if (query.warmup > 200'000)
    bad_request("params.warmup: at most 200000 warmup cycles");
  query.replicates = read_unsigned(params, "replicates", 1, 1);
  if (query.replicates > 8)
    bad_request("params.replicates: at most 8 replicates");
  query.seed = read_unsigned(params, "seed", 1);
}

Query parse_query(Kernel kernel, const io::Json& params) {
  if (!params.is_null() && !params.is_object())
    bad_request("params: expected an object");
  Query query;
  query.kernel = kernel;

  const auto traffic = [&](bool with_s) {
    query.k = read_unsigned(params, "k", 2, 1);
    query.s = with_s ? read_unsigned(params, "s", query.k, 1) : query.k;
    query.p = read_double(params, "p", 0.5);
    check_probability(query.p, "p");
    query.bulk = read_unsigned(params, "bulk", 1, 1);
    query.q = read_double(params, "q", 0.0);
    check_probability(query.q, "q");
    query.service = read_string(params, "service", "det:1");
    try {
      (void)sim::ServiceSpec::parse(query.service);
    } catch (const std::invalid_argument& e) {
      bad_request("params.service: " + std::string(e.what()));
    }
  };

  switch (kernel) {
    case Kernel::kFirstStage:
      check_keys(params,
                 {"k", "s", "p", "bulk", "q", "service", "distribution"});
      traffic(/*with_s=*/true);
      query.distribution = read_unsigned(params, "distribution", 0);
      if (query.distribution > 1u << 16)
        bad_request("params.distribution: at most 65536 terms");
      if (query.q > 0.0 && query.k != query.s)
        bad_request("params.q: favorite-output traffic requires k == s");
      break;
    case Kernel::kLaterStages:
      check_keys(params, {"k", "p", "bulk", "q", "service", "stage"});
      traffic(/*with_s=*/false);
      query.stage = read_unsigned(params, "stage", 0);
      break;
    case Kernel::kTotalDelay: {
      check_keys(params,
                 {"k", "p", "bulk", "q", "service", "stages", "quantiles"});
      traffic(/*with_s=*/false);
      query.stages = read_unsigned(params, "stages", 10, 1);
      if (params.contains("quantiles")) {
        const io::Json& qs = params.at("quantiles");
        if (!qs.is_array() || qs.size() == 0)
          bad_request("params.quantiles: expected a non-empty array");
        query.quantiles.clear();
        for (std::size_t i = 0; i < qs.size(); ++i) {
          double v = 0.0;
          try {
            v = qs.at(i).as_double();
          } catch (const std::invalid_argument&) {
            bad_request("params.quantiles: expected numbers");
          }
          if (!(v > 0.0 && v < 1.0))
            bad_request("params.quantiles: values must lie in (0, 1)");
          query.quantiles.push_back(v);
        }
      }
      break;
    }
    case Kernel::kFiniteBuffer:
      check_keys(params, {"k", "p", "bulk", "q", "service", "stages",
                          "depth", "flow", "credit_latency", "cycles",
                          "warmup", "replicates", "seed"});
      traffic(/*with_s=*/false);
      parse_sim_tuple(query, params);
      query.depth = read_unsigned(params, "depth", 4, 1);
      if (query.depth > 1024)
        bad_request("params.depth: at most 1024 slots per queue");
      break;
    case Kernel::kBufferSweep: {
      check_keys(params, {"k", "p", "bulk", "q", "service", "stages",
                          "depths", "flow", "credit_latency", "cycles",
                          "warmup", "replicates", "seed"});
      traffic(/*with_s=*/false);
      parse_sim_tuple(query, params);
      if (!params.contains("depths"))
        bad_request("params.depths: required for buffer_sweep");
      const io::Json& ds = params.at("depths");
      if (!ds.is_array() || ds.size() == 0)
        bad_request("params.depths: expected a non-empty array");
      if (ds.size() > 16) bad_request("params.depths: at most 16 depths");
      for (std::size_t i = 0; i < ds.size(); ++i) {
        std::int64_t v = 0;
        try {
          v = ds.at(i).as_int();
        } catch (const std::invalid_argument&) {
          bad_request("params.depths: expected integers");
        }
        if (v < 1 || v > 1024)
          bad_request("params.depths: depths must lie in [1, 1024]");
        if (!query.depths.empty() &&
            static_cast<unsigned>(v) <= query.depths.back())
          bad_request("params.depths: must be strictly ascending");
        query.depths.push_back(static_cast<unsigned>(v));
      }
      break;
    }
    case Kernel::kClosedForm: {
      query.family = read_string(params, "family", "");
      if (query.family == "uniform") {
        check_keys(params, {"family", "k", "s", "p"});
      } else if (query.family == "bulk") {
        check_keys(params, {"family", "k", "s", "p", "b"});
      } else if (query.family == "nonuniform") {
        check_keys(params, {"family", "k", "p", "q", "b"});
      } else if (query.family == "geometric") {
        check_keys(params, {"family", "k", "s", "p", "mu"});
      } else if (query.family == "deterministic") {
        check_keys(params, {"family", "k", "s", "p", "m"});
      } else {
        bad_request(
            "params.family: expected uniform|bulk|nonuniform|geometric|"
            "deterministic");
      }
      query.k = read_unsigned(params, "k", 2, 1);
      query.s = read_unsigned(params, "s", query.k, 1);
      query.p = read_double(params, "p", 0.5);
      check_probability(query.p, "p");
      query.q = read_double(params, "q", 0.0);
      check_probability(query.q, "q");
      query.b = read_unsigned(params, "b", 1, 1);
      query.m = read_unsigned(params, "m", 1, 1);
      query.mu = read_double(params, "mu", 0.5);
      if (!(query.mu > 0.0 && query.mu <= 1.0))
        bad_request("params.mu: expected a value in (0, 1]");
      break;
    }
  }
  return query;
}

}  // namespace

const char* kernel_name(Kernel kernel) noexcept {
  switch (kernel) {
    case Kernel::kFirstStage:
      return "first_stage";
    case Kernel::kLaterStages:
      return "later_stages";
    case Kernel::kClosedForm:
      return "closed_form";
    case Kernel::kTotalDelay:
      return "total_delay";
    case Kernel::kFiniteBuffer:
      return "finite_buffer";
    case Kernel::kBufferSweep:
      return "buffer_sweep";
  }
  return "?";
}

std::string Query::canonical() const {
  std::ostringstream os;
  os << "{\"kernel\":\"" << kernel_name(kernel) << "\",\"params\":{";
  switch (kernel) {
    case Kernel::kFirstStage:
      os << "\"bulk\":" << bulk << ",\"distribution\":" << distribution
         << ",\"k\":" << k << ",\"p\":" << hexfloat(p)
         << ",\"q\":" << hexfloat(q) << ",\"s\":" << s << ",\"service\":\""
         << service << "\"";
      break;
    case Kernel::kLaterStages:
      os << "\"bulk\":" << bulk << ",\"k\":" << k << ",\"p\":" << hexfloat(p)
         << ",\"q\":" << hexfloat(q) << ",\"service\":\"" << service
         << "\",\"stage\":" << stage;
      break;
    case Kernel::kTotalDelay: {
      os << "\"bulk\":" << bulk << ",\"k\":" << k << ",\"p\":" << hexfloat(p)
         << ",\"q\":" << hexfloat(q) << ",\"quantiles\":[";
      for (std::size_t i = 0; i < quantiles.size(); ++i)
        os << (i ? "," : "") << hexfloat(quantiles[i]);
      os << "],\"service\":\"" << service << "\",\"stages\":" << stages;
      break;
    }
    case Kernel::kFiniteBuffer:
      os << "\"bulk\":" << bulk << ",\"credit_latency\":" << credit_latency
         << ",\"cycles\":" << cycles << ",\"depth\":" << depth
         << ",\"flow\":\"" << flow << "\",\"k\":" << k
         << ",\"p\":" << hexfloat(p) << ",\"q\":" << hexfloat(q)
         << ",\"replicates\":" << replicates << ",\"seed\":" << seed
         << ",\"service\":\"" << service << "\",\"stages\":" << stages
         << ",\"warmup\":" << warmup;
      break;
    case Kernel::kBufferSweep: {
      os << "\"bulk\":" << bulk << ",\"credit_latency\":" << credit_latency
         << ",\"cycles\":" << cycles << ",\"depths\":[";
      for (std::size_t i = 0; i < depths.size(); ++i)
        os << (i ? "," : "") << depths[i];
      os << "],\"flow\":\"" << flow << "\",\"k\":" << k
         << ",\"p\":" << hexfloat(p) << ",\"q\":" << hexfloat(q)
         << ",\"replicates\":" << replicates << ",\"seed\":" << seed
         << ",\"service\":\"" << service << "\",\"stages\":" << stages
         << ",\"warmup\":" << warmup;
      break;
    }
    case Kernel::kClosedForm:
      os << "\"b\":" << b << ",\"family\":\"" << family << "\",\"k\":" << k
         << ",\"m\":" << m << ",\"mu\":" << hexfloat(mu)
         << ",\"p\":" << hexfloat(p) << ",\"q\":" << hexfloat(q)
         << ",\"s\":" << s;
      break;
  }
  os << "}}";
  return os.str();
}

Request Request::parse(const std::string& line,
                       std::int64_t default_deadline_ms) {
  Request req;
  req.arrival = std::chrono::steady_clock::now();
  req.deadline_ms = default_deadline_ms;
  io::Json doc;
  try {
    doc = io::Json::parse(line);
  } catch (const std::invalid_argument& e) {
    req.error_kind = wire::kUsage;
    req.error_message = e.what();
    return req;
  }
  try {
    if (!doc.is_object()) bad_request("request: expected a JSON object");
    for (const auto& key : doc.keys())
      if (key != "schema" && key != "id" && key != "kernel" &&
          key != "params" && key != "deadline_ms" && key != "trace_id")
        bad_request(key + ": unknown request field");
    if (doc.contains("schema") &&
        doc.at("schema").as_string() != "ksw.query/v1")
      bad_request("schema: expected \"ksw.query/v1\"");
    if (doc.contains("id")) {
      const io::Json& id = doc.at("id");
      if (id.is_array() || id.is_object())
        bad_request("id: expected a scalar");
      req.id = id;
    }
    if (doc.contains("trace_id")) {
      const io::Json& trace = doc.at("trace_id");
      if (!trace.is_string() || trace.as_string().empty())
        bad_request("trace_id: expected a non-empty string");
      if (trace.as_string().size() > 64)
        bad_request("trace_id: at most 64 characters");
      req.trace_id = trace.as_string();
    }
    if (!doc.contains("kernel")) bad_request("kernel: required field");
    req.query =
        parse_query(parse_kernel(doc.at("kernel").as_string()),
                    doc.get("params"));
    if (doc.contains("deadline_ms")) {
      const std::int64_t ms = doc.at("deadline_ms").as_int();
      if (ms < 0) bad_request("deadline_ms: expected a non-negative integer");
      // Only a positive value overrides the server-wide --deadline-ms
      // budget. An explicit 0 means "no per-request override" — it must
      // not turn the request immortal when the server set a default.
      if (ms > 0) req.deadline_ms = ms;
    }
  } catch (const ksw::Error& e) {
    req.error_kind = wire::kUsage;
    req.error_message = e.what();
  } catch (const std::invalid_argument& e) {
    req.error_kind = wire::kUsage;
    req.error_message = e.what();
  }
  return req;
}

std::uint64_t fnv1a64(const std::string& text) noexcept {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

/// The optional trace_id envelope field, placed right after "id" so
/// correlation fields lead the line. Empty renders nothing — untraced
/// responses keep the historic bytes.
std::string trace_field(const std::string& trace_id) {
  if (trace_id.empty()) return {};
  return ",\"trace_id\":\"" + io::json_escape(trace_id) + "\"";
}

}  // namespace

std::string render_ok(const io::Json& id, Kernel kernel, bool cached,
                      const std::string& result_bytes,
                      const std::string& trace_id) {
  std::string line =
      "{\"id\":" + id.to_string() + trace_field(trace_id) + ",\"ok\":true,";
  line += "\"kernel\":\"";
  line += kernel_name(kernel);
  line += "\",\"cached\":";
  line += cached ? "true" : "false";
  line += ",\"result\":";
  line += result_bytes;
  line += "}";
  return line;
}

std::string render_error(const io::Json& id, const std::string& kind,
                         const std::string& message,
                         const std::string& trace_id) {
  return "{\"id\":" + id.to_string() + trace_field(trace_id) +
         ",\"ok\":false,\"error\":{\"kind\":\"" + io::json_escape(kind) +
         "\",\"message\":\"" + io::json_escape(message) + "\"}}";
}

}  // namespace ksw::serve
