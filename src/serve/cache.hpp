// Sharded, content-addressed LRU cache for kernel evaluations.
//
// The key is the canonical request string (serve::Query::canonical);
// its FNV-1a hash picks a shard and a bucket, and the full key string is
// compared on lookup so a 64-bit collision can never serve the wrong
// bytes. Each shard is an independent mutex + hash-map + intrusive LRU
// list, so concurrent batches contend only 1/shards of the time.
// Capacity is accounted in bytes (key + value + a fixed per-entry
// overhead) and divided evenly across shards; inserting past a shard's
// budget evicts from its LRU tail.
//
// Values are the serialized result bytes of a pure analytic kernel, so a
// hit returns *bit-identical* output to the evaluation it replaced.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ksw::serve {

class EvalCache {
 public:
  /// Aggregate counters across all shards (a consistent-enough snapshot:
  /// each shard is read under its own lock).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;           ///< charged bytes currently held
    std::uint64_t capacity_bytes = 0;  ///< 0 = cache disabled
  };

  /// Fixed accounting overhead charged per entry on top of key+value
  /// bytes (list/map node bookkeeping, amortized).
  static constexpr std::uint64_t kEntryOverhead = 64;

  /// `capacity_bytes` = 0 disables the cache entirely: every lookup
  /// misses, every insert is dropped (cold-path benchmarking and
  /// --cache-mb=0).
  explicit EvalCache(std::uint64_t capacity_bytes,
                     std::size_t shards = 16);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Look up the value for (hash, key); refreshes LRU recency on hit.
  [[nodiscard]] std::optional<std::string> lookup(std::uint64_t hash,
                                                  const std::string& key);

  /// Insert (hash, key) -> value, evicting LRU entries as needed. If the
  /// key is already present (a concurrent batch computed it twice) the
  /// existing entry is kept — both computations produced the same bytes.
  /// An entry larger than the whole shard budget is not admitted.
  void insert(std::uint64_t hash, const std::string& key,
              std::string value);

  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] bool enabled() const noexcept { return per_shard_ > 0; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) {
    return shards_[hash % shards_.size()];
  }
  static std::uint64_t cost(const Entry& e) noexcept {
    return e.key.size() + e.value.size() + kEntryOverhead;
  }

  std::uint64_t per_shard_;
  std::vector<Shard> shards_;
};

}  // namespace ksw::serve
