#include "serve/access_log.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace ksw::serve {

namespace {

/// Microseconds with fixed sub-microsecond precision: enough to see the
/// queue/eval split, stable width for eyeballing logs.
std::string micros(double us) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", us < 0.0 ? 0.0 : us);
  return buf;
}

}  // namespace

std::string render_access_entry(const AccessEntry& entry) {
  std::string line = "{\"trace_id\":\"" + io::json_escape(entry.trace_id) +
                     "\",\"id\":" + entry.id.to_string() + ",\"kernel\":";
  if (entry.kernel.empty())
    line += "null";
  else
    line += "\"" + io::json_escape(entry.kernel) + "\"";
  line += ",\"ok\":";
  line += entry.ok ? "true" : "false";
  if (!entry.error_kind.empty())
    line += ",\"error_kind\":\"" + io::json_escape(entry.error_kind) + "\"";
  line += ",\"cached\":";
  line += entry.cached ? "true" : "false";
  line += ",\"shard\":" + std::to_string(entry.shard);
  line += ",\"queue_us\":" + micros(entry.queue_us);
  line += ",\"eval_us\":" + micros(entry.eval_us);
  if (entry.deadline_ms > 0)
    line += ",\"deadline_ms\":" + std::to_string(entry.deadline_ms);
  line += "}";
  return line;
}

AccessLog::AccessLog(const std::string& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_)
    throw ksw::io_error("--access-log: cannot open " + path +
                        " for writing");
}

void AccessLog::write(const std::vector<AccessEntry>& entries) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const AccessEntry& entry : entries) {
    out_ << render_access_entry(entry) << '\n';
  }
  out_.flush();
  if (!out_)
    throw ksw::io_error("--access-log: write to " + path_ + " failed");
}

}  // namespace ksw::serve
