#include "serve/cache.hpp"

#include <utility>

namespace ksw::serve {

EvalCache::EvalCache(std::uint64_t capacity_bytes, std::size_t shards)
    : per_shard_(capacity_bytes / (shards == 0 ? 1 : shards)),
      shards_(shards == 0 ? 1 : shards) {}

std::optional<std::string> EvalCache::lookup(std::uint64_t hash,
                                             const std::string& key) {
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (per_shard_ == 0) {
    ++shard.misses;
    return std::nullopt;
  }
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  // Refresh recency: splice the entry to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void EvalCache::insert(std::uint64_t hash, const std::string& key,
                       std::string value) {
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (per_shard_ == 0) return;
  if (shard.index.count(key) != 0) return;  // concurrent duplicate compute
  Entry entry{key, std::move(value)};
  const std::uint64_t entry_cost = cost(entry);
  if (entry_cost > per_shard_) return;  // would evict the whole shard
  while (shard.bytes + entry_cost > per_shard_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= cost(victim);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  shard.bytes += entry_cost;
  ++shard.insertions;
}

EvalCache::Stats EvalCache::stats() const {
  Stats out;
  out.capacity_bytes = per_shard_ * shards_.size();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace ksw::serve
