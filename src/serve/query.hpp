// The ksw.query/v1 wire model: one analytic request per JSONL line.
//
// A request names a kernel (first_stage, later_stages, closed_form,
// total_delay, finite_buffer, buffer_sweep) plus its parameter tuple.
// Kruskal-Snir-Weiss evaluations — analytic formulas and seeded
// simulations alike — are pure functions of that tuple, so every request has a
// *canonical form* — defaults filled in, keys in fixed order, doubles in
// hexfloat — which is what the evaluation cache hashes (FNV-1a) and
// compares. Two requests that differ only in spelling ({"p":0.5} vs
// {"p":5e-1}, key order, whitespace) share one cache entry and return
// bit-identical result bytes.
//
// The full schema, error-kind vocabulary, and cache/deadline semantics
// are documented in docs/SERVING.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace ksw::serve {

/// The kernels a request can name. The first four are analytic
/// (closed-form, instant); the finite-buffer pair run the cycle-accurate
/// network simulation, which is still a pure function of the tuple (seeds
/// are part of it) so caching stays sound — but cost scales with
/// ports x cycles x replicates, hence the hard caps enforced at parse
/// time (ports <= 4096, cycles <= 200000, replicates <= 8, depths <= 16).
enum class Kernel {
  kFirstStage,    ///< Theorem 1: exact first-stage moments + distribution
  kLaterStages,   ///< Section IV: eq. 11-14 stage estimates
  kClosedForm,    ///< Section III printed closed forms, by family
  kTotalDelay,    ///< Section V: totals + gamma approximation
  kFiniteBuffer,  ///< simulated finite-buffer network at one depth
  kBufferSweep,   ///< finite_buffer over a depth grid + infinite baseline
};

[[nodiscard]] const char* kernel_name(Kernel kernel) noexcept;

/// In-band error vocabulary of ksw.query/v1 responses. A serve process
/// answers a bad request with {"ok":false,"error":{"kind":...}} instead
/// of exiting — the PR-4 exit-code taxonomy applies only to transport
/// and startup failures (see docs/ROBUSTNESS.md).
namespace wire {
inline constexpr const char* kUsage = "usage";              ///< bad request
inline constexpr const char* kNumeric = "numeric";          ///< model guard
inline constexpr const char* kDeadline = "deadline";        ///< expired
inline constexpr const char* kInterrupted = "interrupted";  ///< shutdown
inline constexpr const char* kInternal = "internal";        ///< a bug
/// Fleet-only (docs/SERVING.md "Fleet protocol addendum"): the
/// supervisor's bounded per-worker queue is full and the request was
/// shed instead of queued. A single-process `kswsim serve` never emits
/// it. Retryable by construction — nothing was evaluated.
inline constexpr const char* kOverload = "overload";
}  // namespace wire

/// Parameter tuple of one request, defaults filled in. Construction goes
/// through Request::parse, which validates strictly (unknown keys, bad
/// types, and out-of-domain values are usage errors).
struct Query {
  Kernel kernel = Kernel::kFirstStage;

  // Traffic tuple (first_stage / later_stages / total_delay).
  unsigned k = 2;      ///< switch degree
  unsigned s = 2;      ///< first_stage only: output count (defaults to k)
  double p = 0.5;      ///< per-input arrival probability per cycle
  unsigned bulk = 1;   ///< messages per batch
  double q = 0.0;      ///< favorite-output probability
  std::string service = "det:1";  ///< service spec, kept verbatim

  unsigned distribution = 0;  ///< first_stage: P(w=j) prefix length
  unsigned stage = 0;         ///< later_stages: 1-based stage (0 = limit only)
  unsigned stages = 10;       ///< total_delay: network depth
  std::vector<double> quantiles{0.5, 0.9, 0.99};  ///< total_delay

  // closed_form tuple.
  std::string family;  ///< uniform|bulk|nonuniform|geometric|deterministic
  unsigned b = 1;      ///< closed_form bulk/nonuniform batch size
  double mu = 0.5;     ///< closed_form geometric service parameter
  unsigned m = 1;      ///< closed_form deterministic service time

  // finite_buffer / buffer_sweep simulation tuple. `stages` above is
  // shared (these kernels default it to 3). credit_latency is normalized
  // to 0 at parse time unless flow == "credit", so requests that differ
  // only in an inert credit_latency share a cache entry.
  unsigned depth = 4;            ///< finite_buffer: buffer slots per queue
  std::vector<unsigned> depths;  ///< buffer_sweep: ascending depth grid
  std::string flow = "vct";      ///< vct | saf | credit
  unsigned credit_latency = 0;   ///< credit only: return latency (cycles)
  unsigned cycles = 20'000;      ///< measured cycles per replicate
  unsigned warmup = 2'000;       ///< warmup cycles per replicate
  unsigned replicates = 1;       ///< independent replicates, merged
  unsigned seed = 1;             ///< base seed (replicate i derives from it)

  /// Canonical request string — the cache identity. Pure function of the
  /// parsed tuple: fixed key order, defaults materialized, doubles as
  /// hexfloats, the service spec verbatim.
  [[nodiscard]] std::string canonical() const;
};

/// One parsed request line. `error_kind` empty means the request is valid
/// and `query` is meaningful; otherwise the request already failed and
/// carries its in-band error.
struct Request {
  io::Json id;  ///< echoed verbatim (null when absent)
  /// Client-supplied trace id (echoed verbatim in the response and the
  /// access log). Empty = none; the service generates one when request
  /// observability (--access-log / --trace-out) is on.
  std::string trace_id;
  Query query;
  /// Effective deadline after merging the request with the server default:
  /// a positive request value wins, otherwise the server's --deadline-ms
  /// applies (an explicit "deadline_ms": 0 does NOT override it). 0 here
  /// means no deadline at all.
  std::int64_t deadline_ms = 0;
  std::chrono::steady_clock::time_point arrival{};

  std::string error_kind;  ///< one of wire::*, or empty
  std::string error_message;

  [[nodiscard]] bool valid() const noexcept { return error_kind.empty(); }

  /// Parse one JSONL line. Never throws: malformed JSON, unknown kernels,
  /// unknown or mistyped params all come back as a Request whose
  /// error_kind is wire::kUsage. `default_deadline_ms` applies when the
  /// request carries no deadline of its own.
  [[nodiscard]] static Request parse(const std::string& line,
                                     std::int64_t default_deadline_ms = 0);
};

/// 64-bit FNV-1a over the canonical request string.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& text) noexcept;

/// Render a success response line (no trailing newline): the envelope
/// around pre-serialized result bytes, which are spliced in verbatim so
/// cached and freshly computed responses are bit-identical. A non-empty
/// `trace_id` adds a "trace_id" field right after "id"; the default
/// keeps the historic envelope byte-for-byte.
[[nodiscard]] std::string render_ok(const io::Json& id, Kernel kernel,
                                    bool cached,
                                    const std::string& result_bytes,
                                    const std::string& trace_id = {});

/// Render an error response line (no trailing newline).
[[nodiscard]] std::string render_error(const io::Json& id,
                                       const std::string& kind,
                                       const std::string& message,
                                       const std::string& trace_id = {});

}  // namespace ksw::serve
