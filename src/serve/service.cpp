#include "serve/service.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/report.hpp"
#include "serve/kernels.hpp"
#include "support/error.hpp"

namespace ksw::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// How long a blocked poll() sleeps between cancellation checks.
constexpr int kPollMs = 200;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

bool deadline_expired(const Request& req) {
  if (req.deadline_ms <= 0) return false;
  return Clock::now() >
         req.arrival + std::chrono::milliseconds(req.deadline_ms);
}

/// Classify an evaluation failure into the in-band wire vocabulary.
const char* wire_kind(const std::exception& e) {
  if (const auto* typed = dynamic_cast<const ksw::Error*>(&e)) {
    switch (typed->kind()) {
      case ksw::ErrorKind::kUsage:
        return wire::kUsage;
      case ksw::ErrorKind::kNumeric:
        return wire::kNumeric;
      case ksw::ErrorKind::kInterrupted:
        return wire::kInterrupted;
      default:
        return wire::kInternal;
    }
  }
  // Request syntax was fully validated at parse time, so an
  // invalid_argument reaching evaluation is a model-domain guard (the
  // closed forms throw it for rho outside (0,1)) — a numeric error, not
  // a malformed request.
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
    return wire::kNumeric;
  return wire::kInternal;
}

/// write() the whole buffer. Returns false on EPIPE/ECONNRESET (peer
/// went away); throws kIo on any other failure.
bool write_all(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw ksw::io_error(std::string("serve: write failed: ") +
                          std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Incremental line reader over a file descriptor. poll()s with a short
/// timeout so a blocked read observes cancellation promptly — the
/// process-wide signal handlers use SA_RESTART semantics, so a plain
/// blocking read would sleep through SIGTERM on an open pipe.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  enum class Status { kLine, kEof, kCancelled };

  /// Next complete line. With wait=false, never blocks: returns kEof
  /// when no complete line is buffered and no data is instantly
  /// readable (the caller dispatches the batch it has).
  Status next_line(std::string* line, const par::CancelToken* cancel,
                   bool wait) {
    while (true) {
      if (take_buffered_line(line)) return Status::kLine;
      if (eof_) {
        if (!buf_.empty()) {  // final line without trailing newline
          line->assign(std::move(buf_));
          buf_.clear();
          return Status::kLine;
        }
        return Status::kEof;
      }
      if (cancel != nullptr && cancel->requested()) return Status::kCancelled;
      struct pollfd pfd {};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, wait ? kPollMs : 0);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw ksw::io_error(std::string("serve: poll failed: ") +
                            std::strerror(errno));
      }
      if (ready == 0) {
        if (!wait) return Status::kEof;
        continue;  // timeout: loop re-checks the cancel token
      }
      char chunk[65536];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw ksw::io_error(std::string("serve: read failed: ") +
                            std::strerror(errno));
      }
      if (n == 0) {
        eof_ = true;
        continue;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  [[nodiscard]] bool eof() const noexcept { return eof_ && buf_.empty(); }

 private:
  bool take_buffered_line(std::string* line) {
    const auto nl = buf_.find('\n');
    if (nl == std::string::npos) return false;
    line->assign(buf_, 0, nl);
    buf_.erase(0, nl + 1);
    return true;
  }

  int fd_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace

Service::Service(ServeOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_mb * 1024 * 1024),
      pool_(opts_.threads) {
  if (!opts_.access_log.empty())
    access_log_ = std::make_unique<AccessLog>(opts_.access_log);
  // Generated trace ids must differ across processes started in the same
  // instant-ish; they carry no meaning beyond uniqueness.
  trace_base_ = obs::fnv1a64(
      std::to_string(std::chrono::system_clock::now()
                         .time_since_epoch()
                         .count()) +
      "/" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  requests_ = &registry_.counter("serve.requests");
  batches_ = &registry_.counter("serve.batches");
  ok_ = &registry_.counter("serve.responses.ok");
  errors_ = &registry_.counter("serve.responses.error");
  hits_ = &registry_.counter("serve.cache.hits");
  misses_ = &registry_.counter("serve.cache.misses");
  queue_depth_ = &registry_.gauge("serve.queue_depth");
  // 25 us resolution out to 10 ms; slower evaluations land in the
  // overflow tally and the quantiles report the upper edge.
  service_us_ = &registry_.histogram("serve.service_us", 0.0, 25.0, 400);
  queue_us_ = &registry_.histogram("serve.queue_us", 0.0, 25.0, 400);
  batch_wall_ = &registry_.timer("serve.batch_wall");
}

std::string Service::generate_trace_id() {
  // splitmix64 over a per-process base: unique, cheap, and clearly not a
  // simulation-derived (deterministic) quantity.
  std::uint64_t x =
      trace_base_ +
      0x9e3779b97f4a7c15ull *
          (trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  if (x == 0) x = 1;  // hex16 "0" doubles as "no id" elsewhere
  return obs::hex_id(x);
}

void Service::serve_batch(std::vector<Request> batch, std::string* out,
                          const par::CancelToken* cancel) {
  if (batch.empty()) return;
  const obs::ScopedTimer batch_timer(batch_wall_);
  batches_->inc();
  requests_->inc(batch.size());
  queue_depth_->record_max(static_cast<double>(batch.size()));

  // Request observability: access-log rows and per-request spans, plus
  // trace_id generation for requests that did not bring one. All of it
  // is off (and the response bytes historic) unless opted into.
  const bool observing = access_log_ != nullptr || opts_.tracer != nullptr;
  obs::Span batch_span;
  if (opts_.tracer != nullptr) {
    batch_span = opts_.tracer->span("serve.batch");
    batch_span.label("requests", std::to_string(batch.size()));
  }

  std::vector<std::string> responses(batch.size());
  std::vector<bool> succeeded(batch.size(), false);
  std::vector<AccessEntry> entries(observing ? batch.size() : 0);
  std::vector<double> service_us(batch.size(), 0.0);
  std::vector<double> queue_us(batch.size(), 0.0);

  par::parallel_for(pool_, batch.size(), [&](std::size_t i) {
    Request& req = batch[i];
    if (observing && req.trace_id.empty())
      req.trace_id = generate_trace_id();
    const Clock::time_point start = Clock::now();
    queue_us[i] =
        std::chrono::duration<double, std::micro>(start - req.arrival)
            .count();
    obs::Span span;
    if (opts_.tracer != nullptr) {
      // Worker threads have no open parent; link the batch explicitly so
      // the request nests under it in trace viewers.
      span = obs::Span(opts_.tracer, "serve.request",
                       obs::parse_hex_id(req.trace_id) != 0
                           ? obs::parse_hex_id(req.trace_id)
                           : obs::fnv1a64(req.trace_id));
      span.label("kernel",
                 req.valid() ? kernel_name(req.query.kernel) : "invalid");
    }
    bool cached = false;
    int shard = -1;
    const char* error_kind = nullptr;
    std::string error_message;
    if (!req.valid()) {
      error_kind = wire::kUsage;  // parse-time failure, kind preserved below
      responses[i] = render_error(req.id, req.error_kind, req.error_message,
                                  req.trace_id);
    } else if (cancel != nullptr && cancel->requested()) {
      error_kind = wire::kInterrupted;
      responses[i] = render_error(req.id, wire::kInterrupted,
                                  "service is shutting down", req.trace_id);
    } else if (deadline_expired(req)) {
      error_kind = wire::kDeadline;
      responses[i] = render_error(
          req.id, wire::kDeadline,
          "deadline of " + std::to_string(req.deadline_ms) +
              " ms expired before evaluation",
          req.trace_id);
    } else {
      const std::string key = req.query.canonical();
      const std::uint64_t hash = fnv1a64(key);
      shard = static_cast<int>(hash % cache_.shard_count());
      if (auto hit = cache_.lookup(hash, key)) {
        hits_->inc();
        cached = true;
        responses[i] =
            render_ok(req.id, req.query.kernel, true, *hit, req.trace_id);
        succeeded[i] = true;
      } else {
        misses_->inc();
        try {
          std::string bytes = evaluate_bytes(req.query);
          responses[i] = render_ok(req.id, req.query.kernel, false, bytes,
                                   req.trace_id);
          cache_.insert(hash, key, std::move(bytes));
          succeeded[i] = true;
        } catch (const std::exception& e) {
          error_kind = wire_kind(e);
          responses[i] =
              render_error(req.id, error_kind, e.what(), req.trace_id);
        }
      }
    }
    service_us[i] = micros_since(start);
    if (span.active()) {
      span.label("cached", cached ? "true" : "false");
      if (!succeeded[i]) span.label("error", error_kind ? error_kind : "?");
    }
    if (observing) {
      AccessEntry& entry = entries[i];
      entry.trace_id = req.trace_id;
      entry.id = req.id;
      if (req.valid()) entry.kernel = kernel_name(req.query.kernel);
      entry.ok = succeeded[i];
      if (!succeeded[i])
        entry.error_kind = req.valid() ? error_kind : req.error_kind;
      entry.cached = cached;
      entry.shard = shard;
      entry.queue_us = queue_us[i];
      entry.eval_us = service_us[i];
      entry.deadline_ms = req.deadline_ms;
    }
  });

  {
    // Histogram updates are single-writer: recorded here, after the
    // parallel section, under the lock report() shares.
    const std::lock_guard<std::mutex> lock(hist_mu_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      service_us_->record(service_us[i]);
      queue_us_->record(queue_us[i]);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    (succeeded[i] ? ok_ : errors_)->inc();
    out->append(responses[i]);
    out->push_back('\n');
  }
  if (access_log_ != nullptr) access_log_->write(entries);
}

ServeSummary Service::run(std::istream& in, std::ostream& out,
                          const par::CancelToken* cancel) {
  ServeSummary summary;
  std::string line;
  bool eof = false;
  while (!eof) {
    if (cancel != nullptr && cancel->requested()) {
      summary.interrupted = true;
      break;
    }
    std::vector<Request> batch;
    while (batch.size() < opts_.batch) {
      if (!std::getline(in, line)) {
        eof = true;
        break;
      }
      if (line.empty()) continue;
      batch.push_back(Request::parse(line, opts_.deadline_ms));
    }
    if (batch.empty()) continue;
    summary.requests += batch.size();
    summary.responses += batch.size();
    std::string rendered;
    serve_batch(std::move(batch), &rendered, cancel);
    out << rendered << std::flush;
  }
  if (cancel != nullptr && cancel->requested()) summary.interrupted = true;
  return summary;
}

ServeSummary Service::run_fd(int in_fd, int out_fd,
                             const par::CancelToken* cancel) {
  ServeSummary summary;
  FdLineReader reader(in_fd);
  std::string line;
  while (true) {
    // Block (cancellably) for the first request of a batch, then drain
    // whatever further lines are instantly available up to the batch
    // cap — natural batching under load, low latency when idle.
    std::vector<Request> batch;
    auto status = reader.next_line(&line, cancel, /*wait=*/true);
    if (status == FdLineReader::Status::kCancelled) {
      summary.interrupted = true;
      break;
    }
    if (status == FdLineReader::Status::kEof && reader.eof() &&
        batch.empty()) {
      break;
    }
    while (status == FdLineReader::Status::kLine) {
      if (!line.empty())
        batch.push_back(Request::parse(line, opts_.deadline_ms));
      if (batch.size() >= opts_.batch) break;
      status = reader.next_line(&line, cancel, /*wait=*/false);
    }
    if (status == FdLineReader::Status::kCancelled) summary.interrupted = true;
    if (!batch.empty()) {
      summary.requests += batch.size();
      summary.responses += batch.size();
      std::string rendered;
      serve_batch(std::move(batch), &rendered, cancel);
      if (!write_all(out_fd, rendered)) break;  // peer disconnected
    }
    if (summary.interrupted || (reader.eof())) break;
  }
  if (cancel != nullptr && cancel->requested()) summary.interrupted = true;
  return summary;
}

ServeSummary Service::run_listen(const std::string& socket_path,
                                 const par::CancelToken* cancel) {
  if (socket_path.size() >= sizeof(sockaddr_un::sun_path))
    throw ksw::usage_error("--listen: socket path too long: " + socket_path);
  // A peer that disconnects mid-response must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw ksw::io_error(std::string("--listen: socket failed: ") +
                        std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, 8) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd);
    throw ksw::io_error("--listen: cannot bind " + socket_path + ": " +
                        reason);
  }

  ServeSummary summary;
  while (true) {
    if (cancel != nullptr && cancel->requested()) {
      summary.interrupted = true;
      break;
    }
    struct pollfd pfd {};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      const std::string reason = std::strerror(errno);
      ::close(listen_fd);
      ::unlink(socket_path.c_str());
      throw ksw::io_error("--listen: poll failed: " + reason);
    }
    if (ready == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      continue;  // transient accept failure; keep serving
    }
    const ServeSummary one = run_fd(conn, conn, cancel);
    ::close(conn);
    summary.requests += one.requests;
    summary.responses += one.responses;
    if (one.interrupted) {
      summary.interrupted = true;
      break;
    }
  }
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  return summary;
}

io::Json Service::report(bool include_wall) const {
  io::Json doc = io::Json::object();
  doc.set("schema", "ksw.obs.report/v1");
  doc.set("command", "serve");

  io::Json config = io::Json::object();
  config.set("threads", static_cast<std::int64_t>(pool_.thread_count()));
  config.set("batch", static_cast<std::int64_t>(opts_.batch));
  config.set("cache_mb", static_cast<std::int64_t>(opts_.cache_mb));
  config.set("deadline_ms", opts_.deadline_ms);
  config.set("access_log", !opts_.access_log.empty());
  doc.set("config", std::move(config));

  {
    const std::lock_guard<std::mutex> lock(hist_mu_);
    doc.set("metrics",
            obs::registry_to_json(registry_, {.include_wall = include_wall}));
  }

  const EvalCache::Stats stats = cache_.stats();
  io::Json cache = io::Json::object();
  cache.set("hits", stats.hits);
  cache.set("misses", stats.misses);
  cache.set("insertions", stats.insertions);
  cache.set("evictions", stats.evictions);
  cache.set("entries", stats.entries);
  cache.set("bytes", stats.bytes);
  cache.set("capacity_bytes", stats.capacity_bytes);
  const std::uint64_t consulted = stats.hits + stats.misses;
  cache.set("hit_rate", consulted == 0
                            ? 0.0
                            : static_cast<double>(stats.hits) /
                                  static_cast<double>(consulted));
  doc.set("cache", std::move(cache));

  {
    const std::lock_guard<std::mutex> lock(hist_mu_);
    io::Json latency = io::Json::object();
    latency.set("p50_us", service_us_->quantile(0.5));
    latency.set("p99_us", service_us_->quantile(0.99));
    latency.set("p999_us", service_us_->quantile(0.999));
    latency.set("mean_us", service_us_->mean());
    latency.set("queue_p50_us", queue_us_->quantile(0.5));
    latency.set("queue_p99_us", queue_us_->quantile(0.99));
    doc.set("latency", std::move(latency));
  }
  return doc;
}

}  // namespace ksw::serve
