// Minimal JSON value builder + serializer, for machine-readable output
// from the kswsim CLI (no external dependencies; write-only — this
// library never needs to parse JSON).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ksw::io {

/// A JSON value: null, bool, number, string, array, or object.
/// Objects keep insertion order.
class Json {
 public:
  Json() : value_(nullptr) {}                       // null
  Json(bool b) : value_(b) {}                       // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                     // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}   // NOLINT
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}   // NOLINT
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}   // NOLINT
  Json(std::string s) : value_(std::move(s)) {}     // NOLINT

  static Json array();
  static Json object();

  /// Append to an array (converts a null value to an array first).
  Json& push_back(Json v);

  /// Set an object key (converts a null value to an object first).
  Json& set(const std::string& key, Json v);

  [[nodiscard]] bool is_null() const noexcept;
  [[nodiscard]] bool is_array() const noexcept;
  [[nodiscard]] bool is_object() const noexcept;
  [[nodiscard]] std::size_t size() const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string to_string(int indent = 0) const;

 private:
  struct Array;
  struct Object;
  using Value = std::variant<std::nullptr_t, bool, double, std::string,
                             std::shared_ptr<Array>, std::shared_ptr<Object>>;

  struct Array {
    std::vector<Json> items;
  };
  struct Object {
    std::vector<std::pair<std::string, Json>> members;
  };

  void write_impl(std::ostream& os, int indent, int depth) const;

  Value value_;
};

/// Escape a string for embedding in JSON (without surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace ksw::io
