// Minimal JSON value builder, serializer, and parser (no external
// dependencies). Originally write-only for machine-readable kswsim
// output; the sweep-manifest subsystem added a strict recursive-descent
// reader (Json::parse) plus typed accessors.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ksw::io {

/// A JSON value: null, bool, number, string, array, or object.
/// Objects keep insertion order.
class Json {
 public:
  Json() : value_(nullptr) {}                       // null
  Json(bool b) : value_(b) {}                       // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                     // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}   // NOLINT
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}   // NOLINT
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}   // NOLINT
  Json(std::string s) : value_(std::move(s)) {}     // NOLINT

  static Json array();
  static Json object();

  /// Parse a complete JSON document. Strict: rejects trailing content,
  /// comments, duplicate object keys, and malformed literals. Throws
  /// std::invalid_argument with a character offset on error.
  static Json parse(const std::string& text);

  /// Append to an array (converts a null value to an array first).
  Json& push_back(Json v);

  /// Set an object key (converts a null value to an object first).
  Json& set(const std::string& key, Json v);

  [[nodiscard]] bool is_null() const noexcept;
  [[nodiscard]] bool is_bool() const noexcept;
  [[nodiscard]] bool is_number() const noexcept;
  [[nodiscard]] bool is_string() const noexcept;
  [[nodiscard]] bool is_array() const noexcept;
  [[nodiscard]] bool is_object() const noexcept;
  [[nodiscard]] std::size_t size() const;

  // Typed readers; each throws std::invalid_argument on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// as_double, but requires an integral value within int64 range.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Object member lookup. `contains` is false for non-objects; `at`
  /// throws std::invalid_argument when the key is missing. `get` returns
  /// null for a missing key.
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] Json get(const std::string& key) const;
  /// Object keys in insertion order (empty for non-objects).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Array element access; throws std::invalid_argument out of range.
  [[nodiscard]] const Json& at(std::size_t index) const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string to_string(int indent = 0) const;

 private:
  struct Array;
  struct Object;
  using Value = std::variant<std::nullptr_t, bool, double, std::string,
                             std::shared_ptr<Array>, std::shared_ptr<Object>>;

  struct Array {
    std::vector<Json> items;
  };
  struct Object {
    std::vector<std::pair<std::string, Json>> members;
  };

  void write_impl(std::ostream& os, int indent, int depth) const;

  Value value_;
};

/// Escape a string for embedding in JSON (without surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace ksw::io
