#include "io/atomic.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "fault/injection.hpp"
#include "support/error.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ksw::io {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw io_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path target(path);
  const auto parent = target.parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) throw io_error("cannot create directory " + parent.string() +
                           ": " + ec.message());
  }
  const std::string tmp = path + ".tmp";

#if defined(_WIN32)
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (fault::should_fire("io.open") && file != nullptr) {
    std::fclose(file);
    std::remove(tmp.c_str());
    file = nullptr;
    errno = EACCES;
  }
  if (file == nullptr) fail("cannot open", tmp);
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), file);
  const bool write_failed =
      written != content.size() || fault::should_fire("io.write");
  if (write_failed || std::fclose(file) != 0) {
    if (write_failed) std::fclose(file);
    std::remove(tmp.c_str());
    fail("cannot write", tmp);
  }
#else
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fault::should_fire("io.open") && fd >= 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fd = -1;
    errno = EACCES;
  }
  if (fd < 0) fail("cannot open", tmp);

  std::size_t offset = 0;
  bool write_failed = fault::should_fire("io.write");
  if (write_failed) errno = ENOSPC;
  while (!write_failed && offset < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + offset, content.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_failed = true;
      break;
    }
    offset += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must not become durable before the
  // data it points at.
  if (write_failed || ::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    fail("cannot write", tmp);
  }
  if (::close(fd) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail("cannot write", tmp);
  }
#endif

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    std::remove(tmp.c_str());
    errno = saved;
    fail("cannot rename", tmp + " ->");
  }
}

}  // namespace ksw::io
