#include "io/json.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ksw::io {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c);
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<Array>();
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<Object>();
  return j;
}

Json& Json::push_back(Json v) {
  if (is_null()) value_ = std::make_shared<Array>();
  auto* arr = std::get_if<std::shared_ptr<Array>>(&value_);
  if (arr == nullptr)
    throw std::logic_error("Json::push_back: not an array");
  (*arr)->items.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (is_null()) value_ = std::make_shared<Object>();
  auto* obj = std::get_if<std::shared_ptr<Object>>(&value_);
  if (obj == nullptr) throw std::logic_error("Json::set: not an object");
  for (auto& member : (*obj)->members) {
    if (member.first == key) {
      member.second = std::move(v);
      return *this;
    }
  }
  (*obj)->members.emplace_back(key, std::move(v));
  return *this;
}

bool Json::is_null() const noexcept {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool Json::is_array() const noexcept {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool Json::is_object() const noexcept {
  return std::holds_alternative<std::shared_ptr<Object>>(value_);
}

std::size_t Json::size() const {
  if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_))
    return (*arr)->items.size();
  if (const auto* obj = std::get_if<std::shared_ptr<Object>>(&value_))
    return (*obj)->members.size();
  return 0;
}

namespace {

void write_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no NaN/inf
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    os << static_cast<long long>(d);
    return;
  }
  std::ostringstream tmp;
  tmp << std::setprecision(12) << d;
  os << tmp.str();
}

void write_pad(std::ostream& os, int indent, int depth) {
  if (indent > 0) {
    os << '\n';
    for (int i = 0; i < indent * depth; ++i) os << ' ';
  }
}

}  // namespace

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const auto* d = std::get_if<double>(&value_)) {
    write_number(os, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    os << '"' << json_escape(*s) << '"';
  } else if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_)) {
    const auto& items = (*arr)->items;
    if (items.empty()) {
      os << "[]";
      return;
    }
    os << '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) os << ',';
      write_pad(os, indent, depth + 1);
      items[i].write_impl(os, indent, depth + 1);
    }
    write_pad(os, indent, depth);
    os << ']';
  } else if (const auto* obj =
                 std::get_if<std::shared_ptr<Object>>(&value_)) {
    const auto& members = (*obj)->members;
    if (members.empty()) {
      os << "{}";
      return;
    }
    os << '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i) os << ',';
      write_pad(os, indent, depth + 1);
      os << '"' << json_escape(members[i].first) << "\":";
      if (indent > 0) os << ' ';
      members[i].second.write_impl(os, indent, depth + 1);
    }
    write_pad(os, indent, depth);
    os << '}';
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::to_string(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

}  // namespace ksw::io
