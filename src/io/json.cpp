#include "io/json.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ksw::io {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c);
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<Array>();
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<Object>();
  return j;
}

Json& Json::push_back(Json v) {
  if (is_null()) value_ = std::make_shared<Array>();
  auto* arr = std::get_if<std::shared_ptr<Array>>(&value_);
  if (arr == nullptr)
    throw std::logic_error("Json::push_back: not an array");
  (*arr)->items.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (is_null()) value_ = std::make_shared<Object>();
  auto* obj = std::get_if<std::shared_ptr<Object>>(&value_);
  if (obj == nullptr) throw std::logic_error("Json::set: not an object");
  for (auto& member : (*obj)->members) {
    if (member.first == key) {
      member.second = std::move(v);
      return *this;
    }
  }
  (*obj)->members.emplace_back(key, std::move(v));
  return *this;
}

bool Json::is_null() const noexcept {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool Json::is_bool() const noexcept {
  return std::holds_alternative<bool>(value_);
}

bool Json::is_number() const noexcept {
  return std::holds_alternative<double>(value_);
}

bool Json::is_string() const noexcept {
  return std::holds_alternative<std::string>(value_);
}

bool Json::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  throw std::invalid_argument("Json::as_bool: not a boolean");
}

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  throw std::invalid_argument("Json::as_double: not a number");
}

std::int64_t Json::as_int() const {
  const double d = as_double();
  if (d != std::floor(d) || std::abs(d) > 9.007199254740992e15)
    throw std::invalid_argument("Json::as_int: not an integer: " +
                                to_string());
  return static_cast<std::int64_t>(d);
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  throw std::invalid_argument("Json::as_string: not a string");
}

bool Json::contains(const std::string& key) const {
  const auto* obj = std::get_if<std::shared_ptr<Object>>(&value_);
  if (obj == nullptr) return false;
  for (const auto& member : (*obj)->members)
    if (member.first == key) return true;
  return false;
}

const Json& Json::at(const std::string& key) const {
  const auto* obj = std::get_if<std::shared_ptr<Object>>(&value_);
  if (obj == nullptr)
    throw std::invalid_argument("Json::at(\"" + key + "\"): not an object");
  for (const auto& member : (*obj)->members)
    if (member.first == key) return member.second;
  throw std::invalid_argument("Json::at: missing key \"" + key + "\"");
}

Json Json::get(const std::string& key) const {
  return contains(key) ? at(key) : Json();
}

std::vector<std::string> Json::keys() const {
  std::vector<std::string> out;
  if (const auto* obj = std::get_if<std::shared_ptr<Object>>(&value_))
    for (const auto& member : (*obj)->members) out.push_back(member.first);
  return out;
}

const Json& Json::at(std::size_t index) const {
  const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_);
  if (arr == nullptr)
    throw std::invalid_argument("Json::at(index): not an array");
  if (index >= (*arr)->items.size())
    throw std::invalid_argument("Json::at: index " + std::to_string(index) +
                                " out of range");
  return (*arr)->items[index];
}

bool Json::is_array() const noexcept {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool Json::is_object() const noexcept {
  return std::holds_alternative<std::shared_ptr<Object>>(value_);
}

std::size_t Json::size() const {
  if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_))
    return (*arr)->items.size();
  if (const auto* obj = std::get_if<std::shared_ptr<Object>>(&value_))
    return (*obj)->members.size();
  return 0;
}

namespace {

void write_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no NaN/inf
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    os << static_cast<long long>(d);
    return;
  }
  std::ostringstream tmp;
  tmp << std::setprecision(12) << d;
  os << tmp.str();
}

void write_pad(std::ostream& os, int indent, int depth) {
  if (indent > 0) {
    os << '\n';
    for (int i = 0; i < indent * depth; ++i) os << ' ';
  }
}

}  // namespace

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const auto* d = std::get_if<double>(&value_)) {
    write_number(os, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    os << '"' << json_escape(*s) << '"';
  } else if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&value_)) {
    const auto& items = (*arr)->items;
    if (items.empty()) {
      os << "[]";
      return;
    }
    os << '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) os << ',';
      write_pad(os, indent, depth + 1);
      items[i].write_impl(os, indent, depth + 1);
    }
    write_pad(os, indent, depth);
    os << ']';
  } else if (const auto* obj =
                 std::get_if<std::shared_ptr<Object>>(&value_)) {
    const auto& members = (*obj)->members;
    if (members.empty()) {
      os << "{}";
      return;
    }
    os << '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i) os << ',';
      write_pad(os, indent, depth + 1);
      os << '"' << json_escape(members[i].first) << "\":";
      if (indent > 0) os << ' ';
      members[i].second.write_impl(os, indent, depth + 1);
    }
    write_pad(os, indent, depth);
    os << '}';
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::to_string(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

/// Strict recursive-descent JSON reader over a string view of the input.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default:
        return Json(parse_number());
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      const std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate object key \"" + key + "\"");
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(std::string("bad escape '\\") + esc + "'");
      }
    }
  }

  /// Decode \uXXXX to UTF-8 (basic multilingual plane only; surrogate
  /// pairs are rejected — the manifests this parser serves are ASCII).
  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    if (code >= 0xd800 && code <= 0xdfff)
      fail("surrogate \\u escapes are not supported");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t first = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      return pos_ > first;
    };
    const std::size_t int_start = pos_;
    if (!digits()) fail("bad number");
    if (text_[int_start] == '0' && pos_ - int_start > 1)
      fail("bad number: leading zero");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad number: digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) fail("bad number: digits required in exponent");
    }
    return std::stod(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace ksw::io
