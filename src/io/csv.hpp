// Minimal CSV writer (RFC 4180 quoting) for exporting analysis and
// simulation results to spreadsheets / plotting scripts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ksw::io {

/// Row-oriented CSV document with a fixed header.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Start a new row; fill it with `add` calls. Rows shorter than the
  /// header are padded with empty fields on output; longer rows throw.
  CsvWriter& begin_row();
  CsvWriter& add(std::string value);
  CsvWriter& add(double value, int precision = 9);
  CsvWriter& add(std::int64_t value);
  CsvWriter& add(std::uint64_t value);

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

  /// Serialize with CRLF-free line endings ('\n').
  void write(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single CSV field per RFC 4180 (only when needed).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace ksw::io
