// Crash-safe file writing: temp file + fsync + atomic rename.
//
// A bare std::ofstream left a truncated artifact on disk when the process
// died mid-write (SIGINT, full disk, injected fault). atomic_write_file
// guarantees readers only ever see either the previous complete content
// or the new complete content — never a prefix.
#pragma once

#include <string>

namespace ksw::io {

/// Write `content` to `path` atomically: write to `<path>.tmp` in the same
/// directory, fsync, then rename over `path`. Parent directories are
/// created as needed. On any failure the temp file is removed, the
/// original `path` is left untouched, and ksw::Error(kIo) is thrown.
///
/// Fault-injection sites: "io.open" (temp-file creation) and "io.write"
/// (mid-write failure) — see docs/ROBUSTNESS.md.
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace ksw::io
