#include "io/csv.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ksw::io {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("CsvWriter: empty header");
}

CsvWriter& CsvWriter::begin_row() {
  rows_.emplace_back();
  return *this;
}

CsvWriter& CsvWriter::add(std::string value) {
  if (rows_.empty()) begin_row();
  if (rows_.back().size() >= header_.size())
    throw std::invalid_argument("CsvWriter::add: row wider than header");
  rows_.back().push_back(std::move(value));
  return *this;
}

CsvWriter& CsvWriter::add(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return add(os.str());
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  return add(std::to_string(value));
}

CsvWriter& CsvWriter::add(std::uint64_t value) {
  return add(std::to_string(value));
}

void CsvWriter::write(std::ostream& os) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) os << ',';
      if (c < row.size()) os << csv_escape(row[c]);
    }
    os << '\n';
  }
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace ksw::io
