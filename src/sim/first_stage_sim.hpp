// Cycle-accurate simulation of ONE k-input, s-output buffered switch —
// the queueing system analyzed exactly in Section II. Used to validate
// Theorem 1 (moments and full distribution) for every traffic class:
// uniform, bulk, nonuniform, and all service distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/xoshiro.hpp"
#include "sim/network.hpp"
#include "sim/service_spec.hpp"
#include "stats/histogram.hpp"
#include "stats/moment_tally.hpp"

namespace ksw::sim {

/// Configuration of the single-switch experiment.
struct FirstStageConfig {
  unsigned k = 2;  ///< input ports
  unsigned s = 2;  ///< output ports (= queues)
  double p = 0.5;  ///< per-input batch probability per cycle
  unsigned bulk = 1;
  /// Favorite-output probability: input i sends to output i mod s with
  /// probability q, uniformly otherwise (paper III-A-3, meaningful when
  /// k == s).
  double q = 0.0;
  /// Hot-spot extension, mirroring NetworkConfig: with this probability a
  /// batch targets `hotspot_target` regardless of q. hotspot_target must
  /// name a valid output (< s) on every construction path; the check runs
  /// even when hotspot == 0, like the network's validate_hotspot_target.
  double hotspot = 0.0;
  std::uint32_t hotspot_target = 0;
  ServiceSpec service = ServiceSpec::deterministic(1);
  std::int64_t warmup_cycles = 5'000;
  std::int64_t measure_cycles = 100'000;
  std::uint64_t seed = 1;

  /// Random-stream scheme, mirroring NetworkConfig::rng: counter-based
  /// Philox by default, the historic sequential xoshiro stream on demand.
  RngKind rng = RngKind::kPhilox;
};

/// Waiting-time statistics aggregated over all output queues.
struct FirstStageResults {
  stats::MomentTally waiting;      ///< per-message waiting time
  stats::IntHistogram histogram;   ///< waiting-time tally
  stats::MomentTally queue_depth;  ///< sampled queue length (Little check)
  std::uint64_t messages = 0;

  void merge(const FirstStageResults& other);
};

/// Run the single-switch simulation.
[[nodiscard]] FirstStageResults run_first_stage(const FirstStageConfig& cfg);

}  // namespace ksw::sim
