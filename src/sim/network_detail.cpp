#include "sim/network_detail.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace ksw::sim {

const char* to_string(FlowControl flow) noexcept {
  switch (flow) {
    case FlowControl::kCutThrough:
      return "vct";
    case FlowControl::kStoreAndForward:
      return "saf";
    case FlowControl::kCredit:
      return "credit";
  }
  return "?";
}

FlowControl parse_flow_control(const std::string& name) {
  if (name == "vct") return FlowControl::kCutThrough;
  if (name == "saf") return FlowControl::kStoreAndForward;
  if (name == "credit") return FlowControl::kCredit;
  throw std::invalid_argument("flow control: expected vct|saf|credit, got \"" +
                              name + "\"");
}

const char* to_string(RngKind rng) noexcept {
  switch (rng) {
    case RngKind::kPhilox:
      return "philox";
    case RngKind::kXoshiro:
      return "xoshiro";
  }
  return "?";
}

RngKind parse_rng_kind(const std::string& name) {
  if (name == "philox") return RngKind::kPhilox;
  if (name == "xoshiro") return RngKind::kXoshiro;
  throw std::invalid_argument("rng: expected philox|xoshiro, got \"" + name +
                              "\"");
}

}  // namespace ksw::sim

namespace ksw::sim::detail {

void FlowState::init(const NetworkConfig& cfg, unsigned stages,
                     std::uint32_t ports) {
  scheme = cfg.flow;
  capacity = cfg.buffer_capacity;
  latency = cfg.credit_latency;
  if (capacity == 0 || scheme != FlowControl::kCredit) return;
  credits_.assign(static_cast<std::size_t>(stages) * ports, capacity);
  // Ring of latency + 1 buckets: a return scheduled at t for t + latency is
  // drained before cycle t + latency schedules anything new into its slot.
  pending_.assign(latency + 1, {});
}

void FlowState::begin_cycle(std::int64_t t) {
  if (pending_.empty()) return;
  auto& bucket = pending_[static_cast<std::size_t>(
      t % static_cast<std::int64_t>(pending_.size()))];
  for (const std::uint32_t q : bucket) ++credits_[q];
  bucket.clear();
}

void validate(const NetworkConfig& cfg) {
  if (cfg.k < 2) throw std::invalid_argument("run_network: k must be >= 2");
  if (cfg.stages == 0)
    throw std::invalid_argument("run_network: stages must be >= 1");
  if (!(cfg.p >= 0.0 && cfg.p <= 1.0))
    throw std::invalid_argument("run_network: p outside [0,1]");
  if (!(cfg.q >= 0.0 && cfg.q <= 1.0))
    throw std::invalid_argument("run_network: q outside [0,1]");
  if (cfg.bulk == 0) throw std::invalid_argument("run_network: bulk == 0");
  if (!(cfg.hotspot >= 0.0 && cfg.hotspot <= 1.0))
    throw std::invalid_argument("run_network: hotspot outside [0,1]");
  if (cfg.track_correlations && cfg.stages > kMaxTrackedStages)
    throw std::invalid_argument(
        "run_network: correlation tracking limited to " +
        std::to_string(kMaxTrackedStages) + " stages");
  for (unsigned c : cfg.total_checkpoints)
    if (c == 0 || c > cfg.stages)
      throw std::invalid_argument(
          "run_network: total checkpoint outside [1, stages]");
  if (cfg.obs.enabled && cfg.obs.occupancy_buckets == 0)
    throw std::invalid_argument(
        "run_network: obs.occupancy_buckets must be >= 1");
  if (cfg.flow != FlowControl::kCutThrough && cfg.buffer_capacity == 0)
    throw std::invalid_argument(
        std::string("run_network: flow control \"") + to_string(cfg.flow) +
        "\" requires a finite buffer_capacity");
  if (cfg.flow == FlowControl::kCredit && cfg.credit_latency == 0)
    throw std::invalid_argument(
        "run_network: credit_latency must be >= 1");
}

void validate_hotspot_target(const NetworkConfig& cfg, std::uint32_t ports) {
  if (cfg.hotspot_target >= ports)
    throw std::invalid_argument(
        "run_network: hotspot_target " + std::to_string(cfg.hotspot_target) +
        " outside [0, ports) with ports = " + std::to_string(ports));
}

std::string stage_metric(unsigned stage, const char* what) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "sim.stage%02u.%s", stage, what);
  return buf;
}

void ObsState::init(const NetworkConfig& cfg, unsigned n,
                    std::int64_t total_cycles, NetworkResults& out) {
  on = obs::kEnabled && cfg.obs.enabled;
  tally.assign(on ? n : 0, StageTally{});
  if (on) {
    sobs.resize(n);
    for (unsigned s = 0; s < n; ++s) {
      const unsigned label = s + 1;
      sobs[s].occupancy =
          &out.metrics.histogram(stage_metric(label, "occupancy"), 0.0, 1.0,
                                 cfg.obs.occupancy_buckets);
      sobs[s].peak = &out.metrics.gauge(stage_metric(label, "peak_depth"));
      sobs[s].starts =
          &out.metrics.counter(stage_metric(label, "service_starts"));
      sobs[s].idle =
          &out.metrics.counter(stage_metric(label, "idle_samples"));
      sobs[s].busy =
          &out.metrics.counter(stage_metric(label, "busy_samples"));
      sobs[s].blocked =
          &out.metrics.counter(stage_metric(label, "blocked_transfers"));
      // Credit stalls are a kCredit-only breakdown of blocked_transfers;
      // registering the counter conditionally keeps every other run's
      // report byte-identical to what it was before credits existed.
      if (cfg.flow == FlowControl::kCredit)
        sobs[s].credit_stalls =
            &out.metrics.counter(stage_metric(label, "credit_stalls"));
    }
    dropped0 = &out.metrics.counter(stage_metric(1, "dropped"));
  }

  if (on && cfg.obs.trace_points > 0 && total_cycles > 0)
    for (unsigned j = 1; j <= cfg.obs.trace_points; ++j) {
      const std::int64_t c =
          total_cycles * static_cast<std::int64_t>(j) /
          static_cast<std::int64_t>(cfg.obs.trace_points);
      if (c > 0 && (conv_grid.empty() || c > conv_grid.back()))
        conv_grid.push_back(c);
    }
  trace_on = !conv_grid.empty();
  conv_sum.assign(trace_on ? n : 0, 0.0);
  conv_cnt.assign(trace_on ? n : 0, 0);
}

void ObsState::checkpoint(std::int64_t t, NetworkResults& out) {
  if (trace_on && next_cp < conv_grid.size() && t + 1 == conv_grid[next_cp]) {
    out.convergence.cycles.push_back(t + 1);
    out.convergence.wait_sum.push_back(conv_sum);
    out.convergence.wait_count.push_back(conv_cnt);
    ++next_cp;
  }
}

void ObsState::flush(std::int64_t warmup_end, std::int64_t total_cycles,
                     NetworkResults& out) const {
  if (!on) return;
  for (std::size_t s = 0; s < tally.size(); ++s) {
    sobs[s].starts->inc(tally[s].starts);
    sobs[s].idle->inc(tally[s].idle);
    sobs[s].busy->inc(tally[s].busy);
    sobs[s].blocked->inc(tally[s].blocked);
    if (sobs[s].credit_stalls != nullptr)
      sobs[s].credit_stalls->inc(tally[s].credit_stalls);
    sobs[s].peak->record_max(static_cast<double>(tally[s].peak));
  }
  // Drops only ever happen at first-stage injection, so the per-stage
  // counter equals the run total.
  dropped0->inc(out.packets_dropped);
  out.metrics.counter("sim.cycles.warmup")
      .inc(static_cast<std::uint64_t>(warmup_end));
  out.metrics.counter("sim.cycles.measure")
      .inc(static_cast<std::uint64_t>(total_cycles - warmup_end));
  out.metrics.counter("sim.replicates").inc(1);
  out.metrics.counter("sim.packets.injected").inc(out.packets_injected);
  out.metrics.counter("sim.packets.delivered").inc(out.packets_delivered);
  out.metrics.counter("sim.packets.dropped").inc(out.packets_dropped);
}

}  // namespace ksw::sim::detail
