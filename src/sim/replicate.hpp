// Parallel Monte-Carlo replication of simulations.
//
// R independent replicates are sharded into contiguous chunks, one per
// pool worker; each replicate's RNG stream is derived deterministically
// from (base seed, replicate index) alone, and results are merged in
// strict replicate-index order on the calling thread — so output is
// bit-identical for a fixed seed regardless of thread count or sharding.
#pragma once

#include <vector>

#include "par/thread_pool.hpp"
#include "sim/first_stage_sim.hpp"
#include "sim/network.hpp"

namespace ksw::sim {

/// Run `replicates` independent copies of the network simulation and merge.
[[nodiscard]] NetworkResults replicate_network(const NetworkConfig& base,
                                               unsigned replicates,
                                               par::ThreadPool& pool);

/// As above for the single-switch simulation.
[[nodiscard]] FirstStageResults replicate_first_stage(
    const FirstStageConfig& base, unsigned replicates, par::ThreadPool& pool);

/// Per-replicate mean total waiting time at the last checkpoint — feeds
/// stats::replicate_interval for confidence intervals.
[[nodiscard]] std::vector<double> replicate_network_means(
    const NetworkConfig& base, unsigned replicates, par::ThreadPool& pool,
    unsigned stage_index = 0);

/// Deterministic per-replicate seed derivation (exposed for tests).
[[nodiscard]] std::uint64_t replicate_seed(std::uint64_t base_seed,
                                           unsigned replicate);

}  // namespace ksw::sim
