// Reference network engine: the original array-of-structs cycle loop with
// full port sweeps, kept as a correctness oracle for the optimized engine
// in network.cpp. Every output — statistics, histograms, covariances, and
// telemetry — must be bit-identical between the two for any config; the
// equivalence test suite (tests/sim/engine_equivalence_test.cpp) enforces
// this. Keep this implementation boring: clarity over speed.
#include <algorithm>
#include <array>
#include <vector>

#include "obs/metrics.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro.hpp"
#include "sim/network.hpp"
#include "sim/network_detail.hpp"
#include "sim/ring_queue.hpp"
#include "sim/topology.hpp"
#include "simd/inject.hpp"

namespace ksw::sim {

namespace {

/// Full packet state, stage-waits array included, copied on every hop.
struct Packet {
  std::uint32_t dst = 0;
  std::uint32_t service = 1;
  std::int64_t arrival = 0;  // cycle available at the current queue
  std::int64_t born = 0;     // injection cycle (measurement gating)
  std::int32_t total_wait = 0;
  std::array<std::int32_t, kMaxTrackedStages> stage_waits{};
};

}  // namespace

NetworkResults run_network_reference(const NetworkConfig& cfg) {
  detail::validate(cfg);
  const Topology topo(cfg.topology, cfg.k, cfg.stages);
  const std::uint32_t ports = topo.ports();
  detail::validate_hotspot_target(cfg, ports);
  const unsigned n = cfg.stages;

  // Counter-mode injections evaluate the scalar oracle port by port —
  // the very definition the optimized engine's batched kernel must match.
  const bool philox = cfg.rng == RngKind::kPhilox;
  const simd::InjectParams inj = detail::make_inject_params(cfg, ports);
  rng::Xoshiro256 gen(cfg.seed);

  // queues[s][a]: the output queue at butterfly node (stage s, address a).
  std::vector<std::vector<RingQueue<Packet>>> queues(
      n, std::vector<RingQueue<Packet>>(ports));
  std::vector<std::vector<std::int64_t>> busy_until(
      n, std::vector<std::int64_t>(ports, 0));

  // Checkpoint lookup: after completing c stages, record into
  // total_wait[checkpoint_of[c]].
  std::vector<int> checkpoint_of(n + 1, -1);
  for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i)
    checkpoint_of[cfg.total_checkpoints[i]] = static_cast<int>(i);

  NetworkResults out;
  out.stage_wait.resize(n);
  out.stage_depth.resize(n);
  if (cfg.track_stage_histograms) out.stage_hist.resize(n);
  out.total_wait.resize(cfg.total_checkpoints.size());
  if (cfg.track_correlations) out.stage_covariance.emplace(n);

  std::vector<double> corr_scratch(n, 0.0);
  const std::int64_t total_cycles = cfg.warmup_cycles + cfg.measure_cycles;
  constexpr std::int64_t kDepthSampleStride = 64;
  const bool finite = cfg.buffer_capacity > 0;
  detail::FlowState flow;
  flow.init(cfg, n, ports);
  const bool credit_mode = finite && cfg.flow == FlowControl::kCredit;
  const auto qid = [ports](unsigned s, std::uint32_t a) {
    return static_cast<std::size_t>(s) * ports + a;
  };

  detail::ObsState ob;
  ob.init(cfg, n, total_cycles, out);
  const bool obs_on = ob.on;

  // One simulated cycle; called with strictly increasing t.
  const auto step = [&](const std::int64_t t) {
    flow.begin_cycle(t);

    // --- Injection at the first stage ------------------------------------
    const auto inject_from = [&](std::uint32_t src, std::uint32_t dst,
                                 auto&& sample_service) {
      (void)src;
      const std::uint32_t addr0 = topo.entry_queue(src, dst);
      for (unsigned b = 0; b < cfg.bulk; ++b) {
        if (finite && queues[0][addr0].size() >= cfg.buffer_capacity) {
          if (t >= cfg.warmup_cycles) ++out.packets_dropped;
          continue;
        }
        Packet pkt;
        pkt.dst = dst;
        pkt.service = sample_service();
        pkt.arrival = t;
        pkt.born = t;
        queues[0][addr0].push(pkt);
        if (obs_on)
          ob.tally[0].peak =
              std::max(ob.tally[0].peak, queues[0][addr0].size());
        if (t >= cfg.warmup_cycles) ++out.packets_injected;
      }
    };

    if (philox) {
      for (std::uint32_t src = 0; src < ports; ++src) {
        const std::uint32_t dst = simd::inject_one(inj, t, src);
        if (dst == simd::kNoArrival) continue;
        rng::LaneSeq svc(inj.key, t, src, rng::Site::kService);
        inject_from(src, dst, [&] { return cfg.service.sample(svc); });
      }
    } else {
      for (std::uint32_t src = 0; src < ports; ++src) {
        if (!gen.bernoulli(cfg.p)) continue;
        std::uint32_t dst;
        if (cfg.hotspot > 0.0 && gen.bernoulli(cfg.hotspot))
          dst = cfg.hotspot_target;
        else if (cfg.q > 0.0 && gen.bernoulli(cfg.q))
          dst = src;
        else
          dst = static_cast<std::uint32_t>(gen.uniform_int(ports));
        inject_from(src, dst, [&] { return cfg.service.sample(gen); });
      }
    }

    // --- Service, stage by stage -----------------------------------------
    for (unsigned s = 0; s < n; ++s) {
      auto& stage_queues = queues[s];
      auto& stage_busy = busy_until[s];
      for (std::uint32_t a = 0; a < ports; ++a) {
        if (stage_busy[a] > t) continue;
        auto& queue = stage_queues[a];
        if (queue.empty()) continue;
        Packet& head = queue.front();
        if (head.arrival > t) continue;  // delivered later this cycle

        std::uint32_t next_addr = 0;
        if (s + 1 < n) {
          next_addr = topo.next_queue(s, a, head.dst);
          // Finite buffers: block upstream service when the flow-control
          // scheme denies the transfer (full downstream queue, or no
          // credit under kCredit).
          if (finite && !flow.admit(qid(s + 1, next_addr),
                                    queues[s + 1][next_addr].size())) {
            if (obs_on && t >= cfg.warmup_cycles) {
              ++ob.tally[s].blocked;
              if (credit_mode) ++ob.tally[s].credit_stalls;
            }
            continue;
          }
        }

        const std::int64_t w = t - head.arrival;
        if (ob.trace_on) {
          ob.conv_sum[s] += static_cast<double>(w);
          ++ob.conv_cnt[s];
        }
        if (obs_on && t >= cfg.warmup_cycles) ++ob.tally[s].starts;
        const bool measured = head.born >= cfg.warmup_cycles;
        if (measured) {
          out.stage_wait[s].add(w);
          if (cfg.track_stage_histograms) out.stage_hist[s].add(w);
          head.total_wait += static_cast<std::int32_t>(w);
          if (cfg.track_correlations)
            head.stage_waits[s] = static_cast<std::int32_t>(w);
          const int cp = checkpoint_of[s + 1];
          if (cp >= 0) out.total_wait[static_cast<std::size_t>(cp)].add(
              head.total_wait);
        }

        stage_busy[a] = t + head.service;
        if (finite) flow.on_service_start(s, qid(s, a), t);
        if (s + 1 < n) {
          Packet moved = head;
          moved.arrival = flow.arrival_stamp(t, head.service);
          queue.pop();
          if (finite) flow.on_forward(qid(s + 1, next_addr));
          queues[s + 1][next_addr].push(moved);
          if (obs_on)
            ob.tally[s + 1].peak = std::max(
                ob.tally[s + 1].peak, queues[s + 1][next_addr].size());
        } else {
          if (measured) {
            ++out.packets_delivered;
            if (cfg.track_correlations) {
              for (unsigned i = 0; i < n; ++i)
                corr_scratch[i] = static_cast<double>(head.stage_waits[i]);
              out.stage_covariance->add(corr_scratch);
            }
          }
          queue.pop();
        }
      }
    }

    // --- Occupancy sampling ----------------------------------------------
    if (t >= cfg.warmup_cycles && t % kDepthSampleStride == 0)
      for (unsigned s = 0; s < n; ++s)
        for (std::uint32_t a = 0; a < ports; ++a) {
          // Exclude packets still in flight on the inter-stage link
          // (cut-through arrivals stamped t + 1); they sit at the tail.
          const auto& queue = queues[s][a];
          std::size_t present = queue.size();
          while (present > 0 && queue.at(present - 1).arrival > t) --present;
          out.stage_depth[s].add(static_cast<std::int64_t>(present));
        }

    // --- Telemetry sampling (occupancy histograms, server utilization) ---
    if (obs_on && cfg.obs.stride != 0 && t >= cfg.warmup_cycles &&
        t % static_cast<std::int64_t>(cfg.obs.stride) == 0)
      for (unsigned s = 0; s < n; ++s) {
        detail::StageObs& so = ob.sobs[s];
        for (std::uint32_t a = 0; a < ports; ++a) {
          const auto& queue = queues[s][a];
          std::size_t present = queue.size();
          while (present > 0 && queue.at(present - 1).arrival > t) --present;
          so.occupancy->record(static_cast<double>(present));
          if (busy_until[s][a] > t)
            ++ob.tally[s].busy;
          else
            ++ob.tally[s].idle;
        }
      }

    // --- Convergence checkpoint ------------------------------------------
    ob.checkpoint(t, out);
  };

  // --- Phased main loop: warmup then measurement, each timed -------------
  const std::int64_t warmup_end =
      std::clamp<std::int64_t>(cfg.warmup_cycles, 0, total_cycles);
  {
    obs::ScopedTimer timer(
        obs_on ? &out.metrics.timer("sim.phase.warmup") : nullptr);
    for (std::int64_t t = 0; t < warmup_end; ++t) step(t);
  }
  {
    obs::ScopedTimer timer(
        obs_on ? &out.metrics.timer("sim.phase.measure") : nullptr);
    for (std::int64_t t = warmup_end; t < total_cycles; ++t) step(t);
  }

  ob.flush(warmup_end, total_cycles, out);
  return out;
}

}  // namespace ksw::sim
