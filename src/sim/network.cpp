#include "sim/network.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "rng/xoshiro.hpp"
#include "sim/ring_queue.hpp"
#include "sim/topology.hpp"

namespace ksw::sim {

namespace {

struct Packet {
  std::uint32_t dst = 0;
  std::uint32_t service = 1;
  std::int64_t arrival = 0;  // cycle available at the current queue
  std::int64_t born = 0;     // injection cycle (measurement gating)
  std::int32_t total_wait = 0;
  std::array<std::int32_t, kMaxTrackedStages> stage_waits{};
};

void validate(const NetworkConfig& cfg) {
  if (cfg.k < 2) throw std::invalid_argument("run_network: k must be >= 2");
  if (cfg.stages == 0)
    throw std::invalid_argument("run_network: stages must be >= 1");
  if (!(cfg.p >= 0.0 && cfg.p <= 1.0))
    throw std::invalid_argument("run_network: p outside [0,1]");
  if (!(cfg.q >= 0.0 && cfg.q <= 1.0))
    throw std::invalid_argument("run_network: q outside [0,1]");
  if (cfg.bulk == 0) throw std::invalid_argument("run_network: bulk == 0");
  if (!(cfg.hotspot >= 0.0 && cfg.hotspot <= 1.0))
    throw std::invalid_argument("run_network: hotspot outside [0,1]");
  if (cfg.track_correlations && cfg.stages > kMaxTrackedStages)
    throw std::invalid_argument(
        "run_network: correlation tracking limited to 16 stages");
  for (unsigned c : cfg.total_checkpoints)
    if (c == 0 || c > cfg.stages)
      throw std::invalid_argument(
          "run_network: total checkpoint outside [1, stages]");
}

}  // namespace

void NetworkResults::merge(const NetworkResults& other) {
  if (stage_wait.size() != other.stage_wait.size() ||
      total_wait.size() != other.total_wait.size())
    throw std::invalid_argument("NetworkResults::merge: shape mismatch");
  for (std::size_t i = 0; i < stage_wait.size(); ++i) {
    stage_wait[i].merge(other.stage_wait[i]);
    stage_depth[i].merge(other.stage_depth[i]);
  }
  if (stage_hist.size() == other.stage_hist.size())
    for (std::size_t i = 0; i < stage_hist.size(); ++i)
      stage_hist[i].merge(other.stage_hist[i]);
  for (std::size_t i = 0; i < total_wait.size(); ++i)
    total_wait[i].merge(other.total_wait[i]);
  if (stage_covariance && other.stage_covariance)
    stage_covariance->merge(*other.stage_covariance);
  packets_injected += other.packets_injected;
  packets_delivered += other.packets_delivered;
  packets_dropped += other.packets_dropped;
}

NetworkResults run_network(const NetworkConfig& cfg) {
  validate(cfg);
  const Topology topo(cfg.topology, cfg.k, cfg.stages);
  const std::uint32_t ports = topo.ports();
  const unsigned n = cfg.stages;

  rng::Xoshiro256 gen(cfg.seed);

  // queues[s][a]: the output queue at butterfly node (stage s, address a).
  std::vector<std::vector<RingQueue<Packet>>> queues(
      n, std::vector<RingQueue<Packet>>(ports));
  std::vector<std::vector<std::int64_t>> busy_until(
      n, std::vector<std::int64_t>(ports, 0));

  // Checkpoint lookup: after completing c stages, record into
  // total_wait[checkpoint_of[c]].
  std::vector<int> checkpoint_of(n + 1, -1);
  for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i)
    checkpoint_of[cfg.total_checkpoints[i]] = static_cast<int>(i);

  NetworkResults out;
  out.stage_wait.resize(n);
  out.stage_depth.resize(n);
  if (cfg.track_stage_histograms) out.stage_hist.resize(n);
  out.total_wait.resize(cfg.total_checkpoints.size());
  if (cfg.track_correlations) out.stage_covariance.emplace(n);

  std::vector<double> corr_scratch(n, 0.0);
  const std::int64_t total_cycles = cfg.warmup_cycles + cfg.measure_cycles;
  constexpr std::int64_t kDepthSampleStride = 64;
  const bool finite = cfg.buffer_capacity > 0;

  for (std::int64_t t = 0; t < total_cycles; ++t) {
    // --- Injection at the first stage ------------------------------------
    for (std::uint32_t src = 0; src < ports; ++src) {
      if (!gen.bernoulli(cfg.p)) continue;
      std::uint32_t dst;
      if (cfg.hotspot > 0.0 && gen.bernoulli(cfg.hotspot))
        dst = cfg.hotspot_target % ports;
      else if (cfg.q > 0.0 && gen.bernoulli(cfg.q))
        dst = src;
      else
        dst = static_cast<std::uint32_t>(gen.uniform_int(ports));
      const std::uint32_t addr0 = topo.entry_queue(src, dst);
      for (unsigned b = 0; b < cfg.bulk; ++b) {
        if (finite && queues[0][addr0].size() >= cfg.buffer_capacity) {
          if (t >= cfg.warmup_cycles) ++out.packets_dropped;
          continue;
        }
        Packet pkt;
        pkt.dst = dst;
        pkt.service = cfg.service.sample(gen);
        pkt.arrival = t;
        pkt.born = t;
        queues[0][addr0].push(pkt);
        if (t >= cfg.warmup_cycles) ++out.packets_injected;
      }
    }

    // --- Service, stage by stage -----------------------------------------
    for (unsigned s = 0; s < n; ++s) {
      auto& stage_queues = queues[s];
      auto& stage_busy = busy_until[s];
      for (std::uint32_t a = 0; a < ports; ++a) {
        if (stage_busy[a] > t) continue;
        auto& queue = stage_queues[a];
        if (queue.empty()) continue;
        Packet& head = queue.front();
        if (head.arrival > t) continue;  // delivered later this cycle

        std::uint32_t next_addr = 0;
        if (s + 1 < n) {
          next_addr = topo.next_queue(s, a, head.dst);
          // Finite buffers: block upstream service on a full downstream
          // queue (backpressure).
          if (finite && queues[s + 1][next_addr].size() >= cfg.buffer_capacity)
            continue;
        }

        const std::int64_t w = t - head.arrival;
        const bool measured = head.born >= cfg.warmup_cycles;
        if (measured) {
          out.stage_wait[s].add(static_cast<double>(w));
          if (cfg.track_stage_histograms) out.stage_hist[s].add(w);
          head.total_wait += static_cast<std::int32_t>(w);
          if (cfg.track_correlations)
            head.stage_waits[s] = static_cast<std::int32_t>(w);
          const int cp = checkpoint_of[s + 1];
          if (cp >= 0) out.total_wait[static_cast<std::size_t>(cp)].add(
              head.total_wait);
        }

        stage_busy[a] = t + head.service;
        if (s + 1 < n) {
          Packet moved = head;
          moved.arrival = t + 1;
          queue.pop();
          queues[s + 1][next_addr].push(moved);
        } else {
          if (measured) {
            ++out.packets_delivered;
            if (cfg.track_correlations) {
              for (unsigned i = 0; i < n; ++i)
                corr_scratch[i] = static_cast<double>(head.stage_waits[i]);
              out.stage_covariance->add(corr_scratch);
            }
          }
          queue.pop();
        }
      }
    }

    // --- Occupancy sampling ----------------------------------------------
    if (t >= cfg.warmup_cycles && t % kDepthSampleStride == 0)
      for (unsigned s = 0; s < n; ++s)
        for (std::uint32_t a = 0; a < ports; ++a) {
          // Exclude packets still in flight on the inter-stage link
          // (cut-through arrivals stamped t + 1); they sit at the tail.
          const auto& queue = queues[s][a];
          std::size_t present = queue.size();
          while (present > 0 && queue.at(present - 1).arrival > t) --present;
          out.stage_depth[s].add(static_cast<double>(present));
        }
  }
  return out;
}

}  // namespace ksw::sim
