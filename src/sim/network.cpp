#include "sim/network.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "rng/xoshiro.hpp"
#include "sim/ring_queue.hpp"
#include "sim/topology.hpp"

namespace ksw::sim {

namespace {

struct Packet {
  std::uint32_t dst = 0;
  std::uint32_t service = 1;
  std::int64_t arrival = 0;  // cycle available at the current queue
  std::int64_t born = 0;     // injection cycle (measurement gating)
  std::int32_t total_wait = 0;
  std::array<std::int32_t, kMaxTrackedStages> stage_waits{};
};

void validate(const NetworkConfig& cfg) {
  if (cfg.k < 2) throw std::invalid_argument("run_network: k must be >= 2");
  if (cfg.stages == 0)
    throw std::invalid_argument("run_network: stages must be >= 1");
  if (!(cfg.p >= 0.0 && cfg.p <= 1.0))
    throw std::invalid_argument("run_network: p outside [0,1]");
  if (!(cfg.q >= 0.0 && cfg.q <= 1.0))
    throw std::invalid_argument("run_network: q outside [0,1]");
  if (cfg.bulk == 0) throw std::invalid_argument("run_network: bulk == 0");
  if (!(cfg.hotspot >= 0.0 && cfg.hotspot <= 1.0))
    throw std::invalid_argument("run_network: hotspot outside [0,1]");
  if (cfg.track_correlations && cfg.stages > kMaxTrackedStages)
    throw std::invalid_argument(
        "run_network: correlation tracking limited to 16 stages");
  for (unsigned c : cfg.total_checkpoints)
    if (c == 0 || c > cfg.stages)
      throw std::invalid_argument(
          "run_network: total checkpoint outside [1, stages]");
  if (cfg.obs.enabled && cfg.obs.occupancy_buckets == 0)
    throw std::invalid_argument(
        "run_network: obs.occupancy_buckets must be >= 1");
}

/// "sim.stageNN.<what>" — stages are 1-based and zero-padded so the
/// registry's name order matches stage order.
std::string stage_metric(unsigned stage, const char* what) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "sim.stage%02u.%s", stage, what);
  return buf;
}

/// Cached per-stage metric handles so the hot loop never touches the
/// registry's map.
struct StageObs {
  obs::Histogram* occupancy = nullptr;
  obs::Gauge* peak = nullptr;
  obs::Counter* starts = nullptr;
  obs::Counter* idle = nullptr;
  obs::Counter* busy = nullptr;
  obs::Counter* blocked = nullptr;
};

/// Per-stage event tallies kept in plain (non-atomic) locals during the
/// cycle loop — the replicate is single-threaded, so deferring the atomic
/// registry updates to one flush after the run keeps the per-event cost to
/// an ordinary increment. Flushed into StageObs by run_network.
struct StageTally {
  std::uint64_t starts = 0;
  std::uint64_t idle = 0;
  std::uint64_t busy = 0;
  std::uint64_t blocked = 0;
  std::size_t peak = 0;
};

}  // namespace

void NetworkResults::merge(const NetworkResults& other) {
  if (stage_wait.size() != other.stage_wait.size() ||
      total_wait.size() != other.total_wait.size())
    throw std::invalid_argument("NetworkResults::merge: shape mismatch");
  for (std::size_t i = 0; i < stage_wait.size(); ++i) {
    stage_wait[i].merge(other.stage_wait[i]);
    stage_depth[i].merge(other.stage_depth[i]);
  }
  if (stage_hist.size() == other.stage_hist.size())
    for (std::size_t i = 0; i < stage_hist.size(); ++i)
      stage_hist[i].merge(other.stage_hist[i]);
  for (std::size_t i = 0; i < total_wait.size(); ++i)
    total_wait[i].merge(other.total_wait[i]);
  if (stage_covariance && other.stage_covariance)
    stage_covariance->merge(*other.stage_covariance);
  packets_injected += other.packets_injected;
  packets_delivered += other.packets_delivered;
  packets_dropped += other.packets_dropped;
  metrics.merge(other.metrics);
  convergence.merge(other.convergence);
}

NetworkResults run_network(const NetworkConfig& cfg) {
  validate(cfg);
  const Topology topo(cfg.topology, cfg.k, cfg.stages);
  const std::uint32_t ports = topo.ports();
  const unsigned n = cfg.stages;

  rng::Xoshiro256 gen(cfg.seed);

  // queues[s][a]: the output queue at butterfly node (stage s, address a).
  std::vector<std::vector<RingQueue<Packet>>> queues(
      n, std::vector<RingQueue<Packet>>(ports));
  std::vector<std::vector<std::int64_t>> busy_until(
      n, std::vector<std::int64_t>(ports, 0));

  // Checkpoint lookup: after completing c stages, record into
  // total_wait[checkpoint_of[c]].
  std::vector<int> checkpoint_of(n + 1, -1);
  for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i)
    checkpoint_of[cfg.total_checkpoints[i]] = static_cast<int>(i);

  NetworkResults out;
  out.stage_wait.resize(n);
  out.stage_depth.resize(n);
  if (cfg.track_stage_histograms) out.stage_hist.resize(n);
  out.total_wait.resize(cfg.total_checkpoints.size());
  if (cfg.track_correlations) out.stage_covariance.emplace(n);

  std::vector<double> corr_scratch(n, 0.0);
  const std::int64_t total_cycles = cfg.warmup_cycles + cfg.measure_cycles;
  constexpr std::int64_t kDepthSampleStride = 64;
  const bool finite = cfg.buffer_capacity > 0;

  // --- Telemetry setup (all dead code when compiled out) -----------------
  const bool obs_on = obs::kEnabled && cfg.obs.enabled;
  std::vector<StageObs> sobs;
  std::vector<StageTally> tally(obs_on ? n : 0);
  obs::Counter* dropped0 = nullptr;
  if (obs_on) {
    sobs.resize(n);
    for (unsigned s = 0; s < n; ++s) {
      const unsigned label = s + 1;
      sobs[s].occupancy =
          &out.metrics.histogram(stage_metric(label, "occupancy"), 0.0, 1.0,
                                 cfg.obs.occupancy_buckets);
      sobs[s].peak = &out.metrics.gauge(stage_metric(label, "peak_depth"));
      sobs[s].starts =
          &out.metrics.counter(stage_metric(label, "service_starts"));
      sobs[s].idle =
          &out.metrics.counter(stage_metric(label, "idle_samples"));
      sobs[s].busy =
          &out.metrics.counter(stage_metric(label, "busy_samples"));
      sobs[s].blocked =
          &out.metrics.counter(stage_metric(label, "blocked_transfers"));
    }
    dropped0 = &out.metrics.counter(stage_metric(1, "dropped"));
  }

  // Warmup-convergence trace: cumulative per-stage wait sums (warmup
  // included) snapshotted on an even grid over the whole run.
  std::vector<std::int64_t> conv_grid;
  if (obs_on && cfg.obs.trace_points > 0 && total_cycles > 0)
    for (unsigned j = 1; j <= cfg.obs.trace_points; ++j) {
      const std::int64_t c =
          total_cycles * static_cast<std::int64_t>(j) /
          static_cast<std::int64_t>(cfg.obs.trace_points);
      if (c > 0 && (conv_grid.empty() || c > conv_grid.back()))
        conv_grid.push_back(c);
    }
  const bool trace_on = !conv_grid.empty();
  std::vector<double> conv_sum(trace_on ? n : 0, 0.0);
  std::vector<std::uint64_t> conv_cnt(trace_on ? n : 0, 0);
  std::size_t next_cp = 0;

  // One simulated cycle; called with strictly increasing t.
  const auto step = [&](const std::int64_t t) {
    // --- Injection at the first stage ------------------------------------
    for (std::uint32_t src = 0; src < ports; ++src) {
      if (!gen.bernoulli(cfg.p)) continue;
      std::uint32_t dst;
      if (cfg.hotspot > 0.0 && gen.bernoulli(cfg.hotspot))
        dst = cfg.hotspot_target % ports;
      else if (cfg.q > 0.0 && gen.bernoulli(cfg.q))
        dst = src;
      else
        dst = static_cast<std::uint32_t>(gen.uniform_int(ports));
      const std::uint32_t addr0 = topo.entry_queue(src, dst);
      for (unsigned b = 0; b < cfg.bulk; ++b) {
        if (finite && queues[0][addr0].size() >= cfg.buffer_capacity) {
          if (t >= cfg.warmup_cycles) ++out.packets_dropped;
          continue;
        }
        Packet pkt;
        pkt.dst = dst;
        pkt.service = cfg.service.sample(gen);
        pkt.arrival = t;
        pkt.born = t;
        queues[0][addr0].push(pkt);
        if (obs_on)
          tally[0].peak = std::max(tally[0].peak, queues[0][addr0].size());
        if (t >= cfg.warmup_cycles) ++out.packets_injected;
      }
    }

    // --- Service, stage by stage -----------------------------------------
    for (unsigned s = 0; s < n; ++s) {
      auto& stage_queues = queues[s];
      auto& stage_busy = busy_until[s];
      for (std::uint32_t a = 0; a < ports; ++a) {
        if (stage_busy[a] > t) continue;
        auto& queue = stage_queues[a];
        if (queue.empty()) continue;
        Packet& head = queue.front();
        if (head.arrival > t) continue;  // delivered later this cycle

        std::uint32_t next_addr = 0;
        if (s + 1 < n) {
          next_addr = topo.next_queue(s, a, head.dst);
          // Finite buffers: block upstream service on a full downstream
          // queue (backpressure).
          if (finite &&
              queues[s + 1][next_addr].size() >= cfg.buffer_capacity) {
            if (obs_on && t >= cfg.warmup_cycles) ++tally[s].blocked;
            continue;
          }
        }

        const std::int64_t w = t - head.arrival;
        if (trace_on) {
          conv_sum[s] += static_cast<double>(w);
          ++conv_cnt[s];
        }
        if (obs_on && t >= cfg.warmup_cycles) ++tally[s].starts;
        const bool measured = head.born >= cfg.warmup_cycles;
        if (measured) {
          out.stage_wait[s].add(static_cast<double>(w));
          if (cfg.track_stage_histograms) out.stage_hist[s].add(w);
          head.total_wait += static_cast<std::int32_t>(w);
          if (cfg.track_correlations)
            head.stage_waits[s] = static_cast<std::int32_t>(w);
          const int cp = checkpoint_of[s + 1];
          if (cp >= 0) out.total_wait[static_cast<std::size_t>(cp)].add(
              head.total_wait);
        }

        stage_busy[a] = t + head.service;
        if (s + 1 < n) {
          Packet moved = head;
          moved.arrival = t + 1;
          queue.pop();
          queues[s + 1][next_addr].push(moved);
          if (obs_on)
            tally[s + 1].peak =
                std::max(tally[s + 1].peak, queues[s + 1][next_addr].size());
        } else {
          if (measured) {
            ++out.packets_delivered;
            if (cfg.track_correlations) {
              for (unsigned i = 0; i < n; ++i)
                corr_scratch[i] = static_cast<double>(head.stage_waits[i]);
              out.stage_covariance->add(corr_scratch);
            }
          }
          queue.pop();
        }
      }
    }

    // --- Occupancy sampling ----------------------------------------------
    if (t >= cfg.warmup_cycles && t % kDepthSampleStride == 0)
      for (unsigned s = 0; s < n; ++s)
        for (std::uint32_t a = 0; a < ports; ++a) {
          // Exclude packets still in flight on the inter-stage link
          // (cut-through arrivals stamped t + 1); they sit at the tail.
          const auto& queue = queues[s][a];
          std::size_t present = queue.size();
          while (present > 0 && queue.at(present - 1).arrival > t) --present;
          out.stage_depth[s].add(static_cast<double>(present));
        }

    // --- Telemetry sampling (occupancy histograms, server utilization) ---
    if (obs_on && cfg.obs.stride != 0 && t >= cfg.warmup_cycles &&
        t % static_cast<std::int64_t>(cfg.obs.stride) == 0)
      for (unsigned s = 0; s < n; ++s) {
        StageObs& so = sobs[s];
        for (std::uint32_t a = 0; a < ports; ++a) {
          const auto& queue = queues[s][a];
          std::size_t present = queue.size();
          while (present > 0 && queue.at(present - 1).arrival > t) --present;
          so.occupancy->record(static_cast<double>(present));
          if (busy_until[s][a] > t)
            ++tally[s].busy;
          else
            ++tally[s].idle;
        }
      }

    // --- Convergence checkpoint ------------------------------------------
    if (trace_on && next_cp < conv_grid.size() &&
        t + 1 == conv_grid[next_cp]) {
      out.convergence.cycles.push_back(t + 1);
      out.convergence.wait_sum.push_back(conv_sum);
      out.convergence.wait_count.push_back(conv_cnt);
      ++next_cp;
    }
  };

  // --- Phased main loop: warmup then measurement, each timed -------------
  const std::int64_t warmup_end =
      std::clamp<std::int64_t>(cfg.warmup_cycles, 0, total_cycles);
  {
    obs::ScopedTimer timer(
        obs_on ? &out.metrics.timer("sim.phase.warmup") : nullptr);
    for (std::int64_t t = 0; t < warmup_end; ++t) step(t);
  }
  {
    obs::ScopedTimer timer(
        obs_on ? &out.metrics.timer("sim.phase.measure") : nullptr);
    for (std::int64_t t = warmup_end; t < total_cycles; ++t) step(t);
  }

  if (obs_on) {
    for (unsigned s = 0; s < n; ++s) {
      sobs[s].starts->inc(tally[s].starts);
      sobs[s].idle->inc(tally[s].idle);
      sobs[s].busy->inc(tally[s].busy);
      sobs[s].blocked->inc(tally[s].blocked);
      sobs[s].peak->record_max(static_cast<double>(tally[s].peak));
    }
    // Drops only ever happen at first-stage injection, so the per-stage
    // counter equals the run total.
    dropped0->inc(out.packets_dropped);
    out.metrics.counter("sim.cycles.warmup")
        .inc(static_cast<std::uint64_t>(warmup_end));
    out.metrics.counter("sim.cycles.measure")
        .inc(static_cast<std::uint64_t>(total_cycles - warmup_end));
    out.metrics.counter("sim.replicates").inc(1);
    out.metrics.counter("sim.packets.injected").inc(out.packets_injected);
    out.metrics.counter("sim.packets.delivered").inc(out.packets_delivered);
    out.metrics.counter("sim.packets.dropped").inc(out.packets_dropped);
  }
  return out;
}

}  // namespace ksw::sim
