// Optimized network engine: flat structure-of-arrays queue pool, hot/cold
// packet split, and active-set scheduling. Produces bit-identical results
// (statistics, histograms, covariances, telemetry) to the seed engine kept
// in network_reference.cpp; tests/sim/engine_equivalence_test.cpp enforces
// the equivalence.
//
// Layout decisions, in order of measured impact:
//   * Packet is 32 bytes: the 16-entry stage_waits array the seed engine
//     copied on every hop lives in a side table (CorrTable) allocated only
//     when cfg.track_correlations is set; hot packets carry an index.
//   * All stages x ports queues live in one QueuePool — flat metadata
//     arrays indexed by stage * ports + port, element storage carved from
//     a shared arena (see queue_pool.hpp).
//   * Each stage keeps an ActiveSet (occupied/busy bitmaps + busy-expiry
//     heap), so the per-cycle service scan touches only occupied,
//     non-busy ports instead of sweeping the whole topology. Bits are
//     walked in ascending port order — the exact order of the seed
//     engine's full sweep, which is what makes bit-identity possible.
#include "sim/network.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro.hpp"
#include "sim/active_set.hpp"
#include "sim/network_detail.hpp"
#include "sim/queue_pool.hpp"
#include "sim/topology.hpp"
#include "simd/inject.hpp"

namespace ksw::sim {

namespace {

/// Hot per-packet state; one ring-buffer slot, copied on every hop.
struct Packet {
  std::int64_t arrival = 0;  // cycle available at the current queue
  std::int64_t born = 0;     // injection cycle (measurement gating)
  std::uint32_t dst = 0;
  std::uint32_t service = 1;
  std::int32_t total_wait = 0;
  std::uint32_t corr = 0;  // CorrTable row (track_correlations only)
};
static_assert(sizeof(Packet) <= 32, "Packet must stay hot-loop sized");

/// Side table of per-stage waits for in-flight packets, allocated only in
/// correlation-tracking runs. Rows are recycled through a free list; a row
/// is live from injection to delivery.
class CorrTable {
 public:
  explicit CorrTable(unsigned stages) : stages_(stages) {}

  std::uint32_t allocate() {
    if (free_.empty()) {
      const std::uint32_t r = rows_++;
      pool_.resize(static_cast<std::size_t>(rows_) * stages_, 0);
      return r;
    }
    const std::uint32_t r = free_.back();
    free_.pop_back();
    std::fill_n(row(r), stages_, 0);
    return r;
  }

  void release(std::uint32_t r) { free_.push_back(r); }

  /// Pointer valid until the next allocate().
  [[nodiscard]] std::int32_t* row(std::uint32_t r) noexcept {
    return pool_.data() + static_cast<std::size_t>(r) * stages_;
  }

 private:
  unsigned stages_;
  std::uint32_t rows_ = 0;
  std::vector<std::int32_t> pool_;
  std::vector<std::uint32_t> free_;
};


/// Compact hot-loop packet for the specialized engine below: with unit
/// service and no correlation row, 16 bytes cover everything a hop needs,
/// so a fresh queue's whole ring (4 slots) is a single cache line. Cycle
/// stamps are 32-bit; the engine is only selected when the run length
/// fits (see fast_engine_eligible).
struct FastPacket {
  std::uint32_t arrival = 0;  // cycle available at the current queue
  std::uint32_t born = 0;     // injection cycle (measurement gating)
  std::uint32_t dst = 0;
  std::int32_t total_wait = 0;
};
static_assert(sizeof(FastPacket) == 16,
              "FastPacket must stay a quarter cache line");

/// May run_network dispatch cfg to the specialized engine? Counter-mode
/// RNG, infinite buffers, unit service, every optional instrument off —
/// the throughput-gate workload and the bulk of the reproduction book.
[[nodiscard]] bool fast_engine_eligible(const NetworkConfig& cfg) {
  return cfg.rng == RngKind::kPhilox && cfg.buffer_capacity == 0 &&
         cfg.service.is_unit() && !(obs::kEnabled && cfg.obs.enabled) &&
         !cfg.track_correlations && !cfg.track_stage_histograms &&
         cfg.warmup_cycles + cfg.measure_cycles <
             std::int64_t{std::numeric_limits<std::uint32_t>::max()};
}

/// Specialized cycle engine for fast_engine_eligible configs. Strips every
/// disabled-feature branch from the generic loop and restructures each
/// stage's service walk into a chunked two-pass sweep over a materialized
/// candidate list:
///
///   pass A reads each head (ring slots prefetched kLookahead queues
///   ahead), records waits, and builds the re-stamped outgoing packet;
///   pass B pops and pushes one block later, while those lines are still
///   resident.
///
/// The split is order-equivalent to the interleaved generic loop: pass A
/// only reads stage-s queues, pass B's pops (stage s) and pushes (stage
/// s+1) touch disjoint queues, pushes keep ascending-port order (the
/// downstream FIFO interleave), and every statistic is an exact integer
/// merge — so results are bit-identical to the generic engine;
/// tests/sim/engine_equivalence_test.cpp enforces this.
NetworkResults run_network_fast(const NetworkConfig& cfg,
                                const Topology& topo,
                                const simd::InjectParams& inj) {
  const std::uint32_t ports = topo.ports();
  const unsigned n = cfg.stages;
  QueuePool<FastPacket> pool(static_cast<std::size_t>(n) * ports);
  std::vector<ActiveSet> active(n, ActiveSet(ports));

  std::vector<int> checkpoint_of(n + 1, -1);
  for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i)
    checkpoint_of[cfg.total_checkpoints[i]] = static_cast<int>(i);

  NetworkResults out;
  out.stage_wait.resize(n);
  out.stage_depth.resize(n);
  out.total_wait.resize(cfg.total_checkpoints.size());

  const std::int64_t total_cycles = cfg.warmup_cycles + cfg.measure_cycles;
  const auto warmup = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(cfg.warmup_cycles, 0, total_cycles));
  constexpr std::int64_t kDepthSampleStride = 64;
  // Swept on the bench workload (k=4, 6 stages, rho=0.8): lookahead 4
  // beat 2/8/16, block 64 beat 16/32/128, and prefetching the downstream
  // tail slot was a net loss (the write misses overlap fine on their own).
  constexpr std::size_t kLookahead = 4;
  constexpr std::size_t kBlock = 64;

  struct Move {
    FastPacket pkt;               // already re-stamped for the next stage
    std::uint32_t addr = 0;       // port within stage s
    std::uint32_t next_addr = 0;  // port within stage s+1 (exit: unused)
  };
  std::vector<std::uint32_t> inject_dst(ports);
  std::vector<std::uint32_t> cand;
  cand.reserve(ports);
  std::vector<Move> moves;
  moves.reserve(kBlock);

  for (std::int64_t t = 0; t < total_cycles; ++t) {
    // Injection: unit service means the per-port service lane is never
    // drawn, so the batched destinations are the whole decision.
    simd::inject_batch(inj, t, 0, ports, inject_dst.data());
    const bool measuring = t >= cfg.warmup_cycles;
    const auto now = static_cast<std::uint32_t>(t);
    for (std::uint32_t src = 0; src < ports; ++src) {
      const std::uint32_t dst = inject_dst[src];
      if (dst == simd::kNoArrival) continue;
      const std::uint32_t addr0 = topo.entry_queue(src, dst);
      FastPacket pkt;
      pkt.arrival = now;
      pkt.born = now;
      pkt.dst = dst;
      for (unsigned b = 0; b < cfg.bulk; ++b) pool.push(addr0, pkt);
      active[0].mark_occupied(addr0);
      if (measuring) out.packets_injected += cfg.bulk;
    }

    for (unsigned s = 0; s < n; ++s) {
      ActiveSet& sched = active[s];
      cand.clear();
      sched.for_each_candidate([&](std::uint32_t a) { cand.push_back(a); });
      const std::size_t base = static_cast<std::size_t>(s) * ports;
      stats::MomentTally& wait = out.stage_wait[s];
      const int cp = checkpoint_of[s + 1];
      const bool exit_stage = s + 1 == n;
      const std::size_t count = cand.size();

      for (std::size_t blk = 0; blk < count; blk += kBlock) {
        const std::size_t end = std::min(blk + kBlock, count);
        moves.clear();
        for (std::size_t i = blk; i < end; ++i) {
          if (i + kLookahead < count)
            pool.prefetch_front(base + cand[i + kLookahead]);
          const std::uint32_t a = cand[i];
          const FastPacket& head = pool.front(base + a);
          if (head.arrival > now) continue;  // delivered later this cycle
          Move mv;
          mv.addr = a;
          mv.pkt = head;
          mv.pkt.arrival = now + 1;
          if (head.born >= warmup) {
            const std::int64_t w =
                static_cast<std::int64_t>(now) - head.arrival;
            wait.add(w);
            mv.pkt.total_wait += static_cast<std::int32_t>(w);
            if (cp >= 0)
              out.total_wait[static_cast<std::size_t>(cp)].add(
                  mv.pkt.total_wait);
            if (exit_stage) ++out.packets_delivered;
          }
          if (!exit_stage) mv.next_addr = topo.next_queue(s, a, head.dst);
          moves.push_back(mv);
        }

        if (exit_stage) {
          for (const Move& mv : moves) {
            const std::size_t q = base + mv.addr;
            pool.pop(q);
            if (pool.empty(q)) sched.clear_occupied(mv.addr);
          }
        } else {
          ActiveSet& down = active[s + 1];
          for (const Move& mv : moves) {
            const std::size_t q = base + mv.addr;
            pool.pop(q);
            if (pool.empty(q)) sched.clear_occupied(mv.addr);
            pool.push(base + ports + mv.next_addr, mv.pkt);
            down.mark_occupied(mv.next_addr);
          }
        }
      }
    }

    // --- Occupancy sampling (same stride and in-flight exclusion) --------
    if (measuring && t % kDepthSampleStride == 0)
      for (unsigned s = 0; s < n; ++s)
        for (std::uint32_t a = 0; a < ports; ++a) {
          const std::size_t q = static_cast<std::size_t>(s) * ports + a;
          std::size_t present = pool.size(q);
          while (present > 0 && pool.at(q, present - 1).arrival > now)
            --present;
          out.stage_depth[s].add(static_cast<std::int64_t>(present));
        }
  }
  return out;
}

}  // namespace

void NetworkResults::merge(const NetworkResults& other) {
  if (stage_wait.size() != other.stage_wait.size() ||
      stage_depth.size() != other.stage_depth.size() ||
      total_wait.size() != other.total_wait.size())
    throw std::invalid_argument("NetworkResults::merge: shape mismatch");
  if (stage_hist.size() != other.stage_hist.size())
    throw std::invalid_argument(
        "NetworkResults::merge: stage_hist shape mismatch");
  for (std::size_t i = 0; i < stage_wait.size(); ++i) {
    stage_wait[i].merge(other.stage_wait[i]);
    stage_depth[i].merge(other.stage_depth[i]);
  }
  for (std::size_t i = 0; i < stage_hist.size(); ++i)
    stage_hist[i].merge(other.stage_hist[i]);
  for (std::size_t i = 0; i < total_wait.size(); ++i)
    total_wait[i].merge(other.total_wait[i]);
  if (stage_covariance && other.stage_covariance)
    stage_covariance->merge(*other.stage_covariance);
  packets_injected += other.packets_injected;
  packets_delivered += other.packets_delivered;
  packets_dropped += other.packets_dropped;
  metrics.merge(other.metrics);
  convergence.merge(other.convergence);
}

NetworkResults run_network(const NetworkConfig& cfg) {
  detail::validate(cfg);
  const Topology topo(cfg.topology, cfg.k, cfg.stages);
  const std::uint32_t ports = topo.ports();
  detail::validate_hotspot_target(cfg, ports);
  const unsigned n = cfg.stages;

  // Counter-mode (default): per-cycle injections are decided for every
  // port at once by the batched Philox kernel — draws are addressed by
  // (cycle, port, site), so the batch is bit-identical to the reference
  // engine's port-at-a-time evaluation. Legacy mode replays the historic
  // sequential xoshiro stream.
  const bool philox = cfg.rng == RngKind::kPhilox;
  const simd::InjectParams inj = detail::make_inject_params(cfg, ports);

  // The throughput-gate workload and most reproduction-book runs qualify
  // for the branch-specialized engine; its results are bit-identical to
  // the generic loop below (the equivalence suite compares all three
  // pairwise: fast, generic, reference).
  if (fast_engine_eligible(cfg)) return run_network_fast(cfg, topo, inj);

  std::vector<std::uint32_t> inject_dst(philox ? ports : 0);
  rng::Xoshiro256 gen(cfg.seed);

  // Queue id for (stage s, address a): one flat index into the pool and
  // every per-queue side array. Finite-buffer runs freeze the pool at the
  // buffer depth: admission bounds occupancy, so the rings never grow.
  const bool finite = cfg.buffer_capacity > 0;
  QueuePool<Packet> pool(static_cast<std::size_t>(n) * ports,
                         finite ? cfg.buffer_capacity : 4, finite);
  const auto qid = [ports](unsigned s, std::uint32_t a) {
    return static_cast<std::size_t>(s) * ports + a;
  };
  std::vector<ActiveSet> active(n, ActiveSet(ports));

  // Checkpoint lookup: after completing c stages, record into
  // total_wait[checkpoint_of[c]].
  std::vector<int> checkpoint_of(n + 1, -1);
  for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i)
    checkpoint_of[cfg.total_checkpoints[i]] = static_cast<int>(i);

  NetworkResults out;
  out.stage_wait.resize(n);
  out.stage_depth.resize(n);
  if (cfg.track_stage_histograms) out.stage_hist.resize(n);
  out.total_wait.resize(cfg.total_checkpoints.size());
  if (cfg.track_correlations) out.stage_covariance.emplace(n);

  CorrTable corr(cfg.track_correlations ? n : 1);
  std::vector<double> corr_scratch(n, 0.0);
  const std::int64_t total_cycles = cfg.warmup_cycles + cfg.measure_cycles;
  constexpr std::int64_t kDepthSampleStride = 64;
  detail::FlowState flow;
  flow.init(cfg, n, ports);
  const bool credit_mode = finite && cfg.flow == FlowControl::kCredit;

  detail::ObsState ob;
  ob.init(cfg, n, total_cycles, out);
  const bool obs_on = ob.on;
  // Utilization sampling needs per-port service end times; the scheduler
  // itself only tracks multi-cycle services (in the ActiveSet heaps), so
  // keep the flat busy_until array only when the samples are taken.
  const bool sample_busy = obs_on && cfg.obs.stride != 0;
  std::vector<std::int64_t> busy_until(
      sample_busy ? static_cast<std::size_t>(n) * ports : 0, 0);

  const bool unit_service = cfg.service.is_unit();

  // One simulated cycle; called with strictly increasing t.
  const auto step = [&](const std::int64_t t) {
    flow.begin_cycle(t);

    // --- Injection at the first stage ------------------------------------
    // Shared push body; the service sampler differs per RNG mode.
    const auto inject_from = [&](std::uint32_t src, std::uint32_t dst,
                                 auto&& sample_service) {
      (void)src;
      const std::uint32_t addr0 = topo.entry_queue(src, dst);
      const std::size_t q0 = addr0;  // qid(0, addr0)
      for (unsigned b = 0; b < cfg.bulk; ++b) {
        if (finite && pool.size(q0) >= cfg.buffer_capacity) {
          if (t >= cfg.warmup_cycles) ++out.packets_dropped;
          continue;
        }
        Packet pkt;
        pkt.dst = dst;
        pkt.service = unit_service ? 1u : sample_service();
        pkt.arrival = t;
        pkt.born = t;
        if (cfg.track_correlations) pkt.corr = corr.allocate();
        pool.push(q0, pkt);
        active[0].mark_occupied(addr0);
        if (obs_on)
          ob.tally[0].peak = std::max(ob.tally[0].peak, pool.size(q0));
        if (t >= cfg.warmup_cycles) ++out.packets_injected;
      }
    };

    if (philox) {
      simd::inject_batch(inj, t, 0, ports, inject_dst.data());
      for (std::uint32_t src = 0; src < ports; ++src) {
        const std::uint32_t dst = inject_dst[src];
        if (dst == simd::kNoArrival) continue;
        rng::LaneSeq svc(inj.key, t, src, rng::Site::kService);
        inject_from(src, dst, [&] { return cfg.service.sample(svc); });
      }
    } else {
      for (std::uint32_t src = 0; src < ports; ++src) {
        if (!gen.bernoulli(cfg.p)) continue;
        std::uint32_t dst;
        if (cfg.hotspot > 0.0 && gen.bernoulli(cfg.hotspot))
          dst = cfg.hotspot_target;
        else if (cfg.q > 0.0 && gen.bernoulli(cfg.q))
          dst = src;
        else
          dst = static_cast<std::uint32_t>(gen.uniform_int(ports));
        inject_from(src, dst, [&] { return cfg.service.sample(gen); });
      }
    }

    // --- Service, stage by stage -----------------------------------------
    for (unsigned s = 0; s < n; ++s) {
      ActiveSet& sched = active[s];
      sched.expire(t);
      sched.for_each_candidate([&](std::uint32_t a) {
        const std::size_t q = qid(s, a);
        Packet& head = pool.front(q);
        if (head.arrival > t) return;  // delivered later this cycle

        std::uint32_t next_addr = 0;
        if (s + 1 < n) {
          next_addr = topo.next_queue(s, a, head.dst);
          // Finite buffers: block upstream service when the flow-control
          // scheme denies the transfer (full downstream queue, or no
          // credit under kCredit).
          if (finite) {
            const std::size_t nq = qid(s + 1, next_addr);
            if (!flow.admit(nq, pool.size(nq))) {
              if (obs_on && t >= cfg.warmup_cycles) {
                ++ob.tally[s].blocked;
                if (credit_mode) ++ob.tally[s].credit_stalls;
              }
              return;
            }
          }
        }

        const std::int64_t w = t - head.arrival;
        if (ob.trace_on) {
          ob.conv_sum[s] += static_cast<double>(w);
          ++ob.conv_cnt[s];
        }
        if (obs_on && t >= cfg.warmup_cycles) ++ob.tally[s].starts;
        const bool measured = head.born >= cfg.warmup_cycles;
        if (measured) {
          out.stage_wait[s].add(w);
          if (cfg.track_stage_histograms) out.stage_hist[s].add(w);
          head.total_wait += static_cast<std::int32_t>(w);
          if (cfg.track_correlations)
            corr.row(head.corr)[s] = static_cast<std::int32_t>(w);
          const int cp = checkpoint_of[s + 1];
          if (cp >= 0) out.total_wait[static_cast<std::size_t>(cp)].add(
              head.total_wait);
        }

        const std::uint32_t service = head.service;
        if (sample_busy) busy_until[q] = t + service;
        if (finite) flow.on_service_start(s, q, t);
        if (s + 1 < n) {
          Packet moved = head;
          moved.arrival = flow.arrival_stamp(t, service);
          pool.pop(q);
          if (pool.empty(q)) sched.clear_occupied(a);
          const std::size_t nq = qid(s + 1, next_addr);
          if (finite) flow.on_forward(nq);
          pool.push(nq, moved);
          active[s + 1].mark_occupied(next_addr);
          if (obs_on)
            ob.tally[s + 1].peak =
                std::max(ob.tally[s + 1].peak, pool.size(nq));
        } else {
          if (measured) {
            ++out.packets_delivered;
            if (cfg.track_correlations) {
              const std::int32_t* row = corr.row(head.corr);
              for (unsigned i = 0; i < n; ++i)
                corr_scratch[i] = static_cast<double>(row[i]);
              out.stage_covariance->add(corr_scratch);
            }
          }
          if (cfg.track_correlations) corr.release(head.corr);
          pool.pop(q);
          if (pool.empty(q)) sched.clear_occupied(a);
        }
        // Unit services never block the next cycle; only m >= 2 enters
        // the busy set (and its expiry heap).
        if (service > 1) sched.mark_busy(a, t + service);
      });
    }

    // --- Occupancy sampling ----------------------------------------------
    if (t >= cfg.warmup_cycles && t % kDepthSampleStride == 0)
      for (unsigned s = 0; s < n; ++s)
        for (std::uint32_t a = 0; a < ports; ++a) {
          // Exclude packets still in flight on the inter-stage link
          // (cut-through arrivals stamped t + 1); they sit at the tail.
          const std::size_t q = qid(s, a);
          std::size_t present = pool.size(q);
          while (present > 0 && pool.at(q, present - 1).arrival > t)
            --present;
          out.stage_depth[s].add(static_cast<std::int64_t>(present));
        }

    // --- Telemetry sampling (occupancy histograms, server utilization) ---
    if (sample_busy && t >= cfg.warmup_cycles &&
        t % static_cast<std::int64_t>(cfg.obs.stride) == 0)
      for (unsigned s = 0; s < n; ++s) {
        detail::StageObs& so = ob.sobs[s];
        for (std::uint32_t a = 0; a < ports; ++a) {
          const std::size_t q = qid(s, a);
          std::size_t present = pool.size(q);
          while (present > 0 && pool.at(q, present - 1).arrival > t)
            --present;
          so.occupancy->record(static_cast<double>(present));
          if (busy_until[q] > t)
            ++ob.tally[s].busy;
          else
            ++ob.tally[s].idle;
        }
      }

    // --- Convergence checkpoint ------------------------------------------
    ob.checkpoint(t, out);
  };

  // --- Phased main loop: warmup then measurement, each timed -------------
  const std::int64_t warmup_end =
      std::clamp<std::int64_t>(cfg.warmup_cycles, 0, total_cycles);
  {
    obs::ScopedTimer timer(
        obs_on ? &out.metrics.timer("sim.phase.warmup") : nullptr);
    for (std::int64_t t = 0; t < warmup_end; ++t) step(t);
  }
  {
    obs::ScopedTimer timer(
        obs_on ? &out.metrics.timer("sim.phase.measure") : nullptr);
    for (std::int64_t t = warmup_end; t < total_cycles; ++t) step(t);
  }

  ob.flush(warmup_end, total_cycles, out);
  return out;
}

}  // namespace ksw::sim
