// Optimized network engine: flat structure-of-arrays queue pool, hot/cold
// packet split, and active-set scheduling. Produces bit-identical results
// (statistics, histograms, covariances, telemetry) to the seed engine kept
// in network_reference.cpp; tests/sim/engine_equivalence_test.cpp enforces
// the equivalence.
//
// Layout decisions, in order of measured impact:
//   * Packet is 32 bytes: the 16-entry stage_waits array the seed engine
//     copied on every hop lives in a side table (CorrTable) allocated only
//     when cfg.track_correlations is set; hot packets carry an index.
//   * All stages x ports queues live in one QueuePool — flat metadata
//     arrays indexed by stage * ports + port, element storage carved from
//     a shared arena (see queue_pool.hpp).
//   * Each stage keeps an ActiveSet (occupied/busy bitmaps + busy-expiry
//     heap), so the per-cycle service scan touches only occupied,
//     non-busy ports instead of sweeping the whole topology. Bits are
//     walked in ascending port order — the exact order of the seed
//     engine's full sweep, which is what makes bit-identity possible.
#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "rng/xoshiro.hpp"
#include "sim/active_set.hpp"
#include "sim/network_detail.hpp"
#include "sim/queue_pool.hpp"
#include "sim/topology.hpp"

namespace ksw::sim {

namespace {

/// Hot per-packet state; one ring-buffer slot, copied on every hop.
struct Packet {
  std::int64_t arrival = 0;  // cycle available at the current queue
  std::int64_t born = 0;     // injection cycle (measurement gating)
  std::uint32_t dst = 0;
  std::uint32_t service = 1;
  std::int32_t total_wait = 0;
  std::uint32_t corr = 0;  // CorrTable row (track_correlations only)
};
static_assert(sizeof(Packet) <= 32, "Packet must stay hot-loop sized");

/// Side table of per-stage waits for in-flight packets, allocated only in
/// correlation-tracking runs. Rows are recycled through a free list; a row
/// is live from injection to delivery.
class CorrTable {
 public:
  explicit CorrTable(unsigned stages) : stages_(stages) {}

  std::uint32_t allocate() {
    if (free_.empty()) {
      const std::uint32_t r = rows_++;
      pool_.resize(static_cast<std::size_t>(rows_) * stages_, 0);
      return r;
    }
    const std::uint32_t r = free_.back();
    free_.pop_back();
    std::fill_n(row(r), stages_, 0);
    return r;
  }

  void release(std::uint32_t r) { free_.push_back(r); }

  /// Pointer valid until the next allocate().
  [[nodiscard]] std::int32_t* row(std::uint32_t r) noexcept {
    return pool_.data() + static_cast<std::size_t>(r) * stages_;
  }

 private:
  unsigned stages_;
  std::uint32_t rows_ = 0;
  std::vector<std::int32_t> pool_;
  std::vector<std::uint32_t> free_;
};

}  // namespace

void NetworkResults::merge(const NetworkResults& other) {
  if (stage_wait.size() != other.stage_wait.size() ||
      stage_depth.size() != other.stage_depth.size() ||
      total_wait.size() != other.total_wait.size())
    throw std::invalid_argument("NetworkResults::merge: shape mismatch");
  if (stage_hist.size() != other.stage_hist.size())
    throw std::invalid_argument(
        "NetworkResults::merge: stage_hist shape mismatch");
  for (std::size_t i = 0; i < stage_wait.size(); ++i) {
    stage_wait[i].merge(other.stage_wait[i]);
    stage_depth[i].merge(other.stage_depth[i]);
  }
  for (std::size_t i = 0; i < stage_hist.size(); ++i)
    stage_hist[i].merge(other.stage_hist[i]);
  for (std::size_t i = 0; i < total_wait.size(); ++i)
    total_wait[i].merge(other.total_wait[i]);
  if (stage_covariance && other.stage_covariance)
    stage_covariance->merge(*other.stage_covariance);
  packets_injected += other.packets_injected;
  packets_delivered += other.packets_delivered;
  packets_dropped += other.packets_dropped;
  metrics.merge(other.metrics);
  convergence.merge(other.convergence);
}

NetworkResults run_network(const NetworkConfig& cfg) {
  detail::validate(cfg);
  const Topology topo(cfg.topology, cfg.k, cfg.stages);
  const std::uint32_t ports = topo.ports();
  detail::validate_hotspot_target(cfg, ports);
  const unsigned n = cfg.stages;

  rng::Xoshiro256 gen(cfg.seed);

  // Queue id for (stage s, address a): one flat index into the pool and
  // every per-queue side array. Finite-buffer runs freeze the pool at the
  // buffer depth: admission bounds occupancy, so the rings never grow.
  const bool finite = cfg.buffer_capacity > 0;
  QueuePool<Packet> pool(static_cast<std::size_t>(n) * ports,
                         finite ? cfg.buffer_capacity : 4, finite);
  const auto qid = [ports](unsigned s, std::uint32_t a) {
    return static_cast<std::size_t>(s) * ports + a;
  };
  std::vector<ActiveSet> active(n, ActiveSet(ports));

  // Checkpoint lookup: after completing c stages, record into
  // total_wait[checkpoint_of[c]].
  std::vector<int> checkpoint_of(n + 1, -1);
  for (std::size_t i = 0; i < cfg.total_checkpoints.size(); ++i)
    checkpoint_of[cfg.total_checkpoints[i]] = static_cast<int>(i);

  NetworkResults out;
  out.stage_wait.resize(n);
  out.stage_depth.resize(n);
  if (cfg.track_stage_histograms) out.stage_hist.resize(n);
  out.total_wait.resize(cfg.total_checkpoints.size());
  if (cfg.track_correlations) out.stage_covariance.emplace(n);

  CorrTable corr(cfg.track_correlations ? n : 1);
  std::vector<double> corr_scratch(n, 0.0);
  const std::int64_t total_cycles = cfg.warmup_cycles + cfg.measure_cycles;
  constexpr std::int64_t kDepthSampleStride = 64;
  detail::FlowState flow;
  flow.init(cfg, n, ports);
  const bool credit_mode = finite && cfg.flow == FlowControl::kCredit;

  detail::ObsState ob;
  ob.init(cfg, n, total_cycles, out);
  const bool obs_on = ob.on;
  // Utilization sampling needs per-port service end times; the scheduler
  // itself only tracks multi-cycle services (in the ActiveSet heaps), so
  // keep the flat busy_until array only when the samples are taken.
  const bool sample_busy = obs_on && cfg.obs.stride != 0;
  std::vector<std::int64_t> busy_until(
      sample_busy ? static_cast<std::size_t>(n) * ports : 0, 0);

  // One simulated cycle; called with strictly increasing t.
  const auto step = [&](const std::int64_t t) {
    flow.begin_cycle(t);

    // --- Injection at the first stage ------------------------------------
    for (std::uint32_t src = 0; src < ports; ++src) {
      if (!gen.bernoulli(cfg.p)) continue;
      std::uint32_t dst;
      if (cfg.hotspot > 0.0 && gen.bernoulli(cfg.hotspot))
        dst = cfg.hotspot_target;
      else if (cfg.q > 0.0 && gen.bernoulli(cfg.q))
        dst = src;
      else
        dst = static_cast<std::uint32_t>(gen.uniform_int(ports));
      const std::uint32_t addr0 = topo.entry_queue(src, dst);
      const std::size_t q0 = addr0;  // qid(0, addr0)
      for (unsigned b = 0; b < cfg.bulk; ++b) {
        if (finite && pool.size(q0) >= cfg.buffer_capacity) {
          if (t >= cfg.warmup_cycles) ++out.packets_dropped;
          continue;
        }
        Packet pkt;
        pkt.dst = dst;
        pkt.service = cfg.service.sample(gen);
        pkt.arrival = t;
        pkt.born = t;
        if (cfg.track_correlations) pkt.corr = corr.allocate();
        pool.push(q0, pkt);
        active[0].mark_occupied(addr0);
        if (obs_on)
          ob.tally[0].peak = std::max(ob.tally[0].peak, pool.size(q0));
        if (t >= cfg.warmup_cycles) ++out.packets_injected;
      }
    }

    // --- Service, stage by stage -----------------------------------------
    for (unsigned s = 0; s < n; ++s) {
      ActiveSet& sched = active[s];
      sched.expire(t);
      sched.for_each_candidate([&](std::uint32_t a) {
        const std::size_t q = qid(s, a);
        Packet& head = pool.front(q);
        if (head.arrival > t) return;  // delivered later this cycle

        std::uint32_t next_addr = 0;
        if (s + 1 < n) {
          next_addr = topo.next_queue(s, a, head.dst);
          // Finite buffers: block upstream service when the flow-control
          // scheme denies the transfer (full downstream queue, or no
          // credit under kCredit).
          if (finite) {
            const std::size_t nq = qid(s + 1, next_addr);
            if (!flow.admit(nq, pool.size(nq))) {
              if (obs_on && t >= cfg.warmup_cycles) {
                ++ob.tally[s].blocked;
                if (credit_mode) ++ob.tally[s].credit_stalls;
              }
              return;
            }
          }
        }

        const std::int64_t w = t - head.arrival;
        if (ob.trace_on) {
          ob.conv_sum[s] += static_cast<double>(w);
          ++ob.conv_cnt[s];
        }
        if (obs_on && t >= cfg.warmup_cycles) ++ob.tally[s].starts;
        const bool measured = head.born >= cfg.warmup_cycles;
        if (measured) {
          out.stage_wait[s].add(static_cast<double>(w));
          if (cfg.track_stage_histograms) out.stage_hist[s].add(w);
          head.total_wait += static_cast<std::int32_t>(w);
          if (cfg.track_correlations)
            corr.row(head.corr)[s] = static_cast<std::int32_t>(w);
          const int cp = checkpoint_of[s + 1];
          if (cp >= 0) out.total_wait[static_cast<std::size_t>(cp)].add(
              head.total_wait);
        }

        const std::uint32_t service = head.service;
        if (sample_busy) busy_until[q] = t + service;
        if (finite) flow.on_service_start(s, q, t);
        if (s + 1 < n) {
          Packet moved = head;
          moved.arrival = flow.arrival_stamp(t, service);
          pool.pop(q);
          if (pool.empty(q)) sched.clear_occupied(a);
          const std::size_t nq = qid(s + 1, next_addr);
          if (finite) flow.on_forward(nq);
          pool.push(nq, moved);
          active[s + 1].mark_occupied(next_addr);
          if (obs_on)
            ob.tally[s + 1].peak =
                std::max(ob.tally[s + 1].peak, pool.size(nq));
        } else {
          if (measured) {
            ++out.packets_delivered;
            if (cfg.track_correlations) {
              const std::int32_t* row = corr.row(head.corr);
              for (unsigned i = 0; i < n; ++i)
                corr_scratch[i] = static_cast<double>(row[i]);
              out.stage_covariance->add(corr_scratch);
            }
          }
          if (cfg.track_correlations) corr.release(head.corr);
          pool.pop(q);
          if (pool.empty(q)) sched.clear_occupied(a);
        }
        // Unit services never block the next cycle; only m >= 2 enters
        // the busy set (and its expiry heap).
        if (service > 1) sched.mark_busy(a, t + service);
      });
    }

    // --- Occupancy sampling ----------------------------------------------
    if (t >= cfg.warmup_cycles && t % kDepthSampleStride == 0)
      for (unsigned s = 0; s < n; ++s)
        for (std::uint32_t a = 0; a < ports; ++a) {
          // Exclude packets still in flight on the inter-stage link
          // (cut-through arrivals stamped t + 1); they sit at the tail.
          const std::size_t q = qid(s, a);
          std::size_t present = pool.size(q);
          while (present > 0 && pool.at(q, present - 1).arrival > t)
            --present;
          out.stage_depth[s].add(static_cast<double>(present));
        }

    // --- Telemetry sampling (occupancy histograms, server utilization) ---
    if (sample_busy && t >= cfg.warmup_cycles &&
        t % static_cast<std::int64_t>(cfg.obs.stride) == 0)
      for (unsigned s = 0; s < n; ++s) {
        detail::StageObs& so = ob.sobs[s];
        for (std::uint32_t a = 0; a < ports; ++a) {
          const std::size_t q = qid(s, a);
          std::size_t present = pool.size(q);
          while (present > 0 && pool.at(q, present - 1).arrival > t)
            --present;
          so.occupancy->record(static_cast<double>(present));
          if (busy_until[q] > t)
            ++ob.tally[s].busy;
          else
            ++ob.tally[s].idle;
        }
      }

    // --- Convergence checkpoint ------------------------------------------
    ob.checkpoint(t, out);
  };

  // --- Phased main loop: warmup then measurement, each timed -------------
  const std::int64_t warmup_end =
      std::clamp<std::int64_t>(cfg.warmup_cycles, 0, total_cycles);
  {
    obs::ScopedTimer timer(
        obs_on ? &out.metrics.timer("sim.phase.warmup") : nullptr);
    for (std::int64_t t = 0; t < warmup_end; ++t) step(t);
  }
  {
    obs::ScopedTimer timer(
        obs_on ? &out.metrics.timer("sim.phase.measure") : nullptr);
    for (std::int64_t t = warmup_end; t < total_cycles; ++t) step(t);
  }

  ob.flush(warmup_end, total_cycles, out);
  return out;
}

}  // namespace ksw::sim
