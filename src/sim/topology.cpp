#include "sim/topology.hpp"

namespace ksw::sim {

Topology::Topology(TopologyKind kind, unsigned k, unsigned stages)
    : kind_(kind), k_(k), n_(stages) {
  if (k < 2) throw std::invalid_argument("Topology: k must be >= 2");
  if (stages == 0) throw std::invalid_argument("Topology: stages == 0");
  pow_.resize(n_ + 1);
  pow_[0] = 1;
  for (unsigned i = 1; i <= n_; ++i) {
    if (pow_[i - 1] > (1u << 24) / k_)
      throw std::invalid_argument(
          "Topology: network too large (k^stages > 2^24 ports)");
    pow_[i] = pow_[i - 1] * k_;
  }
  if ((k_ & (k_ - 1)) == 0) {
    log2k_ = 0;
    for (unsigned v = k_; v > 1; v >>= 1) ++log2k_;
  }
}

std::string Topology::describe() const {
  const char* name =
      kind_ == TopologyKind::kButterfly ? "butterfly" : "omega";
  return std::string(name) + "(k=" + std::to_string(k_) +
         ", stages=" + std::to_string(n_) + ")";
}

}  // namespace ksw::sim
