#include "sim/topology.hpp"

namespace ksw::sim {

Topology::Topology(TopologyKind kind, unsigned k, unsigned stages)
    : kind_(kind), k_(k), n_(stages) {
  if (k < 2) throw std::invalid_argument("Topology: k must be >= 2");
  if (stages == 0) throw std::invalid_argument("Topology: stages == 0");
  pow_.resize(n_ + 1);
  pow_[0] = 1;
  for (unsigned i = 1; i <= n_; ++i) {
    if (pow_[i - 1] > (1u << 24) / k_)
      throw std::invalid_argument(
          "Topology: network too large (k^stages > 2^24 ports)");
    pow_[i] = pow_[i - 1] * k_;
  }
}

std::uint32_t Topology::entry_queue(std::uint32_t src,
                                    std::uint32_t dst) const {
  switch (kind_) {
    case TopologyKind::kButterfly:
      return replace_digit(src, 0, digit(dst, 0));
    case TopologyKind::kOmega: {
      // Shuffle the input, then the switch routes on the first digit:
      // queue = switch * k + dst[0], i.e. replace the LAST digit of the
      // shuffled position.
      const std::uint32_t pos = shuffle(src);
      return (pos / k_) * k_ + digit(dst, 0);
    }
  }
  return 0;
}

std::uint32_t Topology::next_queue(unsigned s, std::uint32_t current,
                                   std::uint32_t dst) const {
  switch (kind_) {
    case TopologyKind::kButterfly:
      return replace_digit(current, s + 1, digit(dst, s + 1));
    case TopologyKind::kOmega: {
      const std::uint32_t pos = shuffle(current);
      return (pos / k_) * k_ + digit(dst, s + 1);
    }
  }
  return 0;
}

std::string Topology::describe() const {
  const char* name =
      kind_ == TopologyKind::kButterfly ? "butterfly" : "omega";
  return std::string(name) + "(k=" + std::to_string(k_) +
         ", stages=" + std::to_string(n_) + ")";
}

}  // namespace ksw::sim
