// Sampling-side description of the message service-time distribution,
// bridging to the analytic core::ServiceModel.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro.hpp"

namespace ksw::sim {

/// Service-time distribution the simulator can sample from. Mirrors the
/// three ServiceModel families of the analysis (deterministic, multi-size,
/// geometric).
class ServiceSpec {
 public:
  /// Constant m cycles per message.
  static ServiceSpec deterministic(std::uint32_t m);

  /// Mixture of constant sizes; probabilities must sum to 1.
  static ServiceSpec multi_size(
      std::vector<core::MultiSizeService::Size> sizes);

  /// Geometric on {1,2,...} with success probability mu.
  static ServiceSpec geometric(double mu);

  /// Parse the textual spec syntax shared by the CLI and sweep manifests:
  /// "det:M", "geo:MU", or "multi:M1@P1,M2@P2,...". Throws
  /// std::invalid_argument on syntax or validation errors.
  static ServiceSpec parse(const std::string& text);

  /// Sample one service time (sequential xoshiro stream).
  [[nodiscard]] std::uint32_t sample(rng::Xoshiro256& gen) const;

  /// Sample one service time from a counter-mode lane sequence. The
  /// deterministic family draws nothing — the sequence only advances for
  /// distributions that need randomness, exactly like the xoshiro
  /// overload. Both engines share this code, so counter-mode service
  /// times are bit-identical between them by construction.
  [[nodiscard]] std::uint32_t sample(rng::LaneSeq& seq) const;

  [[nodiscard]] double mean() const;

  /// Equivalent analytic model (for feeding FirstStage / LaterStages).
  [[nodiscard]] std::shared_ptr<const core::ServiceModel> to_model() const;

  /// True when every message takes exactly one cycle.
  [[nodiscard]] bool is_unit() const noexcept;

 private:
  enum class Kind { kDeterministic, kMultiSize, kGeometric };

  ServiceSpec(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::uint32_t m_ = 1;     // deterministic
  double mu_ = 1.0;         // geometric
  std::vector<core::MultiSizeService::Size> sizes_;  // multi-size
  std::vector<double> cumulative_;                   // sampling CDF
};

}  // namespace ksw::sim
