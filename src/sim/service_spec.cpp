#include "sim/service_spec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ksw::sim {

ServiceSpec ServiceSpec::deterministic(std::uint32_t m) {
  if (m == 0)
    throw std::invalid_argument("ServiceSpec::deterministic: m == 0");
  ServiceSpec s(Kind::kDeterministic);
  s.m_ = m;
  return s;
}

ServiceSpec ServiceSpec::multi_size(
    std::vector<core::MultiSizeService::Size> sizes) {
  // Validation (probabilities sum to 1, nonzero sizes) is delegated to the
  // analytic model, which has the same requirements.
  const core::MultiSizeService validate(sizes);
  (void)validate;
  ServiceSpec s(Kind::kMultiSize);
  s.sizes_ = std::move(sizes);
  double acc = 0.0;
  s.cumulative_.reserve(s.sizes_.size());
  for (const auto& sz : s.sizes_) {
    acc += sz.probability;
    s.cumulative_.push_back(acc);
  }
  s.cumulative_.back() = 1.0;  // guard against rounding
  return s;
}

ServiceSpec ServiceSpec::geometric(double mu) {
  if (!(mu > 0.0) || mu > 1.0)
    throw std::invalid_argument("ServiceSpec::geometric: mu outside (0,1]");
  ServiceSpec s(Kind::kGeometric);
  s.mu_ = mu;
  return s;
}

std::uint32_t ServiceSpec::sample(rng::LaneSeq& seq) const {
  switch (kind_) {
    case Kind::kDeterministic:
      return m_;
    case Kind::kMultiSize: {
      const double u = seq.next_unit();
      for (std::size_t i = 0; i < cumulative_.size(); ++i)
        if (u < cumulative_[i]) return sizes_[i].cycles;
      return sizes_.back().cycles;
    }
    case Kind::kGeometric: {
      if (mu_ >= 1.0) return 1;
      // Inversion: 1 + floor(log(U) / log(1-mu)) over U in (0,1); the
      // half-open unit draw is never 0 or 1, so no rejection loop.
      const double v = std::log(seq.next_unit()) / std::log1p(-mu_);
      const auto clamped = std::min<double>(
          v, static_cast<double>(std::numeric_limits<std::uint32_t>::max() -
                                 1u));
      return 1 + static_cast<std::uint32_t>(clamped);
    }
  }
  return 1;
}

std::uint32_t ServiceSpec::sample(rng::Xoshiro256& gen) const {
  switch (kind_) {
    case Kind::kDeterministic:
      return m_;
    case Kind::kMultiSize: {
      const double u = gen.uniform();
      for (std::size_t i = 0; i < cumulative_.size(); ++i)
        if (u < cumulative_[i]) return sizes_[i].cycles;
      return sizes_.back().cycles;
    }
    case Kind::kGeometric: {
      const std::uint64_t v = gen.geometric(mu_);
      // Clamp pathological tail draws so they fit the packet field.
      return static_cast<std::uint32_t>(
          std::min<std::uint64_t>(v, std::numeric_limits<std::uint32_t>::max()));
    }
  }
  return 1;
}

double ServiceSpec::mean() const {
  switch (kind_) {
    case Kind::kDeterministic:
      return static_cast<double>(m_);
    case Kind::kMultiSize: {
      double acc = 0.0;
      for (const auto& sz : sizes_)
        acc += sz.probability * static_cast<double>(sz.cycles);
      return acc;
    }
    case Kind::kGeometric:
      return 1.0 / mu_;
  }
  return 1.0;
}

std::shared_ptr<const core::ServiceModel> ServiceSpec::to_model() const {
  switch (kind_) {
    case Kind::kDeterministic:
      return std::make_shared<core::DeterministicService>(m_);
    case Kind::kMultiSize:
      return std::make_shared<core::MultiSizeService>(sizes_);
    case Kind::kGeometric:
      return std::make_shared<core::GeometricService>(mu_);
  }
  return std::make_shared<core::DeterministicService>(1);
}

bool ServiceSpec::is_unit() const noexcept {
  return kind_ == Kind::kDeterministic && m_ == 1;
}

namespace {

unsigned parse_size(const std::string& text, const char* what) {
  std::size_t pos = 0;
  const long v = std::stol(text, &pos);
  if (pos != text.size() || v <= 0)
    throw std::invalid_argument(std::string(what) +
                                ": bad service size: " + text);
  return static_cast<unsigned>(v);
}

}  // namespace

ServiceSpec ServiceSpec::parse(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos)
    throw std::invalid_argument(
        "service spec must be det:M, geo:MU, or multi:M1@P1,... ; got " +
        text);
  const std::string kind = text.substr(0, colon);
  const std::string body = text.substr(colon + 1);

  if (kind == "det") return deterministic(parse_size(body, "det"));

  if (kind == "geo") {
    std::size_t pos = 0;
    const double mu = std::stod(body, &pos);
    if (pos != body.size())
      throw std::invalid_argument("geo: bad mu: " + body);
    return geometric(mu);
  }

  if (kind == "multi") {
    std::vector<core::MultiSizeService::Size> sizes;
    std::size_t start = 0;
    while (start <= body.size()) {
      const auto comma = body.find(',', start);
      const std::string item =
          body.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      const auto at = item.find('@');
      if (at == std::string::npos)
        throw std::invalid_argument("multi: expected M@P, got " + item);
      std::size_t pos = 0;
      const double prob = std::stod(item.substr(at + 1), &pos);
      if (pos != item.size() - at - 1)
        throw std::invalid_argument("multi: bad probability in " + item);
      sizes.push_back({parse_size(item.substr(0, at), "multi"), prob});
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return multi_size(std::move(sizes));
  }

  throw std::invalid_argument("unknown service kind: " + kind);
}

}  // namespace ksw::sim
