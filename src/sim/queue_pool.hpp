// Flat structure-of-arrays FIFO queue pool.
//
// The network simulator owns stages x ports queues; the seed layout
// (vector<vector<RingQueue<T>>>) put each queue's metadata and storage in
// its own heap blocks, so a cycle sweep chased two indirections per port.
// This pool keeps all queue metadata (head/size/mask) in parallel flat
// arrays indexed by one queue id, and carves element storage for every
// queue out of a shared bump arena, so metadata for a whole stage is
// cache-dense and steady-state push/pop is allocation-free.
//
// Growth policy matches RingQueue: per-queue power-of-two capacity doubling
// that never shrinks. A grown queue's old arena block is abandoned inside
// the arena (freed only with the pool); geometric doubling bounds the
// abandoned space by the total live capacity, which is the usual arena
// trade of memory for zero free-list work.
//
// Fixed-capacity mode (finite-buffer simulations): when the caller
// guarantees an occupancy bound — the flow-control admission check runs
// before every push — the pool can be frozen at construction. Rings never
// move, the arena never grows, and an overflowing push throws instead of
// silently doubling, turning a flow-control bug into a loud invariant
// failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace ksw::sim {

/// Pool of FIFO queues over power-of-two ring buffers in a shared arena.
/// Queue ids are dense [0, queue_count()); the caller maps (stage, port)
/// onto them (the network uses stage * ports + port).
template <typename T>
class QueuePool {
 public:
  explicit QueuePool(std::size_t queues, std::size_t initial_capacity = 4,
                     bool fixed = false)
      : fixed_(fixed), head_(queues, 0), size_(queues, 0), mask_(queues, 0),
        data_(queues) {
    std::size_t cap = 2;
    while (cap < initial_capacity) cap *= 2;
    if (queues == 0) return;
    // One contiguous block for the initial capacity of every queue keeps
    // neighbouring queue ids on neighbouring cache lines.
    T* base = allocate(queues * cap);
    for (std::size_t q = 0; q < queues; ++q) {
      data_[q] = base + q * cap;
      mask_[q] = static_cast<std::uint32_t>(cap - 1);
    }
  }

  [[nodiscard]] std::size_t queue_count() const noexcept {
    return data_.size();
  }
  [[nodiscard]] bool empty(std::size_t q) const noexcept {
    return size_[q] == 0;
  }
  [[nodiscard]] std::size_t size(std::size_t q) const noexcept {
    return size_[q];
  }
  [[nodiscard]] std::size_t capacity(std::size_t q) const noexcept {
    return static_cast<std::size_t>(mask_[q]) + 1;
  }

  void push(std::size_t q, const T& value) {
    if (size_[q] > mask_[q]) grow(q);
    data_[q][(head_[q] + size_[q]) & mask_[q]] = value;
    ++size_[q];
  }

  [[nodiscard]] T& front(std::size_t q) noexcept {
    return data_[q][head_[q]];
  }
  [[nodiscard]] const T& front(std::size_t q) const noexcept {
    return data_[q][head_[q]];
  }

  /// Element i positions behind the front (0 == front). No bounds check.
  [[nodiscard]] const T& at(std::size_t q, std::size_t i) const noexcept {
    return data_[q][(head_[q] + static_cast<std::uint32_t>(i)) & mask_[q]];
  }

  void pop(std::size_t q) noexcept {
    head_[q] = (head_[q] + 1) & mask_[q];
    --size_[q];
  }

  /// Hint the cache that front(q) is about to be read and popped. The
  /// network fast path issues these a few queues ahead of the service
  /// walk so the ring-slot miss overlaps useful work.
  void prefetch_front(std::size_t q) const noexcept {
    __builtin_prefetch(data_[q] + head_[q], 1);
  }

 private:
  void grow(std::size_t q) {
    if (fixed_)
      throw std::logic_error(
          "QueuePool: push beyond fixed capacity (flow-control admission "
          "failed to bound queue occupancy)");
    const std::size_t old_cap = capacity(q);
    const std::size_t new_cap = old_cap * 2;
    T* fresh = allocate(new_cap);
    for (std::uint32_t i = 0; i < size_[q]; ++i)
      fresh[i] = data_[q][(head_[q] + i) & mask_[q]];
    data_[q] = fresh;
    head_[q] = 0;
    mask_[q] = static_cast<std::uint32_t>(new_cap - 1);
  }

  T* allocate(std::size_t n) {
    if (bump_left_ < n) {
      const std::size_t chunk = n > kChunkElems ? n : kChunkElems;
      chunks_.push_back(std::make_unique<T[]>(chunk));
      bump_ = chunks_.back().get();
      bump_left_ = chunk;
    }
    T* out = bump_;
    bump_ += n;
    bump_left_ -= n;
    return out;
  }

  static constexpr std::size_t kChunkElems = std::size_t{1} << 16;

  bool fixed_ = false;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> size_;
  std::vector<std::uint32_t> mask_;
  std::vector<T*> data_;

  std::vector<std::unique_ptr<T[]>> chunks_;
  T* bump_ = nullptr;
  std::size_t bump_left_ = 0;
};

}  // namespace ksw::sim
