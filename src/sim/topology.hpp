// Multistage network topologies.
//
// Both are delta networks on N = k^n ports built from k x k switches; a
// packet's route is fully determined by (source, destination). They are
// isomorphic (same per-stage contention statistics under any
// source-symmetric traffic), which the test suite verifies empirically —
// but the queue *addresses* differ, and the Omega form mirrors how the
// NYU Ultracomputer / RP3 hardware was actually drawn.
//
//   * Butterfly: the queue reached after s+1 routing steps is the address
//     dst[0..s] ++ src[s+1..n-1] (digit substitution; no wiring tables).
//   * Omega: a perfect shuffle (left digit rotation) precedes every
//     switch column; a switch's output queue is switch*k + routing digit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ksw::sim {

enum class TopologyKind { kButterfly, kOmega };

/// Address arithmetic for an n-stage delta network of k x k switches.
/// Queues are numbered 0..k^n-1 within each stage.
class Topology {
 public:
  Topology(TopologyKind kind, unsigned k, unsigned stages);

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned stages() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t ports() const noexcept { return pow_[n_]; }

  /// MSB-first base-k digit j of an n-digit address. Routing calls this
  /// for every hop of every packet, so powers of two take the shift/mask
  /// path instead of div/mod.
  [[nodiscard]] std::uint32_t digit(std::uint32_t x, unsigned j) const {
    if (log2k_ >= 0)
      return (x >> (static_cast<unsigned>(log2k_) * (n_ - 1 - j))) &
             (k_ - 1);
    return (x / pow_[n_ - 1 - j]) % k_;
  }

  /// Queue a packet from input port `src` joins at stage 0. Inline (with
  /// next_queue): the simulator calls these once per packet hop.
  [[nodiscard]] std::uint32_t entry_queue(std::uint32_t src,
                                          std::uint32_t dst) const {
    switch (kind_) {
      case TopologyKind::kButterfly:
        return replace_digit(src, 0, digit(dst, 0));
      case TopologyKind::kOmega: {
        // Shuffle the input, then the switch routes on the first digit:
        // queue = switch * k + dst[0], i.e. replace the LAST digit of the
        // shuffled position.
        const std::uint32_t pos = shuffle(src);
        return (pos / k_) * k_ + digit(dst, 0);
      }
    }
    return 0;
  }

  /// Queue the packet moves to at stage s+1, given its stage-s queue.
  /// Requires s+1 < stages().
  [[nodiscard]] std::uint32_t next_queue(unsigned s, std::uint32_t current,
                                         std::uint32_t dst) const {
    switch (kind_) {
      case TopologyKind::kButterfly:
        return replace_digit(current, s + 1, digit(dst, s + 1));
      case TopologyKind::kOmega: {
        const std::uint32_t pos = shuffle(current);
        return (pos / k_) * k_ + digit(dst, s + 1);
      }
    }
    return 0;
  }

  /// Output port a packet in stage-(n-1) queue `current` exits on.
  [[nodiscard]] std::uint32_t exit_port(std::uint32_t current) const {
    return current;
  }

  /// Perfect shuffle: left-rotate the base-k digits (Omega wiring).
  [[nodiscard]] std::uint32_t shuffle(std::uint32_t x) const {
    return (x % pow_[n_ - 1]) * k_ + x / pow_[n_ - 1];
  }

  [[nodiscard]] std::string describe() const;

 private:
  /// Address with digit j replaced by d.
  [[nodiscard]] std::uint32_t replace_digit(std::uint32_t x, unsigned j,
                                            std::uint32_t d) const {
    return x + (d - digit(x, j)) * pow_[n_ - 1 - j];
  }

  TopologyKind kind_;
  unsigned k_;
  unsigned n_;
  int log2k_ = -1;  ///< log2(k) when k is a power of two, else -1
  std::vector<std::uint32_t> pow_;
};

}  // namespace ksw::sim
