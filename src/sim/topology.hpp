// Multistage network topologies.
//
// Both are delta networks on N = k^n ports built from k x k switches; a
// packet's route is fully determined by (source, destination). They are
// isomorphic (same per-stage contention statistics under any
// source-symmetric traffic), which the test suite verifies empirically —
// but the queue *addresses* differ, and the Omega form mirrors how the
// NYU Ultracomputer / RP3 hardware was actually drawn.
//
//   * Butterfly: the queue reached after s+1 routing steps is the address
//     dst[0..s] ++ src[s+1..n-1] (digit substitution; no wiring tables).
//   * Omega: a perfect shuffle (left digit rotation) precedes every
//     switch column; a switch's output queue is switch*k + routing digit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ksw::sim {

enum class TopologyKind { kButterfly, kOmega };

/// Address arithmetic for an n-stage delta network of k x k switches.
/// Queues are numbered 0..k^n-1 within each stage.
class Topology {
 public:
  Topology(TopologyKind kind, unsigned k, unsigned stages);

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned stages() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t ports() const noexcept { return pow_[n_]; }

  /// MSB-first base-k digit j of an n-digit address.
  [[nodiscard]] std::uint32_t digit(std::uint32_t x, unsigned j) const {
    return (x / pow_[n_ - 1 - j]) % k_;
  }

  /// Queue a packet from input port `src` joins at stage 0.
  [[nodiscard]] std::uint32_t entry_queue(std::uint32_t src,
                                          std::uint32_t dst) const;

  /// Queue the packet moves to at stage s+1, given its stage-s queue.
  /// Requires s+1 < stages().
  [[nodiscard]] std::uint32_t next_queue(unsigned s, std::uint32_t current,
                                         std::uint32_t dst) const;

  /// Output port a packet in stage-(n-1) queue `current` exits on.
  [[nodiscard]] std::uint32_t exit_port(std::uint32_t current) const {
    return current;
  }

  /// Perfect shuffle: left-rotate the base-k digits (Omega wiring).
  [[nodiscard]] std::uint32_t shuffle(std::uint32_t x) const {
    return (x % pow_[n_ - 1]) * k_ + x / pow_[n_ - 1];
  }

  [[nodiscard]] std::string describe() const;

 private:
  /// Address with digit j replaced by d.
  [[nodiscard]] std::uint32_t replace_digit(std::uint32_t x, unsigned j,
                                            std::uint32_t d) const {
    return x + (d - digit(x, j)) * pow_[n_ - 1 - j];
  }

  TopologyKind kind_;
  unsigned k_;
  unsigned n_;
  std::vector<std::uint32_t> pow_;
};

}  // namespace ksw::sim
