// Internals shared by the two network-simulation engines.
//
// run_network (flat SoA pool + active-set scheduler) and
// run_network_reference (the seed full-sweep engine kept as a correctness
// oracle) must agree bit-for-bit on every output, including telemetry.
// Everything that is not the cycle loop itself — config validation, metric
// naming, per-stage telemetry scaffolding, the warmup-convergence grid —
// lives here so the engines cannot drift apart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/network.hpp"

namespace ksw::sim::detail {

/// Reject invalid configs (everything checkable without the topology).
void validate(const NetworkConfig& cfg);

/// Reject hotspot targets outside the port range. Separate from validate()
/// because the port count comes from the constructed Topology.
void validate_hotspot_target(const NetworkConfig& cfg, std::uint32_t ports);

/// "sim.stageNN.<what>" — stages are 1-based and zero-padded so the
/// registry's name order matches stage order.
std::string stage_metric(unsigned stage, const char* what);

/// Cached per-stage metric handles so the hot loop never touches the
/// registry's map.
struct StageObs {
  obs::Histogram* occupancy = nullptr;
  obs::Gauge* peak = nullptr;
  obs::Counter* starts = nullptr;
  obs::Counter* idle = nullptr;
  obs::Counter* busy = nullptr;
  obs::Counter* blocked = nullptr;
};

/// Per-stage event tallies kept in plain (non-atomic) locals during the
/// cycle loop — the replicate is single-threaded, so deferring the atomic
/// registry updates to one flush after the run keeps the per-event cost to
/// an ordinary increment. Flushed into StageObs by ObsState::flush.
struct StageTally {
  std::uint64_t starts = 0;
  std::uint64_t idle = 0;
  std::uint64_t busy = 0;
  std::uint64_t blocked = 0;
  std::size_t peak = 0;
};

/// All per-run telemetry state: metric handles, event tallies, and the
/// warmup-convergence trace. Dead weight (empty vectors, false flags) when
/// telemetry is off or compiled out.
struct ObsState {
  bool on = false;
  std::vector<StageObs> sobs;
  std::vector<StageTally> tally;
  obs::Counter* dropped0 = nullptr;

  /// Warmup-convergence trace: cumulative per-stage wait sums (warmup
  /// included) snapshotted on an even grid over the whole run.
  bool trace_on = false;
  std::vector<std::int64_t> conv_grid;
  std::vector<double> conv_sum;
  std::vector<std::uint64_t> conv_cnt;
  std::size_t next_cp = 0;

  /// Register metric handles in out.metrics and build the trace grid.
  void init(const NetworkConfig& cfg, unsigned n, std::int64_t total_cycles,
            NetworkResults& out);

  /// Record a convergence checkpoint if cycle `t` completes one.
  void checkpoint(std::int64_t t, NetworkResults& out);

  /// Flush tallies and run counters into out.metrics after the cycle loop.
  void flush(std::int64_t warmup_end, std::int64_t total_cycles,
             NetworkResults& out) const;
};

}  // namespace ksw::sim::detail
