// Internals shared by the two network-simulation engines.
//
// run_network (flat SoA pool + active-set scheduler) and
// run_network_reference (the seed full-sweep engine kept as a correctness
// oracle) must agree bit-for-bit on every output, including telemetry.
// Everything that is not the cycle loop itself — config validation, metric
// naming, per-stage telemetry scaffolding, the warmup-convergence grid —
// lives here so the engines cannot drift apart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/network.hpp"
#include "simd/inject.hpp"

namespace ksw::sim::detail {

/// Reject invalid configs (everything checkable without the topology).
void validate(const NetworkConfig& cfg);

/// Build the counter-mode injection parameters for a replicate. Shared by
/// both engines so the thresholds (and therefore the sampled bits) cannot
/// drift between them. The tiny-probability edge is intentional: a rate
/// below 2^-33 rounds to threshold 0, which both paths treat as "never".
[[nodiscard]] inline simd::InjectParams make_inject_params(
    const NetworkConfig& cfg, std::uint32_t ports) {
  simd::InjectParams prm;
  prm.key = rng::philox_key(cfg.seed);
  prm.thr_arrival = rng::bernoulli_threshold(cfg.p);
  prm.thr_hotspot =
      cfg.hotspot > 0.0 ? rng::bernoulli_threshold(cfg.hotspot) : 0;
  prm.thr_favorite = cfg.q > 0.0 ? rng::bernoulli_threshold(cfg.q) : 0;
  prm.hotspot_target = cfg.hotspot_target;
  prm.ports = ports;
  return prm;
}

/// Reject hotspot targets outside the port range. Separate from validate()
/// because the port count comes from the constructed Topology.
void validate_hotspot_target(const NetworkConfig& cfg, std::uint32_t ports);

/// "sim.stageNN.<what>" — stages are 1-based and zero-padded so the
/// registry's name order matches stage order.
std::string stage_metric(unsigned stage, const char* what);

/// Flow-control bookkeeping shared verbatim by both engines, so the
/// admission rule, the downstream arrival stamp, and the credit ledger
/// cannot drift between them. All methods are no-ops for infinite queues;
/// credit state is only allocated under FlowControl::kCredit.
///
/// Credit ledger: one counter per queue, initialized to buffer_capacity.
/// A forward into queue q consumes credits_[q]; a service start at q
/// (stage >= 1 — first-stage queues are filled by injection, which uses
/// occupancy directly) schedules a +1 for cycle t + credit_latency. The
/// returns ride a small ring of per-cycle buckets drained by begin_cycle.
struct FlowState {
  FlowControl scheme = FlowControl::kCutThrough;
  unsigned capacity = 0;  ///< 0 = infinite (every check passes)
  unsigned latency = 0;

  void init(const NetworkConfig& cfg, unsigned stages, std::uint32_t ports);

  /// Apply credit returns scheduled for cycle t. Call first thing each
  /// cycle, before injection and service.
  void begin_cycle(std::int64_t t);

  /// May a packet be forwarded into queue next_q, whose current occupancy
  /// (in-flight packets included) is next_size? Call only when finite.
  [[nodiscard]] bool admit(std::size_t next_q, std::size_t next_size) const {
    if (scheme == FlowControl::kCredit) return credits_[next_q] > 0;
    return next_size < capacity;
  }

  /// Account a forward into next_q (after admit() said yes).
  void on_forward(std::size_t next_q) {
    if (!credits_.empty()) --credits_[next_q];
  }

  /// Account a service start (dequeue) at queue q of the given stage:
  /// under kCredit this schedules the credit return.
  void on_service_start(unsigned stage, std::size_t q, std::int64_t t) {
    if (credits_.empty() || stage == 0) return;
    auto& bucket =
        pending_[static_cast<std::size_t>((t + latency) %
                                          static_cast<std::int64_t>(
                                              pending_.size()))];
    bucket.push_back(static_cast<std::uint32_t>(q));
  }

  /// Cycle at which a packet forwarded at t becomes eligible downstream.
  [[nodiscard]] std::int64_t arrival_stamp(std::int64_t t,
                                           std::uint32_t service) const {
    return scheme == FlowControl::kStoreAndForward
               ? t + static_cast<std::int64_t>(service)
               : t + 1;
  }

  /// Current credits for queue q (testing/telemetry; kCredit only).
  [[nodiscard]] std::uint32_t credits(std::size_t q) const {
    return credits_[q];
  }

 private:
  std::vector<std::uint32_t> credits_;
  std::vector<std::vector<std::uint32_t>> pending_;
};

/// Cached per-stage metric handles so the hot loop never touches the
/// registry's map.
struct StageObs {
  obs::Histogram* occupancy = nullptr;
  obs::Gauge* peak = nullptr;
  obs::Counter* starts = nullptr;
  obs::Counter* idle = nullptr;
  obs::Counter* busy = nullptr;
  obs::Counter* blocked = nullptr;
  obs::Counter* credit_stalls = nullptr;  ///< kCredit runs only
};

/// Per-stage event tallies kept in plain (non-atomic) locals during the
/// cycle loop — the replicate is single-threaded, so deferring the atomic
/// registry updates to one flush after the run keeps the per-event cost to
/// an ordinary increment. Flushed into StageObs by ObsState::flush.
struct StageTally {
  std::uint64_t starts = 0;
  std::uint64_t idle = 0;
  std::uint64_t busy = 0;
  std::uint64_t blocked = 0;
  std::uint64_t credit_stalls = 0;
  std::size_t peak = 0;
};

/// All per-run telemetry state: metric handles, event tallies, and the
/// warmup-convergence trace. Dead weight (empty vectors, false flags) when
/// telemetry is off or compiled out.
struct ObsState {
  bool on = false;
  std::vector<StageObs> sobs;
  std::vector<StageTally> tally;
  obs::Counter* dropped0 = nullptr;

  /// Warmup-convergence trace: cumulative per-stage wait sums (warmup
  /// included) snapshotted on an even grid over the whole run.
  bool trace_on = false;
  std::vector<std::int64_t> conv_grid;
  std::vector<double> conv_sum;
  std::vector<std::uint64_t> conv_cnt;
  std::size_t next_cp = 0;

  /// Register metric handles in out.metrics and build the trace grid.
  void init(const NetworkConfig& cfg, unsigned n, std::int64_t total_cycles,
            NetworkResults& out);

  /// Record a convergence checkpoint if cycle `t` completes one.
  void checkpoint(std::int64_t t, NetworkResults& out);

  /// Flush tallies and run counters into out.metrics after the cycle loop.
  void flush(std::int64_t warmup_end, std::int64_t total_cycles,
             NetworkResults& out) const;
};

}  // namespace ksw::sim::detail
