// Cycle-accurate simulation of a full n-stage banyan (butterfly/delta)
// network of k x k output-queued switches — the system the paper's tables
// and figures are measured on.
//
// Topology. With N = k^n input ports, the queue a packet occupies after its
// s-th routing step is the butterfly node address
//
//   addr_s = dst[0..s] ++ src[s+1..n-1]        (base-k digits, MSB first)
//
// so no explicit wiring tables are needed: moving from stage s to s+1
// replaces digit s+1 of the address with the corresponding destination
// digit. The k queues feeding a given queue differ in exactly one digit —
// the banyan property.
//
// Timing (paper Section II idealization):
//   * every queue accepts any number of packets per cycle;
//   * a queue starts at most one service per cycle; a service of length m
//     occupies cycles t..t+m-1;
//   * cut-through forwarding: the head packet reaches the next stage's
//     queue at cycle t+1, so waiting there can overlap the tail of the
//     previous service (total network service = n + m - 1);
//   * a packet arriving at cycle t can start service at cycle t (waiting
//     time 0).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/service_spec.hpp"
#include "sim/topology.hpp"
#include "stats/covariance.hpp"
#include "stats/histogram.hpp"
#include "stats/moment_tally.hpp"

namespace ksw::sim {

/// Maximum stages for which per-packet stage waits can be tracked (used by
/// correlation collection).
inline constexpr unsigned kMaxTrackedStages = 16;

/// Flow-control discipline applied when buffer_capacity is finite. The
/// schemes differ in when a head-of-line packet may leave its queue and
/// when it becomes eligible downstream (Graphite's flow_control_schemes
/// are the modeling reference):
///   * kCutThrough — virtual cut-through: the transfer is admitted when
///     the downstream queue has a free slot at the attempt, and the packet
///     is eligible downstream one cycle later (the paper's timing). This
///     is the historic finite-buffer behavior and the default.
///   * kStoreAndForward — same occupancy-based admission, but the packet
///     only becomes eligible downstream after its full service time
///     (arrival is stamped t + m instead of t + 1), so waiting cannot
///     overlap the tail of the upstream transmission. Identical to
///     kCutThrough under det:1 service.
///   * kCredit — credit-based backpressure: each upstream holds one credit
///     per downstream slot, a transfer consumes a credit, and the credit
///     returns credit_latency cycles after the downstream queue starts a
///     service. More conservative than cut-through (in-flight returns are
///     invisible), so it blocks earlier at the same depth.
enum class FlowControl {
  kCutThrough,
  kStoreAndForward,
  kCredit,
};

/// Canonical scheme names: "vct", "saf", "credit".
[[nodiscard]] const char* to_string(FlowControl flow) noexcept;

/// Parse a canonical scheme name; throws std::invalid_argument otherwise.
[[nodiscard]] FlowControl parse_flow_control(const std::string& name);

/// Random-number generation scheme for the simulation engines.
///   * kPhilox — counter-based Philox4x32-10 streams addressed by
///     (seed, cycle, port, site); draws are independent of visit order,
///     which enables SIMD batch sampling and restart of a replicate at
///     any cycle (the default; see src/rng/philox.hpp and DESIGN.md §8b).
///   * kXoshiro — the historic sequential xoshiro256** stream, preserved
///     byte-for-byte for comparison against pre-counter baselines.
/// The two produce different (equally valid) sample paths, so statistics
/// match in distribution, not bitwise.
enum class RngKind {
  kPhilox,
  kXoshiro,
};

/// Canonical names: "philox", "xoshiro".
[[nodiscard]] const char* to_string(RngKind rng) noexcept;

/// Parse a canonical RNG name; throws std::invalid_argument otherwise.
[[nodiscard]] RngKind parse_rng_kind(const std::string& name);

/// Telemetry knobs for run_network. Everything here is additive: results
/// used by the paper-reproduction paths are untouched whether or not
/// telemetry is on, and the whole block is dead code when observability
/// is compiled out (KSW_OBS_ENABLED=0).
struct ObsConfig {
  /// Collect per-stage telemetry (occupancy histograms, peak depth,
  /// service starts, drops/blocks) and phase timers into
  /// NetworkResults::metrics.
  bool enabled = false;
  /// Cycle stride for occupancy/utilization sampling; 0 disables periodic
  /// sampling but keeps event counters. Stride 64 keeps the enabled-mode
  /// overhead under ~5% (see scripts/check_obs_overhead.sh).
  unsigned stride = 64;
  /// Number of warmup-convergence checkpoints spread evenly over the whole
  /// run (warmup + measurement); 0 disables the trace.
  unsigned trace_points = 24;
  /// Fixed occupancy-histogram range: buckets 0,1,...,occupancy_buckets-1
  /// waiting packets, deeper queues land in the overflow bucket.
  unsigned occupancy_buckets = 64;
};

struct NetworkConfig {
  unsigned k = 2;       ///< switch degree; network has k^stages ports
  unsigned stages = 8;  ///< number of switch stages
  /// Wiring pattern; butterfly and Omega are isomorphic, so statistics
  /// agree in distribution, but queue addresses differ.
  TopologyKind topology = TopologyKind::kButterfly;
  double p = 0.5;       ///< per-input batch probability per cycle
  unsigned bulk = 1;    ///< packets per batch (same destination)
  double q = 0.0;       ///< probability a batch targets dst == src
  /// Hot-spot extension (Pfister-Norton tree saturation, referenced by the
  /// RP3 work): with this probability a batch targets `hotspot_target`
  /// regardless of q. The paper does not analyze this pattern; it is
  /// provided for simulation studies.
  double hotspot = 0.0;
  std::uint32_t hotspot_target = 0;
  ServiceSpec service = ServiceSpec::deterministic(1);
  std::int64_t warmup_cycles = 10'000;
  std::int64_t measure_cycles = 100'000;
  std::uint64_t seed = 1;

  /// Random-stream scheme; kPhilox draws by (cycle, port, site)
  /// coordinate and is the default, kXoshiro replays the historic
  /// sequential stream.
  RngKind rng = RngKind::kPhilox;

  /// 0 = infinite queues (the paper's model). Otherwise, a queue holds at
  /// most this many waiting packets: interior transfers block the upstream
  /// service, and injections at full first-stage queues are dropped.
  /// Occupancy is evaluated at the moment a transfer is attempted and
  /// counts in-flight packets — a one-cycle-granularity approximation of
  /// real switch flow control.
  unsigned buffer_capacity = 0;

  /// Flow-control scheme for finite buffers. Schemes other than the
  /// default cut-through require buffer_capacity > 0 (they are meaningless
  /// without backpressure), so every infinite-queue config is untouched.
  FlowControl flow = FlowControl::kCutThrough;

  /// kCredit only: cycles between a downstream service start and the
  /// credit becoming visible upstream again. Must be >= 1; at 1 the
  /// return is as prompt as the cycle model allows, larger values model
  /// slower reverse links and stall upstreams earlier.
  unsigned credit_latency = 2;

  /// Collect the stage-by-stage waiting covariance matrix (Table VI).
  /// Requires stages <= kMaxTrackedStages.
  bool track_correlations = false;

  /// Collect a full waiting-time histogram per stage (used to check the
  /// paper's observation that the per-stage distributions are nearly the
  /// same at every stage).
  bool track_stage_histograms = false;

  /// Record the total waiting time accumulated over the first c stages for
  /// each c listed here (Tables VII-XII / Figs. 3-8 use {3,6,9,12}).
  std::vector<unsigned> total_checkpoints;

  /// Observability/telemetry settings (off by default).
  ObsConfig obs;

  /// Traffic intensity rho = p * bulk * mean service.
  [[nodiscard]] double rho() const {
    return p * static_cast<double>(bulk) * service.mean();
  }
};

struct NetworkResults {
  /// Per-stage waiting-time tallies (index 0 = first stage). Exact
  /// integer moment sums — order-independent, merge-exact, and cheap on
  /// the hot path (see stats/moment_tally.hpp).
  std::vector<stats::MomentTally> stage_wait;
  /// Per-stage sampled queue depth (waiting packets only).
  std::vector<stats::MomentTally> stage_depth;
  /// Per-stage waiting-time histograms (only when track_stage_histograms).
  std::vector<stats::IntHistogram> stage_hist;
  /// Histograms of total waiting over the first c stages, one per
  /// checkpoint (same order as NetworkConfig::total_checkpoints).
  std::vector<stats::IntHistogram> total_wait;
  /// Stage-by-stage waiting covariance (only when track_correlations).
  std::optional<stats::CovarianceMatrix> stage_covariance;

  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;  ///< finite buffers only

  /// Telemetry registry (populated only when NetworkConfig::obs.enabled):
  /// per-stage "sim.stageNN.*" occupancy histograms, peak depths, service
  /// starts, idle/busy samples, drop/block counters, plus "sim.phase.*"
  /// timers and cycle counters. Merged deterministically in replicate
  /// index order; only timer wall-clock durations are nondeterministic.
  obs::Registry metrics;
  /// Warmup-convergence trace (when obs.enabled and obs.trace_points > 0).
  obs::ConvergenceTrace convergence;

  void merge(const NetworkResults& other);
};

/// Run the network simulation (flat SoA queue pool + active-set scheduler;
/// see network.cpp for the layout notes).
[[nodiscard]] NetworkResults run_network(const NetworkConfig& cfg);

/// The seed engine (array-of-structs packets, full port sweep each cycle),
/// kept as a correctness oracle: for any config it produces bit-identical
/// results — statistics, histograms, covariances, and telemetry — to
/// run_network. Orders of magnitude slower on large topologies; use it for
/// A/B debugging and the equivalence test suite, not production runs.
[[nodiscard]] NetworkResults run_network_reference(const NetworkConfig& cfg);

}  // namespace ksw::sim
