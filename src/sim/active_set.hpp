// Active-set port scheduler for one switch stage.
//
// The seed cycle loop scanned every port of every stage each cycle; at low
// load almost all of that work is skip checks. This set tracks, per stage,
// which ports could start a service this cycle: a 64-bit bitmap of
// occupied (non-empty) ports, a bitmap of busy ports (mid multi-cycle
// service), and a min-heap of busy expiries. The scan visits only set bits
// of `occupied & ~busy`, in ascending port order — the same order as a
// full sweep, so statistics accumulate bit-identically to the seed engine.
//
// Maintenance is incremental: push into an empty queue sets the occupied
// bit, the pop that empties a queue clears it, starting an m >= 2 cycle
// service sets the busy bit and queues its expiry (unit services never
// block the next cycle, so callers skip the heap for them).
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace ksw::sim {

/// Worklist of serviceable ports within one stage.
class ActiveSet {
 public:
  explicit ActiveSet(std::uint32_t ports)
      : occupied_((ports + 63) / 64, 0), busy_((ports + 63) / 64, 0) {}

  /// Port `a` has at least one queued packet.
  void mark_occupied(std::uint32_t a) noexcept {
    occupied_[a >> 6] |= std::uint64_t{1} << (a & 63);
  }

  /// Port `a`'s queue just became empty.
  void clear_occupied(std::uint32_t a) noexcept {
    occupied_[a >> 6] &= ~(std::uint64_t{1} << (a & 63));
  }

  /// Port `a` may not start another service before cycle `clear_at`.
  void mark_busy(std::uint32_t a, std::int64_t clear_at) {
    busy_[a >> 6] |= std::uint64_t{1} << (a & 63);
    expiry_.emplace(clear_at, a);
  }

  /// Release every port whose busy period has ended by cycle `t`. Call
  /// before scanning candidates for cycle `t`.
  void expire(std::int64_t t) {
    while (!expiry_.empty() && expiry_.top().first <= t) {
      const std::uint32_t a = expiry_.top().second;
      expiry_.pop();
      busy_[a >> 6] &= ~(std::uint64_t{1} << (a & 63));
    }
  }

  /// Visit every occupied, non-busy port in ascending order. `fn` may
  /// clear_occupied / mark_busy the port it is visiting (each word is
  /// snapshotted before its bits are walked).
  template <typename Fn>
  void for_each_candidate(Fn&& fn) const {
    for (std::size_t wi = 0; wi < occupied_.size(); ++wi) {
      std::uint64_t w = occupied_[wi] & ~busy_[wi];
      while (w != 0) {
        const auto a = static_cast<std::uint32_t>(
            (wi << 6) + static_cast<std::size_t>(std::countr_zero(w)));
        w &= w - 1;
        fn(a);
      }
    }
  }

 private:
  std::vector<std::uint64_t> occupied_;
  std::vector<std::uint64_t> busy_;
  using Expiry = std::pair<std::int64_t, std::uint32_t>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiry_;
};

}  // namespace ksw::sim
