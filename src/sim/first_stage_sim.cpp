#include "sim/first_stage_sim.hpp"

#include <stdexcept>

#include "rng/philox.hpp"
#include "sim/queue_pool.hpp"

namespace ksw::sim {

namespace {

struct Waiting {
  std::int64_t arrival = 0;
  std::uint32_t service = 1;
};

}  // namespace

void FirstStageResults::merge(const FirstStageResults& other) {
  waiting.merge(other.waiting);
  histogram.merge(other.histogram);
  queue_depth.merge(other.queue_depth);
  messages += other.messages;
}

FirstStageResults run_first_stage(const FirstStageConfig& cfg) {
  if (cfg.k == 0 || cfg.s == 0)
    throw std::invalid_argument("run_first_stage: k and s must be >= 1");
  if (!(cfg.p >= 0.0 && cfg.p <= 1.0))
    throw std::invalid_argument("run_first_stage: p outside [0,1]");
  if (!(cfg.q >= 0.0 && cfg.q <= 1.0))
    throw std::invalid_argument("run_first_stage: q outside [0,1]");
  if (cfg.bulk == 0)
    throw std::invalid_argument("run_first_stage: bulk == 0");
  if (!(cfg.hotspot >= 0.0 && cfg.hotspot <= 1.0))
    throw std::invalid_argument("run_first_stage: hotspot outside [0,1]");
  // Range-checked on every construction path, even when hotspot == 0 —
  // mirrors validate_hotspot_target in the network engine.
  if (cfg.hotspot_target >= cfg.s)
    throw std::invalid_argument(
        "run_first_stage: hotspot_target must name an output < s");

  // Counter-mode thresholds (only touched when cfg.rng == kPhilox). The
  // single switch is small (k inputs), so arrivals stay scalar — one
  // Philox block per (cycle, input) in the first-stage draw domain.
  const bool philox = cfg.rng == RngKind::kPhilox;
  const rng::Philox4x32::Key key = rng::philox_key(cfg.seed);
  const std::uint64_t thr_arrival = rng::bernoulli_threshold(cfg.p);
  const std::uint64_t thr_hotspot =
      cfg.hotspot > 0.0 ? rng::bernoulli_threshold(cfg.hotspot) : 0;
  const std::uint64_t thr_favorite =
      cfg.q > 0.0 ? rng::bernoulli_threshold(cfg.q) : 0;

  rng::Xoshiro256 gen(cfg.seed);
  QueuePool<Waiting> queues(cfg.s);
  std::vector<std::int64_t> busy_until(cfg.s, 0);

  FirstStageResults out;
  const std::int64_t total = cfg.warmup_cycles + cfg.measure_cycles;
  constexpr std::int64_t kDepthSampleStride = 64;

  for (std::int64_t t = 0; t < total; ++t) {
    // Arrivals: each input independently delivers one batch; destinations
    // are the input's favorite output with probability q, else uniform.
    if (philox) {
      for (unsigned input = 0; input < cfg.k; ++input) {
        const auto block = rng::Philox4x32::block(
            rng::philox_counter(t, input, rng::Site::kFsInject), key);
        if (static_cast<std::uint64_t>(block[rng::kLaneArrival]) >=
            thr_arrival)
          continue;
        const unsigned dest =
            (thr_hotspot != 0 &&
             static_cast<std::uint64_t>(block[rng::kLaneHotspot]) <
                 thr_hotspot)
                ? static_cast<unsigned>(cfg.hotspot_target)
            : (thr_favorite != 0 &&
               static_cast<std::uint64_t>(block[rng::kLaneFavorite]) <
                   thr_favorite)
                ? input % cfg.s
                : rng::uniform_below(block[rng::kLaneDest], cfg.s);
        rng::LaneSeq svc(key, t, input, rng::Site::kFsService);
        for (unsigned pkt = 0; pkt < cfg.bulk; ++pkt)
          queues.push(dest, Waiting{t, cfg.service.sample(svc)});
      }
    } else {
      for (unsigned input = 0; input < cfg.k; ++input) {
        if (!gen.bernoulli(cfg.p)) continue;
        // Hotspot draw first, then the favorite-output draw; both guards
        // short-circuit so a config with hotspot == 0 (resp. q == 0) makes
        // exactly the same RNG draws as before the feature existed.
        const unsigned dest =
            (cfg.hotspot > 0.0 && gen.bernoulli(cfg.hotspot))
                ? static_cast<unsigned>(cfg.hotspot_target)
            : (cfg.q > 0.0 && gen.bernoulli(cfg.q))
                ? input % cfg.s
                : static_cast<unsigned>(gen.uniform_int(cfg.s));
        for (unsigned pkt = 0; pkt < cfg.bulk; ++pkt)
          queues.push(dest, Waiting{t, cfg.service.sample(gen)});
      }
    }

    // Service: each queue begins at most one service per cycle.
    const bool measuring = t >= cfg.warmup_cycles;
    for (unsigned qi = 0; qi < cfg.s; ++qi) {
      if (busy_until[qi] > t || queues.empty(qi)) continue;
      const Waiting head = queues.front(qi);
      queues.pop(qi);
      busy_until[qi] = t + head.service;
      if (measuring) {
        const std::int64_t w = t - head.arrival;
        out.waiting.add(w);
        out.histogram.add(w);
        ++out.messages;
      }
    }

    if (measuring && t % kDepthSampleStride == 0)
      for (unsigned qi = 0; qi < cfg.s; ++qi)
        out.queue_depth.add(static_cast<std::int64_t>(queues.size(qi)));
  }
  return out;
}

}  // namespace ksw::sim
