// Growable ring-buffer FIFO.
//
// A single self-contained queue: geometric growth, never shrinks, so
// steady-state operation is allocation-free. The simulator hot paths use
// QueuePool (queue_pool.hpp), which applies the same ring discipline to
// thousands of queues with flat shared metadata and arena storage; this
// class remains for single-queue uses (and as the storage of the reference
// network engine, which mirrors the seed layout on purpose).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ksw::sim {

/// FIFO queue over a power-of-two ring buffer.
template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  void push(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T& front() noexcept { return buf_[head_]; }
  [[nodiscard]] const T& front() const noexcept { return buf_[head_]; }

  /// Element i positions behind the front (0 == front). No bounds check.
  [[nodiscard]] const T& at(std::size_t i) const noexcept {
    return buf_[(head_ + i) & mask_];
  }

  void pop() noexcept {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 4 : buf_.size() * 2;
    std::vector<T> fresh(new_cap);
    for (std::size_t i = 0; i < size_; ++i)
      fresh[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(fresh);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ksw::sim
