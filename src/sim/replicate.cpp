#include "sim/replicate.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "rng/xoshiro.hpp"

namespace ksw::sim {

std::uint64_t replicate_seed(std::uint64_t base_seed, unsigned replicate) {
  // Mix the replicate index through SplitMix64 so nearby base seeds and
  // indices give decorrelated streams.
  rng::SplitMix64 sm(base_seed ^ (0x5851f42d4c957f2dULL *
                                  (static_cast<std::uint64_t>(replicate) + 1)));
  return sm.next();
}

NetworkResults replicate_network(const NetworkConfig& base,
                                 unsigned replicates, par::ThreadPool& pool) {
  if (replicates == 0)
    throw std::invalid_argument("replicate_network: replicates == 0");
  const bool obs_on = obs::kEnabled && base.obs.enabled;
  // Static contiguous-chunk sharding: replicates are equal-cost, so one
  // chunk per worker beats dynamic index stealing, and each replicate's
  // seed depends only on its index — results land in parts[i] regardless
  // of which worker ran it.
  std::vector<NetworkResults> parts(replicates);
  par::parallel_for_chunks(pool, replicates, [&](std::size_t i) {
    NetworkConfig cfg = base;
    cfg.seed = replicate_seed(base.seed, static_cast<unsigned>(i));
    parts[i] = run_network(cfg);
  });
  NetworkResults merged = std::move(parts[0]);
  {
    // Index-order merge keeps every aggregate bit-identical for a fixed
    // seed regardless of thread count; the timer makes the reduction cost
    // visible in run reports.
    obs::ScopedTimer timer(
        obs_on ? &merged.metrics.timer("sim.phase.merge") : nullptr);
    for (unsigned i = 1; i < replicates; ++i) merged.merge(parts[i]);
  }
  return merged;
}

FirstStageResults replicate_first_stage(const FirstStageConfig& base,
                                        unsigned replicates,
                                        par::ThreadPool& pool) {
  if (replicates == 0)
    throw std::invalid_argument("replicate_first_stage: replicates == 0");
  std::vector<FirstStageResults> parts(replicates);
  par::parallel_for_chunks(pool, replicates, [&](std::size_t i) {
    FirstStageConfig cfg = base;
    cfg.seed = replicate_seed(base.seed, static_cast<unsigned>(i));
    parts[i] = run_first_stage(cfg);
  });
  FirstStageResults merged = std::move(parts[0]);
  for (unsigned i = 1; i < replicates; ++i) merged.merge(parts[i]);
  return merged;
}

std::vector<double> replicate_network_means(const NetworkConfig& base,
                                            unsigned replicates,
                                            par::ThreadPool& pool,
                                            unsigned stage_index) {
  if (replicates == 0)
    throw std::invalid_argument("replicate_network_means: replicates == 0");
  std::vector<double> means(replicates);
  par::parallel_for_chunks(pool, replicates, [&](std::size_t i) {
    NetworkConfig cfg = base;
    cfg.seed = replicate_seed(base.seed, static_cast<unsigned>(i));
    const NetworkResults res = run_network(cfg);
    if (stage_index >= res.stage_wait.size())
      throw std::invalid_argument(
          "replicate_network_means: stage index out of range");
    means[i] = res.stage_wait[stage_index].mean();
  });
  return means;
}

}  // namespace ksw::sim
