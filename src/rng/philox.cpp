#include "rng/philox.hpp"

#include <cmath>

#include "rng/xoshiro.hpp"

namespace ksw::rng {

Philox4x32::Key philox_key(std::uint64_t seed) noexcept {
  // One SplitMix64 step decorrelates nearby seeds (replicate seeds are
  // themselves SplitMix64 outputs, but CLI users pass 1, 2, 3...).
  SplitMix64 sm(seed);
  const std::uint64_t k = sm.next();
  return {static_cast<std::uint32_t>(k),
          static_cast<std::uint32_t>(k >> 32)};
}

std::uint64_t bernoulli_threshold(double p) noexcept {
  if (!(p > 0.0)) return 0;
  if (p >= 1.0) return std::uint64_t{1} << 32;
  return static_cast<std::uint64_t>(std::llround(p * 0x1.0p32));
}

}  // namespace ksw::rng
