// Counter-based random-number generation for the simulator hot path.
//
// Philox4x32-10 (Salmon, Moraes, Dror, Shaw — "Parallel Random Numbers:
// As Easy as 1, 2, 3", SC'11): a bijective keyed permutation of a 128-bit
// counter producing four 32-bit words per block. Unlike the stateful
// xoshiro streams, a draw is a pure function
//
//   (key, counter) -> 4 x uint32
//
// so the simulator can address randomness *by coordinate* instead of by
// position in a sequence: seed + (replicate, cycle, port, site) names a
// draw no matter when — or on how many SIMD lanes at once — it is
// evaluated. That coordinate addressing is what makes the vectorized
// injection kernel (src/simd/inject.hpp) bit-identical to the scalar
// oracle, and what lets a killed replicate restart at any cycle with no
// carried generator state (see DESIGN.md §8b).
//
// Counter packing (one convention, shared by every consumer):
//   word 0  seq   — block sequence number within the site (multi-draw
//                   sites advance it; single-block sites leave it 0)
//   word 1  port  — port / input index
//   word 2  cycle — low 32 bits of the simulation cycle
//   word 3  cycle-hi | site — bits 0..23 carry cycle bits 32..55, bits
//                   24..31 carry the draw-domain Site tag
//
// The key is 64 bits derived from the per-replicate seed via SplitMix64,
// so the (base seed, replicate index) -> stream derivation of
// sim::replicate_seed carries over unchanged.
#pragma once

#include <array>
#include <cstdint>

namespace ksw::rng {

/// The Philox4x32-10 block cipher. Stateless; everything is static.
struct Philox4x32 {
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

  /// One 10-round block: the reference scalar implementation, and the
  /// bit-identity oracle for the SIMD kernels.
  [[nodiscard]] static Counter block(Counter ctr, Key key) noexcept {
    for (int round = 0; round < 10; ++round) {
      const std::uint64_t p0 =
          static_cast<std::uint64_t>(kMul0) * ctr[0];
      const std::uint64_t p1 =
          static_cast<std::uint64_t>(kMul1) * ctr[2];
      ctr = {static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ key[0],
             static_cast<std::uint32_t>(p1),
             static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ key[1],
             static_cast<std::uint32_t>(p0)};
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }
};

/// Draw-domain tags: every logically distinct consumer of randomness gets
/// its own counter subspace, so adding a draw site (or reordering visits)
/// can never shift another site's stream.
enum class Site : std::uint32_t {
  kInject = 0,     ///< network-engine injection block (see lanes below)
  kService = 1,    ///< network-engine service-time draws
  kFsInject = 2,   ///< first-stage simulator injection block
  kFsService = 3,  ///< first-stage simulator service-time draws
};

/// Lane roles within a `kInject`/`kFsInject` block. One block decides one
/// (cycle, port) injection completely; unused lanes cost nothing because
/// nothing is "consumed" from a counter-based stream.
inline constexpr int kLaneArrival = 0;   ///< bernoulli(p) arrival draw
inline constexpr int kLaneHotspot = 1;   ///< bernoulli(hotspot) draw
inline constexpr int kLaneFavorite = 2;  ///< bernoulli(q) favorite draw
inline constexpr int kLaneDest = 3;      ///< uniform destination draw

/// Derive the 64-bit Philox key for a replicate seed.
[[nodiscard]] Philox4x32::Key philox_key(std::uint64_t seed) noexcept;

/// Pack the shared counter convention.
[[nodiscard]] inline Philox4x32::Counter philox_counter(
    std::int64_t cycle, std::uint32_t port, Site site,
    std::uint32_t seq = 0) noexcept {
  const auto c = static_cast<std::uint64_t>(cycle);
  return {seq, port, static_cast<std::uint32_t>(c),
          (static_cast<std::uint32_t>(c >> 32) & 0x00ffffffu) |
              (static_cast<std::uint32_t>(site) << 24)};
}

/// Threshold for `draw32 < threshold` bernoulli trials: round(p * 2^32),
/// as a 64-bit value so p = 1 maps to 2^32 (always true). Shared by the
/// scalar and SIMD paths — both compare the unsigned 32-bit draw, widened
/// to 64 bits, against this.
[[nodiscard]] std::uint64_t bernoulli_threshold(double p) noexcept;

/// Map a 32-bit draw to [0, n) by fixed-point multiply: (draw * n) >> 32.
/// Bias is bounded by n / 2^32 (< 1e-6 for any realistic port count) and
/// the mapping is branch-free, which is what the SIMD lane blend needs.
[[nodiscard]] inline std::uint32_t uniform_below(std::uint32_t draw,
                                                 std::uint32_t n) noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(draw) * n) >> 32);
}

/// Map a 32-bit draw to the open interval (0, 1): (draw + 1/2) * 2^-32.
/// Never 0 or 1, so log(u) and CDF scans need no rejection loop.
[[nodiscard]] inline double unit_open(std::uint32_t draw) noexcept {
  return (static_cast<double>(draw) + 0.5) * 0x1.0p-32;
}

/// Sequential lane reader over one (cycle, port, site) subspace — the
/// counter-mode analogue of "the next draw" for sites that take a
/// data-dependent number of draws (service sampling under bulk arrivals,
/// multi-size mixtures). Draws are (key, cycle, port, site, k) for
/// k = 0, 1, ... regardless of what any other site or port consumed.
class LaneSeq {
 public:
  LaneSeq(Philox4x32::Key key, std::int64_t cycle, std::uint32_t port,
          Site site) noexcept
      : key_(key), cycle_(cycle), port_(port), site_(site) {}

  /// Next 32-bit lane (lazy: the first call computes block seq 0).
  std::uint32_t next_u32() noexcept {
    if (lane_ == 4) {
      block_ = Philox4x32::block(philox_counter(cycle_, port_, site_, seq_),
                                 key_);
      ++seq_;
      lane_ = 0;
    }
    return block_[static_cast<std::size_t>(lane_++)];
  }

  /// Next uniform double in (0, 1) with 32-bit resolution.
  double next_unit() noexcept { return unit_open(next_u32()); }

 private:
  Philox4x32::Key key_;
  std::int64_t cycle_;
  std::uint32_t port_;
  Site site_;
  std::uint32_t seq_ = 0;
  int lane_ = 4;
  Philox4x32::Counter block_{};
};

}  // namespace ksw::rng
