#include "rng/xoshiro.hpp"

#include <cmath>

namespace ksw::rng {

namespace {

// Official jump polynomials from the xoshiro256** reference implementation.
constexpr std::array<std::uint64_t, 4> kJump = {
    0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
    0x39abdc4529b1661cULL};

constexpr std::array<std::uint64_t, 4> kLongJump = {
    0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
    0x39109bb02acbe635ULL};

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept : s_{} {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

void Xoshiro256::apply_jump(
    const std::array<std::uint64_t, 4>& table) noexcept {
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : table) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        acc[0] ^= s_[0];
        acc[1] ^= s_[1];
        acc[2] ^= s_[2];
        acc[3] ^= s_[3];
      }
      operator()();
    }
  }
  s_ = acc;
}

void Xoshiro256::jump() noexcept { apply_jump(kJump); }

void Xoshiro256::long_jump() noexcept { apply_jump(kLongJump); }

Xoshiro256 Xoshiro256::split(std::uint64_t n) const noexcept {
  Xoshiro256 out = *this;
  for (std::uint64_t i = 0; i < n; ++i) out.jump();
  return out;
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire multiply-shift with rejection to remove bias.
  std::uint64_t x = operator()();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    while (lo < threshold) {
      x = operator()();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Xoshiro256::geometric(double p) noexcept {
  if (p >= 1.0) return 1;
  // Inversion: ceil(log(U) / log(1-p)) over U in (0,1).
  double u = uniform();
  while (u <= 0.0) u = uniform();
  const double v = std::log(u) / std::log1p(-p);
  return 1 + static_cast<std::uint64_t>(v);
}

}  // namespace ksw::rng
