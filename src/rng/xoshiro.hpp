// Deterministic, splittable random-number generation for parallel
// simulation.
//
// xoshiro256** (Blackman & Vigna) with jump()/long_jump() gives each
// replicate a provably non-overlapping 2^128-step subsequence of one master
// stream, so results are bit-identical for a fixed seed regardless of how
// replicates are scheduled across threads.
#pragma once

#include <array>
#include <cstdint>

namespace ksw::rng {

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state. Also a
/// fine standalone generator for non-critical uses.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion (never produces the all-zero state).
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advance 2^128 steps; partitions the period into non-overlapping
  /// subsequences for parallel replicates.
  void jump() noexcept;

  /// Advance 2^192 steps; partitions into coarser blocks for distributed
  /// use on top of jump().
  void long_jump() noexcept;

  /// A generator `n` jumps ahead of this one (this one is unchanged).
  [[nodiscard]] Xoshiro256 split(std::uint64_t n) const noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method with
  /// rejection).
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Geometric on {1, 2, ...} with success probability p: number of trials
  /// up to and including the first success.
  std::uint64_t geometric(double p) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  void apply_jump(const std::array<std::uint64_t, 4>& table) noexcept;

  std::array<std::uint64_t, 4> s_;
};

}  // namespace ksw::rng
