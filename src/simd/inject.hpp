// Batched counter-mode injection sampling for the network engines.
//
// One call decides a whole cycle's worth of per-port injections: for each
// source port, whether a batch arrives this cycle and, if so, its
// destination. Because the draws are Philox counter blocks addressed by
// (cycle, port) — never by visit order — the batch can be evaluated eight
// ports at a time with AVX2 and still produce exactly the bits the scalar
// oracle produces one port at a time. inject_one() below IS the contract;
// every vector kernel must match it draw for draw.
//
// Destination semantics (identical to the historic per-port draw order):
//   lane 0  arrival   — batch arrives iff draw < thr_arrival
//   lane 1  hotspot   — if hotspot traffic is on and draw < thr_hotspot,
//                       dst = hotspot_target
//   lane 2  favorite  — else if favorite traffic is on and
//                       draw < thr_favorite, dst = the port itself
//   lane 3  dest      — else dst = (draw * ports) >> 32
// Non-arrivals are reported as kNoArrival so callers can skip them with a
// single compare.
#pragma once

#include <cstdint>

#include "rng/philox.hpp"

namespace ksw::simd {

/// No batch arrived at this port this cycle.
inline constexpr std::uint32_t kNoArrival = 0xffffffffu;

/// Cycle-invariant injection parameters (build once per run).
struct InjectParams {
  rng::Philox4x32::Key key{};
  std::uint64_t thr_arrival = 0;   ///< bernoulli_threshold(p)
  std::uint64_t thr_hotspot = 0;   ///< bernoulli_threshold(hotspot), 0 = off
  std::uint64_t thr_favorite = 0;  ///< bernoulli_threshold(q), 0 = off
  std::uint32_t hotspot_target = 0;
  std::uint32_t ports = 1;  ///< destination range for the uniform draw
};

/// The scalar oracle: the injection decision for one (cycle, port).
/// Returns the destination, or kNoArrival. Also used directly by the
/// reference engine, so the optimized engine's batched path is checked
/// against it end-to-end by the equivalence suite.
[[nodiscard]] inline std::uint32_t inject_one(const InjectParams& prm,
                                              std::int64_t cycle,
                                              std::uint32_t port) noexcept {
  const auto block = rng::Philox4x32::block(
      rng::philox_counter(cycle, port, rng::Site::kInject), prm.key);
  if (static_cast<std::uint64_t>(block[rng::kLaneArrival]) >=
      prm.thr_arrival)
    return kNoArrival;
  if (prm.thr_hotspot != 0 &&
      static_cast<std::uint64_t>(block[rng::kLaneHotspot]) <
          prm.thr_hotspot)
    return prm.hotspot_target;
  if (prm.thr_favorite != 0 &&
      static_cast<std::uint64_t>(block[rng::kLaneFavorite]) <
          prm.thr_favorite)
    return port;
  return rng::uniform_below(block[rng::kLaneDest], prm.ports);
}

/// Fill dst[0..count) with the injection decision for ports
/// [first_port, first_port + count) at `cycle`, using the widest
/// instruction set active_level() allows. Bit-identical to calling
/// inject_one per port.
void inject_batch(const InjectParams& prm, std::int64_t cycle,
                  std::uint32_t first_port, std::uint32_t count,
                  std::uint32_t* dst);

namespace detail {
/// Scalar batch loop (oracle); exposed for tests and dispatch.
void inject_batch_scalar(const InjectParams& prm, std::int64_t cycle,
                         std::uint32_t first_port, std::uint32_t count,
                         std::uint32_t* dst);
#if defined(__x86_64__) || defined(__i386__)
/// AVX2 batch kernel (function-level target attribute; call only when
/// simd::cpu_supports(Level::kAvx2)).
void inject_batch_avx2(const InjectParams& prm, std::int64_t cycle,
                       std::uint32_t first_port, std::uint32_t count,
                       std::uint32_t* dst);
#endif
}  // namespace detail

}  // namespace ksw::simd
