#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ksw::simd {

namespace {

// -1 = no override; otherwise a Level value.
std::atomic<int> g_override{-1};

Level detect() noexcept {
  if (const char* env = std::getenv("KSW_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0)
      return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0)
      return cpu_supports(Level::kAvx2) ? Level::kAvx2 : Level::kScalar;
    // "auto" or anything unrecognized: fall through to detection.
  }
  return cpu_supports(Level::kAvx2) ? Level::kAvx2 : Level::kScalar;
}

}  // namespace

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool cpu_supports(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Level active_level() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level detected = detect();
  return detected;
}

void force_level(Level level) noexcept {
  if (!cpu_supports(level)) level = Level::kScalar;
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_forced_level() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

ScopedForceLevel::ScopedForceLevel(Level level) noexcept {
  const int prev = g_override.load(std::memory_order_relaxed);
  had_override_ = prev >= 0;
  previous_ = had_override_ ? static_cast<Level>(prev) : Level::kScalar;
  force_level(level);
}

ScopedForceLevel::~ScopedForceLevel() {
  if (had_override_)
    force_level(previous_);
  else
    clear_forced_level();
}

}  // namespace ksw::simd
