// Runtime SIMD capability dispatch for the simulator's batch kernels.
//
// Kernels (src/simd/inject.hpp) are compiled per instruction set with
// function-level target attributes — no per-file compiler flags, so one
// binary runs everywhere and picks the widest usable path at startup.
// The scalar path is not a degraded fallback: it is the bit-identity
// oracle every vector path must reproduce exactly (the engine-equivalence
// suite and the CI forced-scalar job both enforce this).
//
// Selection order:
//   1. KSW_SIMD environment variable: "off"/"scalar" forces the scalar
//      oracle, "avx2" requests AVX2 (scalar if unsupported), "auto"/unset
//      detects.
//   2. CPU detection (__builtin_cpu_supports).
// The result is cached on first use; tests that need to exercise a
// specific path in-process use ScopedForceLevel instead of the
// environment.
#pragma once

namespace ksw::simd {

enum class Level {
  kScalar = 0,
  kAvx2 = 1,
};

/// Canonical lowercase name ("scalar", "avx2").
[[nodiscard]] const char* to_string(Level level) noexcept;

/// The dispatch level in effect (env override, else CPU detection;
/// cached after the first call).
[[nodiscard]] Level active_level() noexcept;

/// True when the CPU supports `level` (ignores KSW_SIMD and overrides).
[[nodiscard]] bool cpu_supports(Level level) noexcept;

/// Process-wide override, e.g. from the --simd CLI flag: kScalar for
/// --simd=off. Passing a level the CPU lacks clamps to scalar.
void force_level(Level level) noexcept;

/// Drop back to env/CPU selection (undoes force_level).
void clear_forced_level() noexcept;

/// RAII override for tests: forces a level on construction, restores the
/// previous selection on destruction. Not thread-safe against concurrent
/// dispatch changes (tests force before spawning work).
class ScopedForceLevel {
 public:
  explicit ScopedForceLevel(Level level) noexcept;
  ~ScopedForceLevel();

  ScopedForceLevel(const ScopedForceLevel&) = delete;
  ScopedForceLevel& operator=(const ScopedForceLevel&) = delete;

 private:
  bool had_override_;
  Level previous_;
};

}  // namespace ksw::simd
