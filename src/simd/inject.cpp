#include "simd/inject.hpp"

#include "simd/simd.hpp"

namespace ksw::simd {

namespace detail {

void inject_batch_scalar(const InjectParams& prm, std::int64_t cycle,
                         std::uint32_t first_port, std::uint32_t count,
                         std::uint32_t* dst) {
  for (std::uint32_t i = 0; i < count; ++i)
    dst[i] = inject_one(prm, cycle, first_port + i);
}

}  // namespace detail

void inject_batch(const InjectParams& prm, std::int64_t cycle,
                  std::uint32_t first_port, std::uint32_t count,
                  std::uint32_t* dst) {
  switch (active_level()) {
#if defined(__x86_64__) || defined(__i386__)
    case Level::kAvx2:
      detail::inject_batch_avx2(prm, cycle, first_port, count, dst);
      return;
#endif
    default:
      detail::inject_batch_scalar(prm, cycle, first_port, count, dst);
      return;
  }
}

}  // namespace ksw::simd
