// AVX2 injection kernel: eight Philox4x32-10 blocks per iteration, held
// in structure-of-arrays form (one __m256i per counter word, each lane a
// different port). Compiled with a function-level target attribute so the
// translation unit needs no special flags and the binary stays runnable
// on non-AVX2 machines (dispatch happens in inject.cpp).
//
// Every step mirrors the scalar oracle exactly:
//   * mullo / mulhi of 32-bit lanes reproduce the 64-bit scalar products'
//     low and high halves;
//   * unsigned compares are signed compares after flipping the sign bit;
//   * the hotspot / favorite / uniform destination selection is a pair of
//     blends driven by the same threshold compares the scalar path
//     branches on.
// The tail (count % 8 ports) runs through inject_one, which is already
// the oracle, so the whole batch is bit-identical by construction.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "simd/inject.hpp"

namespace ksw::simd::detail {

namespace {

/// Low 32 bits of the lane-wise 64-bit product x * m (m broadcast).
__attribute__((target("avx2"))) inline __m256i mullo32(__m256i x,
                                                       __m256i m) {
  return _mm256_mullo_epi32(x, m);
}

/// High 32 bits of the lane-wise 64-bit product x * m (m broadcast).
/// Even lanes via a 64-bit widening multiply shifted down; odd lanes via
/// the same multiply on the odd halves, whose high words already sit in
/// the odd positions — a blend stitches them together.
__attribute__((target("avx2"))) inline __m256i mulhi32(__m256i x,
                                                       __m256i m) {
  const __m256i even = _mm256_srli_epi64(_mm256_mul_epu32(x, m), 32);
  const __m256i odd = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), m);
  return _mm256_blend_epi32(even, odd, 0b10101010);
}

/// Lane mask for (unsigned)a < (unsigned)b: flip sign bits, signed
/// compare b > a.
__attribute__((target("avx2"))) inline __m256i cmplt_u32(__m256i a,
                                                         __m256i b) {
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  return _mm256_cmpgt_epi32(_mm256_xor_si256(b, sign),
                            _mm256_xor_si256(a, sign));
}

/// Broadcast a bernoulli threshold as a 32-bit compare operand. Returns
/// false in *always when the threshold saturates (p >= 1 maps to 2^32,
/// which no 32-bit draw can reach via cmplt, so it is handled as
/// "every lane passes").
__attribute__((target("avx2"))) inline __m256i threshold32(
    std::uint64_t thr, bool* always) {
  *always = thr > 0xffffffffull;
  return _mm256_set1_epi32(
      static_cast<int>(static_cast<std::uint32_t>(*always ? 0 : thr)));
}

}  // namespace

__attribute__((target("avx2"))) void inject_batch_avx2(
    const InjectParams& prm, std::int64_t cycle, std::uint32_t first_port,
    std::uint32_t count, std::uint32_t* dst) {
  const auto c = static_cast<std::uint64_t>(cycle);
  const __m256i c2_init =
      _mm256_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(c)));
  const __m256i c3_init = _mm256_set1_epi32(static_cast<int>(
      (static_cast<std::uint32_t>(c >> 32) & 0x00ffffffu) |
      (static_cast<std::uint32_t>(rng::Site::kInject) << 24)));
  const __m256i key0_init = _mm256_set1_epi32(static_cast<int>(prm.key[0]));
  const __m256i key1_init = _mm256_set1_epi32(static_cast<int>(prm.key[1]));
  const __m256i mul0 =
      _mm256_set1_epi32(static_cast<int>(rng::Philox4x32::kMul0));
  const __m256i mul1 =
      _mm256_set1_epi32(static_cast<int>(rng::Philox4x32::kMul1));
  const __m256i weyl0 =
      _mm256_set1_epi32(static_cast<int>(rng::Philox4x32::kWeyl0));
  const __m256i weyl1 =
      _mm256_set1_epi32(static_cast<int>(rng::Philox4x32::kWeyl1));

  bool arrival_always = false, hotspot_always = false,
       favorite_always = false;
  const __m256i thr_arrival = threshold32(prm.thr_arrival, &arrival_always);
  const __m256i thr_hotspot = threshold32(prm.thr_hotspot, &hotspot_always);
  const __m256i thr_favorite =
      threshold32(prm.thr_favorite, &favorite_always);
  const __m256i ports = _mm256_set1_epi32(static_cast<int>(prm.ports));
  const __m256i hotspot_dst =
      _mm256_set1_epi32(static_cast<int>(prm.hotspot_target));
  const __m256i no_arrival =
      _mm256_set1_epi32(static_cast<int>(kNoArrival));
  const __m256i lane_iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i port = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(first_port + i)), lane_iota);

    // Philox4x32-10 on eight blocks: counter = {0, port, cycle, site}.
    __m256i x0 = _mm256_setzero_si256();
    __m256i x1 = port;
    __m256i x2 = c2_init;
    __m256i x3 = c3_init;
    __m256i k0 = key0_init;
    __m256i k1 = key1_init;
    for (int round = 0; round < 10; ++round) {
      const __m256i lo0 = mullo32(x0, mul0);
      const __m256i hi0 = mulhi32(x0, mul0);
      const __m256i lo1 = mullo32(x2, mul1);
      const __m256i hi1 = mulhi32(x2, mul1);
      x0 = _mm256_xor_si256(_mm256_xor_si256(hi1, x1), k0);
      x1 = lo1;
      x2 = _mm256_xor_si256(_mm256_xor_si256(hi0, x3), k1);
      x3 = lo0;
      k0 = _mm256_add_epi32(k0, weyl0);
      k1 = _mm256_add_epi32(k1, weyl1);
    }

    // Destination selection, innermost default outward: uniform draw,
    // overridden by favorite, overridden by hotspot, masked by arrival.
    __m256i out = mulhi32(x3, ports);
    if (prm.thr_favorite != 0) {
      const __m256i take = favorite_always ? _mm256_set1_epi32(-1)
                                           : cmplt_u32(x2, thr_favorite);
      out = _mm256_blendv_epi8(out, port, take);
    }
    if (prm.thr_hotspot != 0) {
      const __m256i take = hotspot_always ? _mm256_set1_epi32(-1)
                                          : cmplt_u32(x1, thr_hotspot);
      out = _mm256_blendv_epi8(out, hotspot_dst, take);
    }
    if (!arrival_always) {
      const __m256i arrived = cmplt_u32(x0, thr_arrival);
      out = _mm256_blendv_epi8(no_arrival, out, arrived);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), out);
  }

  for (; i < count; ++i) dst[i] = inject_one(prm, cycle, first_port + i);
}

}  // namespace ksw::simd::detail

#endif  // x86
