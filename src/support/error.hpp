// Typed error taxonomy shared by every ksw subsystem.
//
// Throw sites classify failures into a small set of kinds so the CLI can
// map them onto a documented, stable exit-code table (see
// docs/ROBUSTNESS.md) instead of collapsing everything into "exit 1".
// The taxonomy lives at the bottom of the dependency graph (no ksw
// dependencies) so the analytic core, the I/O layer, and the sweep runner
// can all throw the same types.
#pragma once

#include <stdexcept>
#include <string>

namespace ksw {

/// Failure classes, each with a fixed process exit code.
enum class ErrorKind {
  kUsage,        ///< bad flags, malformed manifests, invalid combinations
  kIo,           ///< file open/write/rename/fsync failures
  kNumeric,      ///< ill-conditioned series, rho at/beyond saturation
  kGate,         ///< reproduction agreement gate failed
  kDrift,        ///< committed book differs from a fresh run (--check)
  kInterrupted,  ///< cooperative cancellation (SIGINT/SIGTERM)
  kFleet,        ///< fleet supervision failure (worker spawn/crash loop)
};

/// Stable exit code for each kind (documented in README and
/// docs/ROBUSTNESS.md; exit 0 = success, 1 = unclassified internal error,
/// 7 = run completed but points were degraded).
[[nodiscard]] constexpr int exit_code(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kUsage:
      return 2;
    case ErrorKind::kGate:
      return 3;
    case ErrorKind::kDrift:
      return 4;
    case ErrorKind::kIo:
      return 5;
    case ErrorKind::kNumeric:
      return 6;
    case ErrorKind::kFleet:
      return 8;
    case ErrorKind::kInterrupted:
      return 130;  // 128 + SIGINT, the shell convention
  }
  return 1;
}

/// Exit code for a run that finished but marked points degraded
/// (replicate failure, numeric breakdown, or --point-timeout overrun).
inline constexpr int kExitDegraded = 7;
/// Exit code for unclassified internal errors.
inline constexpr int kExitInternal = 1;

[[nodiscard]] const char* to_string(ErrorKind kind) noexcept;

/// An exception carrying its taxonomy kind. Derives from
/// std::runtime_error so existing catch(const std::exception&) handlers
/// keep working; the CLI catches Error first to pick the exit code.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] int exit_code() const noexcept {
    return ksw::exit_code(kind_);
  }

 private:
  ErrorKind kind_;
};

// Shorthand constructors, one per kind that is thrown (gate/drift are
// reported via return codes, not exceptions).
[[nodiscard]] inline Error usage_error(const std::string& message) {
  return {ErrorKind::kUsage, message};
}
[[nodiscard]] inline Error io_error(const std::string& message) {
  return {ErrorKind::kIo, message};
}
[[nodiscard]] inline Error numeric_error(const std::string& message) {
  return {ErrorKind::kNumeric, message};
}
[[nodiscard]] inline Error interrupted_error(const std::string& message) {
  return {ErrorKind::kInterrupted, message};
}
[[nodiscard]] inline Error fleet_error(const std::string& message) {
  return {ErrorKind::kFleet, message};
}

}  // namespace ksw
