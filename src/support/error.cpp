#include "support/error.hpp"

namespace ksw {

const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kUsage:
      return "usage";
    case ErrorKind::kIo:
      return "io";
    case ErrorKind::kNumeric:
      return "numeric";
    case ErrorKind::kGate:
      return "gate";
    case ErrorKind::kDrift:
      return "drift";
    case ErrorKind::kInterrupted:
      return "interrupted";
    case ErrorKind::kFleet:
      return "fleet";
  }
  return "?";
}

}  // namespace ksw
