#include "obs/registry.hpp"

#include <stdexcept>

namespace ksw::obs {

namespace {

/// Deep-copy one metric map (each metric has a snapshot copy ctor).
template <typename Map>
void copy_map(Map& dst, const Map& src) {
  dst.clear();
  for (const auto& [name, metric] : src)
    dst.emplace(name,
                std::make_unique<typename Map::mapped_type::element_type>(
                    *metric));
}

}  // namespace

Registry::Registry(const Registry& other) { *this = other; }

Registry& Registry::operator=(const Registry& other) {
  if (this == &other) return *this;
  copy_map(counters_, other.counters_);
  copy_map(gauges_, other.gauges_);
  copy_map(histograms_, other.histograms_);
  copy_map(timers_, other.timers_);
  return *this;
}

Counter& Registry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  return *it->second;
}

Timer& Registry::timer(const std::string& name) {
  auto it = timers_.find(name);
  if (it == timers_.end())
    it = timers_.emplace(name, std::make_unique<Timer>()).first;
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name, double lower,
                               double width, std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(lower, width, buckets))
             .first;
  } else if (it->second->lower() != lower || it->second->width() != width ||
             it->second->bucket_count() != buckets) {
    throw std::invalid_argument("Registry::histogram: '" + name +
                                "' re-registered with a different layout");
  }
  return *it->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, metric] : other.counters_)
    counter(name).merge(*metric);
  for (const auto& [name, metric] : other.gauges_) gauge(name).merge(*metric);
  for (const auto& [name, metric] : other.timers_) timer(name).merge(*metric);
  for (const auto& [name, metric] : other.histograms_)
    histogram(name, metric->lower(), metric->width(), metric->bucket_count())
        .merge(*metric);
}

bool Registry::empty() const noexcept {
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         timers_.empty();
}

}  // namespace ksw::obs
