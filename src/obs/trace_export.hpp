// ksw.trace/v1 serialization and post-processing for the span layer:
// JSONL render/parse, Chrome trace-event export (opens in Perfetto or
// chrome://tracing), and the per-span-name latency summary behind
// `kswsim trace summarize`.
//
// Stream format (one JSON document per line):
//   {"schema":"ksw.trace/v1","spans":N,"dropped":D}     <- header
//   {"name":"...","trace":"<hex16>","span":"<hex16>",
//    "parent":"<hex16>"|null,"start_ns":I,"dur_ns":I,
//    "tid":I,"labels":{"k":"v",...}}                    <- one per span
//
// Rendering canonicalizes span order (start_ns, span id, trace id, name),
// so the emitted bytes are a pure function of the record *set* — traces
// merged from several sinks, or drained in a different thread
// interleaving, serialize identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace ksw::obs {

/// One row of the per-span-name summary (durations in microseconds).
struct TraceSummaryRow {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Serialize spans as a ksw.trace/v1 JSONL document (canonical order,
/// trailing newline).
[[nodiscard]] std::string render_trace_jsonl(std::vector<SpanRecord> spans,
                                             std::uint64_t dropped);

/// Strict parse of a ksw.trace/v1 document. Throws ksw::Error(kUsage)
/// naming the offending line on any schema violation. `dropped`, when
/// non-null, receives the header's drop count.
[[nodiscard]] std::vector<SpanRecord> parse_trace_jsonl(
    const std::string& text, std::uint64_t* dropped = nullptr);

/// Chrome trace-event JSON ("X" complete events, microsecond
/// timestamps); loads in Perfetto and chrome://tracing.
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<SpanRecord>& spans);

/// Per-span-name count and latency quantiles, name-ordered. Quantiles
/// are exact (nearest-rank over the sorted durations), not bucketed.
[[nodiscard]] std::vector<TraceSummaryRow> summarize_spans(
    const std::vector<SpanRecord>& spans);

}  // namespace ksw::obs
