// MetricsRegistry: a named collection of counters, gauges, histograms,
// and timers.
//
// Usage pattern: register every metric up front (registration allocates
// and is NOT thread-safe), cache the returned references, then update
// through them on the hot path (updates are lock-free; histograms are
// single-writer). Iteration is in name order — std::map — so reports and
// merges are deterministic.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace ksw::obs {

class Registry {
 public:
  Registry() = default;
  Registry(Registry&&) noexcept = default;
  Registry& operator=(Registry&&) noexcept = default;
  /// Deep snapshot copy (atomics are loaded relaxed).
  Registry(const Registry& other);
  Registry& operator=(const Registry& other);

  /// Find-or-create. References stay valid for the registry's lifetime
  /// (metrics are never removed).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);
  /// Throws std::invalid_argument if `name` exists with a different
  /// bucket layout.
  Histogram& histogram(const std::string& name, double lower, double width,
                       std::size_t buckets);

  /// Add `other`'s metrics into this registry: counters/timers sum,
  /// gauges keep the maximum, histograms add bucket-wise (layouts must
  /// match). Metrics unknown to one side are adopted. Call in replicate
  /// index order for bit-reproducible aggregates.
  void merge(const Registry& other);

  [[nodiscard]] bool empty() const noexcept;

  // Name-ordered views for report emitters.
  using CounterMap = std::map<std::string, std::unique_ptr<Counter>>;
  using GaugeMap = std::map<std::string, std::unique_ptr<Gauge>>;
  using HistogramMap = std::map<std::string, std::unique_ptr<Histogram>>;
  using TimerMap = std::map<std::string, std::unique_ptr<Timer>>;
  [[nodiscard]] const CounterMap& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const GaugeMap& gauges() const noexcept { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const noexcept {
    return histograms_;
  }
  [[nodiscard]] const TimerMap& timers() const noexcept { return timers_; }

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
  TimerMap timers_;
};

}  // namespace ksw::obs
