#include "obs/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace ksw::obs {

void Gauge::record_max(double v) noexcept {
  double cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(double lower, double width, std::size_t buckets)
    : lower_(lower), width_(width), counts_(buckets, 0) {
  if (!(width > 0.0))
    throw std::invalid_argument("Histogram: width must be positive");
  if (buckets == 0)
    throw std::invalid_argument("Histogram: needs at least one bucket");
}

void Histogram::record(double v, std::uint64_t count) noexcept {
  if (v < lower_) {
    underflow_ += count;
  } else {
    const auto idx =
        static_cast<std::size_t>(std::floor((v - lower_) / width_));
    if (idx >= counts_.size())
      overflow_ += count;
    else
      counts_[idx] += count;
  }
  total_ += count;
  sum_ += v * static_cast<double>(count);
}

void Histogram::merge(const Histogram& other) {
  if (lower_ != other.lower_ || width_ != other.width_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument("Histogram::merge: bucket layout mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
}

double Histogram::mean() const noexcept {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0))
    throw std::invalid_argument("Histogram::quantile: q must be in [0, 1]");
  // No samples: clamp to the low bucket edge (not 0.0, which lies outside
  // the histogram's range whenever lower_ != 0). Every return below stays
  // within [lower_, lower_ + width_ * buckets] — never NaN, never an
  // extrapolation.
  if (total_ == 0) return lower_;
  const double rank = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (underflow_ > 0 && rank <= cumulative) return lower_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double count = static_cast<double>(counts_[i]);
    if (rank <= cumulative + count && count > 0.0) {
      const double fraction = (rank - cumulative) / count;
      return lower_edge(i) + width_ * fraction;
    }
    cumulative += count;
  }
  return lower_ + width_ * static_cast<double>(counts_.size());
}

}  // namespace ksw::obs
