// Structured run-report emitter: serializes a MetricsRegistry (and a
// warmup-convergence trace) to JSON or CSV through the io/ layer.
//
// Determinism contract: with include_wall = false the emitted bytes are a
// pure function of the simulated events, so reports from the same seed
// are bit-identical regardless of thread count. Wall-clock durations
// (timer wall_s) are the only nondeterministic fields.
#pragma once

#include <optional>
#include <vector>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ksw::obs {

struct ReportOptions {
  /// Include wall-clock timer durations (nondeterministic across runs).
  bool include_wall = true;
};

/// Registry as a JSON object with "counters", "gauges", "histograms",
/// and "timers" sections (always present, possibly empty; name-ordered).
[[nodiscard]] io::Json registry_to_json(const Registry& registry,
                                        const ReportOptions& opts = {});

/// Flat CSV view: one row per (metric, field) with columns
/// name,kind,field,value.
[[nodiscard]] io::CsvWriter registry_to_csv(const Registry& registry,
                                            const ReportOptions& opts = {});

/// Convergence trace as JSON: per-checkpoint cumulative per-stage mean
/// waits plus, when supplied, the eq. 12 per-stage predictions and the
/// eq. 11 limit to compare against.
[[nodiscard]] io::Json trace_to_json(
    const ConvergenceTrace& trace,
    const std::vector<double>& predicted_stage_mean = {},
    std::optional<double> predicted_limit = std::nullopt);

}  // namespace ksw::obs
