#include "obs/trace_export.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "io/json.hpp"
#include "support/error.hpp"

namespace ksw::obs {

namespace {

constexpr const char* kSchema = "ksw.trace/v1";

/// Canonical record order: the serialized bytes must not depend on which
/// thread won which sink slot.
void canonicalize(std::vector<SpanRecord>* spans) {
  std::sort(spans->begin(), spans->end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return std::tie(a.start_ns, a.span_id, a.trace_id, a.name) <
                     std::tie(b.start_ns, b.span_id, b.trace_id, b.name);
            });
}

void render_span_line(const SpanRecord& rec, std::ostream& os) {
  os << "{\"name\":\"" << io::json_escape(rec.name) << "\",\"trace\":\""
     << hex_id(rec.trace_id) << "\",\"span\":\"" << hex_id(rec.span_id)
     << "\",\"parent\":";
  if (rec.parent_id != 0)
    os << '"' << hex_id(rec.parent_id) << '"';
  else
    os << "null";
  os << ",\"start_ns\":" << rec.start_ns << ",\"dur_ns\":" << rec.dur_ns
     << ",\"tid\":" << rec.tid;
  if (!rec.labels.empty()) {
    os << ",\"labels\":{";
    for (std::size_t i = 0; i < rec.labels.size(); ++i) {
      if (i != 0) os << ',';
      os << '"' << io::json_escape(rec.labels[i].first) << "\":\""
         << io::json_escape(rec.labels[i].second) << '"';
    }
    os << '}';
  }
  os << "}\n";
}

[[noreturn]] void bad_trace(std::size_t line_no, const std::string& what) {
  throw ksw::usage_error("trace line " + std::to_string(line_no) + ": " +
                         what);
}

std::uint64_t read_id(const io::Json& doc, const char* key,
                      std::size_t line_no, bool nullable) {
  if (!doc.contains(key)) {
    if (nullable) return 0;
    bad_trace(line_no, std::string(key) + ": required field");
  }
  const io::Json& value = doc.at(key);
  if (nullable && value.is_null()) return 0;
  if (!value.is_string())
    bad_trace(line_no, std::string(key) + ": expected a hex id string");
  const std::uint64_t id = parse_hex_id(value.as_string());
  if (id == 0)
    bad_trace(line_no,
              std::string(key) + ": not a hex id: \"" + value.as_string() +
                  "\"");
  return id;
}

std::uint64_t read_u64(const io::Json& doc, const char* key,
                       std::size_t line_no) {
  if (!doc.contains(key))
    bad_trace(line_no, std::string(key) + ": required field");
  std::int64_t v = 0;
  try {
    v = doc.at(key).as_int();
  } catch (const std::invalid_argument&) {
    bad_trace(line_no, std::string(key) + ": expected an integer");
  }
  if (v < 0) bad_trace(line_no, std::string(key) + ": must be >= 0");
  return static_cast<std::uint64_t>(v);
}

SpanRecord parse_span_line(const io::Json& doc, std::size_t line_no) {
  for (const auto& key : doc.keys())
    if (key != "name" && key != "trace" && key != "span" &&
        key != "parent" && key != "start_ns" && key != "dur_ns" &&
        key != "tid" && key != "labels")
      bad_trace(line_no, key + ": unknown span field");
  SpanRecord rec;
  if (!doc.contains("name") || !doc.at("name").is_string())
    bad_trace(line_no, "name: required string field");
  rec.name = doc.at("name").as_string();
  rec.trace_id = read_id(doc, "trace", line_no, /*nullable=*/false);
  rec.span_id = read_id(doc, "span", line_no, /*nullable=*/false);
  rec.parent_id = read_id(doc, "parent", line_no, /*nullable=*/true);
  rec.start_ns = read_u64(doc, "start_ns", line_no);
  rec.dur_ns = read_u64(doc, "dur_ns", line_no);
  rec.tid = static_cast<std::uint32_t>(read_u64(doc, "tid", line_no));
  if (doc.contains("labels")) {
    const io::Json& labels = doc.at("labels");
    if (!labels.is_object())
      bad_trace(line_no, "labels: expected an object");
    for (const auto& key : labels.keys()) {
      if (!labels.at(key).is_string())
        bad_trace(line_no, "labels." + key + ": expected a string");
      rec.labels.emplace_back(key, labels.at(key).as_string());
    }
  }
  return rec;
}

}  // namespace

std::string render_trace_jsonl(std::vector<SpanRecord> spans,
                               std::uint64_t dropped) {
  canonicalize(&spans);
  std::ostringstream os;
  os << "{\"schema\":\"" << kSchema << "\",\"spans\":" << spans.size()
     << ",\"dropped\":" << dropped << "}\n";
  for (const SpanRecord& rec : spans) render_span_line(rec, os);
  return os.str();
}

std::vector<SpanRecord> parse_trace_jsonl(const std::string& text,
                                          std::uint64_t* dropped) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  std::vector<SpanRecord> spans;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    io::Json doc;
    try {
      doc = io::Json::parse(line);
    } catch (const std::invalid_argument& e) {
      bad_trace(line_no, e.what());
    }
    if (!doc.is_object()) bad_trace(line_no, "expected a JSON object");
    if (!saw_header) {
      if (!doc.contains("schema") || !doc.at("schema").is_string() ||
          doc.at("schema").as_string() != kSchema)
        bad_trace(line_no,
                  std::string("expected a header with schema \"") + kSchema +
                      "\"");
      if (dropped != nullptr) *dropped = read_u64(doc, "dropped", line_no);
      saw_header = true;
      continue;
    }
    spans.push_back(parse_span_line(doc, line_no));
  }
  if (!saw_header)
    throw ksw::usage_error("trace: empty input (no ksw.trace/v1 header)");
  return spans;
}

std::string render_chrome_trace(const std::vector<SpanRecord>& spans) {
  io::Json events = io::Json::array();
  for (const SpanRecord& rec : spans) {
    io::Json event = io::Json::object();
    event.set("name", rec.name);
    event.set("ph", "X");
    event.set("cat", "ksw");
    event.set("ts", static_cast<double>(rec.start_ns) / 1000.0);
    event.set("dur", static_cast<double>(rec.dur_ns) / 1000.0);
    event.set("pid", 1);
    event.set("tid", static_cast<std::int64_t>(rec.tid));
    io::Json args = io::Json::object();
    args.set("trace", hex_id(rec.trace_id));
    args.set("span", hex_id(rec.span_id));
    if (rec.parent_id != 0) args.set("parent", hex_id(rec.parent_id));
    for (const auto& [key, value] : rec.labels) args.set(key, value);
    event.set("args", std::move(args));
    events.push_back(std::move(event));
  }
  io::Json doc = io::Json::object();
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(events));
  return doc.to_string(2) + "\n";
}

std::vector<TraceSummaryRow> summarize_spans(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, std::vector<std::uint64_t>> durations;
  for (const SpanRecord& rec : spans)
    durations[rec.name].push_back(rec.dur_ns);
  std::vector<TraceSummaryRow> rows;
  rows.reserve(durations.size());
  for (auto& [name, ns] : durations) {
    std::sort(ns.begin(), ns.end());
    const auto rank = [&](double q) {
      // Nearest-rank quantile over the sorted durations.
      const std::size_t idx = static_cast<std::size_t>(
          q * static_cast<double>(ns.size() - 1) + 0.5);
      return static_cast<double>(ns[std::min(idx, ns.size() - 1)]) / 1000.0;
    };
    TraceSummaryRow row;
    row.name = name;
    row.count = ns.size();
    double total_ns = 0.0;
    for (const std::uint64_t d : ns) total_ns += static_cast<double>(d);
    row.total_ms = total_ns / 1e6;
    row.p50_us = rank(0.5);
    row.p99_us = rank(0.99);
    row.max_us = static_cast<double>(ns.back()) / 1000.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace ksw::obs
