#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>

namespace ksw::obs {

namespace {

/// Per-thread stack of open spans, used only for parent/trace
/// inheritance. Frames carry the owning tracer so nesting stays correct
/// even if two tracers interleave on one thread.
struct Frame {
  const Tracer* tracer;
  std::uint64_t span_id;
  std::uint64_t trace_id;
};

thread_local std::vector<Frame> tls_open_spans;

std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// Innermost open frame of `tracer` on this thread, or nullptr.
const Frame* innermost(const Tracer* tracer) noexcept {
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend(); ++it)
    if (it->tracer == tracer) return &*it;
  return nullptr;
}

void pop_frame(const Tracer* tracer, std::uint64_t span_id) noexcept {
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend();
       ++it) {
    if (it->tracer == tracer && it->span_id == span_id) {
      tls_open_spans.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::uint64_t parse_hex_id(std::string_view text) noexcept {
  if (text.empty() || text.size() > 16) return 0;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9')
      value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return 0;
  }
  return value;
}

Span::Span(Tracer* tracer, std::string name, std::uint64_t trace_id) {
  if (!kEnabled || tracer == nullptr) return;
  tracer_ = tracer;
  rec_.name = std::move(name);
  rec_.span_id = tracer->next_span_id();
  if (const Frame* parent = innermost(tracer)) {
    rec_.parent_id = parent->span_id;
    rec_.trace_id = trace_id != 0 ? trace_id : parent->trace_id;
  } else {
    rec_.trace_id = trace_id != 0 ? trace_id : rec_.span_id;
  }
  rec_.tid = thread_index();
  rec_.start_ns = tracer->now_ns();
  tls_open_spans.push_back(Frame{tracer, rec_.span_id, rec_.trace_id});
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), rec_(std::move(other.rec_)) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::label(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  rec_.labels.emplace_back(std::move(key), std::move(value));
}

void Span::end() {
  if (tracer_ == nullptr) return;
  rec_.dur_ns = tracer_->now_ns() - rec_.start_ns;
  pop_frame(tracer_, rec_.span_id);
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->emit(std::move(rec_));
}

Tracer::Tracer(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void Tracer::emit(SpanRecord rec) {
  const std::uint64_t slot = claimed_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[slot].rec = std::move(rec);
  slots_[slot].ready.store(true, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  const std::uint64_t claimed = claimed_.load(std::memory_order_relaxed);
  const std::size_t upto =
      std::min<std::uint64_t>(claimed, slots_.size());
  std::vector<SpanRecord> out;
  out.reserve(upto);
  for (std::size_t i = 0; i < upto; ++i)
    if (slots_[i].ready.load(std::memory_order_acquire))
      out.push_back(slots_[i].rec);
  return out;
}

std::size_t Tracer::size() const noexcept {
  const std::uint64_t claimed = claimed_.load(std::memory_order_relaxed);
  const std::size_t upto =
      std::min<std::uint64_t>(claimed, slots_.size());
  std::size_t n = 0;
  for (std::size_t i = 0; i < upto; ++i)
    if (slots_[i].ready.load(std::memory_order_acquire)) ++n;
  return n;
}

std::uint64_t Tracer::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

}  // namespace ksw::obs
