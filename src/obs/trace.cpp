#include "obs/trace.hpp"

#include <stdexcept>

namespace ksw::obs {

double ConvergenceTrace::mean(std::size_t point, std::size_t stage) const {
  const std::uint64_t count = wait_count.at(point).at(stage);
  return count == 0
             ? 0.0
             : wait_sum[point][stage] / static_cast<double>(count);
}

void ConvergenceTrace::merge(const ConvergenceTrace& other) {
  if (empty()) {
    *this = other;
    return;
  }
  if (other.empty()) return;
  if (cycles != other.cycles || stages() != other.stages())
    throw std::invalid_argument(
        "ConvergenceTrace::merge: checkpoint grid mismatch");
  for (std::size_t p = 0; p < points(); ++p)
    for (std::size_t s = 0; s < wait_sum[p].size(); ++s) {
      wait_sum[p][s] += other.wait_sum[p][s];
      wait_count[p][s] += other.wait_count[p][s];
    }
}

}  // namespace ksw::obs
