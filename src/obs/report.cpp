#include "obs/report.hpp"

namespace ksw::obs {

namespace {

io::Json histogram_to_json(const Histogram& h) {
  io::Json j = io::Json::object();
  j.set("lower", h.lower());
  j.set("width", h.width());
  io::Json counts = io::Json::array();
  for (std::size_t i = 0; i < h.bucket_count(); ++i)
    counts.push_back(static_cast<std::uint64_t>(h.bucket(i)));
  j.set("counts", std::move(counts));
  j.set("underflow", h.underflow());
  j.set("overflow", h.overflow());
  j.set("total", h.total());
  j.set("sum", h.sum());
  j.set("mean", h.mean());
  return j;
}

}  // namespace

io::Json registry_to_json(const Registry& registry,
                          const ReportOptions& opts) {
  io::Json doc = io::Json::object();

  io::Json counters = io::Json::object();
  for (const auto& [name, metric] : registry.counters())
    counters.set(name, metric->value());
  doc.set("counters", std::move(counters));

  io::Json gauges = io::Json::object();
  for (const auto& [name, metric] : registry.gauges())
    gauges.set(name, metric->value());
  doc.set("gauges", std::move(gauges));

  io::Json histograms = io::Json::object();
  for (const auto& [name, metric] : registry.histograms())
    histograms.set(name, histogram_to_json(*metric));
  doc.set("histograms", std::move(histograms));

  io::Json timers = io::Json::object();
  for (const auto& [name, metric] : registry.timers()) {
    io::Json t = io::Json::object();
    t.set("calls", metric->calls());
    if (opts.include_wall) t.set("wall_s", metric->seconds());
    timers.set(name, std::move(t));
  }
  doc.set("timers", std::move(timers));

  return doc;
}

io::CsvWriter registry_to_csv(const Registry& registry,
                              const ReportOptions& opts) {
  io::CsvWriter csv({"name", "kind", "field", "value"});
  for (const auto& [name, metric] : registry.counters())
    csv.begin_row().add(name).add("counter").add("value").add(
        metric->value());
  for (const auto& [name, metric] : registry.gauges())
    csv.begin_row().add(name).add("gauge").add("value").add(metric->value());
  for (const auto& [name, metric] : registry.histograms()) {
    csv.begin_row().add(name).add("histogram").add("lower").add(
        metric->lower());
    csv.begin_row().add(name).add("histogram").add("width").add(
        metric->width());
    for (std::size_t i = 0; i < metric->bucket_count(); ++i)
      csv.begin_row()
          .add(name)
          .add("histogram")
          .add("bucket" + std::to_string(i))
          .add(metric->bucket(i));
    csv.begin_row().add(name).add("histogram").add("underflow").add(
        metric->underflow());
    csv.begin_row().add(name).add("histogram").add("overflow").add(
        metric->overflow());
    csv.begin_row().add(name).add("histogram").add("total").add(
        metric->total());
    csv.begin_row().add(name).add("histogram").add("mean").add(
        metric->mean());
  }
  for (const auto& [name, metric] : registry.timers()) {
    csv.begin_row().add(name).add("timer").add("calls").add(metric->calls());
    if (opts.include_wall)
      csv.begin_row().add(name).add("timer").add("wall_s").add(
          metric->seconds());
  }
  return csv;
}

io::Json trace_to_json(const ConvergenceTrace& trace,
                       const std::vector<double>& predicted_stage_mean,
                       std::optional<double> predicted_limit) {
  io::Json doc = io::Json::object();
  io::Json points = io::Json::array();
  for (std::size_t p = 0; p < trace.points(); ++p) {
    io::Json point = io::Json::object();
    point.set("cycle", static_cast<std::int64_t>(trace.cycles[p]));
    io::Json means = io::Json::array();
    io::Json samples = io::Json::array();
    for (std::size_t s = 0; s < trace.wait_sum[p].size(); ++s) {
      means.push_back(trace.mean(p, s));
      samples.push_back(static_cast<std::uint64_t>(trace.wait_count[p][s]));
    }
    point.set("mean_wait", std::move(means));
    point.set("samples", std::move(samples));
    points.push_back(std::move(point));
  }
  doc.set("points", std::move(points));
  if (!predicted_stage_mean.empty()) {
    io::Json pred = io::Json::array();
    for (double w : predicted_stage_mean) pred.push_back(w);
    doc.set("predicted_stage_mean", std::move(pred));
  }
  if (predicted_limit) doc.set("predicted_limit", *predicted_limit);
  return doc;
}

}  // namespace ksw::obs
