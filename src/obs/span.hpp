// Structured event tracing: RAII spans with trace/span/parent ids feeding
// a bounded lock-free sink (`Tracer`), serialized as the documented
// ksw.trace/v1 JSONL stream (obs/trace_export.hpp).
//
// Relationship to the metrics layer (obs/metrics.hpp): metrics aggregate
// (how many, how long in total), spans record *individual* timed events
// with identity and structure — per-request, per-grid-point, per-batch —
// so latency distributions and causal nesting stay observable at the
// same granularity the paper studies waiting times.
//
// Determinism contract: span ids, thread indices, and every duration are
// wall-clock artifacts and therefore nondeterministic. Tracing is opt-in
// (a null Tracer makes every Span inert), never feeds numbers back into
// results, and compiles out with the rest of the layer when
// KSW_OBS_ENABLED=0. Trace ids MAY be deterministic when the caller
// derives them from stable keys (reproduce keys point spans to the
// checkpoint-journal manifest fingerprint, so resumed runs emit
// stitchable traces).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ksw::obs {

/// 64-bit FNV-1a, used to derive stable trace ids from stable keys
/// (e.g. manifest fingerprint + section id + point index).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// Fixed-width lowercase hex (16 chars) — the wire form of every id in
/// ksw.trace/v1 and of generated ksw.query/v1 trace_ids.
[[nodiscard]] std::string hex_id(std::uint64_t id);

/// Inverse of hex_id for well-formed 1..16-char hex strings; returns 0
/// (the "no id" value) on anything else.
[[nodiscard]] std::uint64_t parse_hex_id(std::string_view text) noexcept;

/// One completed span, as stored in the sink and serialized to the
/// trace stream.
struct SpanRecord {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span
  std::uint64_t start_ns = 0;   ///< relative to the tracer's epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< dense per-process thread index
  std::vector<std::pair<std::string, std::string>> labels;
};

class Tracer;

/// RAII span handle. A default-constructed (or null-tracer) Span is
/// inert: every operation is a no-op, so call sites keep one code path
/// for traced and untraced runs — the ScopedTimer convention.
///
/// Parent linkage is per *thread*: spans opened on the same thread nest
/// under the innermost open span of the same tracer. A Span may be moved
/// but must start and end on the same thread.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string name, std::uint64_t trace_id = 0);
  ~Span() { end(); }

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value label (kept in attach order; no-op when inert).
  void label(std::string key, std::string value);

  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }
  [[nodiscard]] std::uint64_t span_id() const noexcept {
    return rec_.span_id;
  }
  [[nodiscard]] std::uint64_t trace_id() const noexcept {
    return rec_.trace_id;
  }

  /// End the span now and emit it (idempotent; the destructor becomes a
  /// no-op afterwards).
  void end();

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

/// Bounded lock-free span sink. Writers claim a slot with one relaxed
/// fetch_add and publish it with a release store; once the buffer is
/// full further spans are *dropped and counted* — tracing degrades by
/// losing the tail, never by blocking the traced path.
///
/// snapshot() is meant for end-of-run export: it returns every published
/// record (claimed-but-unpublished slots — spans still open — are
/// skipped). The export layer canonicalizes ordering, so two runs that
/// emitted the same records serialize identically regardless of which
/// thread won each slot.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open a span. `trace_id` 0 inherits the innermost open span's trace
  /// on this thread, or starts a fresh trace keyed by the span's own id.
  [[nodiscard]] Span span(std::string name, std::uint64_t trace_id = 0) {
    return Span(this, std::move(name), trace_id);
  }

  /// Store a completed record (thread-safe; drops when full).
  void emit(SpanRecord rec);

  /// Every published record, in slot-claim order.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Published (completed) span count.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

  /// Monotonic id source (starts at 1; 0 means "no id").
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Nanoseconds since the tracer's construction.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

 private:
  struct Slot {
    SpanRecord rec;
    std::atomic<bool> ready{false};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> claimed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ksw::obs
