// Metric primitives for the observability layer: counters, gauges,
// fixed-bucket histograms, and wall-clock timers.
//
// Design contract (mirrors par::parallel_for's determinism contract):
//   * each simulation replicate owns a private Registry, so hot-path
//     updates never contend — increments are relaxed atomics (counters,
//     gauges, timers) or plain stores (histograms, single-writer);
//   * registries are merged in replicate-index order, so every value that
//     derives from simulated events is bit-identical for a fixed seed
//     regardless of thread count. Only wall-clock timer durations are
//     nondeterministic, and the report emitter can omit them.
//
// The whole layer compiles out when KSW_OBS_ENABLED is defined to 0
// (CMake option KSW_OBS_ENABLED): instrumentation call sites test
// obs::kEnabled, which lets the compiler delete the sampling code.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#ifndef KSW_OBS_ENABLED
#define KSW_OBS_ENABLED 1
#endif

namespace ksw::obs {

/// Compile-time observability switch; instrumentation sites gate on this
/// so a disabled build carries zero overhead.
inline constexpr bool kEnabled = KSW_OBS_ENABLED != 0;

/// Monotonic event count. Thread-safe (relaxed); merges by summation.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : n_(other.value()) {}

  void inc(std::uint64_t delta = 1) noexcept {
    n_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return n_.load(std::memory_order_relaxed);
  }
  void merge(const Counter& other) noexcept { inc(other.value()); }

 private:
  std::atomic<std::uint64_t> n_{0};
};

/// Point-in-time value, used almost exclusively as a high-water mark
/// (peak queue depth, worker count) — so merge keeps the maximum.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : v_(other.value()) {}

  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if larger (relaxed CAS loop).
  void record_max(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void merge(const Gauge& other) noexcept { record_max(other.value()); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `buckets` consecutive bins of `width` starting
/// at `lower`, bucket i covering [lower + i*width, lower + (i+1)*width),
/// plus underflow/overflow tallies and a running sum for the mean.
///
/// Single-writer on the hot path (each replicate owns its registry);
/// merging requires identical bucket layouts.
class Histogram {
 public:
  Histogram(double lower, double width, std::size_t buckets);

  void record(double v) noexcept { record(v, 1); }
  void record(double v, std::uint64_t count) noexcept;
  /// Throws std::invalid_argument if bucket layouts differ.
  void merge(const Histogram& other);

  [[nodiscard]] double lower() const noexcept { return lower_; }
  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  /// Inclusive lower edge of bucket i.
  [[nodiscard]] double lower_edge(std::size_t i) const noexcept {
    return lower_ + width_ * static_cast<double>(i);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Mean of the raw recorded values (not bucket midpoints); 0 when empty.
  [[nodiscard]] double mean() const noexcept;

  /// Approximate quantile (q in [0, 1]; anything else throws) by linear
  /// interpolation inside the bucket holding the rank. The result is
  /// always clamped to the histogram's range [lower, lower + width *
  /// buckets]: underflow mass reports the lower bound, overflow mass the
  /// upper bound, and an empty histogram returns the lower bound — never
  /// NaN, never a value outside the bucket edges. q = 0 lands on the
  /// lowest occupied edge, q = 1 on the highest. Used for p50/p99
  /// service-time summaries in run reports.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lower_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Accumulated wall-clock duration + call count. Thread-safe (relaxed);
/// merges by summation. Durations are the only nondeterministic metric —
/// report emitters can exclude them (ReportOptions::include_wall).
class Timer {
 public:
  Timer() = default;
  Timer(const Timer& other)
      : ns_(other.nanos()), calls_(other.calls()) {}

  void add(std::chrono::nanoseconds d) noexcept {
    ns_.fetch_add(static_cast<std::uint64_t>(d.count()),
                  std::memory_order_relaxed);
    calls_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t nanos() const noexcept {
    return ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(nanos()) * 1e-9;
  }
  void merge(const Timer& other) noexcept {
    ns_.fetch_add(other.nanos(), std::memory_order_relaxed);
    calls_.fetch_add(other.calls(), std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<std::uint64_t> calls_{0};
};

/// RAII phase timer: adds the scope's elapsed wall time to a Timer on
/// destruction. Nests freely (each scope feeds its own Timer). The
/// pointer form with nullptr is a no-op, so call sites can keep one code
/// path for instrumented and uninstrumented runs.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) : ScopedTimer(&timer) {}
  explicit ScopedTimer(Timer* timer)
      : timer_(timer),
        start_(timer ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (timer_ != nullptr)
      timer_->add(std::chrono::steady_clock::now() - start_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ksw::obs
