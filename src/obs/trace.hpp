// Warmup-convergence trace: cumulative per-stage waiting-time means
// sampled at a fixed grid of checkpoint cycles over a simulation run
// (warmup included). Comparing the trace against the paper's eq. 12
// prediction w_i = (1 + (4/5)(rho/k)(1 - a^{i-1})) w1 with a = 2/5 makes
// drift from the Section IV spatial-steady-state conjecture directly
// observable.
#pragma once

#include <cstdint>
#include <vector>

namespace ksw::obs {

struct ConvergenceTrace {
  /// Checkpoint positions: number of cycles completed at each sample.
  std::vector<std::int64_t> cycles;
  /// wait_sum[point][stage]: cumulative waiting-time sum (in cycles) over
  /// every service start at that stage since cycle 0, warmup included.
  std::vector<std::vector<double>> wait_sum;
  /// wait_count[point][stage]: number of service starts behind wait_sum.
  std::vector<std::vector<std::uint64_t>> wait_count;

  [[nodiscard]] bool empty() const noexcept { return cycles.empty(); }
  [[nodiscard]] std::size_t points() const noexcept { return cycles.size(); }
  [[nodiscard]] std::size_t stages() const noexcept {
    return wait_sum.empty() ? 0 : wait_sum.front().size();
  }

  /// Cumulative mean wait at `stage` as of checkpoint `point`; 0 before
  /// the first observation.
  [[nodiscard]] double mean(std::size_t point, std::size_t stage) const;

  /// Point-wise accumulation of a replicate run on the same checkpoint
  /// grid; throws std::invalid_argument on shape mismatch. Call in
  /// replicate index order for bit-reproducible traces.
  void merge(const ConvergenceTrace& other);
};

}  // namespace ksw::obs
