#include "pgf/series.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "fault/injection.hpp"
#include "support/error.hpp"

namespace ksw::pgf {

Series::Series(std::size_t length) : c_(length, 0.0) {
  if (length == 0) throw std::invalid_argument("Series: length must be >= 1");
}

Series::Series(std::span<const double> coeffs, std::size_t length)
    : Series(length) {
  const std::size_t n = std::min(coeffs.size(), length);
  std::copy_n(coeffs.begin(), n, c_.begin());
}

Series Series::constant(double c, std::size_t length) {
  Series s(length);
  s.c_[0] = c;
  return s;
}

Series Series::identity(std::size_t length) {
  Series s(length);
  if (length > 1) s.c_[1] = 1.0;
  return s;
}

Series& Series::operator+=(const Series& o) {
  if (o.length() != length())
    throw std::invalid_argument("Series::+=: length mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i) c_[i] += o.c_[i];
  return *this;
}

Series& Series::operator-=(const Series& o) {
  if (o.length() != length())
    throw std::invalid_argument("Series::-=: length mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i) c_[i] -= o.c_[i];
  return *this;
}

Series& Series::operator*=(double s) {
  for (double& x : c_) x *= s;
  return *this;
}

Series Series::mul(const Series& a, const Series& b) {
  if (a.length() != b.length())
    throw std::invalid_argument("Series::mul: length mismatch");
  const std::size_t n = a.length();
  Series out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ai = a.c_[i];
    if (ai == 0.0) continue;
    for (std::size_t j = 0; i + j < n; ++j) out.c_[i + j] += ai * b.c_[j];
  }
  return out;
}

Series Series::divide(const Series& num, const Series& den) {
  if (num.length() != den.length())
    throw std::invalid_argument("Series::divide: length mismatch");
  // Deterministic fault site: pretend the constant term collapsed, so the
  // near-singular reporting path can be exercised without crafting a
  // genuinely ill-conditioned model.
  const bool injected_singular = fault::should_fire("series.near-singular");
  if (injected_singular || std::abs(den.c_[0]) < kDivideEpsilon) {
    std::ostringstream msg;
    msg << "Series::divide: |den[0]| = " << std::abs(den.c_[0]) << " < "
        << kDivideEpsilon
        << " (ill-conditioned power-series division; the queue is at or "
           "beyond saturation)";
    if (injected_singular) msg << " [injected: series.near-singular]";
    throw numeric_error(msg.str());
  }
  const std::size_t n = num.length();
  Series q(n);
  const double inv0 = 1.0 / den.c_[0];
  for (std::size_t i = 0; i < n; ++i) {
    double acc = num.c_[i];
    for (std::size_t j = 1; j <= i; ++j) acc -= den.c_[j] * q.c_[i - j];
    q.c_[i] = acc * inv0;
  }
  return q;
}

Series Series::compose_polynomial(std::span<const double> outer,
                                  const Series& inner) {
  const std::size_t n = inner.length();
  if (outer.empty()) return Series(n);
  // Horner: result = outer[d] ; result = result*inner + outer[d-1] ; ...
  Series result = Series::constant(outer.back(), n);
  for (std::size_t i = outer.size() - 1; i-- > 0;) {
    result = mul(result, inner);
    result.c_[0] += outer[i];
  }
  return result;
}

Series Series::pow(const Series& base, unsigned n) {
  Series result = Series::constant(1.0, base.length());
  Series b = base;
  while (n > 0) {
    if (n & 1u) result = mul(result, b);
    n >>= 1u;
    if (n > 0) b = mul(b, b);
  }
  return result;
}

double Series::eval(double z) const noexcept {
  double acc = 0.0;
  for (std::size_t i = c_.size(); i-- > 0;) acc = acc * z + c_[i];
  return acc;
}

double Series::coefficient_sum() const noexcept {
  double acc = 0.0;
  for (double x : c_) acc += x;
  return acc;
}

}  // namespace ksw::pgf
