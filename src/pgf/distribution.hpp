// Exact finite-support distributions on the non-negative integers, bridging
// pmf vectors, factorial moments, and truncated series.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pgf/moments.hpp"
#include "pgf/series.hpp"

namespace ksw::pgf {

/// A probability mass function on {0, 1, 2, ...} with finite support.
/// Construction validates non-negativity and normalization (to 1e-9).
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> pmf);

  /// Point mass at value m.
  static DiscreteDistribution point_mass(std::uint64_t m);

  /// Convolution: distribution of the sum of two independent variates.
  [[nodiscard]] static DiscreteDistribution convolve(
      const DiscreteDistribution& a, const DiscreteDistribution& b);

  [[nodiscard]] std::span<const double> pmf() const noexcept { return p_; }
  [[nodiscard]] double pmf(std::size_t j) const noexcept {
    return j < p_.size() ? p_[j] : 0.0;
  }
  [[nodiscard]] std::size_t support_size() const noexcept { return p_.size(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] MomentTuple moments() const noexcept;
  [[nodiscard]] Series to_series(std::size_t length) const;

 private:
  std::vector<double> p_;
};

}  // namespace ksw::pgf
