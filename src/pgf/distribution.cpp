#include "pgf/distribution.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ksw::pgf {

DiscreteDistribution::DiscreteDistribution(std::vector<double> pmf)
    : p_(std::move(pmf)) {
  if (p_.empty())
    throw std::invalid_argument("DiscreteDistribution: empty pmf");
  double sum = 0.0;
  for (double x : p_) {
    if (x < -1e-12)
      throw std::invalid_argument(
          "DiscreteDistribution: negative probability");
    sum += x;
  }
  if (std::abs(sum - 1.0) > 1e-9)
    throw std::invalid_argument(
        "DiscreteDistribution: probabilities do not sum to 1");
  // Trim trailing zeros, keeping at least the constant term.
  while (p_.size() > 1 && p_.back() == 0.0) p_.pop_back();
}

DiscreteDistribution DiscreteDistribution::point_mass(std::uint64_t m) {
  std::vector<double> pmf(m + 1, 0.0);
  pmf[m] = 1.0;
  return DiscreteDistribution(std::move(pmf));
}

DiscreteDistribution DiscreteDistribution::convolve(
    const DiscreteDistribution& a, const DiscreteDistribution& b) {
  std::vector<double> out(a.p_.size() + b.p_.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.p_.size(); ++i) {
    if (a.p_[i] == 0.0) continue;
    for (std::size_t j = 0; j < b.p_.size(); ++j)
      out[i + j] += a.p_[i] * b.p_[j];
  }
  return DiscreteDistribution(std::move(out));
}

double DiscreteDistribution::mean() const noexcept {
  double s = 0.0;
  for (std::size_t j = 0; j < p_.size(); ++j)
    s += static_cast<double>(j) * p_[j];
  return s;
}

double DiscreteDistribution::variance() const noexcept {
  const double mu = mean();
  double s = 0.0;
  for (std::size_t j = 0; j < p_.size(); ++j) {
    const double d = static_cast<double>(j) - mu;
    s += d * d * p_[j];
  }
  return s;
}

MomentTuple DiscreteDistribution::moments() const noexcept {
  return MomentTuple::from_pmf(p_);
}

Series DiscreteDistribution::to_series(std::size_t length) const {
  return Series(p_, length);
}

}  // namespace ksw::pgf
